package padc

import (
	"strings"
	"testing"
)

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 55 {
		t.Fatalf("want 55 benchmarks, got %d", len(names))
	}
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{"libquantum", "milc", "swim", "art", "eon"} {
		if !found[want] {
			t.Errorf("missing benchmark %q", want)
		}
	}
}

func TestRunFacade(t *testing.T) {
	cfg := DefaultSystem(2)
	cfg.TargetInsts = 80_000
	res, err := Run(cfg, []string{"swim", "milc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 2 {
		t.Fatalf("want 2 core results, got %d", len(res.Cores))
	}
	for _, c := range res.Cores {
		if c.IPC <= 0 {
			t.Errorf("%s: IPC %v", c.Benchmark, c.IPC)
		}
	}
	if res.BusTotal() == 0 || res.Cycles == 0 {
		t.Fatal("empty result")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cfg := DefaultSystem(1)
	if _, err := Run(cfg, nil); err == nil {
		t.Error("empty benchmark list accepted")
	}
	if _, err := Run(cfg, []string{"a", "b"}); err == nil {
		t.Error("too many benchmarks accepted")
	}
	if _, err := Run(cfg, []string{"not-a-benchmark"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestSystemConfigVariantsRun(t *testing.T) {
	mods := []func(*SystemConfig){
		func(c *SystemConfig) { c.Policy = DemandFirst },
		func(c *SystemConfig) { c.Policy = DemandPrefEqual },
		func(c *SystemConfig) { c.Policy = PrefetchFirst },
		func(c *SystemConfig) { c.Policy = APSRank },
		func(c *SystemConfig) { c.Prefetcher = Stride },
		func(c *SystemConfig) { c.Filter = DDPF },
		func(c *SystemConfig) { c.Filter = FDP },
		func(c *SystemConfig) { c.Channels = 2 },
		func(c *SystemConfig) { c.ClosedRow = true },
		func(c *SystemConfig) { c.Permutation = true },
		func(c *SystemConfig) { c.Runahead = true },
		func(c *SystemConfig) { c.SharedL2 = true; c.L2KB = 1024 },
		func(c *SystemConfig) { c.RowBufferKB = 8 },
	}
	for i, mod := range mods {
		cfg := DefaultSystem(2)
		cfg.TargetInsts = 40_000
		mod(&cfg)
		if _, err := Run(cfg, []string{"swim", "eon"}); err != nil {
			t.Errorf("variant %d failed: %v", i, err)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 25 {
		t.Fatalf("expected at least 25 experiments, got %d", len(ids))
	}
	if _, err := Experiment("not-an-experiment", false); err == nil {
		t.Error("unknown experiment accepted")
	}
	out, err := Experiment("fig2", false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "demand-first") || !strings.Contains(out, "demand-pref-equal") {
		t.Fatalf("fig2 output malformed:\n%s", out)
	}
	out, err = Experiment("tab1", false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "34720") {
		t.Fatalf("tab1 should report the paper's 34,720 bits:\n%s", out)
	}
}
