GO ?= go

.PHONY: build test race bench-snapshot bench-compare smoke-sweepd

build:
	$(GO) build ./...

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./internal/sweepd/ ./internal/runner/ ./internal/telemetry/ ./internal/telemetry/flight/

# Append a benchmark snapshot to the checked-in history
# (BENCH_sweep.json): the parallel sweep engine and the controller-tick
# hot path. Run on an idle machine; each snapshot records its
# environment and timestamp alongside the numbers.
bench-snapshot:
	$(GO) run ./scripts/benchsnap -out BENCH_sweep.json

# Diff the last two snapshots in the history and fail on any >20% ns/op
# regression. Meaningful after two `make bench-snapshot` runs on the
# same machine.
bench-compare:
	$(GO) run ./scripts/benchsnap -out BENCH_sweep.json -compare

# End-to-end service smoke: build padcsweepd, wait for /readyz, submit a
# campaign over HTTP, SIGKILL the server mid-run, resume, and verify the
# artifact is byte-identical to the in-process `padcsim -sweep` run.
smoke-sweepd:
	./scripts/smoke_sweepd.sh
