GO ?= go

.PHONY: build test race bench-snapshot smoke-sweepd

build:
	$(GO) build ./...

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./internal/sweepd/ ./internal/runner/ ./internal/telemetry/

# Refresh the checked-in benchmark snapshot (BENCH_sweep.json): the
# parallel sweep engine and the controller-tick hot path. Run on an idle
# machine; the file records environment alongside the numbers.
bench-snapshot:
	$(GO) run ./scripts/benchsnap -out BENCH_sweep.json

# End-to-end service smoke: build padcsweepd, submit a campaign over
# HTTP, SIGKILL the server mid-run, resume, and verify the artifact is
# byte-identical to the in-process `padcsim -sweep` run.
smoke-sweepd:
	./scripts/smoke_sweepd.sh
