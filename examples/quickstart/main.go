// Quickstart: simulate one prefetch-friendly benchmark on the single-core
// baseline under three memory controllers — the rigid demand-first and
// demand-prefetch-equal policies and the paper's PADC — and print the
// metrics that distinguish them.
package main

import (
	"fmt"
	"log"

	"padc"
)

func main() {
	const bench = "libquantum"
	const insts = 400_000

	type variant struct {
		name string
		mod  func(*padc.SystemConfig)
	}
	variants := []variant{
		{"no-pref", func(c *padc.SystemConfig) { c.Prefetcher = padc.NoPrefetcher }},
		{"demand-first", func(c *padc.SystemConfig) { c.Policy, c.APD = padc.DemandFirst, false }},
		{"demand-pref-equal", func(c *padc.SystemConfig) { c.Policy, c.APD = padc.DemandPrefEqual, false }},
		{"PADC (APS+APD)", func(c *padc.SystemConfig) { c.Policy, c.APD = padc.APS, true }},
	}

	fmt.Printf("benchmark %s, %d instructions, single-core baseline\n\n", bench, insts)
	fmt.Printf("%-18s %8s %8s %8s %10s %8s\n", "controller", "IPC", "MPKI", "RBH%", "bus lines", "dropped")
	var base float64
	for _, v := range variants {
		cfg := padc.DefaultSystem(1)
		cfg.TargetInsts = insts
		v.mod(&cfg)
		res, err := padc.Run(cfg, []string{bench})
		if err != nil {
			log.Fatal(err)
		}
		c := res.Cores[0]
		fmt.Printf("%-18s %8.3f %8.2f %8.1f %10d %8d\n",
			v.name, c.IPC, c.MPKI, res.RowHitRate*100, res.BusTotal(), res.Dropped)
		if v.name == "no-pref" {
			base = c.IPC
		} else if base > 0 {
			fmt.Printf("%-18s %8.2fx vs no prefetching\n", "", c.IPC/base)
		}
	}
}
