// Refresh demonstrates the DRAM maintenance subsystem: a cycle-level
// refresh engine (internal/dram/refresh) that accrues one obligation per
// tREFI and pays each with a tRFC-long bank occupancy, under the JEDEC
// postpone/pull-in credit window (up to 8 refreshes either way, with a
// forced-refresh deadline when the credits run out). The paper's
// evaluation idealizes refresh away; turning it on here shows the tax it
// puts on every scheduling policy, and how the per-bank adaptive page
// predictor interacts with the refresh-induced precharges.
//
// The walkthrough runs the same two-core mix under refresh off, per-bank
// (DDR4 REFpb-style: one bank at a time, tRFCpb each) and all-bank (DDR3
// REF: the rank drains and every bank blocks for tRFC), then repeats the
// per-bank run with the adaptive page policy. The same knobs exist
// everywhere in the stack:
//
//	padcsim -bench swim,art -refresh per-bank -page adaptive
//	padcsim -exp abl-refresh
//	sweep specs: {"refresh": ["off", "per-bank"], "page_policies": ["open", "adaptive"]}
package main

import (
	"fmt"
	"log"

	"padc"
)

func main() {
	mix := []string{"swim", "art"}

	// 100K instructions per core is a few hundred thousand cycles — more
	// than 8 tREFI windows, so even the all-bank mode (which postpones
	// while demand traffic is waiting) hits its forced-refresh deadline.
	run := func(label, refreshMode, page string) padc.Result {
		cfg := padc.DefaultSystem(len(mix))
		cfg.TargetInsts = 100_000
		cfg.RefreshMode = refreshMode
		cfg.PagePolicy = page
		res, err := padc.Run(cfg, mix)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s cycles=%-8d issued=%-4d postponed=%-3d pulled-in=%-3d forced=%-3d blocked-cycles=%d\n",
			label, res.Cycles, res.RefreshesIssued, res.RefreshesPostponed,
			res.RefreshesPulledIn, res.RefreshesForced, res.RefreshBlockedCycles)
		return res
	}

	off := run("off", "off", "open")
	perBank := run("per-bank", "per-bank", "open")
	allBank := run("all-bank", "all-bank", "open")
	adaptive := run("per-bank + adaptive", "per-bank", "adaptive")

	fmt.Println()
	cost := func(r padc.Result) float64 {
		return (float64(r.Cycles)/float64(off.Cycles) - 1) * 100
	}
	fmt.Printf("refresh tax: per-bank %+.2f%% cycles, all-bank %+.2f%%, per-bank+adaptive %+.2f%%\n",
		cost(perBank), cost(allBank), cost(adaptive))
	fmt.Println("\nThe paper-style table over 4-core mixes: `padcsim -exp abl-refresh`.")
}
