// Sweep demonstrates the parallel sweep engine: it declares a cartesian
// grid of scheduling policies × workload mixes (the shape of every PADC
// result in the paper), runs it on a bounded worker pool with the
// accounting-invariant checks enabled, and prints the merged table plus
// the wall-clock stats. The merged output is deterministic — the same
// spec yields byte-identical CSV/JSON for any worker count — so sweep
// artifacts are diffable across machines.
//
// The same spec can be run from the CLI: write it as JSON and invoke
// `padcsim -sweep spec.json -jobs 8 -verify -sweep-csv out.csv`.
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"

	"padc"
)

func main() {
	spec := padc.SweepSpec{
		Name:     "policies-vs-mixes",
		Seed:     42,
		Cores:    2,
		Insts:    60_000,
		Policies: []string{"demand-first", "equal", "aps", "padc"},
		Workloads: [][]string{
			{"swim", "art"}, // friendly vs. unfriendly
		},
		Mixes: 3, // plus three random 2-core draws
	}
	res, err := padc.Sweep(spec, padc.SweepOptions{
		Workers: runtime.GOMAXPROCS(0),
		Verify:  true, // every job also checks the accounting invariants
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(padc.RenderSweep(res))
	fmt.Println(res.Stats)

	// The merged artifacts are deterministic: re-running with -jobs=1
	// produces the same bytes.
	if err := res.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nRun `padcsim -exp all -full` for every paper figure and table.")
}
