// Sweep regenerates a miniature of the paper's Figure 6 — single-core
// normalized IPC of every scheduling policy across a benchmark spread —
// directly through the experiment API, then prints the PADC hardware-cost
// table (Tables 1–2).
package main

import (
	"fmt"
	"log"

	"padc"
)

func main() {
	for _, id := range []string{"fig6", "tab1"} {
		out, err := padc.Experiment(id, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
	}
	fmt.Println("Run `padcsim -exp all -full` for every figure and table at paper scale.")
}
