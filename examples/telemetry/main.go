// Telemetry demonstrates the cycle-level observability subsystem: it runs
// the paper's 4-core Case Study III mix under the full PADC with an
// instrumented simulator, prints the epoch time series of each core's
// accuracy estimate and the controller's drop rate (the runtime dynamics
// that drive APS promotion and APD dropping), and writes a Chrome
// trace_event file for chrome://tracing / Perfetto.
package main

import (
	"fmt"
	"log"
	"os"

	"padc"
	"padc/internal/exp"
)

func main() {
	mix := []string{"omnetpp", "libquantum", "galgel", "GemsFDTD"}
	const insts = 250_000
	const epoch = 10_000

	cfg := padc.DefaultSystem(4)
	cfg.TargetInsts = insts
	cfg.Policy, cfg.APD = padc.APS, true
	tel := padc.NewTelemetry(epoch)
	cfg.Telemetry = tel

	res, err := padc.Run(cfg, mix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-core mix %v under PADC: %d cycles, %d dropped prefetches\n\n",
		mix, res.Cycles, res.Dropped)

	// Phase behavior: per-core accuracy estimate and drop rate per epoch.
	series := tel.SeriesData()
	acc := make([][]float64, len(mix))
	for i := range mix {
		acc[i] = series.Column(fmt.Sprintf("core%d/acc_estimate", i))
	}
	drops := series.Column("memctrl0/drops")
	fmt.Printf("%-10s %8s %8s %8s %8s %8s\n",
		"cycle", "acc0", "acc1", "acc2", "acc3", "drops")
	for i, row := range series.Rows {
		// Print every 10th epoch so a quick run stays readable.
		if i%10 != 0 && i != len(series.Rows)-1 {
			continue
		}
		fmt.Printf("%-10d %8.2f %8.2f %8.2f %8.2f %8.0f\n",
			row.Cycle, acc[0][i], acc[1][i], acc[2][i], acc[3][i], drops[i])
	}

	fmt.Println()
	fmt.Print(exp.TelemetryTable(tel))

	out := "padc_trace.json"
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	if err := tel.WriteChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nChrome trace written to %s (load in chrome://tracing or https://ui.perfetto.dev)\n", out)
}
