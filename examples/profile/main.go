// Profile demonstrates the request-lifecycle tracer and the
// cycle-accounting profiler: it runs a 4-core mix under the full PADC
// with both enabled, prints where every core cycle went (retire,
// demand-miss stall, MSHR-full stall, compute, idle — the buckets
// partition runtime, so each row sums to 100%), decomposes memory latency
// into queue wait versus DRAM service per request class, and writes the
// sampled spans as JSONL for offline analysis.
package main

import (
	"fmt"
	"log"
	"os"

	"padc"
	"padc/internal/exp"
)

func main() {
	mix := []string{"swim", "art", "libquantum", "milc"}

	cfg := padc.DefaultSystem(4)
	cfg.TargetInsts = 250_000
	cfg.Profile = true
	tracer := padc.NewLifecycle(0)
	cfg.Lifecycle = tracer

	res, err := padc.Run(cfg, mix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-core mix %v under PADC: %d cycles\n\n", mix, res.Cycles)

	// Cycle attribution: one row per core, every cycle in exactly one
	// bucket. Memory-bound benchmarks show demand-miss dominating;
	// compute-bound ones show retire.
	benches := make([]string, len(res.Cores))
	attribs := make([][]uint64, len(res.Cores))
	for i, c := range res.Cores {
		benches[i] = c.Benchmark
		attribs[i] = c.Attribution
	}
	fmt.Print(exp.ProfileRows(benches, attribs))

	// Latency decomposition: queue wait vs. DRAM service per request
	// class, with the row-buffer outcome mix.
	fmt.Print(tracer.BreakdownTable())

	out := "padc_spans.jsonl"
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	if err := tracer.WriteJSONL(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %d sampled spans (of %d recorded) to %s\n",
		len(tracer.Spans()), tracer.Recorded(), out)
}
