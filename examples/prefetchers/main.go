// Prefetchers compares the four prefetch engines the paper evaluates —
// stream, PC-based stride, CZone/Delta-Correlation and Markov — on the
// same benchmark under demand-first and under PADC (§6.11 / Figure 28).
package main

import (
	"fmt"
	"log"

	"padc"
)

func main() {
	const bench = "leslie3d"
	const insts = 300_000

	engines := []struct {
		name string
		kind padc.Prefetcher
	}{
		{"stream", padc.Stream},
		{"stride", padc.Stride},
		{"cdc", padc.CDC},
		{"markov", padc.Markov},
	}

	fmt.Printf("benchmark %s, single core, %d instructions\n\n", bench, insts)
	fmt.Printf("%-8s %-14s %8s %8s %8s %10s\n", "engine", "controller", "IPC", "ACC%", "COV%", "bus lines")
	for _, e := range engines {
		for _, padcOn := range []bool{false, true} {
			cfg := padc.DefaultSystem(1)
			cfg.TargetInsts = insts
			cfg.Prefetcher = e.kind
			name := "demand-first"
			if padcOn {
				cfg.Policy, cfg.APD = padc.APS, true
				name = "PADC"
			} else {
				cfg.Policy, cfg.APD = padc.DemandFirst, false
			}
			res, err := padc.Run(cfg, []string{bench})
			if err != nil {
				log.Fatal(err)
			}
			c := res.Cores[0]
			fmt.Printf("%-8s %-14s %8.3f %8.1f %8.1f %10d\n",
				e.name, name, c.IPC, c.PrefAccuracy*100, c.PrefCoverage*100, res.BusTotal())
		}
	}
}
