// Casestudy reproduces the paper's Case Study III (§6.3.3) interactively:
// two prefetch-friendly applications (libquantum, GemsFDTD) share a 4-core
// CMP with two prefetch-unfriendly ones (omnetpp, galgel). It shows how
// PADC drops the unfriendly applications' useless prefetches and protects
// the useful streams.
package main

import (
	"fmt"
	"log"

	"padc"
)

func main() {
	mix := []string{"omnetpp", "libquantum", "galgel", "GemsFDTD"}
	const insts = 250_000

	type variant struct {
		name string
		mod  func(*padc.SystemConfig)
	}
	variants := []variant{
		{"demand-first", func(c *padc.SystemConfig) { c.Policy, c.APD = padc.DemandFirst, false }},
		{"demand-pref-equal", func(c *padc.SystemConfig) { c.Policy, c.APD = padc.DemandPrefEqual, false }},
		{"aps-only", func(c *padc.SystemConfig) { c.Policy, c.APD = padc.APS, false }},
		{"PADC", func(c *padc.SystemConfig) { c.Policy, c.APD = padc.APS, true }},
	}

	fmt.Printf("4-core mix: %v (%d instructions per core)\n\n", mix, insts)
	for _, v := range variants {
		cfg := padc.DefaultSystem(4)
		cfg.TargetInsts = insts
		v.mod(&cfg)
		res, err := padc.Run(cfg, mix)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s ---\n", v.name)
		for _, c := range res.Cores {
			fmt.Printf("  %-11s IPC=%.3f  ACC=%5.1f%%  COV=%5.1f%%  dropped=%d\n",
				c.Benchmark, c.IPC, c.PrefAccuracy*100, c.PrefCoverage*100, c.PrefDropped)
		}
		fmt.Printf("  bus: demand=%d useful=%d useless=%d (total %d), RBHU=%.1f%%\n\n",
			res.BusDemand, res.BusUseful, res.BusUseless, res.BusTotal(), res.RBHU*100)
	}
}
