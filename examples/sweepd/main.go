// Sweepd demonstrates the sweep campaign service end to end, entirely
// in-process: it starts a Service over a temporary data directory,
// submits a small policy × mix campaign through the HTTP API, streams
// the result rows live as jobs finish, and then interrupts the service
// mid-campaign to show crash recovery — a second Service over the same
// data directory resumes from the write-ahead journal, reuses every
// journaled row, and converges on an artifact byte-identical to an
// uninterrupted in-process sweep.
//
// The same flow works across real processes: `padcsweepd serve -data
// DIR` runs the daemon, `padcsweepd submit -spec spec.json -wait`
// (or `padcsim -sweep spec.json -sweep-remote URL`) drives it, and
// `kill -9` + restart exercises exactly the resume path shown here.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"log/slog"
	"net/http/httptest"
	"os"
	"time"

	"padc"
	"padc/internal/sweepd"
)

const specJSON = `{
	"name": "policies-vs-mixes",
	"seed": 42,
	"cores": 2,
	"insts": 20000,
	"policies": ["demand-first", "aps", "padc"],
	"workloads": [["swim", "art"]],
	"mixes": 3
}`

func main() {
	dir, err := os.MkdirTemp("", "sweepd-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()

	// The golden artifact: the same spec run in-process (padcsim -sweep).
	spec, err := padc.ParseSweepSpec([]byte(specJSON))
	if err != nil {
		log.Fatal(err)
	}
	golden, err := padc.Sweep(spec, padc.SweepOptions{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	var want bytes.Buffer
	if err := golden.WriteCSV(&want); err != nil {
		log.Fatal(err)
	}

	// Start the service and submit the campaign over HTTP.
	svc, err := sweepd.NewService(sweepd.ServiceOptions{
		DataDir: dir, Workers: 2, Resume: true,
		Logger: slog.New(slog.NewTextHandler(os.Stderr, nil)),
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	cl, err := sweepd.NewClient(srv.URL)
	if err != nil {
		log.Fatal(err)
	}
	info, err := cl.Submit(ctx, sweepd.SubmitRequest{Spec: json.RawMessage(specJSON)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted campaign %s: %d jobs\n", info.ID, info.Total)

	// Interrupt the service once a couple of rows are journaled. Close is
	// a graceful interruption: no terminal journal event is written, which
	// marks the campaign as resumable.
	cam, ok := svc.Campaign(info.ID)
	if !ok {
		log.Fatal("campaign not registered")
	}
	for cam.Info().Done < 2 {
		time.Sleep(time.Millisecond)
	}
	srv.Close()
	svc.Close()
	fmt.Printf("interrupted the service mid-campaign\n")

	// A fresh service over the same data directory replays the journal and
	// resumes: journaled rows are reused, only the remainder re-executes.
	svc2, err := sweepd.NewService(sweepd.ServiceOptions{
		DataDir: dir, Workers: 2, Resume: true,
		Logger: slog.New(slog.NewTextHandler(os.Stderr, nil)),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc2.Close()
	srv2 := httptest.NewServer(svc2.Handler())
	defer srv2.Close()
	cl2, err := sweepd.NewClient(srv2.URL)
	if err != nil {
		log.Fatal(err)
	}

	// Stream the resumed campaign's rows: the journaled backlog arrives
	// first, then live rows as the remainder executes.
	err = cl2.StreamRows(ctx, info.ID, 0, func(ev sweepd.RowEvent) error {
		switch {
		case ev.Row != nil:
			fmt.Printf("  row %2d  %-40s cycles=%d\n", ev.Seq, ev.Row.Key, ev.Row.Cycles)
		case ev.Done:
			fmt.Printf("campaign %s\n", ev.State)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	final, err := cl2.Wait(ctx, info.ID, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed: %d/%d rows, %d reused from the journal\n",
		final.Done, final.Total, final.Reused)

	// The artifact served after the interruption is byte-identical to the
	// uninterrupted in-process run.
	got, err := cl2.Artifact(ctx, info.ID, "csv")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("artifact matches in-process sweep: %v (%d bytes)\n",
		bytes.Equal(got, want.Bytes()), len(got))
}
