// Rules demonstrates the composable scheduler kernel: the paper's
// policies are priority-rule stacks (internal/memctrl/sched), so a
// §6-style priority-order ablation is a sweep over "rules:" strings
// rather than new controller code. The grid below recomposes the same
// rule vocabulary — criticality, row locality, urgency, §6.5 ranking,
// FCFS — into six orderings, from plain FR-FCFS to the full APS+rank
// stack, and runs each against the same workload mixes.
//
// The same grid runs from the CLI: put the spec in a JSON file and invoke
// `padcsim -sweep spec.json`, or simulate a single ordering directly with
// `padcsim -bench swim,art -policy rules:critical,rowhit,urgent,fcfs`.
package main

import (
	"fmt"
	"log"
	"runtime"

	"padc"
)

func main() {
	spec := padc.SweepSpec{
		Name:  "rule-order-ablation",
		Seed:  2008,
		Cores: 2,
		Insts: 60_000,
		Policies: []string{
			"rules:rowhit,fcfs",                      // plain FR-FCFS floor
			"rules:critical,rowhit,urgent,fcfs",      // APS (§5.1 order)
			"rules:rowhit,critical,urgent,fcfs",      // row locality above criticality
			"rules:critical,urgent,rowhit,fcfs",      // urgency above row locality
			"rules:critical,rowhit,fcfs",             // APS minus the urgency rule
			"rules:critical,rowhit,urgent,rank,fcfs", // APS + §6.5 shortest-job ranking
		},
		Workloads: [][]string{
			{"swim", "art"}, // prefetch-friendly vs. prefetch-unfriendly
			{"libquantum", "milc"},
		},
	}
	res, err := padc.Sweep(spec, padc.SweepOptions{Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(padc.RenderSweep(res))
	fmt.Println(res.Stats)
	fmt.Println("\nThe equivalent paper-style table: `padcsim -exp abl-rules`.")
}
