package exp

import (
	"fmt"

	"padc/internal/core"
	"padc/internal/memctrl"
	"padc/internal/sim"
	"padc/internal/workload"
)

// mixSeed keeps the randomly-drawn multiprogrammed workloads reproducible.
const mixSeed = 0x9a7c

// Mixes returns the deterministic workload draw for an n-core experiment.
func Mixes(ncores, count int) [][]workload.Profile {
	return workload.Mixes(count, ncores, mixSeed+uint64(ncores))
}

// Fig9 reproduces Figure 9: average 2-core performance and traffic.
func Fig9(sc Scale) *Table {
	t := AverageMixes(Mixes(2, sc.Mixes2), 2, sc, StandardVariants(), nil)
	t.Title = "Figure 9: " + t.Title
	return t
}

// Fig16 reproduces Figure 16: average 4-core performance and traffic.
func Fig16(sc Scale) *Table {
	t := AverageMixes(Mixes(4, sc.Mixes4), 4, sc, StandardVariants(), nil)
	t.Title = "Figure 16: " + t.Title
	return t
}

// Fig17 reproduces Figure 17: average 8-core performance and traffic.
func Fig17(sc Scale) *Table {
	t := AverageMixes(Mixes(8, sc.Mixes8), 8, sc, StandardVariants(), nil)
	t.Title = "Figure 17: " + t.Title
	return t
}

// caseStudy runs one named 4-core mix under the standard variants and
// reports per-application speedups plus system metrics (Figures 10–15).
func caseStudy(title string, names []string, sc Scale) *Table {
	alone := NewAloneIPC()
	mix := make([]workload.Profile, len(names))
	for i, n := range names {
		mix[i] = workload.MustByName(n)
	}
	t := &Table{Title: title}
	t.Header = append(append([]string{"policy"}, names...), "WS", "HS", "UF", "bus(K)", "dropped")
	variants := StandardVariants()
	rows := make([]MixResult, len(variants))
	parallel(len(variants), func(i int) {
		rows[i] = RunMix(mix, 4, sc, variants[i], alone, nil)
	})
	for i, v := range variants {
		r := rows[i]
		cells := []string{v.Name}
		for _, is := range r.IS {
			cells = append(cells, fmt.Sprintf("%.3f", is))
		}
		cells = append(cells,
			fmt.Sprintf("%.3f", r.WS), fmt.Sprintf("%.3f", r.HS), fmt.Sprintf("%.2f", r.UF),
			fmt.Sprintf("%.1f", float64(r.Bus.Total())/1000), fmt.Sprintf("%d", r.Dropped))
		t.Add(cells...)
	}
	return t
}

// Fig10 reproduces Case Study I (Figures 10–11): four prefetch-friendly
// applications.
func Fig10(sc Scale) *Table {
	return caseStudy("Figures 10-11, case study I: all prefetch-friendly",
		[]string{"swim", "bwaves", "leslie3d", "soplex"}, sc)
}

// Fig12 reproduces Case Study II (Figures 12–13): four prefetch-unfriendly
// applications.
func Fig12(sc Scale) *Table {
	return caseStudy("Figures 12-13, case study II: all prefetch-unfriendly",
		[]string{"art", "galgel", "ammp", "milc"}, sc)
}

// Fig14 reproduces Case Study III (Figures 14–15): two friendly and two
// unfriendly applications.
func Fig14(sc Scale) *Table {
	return caseStudy("Figures 14-15, case study III: mixed",
		[]string{"omnetpp", "libquantum", "galgel", "GemsFDTD"}, sc)
}

// Table8 reproduces Table 8: the effect of the urgency rule on the mixed
// case study.
func Table8(sc Scale) *Table {
	names := []string{"omnetpp", "libquantum", "galgel", "GemsFDTD"}
	mix := make([]workload.Profile, len(names))
	for i, n := range names {
		mix[i] = workload.MustByName(n)
	}
	noU := func(on bool, apd bool, label string) Variant {
		return Variant{label, func(c *sim.Config) {
			c.Policy = memctrl.APS
			c.PADC.EnableUrgency = on
			c.PADC.EnableAPD = apd
		}}
	}
	variants := []Variant{
		DemandFirst(),
		noU(false, false, "aps-no-urgent"),
		noU(true, false, "aps"),
		noU(false, true, "aps-apd-no-urgent"),
		noU(true, true, "aps-apd (PADC)"),
	}
	alone := NewAloneIPC()
	rows := make([]MixResult, len(variants))
	parallel(len(variants), func(i int) { rows[i] = RunMix(mix, 4, sc, variants[i], alone, nil) })
	t := &Table{Title: "Table 8: effect of prioritizing urgent requests"}
	t.Header = append(append([]string{"policy"}, names...), "UF", "WS", "HS")
	for i, v := range variants {
		r := rows[i]
		cells := []string{v.Name}
		for _, is := range r.IS {
			cells = append(cells, fmt.Sprintf("%.3f", is))
		}
		cells = append(cells, fmt.Sprintf("%.2f", r.UF), fmt.Sprintf("%.3f", r.WS), fmt.Sprintf("%.3f", r.HS))
		t.Add(cells...)
	}
	return t
}

// Table9 reproduces Tables 9 and 10: four identical instances of one
// application (libquantum for Table 9, milc for Table 10) on the 4-core
// system.
func Table9(bench string, sc Scale) *Table {
	mix := []workload.Profile{
		workload.MustByName(bench), workload.MustByName(bench),
		workload.MustByName(bench), workload.MustByName(bench),
	}
	alone := NewAloneIPC()
	variants := StandardVariants()
	rows := make([]MixResult, len(variants))
	parallel(len(variants), func(i int) { rows[i] = RunMix(mix, 4, sc, variants[i], alone, nil) })
	t := &Table{Title: fmt.Sprintf("Tables 9/10: four identical %s instances", bench)}
	t.Header = []string{"policy", "IS0", "IS1", "IS2", "IS3", "WS", "HS", "UF"}
	for i, v := range variants {
		r := rows[i]
		t.Addf(v.Name, r.IS[0], r.IS[1], r.IS[2], r.IS[3], r.WS, r.HS, r.UF)
	}
	return t
}

// Fig19 reproduces Figures 19 (ncores=4) and 20 (ncores=8): PADC augmented
// with the shortest-job ranking scheme.
func Fig19(ncores int, sc Scale) *Table {
	count := sc.Mixes4
	if ncores == 8 {
		count = sc.Mixes8
	}
	variants := []Variant{NoPref(), DemandFirst(), PADC(), PADCRank()}
	t := AverageMixes(Mixes(ncores, count), ncores, sc, variants, nil)
	t.Title = fmt.Sprintf("Figures 19/20: ranking on the %d-core system", ncores)
	return t
}

// Fig21 reproduces Figures 21 (ncores=4) and 22 (ncores=8): two memory
// controllers.
func Fig21(ncores int, sc Scale) *Table {
	count := sc.Mixes4
	if ncores == 8 {
		count = sc.Mixes8
	}
	dual := func(c *sim.Config) { c.DRAM.Channels = 2 }
	t := AverageMixes(Mixes(ncores, count), ncores, sc, StandardVariants(), dual)
	t.Title = fmt.Sprintf("Figures 21/22: dual memory controllers, %d cores", ncores)
	return t
}

var _ = core.Config{}
