package exp

import (
	"fmt"

	"padc/internal/core"
	"padc/internal/dram"
	"padc/internal/dram/refresh"
	"padc/internal/memctrl"
	"padc/internal/sim"
	"padc/internal/stats"
	"padc/internal/topology"
	"padc/internal/workload"
)

// AblationDropThreshold compares APD's dynamic 4-level drop-threshold
// ladder (Table 6) against fixed thresholds. The paper argues (§4.3) that
// a single static threshold either drops useful prefetches of accurate
// phases (too low) or retains useless ones too long (too high); the
// dynamic ladder should match or beat every static point on both WS and
// traffic.
func AblationDropThreshold(sc Scale) *Table {
	mk := func(name string, ladder []core.DropLevel) Variant {
		return Variant{name, func(c *sim.Config) {
			c.Policy = memctrl.APS
			c.PADC.EnableAPD = true
			if ladder != nil {
				c.PADC.DropLadder = ladder
			}
		}}
	}
	fixed := func(cycles uint64) []core.DropLevel {
		return []core.DropLevel{{AccuracyBelow: 1.01, Cycles: cycles}}
	}
	variants := []Variant{
		DemandFirst(),
		APSOnly(),
		mk("apd-fixed-100", fixed(100)),
		mk("apd-fixed-1500", fixed(1_500)),
		mk("apd-fixed-50K", fixed(50_000)),
		mk("apd-fixed-100K", fixed(100_000)),
		mk("apd-dynamic (PADC)", nil),
	}
	mixes := Mixes(4, sc.Mixes4)
	t := &Table{
		Title:  "Ablation: APD drop-threshold ladder vs fixed thresholds (4-core)",
		Header: []string{"policy", "WS", "bus(K)", "dropped"},
	}
	alone := NewAloneIPC()
	type acc struct {
		ws, bus float64
		drop    uint64
	}
	grid := make([][]acc, len(variants))
	for vi := range grid {
		grid[vi] = make([]acc, len(mixes))
	}
	type job struct{ vi, mi int }
	var jobs []job
	for vi := range variants {
		for mi := range mixes {
			jobs = append(jobs, job{vi, mi})
		}
	}
	parallel(len(jobs), func(i int) {
		j := jobs[i]
		r := RunMix(mixes[j.mi], 4, sc, variants[j.vi], alone, nil)
		grid[j.vi][j.mi] = acc{r.WS, float64(r.Bus.Total()), r.Dropped}
	})
	for vi, v := range variants {
		var a acc
		for mi := range mixes {
			a.ws += grid[vi][mi].ws
			a.bus += grid[vi][mi].bus
			a.drop += grid[vi][mi].drop
		}
		n := float64(len(mixes))
		t.Add(v.Name, fmt.Sprintf("%.3f", a.ws/n), fmt.Sprintf("%.1f", a.bus/n/1000),
			fmt.Sprintf("%d", a.drop/uint64(len(mixes))))
	}
	return t
}

// AblationPromotionThreshold sweeps APS's promotion threshold around the
// paper's 85%: too low promotes junk to demand priority, too high never
// promotes and degenerates to demand-first.
func AblationPromotionThreshold(sc Scale) *Table {
	var variants []Variant
	variants = append(variants, DemandFirst(), DemandPrefEqual())
	for _, th := range []float64{0.25, 0.50, 0.75, 0.85, 0.95} {
		th := th
		variants = append(variants, Variant{
			Name: fmt.Sprintf("aps@%.0f%%", th*100),
			Apply: func(c *sim.Config) {
				c.Policy = memctrl.APS
				c.PADC.PromotionThreshold = th
				c.PADC.EnableAPD = false
			},
		})
	}
	points := []sweepPoint{{Label: "WS", Mutate: nil}}
	return sweepVariantsOverMixesOn(Mixes(4, sc.Mixes4),
		"Ablation: APS promotion threshold sweep (4-core)", sc, variants, points)
}

// AblationRuleOrder ablates the scheduler's priority-rule ordering itself
// (the paper's actual contribution, §5–6): the same rule vocabulary is
// recomposed into different stacks through the sched kernel — APS with
// rules reordered or removed, the §6.5 ranking appended, and plain
// FR-FCFS as the floor. The APS order (criticality above row locality,
// urgency below it) should dominate its permutations.
func AblationRuleOrder(sc Scale) *Table {
	variants := []Variant{
		RuleStack("rules:rowhit,fcfs"),                      // FR-FCFS floor
		RuleStack("rules:critical,rowhit,urgent,fcfs"),      // APS (§5.1 order)
		RuleStack("rules:rowhit,critical,urgent,fcfs"),      // locality above criticality
		RuleStack("rules:critical,urgent,rowhit,fcfs"),      // urgency above locality
		RuleStack("rules:critical,rowhit,fcfs"),             // APS minus urgency
		RuleStack("rules:critical,rowhit,urgent,rank,fcfs"), // APS + §6.5 ranking
	}
	points := []sweepPoint{{Label: "WS", Mutate: nil}}
	return sweepVariantsOverMixesOn(Mixes(4, sc.Mixes4),
		"Ablation: scheduler priority-rule order (4-core WS)", sc, variants, points)
}

// AblationRefresh charges the simulator with DRAM maintenance (a cost the
// paper's evaluation idealizes away) and measures what each refresh mode
// does to the scheduling policies: per-bank REFpb steals one bank at a
// time for tRFCpb, all-bank REF drains the rank and blocks every bank for
// tRFC, and the JEDEC postpone/pull-in window decides when the obligation
// is paid. The page-policy variants show whether the adaptive per-bank
// predictor claws back any of the locality the refresh-induced precharges
// destroy. WS and the maintenance counters are averaged over the mixes.
func AblationRefresh(sc Scale) *Table {
	withPage := func(name string, v Variant, p dram.PagePolicy) Variant {
		return Variant{name, func(c *sim.Config) {
			v.Apply(c)
			c.DRAM.Page = p
		}}
	}
	variants := []Variant{
		DemandFirst(),
		PADC(),
		withPage("PADC-closed-page", PADC(), dram.ClosedPage),
		withPage("PADC-adaptive-page", PADC(), dram.AdaptivePage),
	}
	modes := []refresh.Mode{refresh.Off, refresh.PerBank, refresh.AllBank}
	mixes := Mixes(4, sc.Mixes4)

	type acc struct {
		ws float64
		rf stats.RefreshStats
	}
	grid := make([][]acc, len(variants))
	for vi := range grid {
		grid[vi] = make([]acc, len(modes))
	}
	type job struct{ vi, pi int }
	var jobs []job
	for vi := range variants {
		for pi := range modes {
			jobs = append(jobs, job{vi, pi})
		}
	}
	parallel(len(jobs), func(i int) {
		j := jobs[i]
		mode := modes[j.pi]
		mutate := func(c *sim.Config) { c.DRAM.Refresh.Mode = mode }
		alone := NewAloneIPC() // per job: the alone baseline must see the same refresh mode
		a := acc{}
		for _, mix := range mixes {
			r := RunMix(mix, 4, sc, variants[j.vi], alone, mutate)
			a.ws += r.WS
			a.rf.Issued += r.Res.Refresh.Issued
			a.rf.Postponed += r.Res.Refresh.Postponed
			a.rf.PulledIn += r.Res.Refresh.PulledIn
			a.rf.Forced += r.Res.Refresh.Forced
			a.rf.BlockedCycles += r.Res.Refresh.BlockedCycles
		}
		grid[j.vi][j.pi] = a
	})

	t := &Table{
		Title:  "Ablation: DRAM refresh mode x page policy (4-core)",
		Header: []string{"policy", "refresh", "WS", "refreshes", "postponed", "pulled-in", "forced", "blocked(K)"},
	}
	n := uint64(len(mixes))
	for vi, v := range variants {
		for pi, mode := range modes {
			a := grid[vi][pi]
			t.Add(v.Name, mode.String(),
				fmt.Sprintf("%.3f", a.ws/float64(n)),
				fmt.Sprintf("%d", a.rf.Issued/n),
				fmt.Sprintf("%d", a.rf.Postponed/n),
				fmt.Sprintf("%d", a.rf.PulledIn/n),
				fmt.Sprintf("%d", a.rf.Forced/n),
				fmt.Sprintf("%.1f", float64(a.rf.BlockedCycles)/float64(n)/1000))
		}
	}
	return t
}

// AblationTopology compares the flat single-domain layout against the
// far-tier preset (a one-channel pooled tier behind a long link) under
// each scheduling policy. The far tier stretches every request it absorbs
// by the link latency without consuming extra bank or bus time, so the
// interesting question is whether PADC's tier-local accuracy estimates
// keep prefetching profitable on the slow tier or APD learns to shed it.
// WS is averaged over the mixes; the far-tier columns report the slow
// tier's share of serviced requests and its measured prefetch accuracy
// ("-" on the flat rows, which have no domain breakdown).
func AblationTopology(sc Scale) *Table {
	variants := []Variant{
		DemandFirst(),
		APSOnly(),
		PADC(),
	}
	topos := []string{"flat", "far-tier"}
	mixes := Mixes(4, sc.Mixes4)

	type acc struct {
		ws, bus                        float64
		serviced, farServiced, farSent float64
		farUsed                        float64
	}
	grid := make([][]acc, len(variants))
	for vi := range grid {
		grid[vi] = make([]acc, len(topos))
	}
	type job struct{ vi, ti int }
	var jobs []job
	for vi := range variants {
		for ti := range topos {
			jobs = append(jobs, job{vi, ti})
		}
	}
	parallel(len(jobs), func(i int) {
		j := jobs[i]
		var mutate func(*sim.Config)
		if topos[j.ti] != "flat" {
			name := topos[j.ti]
			mutate = func(c *sim.Config) {
				t, err := topology.Preset(name, c.DRAM.Channels)
				if err != nil {
					panic(err) // preset names above are static
				}
				c.Topology = &t
			}
		}
		alone := NewAloneIPC() // per job: the alone baseline must see the same wiring
		a := acc{}
		for _, mix := range mixes {
			r := RunMix(mix, 4, sc, variants[j.vi], alone, mutate)
			a.ws += r.WS
			a.bus += float64(r.Bus.Total())
			a.serviced += float64(r.Res.Serviced)
			for _, d := range r.Res.Domains {
				if d.LinkCycles > 0 {
					a.farServiced += float64(d.Serviced)
					a.farSent += float64(d.PrefSent)
					a.farUsed += float64(d.PrefUsed)
				}
			}
		}
		grid[j.vi][j.ti] = a
	})

	t := &Table{
		Title:  "Ablation: memory topology, flat vs far-tier (4-core)",
		Header: []string{"policy", "topology", "WS", "bus(K)", "far-share", "far-acc"},
	}
	n := float64(len(mixes))
	for vi, v := range variants {
		for ti, topo := range topos {
			a := grid[vi][ti]
			farShare, farAcc := "-", "-"
			if a.farServiced > 0 && a.serviced > 0 {
				farShare = fmt.Sprintf("%.1f%%", a.farServiced/a.serviced*100)
			}
			if a.farSent > 0 {
				farAcc = fmt.Sprintf("%.1f%%", a.farUsed/a.farSent*100)
			}
			t.Add(v.Name, topo,
				fmt.Sprintf("%.3f", a.ws/n),
				fmt.Sprintf("%.1f", a.bus/n/1000),
				farShare, farAcc)
		}
	}
	return t
}

// AblationMemSide exercises the memory-side prefetch subsystem along its
// two control loops. First the DSPatch bias selector: on an idle bus
// (4 channels) bandwidth headroom stays high and the coverage-biased
// pattern (CovP) should dominate trigger selections, while a saturated
// single channel pushes headroom under the flip point and the
// accuracy-biased pattern (AccP) takes over. Second the PADC gate: on
// low-accuracy mixes the memory-side path's measured accuracy pins in
// the drop ladder's bottom band and APD's generation gate should
// suppress candidates that an APD-less configuration would have issued.
// Throughput is the plain IPC sum (no alone baselines: the channel axis
// changes the machine, not just the policy).
func AblationMemSide(sc Scale) *Table {
	// DSPatch trains its signature table on page-buffer turnover, which
	// needs more region traffic than the quick scale generates.
	if sc.Insts < 400_000 {
		sc.Insts = 400_000
	}
	mixes := []struct {
		name  string
		names []string
	}{
		// Long streams: dense spatial footprints, accurate prefetches.
		{"streams", []string{"swim", "libquantum", "bwaves", "leslie3d"}},
		// Pointer chases and bursts: sparse footprints, low accuracy.
		{"irregular", []string{"art", "omnetpp", "xalancbmk", "mcf"}},
	}
	chans := []int{4, 1}
	pols := []struct {
		name string
		apd  bool
	}{
		{"aps+memside", false},
		{"padc+memside", true},
	}

	type cell struct {
		thru float64
		ds   stats.DSPatchStats
		ms   stats.MemSideStats
	}
	grid := make([]cell, len(mixes)*len(chans)*len(pols))
	parallel(len(grid), func(i int) {
		mi := i / (len(chans) * len(pols))
		ci := i / len(pols) % len(chans)
		pi := i % len(pols)
		cfg := baseConfig(4, sc)
		cfg.DRAM.Channels = chans[ci]
		cfg.Policy = memctrl.APS
		cfg.PADC.EnableAPD = pols[pi].apd
		cfg.Prefetcher = sim.PFDSPatch
		cfg.MemSide = true
		for _, n := range mixes[mi].names {
			cfg.Workload = append(cfg.Workload, workload.MustByName(n))
		}
		res := runOne(cfg)
		c := cell{}
		for _, pc := range res.PerCore {
			c.thru += pc.IPC()
		}
		if res.DSPatch != nil {
			c.ds = *res.DSPatch
		}
		if res.MemSide != nil {
			c.ms = *res.MemSide
		}
		grid[i] = c
	})

	t := &Table{
		Title: "Ablation: memory-side prefetching — DSPatch bias x PADC gating (4-core)",
		Header: []string{"mix", "chans", "policy", "thruput", "headroom",
			"covp", "accp", "ms-issued", "ms-used", "ms-acc", "ms-gated"},
	}
	for i, c := range grid {
		mi := i / (len(chans) * len(pols))
		ci := i / len(pols) % len(chans)
		pi := i % len(pols)
		t.Add(mixes[mi].name, fmt.Sprintf("%d", chans[ci]), pols[pi].name,
			fmt.Sprintf("%.3f", c.thru),
			fmt.Sprintf("%.2f", c.ds.Headroom),
			fmt.Sprintf("%d", c.ds.CovPSelected),
			fmt.Sprintf("%d", c.ds.AccPSelected),
			fmt.Sprintf("%d", c.ms.Issued),
			fmt.Sprintf("%d", c.ms.Used),
			fmt.Sprintf("%.1f%%", c.ms.ACC()*100),
			fmt.Sprintf("%d", c.ms.GateClosed))
	}
	return t
}

// AblationAddressMapping compares the default row-interleaved bank mapping
// against permutation-based mapping and a single-bank strawman, isolating
// how much of each policy's behavior depends on bank-level parallelism.
func AblationAddressMapping(sc Scale) *Table {
	points := []sweepPoint{
		{Label: "8-banks", Mutate: nil},
		{Label: "8-banks-perm", Mutate: func(c *sim.Config) { c.DRAM.Permutation = true }},
		{Label: "4-banks", Mutate: func(c *sim.Config) { c.DRAM.Banks = 4 }},
		{Label: "16-banks", Mutate: func(c *sim.Config) { c.DRAM.Banks = 16 }},
	}
	variants := []Variant{DemandFirst(), DemandPrefEqual(), APSOnly(), PADC()}
	return sweepVariantsOverMixesOn(Mixes(4, sc.Mixes4),
		"Ablation: bank count and mapping (4-core WS)", sc, variants, points)
}
