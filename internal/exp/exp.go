// Package exp contains one runner per figure and table of the paper's
// evaluation (§6). Each runner builds the simulated systems, executes the
// workloads, and returns a Table holding the same rows or series the paper
// plots, so the benchmark harness (bench_test.go) and the padcsim CLI can
// regenerate every experiment.
package exp

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"padc/internal/core"
	"padc/internal/memctrl"
	"padc/internal/runner"
	"padc/internal/sim"
	"padc/internal/stats"
	"padc/internal/telemetry"
	"padc/internal/workload"
)

// Scale controls how much simulation an experiment runs: Quick keeps
// test/bench latency low, Full approaches the paper's workload counts.
type Scale struct {
	Insts  uint64 // instructions per core
	Mixes2 int    // 2-core workload count (paper: 54)
	Mixes4 int    // 4-core workload count (paper: 32)
	Mixes8 int    // 8-core workload count (paper: 21)
}

// Quick is the scale used by tests and default benches.
func Quick() Scale { return Scale{Insts: 150_000, Mixes2: 8, Mixes4: 6, Mixes8: 4} }

// Full approaches the paper's scale (use via the CLI; runs take minutes).
func Full() Scale { return Scale{Insts: 400_000, Mixes2: 54, Mixes4: 32, Mixes8: 21} }

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Addf appends a row where numeric cells are formatted with %.3f.
func (t *Table) Addf(label string, vals ...float64) {
	row := []string{label}
	for _, v := range vals {
		row = append(row, fmt.Sprintf("%.3f", v))
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t Table) String() string {
	width := make([]int, 0, len(t.Header))
	rows := append([][]string{t.Header}, t.Rows...)
	for _, r := range rows {
		for i, c := range r {
			if i >= len(width) {
				width = append(width, 0)
			}
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	for ri, r := range rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			b.WriteString(strings.Repeat("-", sum(width)+2*(len(width)-1)))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// TelemetryTable renders a run's telemetry summary in the experiment
// Table shape, so runners and the CLI can embed observability data under
// their result tables.
func TelemetryTable(tel *telemetry.Telemetry) *Table {
	t := &Table{Title: "telemetry", Header: []string{"metric", "value"}}
	if tel == nil {
		t.Add("telemetry", "disabled")
		return t
	}
	for _, name := range tel.Names() {
		v, _ := tel.Value(name)
		t.Add(name, fmt.Sprintf("%.4g", v))
	}
	counts := tel.EventCounts()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		t.Add("events/"+k, fmt.Sprintf("%d", counts[k]))
	}
	return t
}

// Variant is one system configuration under test.
type Variant struct {
	Name  string
	Apply func(*sim.Config)
}

// NoPref disables prefetching entirely.
func NoPref() Variant {
	return Variant{"no-pref", func(c *sim.Config) {
		c.Prefetcher = sim.PFNone
		c.PADC.EnableAPD = false
	}}
}

// DemandFirst is the paper's baseline rigid policy.
func DemandFirst() Variant {
	return Variant{"demand-first", func(c *sim.Config) {
		c.Policy = memctrl.DemandFirst
		c.PADC.EnableAPD = false
	}}
}

// DemandPrefEqual is plain FR-FCFS.
func DemandPrefEqual() Variant {
	return Variant{"demand-pref-equal", func(c *sim.Config) {
		c.Policy = memctrl.DemandPrefEqual
		c.PADC.EnableAPD = false
	}}
}

// PrefetchFirst is the footnote-2 strawman.
func PrefetchFirst() Variant {
	return Variant{"prefetch-first", func(c *sim.Config) {
		c.Policy = memctrl.PrefetchFirst
		c.PADC.EnableAPD = false
	}}
}

// APSOnly enables adaptive scheduling without dropping.
func APSOnly() Variant {
	return Variant{"aps-only", func(c *sim.Config) {
		c.Policy = memctrl.APS
		c.PADC.EnableAPD = false
	}}
}

// PADC is the full mechanism: APS plus APD.
func PADC() Variant {
	return Variant{"aps-apd (PADC)", func(c *sim.Config) { c.Policy = memctrl.APS }}
}

// PADCRank is PADC with the §6.5 shortest-job ranking.
func PADCRank() Variant {
	return Variant{"PADC-rank", func(c *sim.Config) { c.Policy = memctrl.APSRank }}
}

// RuleStack schedules with an explicit priority-rule stack from the
// sched kernel (e.g. "rules:critical,rowhit,urgent,fcfs"). APD is off so
// the run isolates the priority order under study.
func RuleStack(rules string) Variant {
	return Variant{rules, func(c *sim.Config) {
		c.Rules = rules
		c.PADC.EnableAPD = false
	}}
}

// StandardVariants returns the five configurations most figures compare.
func StandardVariants() []Variant {
	return []Variant{NoPref(), DemandFirst(), DemandPrefEqual(), APSOnly(), PADC()}
}

// baseConfig builds the paper baseline for ncores at the given scale. The
// default PADC config has both mechanisms on; variants adjust.
func baseConfig(ncores int, sc Scale) sim.Config {
	cfg := sim.Baseline(ncores)
	cfg.TargetInsts = sc.Insts
	cfg.PADC = core.DefaultConfig()
	return cfg
}

// runOne builds and runs a single system; errors surface as panics since
// experiment configs are statically correct by construction.
func runOne(cfg sim.Config) stats.Results {
	res, err := sim.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	return res
}

// parallel fans n jobs out on the shared worker pool (internal/runner);
// the padcsim -jobs flag sizes it process-wide.
func parallel(n int, job func(i int)) { runner.Parallel(n, job) }

// AloneIPC computes each benchmark's IPC when running alone on the
// ncores-provisioned system with the demand-first policy (the paper's
// IPC_alone definition), memoized per provisioning.
type AloneIPC struct {
	mu    sync.Mutex
	cache map[string]float64
}

// NewAloneIPC returns an empty cache.
func NewAloneIPC() *AloneIPC { return &AloneIPC{cache: make(map[string]float64)} }

// Get returns IPC_alone for prof under the given provisioning, computing
// and caching it on first use. mutate optionally applies non-policy system
// changes (cache size, channels, ...) that must match the together-run.
func (a *AloneIPC) Get(prof workload.Profile, ncores int, sc Scale, mutate func(*sim.Config)) float64 {
	key := fmt.Sprintf("%s/%d", prof.Name, ncores)
	if mutate != nil {
		key += "/mut"
	}
	a.mu.Lock()
	if v, ok := a.cache[key]; ok {
		a.mu.Unlock()
		return v
	}
	a.mu.Unlock()

	cfg := baseConfig(ncores, sc)
	cfg.Policy = memctrl.DemandFirst
	cfg.PADC.EnableAPD = false
	if mutate != nil {
		mutate(&cfg)
	}
	cfg.Workload = []workload.Profile{prof}
	res := runOne(cfg)
	v := res.PerCore[0].IPC()

	a.mu.Lock()
	a.cache[key] = v
	a.mu.Unlock()
	return v
}

// MixResult summarizes one multiprogrammed run.
type MixResult struct {
	WS, HS, UF float64
	Bus        stats.BusTraffic
	Dropped    uint64
	IS         []float64
	Res        stats.Results
}

// RunMix executes mix under variant v on an ncores system and computes the
// speedup metrics against the demand-first alone baselines.
func RunMix(mix []workload.Profile, ncores int, sc Scale, v Variant, alone *AloneIPC, mutate func(*sim.Config)) MixResult {
	cfg := baseConfig(ncores, sc)
	if mutate != nil {
		mutate(&cfg)
	}
	v.Apply(&cfg)
	cfg.Workload = append([]workload.Profile(nil), mix...)
	res := runOne(cfg)

	ipcAlone := make([]float64, len(mix))
	for i, p := range mix {
		ipcAlone[i] = alone.Get(p, ncores, sc, mutate)
	}
	return MixResult{
		WS:      stats.WS(res.PerCore, ipcAlone),
		HS:      stats.HS(res.PerCore, ipcAlone),
		UF:      stats.UF(res.PerCore, ipcAlone),
		Bus:     res.Bus,
		Dropped: res.Dropped,
		IS:      stats.IndividualSpeedups(res.PerCore, ipcAlone),
		Res:     res,
	}
}

// AverageMixes runs every mix under every variant and returns per-variant
// averaged WS/HS/UF/traffic — the shape of Figures 9, 16, 17, 19–22.
func AverageMixes(mixes [][]workload.Profile, ncores int, sc Scale, variants []Variant, mutate func(*sim.Config)) *Table {
	alone := NewAloneIPC()
	// Warm the alone cache in parallel first.
	uniq := map[string]workload.Profile{}
	for _, m := range mixes {
		for _, p := range m {
			uniq[p.Name] = p
		}
	}
	names := make([]string, 0, len(uniq))
	for n := range uniq {
		names = append(names, n)
	}
	sort.Strings(names)
	parallel(len(names), func(i int) { alone.Get(uniq[names[i]], ncores, sc, mutate) })

	type cell struct{ ws, hs, uf, bus float64 }
	agg := make([][]cell, len(variants))
	for vi := range variants {
		agg[vi] = make([]cell, len(mixes))
	}
	type job struct{ vi, mi int }
	jobs := make([]job, 0, len(variants)*len(mixes))
	for vi := range variants {
		for mi := range mixes {
			jobs = append(jobs, job{vi, mi})
		}
	}
	parallel(len(jobs), func(i int) {
		j := jobs[i]
		r := RunMix(mixes[j.mi], ncores, sc, variants[j.vi], alone, mutate)
		agg[j.vi][j.mi] = cell{r.WS, r.HS, r.UF, float64(r.Bus.Total())}
	})

	t := &Table{
		Title:  fmt.Sprintf("%d-core average over %d workloads", ncores, len(mixes)),
		Header: []string{"policy", "WS", "HS", "UF", "bus(Klines)"},
	}
	for vi, v := range variants {
		var ws, hs, uf, bus float64
		for _, c := range agg[vi] {
			ws += c.ws
			hs += c.hs
			uf += c.uf
			bus += c.bus
		}
		n := float64(len(mixes))
		t.Addf(v.Name, ws/n, hs/n, uf/n, bus/n/1000)
	}
	return t
}
