package exp

import (
	"strings"
	"testing"

	"padc/internal/cpu"
	"padc/internal/stats"
)

func TestProfileTableRendering(t *testing.T) {
	res := stats.Results{PerCore: []stats.CoreResult{
		{Benchmark: "swim", Attribution: []uint64{100, 800, 50, 25, 25}},
		{Benchmark: "eon"}, // no attribution: skipped
	}}
	out := ProfileTable(res).String()
	for _, want := range append(cpu.CycleClassNames(), "swim", "10.0%", "80.0%", "1000") {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "eon") {
		t.Errorf("core without attribution should be skipped:\n%s", out)
	}
}

func TestProfileTableDisabled(t *testing.T) {
	out := ProfileTable(stats.Results{PerCore: []stats.CoreResult{{Benchmark: "swim"}}}).String()
	if !strings.Contains(out, "disabled") {
		t.Errorf("all-disabled table should say so:\n%s", out)
	}
}
