package exp

import (
	"padc/internal/dram"
	"padc/internal/memctrl"
)

// fig2Run drives the DRAM controller directly through the paper's Figure 2
// scenario: one bank with row A open and three buffered requests —
// prefetch X (row A), demand Y (row B), prefetch Z (row A). It returns the
// completion cycle of each request under the given policy.
//
// With the paper's conceptual latencies (row-hit 100, row-conflict 300;
// our timing constants scale those), demand-first services Y, X, Z turning
// X into a conflict, while demand-prefetch-equal services X, Z, Y keeping
// both prefetches row-hits — the 725- versus 575-cycle contrast of
// Figure 2(b).
func fig2Run(pol memctrl.Policy) (x, y, z uint64) {
	cfg := dram.DefaultConfig()
	cfg.Banks = 1
	ch := dram.NewChannel(cfg)
	const rowA, rowB = 10, 20
	ch.Banks[0].OpenRow = rowA

	ctrl := memctrl.New(pol, ch, 16, nil)
	mk := func(line uint64, prefetch bool, row uint64) *memctrl.Request {
		return &memctrl.Request{
			Line:     line,
			Addr:     dram.Address{Bank: 0, Row: row},
			Prefetch: prefetch,
			WasPref:  prefetch,
		}
	}
	reqX := mk(1, true, rowA)
	reqY := mk(2, false, rowB)
	reqZ := mk(3, true, rowA)
	ctrl.Enqueue(reqX)
	ctrl.Enqueue(reqY)
	ctrl.Enqueue(reqZ)

	for now := uint64(1); now < 100_000; now++ {
		done := ctrl.Tick(now, 1)
		for _, r := range done {
			switch r {
			case reqX:
				x = r.FinishAt
			case reqY:
				y = r.FinishAt
			case reqZ:
				z = r.FinishAt
			}
		}
		if x != 0 && y != 0 && z != 0 {
			break
		}
	}
	return x, y, z
}
