package exp

import (
	"fmt"

	"padc/internal/core"
	"padc/internal/memctrl"
	"padc/internal/sim"
	"padc/internal/workload"
)

// sweepVariantsOverMixes averages WS over the 4-core mixes for each
// (variant, system-mutation) pair — the engine behind the §6.7–6.14
// sensitivity figures.
func sweepVariantsOverMixes(title string, sc Scale, variants []Variant, points []struct {
	Label  string
	Mutate func(*sim.Config)
}) *Table {
	return sweepVariantsOverMixesOn(Mixes(4, sc.Mixes4), title, sc, variants, points)
}

// sweepVariantsOverMixesOn is sweepVariantsOverMixes with an explicit
// workload set.
func sweepVariantsOverMixesOn(mixes [][]workload.Profile, title string, sc Scale, variants []Variant, points []struct {
	Label  string
	Mutate func(*sim.Config)
}) *Table {
	t := &Table{Title: title}
	t.Header = append([]string{"policy"}, labelsOf(points)...)
	type cell struct{ ws float64 }
	grid := make([][]cell, len(variants))
	for vi := range grid {
		grid[vi] = make([]cell, len(points))
	}
	type job struct{ vi, pi int }
	var jobs []job
	for vi := range variants {
		for pi := range points {
			jobs = append(jobs, job{vi, pi})
		}
	}
	parallel(len(jobs), func(i int) {
		j := jobs[i]
		alone := NewAloneIPC()
		var ws float64
		for _, mix := range mixes {
			r := RunMix(mix, 4, sc, variants[j.vi], alone, points[j.pi].Mutate)
			ws += r.WS
		}
		grid[j.vi][j.pi] = cell{ws / float64(len(mixes))}
	})
	for vi, v := range variants {
		row := []string{v.Name}
		for pi := range points {
			row = append(row, fmt.Sprintf("%.3f", grid[vi][pi].ws))
		}
		t.Add(row...)
	}
	return t
}

func labelsOf(points []struct {
	Label  string
	Mutate func(*sim.Config)
}) []string {
	out := make([]string, len(points))
	for i, p := range points {
		out[i] = p.Label
	}
	return out
}

type sweepPoint = struct {
	Label  string
	Mutate func(*sim.Config)
}

// Fig23 reproduces Figure 23: WS across DRAM row-buffer sizes 2KB–128KB.
func Fig23(sc Scale) *Table {
	var points []sweepPoint
	for _, kb := range []uint64{2, 4, 8, 16, 32, 64, 128} {
		kb := kb
		points = append(points, sweepPoint{
			Label:  fmt.Sprintf("%dKB", kb),
			Mutate: func(c *sim.Config) { c.DRAM.RowBytes = kb << 10 },
		})
	}
	variants := []Variant{NoPref(), DemandFirst(), DemandPrefEqual(), APSOnly(), PADC()}
	return sweepVariantsOverMixes("Figure 23: WS vs DRAM row-buffer size (4-core)", sc, variants, points)
}

// Fig24 reproduces Figure 24: the closed-row policy.
func Fig24(sc Scale) *Table {
	closed := func(name string, v Variant) Variant {
		return Variant{name, func(c *sim.Config) {
			v.Apply(c)
			c.DRAM.ClosedRow = true
		}}
	}
	variants := []Variant{
		DemandFirst(),
		closed("demand-first-closed", DemandFirst()),
		closed("demand-pref-equal-closed", DemandPrefEqual()),
		closed("aps-closed", APSOnly()),
		closed("PADC-closed", PADC()),
		PADC(),
	}
	points := []sweepPoint{{Label: "WS", Mutate: nil}}
	return sweepVariantsOverMixes("Figure 24: closed-row policy (4-core)", sc, variants, points)
}

// Fig25 reproduces Figure 25: WS across per-core L2 sizes 512KB–8MB. One
// member of each mix is replaced by a cache-sensitive profile (a 1.5MB
// shuffled loop) so reuse in the 512KB–8MB band is expressible at
// simulation-friendly run lengths; the paper's 200M-instruction SPEC runs
// carry that reuse naturally.
func Fig25(sc Scale) *Table {
	var points []sweepPoint
	for _, kb := range []uint64{512, 1024, 2048, 4096, 8192} {
		kb := kb
		label := fmt.Sprintf("%dKB", kb)
		if kb >= 1024 {
			label = fmt.Sprintf("%dMB", kb/1024)
		}
		points = append(points, sweepPoint{
			Label:  label,
			Mutate: func(c *sim.Config) { c.L2.Bytes = kb << 10 },
		})
	}
	variants := []Variant{NoPref(), DemandFirst(), DemandPrefEqual(), APSOnly(), PADC()}
	mixes := Mixes(4, sc.Mixes4)
	for i := range mixes {
		mixes[i][0] = workload.CacheSensitive(fmt.Sprintf("cacheset-%d", i), 24576)
	}
	return sweepVariantsOverMixesOn(mixes, "Figure 25: WS vs per-core L2 size (4-core)", sc, variants, points)
}

// Fig26 reproduces Figures 26 (4-core) and 27 (8-core): a shared last-
// level cache sized as the sum of the private ones, with associativity
// scaled by core count.
func Fig26(ncores int, sc Scale) *Table {
	count := sc.Mixes4
	if ncores == 8 {
		count = sc.Mixes8
	}
	shared := func(c *sim.Config) {
		c.SharedL2 = true
		c.L2.Bytes = uint64(ncores) * (512 << 10)
		c.L2.Ways = 4 * ncores
		c.MSHR = c.BufferSlots
	}
	t := AverageMixes(Mixes(ncores, count), ncores, sc, StandardVariants(), shared)
	t.Title = fmt.Sprintf("Figures 26/27: shared L2, %d cores", ncores)
	return t
}

// Fig28 reproduces Figure 28: PADC under the stride, C/DC and Markov
// prefetchers.
func Fig28(sc Scale) *Table {
	mixes := Mixes(4, sc.Mixes4)
	t := &Table{
		Title:  "Figure 28: PADC with other prefetchers (4-core WS / bus Klines)",
		Header: []string{"prefetcher", "no-pref", "demand-first", "demand-pref-equal", "PADC", "bus-df(K)", "bus-padc(K)"},
	}
	for _, pk := range []sim.PrefetcherKind{sim.PFStride, sim.PFCDC, sim.PFMarkov} {
		pk := pk
		with := func(c *sim.Config) { c.Prefetcher = pk }
		variants := []Variant{NoPref(), DemandFirst(), DemandPrefEqual(), PADC()}
		alone := NewAloneIPC()
		ws := make([]float64, len(variants))
		bus := make([]float64, len(variants))
		type job struct{ vi, mi int }
		var jobs []job
		for vi := range variants {
			for mi := range mixes {
				jobs = append(jobs, job{vi, mi})
			}
		}
		wsAcc := make([][]float64, len(variants))
		busAcc := make([][]float64, len(variants))
		for vi := range variants {
			wsAcc[vi] = make([]float64, len(mixes))
			busAcc[vi] = make([]float64, len(mixes))
		}
		parallel(len(jobs), func(i int) {
			j := jobs[i]
			r := RunMix(mixes[j.mi], 4, sc, variants[j.vi], alone, with)
			wsAcc[j.vi][j.mi] = r.WS
			busAcc[j.vi][j.mi] = float64(r.Bus.Total())
		})
		for vi := range variants {
			for mi := range mixes {
				ws[vi] += wsAcc[vi][mi]
				bus[vi] += busAcc[vi][mi]
			}
			ws[vi] /= float64(len(mixes))
			bus[vi] /= float64(len(mixes))
		}
		t.Add(pk.String(),
			fmt.Sprintf("%.3f", ws[0]), fmt.Sprintf("%.3f", ws[1]),
			fmt.Sprintf("%.3f", ws[2]), fmt.Sprintf("%.3f", ws[3]),
			fmt.Sprintf("%.1f", bus[1]/1000), fmt.Sprintf("%.1f", bus[3]/1000))
	}
	return t
}

// Fig29 reproduces Figures 29 and 30: DDPF and FDP under demand-first and
// combined with APS, against APD.
func Fig29(sc Scale) *Table {
	withFilter := func(name string, pol Variant, f sim.FilterKind) Variant {
		return Variant{name, func(c *sim.Config) {
			pol.Apply(c)
			c.Filter = f
		}}
	}
	variants := []Variant{
		DemandFirst(),
		withFilter("demand-first-ddpf", DemandFirst(), sim.FilterDDPF),
		withFilter("demand-first-fdp", DemandFirst(), sim.FilterFDP),
		{"demand-first-apd", func(c *sim.Config) {
			// APD without APS: adaptive dropping on top of rigid
			// demand-first scheduling.
			c.Policy = memctrl.DemandFirst
			c.PADC.EnableAPD = true
		}},
		withFilter("demand-pref-equal-ddpf", DemandPrefEqual(), sim.FilterDDPF),
		withFilter("demand-pref-equal-fdp", DemandPrefEqual(), sim.FilterFDP),
		withFilter("aps-ddpf", APSOnly(), sim.FilterDDPF),
		withFilter("aps-fdp", APSOnly(), sim.FilterFDP),
		PADC(),
	}
	mixes := Mixes(4, sc.Mixes4)
	t := &Table{
		Title:  "Figures 29-30: prefetch filtering (DDPF/FDP) vs APD (4-core)",
		Header: []string{"policy", "WS", "bus(K)"},
	}
	alone := NewAloneIPC()
	type acc struct{ ws, bus float64 }
	out := make([]acc, len(variants))
	type job struct{ vi, mi int }
	var jobs []job
	for vi := range variants {
		for mi := range mixes {
			jobs = append(jobs, job{vi, mi})
		}
	}
	grid := make([][]acc, len(variants))
	for vi := range grid {
		grid[vi] = make([]acc, len(mixes))
	}
	parallel(len(jobs), func(i int) {
		j := jobs[i]
		r := RunMix(mixes[j.mi], 4, sc, variants[j.vi], alone, nil)
		grid[j.vi][j.mi] = acc{r.WS, float64(r.Bus.Total())}
	})
	for vi := range variants {
		for mi := range mixes {
			out[vi].ws += grid[vi][mi].ws
			out[vi].bus += grid[vi][mi].bus
		}
		n := float64(len(mixes))
		t.Add(variants[vi].Name, fmt.Sprintf("%.3f", out[vi].ws/n), fmt.Sprintf("%.1f", out[vi].bus/n/1000))
	}
	return t
}

// Fig31 reproduces Figure 31: permutation-based page interleaving.
func Fig31(sc Scale) *Table {
	perm := func(name string, v Variant) Variant {
		return Variant{name, func(c *sim.Config) {
			v.Apply(c)
			c.DRAM.Permutation = true
		}}
	}
	variants := []Variant{
		NoPref(), perm("no-pref-perm", NoPref()),
		DemandFirst(), perm("demand-first-perm", DemandFirst()),
		APSOnly(), perm("aps-only-perm", APSOnly()),
		PADC(), perm("PADC-perm", PADC()),
	}
	points := []sweepPoint{{Label: "WS", Mutate: nil}}
	return sweepVariantsOverMixes("Figure 31: permutation-based interleaving (4-core)", sc, variants, points)
}

// Fig32 reproduces Figure 32: PADC on a runahead-execution CMP.
func Fig32(sc Scale) *Table {
	ra := func(name string, v Variant) Variant {
		return Variant{name, func(c *sim.Config) {
			v.Apply(c)
			c.Core.Runahead = true
		}}
	}
	variants := []Variant{
		NoPref(), ra("no-pref-ra", NoPref()),
		DemandFirst(), ra("demand-first-ra", DemandFirst()),
		APSOnly(), ra("aps-only-ra", APSOnly()),
		PADC(), ra("PADC-ra", PADC()),
	}
	points := []sweepPoint{{Label: "WS", Mutate: nil}}
	return sweepVariantsOverMixes("Figure 32: runahead execution (4-core)", sc, variants, points)
}

// Table1 reproduces Tables 1 and 2: the PADC hardware cost on the 4-core
// baseline.
func Table1() *Table {
	cfg := sim.Baseline(4)
	cost := core.HardwareCost{
		Cores:        4,
		CacheLines:   cfg.L2.Lines(),
		BufferSlots:  cfg.BufferSlots,
		L2CacheBytes: cfg.L2.Bytes,
	}
	t := &Table{
		Title:  "Tables 1-2: PADC hardware cost (4-core baseline)",
		Header: []string{"group", "field", "bits"},
	}
	for _, it := range cost.Items() {
		t.Add(it.Group, it.Field, fmt.Sprintf("%d", it.Bits))
	}
	t.Add("total", "", fmt.Sprintf("%d (%.2fKB, %.2f%% of L2)",
		cost.TotalBits(), float64(cost.TotalBits())/8192, cost.FractionOfL2()*100))
	t.Add("total w/o P", "", fmt.Sprintf("%d bits", cost.TotalBitsWithoutP()))
	return t
}

var _ = workload.Profile{}
