package exp

import (
	"fmt"

	"padc/internal/cpu"
	"padc/internal/stats"
)

// ProfileTable renders the per-core cycle-accounting profile of a run:
// one row per core, one column per cpu.CycleClass, each cell the percent
// of that core's cycles (to its instruction target) attributed to the
// class. The classes partition runtime, so every row sums to 100% up to
// rounding — the identity the profiler guarantees.
func ProfileTable(res stats.Results) *Table {
	names := make([]string, len(res.PerCore))
	attribs := make([][]uint64, len(res.PerCore))
	for i, c := range res.PerCore {
		names[i] = c.Benchmark
		attribs[i] = c.Attribution
	}
	return ProfileRows(names, attribs)
}

// ProfileRows is ProfileTable over raw rows (benchmark name plus
// attribution vector per core), for callers holding the public result
// type rather than stats.Results. Cores with a nil attribution are
// skipped.
func ProfileRows(benchmarks []string, attribs [][]uint64) *Table {
	header := append([]string{"core", "benchmark"}, cpu.CycleClassNames()...)
	header = append(header, "cycles")
	t := &Table{Title: "cycle attribution (% of core cycles to target)", Header: header}
	for i, attr := range attribs {
		if len(attr) == 0 {
			continue
		}
		var total uint64
		for _, v := range attr {
			total += v
		}
		row := []string{fmt.Sprintf("%d", i), benchmarks[i]}
		for _, v := range attr {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(v) / float64(total)
			}
			row = append(row, fmt.Sprintf("%.1f%%", pct))
		}
		row = append(row, fmt.Sprintf("%d", total))
		t.Rows = append(t.Rows, row)
	}
	if len(t.Rows) == 0 {
		t.Add("profiling", "disabled")
	}
	return t
}
