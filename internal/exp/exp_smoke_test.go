package exp

import (
	"fmt"
	"strings"
	"testing"

	"padc/internal/telemetry"
	"padc/internal/workload"
)

func tinyScale() Scale { return Scale{Insts: 60_000, Mixes2: 2, Mixes4: 2, Mixes8: 2} }

func TestFig2Shape(t *testing.T) {
	xF, yF, zF := fig2Run(1) // demand-first
	xE, yE, zE := fig2Run(0) // demand-pref-equal
	t.Logf("demand-first: X=%d Y=%d Z=%d | equal: X=%d Y=%d Z=%d", xF, yF, zF, xE, yE, zE)
	// Demand-first finishes Y first but makes X a conflict; equal finishes
	// X and Z first as row hits. The all-served makespan is smaller under
	// equal (the 725 vs 575 contrast).
	if !(yF < xF && xF < zF) {
		t.Errorf("demand-first order wrong: X=%d Y=%d Z=%d", xF, yF, zF)
	}
	if !(xE < zE && zE < yE) {
		t.Errorf("equal order wrong: X=%d Y=%d Z=%d", xE, yE, zE)
	}
	last := func(a, b, c uint64) uint64 { return max(a, max(b, c)) }
	if last(xE, yE, zE) >= last(xF, yF, zF) {
		t.Errorf("equal makespan %d should beat demand-first %d", last(xE, yE, zE), last(xF, yF, zF))
	}
}

func TestFig1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	tab := Fig1(tinyScale())
	t.Logf("\n%s", tab)
	if len(tab.Rows) != 10 {
		t.Fatalf("want 10 rows, got %d", len(tab.Rows))
	}
}

func TestTable1Cost(t *testing.T) {
	tab := Table1()
	out := tab.String()
	if !strings.Contains(out, "AGE") || !strings.Contains(out, "PSC") {
		t.Fatalf("missing cost fields:\n%s", out)
	}
	t.Logf("\n%s", tab)
}

func TestTelemetryTable(t *testing.T) {
	if got := TelemetryTable(nil).String(); !strings.Contains(got, "disabled") {
		t.Fatalf("nil telemetry table:\n%s", got)
	}
	tel := telemetry.New(telemetry.Options{EpochCycles: 5_000})
	cfg := baseConfig(1, tinyScale())
	cfg.Telemetry = tel
	cfg.Workload = []workload.Profile{workload.MustByName("swim")}
	runOne(cfg)
	tab := TelemetryTable(tel)
	out := tab.String()
	for _, want := range []string{"core0/acc_estimate", "memctrl0/enqueued", "events/complete"} {
		if !strings.Contains(out, want) {
			t.Fatalf("telemetry table missing %q:\n%s", want, out)
		}
	}
	t.Logf("\n%s", tab)
}

func TestAblationTopologyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	tab := AblationTopology(Scale{Insts: 60_000, Mixes4: 1})
	t.Logf("\n%s", tab)
	if len(tab.Rows) != 6 { // 3 variants x 2 topologies
		t.Fatalf("want 6 rows, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		farShare := row[4]
		switch row[1] {
		case "flat":
			if farShare != "-" {
				t.Errorf("flat row has a far-tier share: %v", row)
			}
		case "far-tier":
			// Steering must have routed real traffic to the slow tier.
			if farShare == "-" || farShare == "0.0%" {
				t.Errorf("far-tier row shows no far traffic: %v", row)
			}
		default:
			t.Errorf("unexpected topology label %q", row[1])
		}
	}
}

func TestAblationRefreshShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	// Long enough that an all-bank obligation stream exhausts its 8-credit
	// postpone window (8 x tREFI ~ 250K cycles) and hits the forced path;
	// one mix keeps the sweep affordable.
	tab := AblationRefresh(Scale{Insts: 150_000, Mixes4: 1})
	t.Logf("\n%s", tab)
	if len(tab.Rows) != 12 { // 4 variants x 3 refresh modes
		t.Fatalf("want 12 rows, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		issued, blocked := row[3], row[7]
		if row[1] == "off" {
			if issued != "0" || blocked != "0.0" {
				t.Errorf("refresh-off row has maintenance activity: %v", row)
			}
			continue
		}
		// Refresh on: the engine must have issued refreshes and charged
		// requests for waiting behind them.
		if issued == "0" {
			t.Errorf("refresh-on row issued nothing: %v", row)
		}
		if blocked == "0.0" {
			t.Errorf("refresh-on row blocked no request cycles: %v", row)
		}
	}
}

func TestAblationMemSideShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	tab := AblationMemSide(Scale{}) // the runner floors Insts itself
	t.Logf("\n%s", tab)
	if len(tab.Rows) != 8 { // 2 mixes x 2 channel counts x 2 policies
		t.Fatalf("want 8 rows, got %d", len(tab.Rows))
	}
	atoi := func(s string) int {
		n := 0
		fmt.Sscanf(s, "%d", &n)
		return n
	}
	for _, row := range tab.Rows {
		mix, chans, pol := row[0], row[1], row[2]
		covp, accp := atoi(row[5]), atoi(row[6])
		gated := atoi(row[10])
		// Bias selector: CovP on the idle 4-channel bus; AccP on the
		// saturated single channel, but only where the pressure persists —
		// on the irregular mix CovP can't earn the accuracy promotion, and
		// without APD nothing sheds the memory-side traffic keeping the bus
		// busy. (With APD the gate frees bandwidth, headroom recovers, and
		// the selector legitimately drifts back toward coverage.)
		if chans == "4" && covp <= accp {
			t.Errorf("%s/%sch/%s: idle bus should favor CovP (covp=%d accp=%d)", mix, chans, pol, covp, accp)
		}
		if mix == "irregular" && chans == "1" && pol == "aps+memside" && accp <= covp {
			t.Errorf("%s/%sch/%s: saturated bus should favor AccP (covp=%d accp=%d)", mix, chans, pol, covp, accp)
		}
		// PADC gate: only APD configurations may gate generation, and on
		// the low-accuracy mix they must.
		if pol == "aps+memside" && gated != 0 {
			t.Errorf("%s/%sch/%s: gate closed without APD (%d)", mix, chans, pol, gated)
		}
		if pol == "padc+memside" && mix == "irregular" && gated == 0 {
			t.Errorf("%s/%sch/%s: low-accuracy mix never tripped the APD gate", mix, chans, pol)
		}
		if atoi(row[7]) == 0 {
			t.Errorf("%s/%sch/%s: memory-side path issued nothing", mix, chans, pol)
		}
	}
}
