package exp

import (
	"fmt"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}}
	tab.Add("x", "1")
	tab.Addf("y", 2.5)
	out := tab.String()
	for _, want := range []string{"== T ==", "a", "bb", "x", "2.500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestVariantsSetDistinctConfigs(t *testing.T) {
	for _, v := range StandardVariants() {
		cfg := baseConfig(4, Quick())
		v.Apply(&cfg)
		if v.Name == "no-pref" && cfg.Prefetcher != 0 {
			t.Errorf("no-pref left the prefetcher on")
		}
		if v.Name == "aps-apd (PADC)" && !cfg.PADC.EnableAPD {
			t.Errorf("PADC variant lost APD")
		}
		if v.Name == "aps-only" && cfg.PADC.EnableAPD {
			t.Errorf("aps-only kept APD")
		}
	}
}

func TestMixesStableAcrossCalls(t *testing.T) {
	a, b := Mixes(4, 3), Mixes(4, 3)
	for i := range a {
		for j := range a[i] {
			if a[i][j].Name != b[i][j].Name {
				t.Fatal("experiment mixes must be deterministic")
			}
		}
	}
}

func TestFig6QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	tab := Fig6(tinyScale(), false)
	t.Logf("\n%s", tab)
	g := tab.Rows[len(tab.Rows)-1] // gmean row
	if !strings.HasPrefix(g[0], "gmean") {
		t.Fatalf("last row should be the gmean: %v", g)
	}
	// Column order: no-pref, demand-first(=1.0), equal, aps, padc.
	parse := func(s string) float64 {
		var v float64
		if _, err := fmt.Sscan(s, &v); err != nil {
			t.Fatal(err)
		}
		return v
	}
	df, aps, padc := parse(g[2]), parse(g[4]), parse(g[5])
	if df < 0.99 || df > 1.01 {
		t.Fatalf("demand-first normalization broken: %v", df)
	}
	// The paper's headline: the adaptive policies beat demand-first on
	// average; allow slack at the tiny scale.
	if aps < 0.95*df || padc < 0.95*df {
		t.Errorf("adaptive policies collapsed: aps=%v padc=%v", aps, padc)
	}
}

func TestAloneIPCCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	a := NewAloneIPC()
	mix := Mixes(4, 1)[0]
	v1 := a.Get(mix[0], 4, tinyScale(), nil)
	v2 := a.Get(mix[0], 4, tinyScale(), nil)
	if v1 != v2 || v1 <= 0 {
		t.Fatalf("alone IPC cache broken: %v %v", v1, v2)
	}
}
