package exp

import (
	"fmt"
	"sort"

	"padc/internal/memctrl"
	"padc/internal/sim"
	"padc/internal/stats"
	"padc/internal/workload"
)

// Fig1Benchmarks are the ten applications of Figure 1: five where
// demand-first wins, five where demand-prefetch-equal wins.
func Fig1Benchmarks() []string {
	return []string{
		"galgel", "ammp", "xalancbmk", "art", "milc", // prefetch-unfriendly
		"swim", "libquantum", "bwaves", "leslie3d", "lbm", // prefetch-friendly
	}
}

// Fig6Benchmarks are the fifteen applications Figure 6 plots individually.
func Fig6Benchmarks() []string {
	return []string{
		"swim", "galgel", "art", "ammp", "gcc", "mcf", "libquantum",
		"omnetpp", "xalancbmk", "bwaves", "milc", "cactusADM", "leslie3d",
		"soplex", "lbm",
	}
}

// SingleRun is one benchmark under one variant on the 1-core baseline.
type SingleRun struct {
	Bench   string
	Variant string
	Core    stats.CoreResult
	Res     stats.Results
}

// SingleCoreSweep runs each named benchmark under each variant on the
// single-core baseline, in parallel.
func SingleCoreSweep(names []string, variants []Variant, sc Scale) map[string]map[string]SingleRun {
	type job struct{ b, v int }
	var jobs []job
	for b := range names {
		for v := range variants {
			jobs = append(jobs, job{b, v})
		}
	}
	out := make([]SingleRun, len(jobs))
	parallel(len(jobs), func(i int) {
		j := jobs[i]
		prof := workload.MustByName(names[j.b])
		cfg := baseConfig(1, sc)
		variants[j.v].Apply(&cfg)
		cfg.Workload = []workload.Profile{prof}
		res := runOne(cfg)
		out[i] = SingleRun{Bench: names[j.b], Variant: variants[j.v].Name, Core: res.PerCore[0], Res: res}
	})
	m := make(map[string]map[string]SingleRun, len(names))
	for _, r := range out {
		if m[r.Bench] == nil {
			m[r.Bench] = make(map[string]SingleRun)
		}
		m[r.Bench][r.Variant] = r
	}
	return m
}

// Fig1 reproduces Figure 1: IPC of the stream prefetcher under
// demand-first and demand-prefetch-equal, normalized to no prefetching,
// for ten benchmarks.
func Fig1(sc Scale) *Table {
	variants := []Variant{NoPref(), DemandFirst(), DemandPrefEqual()}
	sweep := SingleCoreSweep(Fig1Benchmarks(), variants, sc)
	t := &Table{
		Title:  "Figure 1: normalized IPC of stream prefetching under rigid policies",
		Header: []string{"benchmark", "demand-first", "demand-pref-equal"},
	}
	for _, b := range Fig1Benchmarks() {
		base := sweep[b]["no-pref"].Core.IPC()
		t.Addf(b, sweep[b]["demand-first"].Core.IPC()/base, sweep[b]["demand-pref-equal"].Core.IPC()/base)
	}
	return t
}

// Fig4 reproduces Figure 4 for milc: (a) the service-time histogram of
// useful versus useless prefetches under demand-first and (b) the
// prefetch-accuracy phase trace.
func Fig4(sc Scale) (hist *Table, trace *Table) {
	cfg := baseConfig(1, sc)
	cfg.Policy = memctrl.DemandFirst
	cfg.TrackServiceHist = true
	cfg.TrackAccuracyTrace = true
	cfg.Workload = []workload.Profile{workload.MustByName("milc")}
	res := runOne(cfg)

	hist = &Table{
		Title:  "Figure 4(a): milc prefetch service time (demand-first)",
		Header: []string{"cycles", "useful", "useless"},
	}
	for i := range res.ServiceHistUseful {
		label := fmt.Sprintf("%d-%d", i*200, i*200+200)
		if i == len(res.ServiceHistUseful)-1 {
			label = fmt.Sprintf("%d+", i*200)
		}
		hist.Add(label,
			fmt.Sprintf("%d", res.ServiceHistUseful[i]),
			fmt.Sprintf("%d", res.ServiceHistUseless[i]))
	}

	trace = &Table{
		Title:  "Figure 4(b): milc prefetch accuracy per 100K-cycle interval",
		Header: []string{"interval", "accuracy(%)"},
	}
	for i, a := range res.AccuracyTrace {
		trace.Add(fmt.Sprintf("%d", i), fmt.Sprintf("%.1f", a*100))
	}
	return hist, trace
}

// Fig6 reproduces Figure 6: single-core IPC of the five policies
// normalized to demand-first, for 15 benchmarks plus the geometric mean
// over the whole extended suite when full is true.
func Fig6(sc Scale, full bool) *Table {
	names := Fig6Benchmarks()
	if full {
		names = workload.Names()
	}
	sweep := SingleCoreSweep(names, StandardVariants(), sc)
	t := &Table{
		Title:  "Figure 6: single-core normalized IPC",
		Header: []string{"benchmark", "no-pref", "demand-first", "demand-pref-equal", "aps-only", "aps-apd (PADC)"},
	}
	vnames := []string{"no-pref", "demand-first", "demand-pref-equal", "aps-only", "aps-apd (PADC)"}
	norm := make(map[string][]float64, len(vnames))
	show := Fig6Benchmarks()
	for _, b := range names {
		base := sweep[b]["demand-first"].Core.IPC()
		var row []float64
		for _, v := range vnames {
			row = append(row, sweep[b][v].Core.IPC()/base)
		}
		norm[b] = row
	}
	for _, b := range show {
		if r, ok := norm[b]; ok {
			t.Addf(b, r...)
		}
	}
	// Geometric mean over everything that ran.
	gm := make([]float64, len(vnames))
	for vi := range vnames {
		var xs []float64
		for _, b := range names {
			xs = append(xs, norm[b][vi])
		}
		gm[vi] = stats.GeoMean(xs)
	}
	t.Addf(fmt.Sprintf("gmean%d", len(names)), gm...)
	return t
}

// Fig7 reproduces Figure 7: stall time per load (SPL) on the single-core
// system for the five policies.
func Fig7(sc Scale) *Table {
	sweep := SingleCoreSweep(Fig6Benchmarks(), StandardVariants(), sc)
	t := &Table{
		Title:  "Figure 7: stall cycles per load (single core)",
		Header: []string{"benchmark", "no-pref", "demand-first", "demand-pref-equal", "aps-only", "aps-apd (PADC)"},
	}
	vnames := []string{"no-pref", "demand-first", "demand-pref-equal", "aps-only", "aps-apd (PADC)"}
	means := make([]float64, len(vnames))
	for _, b := range Fig6Benchmarks() {
		var row []float64
		for vi, v := range vnames {
			spl := sweep[b][v].Core.SPL()
			row = append(row, spl)
			means[vi] += spl
		}
		t.Addf(b, row...)
	}
	for vi := range means {
		means[vi] /= float64(len(Fig6Benchmarks()))
	}
	t.Addf("mean", means...)
	return t
}

// Fig8 reproduces Figure 8: single-core bus traffic broken into demand,
// useful-prefetch and useless-prefetch lines.
func Fig8(sc Scale) *Table {
	sweep := SingleCoreSweep(Fig6Benchmarks(), StandardVariants(), sc)
	t := &Table{
		Title:  "Figure 8: bus traffic (K cache lines): demand/useful/useless",
		Header: []string{"benchmark", "policy", "demand", "useful-pref", "useless-pref", "total"},
	}
	for _, b := range Fig6Benchmarks() {
		for _, v := range []string{"no-pref", "demand-first", "demand-pref-equal", "aps-only", "aps-apd (PADC)"} {
			bus := sweep[b][v].Res.Bus
			t.Add(b, v,
				fmt.Sprintf("%.1f", float64(bus.Demand)/1000),
				fmt.Sprintf("%.1f", float64(bus.UsefulPref)/1000),
				fmt.Sprintf("%.1f", float64(bus.UselessPref)/1000),
				fmt.Sprintf("%.1f", float64(bus.Total())/1000))
		}
	}
	return t
}

// Table5 reproduces Table 5: benchmark characteristics without prefetching
// and with the stream prefetcher under demand-first.
func Table5(sc Scale, full bool) *Table {
	names := Fig6Benchmarks()
	if full {
		names = workload.Names()
	}
	sort.Strings(names)
	sweep := SingleCoreSweep(names, []Variant{NoPref(), DemandFirst()}, sc)
	t := &Table{
		Title:  "Table 5: benchmark characteristics (no-pref | demand-first)",
		Header: []string{"benchmark", "class", "IPC0", "MPKI0", "IPC", "MPKI", "RBH(%)", "ACC(%)", "COV(%)"},
	}
	for _, b := range names {
		prof := workload.MustByName(b)
		np := sweep[b]["no-pref"]
		df := sweep[b]["demand-first"]
		t.Add(b, prof.Class.String(),
			fmt.Sprintf("%.2f", np.Core.IPC()),
			fmt.Sprintf("%.2f", np.Core.MPKI()),
			fmt.Sprintf("%.2f", df.Core.IPC()),
			fmt.Sprintf("%.2f", df.Core.MPKI()),
			fmt.Sprintf("%.1f", df.Res.RBH()*100),
			fmt.Sprintf("%.1f", df.Core.ACC()*100),
			fmt.Sprintf("%.1f", df.Core.COV()*100))
	}
	return t
}

// Table7 reproduces Table 7: the row-buffer hit rate over useful requests
// (RBHU) for each policy.
func Table7(sc Scale) *Table {
	names := []string{"swim", "galgel", "art", "ammp", "mcf", "libquantum",
		"omnetpp", "xalancbmk", "bwaves", "milc", "leslie3d", "soplex", "lbm"}
	sweep := SingleCoreSweep(names, StandardVariants(), sc)
	t := &Table{
		Title:  "Table 7: RBHU (row-buffer hit rate for useful requests)",
		Header: []string{"benchmark", "no-pref", "demand-first", "demand-pref-equal", "aps-only", "aps-apd (PADC)"},
	}
	vnames := []string{"no-pref", "demand-first", "demand-pref-equal", "aps-only", "aps-apd (PADC)"}
	sums := make([]float64, len(vnames))
	for _, b := range names {
		var row []float64
		for vi, v := range vnames {
			r := sweep[b][v].Res.RBHU()
			row = append(row, r)
			sums[vi] += r
		}
		t.Addf(b, row...)
	}
	for vi := range sums {
		sums[vi] /= float64(len(names))
	}
	t.Addf("mean", sums...)
	return t
}

// Fig2 reproduces the conceptual example of Figure 2 at the DRAM
// controller level: three requests to one bank (prefetch X row A, demand Y
// row B, prefetch Z row A) with row A open. It returns the cycle in which
// each request completes under both rigid policies.
func Fig2() *Table {
	t := &Table{
		Title:  "Figure 2: conceptual 3-request example (completion cycles)",
		Header: []string{"policy", "X(pref,rowA)", "Y(dem,rowB)", "Z(pref,rowA)"},
	}
	for _, pol := range []memctrl.Policy{memctrl.DemandFirst, memctrl.DemandPrefEqual} {
		x, y, z := fig2Scenario(pol)
		t.Add(pol.String(), fmt.Sprintf("%d", x), fmt.Sprintf("%d", y), fmt.Sprintf("%d", z))
	}
	return t
}

// fig2Scenario is shared with the unit tests.
func fig2Scenario(pol memctrl.Policy) (x, y, z uint64) {
	return fig2Run(pol)
}

var _ = sim.Config{} // sim is used by the shared helpers above
