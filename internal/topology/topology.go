// Package topology describes how the physical address space is wired
// across memory domains: named groups of DRAM channels that may sit at
// different distances from the cores (a far pooled-memory tier behind a
// link) or run with different timing parts. A Topology is a declarative
// spec; Steering is its compiled form, a bijection between global line
// addresses and (domain, domain-local line) pairs. The canonical "flat"
// topology — one domain holding every channel at link distance zero —
// steers every address to domain 0 unchanged, so a flat machine is
// byte-identical to the pre-topology wiring.
package topology

import (
	"encoding/json"
	"fmt"
	"sort"

	"padc/internal/dram"
)

// Interleave policies. "channel" stripes consecutive rows across the
// global channel list (domains carved out of one stripe), which for a
// single domain reduces exactly to dram.Config.Map. "domain" stripes
// consecutive rows round-robin across domains first, so each domain sees
// a dense local address space regardless of relative channel counts.
const (
	InterleaveChannel = "channel"
	InterleaveDomain  = "domain"
)

// Domain is one memory tier: a named group of channels reachable at a
// fixed extra link latency, optionally with its own DRAM timing part.
// Bank geometry (banks per channel, row/line size) is shared machine-wide
// so per-bank observability keeps one shape across tiers.
type Domain struct {
	Name     string `json:"name"`
	Channels int    `json:"channels"`
	// LinkCycles is added to every request's completion time in this
	// domain: round-trip wire delay that occupies neither the bank nor
	// the data bus.
	LinkCycles uint64 `json:"link_cycles,omitempty"`
	// Timing overrides the base DRAM timing for this domain's channels
	// when non-nil (a slower pooled part behind the link).
	Timing *dram.Timing `json:"timing,omitempty"`
}

// Topology is a declarative wiring spec: an ordered list of domains plus
// the interleave policy that distributes row-granularity blocks among
// them. Domain order is significant — it fixes global channel numbering
// (domain 0's channels first) and the steering layout.
type Topology struct {
	Name       string   `json:"name"`
	Domains    []Domain `json:"domains"`
	Interleave string   `json:"interleave,omitempty"` // "" means "channel"
}

// Flat returns the canonical single-domain topology over the given
// channel count: every address steered to domain 0 unchanged.
func Flat(channels int) Topology {
	return Topology{
		Name:    "flat",
		Domains: []Domain{{Name: "local", Channels: channels}},
	}
}

// FarTier returns a two-domain pooled-memory preset: a near domain with
// the base channel count and a far single-channel domain behind a
// 256-cycle link. Timing is shared; the link is the differentiator.
func FarTier(channels int) Topology {
	return Topology{
		Name: "far-tier",
		Domains: []Domain{
			{Name: "near", Channels: channels},
			{Name: "far", Channels: 1, LinkCycles: 256},
		},
	}
}

// presets maps preset names to constructors taking the base (flat)
// channel count.
var presets = map[string]func(channels int) Topology{
	"flat":     Flat,
	"far-tier": FarTier,
}

// Names returns the preset names in sorted order.
func Names() []string {
	out := make([]string, 0, len(presets))
	for n := range presets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Preset resolves a named preset against the base channel count. The
// empty name is the flat topology.
func Preset(name string, channels int) (Topology, error) {
	if name == "" {
		name = "flat"
	}
	f, ok := presets[name]
	if !ok {
		return Topology{}, fmt.Errorf("unknown topology %q (presets: %v)", name, Names())
	}
	return f(channels), nil
}

// FromJSON parses and validates a topology spec.
func FromJSON(data []byte) (Topology, error) {
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return Topology{}, fmt.Errorf("topology spec: %w", err)
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

func powerOfTwo(v int) bool { return v > 0 && v&(v-1) == 0 }

// Validate checks the spec: at least one domain, unique non-empty names,
// power-of-two per-domain channel counts (each domain fronts its own
// dram.Config), and a known interleave policy.
func (t Topology) Validate() error {
	if len(t.Domains) == 0 {
		return fmt.Errorf("topology %q: no domains", t.Name)
	}
	seen := make(map[string]bool, len(t.Domains))
	for i, d := range t.Domains {
		if d.Name == "" {
			return fmt.Errorf("topology %q: domain %d has no name", t.Name, i)
		}
		if seen[d.Name] {
			return fmt.Errorf("topology %q: duplicate domain %q", t.Name, d.Name)
		}
		seen[d.Name] = true
		if !powerOfTwo(d.Channels) {
			return fmt.Errorf("topology %q: domain %q channels must be a power of two, got %d", t.Name, d.Name, d.Channels)
		}
		if d.Timing != nil {
			tm := *d.Timing
			if tm.TRP == 0 || tm.TRCD == 0 || tm.CL == 0 || tm.Burst == 0 {
				return fmt.Errorf("topology %q: domain %q timing override has zero fields", t.Name, d.Name)
			}
		}
	}
	switch t.Interleave {
	case "", InterleaveChannel, InterleaveDomain:
	default:
		return fmt.Errorf("topology %q: unknown interleave %q", t.Name, t.Interleave)
	}
	return nil
}

// TotalChannels is the machine-wide channel count, domain order.
func (t Topology) TotalChannels() int {
	n := 0
	for _, d := range t.Domains {
		n += d.Channels
	}
	return n
}

// ChannelOffsets returns each domain's first global channel index.
func (t Topology) ChannelOffsets() []int {
	off := make([]int, len(t.Domains))
	n := 0
	for i, d := range t.Domains {
		off[i] = n
		n += d.Channels
	}
	return off
}

// Steering is a compiled topology: the bijection between global line
// addresses and (domain, local line) pairs at row granularity, where a
// local line feeds the domain's own dram.Config.Map.
type Steering struct {
	topo    Topology
	lpr     uint64 // lines per DRAM row — the interleave granularity
	offsets []int
	totalCh uint64
	domain  bool // domain interleave (vs channel)
}

// Steering compiles the topology against the machine's lines-per-row.
func (t Topology) Steering(linesPerRow uint64) (*Steering, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if linesPerRow == 0 {
		return nil, fmt.Errorf("topology %q: lines per row must be positive", t.Name)
	}
	return &Steering{
		topo:    t,
		lpr:     linesPerRow,
		offsets: t.ChannelOffsets(),
		totalCh: uint64(t.TotalChannels()),
		domain:  t.Interleave == InterleaveDomain,
	}, nil
}

// Domains returns the number of domains.
func (s *Steering) Domains() int { return len(s.topo.Domains) }

// Topology returns the compiled spec.
func (s *Steering) Topology() Topology { return s.topo }

// ChannelOffset returns domain d's first global channel index.
func (s *Steering) ChannelOffset(d int) int { return s.offsets[d] }

// DomainOf returns the domain owning a global channel index.
func (s *Steering) DomainOf(globalChan int) int {
	for d := len(s.offsets) - 1; d > 0; d-- {
		if globalChan >= s.offsets[d] {
			return d
		}
	}
	return 0
}

// Steer maps a global line address to (domain, domain-local line). The
// single-domain fast path is the identity, so a flat machine behaves
// exactly like the pre-topology address path.
func (s *Steering) Steer(line uint64) (int, uint64) {
	nd := len(s.topo.Domains)
	if nd == 1 {
		return 0, line
	}
	col := line % s.lpr
	rest := line / s.lpr
	if s.domain {
		d := int(rest % uint64(nd))
		return d, (rest/uint64(nd))*s.lpr + col
	}
	gch := rest % s.totalCh
	d := nd - 1
	for ; d > 0; d-- {
		if gch >= uint64(s.offsets[d]) {
			break
		}
	}
	domCh := uint64(s.topo.Domains[d].Channels)
	localCh := gch - uint64(s.offsets[d])
	localRest := (rest/s.totalCh)*domCh + localCh
	return d, localRest*s.lpr + col
}

// Unsteer inverts Steer: (domain, local line) back to the global line.
func (s *Steering) Unsteer(d int, local uint64) uint64 {
	nd := len(s.topo.Domains)
	if nd == 1 {
		return local
	}
	col := local % s.lpr
	localRest := local / s.lpr
	if s.domain {
		return (localRest*uint64(nd)+uint64(d))*s.lpr + col
	}
	domCh := uint64(s.topo.Domains[d].Channels)
	localCh := localRest % domCh
	up := localRest / domCh
	rest := up*s.totalCh + uint64(s.offsets[d]) + localCh
	return rest*s.lpr + col
}
