package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"padc/internal/dram"
)

// testTopologies is a spread of shapes: flat, the far-tier preset, an
// asymmetric channel-interleaved pair, and a domain-interleaved trio.
func testTopologies() []Topology {
	slow := dram.Timing{TRP: 90, TRCD: 90, CL: 90, Burst: 12}
	return []Topology{
		Flat(1),
		Flat(4),
		FarTier(2),
		{
			Name: "asym",
			Domains: []Domain{
				{Name: "near", Channels: 4},
				{Name: "mid", Channels: 2, LinkCycles: 64},
				{Name: "far", Channels: 1, LinkCycles: 300, Timing: &slow},
			},
		},
		{
			Name:       "rr",
			Interleave: InterleaveDomain,
			Domains: []Domain{
				{Name: "a", Channels: 2},
				{Name: "b", Channels: 1, LinkCycles: 128},
				{Name: "c", Channels: 8},
			},
		},
	}
}

// TestSteerUnsteerBijection property-checks both directions of the
// steering bijection for every test topology at several row widths,
// mirroring the dram.Config Map/Unmap bijection test.
func TestSteerUnsteerBijection(t *testing.T) {
	for _, topo := range testTopologies() {
		for _, lpr := range []uint64{1, 16, 64} {
			st, err := topo.Steering(lpr)
			if err != nil {
				t.Fatalf("%s: %v", topo.Name, err)
			}
			roundTrip := func(line uint64) bool {
				line %= 1 << 48
				d, local := st.Steer(line)
				if d < 0 || d >= st.Domains() {
					return false
				}
				return st.Unsteer(d, local) == line
			}
			if err := quick.Check(roundTrip, nil); err != nil {
				t.Errorf("%s lpr=%d: Unsteer(Steer(line)) != line: %v", topo.Name, lpr, err)
			}
			inverse := func(d int, local uint64) bool {
				if st.Domains() == 0 {
					return false
				}
				d = ((d % st.Domains()) + st.Domains()) % st.Domains()
				local %= 1 << 48
				gd, glocal := st.Steer(st.Unsteer(d, local))
				return gd == d && glocal == local
			}
			if err := quick.Check(inverse, nil); err != nil {
				t.Errorf("%s lpr=%d: Steer(Unsteer(d,local)) != (d,local): %v", topo.Name, lpr, err)
			}
		}
	}
}

// TestFlatSteeringIsIdentity pins the byte-identity contract: a
// single-domain topology must steer every address to domain 0 unchanged.
func TestFlatSteeringIsIdentity(t *testing.T) {
	st, err := Flat(4).Steering(64)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		line := r.Uint64() >> 8
		d, local := st.Steer(line)
		if d != 0 || local != line {
			t.Fatalf("flat steering not identity: Steer(%d) = (%d, %d)", line, d, local)
		}
	}
}

// TestSteerComposesWithMap checks the full address path: steering a line
// and applying the owning domain's dram.Config.Map must land on a local
// channel inside that domain, and the composed mapping must invert
// exactly through Unmap + Unsteer — every global line owns exactly one
// (domain, channel, bank, row, column) slot and vice versa.
func TestSteerComposesWithMap(t *testing.T) {
	base := dram.DefaultConfig()
	for _, topo := range testTopologies() {
		st, err := topo.Steering(base.LinesPerRow())
		if err != nil {
			t.Fatalf("%s: %v", topo.Name, err)
		}
		cfgs := make([]dram.Config, len(topo.Domains))
		for i, d := range topo.Domains {
			cfgs[i] = base
			cfgs[i].Channels = d.Channels
			if err := cfgs[i].Validate(); err != nil {
				t.Fatalf("%s/%s: %v", topo.Name, d.Name, err)
			}
		}
		offs := topo.ChannelOffsets()
		r := rand.New(rand.NewSource(11))
		for i := 0; i < 20_000; i++ {
			line := r.Uint64() >> 16
			d, local := st.Steer(line)
			a := cfgs[d].Map(local)
			if a.Channel < 0 || a.Channel >= topo.Domains[d].Channels {
				t.Fatalf("%s: domain %d local channel %d out of range", topo.Name, d, a.Channel)
			}
			gch := offs[d] + a.Channel
			if st.DomainOf(gch) != d {
				t.Fatalf("%s: DomainOf(%d) = %d, want %d", topo.Name, gch, st.DomainOf(gch), d)
			}
			back := st.Unsteer(d, cfgs[d].Unmap(a))
			if back != line {
				t.Fatalf("%s: compose round trip %d -> (%d,%v) -> %d", topo.Name, line, d, a, back)
			}
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Topology{
		{Name: "empty"},
		{Name: "noname", Domains: []Domain{{Channels: 1}}},
		{Name: "dup", Domains: []Domain{{Name: "a", Channels: 1}, {Name: "a", Channels: 1}}},
		{Name: "npot", Domains: []Domain{{Name: "a", Channels: 3}}},
		{Name: "zero", Domains: []Domain{{Name: "a", Channels: 0}}},
		{Name: "badil", Interleave: "stripe", Domains: []Domain{{Name: "a", Channels: 1}}},
		{Name: "badtiming", Domains: []Domain{{Name: "a", Channels: 1, Timing: &dram.Timing{TRP: 60}}}},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid topology", c.Name)
		}
	}
}

func TestPresets(t *testing.T) {
	if _, err := Preset("no-such", 2); err == nil {
		t.Fatal("unknown preset accepted")
	}
	for _, name := range append(Names(), "") {
		topo, err := Preset(name, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("%s: preset invalid: %v", name, err)
		}
	}
	ft, _ := Preset("far-tier", 4)
	if ft.TotalChannels() != 5 || ft.Domains[1].LinkCycles == 0 {
		t.Fatalf("far-tier shape wrong: %+v", ft)
	}
	fl, _ := Preset("", 4)
	if len(fl.Domains) != 1 || fl.TotalChannels() != 4 {
		t.Fatalf("empty preset should be flat: %+v", fl)
	}
}

func TestFromJSON(t *testing.T) {
	topo, err := FromJSON([]byte(`{"name":"pooled","domains":[{"name":"near","channels":2},{"name":"far","channels":1,"link_cycles":400,"timing":{"trp":90,"trcd":90,"cl":90,"burst":12}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if topo.TotalChannels() != 3 || topo.Domains[1].Timing == nil {
		t.Fatalf("parsed topology wrong: %+v", topo)
	}
	if _, err := FromJSON([]byte(`{"name":"bad","domains":[{"name":"a","channels":3}]}`)); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := FromJSON([]byte(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// FuzzSteer fuzzes topology shape and address together: any generated
// (shape, line) pair must steer into range and round-trip exactly,
// mirroring the dram FuzzMapUnmap harness.
func FuzzSteer(f *testing.F) {
	f.Add(uint8(1), uint8(0), uint8(0), false, uint64(0))
	f.Add(uint8(2), uint8(1), uint8(3), false, uint64(123456789))
	f.Add(uint8(4), uint8(2), uint8(0), true, uint64(1)<<40)
	f.Fuzz(func(t *testing.T, nearCh, farCh, lprSel uint8, domainIL bool, line uint64) {
		pow2 := func(v uint8, max int) int {
			n := 1 << (v % 4)
			if n > max {
				n = max
			}
			return n
		}
		topo := Topology{Name: "fuzz", Domains: []Domain{
			{Name: "near", Channels: pow2(nearCh, 8)},
			{Name: "far", Channels: pow2(farCh, 8), LinkCycles: 64},
		}}
		if domainIL {
			topo.Interleave = InterleaveDomain
		}
		lpr := uint64(1) << (lprSel % 8)
		st, err := topo.Steering(lpr)
		if err != nil {
			t.Fatal(err)
		}
		line %= 1 << 52
		d, local := st.Steer(line)
		if d < 0 || d >= 2 {
			t.Fatalf("domain %d out of range", d)
		}
		if got := st.Unsteer(d, local); got != line {
			t.Fatalf("round trip: %d -> (%d,%d) -> %d", line, d, local, got)
		}
	})
}
