package trace

import (
	"testing"
	"testing/quick"
)

func TestGenDeterministic(t *testing.T) {
	g := Gen{Pattern: StreamPattern{Seed: 5, Streams: 3, StreamLen: 100, WSLines: 1 << 16, StrideLn: 1}, MemEvery: 4, Repeat: 3}
	f := func(i uint32) bool {
		a, b := g.At(uint64(i)), g.At(uint64(i))
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGenMemEvery(t *testing.T) {
	g := Gen{Pattern: RandomPattern{Seed: 1, WSLines: 1000}, MemEvery: 5}
	for i := uint64(0); i < 100; i++ {
		inst := g.At(i)
		if inst.Mem != (i%5 == 0) {
			t.Fatalf("instruction %d: Mem=%v", i, inst.Mem)
		}
	}
}

func TestGenRepeatGroupsLines(t *testing.T) {
	g := Gen{Pattern: RandomPattern{Seed: 2, WSLines: 1 << 20}, MemEvery: 1, Repeat: 4}
	for grp := uint64(0); grp < 20; grp++ {
		first := g.At(grp * 4).Line
		for k := uint64(1); k < 4; k++ {
			if got := g.At(grp*4 + k).Line; got != first {
				t.Fatalf("group %d touch %d: line %d != %d", grp, k, got, first)
			}
		}
	}
}

func TestGenDepOnlyOnGroupStart(t *testing.T) {
	g := Gen{Pattern: RandomPattern{Seed: 3, WSLines: 1 << 20, Dep: true}, MemEvery: 1, Repeat: 4}
	for i := uint64(0); i < 40; i++ {
		inst := g.At(i)
		if inst.Dep != (i%4 == 0) {
			t.Fatalf("instruction %d: Dep=%v", i, inst.Dep)
		}
	}
}

func TestStreamPatternIsSequentialPerStream(t *testing.T) {
	p := StreamPattern{Seed: 7, Streams: 2, StreamLen: 50, WSLines: 1 << 20, StrideLn: 1}
	// Within one stream (every other op), consecutive ops advance by one
	// line until a region jump.
	prev := p.MemOp(0).Line
	jumps := 0
	for k := uint64(1); k < 100; k++ {
		cur := p.MemOp(2 * k).Line // stream 0
		if cur != prev+1 {
			jumps++
		}
		prev = cur
	}
	if jumps > 3 {
		t.Fatalf("stream 0 should be near-sequential, saw %d jumps in 100 ops", jumps)
	}
}

func TestStreamPatternDistinctPCsPerStream(t *testing.T) {
	p := StreamPattern{Seed: 7, Streams: 4, StreamLen: 50, WSLines: 1 << 20, StrideLn: 1}
	pcs := map[uint64]bool{}
	for m := uint64(0); m < 4; m++ {
		pcs[p.MemOp(m).PC] = true
	}
	if len(pcs) != 4 {
		t.Fatalf("want 4 distinct PCs, got %d", len(pcs))
	}
}

func TestLoopPatternPeriodic(t *testing.T) {
	p := LoopPattern{Seed: 9, Len: 32, WSLines: 1 << 12}
	for m := uint64(0); m < 100; m++ {
		if p.MemOp(m).Line != p.MemOp(m+32).Line {
			t.Fatalf("loop not periodic at %d", m)
		}
	}
	// Sequential within a lap.
	if p.MemOp(1).Line != p.MemOp(0).Line+1 {
		t.Fatal("loop should walk consecutive lines")
	}
}

func TestShuffledLoopRecurrence(t *testing.T) {
	p := ShuffledLoopPattern{Seed: 11, Len: 16, WSLines: 1 << 12}
	distinct := map[uint64]bool{}
	for m := uint64(0); m < 16; m++ {
		distinct[p.MemOp(m).Line] = true
		if p.MemOp(m).Line != p.MemOp(m+16).Line {
			t.Fatal("shuffled loop not periodic")
		}
	}
	if len(distinct) < 12 {
		t.Fatalf("shuffled loop should touch mostly distinct lines, got %d of 16", len(distinct))
	}
}

func TestRandomPatternStaysInWorkingSet(t *testing.T) {
	p := RandomPattern{Seed: 13, WSLines: 500}
	f := func(m uint32) bool { return p.MemOp(uint64(m)).Line < 500 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMixPatternRatio(t *testing.T) {
	a := LoopPattern{Seed: 1, Len: 4, WSLines: 8}
	b := RandomPattern{Seed: 2, WSLines: 1 << 20}
	p := MixPattern{Seed: 3, A: a, B: b, NumA: 7, Den: 10}
	fromA := 0
	const n = 10_000
	for m := uint64(0); m < n; m++ {
		if p.MemOp(m).Line < 8 {
			fromA++
		}
	}
	ratio := float64(fromA) / n
	if ratio < 0.65 || ratio > 0.75 {
		t.Fatalf("mix ratio %.3f outside 0.7±0.05", ratio)
	}
}

func TestPhasedPatternAlternates(t *testing.T) {
	a := LoopPattern{Seed: 1, Len: 4, WSLines: 8}      // lines < 8
	b := RandomPattern{Seed: 2, WSLines: 1 << 20}      // lines mostly >= 8
	p := PhasedPattern{A: a, B: b, ALen: 10, BLen: 20} // period 30
	for m := uint64(0); m < 10; m++ {
		if p.MemOp(m).Line >= 8 {
			t.Fatalf("op %d should come from A", m)
		}
	}
	inB := 0
	for m := uint64(10); m < 30; m++ {
		if p.MemOp(m).Line >= 8 {
			inB++
		}
	}
	if inB < 18 {
		t.Fatalf("phase B ops mostly from B, got %d of 20", inB)
	}
	// A resumes where it left off across periods.
	if p.MemOp(30).Line != p.MemOp(9).Line+1 && p.MemOp(30).Line >= 8 {
		t.Fatal("phase A did not resume")
	}
}
