package trace

import "testing"

// FuzzPatternParams drives every pattern type across its full parameter
// space — including the zero values a hand-built or spec-derived config
// can produce — asserting the generators are total (no panics) and their
// output stays inside the documented bounds.
func FuzzPatternParams(f *testing.F) {
	f.Add(uint64(1), uint64(4), uint64(16), uint64(1024), uint64(1), uint64(3), uint64(2), uint64(5))
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0))
	f.Add(uint64(99), uint64(1), uint64(1), uint64(1), uint64(7), uint64(1), uint64(1), uint64(1<<40))

	f.Fuzz(func(t *testing.T, seed, streams, slen, ws, stride, memEvery, repeat, idx uint64) {
		wsC := ws
		if wsC == 0 {
			wsC = 1
		}
		patterns := []Pattern{
			StreamPattern{Seed: seed, Streams: streams, StreamLen: slen, WSLines: ws, StrideLn: stride},
			RandomPattern{Seed: seed, WSLines: ws},
			RandomPattern{Seed: seed, WSLines: ws, Dep: true},
			LoopPattern{Seed: seed, Len: slen, WSLines: ws},
			ShuffledLoopPattern{Seed: seed, Len: slen, WSLines: ws},
			PhasedPattern{
				A:    StreamPattern{Seed: seed, Streams: streams, StreamLen: slen, WSLines: ws},
				B:    RandomPattern{Seed: seed ^ 1, WSLines: ws},
				ALen: streams, BLen: slen,
			},
			MixPattern{
				Seed: seed,
				A:    RandomPattern{Seed: seed, WSLines: ws},
				B:    ShuffledLoopPattern{Seed: seed ^ 2, Len: slen, WSLines: ws},
				NumA: streams, Den: slen,
			},
		}
		for _, p := range patterns {
			op := p.MemOp(idx) // must not panic for any parameters
			if bound := boundFor(p, wsC, slen); bound != 0 && op.Line >= bound {
				t.Fatalf("%s: line %d outside bound %d (params ws=%d slen=%d)", p.Name(), op.Line, bound, ws, slen)
			}
			if p.Name() == "" {
				t.Fatalf("pattern has empty name: %#v", p)
			}
		}

		// The full generator must be total too, and only emit memory ops on
		// the MemEvery grid.
		g := Gen{Pattern: patterns[0], MemEvery: memEvery, Repeat: repeat}
		inst := g.At(idx)
		if memEvery == 0 && inst.Mem {
			t.Fatal("MemEvery=0 generated a memory op")
		}
		if memEvery != 0 && idx%memEvery != 0 && inst.Mem {
			t.Fatalf("memory op off the MemEvery=%d grid at index %d", memEvery, idx)
		}
		if inst.Mem && inst.Line >= wsC {
			t.Fatalf("generator line %d outside working set %d", inst.Line, wsC)
		}
	})
}

// boundFor returns the exclusive output bound of a pattern: every
// generator stays inside its (clamped) working set except LoopPattern,
// whose seeded base offset adds up to Len. Returns 0 (meaning "skip the
// check") when ws+len overflows uint64 and no meaningful bound exists.
func boundFor(p Pattern, wsC, slen uint64) uint64 {
	if _, ok := p.(LoopPattern); ok {
		lenC := slen
		if lenC == 0 {
			lenC = 1
		}
		if wsC+lenC < wsC {
			return 0
		}
		return wsC + lenC
	}
	return wsC
}

// TestPatternsTotalOnZeroValues pins the clamp behavior outside fuzzing,
// so `go test` alone (no -fuzz) regression-checks the zero-value paths.
func TestPatternsTotalOnZeroValues(t *testing.T) {
	zero := []Pattern{
		StreamPattern{},
		RandomPattern{},
		LoopPattern{},
		ShuffledLoopPattern{},
		PhasedPattern{A: StreamPattern{}, B: RandomPattern{}},
		MixPattern{A: StreamPattern{}, B: RandomPattern{}},
	}
	for _, p := range zero {
		for _, m := range []uint64{0, 1, 2, 1 << 20, ^uint64(0)} {
			op := p.MemOp(m)
			if op.Line > 1 {
				t.Errorf("%s: zero-valued pattern emitted line %d", p.Name(), op.Line)
			}
		}
	}
	g := Gen{Pattern: StreamPattern{}}
	if inst := g.At(42); inst.Mem {
		t.Error("Gen with MemEvery=0 emitted a memory op")
	}
}
