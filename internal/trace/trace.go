// Package trace generates the synthetic instruction streams that stand in
// for the paper's SPEC CPU 2000/2006 Pinpoints traces (see DESIGN.md's
// substitution table). Every generator is a pure function of the
// instruction index: the same (seed, index) always yields the same
// instruction. That determinism makes multiprogrammed runs reproducible
// and lets the runahead-execution core model replay wrong-path work by
// simply re-walking indices.
//
// A Gen interleaves a memory-op Pattern with compute instructions; the
// Pattern vocabulary (streams, strides, bursts, random, pointer chasing,
// loops, phases, mixes) spans the behaviors that distinguish the paper's
// prefetch-friendly, prefetch-unfriendly, and insensitive benchmark
// classes.
package trace

// Inst is one dynamic instruction.
type Inst struct {
	Mem  bool
	Line uint64 // cache-line address (only when Mem)
	PC   uint64 // synthetic PC for PC-indexed prefetchers
	Dep  bool   // this load consumes the previous load's value
}

// MemOp is the m-th memory operation of a Pattern.
type MemOp struct {
	Line uint64
	PC   uint64
	Dep  bool
}

// Pattern produces the memory-op subsequence of a stream.
type Pattern interface {
	Name() string
	MemOp(m uint64) MemOp
}

// Gen is a full instruction stream: one memory op every MemEvery
// instructions, compute otherwise; each line the Pattern produces is
// touched Repeat times in a row (spatial locality within a cache line,
// absorbed by the L1), so the last-level miss intensity is roughly
// 1000/(MemEvery*Repeat) MPKI for always-missing patterns.
type Gen struct {
	Pattern  Pattern
	MemEvery uint64
	Repeat   uint64 // consecutive touches per line; 0 means 1
}

// At returns instruction i.
func (g Gen) At(i uint64) Inst {
	if g.MemEvery == 0 || i%g.MemEvery != 0 {
		return Inst{}
	}
	m := i / g.MemEvery
	rep := g.Repeat
	if rep == 0 {
		rep = 1
	}
	op := g.Pattern.MemOp(m / rep)
	// A dependence (pointer chase) binds only the first touch of a line;
	// the rest are L1 hits on the fetched line.
	return Inst{Mem: true, Line: op.Line, PC: op.PC, Dep: op.Dep && m%rep == 0}
}

// mix64 is SplitMix64's finalizer over a seeded counter; the workhorse for
// deterministic pseudo-randomness indexed by position.
func mix64(seed, x uint64) uint64 {
	x += seed + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// StreamPattern interleaves Streams concurrent sequential streams. Each
// stream walks StreamLen consecutive lines from a pseudo-random region
// start, then jumps to a fresh region. Long StreamLen mimics libquantum-
// class near-perfect streams; short StreamLen (3–8) produces exactly the
// "stream prefetcher trains, then the stream dies" behavior that makes
// galgel/ammp-class benchmarks prefetch-unfriendly.
type StreamPattern struct {
	Seed      uint64
	Streams   uint64 // concurrent streams (≥1)
	StreamLen uint64 // lines per region before jumping (≥1)
	WSLines   uint64 // working-set size in lines
	StrideLn  uint64 // lines between consecutive accesses (1 = unit)
}

// Name implements Pattern.
func (p StreamPattern) Name() string { return "stream" }

// MemOp implements Pattern. Zero-valued knobs clamp to 1 so the generator
// is total over its parameter space (a hand-built or fuzzed pattern can
// never panic, it just degenerates to a single stream/line).
func (p StreamPattern) MemOp(m uint64) MemOp {
	streams := max64(1, p.Streams)
	slen := max64(1, p.StreamLen)
	ws := max64(1, p.WSLines)
	s := m % streams
	k := m / streams
	region := k / slen
	off := (k % slen) * max64(1, p.StrideLn)
	base := mix64(p.Seed, s<<32|region) % ws
	return MemOp{Line: (base + off) % ws, PC: p.Seed<<8 | s}
}

// RandomPattern touches uniformly random lines in a working set; with a
// working set far larger than the cache this is a high-MPKI,
// prefetch-hostile stream (art-class).
type RandomPattern struct {
	Seed    uint64
	WSLines uint64
	Dep     bool // make every load depend on the previous one (mcf-class)
}

// Name implements Pattern.
func (p RandomPattern) Name() string {
	if p.Dep {
		return "chase"
	}
	return "random"
}

// MemOp implements Pattern. A zero working set clamps to one line.
func (p RandomPattern) MemOp(m uint64) MemOp {
	return MemOp{Line: mix64(p.Seed, m) % max64(1, p.WSLines), PC: p.Seed << 8, Dep: p.Dep}
}

// LoopPattern walks Len consecutive lines over and over — a small, hot
// working set that caches absorb after one lap (class-0 behavior). The
// base offset is seeded so different loops do not alias.
type LoopPattern struct {
	Seed    uint64
	Len     uint64
	WSLines uint64
}

// Name implements Pattern.
func (p LoopPattern) Name() string { return "loop" }

// MemOp implements Pattern. Zero-valued knobs clamp to 1.
func (p LoopPattern) MemOp(m uint64) MemOp {
	return MemOp{Line: mix64(p.Seed, 0)%max64(1, p.WSLines) + m%max64(1, p.Len), PC: p.Seed << 8}
}

// ShuffledLoopPattern repeats a fixed pseudo-random sequence of Len lines —
// the recurring miss sequence a Markov (temporal-correlation) prefetcher
// can learn but a stream prefetcher cannot.
type ShuffledLoopPattern struct {
	Seed    uint64
	Len     uint64
	WSLines uint64
}

// Name implements Pattern.
func (p ShuffledLoopPattern) Name() string { return "shuffled-loop" }

// MemOp implements Pattern. Zero-valued knobs clamp to 1.
func (p ShuffledLoopPattern) MemOp(m uint64) MemOp {
	return MemOp{Line: mix64(p.Seed, m%max64(1, p.Len)) % max64(1, p.WSLines), PC: p.Seed << 8}
}

// PhasedPattern alternates between two sub-patterns — ALen memory ops of
// A, then BLen of B — reproducing the strong accuracy phase behavior the
// paper measures for milc (Figure 4(b)).
type PhasedPattern struct {
	A, B       Pattern
	ALen, BLen uint64
}

// Name implements Pattern.
func (p PhasedPattern) Name() string { return "phased(" + p.A.Name() + "," + p.B.Name() + ")" }

// MemOp implements Pattern. A zero-length period (ALen+BLen == 0) clamps
// to a pure-A pattern rather than dividing by zero.
func (p PhasedPattern) MemOp(m uint64) MemOp {
	period := p.ALen + p.BLen
	if period == 0 {
		return p.A.MemOp(m)
	}
	cycle, off := m/period, m%period
	if off < p.ALen {
		return p.A.MemOp(cycle*p.ALen + off)
	}
	return p.B.MemOp(cycle*p.BLen + (off - p.ALen))
}

// MixPattern draws each memory op from A with probability NumA/Den, else
// from B, deterministically by index.
type MixPattern struct {
	Seed      uint64
	A, B      Pattern
	NumA, Den uint64
}

// Name implements Pattern.
func (p MixPattern) Name() string { return "mix(" + p.A.Name() + "," + p.B.Name() + ")" }

// MemOp implements Pattern. A zero denominator clamps to 1 (all draws
// compare against NumA, so Den == 0 degenerates to pure-B for NumA == 0
// and pure-A otherwise).
func (p MixPattern) MemOp(m uint64) MemOp {
	if mix64(p.Seed^0xabcd, m)%max64(1, p.Den) < p.NumA {
		return p.A.MemOp(m)
	}
	return p.B.MemOp(m)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
