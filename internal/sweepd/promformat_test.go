package sweepd

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// splitSample breaks a sample line into name, label block (may be empty),
// and value. Label values may themselves contain `}` (route patterns like
// `{id}`), so the block is delimited by the LAST closing brace — the
// value itself can never contain one.
func splitSample(line string) (name, block, val string, ok bool) {
	brace := strings.IndexByte(line, '{')
	if brace < 0 {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return "", "", "", false
		}
		return line[:sp], "", line[sp+1:], true
	}
	close := strings.LastIndexByte(line, '}')
	if close < brace || close+2 >= len(line) || line[close+1] != ' ' {
		return "", "", "", false
	}
	return line[:brace], line[brace : close+1], line[close+2:], true
}

// parseLabels strictly decodes a `{name="value",...}` label block,
// rejecting bare backslashes or quotes that the exposition format
// requires to be escaped (`\\`, `\"`, `\n` are the only legal escapes).
func parseLabels(t *testing.T, line, block string) map[string]string {
	t.Helper()
	labels := map[string]string{}
	rest := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
			t.Fatalf("malformed label block in %q", line)
		}
		name := rest[:eq]
		if !labelNameRe.MatchString(name) {
			t.Fatalf("illegal label name %q in %q", name, line)
		}
		// Scan the quoted value honoring escapes.
		i := eq + 2
		var val strings.Builder
		for {
			if i >= len(rest) {
				t.Fatalf("unterminated label value in %q", line)
			}
			c := rest[i]
			if c == '"' {
				break
			}
			if c == '\n' {
				t.Fatalf("raw newline in label value in %q", line)
			}
			if c == '\\' {
				if i+1 >= len(rest) || (rest[i+1] != '\\' && rest[i+1] != '"' && rest[i+1] != 'n') {
					t.Fatalf("illegal escape in label value in %q", line)
				}
				i++
			}
			val.WriteByte(c)
			i++
		}
		labels[name] = val.String()
		rest = rest[i+1:]
		rest = strings.TrimPrefix(rest, ",")
	}
	return labels
}

// TestMetricsExpositionStrict scrapes a live /metrics endpoint after
// driving real traffic (including a campaign whose ID lands in label
// values) and strictly validates every line of the exposition: comment
// structure, metric and label names, escaping, float-parseable values,
// and histogram invariants (cumulative monotone buckets, le="+Inf" ==
// _count).
func TestMetricsExpositionStrict(t *testing.T) {
	s := newTestService(t, t.TempDir(), 2)
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	cl, err := NewClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Real traffic: a full campaign, some 404s, an unmatched route.
	info, err := cl.Submit(ctx, SubmitRequest{Spec: json.RawMessage(testSpecJSON)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, info.ID, 0, nil); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/api/v1/campaigns/absent", "/no/such/route", "/healthz", "/readyz"} {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	}

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.HasSuffix(body, "\n") {
		t.Fatal("exposition does not end in a newline")
	}

	typed := map[string]string{} // metric family -> TYPE
	// Histogram bookkeeping keyed by series identity minus the le label.
	buckets := map[string][]float64{} // ordered bucket counts as seen
	counts := map[string]float64{}
	sampleSeen := map[string]bool{}

	var lastHelp, lastType string
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Fatal("blank line in exposition")
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if !metricNameRe.MatchString(parts[0]) {
				t.Fatalf("bad metric name in %q", line)
			}
			lastHelp = parts[0]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line[len("# TYPE "):], " ", 2)
			if len(parts) != 2 || !metricNameRe.MatchString(parts[0]) {
				t.Fatalf("bad TYPE line %q", line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown type in %q", line)
			}
			if parts[0] != lastHelp {
				t.Fatalf("TYPE %q not preceded by its HELP (last HELP %q)", parts[0], lastHelp)
			}
			if _, dup := typed[parts[0]]; dup {
				t.Fatalf("family %q declared twice", parts[0])
			}
			typed[parts[0]] = parts[1]
			lastType = parts[0]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment %q", line)
		}

		name, block, valStr, ok := splitSample(line)
		if !ok || !metricNameRe.MatchString(name) {
			t.Fatalf("unparseable sample line %q", line)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" && valStr != "-Inf" && valStr != "NaN" {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}

		// Every sample must belong to the most recently declared family
		// (counter/gauge: name itself; histogram: name_bucket/_sum/_count).
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if typed[strings.TrimSuffix(name, suf)] == "histogram" {
				family = strings.TrimSuffix(name, suf)
			}
		}
		if typed[family] == "" {
			t.Fatalf("sample %q has no TYPE declaration", line)
		}
		if family != lastType {
			t.Fatalf("sample %q outside its family block (current family %q)", line, lastType)
		}

		labels := map[string]string{}
		if block != "" {
			labels = parseLabels(t, line, block)
		}
		// Series uniqueness: identical name+labels may appear once.
		if sampleSeen[line[:len(line)-len(valStr)]] {
			t.Fatalf("duplicate series %q", line)
		}
		sampleSeen[line[:len(line)-len(valStr)]] = true

		if typed[family] == "histogram" {
			// Key the series by labels minus le.
			var kb strings.Builder
			kb.WriteString(family)
			for k, v := range labels {
				if k != "le" {
					kb.WriteString("|" + k + "=" + v)
				}
			}
			key := kb.String()
			switch name {
			case family + "_bucket":
				le := labels["le"]
				if le == "" {
					t.Fatalf("bucket without le label: %q", line)
				}
				buckets[key] = append(buckets[key], val)
			case family + "_count":
				counts[key] = val
			}
		} else if val < 0 && typed[family] == "counter" {
			t.Fatalf("negative counter %q", line)
		}
	}

	for key, bs := range buckets {
		for i := 1; i < len(bs); i++ {
			if bs[i] < bs[i-1] {
				t.Fatalf("histogram %s buckets not cumulative: %v", key, bs)
			}
		}
		if c, ok := counts[key]; !ok || bs[len(bs)-1] != c {
			t.Fatalf("histogram %s +Inf bucket %v != _count %v", key, bs[len(bs)-1], counts[key])
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram series scraped — RED middleware not exporting durations")
	}
	if !strings.Contains(body, `campaign="`+info.ID+`"`) {
		t.Fatal("campaign series missing from scrape")
	}
}
