package sweepd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"padc/internal/telemetry/flight"
)

// The telemetry sidecar is the journal's companion file: one JSONL line
// per executed job carrying the job's flight-recorder summary. It is
// kept out of the row journal on purpose — rows must stay byte-identical
// across resume (a reused row never re-runs, so it could not reproduce a
// summary), and the campaign artifacts must not change shape when
// telemetry is enabled. Like the journal it is append-only and
// torn-tail tolerant: a crash mid-append loses at most the line being
// written, and the resumed run's re-executed jobs append fresh lines.
// Readers deduplicate by grid index, first occurrence wins (summaries
// are pure functions of the spec, so duplicates are identical anyway).

// telemetryName is the sidecar file each campaign directory may hold.
const telemetryName = "telemetry.jsonl"

// TelemetryRecord is one line of the campaign telemetry sidecar and of
// the GET /api/v1/campaigns/{id}/telemetry NDJSON stream: one job's
// flight-recorder roll-up, addressed by the job's stable grid index and
// sort key.
type TelemetryRecord struct {
	Index  int             `json:"index"`
	Key    string          `json:"key"`
	Flight *flight.Summary `json:"flight,omitempty"`
}

// sidecar is the append side, owned by the campaign's journal-writer
// goroutine (appends are already serialized; no mutex needed).
type sidecar struct {
	f  *os.File
	bw *bufio.Writer
}

// openSidecar opens (or creates) a campaign's telemetry sidecar for
// appending. Resume reopens the same file and keeps appending — the
// reader's first-wins dedup makes the overlap harmless.
func openSidecar(path string) (*sidecar, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &sidecar{f: f, bw: bufio.NewWriter(f)}, nil
}

// Append writes one record, flushed to the OS immediately so a SIGKILL
// loses at most the in-flight line. No fsync per record: the sidecar is
// derived data — a machine crash that loses lines only costs the resumed
// run the re-execution it would do anyway.
func (sc *sidecar) Append(rec TelemetryRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := sc.bw.Write(data); err != nil {
		return err
	}
	if err := sc.bw.WriteByte('\n'); err != nil {
		return err
	}
	return sc.bw.Flush()
}

// Close flushes and closes the sidecar.
func (sc *sidecar) Close() error {
	ferr := sc.bw.Flush()
	cerr := sc.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// readTelemetry loads a campaign's sidecar: missing file means no
// records (not an error), a torn or undecodable tail is dropped, records
// are deduplicated by grid index (first wins) and returned sorted by
// (key, index) — the same merge contract as the row artifacts, so the
// served NDJSON is byte-identical across worker counts and resumes.
func readTelemetry(path string) ([]TelemetryRecord, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var recs []TelemetryRecord
	seen := make(map[int]bool)
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec TelemetryRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn tail: everything before it is intact
		}
		if seen[rec.Index] {
			continue
		}
		seen[rec.Index] = true
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Key != recs[j].Key {
			return recs[i].Key < recs[j].Key
		}
		return recs[i].Index < recs[j].Index
	})
	return recs, nil
}
