package sweepd

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"padc/internal/runner"
)

// ServiceOptions configures one Service.
type ServiceOptions struct {
	// DataDir holds one subdirectory per campaign (its journal). Required:
	// durability is the point of the service.
	DataDir string
	// Workers is the per-campaign default pool size when a submit does not
	// set one; 0 uses runner.DefaultWorkers().
	Workers int
	// StreamWindow overrides the per-subscriber buffered-row window
	// (default 256); a consumer further behind is disconnected.
	StreamWindow int
	// Resume controls whether interrupted campaigns found in DataDir are
	// re-run on startup. The server turns it on; tests that only want to
	// inspect recovered state can leave it off.
	Resume bool
	// Logger, when non-nil, receives structured service events (campaign
	// lifecycle at Info, per-job completions at Debug, HTTP access log via
	// the middleware) with campaign/job/request correlation attributes.
	// Nil discards everything.
	Logger *slog.Logger
}

// Service owns the campaign registry: submit, recover-and-resume,
// cancel, and the HTTP surface (Handler). One Service maps to one data
// directory; shards of the same spec live on different Services.
type Service struct {
	opts    ServiceOptions
	logger  *slog.Logger
	metrics *serviceMetrics

	mu        sync.Mutex
	campaigns map[string]*Campaign
	order     []string // insertion order for stable listings
	closed    bool

	wg sync.WaitGroup
}

// NewService builds a Service over DataDir, recovering every journal
// found there. Campaigns with a terminal journal event are loaded in
// their final state; interrupted ones resume execution when
// opts.Resume is set (skipping journaled rows via the engine's Reuse
// hook) and otherwise stay pending.
func NewService(opts ServiceOptions) (*Service, error) {
	if opts.DataDir == "" {
		return nil, fmt.Errorf("sweepd: DataDir is required")
	}
	if opts.StreamWindow <= 0 {
		opts.StreamWindow = defaultStreamWindow
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
		return nil, err
	}
	s := &Service{
		opts:      opts,
		logger:    opts.Logger,
		metrics:   newServiceMetrics(),
		campaigns: make(map[string]*Campaign),
	}
	if err := s.recoverAll(); err != nil {
		return nil, err
	}
	return s, nil
}

// newID draws a random 8-hex-digit campaign id.
func newID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "c" + hex.EncodeToString(b[:])
}

// Submit validates and journals a new campaign, then starts it. The
// returned campaign is already running.
func (s *Service) Submit(req SubmitRequest) (*Campaign, error) {
	if len(req.Spec) == 0 {
		return nil, fmt.Errorf("sweepd: submit carries no spec")
	}
	spec, err := runner.ParseSpec(req.Spec)
	if err != nil {
		return nil, err
	}
	if err := req.Shard.Validate(); err != nil {
		return nil, err
	}
	jobs, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	total := 0
	for _, j := range jobs {
		if req.Shard.Owns(j.Index) {
			total++
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("sweepd: shard %s owns no jobs of the %d-job grid", req.Shard, len(jobs))
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("sweepd: service is shut down")
	}
	s.mu.Unlock()

	id := newID()
	hdr := journalHeader{
		V: journalVersion, ID: id, Spec: spec, Shard: req.Shard,
		Total: total, Workers: req.Workers, Verify: req.Verify,
		Telemetry: req.Telemetry,
	}
	j, err := createJournal(filepath.Join(s.opts.DataDir, id, journalName), hdr)
	if err != nil {
		return nil, err
	}
	c := s.newCampaign(id, hdr)
	s.metrics.campaigns.With("submit").Inc()
	s.register(c)
	s.start(c, j, nil)
	s.logger.Info("campaign started",
		"campaign", id, "jobs", total, "shard", req.Shard.String(), "telemetry", req.Telemetry)
	return c, nil
}

// newCampaign builds the in-memory campaign shell shared by submit and
// recovery.
func (s *Service) newCampaign(id string, hdr journalHeader) *Campaign {
	workers := hdr.Workers
	if workers <= 0 {
		workers = s.opts.Workers
	}
	m := s.metrics.forCampaign(id)
	m.jobsTotal.Set(float64(hdr.Total))
	return &Campaign{
		ID:        id,
		spec:      hdr.Spec,
		shard:     hdr.Shard,
		workers:   workers,
		verify:    hdr.Verify,
		telemetry: hdr.Telemetry,
		total:     hdr.Total,
		dir:       filepath.Join(s.opts.DataDir, id),
		metrics:   m,
		doneIdx:   make(map[int]bool),
		subs:      make(map[*subscriber]bool),
		window:    s.opts.StreamWindow,
		done:      make(chan struct{}),
	}
}

func (s *Service) register(c *Campaign) {
	s.mu.Lock()
	s.campaigns[c.ID] = c
	s.order = append(s.order, c.ID)
	s.mu.Unlock()
}

// recoverAll scans DataDir for campaign journals and loads each one.
func (s *Service) recoverAll() error {
	entries, err := os.ReadDir(s.opts.DataDir)
	if err != nil {
		return err
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			if _, err := os.Stat(filepath.Join(s.opts.DataDir, e.Name(), journalName)); err == nil {
				ids = append(ids, e.Name())
			}
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := s.recoverOne(id); err != nil {
			return err
		}
	}
	return nil
}

// recoverOne loads one journal: terminal campaigns become browsable
// history (rows, artifact, state intact); interrupted ones resume.
func (s *Service) recoverOne(id string) error {
	path := filepath.Join(s.opts.DataDir, id, journalName)
	rec, err := readJournal(path)
	if err != nil {
		return err
	}
	if rec.header.ID != id {
		return fmt.Errorf("sweepd: journal %s: header id %q does not match directory", path, rec.header.ID)
	}
	c := s.newCampaign(id, rec.header)
	c.rows = append(c.rows, rec.rows...)
	c.journaled = len(rec.rows)
	for _, r := range rec.rows {
		c.doneIdx[r.Index] = true
		if r.Err != "" {
			c.failed++
		}
	}
	c.metrics.jobsDone.Add(float64(len(rec.rows)))
	c.metrics.jobsFailed.Add(float64(c.failed))
	s.metrics.campaigns.With("recover").Inc()
	s.register(c)

	switch rec.event {
	case "completed":
		c.state = StateCompleted
	case "cancelled":
		c.state = StateCancelled
	case "failed":
		c.state = StateFailed
		c.errMsg = rec.detail
	case "":
		// Interrupted mid-run: resume if configured, else hold at pending.
		if s.opts.Resume {
			j, err := openJournal(path, rec.validLen)
			if err != nil {
				return err
			}
			recovered := make(map[int]runner.JobResult, len(rec.rows))
			for _, r := range rec.rows {
				recovered[r.Index] = r
			}
			s.start(c, j, recovered)
			s.logger.Info("campaign resumed",
				"campaign", id, "journaled", len(rec.rows), "total", c.total, "torn", rec.torn)
			return nil
		}
	default:
		return fmt.Errorf("sweepd: journal %s: unknown terminal event %q", path, rec.event)
	}
	c.metrics.state.Set(float64(c.state))
	close(c.done)
	return nil
}

// start launches the campaign's run loop: a journal-writer goroutine fed
// by a bounded channel (the checkpoint window — a full window blocks the
// engine's Progress callback, backpressuring the worker pool onto the
// disk), and the engine itself. recovered maps grid index → journaled row
// for resumed campaigns; those rows replay through the Reuse hook so the
// engine merges them without re-executing, and the journal writer skips
// re-appending them.
func (s *Service) start(c *Campaign, j *Journal, recovered map[int]runner.JobResult) {
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	c.state = StateRunning
	c.metrics.state.Set(float64(StateRunning))

	type doneRow struct {
		row    runner.JobResult
		flight *TelemetryRecord // non-nil only for fresh rows with telemetry
		fresh  bool             // false for journal-replayed rows
	}
	pending := make(chan doneRow, journalWindow)

	// The telemetry sidecar rides next to the journal; an open failure is
	// surfaced through the journal-writer's error path — a telemetry
	// campaign that cannot persist telemetry must not report completed.
	var side *sidecar
	var sideErr error
	if c.telemetry {
		side, sideErr = openSidecar(filepath.Join(c.dir, telemetryName))
	}

	// Journal writer: the only goroutine that appends rows (and telemetry
	// records). Counts both fresh (append + fsync policy) and replayed
	// rows toward the durable watermark.
	journalDone := make(chan error, 1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		durable := len(recovered)
		firstErr := sideErr
		for dr := range pending {
			if dr.fresh {
				// Sidecar before journal: a crash between the two writes
				// leaves an unjournaled row, which re-runs on resume and
				// re-records (readTelemetry dedups; summaries are
				// deterministic). The other order could journal a row whose
				// flight record is lost forever — reused rows never re-run.
				if dr.flight != nil && side != nil {
					if err := side.Append(*dr.flight); err != nil && firstErr == nil {
						firstErr = err
					}
				}
				if err := j.AppendRow(dr.row); err != nil && firstErr == nil {
					firstErr = err
				}
				durable++
			}
			c.markJournaled(durable)
		}
		if side != nil {
			if err := side.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		journalDone <- firstErr
	}()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(c.done)

		opts := runner.Options{
			Workers: c.workers,
			Verify:  c.verify,
			Shard:   c.shard,
			Flight:  runner.FlightOptions{Enabled: c.telemetry},
			Start: func(runner.Job) {
				c.mu.Lock()
				c.running++
				c.mu.Unlock()
				c.metrics.jobsRunning.Add(1)
			},
			Progress: func(done, total int, r runner.JobResult) {
				// The flight summary never enters the rows, journal, or
				// artifacts: reused rows could not reproduce it, so keeping it
				// there would break resume byte-identity. It detours to the
				// telemetry sidecar instead.
				var fl *TelemetryRecord
				if r.Flight != nil {
					fl = &TelemetryRecord{Index: r.Index, Key: r.Key, Flight: r.Flight}
					r.Flight = nil
				}
				fresh := true
				if recovered != nil {
					if _, ok := recovered[r.Index]; ok {
						fresh = false
					}
				}
				if fresh {
					c.mu.Lock()
					c.running--
					c.mu.Unlock()
					c.metrics.jobsRunning.Add(-1)
					c.appendRow(r)
					s.logger.Debug("job finished",
						"campaign", c.ID, "job", r.Index, "key", r.Key,
						"done", done, "total", total, "err", r.Err)
				} else {
					c.mu.Lock()
					c.reused++
					c.mu.Unlock()
					c.metrics.jobsReused.Inc()
				}
				// Blocks when the checkpoint window is full: bounded
				// completed-but-unjournaled rows by construction.
				pending <- doneRow{row: r, flight: fl, fresh: fresh}
			},
		}
		if recovered != nil {
			opts.Reuse = func(job runner.Job) (runner.JobResult, bool) {
				r, ok := recovered[job.Index]
				return r, ok
			}
		}

		_, runErr := runner.RunContext(ctx, c.spec, opts)
		close(pending)
		jerr := <-journalDone

		switch {
		case errors.Is(runErr, context.Canceled):
			// User cancel journals the terminal event (sticky across
			// restarts); service shutdown does not — an interrupted journal
			// is what resume looks for.
			s.mu.Lock()
			closing := s.closed
			s.mu.Unlock()
			if closing {
				c.closeSubs()
				s.logger.Info("campaign interrupted by shutdown (resumable)", "campaign", c.ID)
			} else {
				_ = j.AppendEvent("cancelled", "")
				c.setState(StateCancelled, "")
				s.logger.Info("campaign cancelled", "campaign", c.ID)
			}
		case runErr != nil:
			_ = j.AppendEvent("failed", runErr.Error())
			c.setState(StateFailed, runErr.Error())
			s.logger.Error("campaign failed", "campaign", c.ID, "err", runErr)
		case jerr != nil:
			// Rows completed but the WAL is broken; completing would lie
			// about durability.
			c.setState(StateFailed, "journal: "+jerr.Error())
			s.logger.Error("campaign journal error", "campaign", c.ID, "err", jerr)
		default:
			_ = j.AppendEvent("completed", "")
			c.setState(StateCompleted, "")
			s.logger.Info("campaign completed", "campaign", c.ID, "rows", c.total)
		}
		_ = j.Close()
	}()
}

// Campaign returns a campaign by id.
func (s *Service) Campaign(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// List returns every campaign's status in submission order.
func (s *Service) List() []CampaignInfo {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]CampaignInfo, 0, len(ids))
	for _, id := range ids {
		if c, ok := s.Campaign(id); ok {
			out = append(out, c.Info())
		}
	}
	return out
}

// Cancel stops a running campaign; the cancellation is journaled, so it
// stays cancelled across restarts. Cancelling a terminal campaign is a
// no-op error.
func (s *Service) Cancel(id string) error {
	c, ok := s.Campaign(id)
	if !ok {
		return fmt.Errorf("sweepd: unknown campaign %q", id)
	}
	c.mu.Lock()
	terminal := c.terminalLocked()
	cancel := c.cancel
	c.mu.Unlock()
	if terminal || cancel == nil {
		return fmt.Errorf("sweepd: campaign %s is not running", id)
	}
	cancel()
	return nil
}

// Close shuts the service down gracefully: running campaigns are
// interrupted (in-flight jobs finish, journals stay terminal-event-free
// so a restarted server resumes them) and all goroutines drain.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var cancels []context.CancelFunc
	for _, c := range s.campaigns {
		c.mu.Lock()
		if c.cancel != nil && !c.terminalLocked() {
			cancels = append(cancels, c.cancel)
		}
		c.mu.Unlock()
	}
	s.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	s.wg.Wait()
}

// MarshalSpec is a convenience for clients: the canonical JSON encoding
// of a parsed spec (what the journal stores and artifacts embed).
func MarshalSpec(spec runner.Spec) []byte {
	data, err := json.Marshal(spec)
	if err != nil {
		panic(err) // Spec contains only marshalable fields
	}
	return data
}
