package sweepd

import (
	"net/http"
	"sync/atomic"
)

// Gate is the server's startup readiness front: it lets the daemon bind
// its listener and answer liveness probes immediately, while journal
// replay and campaign resume (which NewService does synchronously, and
// which can take a while over a large data directory) are still in
// progress. Until SetReady, /healthz answers 200 — the process is alive
// — and every other route, /readyz included, answers 503 so load
// balancers and scripts keep waiting. SetReady atomically swaps in the
// real handler; from then on the gate is a transparent passthrough.
type Gate struct {
	h atomic.Pointer[http.Handler]
}

// NewGate builds a gate in the not-ready state.
func NewGate() *Gate { return &Gate{} }

// SetReady installs the real handler, flipping every route (readyz
// included) from 503 to live service.
func (g *Gate) SetReady(h http.Handler) {
	g.h.Store(&h)
}

// Ready reports whether SetReady has been called.
func (g *Gate) Ready() bool { return g.h.Load() != nil }

// ServeHTTP answers for the not-yet-ready server, or delegates once
// ready.
func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := g.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	if r.URL.Path == "/healthz" {
		w.Header().Set("Content-Type", "text/plain")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
	w.Write([]byte("starting: journal replay in progress\n"))
}
