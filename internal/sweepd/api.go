// Package sweepd is the distributed sweep service: a campaign manager
// that accepts sweep-spec uploads over an HTTP/JSON API, executes them on
// the deterministic engine in internal/runner, streams per-job result
// rows back with backpressure, and checkpoints every completed row to a
// write-ahead journal so a campaign survives a crash or restart — resumed
// runs skip finished jobs and still merge into the same sorted-key,
// byte-identical CSV/JSON artifacts a single-process `padcsim -sweep`
// produces.
//
// The layering is deliberate: internal/runner stays a pure in-process
// engine (grid expansion, worker pool, key-sorted merge); sweepd adds the
// service concerns — campaign lifecycle state machine, journal format
// with torn-line recovery, shard coordination across cooperating servers,
// row streaming, and per-campaign Prometheus metrics — without touching
// the engine's determinism contract. Distribution is safe precisely
// because every job row is a pure function of (spec, stable grid index).
//
// API surface (JSON over HTTP, see Service.Handler):
//
//	POST /api/v1/campaigns            submit {spec, workers, verify, shard, telemetry}
//	GET  /api/v1/campaigns            list campaign summaries
//	GET  /api/v1/campaigns/{id}       one campaign's status
//	POST /api/v1/campaigns/{id}/cancel
//	GET  /api/v1/campaigns/{id}/rows  NDJSON row stream (?offset=N resumes)
//	GET  /api/v1/campaigns/{id}/artifact.csv
//	GET  /api/v1/campaigns/{id}/artifact.json
//	GET  /api/v1/campaigns/{id}/telemetry  per-job flight roll-ups, NDJSON
//	GET  /metrics                     Prometheus exposition (incl. per-route RED)
//	GET  /healthz                     liveness (process up)
//	GET  /readyz                      readiness (journal replay finished)
//
// Every response carries an X-Request-ID (propagated from the request
// when present), and every request is counted, timed, and access-logged
// by the middleware in middleware.go.
package sweepd

import (
	"encoding/json"

	"padc/internal/runner"
)

// SubmitRequest is the POST /api/v1/campaigns body: a runner sweep spec
// plus execution options. Spec is kept raw so the service parses and
// validates it with the engine's own parser (DisallowUnknownFields and
// all) and stores exactly what will run.
type SubmitRequest struct {
	// Spec is the declarative sweep spec (see runner.Spec / EXPERIMENTS.md).
	Spec json.RawMessage `json:"spec"`
	// Workers bounds this campaign's worker pool; 0 uses the server default.
	Workers int `json:"workers,omitempty"`
	// Verify runs the accounting-invariant checks on every job.
	Verify bool `json:"verify,omitempty"`
	// Shard restricts this server to the grid slice it owns; cooperating
	// servers submit the same spec with different shard indexes and union
	// the rows afterwards (runner.MergeRows).
	Shard runner.Shard `json:"shard,omitempty"`
	// Telemetry attaches a bank-state flight recorder to every job and
	// journals the per-job roll-ups to the campaign's telemetry sidecar,
	// served at GET /api/v1/campaigns/{id}/telemetry. Row artifacts are
	// unchanged either way.
	Telemetry bool `json:"telemetry,omitempty"`
}

// CampaignInfo is the wire status of one campaign.
type CampaignInfo struct {
	ID    string       `json:"id"`
	Name  string       `json:"name"`
	State string       `json:"state"`
	Shard runner.Shard `json:"shard,omitempty"`
	// Telemetry reports whether the campaign records the per-job flight
	// sidecar.
	Telemetry bool `json:"telemetry,omitempty"`

	// Total counts the jobs this campaign owns (its shard's slice of the
	// grid); Done includes Failed and Reused.
	Total   int `json:"total"`
	Done    int `json:"done"`
	Running int `json:"running"`
	Failed  int `json:"failed"`
	// Reused counts rows recovered from the journal instead of executed.
	Reused int `json:"reused"`
	// CheckpointLag is how many completed rows are not yet durably
	// journaled (the bounded window between the engine and the WAL).
	CheckpointLag int `json:"checkpoint_lag"`

	// Error is set when State is "failed".
	Error string `json:"error,omitempty"`
}

// Queued returns the jobs not yet started.
func (ci CampaignInfo) Queued() int { return ci.Total - ci.Done - ci.Running }

// Terminal reports whether the campaign reached a final state.
func (ci CampaignInfo) Terminal() bool {
	switch ci.State {
	case StateCompleted.String(), StateFailed.String(), StateCancelled.String():
		return true
	}
	return false
}

// RowEvent is one line of the NDJSON row stream. Exactly one of Row /
// Done / Err is meaningful: a result row, the terminal event carrying the
// campaign's final state, or a stream-level error (the slow-consumer
// disconnect). Seq is the row's 1-based position in completion order;
// reconnect with ?offset=<last seq> to resume the stream without gaps.
type RowEvent struct {
	Seq   int               `json:"seq,omitempty"`
	Row   *runner.JobResult `json:"row,omitempty"`
	Done  bool              `json:"done,omitempty"`
	State string            `json:"state,omitempty"`
	Err   string            `json:"err,omitempty"`
}
