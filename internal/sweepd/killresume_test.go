package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestKillDashNineResume is the PR's acceptance criterion against the
// real binary: build cmd/padcsweepd, start it as a separate process,
// submit a campaign over HTTP, SIGKILL the server mid-campaign (no
// graceful shutdown — the journal's flushed-per-row contract is all
// that survives), restart it over the same data directory, and verify
// the resumed campaign's artifacts are byte-identical to an
// uninterrupted in-process `padcsim -sweep` run.
func TestKillDashNineResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server binary")
	}
	_, wantCSV, wantJSON := localArtifacts(t, resumeSpecJSON, 1)

	tmp := t.TempDir()
	bin := filepath.Join(tmp, "padcsweepd")
	build := exec.Command("go", "build", "-o", bin, "padc/cmd/padcsweepd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building padcsweepd: %v\n%s", err, out)
	}
	dataDir := filepath.Join(tmp, "data")

	// startServer launches the daemon on a fresh port and waits for the
	// atomically-written addr file to learn where it bound.
	startServer := func(t *testing.T) (*exec.Cmd, *Client) {
		t.Helper()
		addrFile := filepath.Join(tmp, "addr")
		os.Remove(addrFile)
		cmd := exec.Command(bin, "serve",
			"-addr", "127.0.0.1:0", "-data", dataDir, "-jobs", "2", "-addr-file", addrFile)
		var logs bytes.Buffer
		cmd.Stdout, cmd.Stderr = &logs, &logs
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
			if t.Failed() {
				t.Logf("server logs:\n%s", logs.String())
			}
		})
		deadline := time.Now().Add(30 * time.Second)
		for {
			if data, err := os.ReadFile(addrFile); err == nil {
				addr := strings.TrimSpace(string(data))
				cl, err := NewClient("http://" + addr)
				if err != nil {
					t.Fatal(err)
				}
				return cmd, cl
			}
			if time.Now().After(deadline) {
				t.Fatalf("server never wrote %s:\n%s", addrFile, logs.String())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	ctx := context.Background()
	srv1, cl1 := startServer(t)
	info, err := cl1.Submit(ctx, SubmitRequest{Spec: json.RawMessage(resumeSpecJSON)})
	if err != nil {
		t.Fatal(err)
	}

	// Wait for at least two journaled rows, then SIGKILL — no signal
	// handler runs, no terminal event is written, buffered state is gone.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := cl1.Info(ctx, info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Done >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign made no progress: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := srv1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	srv1.Wait()

	// Restart over the same data directory: the journal replays and the
	// campaign resumes to completion.
	_, cl2 := startServer(t)
	final, err := cl2.Wait(ctx, info.ID, 20*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "completed" || final.Done != final.Total {
		t.Fatalf("resumed campaign: %+v", final)
	}

	csv, err := cl2.Artifact(ctx, info.ID, "csv")
	if err != nil {
		t.Fatal(err)
	}
	js, err := cl2.Artifact(ctx, info.ID, "json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv, wantCSV) {
		t.Errorf("post-SIGKILL CSV differs from uninterrupted in-process sweep (%d vs %d bytes)",
			len(csv), len(wantCSV))
	}
	if !bytes.Equal(js, wantJSON) {
		t.Errorf("post-SIGKILL JSON differs from uninterrupted in-process sweep (%d vs %d bytes)",
			len(js), len(wantJSON))
	}
}
