package sweepd

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// ctxKey namespaces the package's context values.
type ctxKey int

const requestIDKey ctxKey = iota

// RequestID returns the request's correlation id, set by the service
// middleware ("" outside an instrumented request). Handlers put it on
// their log lines so one request can be followed across the access log
// and campaign events.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// newRequestID draws a random 8-hex-digit request id ("r" prefix keeps
// it visually distinct from campaign ids).
func newRequestID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "r" + hex.EncodeToString(b[:])
}

// statusWriter captures the response status and size. It implements
// http.Flusher unconditionally, delegating when the underlying writer
// supports it — the NDJSON row stream depends on per-line flushes
// surviving the wrap.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the API mux with the service-wide HTTP middleware:
// X-Request-ID accept-or-generate (echoed on the response and put in the
// request context), per-route RED metrics (request count by method/code,
// 5xx error count, duration histogram), and a structured access log.
// The route label is the mux pattern ("GET /api/v1/campaigns/{id}"), so
// per-campaign paths collapse into one bounded series per route; probe
// and scrape routes log at Debug to keep steady-state Info logs quiet.
func (s *Service) instrument(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = newRequestID()
		}
		w.Header().Set("X-Request-ID", rid)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey, rid))

		route := "unmatched"
		if _, pattern := mux.Handler(r); pattern != "" {
			route = pattern
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		mux.ServeHTTP(sw, r)
		elapsed := time.Since(start)

		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		s.metrics.httpRequests.With(route, r.Method, strconv.Itoa(code)).Inc()
		if code >= 500 {
			s.metrics.httpErrors.With(route).Inc()
		}
		s.metrics.httpDuration.With(route).Observe(elapsed.Seconds())

		level := slog.LevelInfo
		switch route {
		case "GET /healthz", "GET /readyz", "GET /metrics":
			level = slog.LevelDebug
		}
		s.logger.Log(r.Context(), level, "http request",
			"request_id", rid, "method", r.Method, "path", r.URL.Path,
			"route", route, "status", code, "bytes", sw.bytes,
			"duration_ms", float64(elapsed.Microseconds())/1000)
	})
}
