package sweepd

import (
	"context"
	"path/filepath"
	"sync"

	"padc/internal/runner"
)

// State is a campaign's position in its lifecycle state machine:
//
//	pending ──start──▶ running ──last row──▶ completed
//	                     │  │
//	          user cancel│  │engine error
//	                     ▼  ▼
//	               cancelled  failed
//
// A server restart re-enters running campaigns at running (resume):
// journaled rows are replayed through the engine's Reuse hook and only
// the remainder executes. Terminal states persist across restarts via
// their journal events; an interrupted campaign (no terminal event in the
// journal) is the only kind that resumes.
type State int

const (
	StatePending State = iota
	StateRunning
	StateCompleted
	StateFailed
	StateCancelled
)

var stateNames = [...]string{"pending", "running", "completed", "failed", "cancelled"}

func (s State) String() string { return stateNames[s] }

// streamWindow is the default per-subscriber buffered-row window; a
// consumer that falls further behind than this is disconnected (it can
// reconnect with ?offset= and replay from memory).
const defaultStreamWindow = 256

// journalWindow bounds completed-but-not-yet-journaled rows. The engine's
// Progress callback blocks once the window fills, so a slow disk
// backpressures the worker pool instead of growing memory.
const journalWindow = 256

// subscriber is one attached row-stream consumer.
type subscriber struct {
	ch chan RowEvent // buffered: the consumer's in-flight window
	// lagged is set (before ch closes, under the campaign mutex) when the
	// consumer was disconnected for falling behind its window; the HTTP
	// handler reports it as a stream-level error after draining.
	lagged bool
}

// Campaign is one submitted sweep: its spec, journal, live progress, and
// attached row streams. All mutable state is guarded by mu; the run loop
// lives in Service.start.
type Campaign struct {
	ID        string
	spec      runner.Spec
	shard     runner.Shard
	workers   int
	verify    bool
	telemetry bool
	total     int
	dir       string

	metrics *campaignMetrics

	mu        sync.Mutex
	state     State
	errMsg    string
	rows      []runner.JobResult // completion order: journal replay, then live
	doneIdx   map[int]bool
	failed    int
	reused    int
	running   int
	journaled int // rows durably appended (≤ len(rows))
	subs      map[*subscriber]bool
	window    int

	cancel context.CancelFunc
	done   chan struct{} // closed when the run loop exits
}

// Info snapshots the campaign's wire status.
func (c *Campaign) Info() CampaignInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CampaignInfo{
		ID:            c.ID,
		Name:          c.spec.Name,
		State:         c.state.String(),
		Shard:         c.shard,
		Telemetry:     c.telemetry,
		Total:         c.total,
		Done:          len(c.rows),
		Running:       c.running,
		Failed:        c.failed,
		Reused:        c.reused,
		CheckpointLag: len(c.rows) - c.journaled,
		Error:         c.errMsg,
	}
}

// Spec returns the campaign's parsed sweep spec.
func (c *Campaign) Spec() runner.Spec { return c.spec }

// Telemetry reports whether the campaign records per-job flight
// telemetry into its sidecar.
func (c *Campaign) Telemetry() bool { return c.telemetry }

// TelemetryRecords reads the campaign's telemetry sidecar back from
// disk: deduplicated, sorted by (key, index) — deterministic bytes once
// the campaign completes, regardless of worker count or resume history.
func (c *Campaign) TelemetryRecords() ([]TelemetryRecord, error) {
	return readTelemetry(filepath.Join(c.dir, telemetryName))
}

// Result merges the rows completed so far into the deterministic
// artifact shape. Once the campaign is completed this is byte-identical
// to a single-process run of the same spec (and shard).
func (c *Campaign) Result() *runner.SweepResult {
	c.mu.Lock()
	rows := append([]runner.JobResult(nil), c.rows...)
	c.mu.Unlock()
	return runner.MergeRows(c.spec, rows)
}

// Wait blocks until the run loop exits (terminal state reached or the
// service shut down) or ctx is cancelled.
func (c *Campaign) Wait(ctx context.Context) error {
	select {
	case <-c.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// setState moves the state machine, broadcasting the terminal event to
// every subscriber. Transitions out of a terminal state are ignored (a
// user cancel racing completion keeps whichever landed first).
func (c *Campaign) setState(s State, errMsg string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == StateCompleted || c.state == StateFailed || c.state == StateCancelled {
		return
	}
	c.state = s
	c.errMsg = errMsg
	c.metrics.state.Set(float64(s))
	if s == StateCompleted || s == StateFailed || s == StateCancelled {
		ev := RowEvent{Done: true, State: s.String(), Err: errMsg}
		for sub := range c.subs {
			// Terminal events must not be lost to a full window; a dedicated
			// non-blocking attempt first, then a forced close — the stream's
			// end is visible either way because the channel closes.
			select {
			case sub.ch <- ev:
			default:
			}
			close(sub.ch)
			delete(c.subs, sub)
		}
	}
}

// terminalLocked reports whether the campaign is in a final state.
// Callers hold mu.
func (c *Campaign) terminalLocked() bool {
	return c.state == StateCompleted || c.state == StateFailed || c.state == StateCancelled
}

// appendRow records one completed row (live completion, not journal
// replay) and fans it out to subscribers. A subscriber whose window is
// full is disconnected with a lagged error event — slow consumers shed
// load instead of stalling the campaign or growing memory.
func (c *Campaign) appendRow(r runner.JobResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rows = append(c.rows, r)
	if r.Err != "" {
		c.failed++
		c.metrics.jobsFailed.Inc()
	}
	c.metrics.jobsDone.Inc()
	c.metrics.lag.Set(float64(len(c.rows) - c.journaled))
	ev := RowEvent{Seq: len(c.rows), Row: &r}
	for sub := range c.subs {
		select {
		case sub.ch <- ev:
			c.metrics.rowsStreamed.Inc()
		default:
			// Window full: the consumer is shed rather than stalling the
			// campaign. lagged is visible to the handler after the close.
			sub.lagged = true
			close(sub.ch)
			delete(c.subs, sub)
		}
	}
}

// markJournaled advances the durable-row watermark (the checkpoint-lag
// gauge's other half).
func (c *Campaign) markJournaled(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journaled = n
	c.metrics.lag.Set(float64(len(c.rows) - c.journaled))
}

// subscribe attaches a row stream starting after row offset (0 streams
// from the beginning). It returns the backlog of rows already completed
// past the offset, the live subscriber (nil when the campaign is already
// terminal), and the campaign state at attach time. Backlog copy and
// registration are atomic with appendRow, so no row is missed or
// duplicated between backlog and live stream.
func (c *Campaign) subscribe(offset int) (backlog []runner.JobResult, sub *subscriber, state State) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if offset < 0 {
		offset = 0
	}
	if offset > len(c.rows) {
		offset = len(c.rows)
	}
	backlog = append(backlog, c.rows[offset:]...)
	if c.terminalLocked() {
		return backlog, nil, c.state
	}
	sub = &subscriber{ch: make(chan RowEvent, c.window)}
	c.subs[sub] = true
	return backlog, sub, c.state
}

// closeSubs detaches every subscriber without declaring a terminal state
// (service shutdown): the streams simply end, and consumers reconnect
// with ?offset= after the server restarts and resumes.
func (c *Campaign) closeSubs() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for sub := range c.subs {
		close(sub.ch)
		delete(c.subs, sub)
	}
}

// unsubscribe detaches a consumer (client went away).
func (c *Campaign) unsubscribe(sub *subscriber) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.subs[sub] {
		close(sub.ch)
		delete(c.subs, sub)
	}
}
