package sweepd

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"padc/internal/runner"
)

func testHeader(total int) journalHeader {
	return journalHeader{
		V:  journalVersion,
		ID: "c00000aa",
		Spec: runner.Spec{
			Name: "jtest", Seed: 1, Cores: 1, Insts: 2000,
			Policies: []string{"demand-first"}, Mixes: total,
		},
		Total: total,
	}
}

func row(idx int, key string) runner.JobResult {
	return runner.JobResult{
		Index: idx, Key: key, Seed: uint64(idx), Cycles: uint64(1000 + idx),
		IPC: []float64{0.5}, Telemetry: map[string]float64{"core0/mpki": 1.25},
	}
}

// TestJournalRoundTrip pins the append/recover cycle: header, rows and a
// terminal event survive exactly, including float-valued telemetry.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c00000aa", journalName)
	j, err := createJournal(path, testHeader(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.AppendRow(row(i, "k")); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.AppendEvent("completed", ""); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.header.ID != "c00000aa" || rec.header.Total != 4 || rec.torn {
		t.Fatalf("header mangled: %+v torn=%v", rec.header, rec.torn)
	}
	if rec.event != "completed" {
		t.Fatalf("event = %q, want completed", rec.event)
	}
	if len(rec.rows) != 3 {
		t.Fatalf("recovered %d rows, want 3", len(rec.rows))
	}
	got := rec.rows[1]
	if got.Index != 1 || got.Cycles != 1001 || got.IPC[0] != 0.5 || got.Telemetry["core0/mpki"] != 1.25 {
		t.Fatalf("row mangled: %+v", got)
	}
}

// TestJournalTornTail is the crash contract: a partial final append (no
// newline) and an undecodable tail are both dropped, keeping the intact
// prefix.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		tail string // appended raw after two good rows
		rows int
	}{
		{"torn-no-newline", `{"row":{"index":2,"ke`, 2},
		{"garbage-line", "\x00\x01binarygarbage\n", 2},
		{"torn-then-garbage", "{\"row\":{\"index\":9}}\n{\"row\":{\"ind", 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name, journalName)
			j, err := createJournal(path, testHeader(16))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				if err := j.AppendRow(row(i, "k")); err != nil {
					t.Fatal(err)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(tc.tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			rec, err := readJournal(path)
			if err != nil {
				t.Fatalf("torn journal failed recovery: %v", err)
			}
			if !rec.torn {
				t.Error("torn tail not flagged")
			}
			if len(rec.rows) != tc.rows {
				t.Fatalf("recovered %d rows, want %d", len(rec.rows), tc.rows)
			}
			if rec.event != "" {
				t.Fatalf("interrupted journal reports terminal event %q", rec.event)
			}
		})
	}
}

// TestJournalDedupAndForeignRows: duplicate indexes keep the first copy,
// and rows outside the campaign's shard are dropped.
func TestJournalDedupAndForeignRows(t *testing.T) {
	hdr := testHeader(8)
	hdr.Shard = runner.Shard{Index: 0, Count: 2} // owns even indexes
	path := filepath.Join(t.TempDir(), "c", journalName)
	j, err := createJournal(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	first := row(2, "first")
	dup := row(2, "dup")
	foreign := row(3, "odd-not-owned")
	for _, r := range []runner.JobResult{first, dup, foreign, row(4, "ok")} {
		if err := j.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.rows) != 2 || rec.rows[0].Key != "first" || rec.rows[1].Index != 4 {
		t.Fatalf("dedup/ownership filter broken: %+v", rec.rows)
	}
}

// TestJournalRejects covers unrecoverable journals: empty file, bad
// header, wrong version.
func TestJournalRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	for name, content := range map[string]string{
		"empty":       "",
		"bad-header":  "not json\n",
		"bad-version": `{"v":99,"id":"x","spec":{},"shard":{"index":0,"count":0},"total":1}` + "\n",
	} {
		if _, err := readJournal(write(name, content)); err == nil {
			t.Errorf("%s journal accepted", name)
		}
	}
	if _, err := readJournal(filepath.Join(dir, "missing")); err == nil || !strings.Contains(err.Error(), "no such file") {
		t.Errorf("missing journal error = %v", err)
	}
}
