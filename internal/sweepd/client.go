package sweepd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client is the Go client for a padcsweepd server; padcsweepd's
// submit/status subcommands and padcsim's -sweep-remote mode both sit on
// it.
type Client struct {
	base *url.URL
	hc   *http.Client
}

// NewClient builds a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080"). The HTTP client has no global timeout — row
// streams are long-lived — so pass contexts to bound individual calls.
func NewClient(baseURL string) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("sweepd: parsing server url: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("sweepd: server url %q needs scheme and host", baseURL)
	}
	return &Client{base: u, hc: &http.Client{}}, nil
}

func (c *Client) url(path string, query url.Values) string {
	u := *c.base
	u.Path = strings.TrimRight(u.Path, "/") + path
	if query != nil {
		u.RawQuery = query.Encode()
	}
	return u.String()
}

// do issues one request and decodes the JSON body into out (when non-nil),
// converting the server's error envelope into a Go error.
func (c *Client) do(ctx context.Context, method, path string, query url.Values, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.url(path, query), body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var envelope struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &envelope) == nil && envelope.Error != "" {
			return fmt.Errorf("sweepd: server: %s", envelope.Error)
		}
		return fmt.Errorf("sweepd: server returned %s", resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit uploads a campaign and returns its accepted status.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (CampaignInfo, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return CampaignInfo{}, err
	}
	var info CampaignInfo
	err = c.do(ctx, http.MethodPost, "/api/v1/campaigns", nil, bytes.NewReader(body), &info)
	return info, err
}

// Info fetches one campaign's status.
func (c *Client) Info(ctx context.Context, id string) (CampaignInfo, error) {
	var info CampaignInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/campaigns/"+url.PathEscape(id), nil, nil, &info)
	return info, err
}

// List fetches every campaign's status.
func (c *Client) List(ctx context.Context) ([]CampaignInfo, error) {
	var out []CampaignInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/campaigns", nil, nil, &out)
	return out, err
}

// Cancel stops a running campaign.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/api/v1/campaigns/"+url.PathEscape(id)+"/cancel", nil, nil, nil)
}

// StreamRows attaches to the campaign's row stream from the given offset
// and calls fn for every event until the stream ends. It returns nil on a
// clean terminal event, the callback's error if fn aborts the stream, or
// a transport/stream error (including the server's slow-consumer
// disconnect, surfaced as an error so callers know to reconnect).
func (c *Client) StreamRows(ctx context.Context, id string, offset int, fn func(RowEvent) error) error {
	q := url.Values{}
	if offset > 0 {
		q.Set("offset", strconv.Itoa(offset))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.url("/api/v1/campaigns/"+url.PathEscape(id)+"/rows", q), nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("sweepd: rows stream: %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22) // rows carry telemetry maps
	for sc.Scan() {
		var ev RowEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("sweepd: decoding row event: %w", err)
		}
		if ev.Err != "" && ev.Row == nil && !ev.Done {
			return fmt.Errorf("sweepd: stream: %s", ev.Err)
		}
		if err := fn(ev); err != nil {
			return err
		}
		if ev.Done {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("sweepd: row stream ended without a terminal event (server restarting?)")
}

// Wait polls the campaign until it reaches a terminal state, invoking
// progress (when non-nil) after each poll.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration, progress func(CampaignInfo)) (CampaignInfo, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		info, err := c.Info(ctx, id)
		if err != nil {
			return info, err
		}
		if progress != nil {
			progress(info)
		}
		if info.Terminal() {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-t.C:
		}
	}
}

// raw downloads one endpoint's body verbatim — bytes straight off the
// wire, preserving the byte-identity contract — converting the JSON
// error envelope on non-200s.
func (c *Client) raw(ctx context.Context, path string, query url.Values, what string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path, query), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var envelope struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &envelope) == nil && envelope.Error != "" {
			return nil, fmt.Errorf("sweepd: server: %s", envelope.Error)
		}
		return nil, fmt.Errorf("sweepd: %s: server returned %s", what, resp.Status)
	}
	return data, nil
}

// Artifact downloads the merged artifact ("csv" or "json") verbatim.
func (c *Client) Artifact(ctx context.Context, id, format string) ([]byte, error) {
	return c.raw(ctx, "/api/v1/campaigns/"+url.PathEscape(id)+"/artifact."+format, nil, "artifact")
}

// Telemetry downloads the campaign's per-job flight roll-ups as NDJSON
// (one TelemetryRecord per line, sorted by key). partial asks for the
// records collected so far on a campaign that has not completed yet.
func (c *Client) Telemetry(ctx context.Context, id string, partial bool) ([]byte, error) {
	var q url.Values
	if partial {
		q = url.Values{"partial": []string{"1"}}
	}
	return c.raw(ctx, "/api/v1/campaigns/"+url.PathEscape(id)+"/telemetry", q, "telemetry")
}
