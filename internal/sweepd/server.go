package sweepd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"padc/internal/runner"
)

// Handler returns the service's HTTP surface (see the package comment
// for the route table), wrapped in the request-id/RED-metrics/access-log
// middleware. It uses only net/http method patterns — no router
// dependency. Liveness (/healthz: the process is up) and readiness
// (/readyz: replay finished, campaigns are servable) are split so
// orchestration can restart a hung server without draining one that is
// merely replaying a large journal — the pre-replay window is covered by
// Gate, which answers /readyz with 503 until this handler is installed.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/campaigns", s.handleList)
	mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleInfo)
	mux.HandleFunc("POST /api/v1/campaigns/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/rows", s.handleRows)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/artifact.csv", s.handleArtifact("csv"))
	mux.HandleFunc("GET /api/v1/campaigns/{id}/artifact.json", s.handleArtifact("json"))
	mux.HandleFunc("GET /api/v1/campaigns/{id}/telemetry", s.handleTelemetry)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		// Reaching this handler is readiness: NewService finished replaying
		// the data directory before the handler could be installed.
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ready")
	})
	return s.instrument(mux)
}

// httpError is the JSON error envelope every non-2xx response uses.
func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// maxSubmitBytes bounds a spec upload; the engine's own MaxJobs guard
// bounds the expansion, this bounds the parse.
const maxSubmitBytes = 1 << 20

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding submit request: %w", err))
		return
	}
	c, err := s.Submit(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, c.Info())
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

// campaignFor resolves the {id} path value, writing the 404 itself.
func (s *Service) campaignFor(w http.ResponseWriter, r *http.Request) (*Campaign, bool) {
	id := r.PathValue("id")
	c, ok := s.Campaign(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", id))
	}
	return c, ok
}

func (s *Service) handleInfo(w http.ResponseWriter, r *http.Request) {
	if c, ok := s.campaignFor(w, r); ok {
		writeJSON(w, http.StatusOK, c.Info())
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignFor(w, r)
	if !ok {
		return
	}
	if err := s.Cancel(c.ID); err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, c.Info())
}

// handleRows streams result rows as NDJSON: the journaled/completed
// backlog first (from ?offset=, default 0), then live rows as jobs
// finish, ending with a terminal event when the campaign reaches a final
// state. Each line is flushed immediately; the subscriber's bounded
// window is the backpressure contract — a consumer that cannot keep up
// is disconnected with an err event and reconnects with ?offset=.
func (s *Service) handleRows(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignFor(w, r)
	if !ok {
		return
	}
	offset := 0
	if q := r.URL.Query().Get("offset"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad offset %q", q))
			return
		}
		offset = n
	}

	backlog, sub, state := c.subscribe(offset)
	if sub != nil {
		defer c.unsubscribe(sub)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev RowEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	for i := range backlog {
		if !emit(RowEvent{Seq: offset + i + 1, Row: &backlog[i]}) {
			return
		}
		c.metrics.rowsStreamed.Inc()
	}
	if sub == nil {
		// Already terminal at attach time.
		emit(RowEvent{Done: true, State: state.String()})
		return
	}
	ctx := r.Context()
	for {
		select {
		case ev, open := <-sub.ch:
			if !open {
				if sub.lagged {
					emit(RowEvent{Err: fmt.Sprintf(
						"slow consumer: fell more than %d rows behind; reconnect with ?offset=", c.window)})
				}
				return
			}
			if !emit(ev) {
				return
			}
			if ev.Done {
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

// handleArtifact serves the merged CSV/JSON artifact. Before completion
// it reports 409 unless ?partial=1 explicitly asks for the
// rows-completed-so-far merge (still deterministic per row, but not the
// full grid).
func (s *Service) handleArtifact(format string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c, ok := s.campaignFor(w, r)
		if !ok {
			return
		}
		info := c.Info()
		if info.State != StateCompleted.String() && r.URL.Query().Get("partial") != "1" {
			httpError(w, http.StatusConflict, fmt.Errorf(
				"campaign %s is %s (%d/%d rows); pass ?partial=1 for the incomplete merge",
				c.ID, info.State, info.Done, info.Total))
			return
		}
		res := c.Result()
		var err error
		switch format {
		case "csv":
			w.Header().Set("Content-Type", "text/csv")
			err = res.WriteCSV(w)
		case "json":
			w.Header().Set("Content-Type", "application/json")
			err = res.WriteJSON(w)
		}
		if err != nil && !errors.Is(err, http.ErrHandlerTimeout) {
			s.logger.Warn("writing artifact failed",
				"campaign", c.ID, "request_id", RequestID(r.Context()), "err", err)
		}
	}
}

// handleTelemetry streams the campaign's per-job flight roll-ups as
// NDJSON (one TelemetryRecord per line, sorted by key like the
// artifacts). It mirrors the artifact contract: 409 before completion
// unless ?partial=1, and 404 when the campaign was submitted without
// telemetry.
func (s *Service) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignFor(w, r)
	if !ok {
		return
	}
	if !c.Telemetry() {
		httpError(w, http.StatusNotFound, fmt.Errorf(
			"campaign %s was submitted without telemetry; resubmit with \"telemetry\": true", c.ID))
		return
	}
	info := c.Info()
	if info.State != StateCompleted.String() && r.URL.Query().Get("partial") != "1" {
		httpError(w, http.StatusConflict, fmt.Errorf(
			"campaign %s is %s (%d/%d rows); pass ?partial=1 for the records so far",
			c.ID, info.State, info.Done, info.Total))
		return
	}
	recs, err := c.TelemetryRecords()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			s.logger.Warn("writing telemetry failed",
				"campaign", c.ID, "request_id", RequestID(r.Context()), "err", err)
			return
		}
	}
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.reg.WritePrometheus(w)
}

// ShardPlan is a convenience for cooperating submitters: the SubmitRequest
// for each of count shards of one spec.
func ShardPlan(spec json.RawMessage, count, workers int, verify bool) []SubmitRequest {
	if count < 1 {
		count = 1
	}
	out := make([]SubmitRequest, count)
	for i := range out {
		out[i] = SubmitRequest{
			Spec: spec, Workers: workers, Verify: verify,
			Shard: runner.Shard{Index: i, Count: count},
		}
	}
	return out
}
