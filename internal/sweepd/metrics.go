package sweepd

import (
	"padc/internal/telemetry"
)

// serviceMetrics is the service-wide Prometheus family set; each campaign
// gets one labeled series per family. Families are registered once at
// service construction (telemetry.PromRegistry panics on duplicates) and
// series appear as campaigns are submitted or recovered.
type serviceMetrics struct {
	reg *telemetry.PromRegistry

	campaigns   *telemetry.LiveVec // counter: campaigns accepted, by source
	jobsTotal   *telemetry.LiveVec // gauge: jobs the campaign owns
	jobsDone    *telemetry.LiveVec // counter: completed rows (incl. failed+reused)
	jobsFailed  *telemetry.LiveVec // counter: rows with a job error
	jobsReused  *telemetry.LiveVec // counter: rows recovered from the journal
	jobsRunning *telemetry.LiveVec // gauge: rows currently executing
	rows        *telemetry.LiveVec // counter: rows delivered to stream subscribers
	lag         *telemetry.LiveVec // gauge: completed rows not yet journaled
	state       *telemetry.LiveVec // gauge: State enum value

	// Per-route RED series, maintained by the HTTP middleware. The route
	// label is the mux pattern, not the raw path, so cardinality stays
	// bounded by the route table.
	httpRequests *telemetry.LiveVec // counter: requests, by route/method/code
	httpErrors   *telemetry.LiveVec // counter: 5xx responses, by route
	httpDuration *telemetry.HistVec // histogram: request latency seconds, by route
}

func newServiceMetrics() *serviceMetrics {
	reg := telemetry.NewPromRegistry()
	return &serviceMetrics{
		reg:         reg,
		campaigns:   reg.Counter("padc_sweepd_campaigns_total", "campaigns accepted by this server", "source"),
		jobsTotal:   reg.Gauge("padc_sweepd_jobs_total", "jobs owned by the campaign's shard", "campaign"),
		jobsDone:    reg.Counter("padc_sweepd_jobs_done", "completed job rows (including failed and reused)", "campaign"),
		jobsFailed:  reg.Counter("padc_sweepd_jobs_failed", "job rows carrying an error", "campaign"),
		jobsReused:  reg.Counter("padc_sweepd_jobs_reused", "job rows recovered from the journal instead of executed", "campaign"),
		jobsRunning: reg.Gauge("padc_sweepd_jobs_running", "job rows currently executing", "campaign"),
		rows:        reg.Counter("padc_sweepd_rows_streamed", "rows delivered to live stream subscribers", "campaign"),
		lag:         reg.Gauge("padc_sweepd_checkpoint_lag", "completed rows not yet durably journaled", "campaign"),
		state:       reg.Gauge("padc_sweepd_campaign_state", "campaign lifecycle state (0 pending, 1 running, 2 completed, 3 failed, 4 cancelled)", "campaign"),

		httpRequests: reg.Counter("padc_sweepd_http_requests_total", "HTTP requests served, by route pattern, method and status code", "route", "method", "code"),
		httpErrors:   reg.Counter("padc_sweepd_http_errors_total", "HTTP responses with a 5xx status, by route pattern", "route"),
		httpDuration: reg.Histogram("padc_sweepd_http_request_duration_seconds", "HTTP request latency, by route pattern", nil, "route"),
	}
}

// campaignMetrics binds one campaign's label value onto every family.
type campaignMetrics struct {
	jobsTotal    *telemetry.LiveMetric
	jobsDone     *telemetry.LiveMetric
	jobsFailed   *telemetry.LiveMetric
	jobsReused   *telemetry.LiveMetric
	jobsRunning  *telemetry.LiveMetric
	rowsStreamed *telemetry.LiveMetric
	lag          *telemetry.LiveMetric
	state        *telemetry.LiveMetric
}

func (m *serviceMetrics) forCampaign(id string) *campaignMetrics {
	return &campaignMetrics{
		jobsTotal:    m.jobsTotal.With(id),
		jobsDone:     m.jobsDone.With(id),
		jobsFailed:   m.jobsFailed.With(id),
		jobsReused:   m.jobsReused.With(id),
		jobsRunning:  m.jobsRunning.With(id),
		rowsStreamed: m.rows.With(id),
		lag:          m.lag.With(id),
		state:        m.state.With(id),
	}
}
