package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// runTelemetryCampaign submits testSpecJSON with telemetry enabled on a
// fresh service with the given worker count, waits for completion, and
// returns the raw NDJSON body of the telemetry endpoint plus the CSV
// artifact bytes.
func runTelemetryCampaign(t *testing.T, workers int) (ndjson, csv []byte) {
	t.Helper()
	s := newTestService(t, t.TempDir(), workers)
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	cl, err := NewClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	info, err := cl.Submit(ctx, SubmitRequest{
		Spec:      json.RawMessage(testSpecJSON),
		Telemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Telemetry {
		t.Fatalf("submit response lost the telemetry flag: %+v", info)
	}
	if _, err := cl.Wait(ctx, info.ID, 0, nil); err != nil {
		t.Fatal(err)
	}
	ndjson, err = cl.Telemetry(ctx, info.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	csv, err = cl.Artifact(ctx, info.ID, "csv")
	if err != nil {
		t.Fatal(err)
	}
	return ndjson, csv
}

// TestTelemetryEndToEnd drives the per-job roll-up path over HTTP: a
// telemetry campaign produces one NDJSON record per job, each carrying a
// non-empty flight summary, sorted by (key, index), while the CSV
// artifact stays byte-identical to a telemetry-off run.
func TestTelemetryEndToEnd(t *testing.T) {
	_, wantCSV, _ := localArtifacts(t, testSpecJSON, 2)
	ndjson, csv := runTelemetryCampaign(t, 2)

	if !bytes.Equal(csv, wantCSV) {
		t.Error("telemetry campaign changed the CSV artifact")
	}

	lines := strings.Split(strings.TrimRight(string(ndjson), "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("telemetry NDJSON has %d records, want 6:\n%s", len(lines), ndjson)
	}
	var prev TelemetryRecord
	for i, line := range lines {
		var rec TelemetryRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("record %d is not valid JSON: %v\n%s", i, err, line)
		}
		if rec.Key == "" || rec.Flight == nil || len(rec.Flight.Totals) == 0 {
			t.Fatalf("record %d incomplete: %s", i, line)
		}
		if i > 0 && (rec.Key < prev.Key || (rec.Key == prev.Key && rec.Index <= prev.Index)) {
			t.Fatalf("records not sorted by (key, index): %q after %q", rec.Key, prev.Key)
		}
		prev = rec
	}
}

// TestTelemetryWorkerInvariance pins the fleet-merge contract at the
// service layer: the served NDJSON is byte-identical whatever the worker
// count, because records are keyed, deduplicated, and sorted rather than
// served in completion order.
func TestTelemetryWorkerInvariance(t *testing.T) {
	one, _ := runTelemetryCampaign(t, 1)
	four, _ := runTelemetryCampaign(t, 4)
	if !bytes.Equal(one, four) {
		t.Fatalf("telemetry NDJSON differs across worker counts (%d vs %d bytes)", len(one), len(four))
	}
}

// TestTelemetryNotRecorded checks the 404 contract: campaigns submitted
// without telemetry have no sidecar and the endpoint says so, rather than
// serving an empty stream that looks like a zero-job campaign.
func TestTelemetryNotRecorded(t *testing.T) {
	s := newTestService(t, t.TempDir(), 2)
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	cl, err := NewClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	info, err := cl.Submit(ctx, SubmitRequest{Spec: json.RawMessage(testSpecJSON)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, info.ID, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Telemetry(ctx, info.ID, false); err == nil ||
		!strings.Contains(err.Error(), "telemetry") {
		t.Fatalf("telemetry fetch on a non-telemetry campaign: err = %v", err)
	}
}

// TestTelemetrySurvivesResume restarts the service after completion and
// checks the sidecar-backed endpoint still serves identical bytes — the
// roll-ups are durable, not an in-memory artifact of the original run.
func TestTelemetrySurvivesResume(t *testing.T) {
	dir := t.TempDir()
	s := newTestService(t, dir, 2)
	c, err := s.Submit(SubmitRequest{
		Spec:      json.RawMessage(testSpecJSON),
		Telemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	want, err := c.TelemetryRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 6 {
		t.Fatalf("recorded %d telemetry rows, want 6", len(want))
	}
	s.Close()

	s2 := newTestService(t, dir, 2)
	defer s2.Close()
	c2, ok := s2.Campaign(c.ID)
	if !ok {
		t.Fatal("campaign lost on restart")
	}
	if !c2.Telemetry() {
		t.Fatal("telemetry flag lost on restart")
	}
	got, err := c2.TelemetryRecords()
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if !bytes.Equal(wb, gb) {
		t.Fatal("telemetry records changed across service restart")
	}
}
