package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"padc/internal/runner"
)

// testSpecJSON is the tiny campaign the service tests submit: 2 policies
// × (1 explicit + 2 random) mixes = 6 jobs, small enough for test
// latency, big enough to observe streaming and sharding.
const testSpecJSON = `{
	"name": "svc",
	"seed": 11,
	"cores": 2,
	"insts": 6000,
	"policies": ["demand-first", "padc"],
	"workloads": [["swim", "art"]],
	"mixes": 2
}`

// localArtifacts runs the spec in-process (the `padcsim -sweep` path) and
// returns the golden CSV/JSON bytes the service must reproduce.
func localArtifacts(t *testing.T, specJSON string, workers int) (spec runner.Spec, csv, js []byte) {
	t.Helper()
	spec, err := runner.ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(spec, runner.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	var cb, jb bytes.Buffer
	if err := res.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	return spec, cb.Bytes(), jb.Bytes()
}

// testLogger routes the service's structured logs (Debug and up, so the
// per-job lines show too) into the test log.
func testLogger(t *testing.T) *slog.Logger {
	t.Helper()
	return slog.New(slog.NewTextHandler(testLogWriter{t}, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

func newTestService(t *testing.T, dir string, workers int) *Service {
	t.Helper()
	s, err := NewService(ServiceOptions{
		DataDir: dir,
		Workers: workers,
		Resume:  true,
		Logger:  testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCampaignLifecycleHTTP drives the full HTTP surface end to end:
// submit a spec, stream every row live, wait for completion, and verify
// the served CSV and JSON artifacts are byte-identical to an in-process
// run — plus status, listing, and per-campaign Prometheus metrics.
func TestCampaignLifecycleHTTP(t *testing.T) {
	_, wantCSV, wantJSON := localArtifacts(t, testSpecJSON, 3)

	s := newTestService(t, t.TempDir(), 2)
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	cl, err := NewClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	info, err := cl.Submit(ctx, SubmitRequest{Spec: json.RawMessage(testSpecJSON)})
	if err != nil {
		t.Fatal(err)
	}
	if info.Total != 6 || info.State == "" {
		t.Fatalf("implausible submit response: %+v", info)
	}

	// Stream all rows live; the stream must deliver each exactly once and
	// end with the terminal event.
	var seqs []int
	var final string
	err = cl.StreamRows(ctx, info.ID, 0, func(ev RowEvent) error {
		if ev.Row != nil {
			seqs = append(seqs, ev.Seq)
		}
		if ev.Done {
			final = ev.State
		}
		return nil
	})
	if err != nil {
		t.Fatalf("StreamRows: %v", err)
	}
	if len(seqs) != info.Total || final != "completed" {
		t.Fatalf("stream delivered %d rows (want %d), final state %q", len(seqs), info.Total, final)
	}
	for i, seq := range seqs {
		if seq != i+1 {
			t.Fatalf("row seq gap: %v", seqs)
		}
	}

	got, err := cl.Wait(ctx, info.ID, 10*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "completed" || got.Done != got.Total || got.Failed != 0 || got.CheckpointLag != 0 {
		t.Fatalf("terminal status: %+v", got)
	}

	csv, err := cl.Artifact(ctx, info.ID, "csv")
	if err != nil {
		t.Fatal(err)
	}
	js, err := cl.Artifact(ctx, info.ID, "json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv, wantCSV) {
		t.Errorf("served CSV differs from in-process sweep (%d vs %d bytes)", len(csv), len(wantCSV))
	}
	if !bytes.Equal(js, wantJSON) {
		t.Errorf("served JSON differs from in-process sweep (%d vs %d bytes)", len(js), len(wantJSON))
	}

	list, err := cl.List(ctx)
	if err != nil || len(list) != 1 || list[0].ID != info.ID {
		t.Fatalf("List = %+v, err %v", list, err)
	}

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	s.Handler().ServeHTTP(rec, req)
	metrics := rec.Body.String()
	for _, want := range []string{
		`padc_sweepd_jobs_done{campaign="` + info.ID + `"} 6`,
		`padc_sweepd_jobs_total{campaign="` + info.ID + `"} 6`,
		`padc_sweepd_checkpoint_lag{campaign="` + info.ID + `"} 0`,
		`padc_sweepd_campaign_state{campaign="` + info.ID + `"} 2`,
		`padc_sweepd_rows_streamed{campaign="` + info.ID + `"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, metrics)
		}
	}
}

// TestSubmitRejects pins the API-level validation errors: no spec,
// unknown spec fields, bad shard, empty shard slice.
func TestSubmitRejects(t *testing.T) {
	s := newTestService(t, t.TempDir(), 1)
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	cl, _ := NewClient(srv.URL)
	ctx := context.Background()

	cases := map[string]SubmitRequest{
		"no spec":      {},
		"unknown axis": {Spec: json.RawMessage(`{"mixes":1,"bogus":true}`)},
		"bad shard":    {Spec: json.RawMessage(`{"mixes":1}`), Shard: runner.Shard{Index: 5, Count: 2}},
	}
	for name, req := range cases {
		if _, err := cl.Submit(ctx, req); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := cl.Info(ctx, "nope"); err == nil || !strings.Contains(err.Error(), "unknown campaign") {
		t.Errorf("missing campaign error = %v", err)
	}
}

// TestCancelCampaignSticky cancels mid-run and checks the state is
// terminal, journaled, and survives a service restart (a cancelled
// campaign must not resume).
func TestCancelCampaignSticky(t *testing.T) {
	dir := t.TempDir()
	s := newTestService(t, dir, 1)
	c, err := s.Submit(SubmitRequest{Spec: json.RawMessage(testSpecJSON)})
	if err != nil {
		t.Fatal(err)
	}
	// Cancel as soon as at least one row lands so the journal is non-trivial.
	deadline := time.After(30 * time.Second)
	for c.Info().Done == 0 {
		select {
		case <-deadline:
			t.Fatal("no rows completed")
		case <-time.After(time.Millisecond):
		}
	}
	if err := s.Cancel(c.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	info := c.Info()
	if info.State != "cancelled" {
		t.Fatalf("state after cancel = %q", info.State)
	}
	if err := s.Cancel(c.ID); err == nil {
		t.Error("second cancel succeeded")
	}
	s.Close()

	s2 := newTestService(t, dir, 1)
	defer s2.Close()
	c2, ok := s2.Campaign(c.ID)
	if !ok {
		t.Fatal("cancelled campaign lost on restart")
	}
	if got := c2.Info(); got.State != "cancelled" || got.Done != info.Done {
		t.Fatalf("restart mangled cancelled campaign: %+v (was %+v)", got, info)
	}
}

// TestSlowConsumerDisconnect is the backpressure contract: a subscriber
// that never drains its bounded window is shed (lagged, channel closed)
// while the campaign itself runs to completion unimpeded.
func TestSlowConsumerDisconnect(t *testing.T) {
	s, err := NewService(ServiceOptions{
		DataDir:      t.TempDir(),
		Workers:      2,
		StreamWindow: 1, // window far smaller than the 6-row campaign
		Resume:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := s.Submit(SubmitRequest{Spec: json.RawMessage(testSpecJSON)})
	if err != nil {
		t.Fatal(err)
	}
	_, sub, _ := c.subscribe(0)
	if sub == nil {
		t.Fatal("no live subscription")
	}
	if err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c.Info().State != "completed" {
		t.Fatalf("campaign state %q with stalled consumer", c.Info().State)
	}
	// The subscriber channel must be closed (shed) with the lagged flag.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, open := <-sub.ch:
			if !open {
				if !sub.lagged {
					t.Fatal("shed subscriber not marked lagged")
				}
				return
			}
		case <-deadline:
			t.Fatal("slow subscriber never shed")
		}
	}
}

// TestShardedServicesUnion runs the same spec as three shard campaigns on
// three independent services (the multi-process deployment shape) and
// checks the merged union of their rows is byte-identical to the
// unsharded artifact — 6 jobs over 3 even shards, then over 4 uneven
// shards (2/2/1/1).
func TestShardedServicesUnion(t *testing.T) {
	spec, wantCSV, wantJSON := localArtifacts(t, testSpecJSON, 2)

	for _, count := range []int{3, 4} { // 4 does not divide 6: uneven
		var union []runner.JobResult
		for idx := 0; idx < count; idx++ {
			s := newTestService(t, t.TempDir(), 2)
			c, err := s.Submit(SubmitRequest{
				Spec:  json.RawMessage(testSpecJSON),
				Shard: runner.Shard{Index: idx, Count: count},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Wait(context.Background()); err != nil {
				t.Fatal(err)
			}
			if st := c.Info(); st.State != "completed" {
				t.Fatalf("shard %d/%d state %q", idx, count, st.State)
			}
			union = append(union, c.Result().Jobs...)
			s.Close()
		}
		merged := runner.MergeRows(spec, union)
		var cb, jb bytes.Buffer
		if err := merged.WriteCSV(&cb); err != nil {
			t.Fatal(err)
		}
		if err := merged.WriteJSON(&jb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cb.Bytes(), wantCSV) {
			t.Errorf("count=%d: sharded union CSV differs from unsharded", count)
		}
		if !bytes.Equal(jb.Bytes(), wantJSON) {
			t.Errorf("count=%d: sharded union JSON differs from unsharded", count)
		}
	}
}
