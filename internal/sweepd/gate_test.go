package sweepd

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestGateReadiness pins the bind-before-replay contract: the gate
// answers liveness immediately while everything else — including
// readiness — returns 503 until the service behind it is installed.
func TestGateReadiness(t *testing.T) {
	g := NewGate()
	if g.Ready() {
		t.Fatal("fresh gate reports ready")
	}

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		g.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Errorf("/healthz before ready = %d, want 200", rec.Code)
	}
	for _, path := range []string{"/readyz", "/api/v1/campaigns", "/metrics"} {
		rec := get(path)
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s before ready = %d, want 503", path, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Errorf("%s before ready missing Retry-After", path)
		}
	}

	s := newTestService(t, t.TempDir(), 1)
	defer s.Close()
	g.SetReady(s.Handler())
	if !g.Ready() {
		t.Fatal("gate not ready after SetReady")
	}
	if rec := get("/readyz"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ready") {
		t.Errorf("/readyz after ready = %d %q", rec.Code, rec.Body.String())
	}
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Errorf("/healthz after ready = %d", rec.Code)
	}
	if rec := get("/api/v1/campaigns"); rec.Code != http.StatusOK {
		t.Errorf("campaign list after ready = %d", rec.Code)
	}
}

// TestRequestIDPropagation checks the correlation contract: a supplied
// X-Request-ID is echoed back verbatim, and requests without one get a
// generated ID in the response header.
func TestRequestIDPropagation(t *testing.T) {
	s := newTestService(t, t.TempDir(), 1)
	defer s.Close()
	h := s.Handler()

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/api/v1/campaigns", nil)
	req.Header.Set("X-Request-ID", "caller-7")
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); got != "caller-7" {
		t.Errorf("supplied request ID not echoed: got %q", got)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/v1/campaigns", nil))
	if got := rec.Header().Get("X-Request-ID"); got == "" {
		t.Error("no generated X-Request-ID on response")
	}
}

// TestHTTPREDMetrics checks that the middleware's request/error/duration
// series land on /metrics with the route pattern (not the raw path) as
// the label, and that 5xx responses increment the error counter.
func TestHTTPREDMetrics(t *testing.T) {
	s := newTestService(t, t.TempDir(), 1)
	defer s.Close()
	h := s.Handler()

	do := func(method, path string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
	}
	do("GET", "/api/v1/campaigns")
	do("GET", "/api/v1/campaigns/nope") // 404 from the handler
	do("GET", "/no/such/route")         // unmatched by the mux
	do("GET", "/readyz")

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`padc_sweepd_http_requests_total{route="GET /api/v1/campaigns",method="GET",code="200"} 1`,
		`padc_sweepd_http_requests_total{route="GET /api/v1/campaigns/{id}",method="GET",code="404"} 1`,
		`padc_sweepd_http_requests_total{route="GET /readyz",method="GET",code="200"} 1`,
		`padc_sweepd_http_request_duration_seconds_bucket{route="GET /api/v1/campaigns",le="+Inf"} 1`,
		`padc_sweepd_http_request_duration_seconds_count{route="GET /api/v1/campaigns"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The unmatched route must collapse into a bounded label, never the
	// raw request path (unbounded cardinality).
	if strings.Contains(body, "/no/such/route") {
		t.Error("raw unmatched path leaked into metric labels")
	}
	if !strings.Contains(body, `route="unmatched"`) {
		t.Error(`unmatched request not recorded under route="unmatched"`)
	}
	if strings.Contains(body, "padc_sweepd_http_errors_total{") {
		t.Error("error counter emitted series without any 5xx response")
	}
}
