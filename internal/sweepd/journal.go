package sweepd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"padc/internal/runner"
)

// The journal is the campaign's write-ahead log: one JSONL file per
// campaign, append-only. The first line is the header (campaign identity
// plus the exact spec that will run); every subsequent line is either a
// completed job row or a lifecycle event. Recovery tolerates a torn final
// line — a crash mid-append loses at most the row being written, and the
// resumed run simply re-executes it (rows are pure functions of the spec,
// so re-execution is idempotent).
//
//	{"v":1,"id":"c1a2b3c4","spec":{...},"shard":{"index":0,"count":1},"total":16,...}
//	{"row":{"index":3,"key":"policy=aps/...","cycles":123,...}}
//	{"row":{...}}
//	{"event":"completed"}
//
// Terminal events ("completed", "cancelled", "failed") pin the state
// machine across restarts: a journal without one is an interrupted
// campaign and is auto-resumed on server start. A graceful shutdown
// writes no terminal event on purpose — shutdown is an interruption, not
// an outcome.

// journalVersion guards the on-disk format.
const journalVersion = 1

// journalName is the file each campaign directory holds.
const journalName = "journal.jsonl"

// journalHeader is line one of the journal.
type journalHeader struct {
	V     int          `json:"v"`
	ID    string       `json:"id"`
	Spec  runner.Spec  `json:"spec"`
	Shard runner.Shard `json:"shard"`
	// Total is the number of jobs this campaign owns; recovery checks
	// journaled rows against it.
	Total   int  `json:"total"`
	Workers int  `json:"workers,omitempty"`
	Verify  bool `json:"verify,omitempty"`
	// Telemetry records whether the campaign writes the per-job flight
	// sidecar, so a resumed run keeps recording.
	Telemetry bool `json:"telemetry,omitempty"`
}

// journalLine is every line after the header.
type journalLine struct {
	Row    *runner.JobResult `json:"row,omitempty"`
	Event  string            `json:"event,omitempty"`
	Detail string            `json:"detail,omitempty"`
}

// journalSyncEvery bounds how many appended rows may ride on the OS page
// cache before an fsync; Close and terminal events always sync. Process
// death (SIGKILL) cannot lose flushed rows — only a machine crash can
// lose up to this window, and recovery re-runs those jobs.
const journalSyncEvery = 64

// Journal is the append side. Appends are serialized by the campaign's
// single journal-writer goroutine, but the mutex keeps the type safe to
// use from tests directly.
type Journal struct {
	path string
	f    *os.File
	bw   *bufio.Writer

	dirty int // rows since last sync
}

// createJournal starts a fresh journal with its header line, creating the
// campaign directory. The header is flushed and synced before return so a
// submitted campaign is durable immediately.
func createJournal(path string, hdr journalHeader) (*Journal, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{path: path, f: f, bw: bufio.NewWriter(f)}
	if err := j.appendJSON(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := j.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// openJournal reopens an existing journal for appending (resume),
// first truncating it to validLen — the intact-prefix length reported
// by readJournal — so fresh appends never land after a torn tail
// (where they would be unreadable on the next recovery).
func openJournal(path string, validLen int64) (*Journal, error) {
	if err := os.Truncate(path, validLen); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{path: path, f: f, bw: bufio.NewWriter(f)}, nil
}

func (j *Journal) appendJSON(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sweepd: journal %s: %w", j.path, err)
	}
	if _, err := j.bw.Write(data); err != nil {
		return err
	}
	return j.bw.WriteByte('\n')
}

// AppendRow journals one completed job row. The line is flushed to the OS
// (surviving process death) and fsynced every journalSyncEvery rows.
func (j *Journal) AppendRow(r runner.JobResult) error {
	if err := j.appendJSON(journalLine{Row: &r}); err != nil {
		return err
	}
	if err := j.bw.Flush(); err != nil {
		return err
	}
	j.dirty++
	if j.dirty >= journalSyncEvery {
		return j.Sync()
	}
	return nil
}

// AppendEvent journals a lifecycle event (terminal states), synced
// immediately.
func (j *Journal) AppendEvent(event, detail string) error {
	if err := j.appendJSON(journalLine{Event: event, Detail: detail}); err != nil {
		return err
	}
	return j.Sync()
}

// Sync flushes buffered lines and fsyncs the file.
func (j *Journal) Sync() error {
	if err := j.bw.Flush(); err != nil {
		return err
	}
	j.dirty = 0
	return j.f.Sync()
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	serr := j.Sync()
	cerr := j.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// recovered is a journal read back from disk.
type recovered struct {
	header journalHeader
	// rows holds the journaled rows in append order, deduplicated by grid
	// index (first occurrence wins — re-executed rows are identical anyway).
	rows []runner.JobResult
	// event is the last terminal event seen ("" when the campaign was
	// interrupted mid-run and should resume).
	event  string
	detail string
	// torn reports whether a torn/corrupt tail was dropped during recovery.
	torn bool
	// validLen is the byte length of the intact journal prefix (every
	// decodable line including its newline); resume truncates to it before
	// appending so fresh rows never follow a torn tail.
	validLen int64
}

// readJournal recovers a campaign journal. A torn final line — a partial
// append with no terminating newline, or an undecodable tail — is
// dropped along with anything after it rather than failing recovery: the
// WAL's contract is that a prefix of it is always a valid campaign state.
func readJournal(path string) (*recovered, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := bytes.Split(data, []byte("\n"))
	// A well-formed journal ends in '\n', so the final split element is
	// empty; anything else is a torn tail and is ignored.
	torn := false
	if n := len(lines); n > 0 && len(lines[n-1]) != 0 {
		lines = lines[:n-1]
		torn = true
	} else if n > 0 {
		lines = lines[:n-1] // drop the empty terminator
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("sweepd: journal %s: empty (no header)", path)
	}
	rec := &recovered{torn: torn}
	dec := json.NewDecoder(bytes.NewReader(lines[0]))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec.header); err != nil {
		return nil, fmt.Errorf("sweepd: journal %s: bad header: %w", path, err)
	}
	if rec.header.V != journalVersion {
		return nil, fmt.Errorf("sweepd: journal %s: version %d, want %d", path, rec.header.V, journalVersion)
	}
	rec.validLen = int64(len(lines[0]) + 1)
	seen := make(map[int]bool)
	for i, line := range lines[1:] {
		var jl journalLine
		if err := json.Unmarshal(line, &jl); err != nil {
			// Undecodable interior line: treat everything from here on as a
			// torn tail. Rows before it are intact and resumable.
			rec.torn = true
			break
		}
		rec.validLen += int64(len(line) + 1)
		switch {
		case jl.Row != nil:
			// Row indexes are global grid indexes (they can exceed Total when
			// sharded); drop rows this campaign's shard does not own and
			// duplicates (re-executed rows are identical anyway).
			if jl.Row.Index < 0 || !rec.header.Shard.Owns(jl.Row.Index) || seen[jl.Row.Index] {
				continue
			}
			seen[jl.Row.Index] = true
			rec.rows = append(rec.rows, *jl.Row)
		case jl.Event != "":
			rec.event, rec.detail = jl.Event, jl.Detail
		default:
			return nil, fmt.Errorf("sweepd: journal %s: line %d is neither row nor event", path, i+2)
		}
	}
	return rec, nil
}
