package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"padc/internal/runner"
)

// resumeSpecJSON expands to 12 jobs — enough that an interruption
// plausibly lands mid-flight and the resumed remainder is non-trivial.
const resumeSpecJSON = `{
	"name": "resume",
	"seed": 5,
	"cores": 2,
	"insts": 8000,
	"policies": ["demand-first", "aps", "padc"],
	"workloads": [["swim", "libquantum"]],
	"mixes": 3
}`

// TestCrashResumeByteIdentical is the campaign-resume contract (and the
// PR's acceptance criterion in miniature): a journal interrupted
// mid-flight — including a torn final line — resumed at several worker
// counts produces CSV and JSON artifacts byte-identical to an
// uninterrupted single-process run. The interrupted journal is
// fabricated from real rows so the cut point is deterministic.
func TestCrashResumeByteIdentical(t *testing.T) {
	spec, wantCSV, wantJSON := localArtifacts(t, resumeSpecJSON, 1)
	full, err := runner.Run(spec, runner.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name    string
		keep    int // journaled rows before the "crash"
		torn    bool
		workers int
	}{
		{"early-crash", 2, true, 1},
		{"mid-crash", 5, false, 2},
		{"late-crash-torn", 9, true, 4},
		{"nothing-journaled", 0, true, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			id := "cdeadbeef"
			hdr := journalHeader{
				V: journalVersion, ID: id, Spec: spec, Total: len(full.Jobs), Workers: tc.workers,
			}
			path := filepath.Join(dir, id, journalName)
			j, err := createJournal(path, hdr)
			if err != nil {
				t.Fatal(err)
			}
			// Journal the first keep rows in completion order, then crash:
			// optionally a torn half-written row with no newline.
			for i := 0; i < tc.keep; i++ {
				if err := j.AppendRow(full.Jobs[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			if tc.torn {
				f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.WriteString(`{"row":{"index":11,"key":"policy=...`); err != nil {
					t.Fatal(err)
				}
				f.Close()
			}

			s := newTestService(t, dir, tc.workers)
			defer s.Close()
			c, ok := s.Campaign(id)
			if !ok {
				t.Fatal("interrupted campaign not recovered")
			}
			if err := c.Wait(context.Background()); err != nil {
				t.Fatal(err)
			}
			info := c.Info()
			if info.State != "completed" {
				t.Fatalf("resumed campaign state %q (%+v)", info.State, info)
			}
			if info.Reused != tc.keep {
				t.Errorf("reused %d journaled rows, want %d", info.Reused, tc.keep)
			}

			res := c.Result()
			var cb, jb bytes.Buffer
			if err := res.WriteCSV(&cb); err != nil {
				t.Fatal(err)
			}
			if err := res.WriteJSON(&jb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cb.Bytes(), wantCSV) {
				t.Errorf("resumed CSV differs from uninterrupted run")
			}
			if !bytes.Equal(jb.Bytes(), wantJSON) {
				t.Errorf("resumed JSON differs from uninterrupted run")
			}

			// The repaired journal must now be terminal and fully replayable:
			// a second restart loads the completed campaign with every row.
			s.Close()
			s2 := newTestService(t, dir, 1)
			defer s2.Close()
			c2, ok := s2.Campaign(id)
			if !ok {
				t.Fatal("completed campaign lost on second restart")
			}
			if got := c2.Info(); got.State != "completed" || got.Done != len(full.Jobs) {
				t.Fatalf("second restart: %+v", got)
			}
			var cb2 bytes.Buffer
			if err := c2.Result().WriteCSV(&cb2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cb2.Bytes(), wantCSV) {
				t.Error("artifact drifted across restart of a completed campaign")
			}
		})
	}
}

// TestLiveInterruptResume exercises the real shutdown path: a running
// service is Closed mid-campaign (graceful interruption, no terminal
// journal event), then a fresh service over the same data directory
// auto-resumes and finishes with a byte-identical artifact.
func TestLiveInterruptResume(t *testing.T) {
	_, wantCSV, _ := localArtifacts(t, resumeSpecJSON, 1)

	dir := t.TempDir()
	s := newTestService(t, dir, 1)
	c, err := s.Submit(SubmitRequest{Spec: json.RawMessage(resumeSpecJSON)})
	if err != nil {
		t.Fatal(err)
	}
	// Interrupt once some (ideally not all) rows are journaled.
	deadline := time.After(60 * time.Second)
	for c.Info().Done < 2 {
		select {
		case <-deadline:
			t.Fatal("campaign made no progress")
		case <-time.After(time.Millisecond):
		}
	}
	s.Close()
	interrupted := c.Info()
	t.Logf("interrupted at %d/%d rows (state %s)", interrupted.Done, interrupted.Total, interrupted.State)

	s2 := newTestService(t, dir, 3)
	defer s2.Close()
	c2, ok := s2.Campaign(c.ID)
	if !ok {
		t.Fatal("interrupted campaign not found after restart")
	}
	if err := c2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	info := c2.Info()
	if info.State != "completed" || info.Done != info.Total {
		t.Fatalf("resumed campaign: %+v", info)
	}
	// Every row journaled before the interruption must have been reused,
	// not re-executed (if the campaign happened to finish before Close,
	// the restart just loads it and Reused stays 0).
	if interrupted.State == "running" && info.Reused == 0 && interrupted.Done < interrupted.Total {
		t.Errorf("resume re-executed all %d journaled rows", interrupted.Done)
	}
	var cb bytes.Buffer
	if err := c2.Result().WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cb.Bytes(), wantCSV) {
		t.Error("live-interrupted resume produced a different CSV artifact")
	}
}
