package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCoreResultDerived(t *testing.T) {
	c := CoreResult{
		Cycles: 1000, Retired: 500, Loads: 100, StallCycles: 400,
		L2Misses: 25, DemandReqs: 20, PrefSent: 50, PrefUsed: 40,
	}
	if got := c.IPC(); got != 0.5 {
		t.Fatalf("IPC=%v", got)
	}
	if got := c.MPKI(); got != 50 {
		t.Fatalf("MPKI=%v", got)
	}
	if got := c.SPL(); got != 4 {
		t.Fatalf("SPL=%v", got)
	}
	if got := c.ACC(); got != 0.8 {
		t.Fatalf("ACC=%v", got)
	}
	if got := c.COV(); math.Abs(got-40.0/60.0) > 1e-12 {
		t.Fatalf("COV=%v", got)
	}
}

func TestZeroDenominators(t *testing.T) {
	var c CoreResult
	for name, v := range map[string]float64{
		"IPC": c.IPC(), "MPKI": c.MPKI(), "SPL": c.SPL(), "ACC": c.ACC(), "COV": c.COV(),
	} {
		if v != 0 {
			t.Errorf("%s on zero result = %v", name, v)
		}
	}
}

func mkCores(ipcs ...float64) []CoreResult {
	out := make([]CoreResult, len(ipcs))
	for i, x := range ipcs {
		out[i] = CoreResult{Cycles: 1000, Retired: uint64(x * 1000)}
	}
	return out
}

func TestSpeedupMetrics(t *testing.T) {
	together := mkCores(0.5, 1.0)
	alone := []float64{1.0, 1.0}
	if got := WS(together, alone); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("WS=%v", got)
	}
	if got := HS(together, alone); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Fatalf("HS=%v", got)
	}
	if got := UF(together, alone); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("UF=%v", got)
	}
}

func TestUFPerfectlyFair(t *testing.T) {
	together := mkCores(0.7, 0.7, 0.7)
	alone := []float64{1, 1, 1}
	if got := UF(together, alone); math.Abs(got-1) > 1e-9 {
		t.Fatalf("UF of equal speedups = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("geomean=%v", got)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{0, 1}) != 0 {
		t.Fatal("degenerate geomean")
	}
}

// Property: HS <= arithmetic mean of speedups <= max speedup, and WS is
// the sum.
func TestSpeedupInequalities(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		ipcs := make([]float64, len(raw))
		alone := make([]float64, len(raw))
		for i, r := range raw {
			ipcs[i] = float64(r%100)/100 + 0.01
			alone[i] = 1
		}
		cores := mkCores(ipcs...)
		ws := WS(cores, alone)
		hs := HS(cores, alone)
		mean := ws / float64(len(raw))
		return hs <= mean+1e-6 && hs > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBusTrafficTotal(t *testing.T) {
	b := BusTraffic{Demand: 1, UsefulPref: 2, UselessPref: 3}
	if b.Total() != 6 {
		t.Fatalf("total=%d", b.Total())
	}
}

func TestResultsRates(t *testing.T) {
	r := Results{Serviced: 10, RowHits: 4, UsefulServiced: 5, UsefulRowHits: 5}
	if r.RBH() != 0.4 || r.RBHU() != 1.0 {
		t.Fatalf("RBH=%v RBHU=%v", r.RBH(), r.RBHU())
	}
	var zero Results
	if zero.RBH() != 0 || zero.RBHU() != 0 {
		t.Fatal("zero results rates")
	}
}

func TestSpeedupMetricsEmptyInput(t *testing.T) {
	for name, got := range map[string]float64{
		"WS": WS(nil, nil), "HS": HS(nil, nil), "UF": UF(nil, nil),
	} {
		if got != 0 {
			t.Errorf("%s on an empty run = %v, want 0", name, got)
		}
	}
	if IndividualSpeedups(nil, nil) == nil {
		// A non-nil empty slice keeps range loops and len() uniform.
		t.Error("IndividualSpeedups(nil) should return an empty slice, not nil")
	}
}

func TestZeroIPCAloneBaseline(t *testing.T) {
	// A zero alone-IPC baseline (e.g. a misconfigured reference run) must
	// yield a zero speedup for that core, not Inf or NaN.
	together := mkCores(0.5, 1.0)
	alone := []float64{0, 1}
	ss := IndividualSpeedups(together, alone)
	if ss[0] != 0 || ss[1] != 1 {
		t.Fatalf("speedups with zero baseline = %v, want [0 1]", ss)
	}
	if got := WS(together, alone); got != 1 {
		t.Errorf("WS = %v, want the surviving core's 1", got)
	}
	if got := HS(together, alone); got != 0 {
		t.Errorf("HS = %v, want 0 for a non-positive speedup", got)
	}
	if got := UF(together, alone); !math.IsInf(got, 1) {
		t.Errorf("UF = %v, want +Inf (maximally unfair), never NaN", got)
	}
}

func TestMeanEdgeCases(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean of nothing should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean([]float64{1, math.NaN()}); !math.IsNaN(got) {
		t.Errorf("Mean should propagate NaN, got %v", got)
	}
}

func TestGeoMeanNaNPropagates(t *testing.T) {
	// NaN is not <= 0, so it flows through the log/exp pipeline: garbage
	// in, NaN out — callers see the poisoned input rather than a silently
	// plausible number.
	if got := GeoMean([]float64{2, math.NaN()}); !math.IsNaN(got) {
		t.Errorf("GeoMean should propagate NaN, got %v", got)
	}
	if got := GeoMean([]float64{math.Inf(1), 2}); !math.IsInf(got, 1) {
		t.Errorf("GeoMean of +Inf input = %v, want +Inf", got)
	}
}

func TestHSNeverNaN(t *testing.T) {
	cases := [][]float64{{0, 0}, {0, 1}, {1, 1}}
	for _, alone := range cases {
		got := HS(mkCores(1, 1), alone)
		if math.IsNaN(got) {
			t.Errorf("HS with alone=%v is NaN", alone)
		}
	}
}
