// Package stats defines the metrics the paper reports (§5.2): per-core
// IPC, weighted speedup (WS), harmonic mean of speedups (HS), unfairness
// (UF), stall cycles per load (SPL), prefetch accuracy (ACC) and coverage
// (COV), bus traffic broken down into demand / useful prefetch / useless
// prefetch lines, and the row-buffer hit rates RBH and RBHU.
package stats

import "math"

// CoreResult summarizes one core's run (frozen when the core reached its
// instruction target).
type CoreResult struct {
	Benchmark   string
	Cycles      uint64
	Retired     uint64
	Loads       uint64
	StallCycles uint64

	L2Demand    uint64 // demand accesses reaching the last-level cache
	L2Misses    uint64 // demand misses (MPKI numerator)
	DemandReqs  uint64 // misses that went to memory as demand requests
	PrefSent    uint64 // prefetches admitted to the memory request buffer
	PrefUsed    uint64 // useful prefetches (promoted or hit in cache)
	PrefDropped uint64

	// Prefetch-conservation accounting: every admitted prefetch is either
	// serviced by DRAM, dropped by APD, or still buffered/in flight when the
	// core froze, so PrefSent == PrefServiced + PrefDropped + PrefInflight
	// always holds (the runner's invariant checks assert it per job).
	PrefServiced uint64 // admitted prefetches DRAM completed (promoted or pure)
	PrefInflight uint64 // admitted prefetches still outstanding at freeze

	// Attribution holds the cycle-accounting profile in cpu.CycleClass
	// order (retire, demand-miss, mshr-full, compute, idle); nil unless
	// the run enabled profiling. The entries sum to Cycles.
	Attribution []uint64
}

// IPC returns retired instructions per cycle.
func (c CoreResult) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Retired) / float64(c.Cycles)
}

// MPKI returns last-level-cache demand misses per 1 000 instructions.
func (c CoreResult) MPKI() float64 {
	if c.Retired == 0 {
		return 0
	}
	return float64(c.L2Misses) / float64(c.Retired) * 1000
}

// SPL returns instruction-window stall cycles per load.
func (c CoreResult) SPL() float64 {
	if c.Loads == 0 {
		return 0
	}
	return float64(c.StallCycles) / float64(c.Loads)
}

// ACC returns prefetch accuracy: useful / sent.
func (c CoreResult) ACC() float64 {
	if c.PrefSent == 0 {
		return 0
	}
	return float64(c.PrefUsed) / float64(c.PrefSent)
}

// COV returns prefetch coverage: useful / (demand memory requests +
// useful), per §5.2.
func (c CoreResult) COV() float64 {
	den := float64(c.DemandReqs + c.PrefUsed)
	if den == 0 {
		return 0
	}
	return float64(c.PrefUsed) / den
}

// RefreshStats aggregates the DRAM maintenance engine's counters across
// channels; all-zero when refresh is disabled.
type RefreshStats struct {
	Issued        uint64 // refreshes issued
	Postponed     uint64 // obligations that slipped a full tREFI window
	PulledIn      uint64 // refreshes issued early into idle banks
	Forced        uint64 // refreshes fired on the exhausted-credit deadline
	BlockedCycles uint64 // bank-cycles requests waited behind refresh
}

// DomainStats is one memory domain's slice of the run on a multi-tier
// topology: service and row-hit counts, data-bus occupancy, refresh
// interference, and the tier-local PADC accuracy picture per core.
type DomainStats struct {
	Name       string
	Channels   int
	LinkCycles uint64

	Serviced       uint64 // DRAM requests this domain completed
	RowHits        uint64
	BusBusyCycles  uint64 // summed over the domain's channels
	RefreshBlocked uint64 // bank-cycles requests waited behind refresh

	PrefSent uint64 // prefetches steered into this domain
	PrefUsed uint64 // of those, later consumed by a demand

	// Accuracy is each core's tier-local PAR estimate at the end of the
	// run — the value APS promotion and APD drop thresholds acted on.
	Accuracy []float64
}

// RBH returns the domain's row-buffer hit rate.
func (d DomainStats) RBH() float64 {
	if d.Serviced == 0 {
		return 0
	}
	return float64(d.RowHits) / float64(d.Serviced)
}

// ACC returns the domain's measured prefetch accuracy over the whole run.
func (d DomainStats) ACC() float64 {
	if d.PrefSent == 0 {
		return 0
	}
	return float64(d.PrefUsed) / float64(d.PrefSent)
}

// MemSideStats aggregates the memory-side (DRAM-side) prefetch path
// over every controller: the candidate pipeline (generated → enqueued →
// issued, with the drop reasons partitioning the rest) and the issued
// requests' outcomes at the cache (serviced, later consumed, or aged out
// by APD). Nil on Results when the path is disabled.
type MemSideStats struct {
	Generated       uint64 // candidate lines proposed by controllers
	Enqueued        uint64 // admitted to a candidate list
	Issued          uint64 // injected into a request buffer (idle row-hit window)
	Filtered        uint64 // rejected by the cache/MSHR dedupe filter
	DroppedOverflow uint64 // shed by list overflow
	DroppedStale    uint64 // aged out of the candidate list
	DroppedPressure uint64 // shed whole-list under demand pressure
	GateClosed      uint64 // demand triggers suppressed by the PADC accuracy gate

	Serviced uint64 // issued prefetches DRAM completed
	Used     uint64 // of those, later consumed by a demand
	Dropped  uint64 // issued prefetches APD aged out of the buffer
}

// ACC returns the memory-side stream's measured accuracy: consumed fills
// over terminal outcomes (serviced + APD-dropped).
func (m MemSideStats) ACC() float64 {
	den := float64(m.Serviced + m.Dropped)
	if den == 0 {
		return 0
	}
	return float64(m.Used) / den
}

// DSPatchStats summarizes the dual-spatial prefetcher's bias trade-off:
// how many trigger accesses emitted from the coverage-biased versus the
// accuracy-biased pattern, each pattern's measured bit accuracy, and the
// final bandwidth-headroom sample the selector acted on. Nil on Results
// unless the dspatch prefetcher ran.
type DSPatchStats struct {
	Issued       uint64 // prefetch candidates emitted
	CovPSelected uint64 // triggers served by the coverage-biased pattern
	AccPSelected uint64 // triggers served by the accuracy-biased pattern
	CovAccuracy  float64
	AccAccuracy  float64
	Headroom     float64 // last bandwidth-headroom sample fed to the selector
}

// BusTraffic is the system's transferred cache lines by origin.
type BusTraffic struct {
	Demand      uint64
	UsefulPref  uint64
	UselessPref uint64
}

// Total returns all transferred lines.
func (b BusTraffic) Total() uint64 { return b.Demand + b.UsefulPref + b.UselessPref }

// Results is one full simulation outcome.
type Results struct {
	Cycles  uint64 // cycles until the last core reached its target
	PerCore []CoreResult
	Bus     BusTraffic

	Serviced       uint64 // DRAM requests serviced
	RowHits        uint64
	UsefulServiced uint64 // demand + useful-prefetch services
	UsefulRowHits  uint64

	Dropped       uint64
	BufferRejects uint64

	Refresh RefreshStats // DRAM maintenance totals (zero when refresh is off)

	// Domains holds per-domain breakdowns on multi-tier topologies; nil on
	// a flat machine so flat results stay structurally identical to the
	// pre-topology simulator.
	Domains []DomainStats

	// MemSide and DSPatch report the memory-side prefetch path and the
	// dual-spatial prefetcher; both nil when the feature is off, so
	// baseline results stay structurally identical.
	MemSide *MemSideStats
	DSPatch *DSPatchStats

	// Optional traces for Figure 4.
	ServiceHistUseful  []uint64 // histogram buckets of service time, useful prefetches
	ServiceHistUseless []uint64
	AccuracyTrace      []float64 // PAR per interval for core 0
}

// RBH returns the row-buffer hit rate over all serviced requests.
func (r Results) RBH() float64 {
	if r.Serviced == 0 {
		return 0
	}
	return float64(r.RowHits) / float64(r.Serviced)
}

// RBHU returns the row-buffer hit rate over useful requests only (§6.1.1).
func (r Results) RBHU() float64 {
	if r.UsefulServiced == 0 {
		return 0
	}
	return float64(r.UsefulRowHits) / float64(r.UsefulServiced)
}

// Speedup metrics over a multiprogrammed run. ipcAlone[i] is core i's
// benchmark IPC when run alone (measured with the demand-first policy, as
// in the paper).

// IndividualSpeedups returns IPC_together / IPC_alone per core.
func IndividualSpeedups(together []CoreResult, ipcAlone []float64) []float64 {
	out := make([]float64, len(together))
	for i, c := range together {
		if ipcAlone[i] > 0 {
			out[i] = c.IPC() / ipcAlone[i]
		}
	}
	return out
}

// WS returns the weighted speedup (system throughput).
func WS(together []CoreResult, ipcAlone []float64) float64 {
	var ws float64
	for _, s := range IndividualSpeedups(together, ipcAlone) {
		ws += s
	}
	return ws
}

// HS returns the harmonic mean of speedups (inverse job turnaround time).
// An empty run, or any core with a non-positive speedup (e.g. a zero
// IPC_alone baseline), yields 0 rather than NaN.
func HS(together []CoreResult, ipcAlone []float64) float64 {
	ss := IndividualSpeedups(together, ipcAlone)
	if len(ss) == 0 {
		return 0
	}
	var inv float64
	for _, s := range ss {
		if s <= 0 {
			return 0
		}
		inv += 1 / s
	}
	return float64(len(ss)) / inv
}

// UF returns unfairness: max speedup over min speedup (§6.3.4). An empty
// run yields 0; a core with a non-positive speedup yields +Inf (maximally
// unfair), never NaN.
func UF(together []CoreResult, ipcAlone []float64) float64 {
	ss := IndividualSpeedups(together, ipcAlone)
	if len(ss) == 0 {
		return 0
	}
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, s := range ss {
		mn = math.Min(mn, s)
		mx = math.Max(mx, s)
	}
	if mn <= 0 {
		return math.Inf(1)
	}
	return mx / mn
}

// GeoMean returns the geometric mean of xs (used for gmean55-style
// normalized-IPC summaries).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
