// Package cache implements the set-associative caches the simulated cores
// use: true-LRU replacement, a prefetch (P) bit per line as the PADC paper
// requires for accuracy measurement, and per-line fill metadata used for
// the row-buffer-hit-rate-for-useful-requests (RBHU) statistic.
package cache

import (
	"fmt"
	"math/bits"
)

// Line is one cache line's bookkeeping.
type line struct {
	tag      uint64
	valid    bool
	prefetch bool // P bit: filled by a prefetch, not yet touched by a demand
	fillHit  bool // the DRAM access that filled it was a row hit
	lru      uint64
}

// Config sizes a cache.
type Config struct {
	Bytes     uint64 // total capacity
	Ways      int
	LineBytes uint64
	HitCycles uint64
}

// Validate reports a descriptive error for impossible cache shapes.
func (c Config) Validate() error {
	switch {
	case c.Bytes == 0 || c.LineBytes == 0:
		return fmt.Errorf("cache: capacity (%d) and line size (%d) must be nonzero", c.Bytes, c.LineBytes)
	case c.Ways <= 0:
		return fmt.Errorf("cache: ways must be positive, got %d", c.Ways)
	case c.Bytes%(c.LineBytes*uint64(c.Ways)) != 0:
		return fmt.Errorf("cache: %dB/%d-way/%dB-line does not divide into whole sets", c.Bytes, c.Ways, c.LineBytes)
	}
	sets := c.Bytes / (c.LineBytes * uint64(c.Ways))
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	return nil
}

// Lines returns the number of lines the cache holds.
func (c Config) Lines() uint64 { return c.Bytes / c.LineBytes }

// Cache is a single set-associative cache indexed by line address
// (byte address >> log2 line size).
type Cache struct {
	cfg      Config
	sets     [][]line
	tagShift uint
	setMask  uint64
	tick     uint64

	// Stats.
	Accesses    uint64
	Misses      uint64
	PrefHits    uint64 // demand hits that consumed a prefetched line
	PrefFills   uint64
	EvictUnused uint64 // prefetched lines evicted without a demand touch
}

// New builds a cache; it panics only on a config that Validate rejects,
// so callers should validate configs that come from user input first.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Bytes / (cfg.LineBytes * uint64(cfg.Ways))
	c := &Cache{
		cfg:      cfg,
		sets:     make([][]line, nsets),
		tagShift: uint(bits.Len64(nsets - 1)),
		setMask:  nsets - 1,
	}
	backing := make([]line, nsets*uint64(cfg.Ways))
	for i := range c.sets {
		c.sets[i] = backing[uint64(i)*uint64(cfg.Ways) : (uint64(i)+1)*uint64(cfg.Ways)]
	}
	return c
}

// Config returns the geometry this cache was built with.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) set(lineAddr uint64) []line { return c.sets[lineAddr&c.setMask] }

// HitInfo describes what a demand access found.
type HitInfo struct {
	Hit         bool
	WasPrefetch bool // line had its P bit set (first demand use of a prefetch)
	FillRowHit  bool // the fill that brought it in was a DRAM row hit
}

// Access performs a demand lookup for lineAddr, updating LRU and clearing
// the P bit on a hit (the PADC accuracy counters are the caller's job).
func (c *Cache) Access(lineAddr uint64) HitInfo {
	c.tick++
	c.Accesses++
	tag := lineAddr >> c.tagShift
	s := c.set(lineAddr)
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			s[i].lru = c.tick
			info := HitInfo{Hit: true, WasPrefetch: s[i].prefetch, FillRowHit: s[i].fillHit}
			if s[i].prefetch {
				s[i].prefetch = false
				c.PrefHits++
			}
			return info
		}
	}
	c.Misses++
	return HitInfo{}
}

// Contains reports whether lineAddr is present without touching LRU or
// the P bit (used by prefetchers to avoid redundant prefetches).
func (c *Cache) Contains(lineAddr uint64) bool {
	tag := lineAddr >> c.tagShift
	s := c.set(lineAddr)
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			return true
		}
	}
	return false
}

// Eviction describes the line a Fill displaced, so callers can account
// pollution (FDP) and train prefetch filters (DDPF).
type Eviction struct {
	Valid       bool
	LineAddr    uint64
	WasPrefetch bool // evicted line still carried its P bit (unused prefetch)
}

// Fill inserts lineAddr, evicting LRU. prefetch marks the line's P bit;
// fillRowHit records whether the DRAM access that produced the line was a
// row hit (consumed later by the RBHU statistic).
func (c *Cache) Fill(lineAddr uint64, prefetch, fillRowHit bool) Eviction {
	c.tick++
	tag := lineAddr >> c.tagShift
	s := c.set(lineAddr)
	victim := -1
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			// Refill of a present line (e.g. a racing demand already filled
			// it): keep the stronger "demand" classification.
			s[i].prefetch = s[i].prefetch && prefetch
			s[i].lru = c.tick
			return Eviction{}
		}
		if victim < 0 && !s[i].valid {
			victim = i
		}
	}
	var ev Eviction
	if victim < 0 {
		victim = 0
		for i := 1; i < len(s); i++ {
			if s[i].lru < s[victim].lru {
				victim = i
			}
		}
		if s[victim].prefetch {
			c.EvictUnused++
		}
		ev = Eviction{
			Valid:       true,
			LineAddr:    s[victim].tag<<c.tagShift | lineAddr&c.setMask,
			WasPrefetch: s[victim].prefetch,
		}
	}
	s[victim] = line{tag: tag, valid: true, prefetch: prefetch, fillHit: fillRowHit, lru: c.tick}
	if prefetch {
		c.PrefFills++
	}
	return ev
}

// Invalidate drops lineAddr if present. It returns whether the line was
// present and still carried its P bit (an unused prefetch).
func (c *Cache) Invalidate(lineAddr uint64) (present, unusedPrefetch bool) {
	tag := lineAddr >> c.tagShift
	s := c.set(lineAddr)
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			present, unusedPrefetch = true, s[i].prefetch
			s[i] = line{}
			return
		}
	}
	return
}
