package cache

// MSHR is a miss-status holding register file for one core's last-level
// cache. Each entry tracks one outstanding line fill; demand loads waiting
// on the line are represented by an opaque waiter count owned by the core
// model. Prefetches also allocate entries (the PADC paper drops a prefetch
// by invalidating its MSHR entry before removing it from the memory
// request buffer).
type MSHR struct {
	capacity int
	entries  map[uint64]*MSHREntry

	// Stats.
	Allocs           uint64
	FullStalls       uint64 // allocation attempts rejected because the file was full
	FullStallsDemand uint64 // ... of which the requester was a demand load
	FullStallsPref   uint64 // ... of which the requester was a prefetch
	HighWater        int    // peak simultaneous outstanding misses
}

// MSHREntry tracks one outstanding miss.
type MSHREntry struct {
	LineAddr uint64
	Prefetch bool // still a pure prefetch (no demand has merged into it)
	// Waiters identifies the demand loads blocked on this fill as
	// (core, sequence) pairs packed by the simulator.
	Waiters []Waiter
}

// Waiter identifies one load blocked on a fill.
type Waiter struct {
	Core int
	Seq  uint64
}

// NewMSHR builds an MSHR file with the given number of entries.
func NewMSHR(capacity int) *MSHR {
	return &MSHR{capacity: capacity, entries: make(map[uint64]*MSHREntry, capacity)}
}

// Capacity returns the entry count the file was built with.
func (m *MSHR) Capacity() int { return m.capacity }

// Len returns the number of outstanding misses.
func (m *MSHR) Len() int { return len(m.entries) }

// Full reports whether no further misses can be tracked.
func (m *MSHR) Full() bool { return len(m.entries) >= m.capacity }

// Lookup returns the outstanding entry for lineAddr, or nil.
func (m *MSHR) Lookup(lineAddr uint64) *MSHREntry { return m.entries[lineAddr] }

// Allocate creates an entry for lineAddr. It returns nil if the file is
// full or the line is already outstanding (callers merge via Lookup).
func (m *MSHR) Allocate(lineAddr uint64, prefetch bool) *MSHREntry {
	if m.Full() {
		m.NoteFullStall(prefetch)
		return nil
	}
	if _, ok := m.entries[lineAddr]; ok {
		return nil
	}
	e := &MSHREntry{LineAddr: lineAddr, Prefetch: prefetch}
	m.entries[lineAddr] = e
	m.Allocs++
	if len(m.entries) > m.HighWater {
		m.HighWater = len(m.entries)
	}
	return e
}

// NoteFullStall books one allocation the owner skipped because the file
// was full, split by requester type. Owners that check Full before
// calling Allocate use this so the stall statistics stay complete.
func (m *MSHR) NoteFullStall(prefetch bool) {
	m.FullStalls++
	if prefetch {
		m.FullStallsPref++
	} else {
		m.FullStallsDemand++
	}
}

// Release removes the entry for lineAddr (fill completed or prefetch
// dropped). It is a no-op if the line is not outstanding.
func (m *MSHR) Release(lineAddr uint64) { delete(m.entries, lineAddr) }
