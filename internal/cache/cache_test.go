package cache

import (
	"testing"
	"testing/quick"
)

func smallConfig() Config {
	return Config{Bytes: 4096, Ways: 4, LineBytes: 64, HitCycles: 2} // 16 sets? 4096/64/4 = 16
}

func TestConfigValidate(t *testing.T) {
	if err := smallConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Bytes: 0, Ways: 4, LineBytes: 64},
		{Bytes: 4096, Ways: 0, LineBytes: 64},
		{Bytes: 4096, Ways: 4, LineBytes: 0},
		{Bytes: 4000, Ways: 4, LineBytes: 64},
		{Bytes: 4096 * 3, Ways: 4, LineBytes: 64}, // 48 sets: not a power of two
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestHitMiss(t *testing.T) {
	c := New(smallConfig())
	if c.Access(42).Hit {
		t.Fatal("empty cache hit")
	}
	c.Fill(42, false, false)
	info := c.Access(42)
	if !info.Hit || info.WasPrefetch {
		t.Fatalf("expected demand hit, got %+v", info)
	}
	if !c.Contains(42) || c.Contains(43) {
		t.Fatal("Contains wrong")
	}
}

func TestPrefetchBitLifecycle(t *testing.T) {
	c := New(smallConfig())
	c.Fill(7, true, true)
	info := c.Access(7)
	if !info.Hit || !info.WasPrefetch || !info.FillRowHit {
		t.Fatalf("first touch should report prefetch+rowhit fill: %+v", info)
	}
	info = c.Access(7)
	if !info.Hit || info.WasPrefetch {
		t.Fatalf("P bit must clear after first use: %+v", info)
	}
	if c.PrefHits != 1 || c.PrefFills != 1 {
		t.Fatalf("counters: hits=%d fills=%d", c.PrefHits, c.PrefFills)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New(smallConfig()) // 16 sets, 4 ways
	// Four lines in set 0: line addresses that are multiples of 16.
	for i := uint64(0); i < 4; i++ {
		c.Fill(i*16, false, false)
	}
	c.Access(0) // make line 0 most recent
	ev := c.Fill(4*16, false, false)
	if !ev.Valid || ev.LineAddr != 1*16 {
		t.Fatalf("should evict LRU line 16, got %+v", ev)
	}
	if !c.Contains(0) || c.Contains(16) {
		t.Fatal("wrong victim evicted")
	}
}

func TestEvictionReportsUnusedPrefetch(t *testing.T) {
	c := New(smallConfig())
	for i := uint64(0); i < 4; i++ {
		c.Fill(i*16, true, false)
	}
	c.Access(0) // uses line 0's prefetch
	ev := c.Fill(4*16, false, false)
	if !ev.Valid || !ev.WasPrefetch {
		t.Fatalf("evicting an untouched prefetch should report it: %+v", ev)
	}
	if c.EvictUnused != 1 {
		t.Fatalf("EvictUnused=%d", c.EvictUnused)
	}
}

func TestRefillKeepsDemandClassification(t *testing.T) {
	c := New(smallConfig())
	c.Fill(9, false, false)
	c.Fill(9, true, false) // racing prefetch refill must not set the P bit
	if info := c.Access(9); info.WasPrefetch {
		t.Fatal("refill flipped a demand line to prefetch")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(smallConfig())
	c.Fill(5, true, false)
	present, unused := c.Invalidate(5)
	if !present || !unused {
		t.Fatalf("invalidate: present=%v unused=%v", present, unused)
	}
	if present, _ := c.Invalidate(5); present {
		t.Fatal("double invalidate")
	}
}

// TestFillThenAccessProperty: anything filled is a hit until evicted by
// enough same-set fills.
func TestFillThenAccessProperty(t *testing.T) {
	f := func(lines []uint16) bool {
		c := New(smallConfig())
		for _, l := range lines {
			c.Fill(uint64(l), false, false)
			if !c.Access(uint64(l)).Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCapacityProperty: a working set no larger than the associativity per
// set never misses after warmup.
func TestCapacityProperty(t *testing.T) {
	c := New(smallConfig())
	ws := []uint64{0, 16, 32, 48} // all in set 0, exactly 4 ways
	for _, l := range ws {
		c.Fill(l, false, false)
	}
	for round := 0; round < 10; round++ {
		for _, l := range ws {
			if !c.Access(l).Hit {
				t.Fatalf("round %d: line %d evicted from a fitting working set", round, l)
			}
		}
	}
}

func TestMSHR(t *testing.T) {
	m := NewMSHR(2)
	if m.Full() || m.Len() != 0 || m.Capacity() != 2 {
		t.Fatal("fresh MSHR state wrong")
	}
	e := m.Allocate(100, true)
	if e == nil || !e.Prefetch {
		t.Fatal("allocation failed")
	}
	if m.Allocate(100, false) != nil {
		t.Fatal("duplicate allocation should fail")
	}
	if m.Lookup(100) != e {
		t.Fatal("lookup broken")
	}
	m.Allocate(200, false)
	if !m.Full() {
		t.Fatal("should be full")
	}
	if m.Allocate(300, false) != nil {
		t.Fatal("over-capacity allocation")
	}
	if m.FullStalls != 1 {
		t.Fatalf("FullStalls=%d", m.FullStalls)
	}
	m.Release(100)
	if m.Full() || m.Lookup(100) != nil {
		t.Fatal("release broken")
	}
	e2 := m.Allocate(300, false)
	e2.Waiters = append(e2.Waiters, Waiter{Core: 1, Seq: 9})
	if len(m.Lookup(300).Waiters) != 1 {
		t.Fatal("waiters lost")
	}
}

func TestMSHRFullStallSplit(t *testing.T) {
	m := NewMSHR(1)
	m.Allocate(100, false)
	if m.Allocate(200, false) != nil || m.Allocate(300, true) != nil {
		t.Fatal("over-capacity allocation")
	}
	m.NoteFullStall(true) // owners that check Full() first book stalls directly
	if m.FullStalls != 3 || m.FullStallsDemand != 1 || m.FullStallsPref != 2 {
		t.Fatalf("stall split = %d total / %d demand / %d pref, want 3/1/2",
			m.FullStalls, m.FullStallsDemand, m.FullStallsPref)
	}
}
