package core

import (
	"fmt"
	"math/bits"
	"strings"
)

// HardwareCost reproduces the paper's §4.4 storage cost model (Tables 1
// and 2): the bit fields PADC adds to each cache line, per-core counter,
// and memory request buffer entry.
type HardwareCost struct {
	Cores        int
	CacheLines   uint64 // last-level cache lines per core
	BufferSlots  int    // memory request buffer entries (all controllers)
	L2CacheBytes uint64 // per-core L2 data capacity, for the fraction row
}

// CostItem is one row of Table 1/2.
type CostItem struct {
	Group string // "accuracy", "aps", "apd"
	Field string
	Bits  uint64
}

// Items returns every bit field with its total cost, mirroring Table 1:
//
//	P    1 bit  x (cache lines x cores + buffer entries)
//	PSC  16 bit x cores
//	PUC  16 bit x cores
//	PAR   8 bit x cores
//	U     1 bit x buffer entries
//	ID   log2(cores) bits x buffer entries
//	AGE  10 bit x buffer entries
func (h HardwareCost) Items() []CostItem {
	idBits := uint64(bits.Len(uint(h.Cores - 1)))
	if h.Cores <= 1 {
		idBits = 1
	}
	n := uint64(h.BufferSlots)
	return []CostItem{
		{"accuracy", "P", h.CacheLines*uint64(h.Cores) + n},
		{"accuracy", "PSC", uint64(h.Cores) * 16},
		{"accuracy", "PUC", uint64(h.Cores) * 16},
		{"accuracy", "PAR", uint64(h.Cores) * 8},
		{"aps", "U", n},
		{"apd", "ID", n * idBits},
		{"apd", "AGE", n * 10},
	}
}

// TotalBits returns the full PADC storage cost in bits.
func (h HardwareCost) TotalBits() uint64 {
	var t uint64
	for _, it := range h.Items() {
		t += it.Bits
	}
	return t
}

// TotalBitsWithoutP returns the cost when the processor already maintains
// prefetch bits in its caches (the paper's 1,824-bit figure).
func (h HardwareCost) TotalBitsWithoutP() uint64 {
	var t uint64
	for _, it := range h.Items() {
		if it.Field != "P" {
			t += it.Bits
		}
	}
	return t
}

// FractionOfL2 returns the total cost as a fraction of aggregate L2 data
// capacity (the paper reports 0.2% for its 4-core baseline).
func (h HardwareCost) FractionOfL2() float64 {
	den := float64(h.L2CacheBytes) * 8 * float64(h.Cores)
	if den == 0 {
		return 0
	}
	return float64(h.TotalBits()) / den
}

// String renders the cost table.
func (h HardwareCost) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %-5s %12s\n", "group", "field", "bits")
	for _, it := range h.Items() {
		fmt.Fprintf(&b, "%-9s %-5s %12d\n", it.Group, it.Field, it.Bits)
	}
	fmt.Fprintf(&b, "total %d bits (%.2f KB), %.3f%% of L2\n",
		h.TotalBits(), float64(h.TotalBits())/8/1024, h.FractionOfL2()*100)
	return b.String()
}
