package core

import (
	"testing"
	"testing/quick"
)

func TestAccuracyMetering(t *testing.T) {
	p := New(2, Config{EnableAPS: true, EnableAPD: true, EnableUrgency: true})
	// Optimistic before any measurement.
	if !p.PrefetchCritical(0) {
		t.Fatal("cold PAR should be optimistic")
	}
	for i := 0; i < 10; i++ {
		p.NotePrefetchSent(0)
	}
	for i := 0; i < 9; i++ {
		p.NotePrefetchUsed(0)
	}
	for i := 0; i < 10; i++ {
		p.NotePrefetchSent(1)
	}
	p.NotePrefetchUsed(1)
	p.EndInterval()
	if got := p.Accuracy(0); got != 0.9 {
		t.Fatalf("core 0 PAR=%v", got)
	}
	if got := p.Accuracy(1); got != 0.1 {
		t.Fatalf("core 1 PAR=%v", got)
	}
	if !p.PrefetchCritical(0) || p.PrefetchCritical(1) {
		t.Fatal("promotion threshold misapplied")
	}
}

func TestIntervalResetAndRetention(t *testing.T) {
	p := New(1, Config{EnableAPS: true})
	p.NotePrefetchSent(0)
	p.EndInterval()
	if p.Accuracy(0) != 0 {
		t.Fatalf("0 used / 1 sent should give PAR 0, got %v", p.Accuracy(0))
	}
	// An interval with no prefetches keeps the previous PAR.
	p.EndInterval()
	if p.Accuracy(0) != 0 {
		t.Fatal("idle interval should retain PAR")
	}
}

func TestPARClamped(t *testing.T) {
	p := New(1, Config{EnableAPS: true})
	p.NotePrefetchSent(0)
	// Cross-interval uses can push PUC above PSC; PAR must clamp at 1.
	p.NotePrefetchUsed(0)
	p.NotePrefetchUsed(0)
	p.NotePrefetchUsed(0)
	p.EndInterval()
	if p.Accuracy(0) != 1 {
		t.Fatalf("PAR should clamp to 1, got %v", p.Accuracy(0))
	}
}

func TestDropThresholdLadder(t *testing.T) {
	p := New(1, DefaultConfig())
	set := func(used, sent int) {
		for i := 0; i < sent; i++ {
			p.NotePrefetchSent(0)
		}
		for i := 0; i < used; i++ {
			p.NotePrefetchUsed(0)
		}
		p.EndInterval()
	}
	cases := []struct {
		used, sent int
		want       uint64
	}{
		{1, 100, 100},       // 1% -> 100 cycles
		{20, 100, 1_500},    // 20% -> 1,500
		{50, 100, 50_000},   // 50% -> 50,000
		{90, 100, 100_000},  // 90% -> 100,000
		{100, 100, 100_000}, // 100% stays at the top band
	}
	for _, c := range cases {
		set(c.used, c.sent)
		if got := p.DropThreshold(0); got != c.want {
			t.Errorf("acc %d%%: drop threshold %d, want %d", c.used, got, c.want)
		}
	}
}

func TestDisabledMechanisms(t *testing.T) {
	p := New(1, Config{EnableAPS: false, EnableAPD: false})
	if p.PrefetchCritical(0) {
		t.Fatal("APS disabled should never promote")
	}
	if p.DropThreshold(0) != ^uint64(0) {
		t.Fatal("APD disabled should never drop")
	}
	if p.UrgencyEnabled() {
		t.Fatal("urgency flag wrong")
	}
}

func TestHardwareCostMatchesPaper(t *testing.T) {
	// The paper's 4-core system: 8192 L2 lines per core, 128 buffer slots.
	h := HardwareCost{Cores: 4, CacheLines: 8192, BufferSlots: 128, L2CacheBytes: 512 << 10}
	if got := h.TotalBits(); got != 34720 {
		t.Fatalf("total bits %d, paper says 34,720", got)
	}
	if got := h.TotalBitsWithoutP(); got != 1824 {
		t.Fatalf("without P bits %d, paper says 1,824", got)
	}
	frac := h.FractionOfL2()
	if frac < 0.001 || frac > 0.003 {
		t.Fatalf("fraction of L2 %.4f, paper says ~0.2%%", frac)
	}
}

func TestHardwareCostMonotonic(t *testing.T) {
	f := func(cores8 uint8, lines uint16, slots uint8) bool {
		cores := int(cores8%8) + 1
		h := HardwareCost{Cores: cores, CacheLines: uint64(lines) + 1, BufferSlots: int(slots) + 1}
		bigger := h
		bigger.BufferSlots++
		return bigger.TotalBits() > h.TotalBits() && h.TotalBitsWithoutP() < h.TotalBits()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
