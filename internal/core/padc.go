// Package core implements the paper's primary contribution: the
// Prefetch-Aware DRAM Controller's adaptive machinery. It measures each
// core's prefetch accuracy over fixed intervals (§4.1), exposes the
// criticality/urgency predicates Adaptive Prefetch Scheduling needs
// (§4.2), selects the dynamic drop threshold Adaptive Prefetch Dropping
// uses (§4.3, Table 6), and models the hardware storage cost (§4.4,
// Tables 1–2). On a multi-tier topology the accuracy meters are kept per
// (memory domain, core): a core's prefetches into a far pooled tier are
// judged against that tier's own stream, so APS promotion and APD drop
// thresholds act on tier-local estimates.
package core

import (
	"fmt"

	"padc/internal/telemetry"
)

// Config holds the PADC knobs. Zero values fall back to the paper's
// evaluation settings: 85% promotion threshold, 100K-cycle accuracy
// interval, and the Table 6 drop-threshold ladder.
type Config struct {
	PromotionThreshold float64
	IntervalCycles     uint64
	DropLadder         []DropLevel

	// Mechanism toggles for ablations. In the full PADC all three are on;
	// APS alone is EnableAPD=false; the §6.3.4 no-urgency ablation clears
	// EnableUrgency.
	EnableAPS     bool
	EnableAPD     bool
	EnableUrgency bool
}

// DropLevel maps an accuracy band to an APD drop threshold.
type DropLevel struct {
	AccuracyBelow float64 // band upper bound (exclusive except the last)
	Cycles        uint64
}

// DefaultDropLadder returns Table 6: accuracy 0–10% drops at 100 cycles,
// 10–30% at 1 500, 30–70% at 50 000, 70–100% at 100 000.
func DefaultDropLadder() []DropLevel {
	return []DropLevel{
		{AccuracyBelow: 0.10, Cycles: 100},
		{AccuracyBelow: 0.30, Cycles: 1_500},
		{AccuracyBelow: 0.70, Cycles: 50_000},
		{AccuracyBelow: 1.01, Cycles: 100_000},
	}
}

// DefaultConfig returns the paper's full PADC configuration.
func DefaultConfig() Config {
	return Config{
		PromotionThreshold: 0.85,
		IntervalCycles:     100_000,
		DropLadder:         DefaultDropLadder(),
		EnableAPS:          true,
		EnableAPD:          true,
		EnableUrgency:      true,
	}
}

func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.PromotionThreshold == 0 {
		c.PromotionThreshold = def.PromotionThreshold
	}
	if c.IntervalCycles == 0 {
		c.IntervalCycles = def.IntervalCycles
	}
	if c.DropLadder == nil {
		c.DropLadder = def.DropLadder
	}
	return c
}

// coreMeter is one (domain, core) accuracy state: the PSC/PUC counters of
// the current interval and the PAR computed from the previous one.
type coreMeter struct {
	psc uint64 // Prefetch Sent Counter
	puc uint64 // Prefetch Used Counter
	par float64
	// everSent distinguishes "no prefetching yet" (treated as accurate,
	// so cold prefetchers are not penalized) from measured inaccuracy.
	everSent bool
}

// PADC is the adaptive controller state shared by APS and APD across all
// memory controllers in the system. meters is indexed [domain][core]; a
// flat machine has exactly one domain and behaves like the paper's
// single-tier controller. msMeters (one per domain, allocated lazily by
// the first NoteMemSideSent) judge the memory-side prefetch stream: the
// controllers generate those prefetches themselves, so their accuracy is
// a property of the tier's demand stream, not of any core.
type PADC struct {
	cfg      Config
	domains  []string // domain names; len 1 on a flat machine
	meters   [][]coreMeter
	msMeters []coreMeter // per-domain aggregate memory-side meters (nil until used)

	tel   *telemetry.Telemetry // nil unless Instrument was called
	clock func() uint64        // current cycle, for event timestamps
}

// New builds single-domain (flat) PADC state for ncores cores.
func New(ncores int, cfg Config) *PADC { return NewTiered(nil, ncores, cfg) }

// NewTiered builds PADC state with one accuracy meter per (domain, core).
// A nil or empty domains slice means one unnamed flat domain.
func NewTiered(domains []string, ncores int, cfg Config) *PADC {
	if len(domains) == 0 {
		domains = []string{""}
	}
	p := &PADC{
		cfg:     cfg.withDefaults(),
		domains: append([]string(nil), domains...),
		meters:  make([][]coreMeter, len(domains)),
	}
	for d := range p.meters {
		p.meters[d] = make([]coreMeter, ncores)
		for i := range p.meters[d] {
			p.meters[d][i].par = 1 // optimistic until the first interval elapses
		}
	}
	return p
}

// TrackMemSide arms the per-domain memory-side accuracy meters. Call
// before Instrument when the memory-side prefetch path is enabled; left
// unarmed, the memside meters cost nothing and register no gauges, so a
// memside-off machine's telemetry stays byte-identical.
func (p *PADC) TrackMemSide() {
	if p.msMeters != nil {
		return
	}
	p.msMeters = make([]coreMeter, len(p.meters))
	for d := range p.msMeters {
		p.msMeters[d].par = 1 // optimistic until the first interval elapses
	}
}

// MemSideTracked reports whether TrackMemSide was called.
func (p *PADC) MemSideTracked() bool { return p.msMeters != nil }

// Config returns the effective configuration after defaulting.
func (p *PADC) Config() Config { return p.cfg }

// Domains returns the number of memory domains metered.
func (p *PADC) Domains() int { return len(p.meters) }

// Instrument registers each (domain, core) accuracy estimate as a gauge —
// "core<i>/acc_estimate" on a flat machine, "<domain>/core<i>/acc_estimate"
// per tier otherwise — and arms promotion-flip events: whenever an
// interval rollover moves a meter's PAR across the APS promotion
// threshold, an EvPromotion event is emitted at clock()'s cycle. A nil
// tel is a no-op.
func (p *PADC) Instrument(tel *telemetry.Telemetry, clock func() uint64) {
	if tel == nil {
		return
	}
	p.tel, p.clock = tel, clock
	for d := range p.meters {
		pre := ""
		if len(p.meters) > 1 {
			pre = p.domains[d] + "/"
		}
		for i := range p.meters[d] {
			m := &p.meters[d][i]
			tel.GaugeFunc(fmt.Sprintf("%score%d/acc_estimate", pre, i), func() float64 { return m.par })
		}
		if p.msMeters != nil {
			m := &p.msMeters[d]
			tel.GaugeFunc(pre+"memside/acc_estimate", func() float64 { return m.par })
		}
	}
}

// NoteMemSideSent increments the domain's memory-side PSC: the domain's
// controller admitted one of its own prefetches into the request buffer.
func (p *PADC) NoteMemSideSent(domain int) {
	m := &p.msMeters[domain]
	m.psc++
	m.everSent = true
}

// NoteMemSideUsed increments the domain's memory-side PUC: a demand hit
// a line a memory-side prefetch filled.
func (p *PADC) NoteMemSideUsed(domain int) { p.msMeters[domain].puc++ }

// MemSideAccuracyIn returns the domain's memory-side PAR from the last
// completed interval (1 until the path sends anything).
func (p *PADC) MemSideAccuracyIn(domain int) float64 { return p.msMeters[domain].par }

// MemSideDropThresholdIn returns the APD age limit for the domain's
// memory-side prefetches: the same Table 6 ladder the core-side streams
// use, driven by the tier's aggregate memory-side accuracy. ^uint64(0)
// when APD is off.
func (p *PADC) MemSideDropThresholdIn(domain int) uint64 {
	if !p.cfg.EnableAPD {
		return ^uint64(0)
	}
	return p.ladder(p.msMeters[domain].par)
}

// MemSideAllowIn reports whether the domain's memory-side path should
// keep generating candidates: its measured accuracy is not pinned in the
// ladder's bottom band. This is the generation-side gate; buffered
// prefetches additionally age against MemSideDropThresholdIn.
func (p *PADC) MemSideAllowIn(domain int) bool {
	if !p.cfg.EnableAPD {
		return true
	}
	return p.msMeters[domain].par >= p.cfg.DropLadder[0].AccuracyBelow
}

// NoteSent increments the (domain, core) PSC: a prefetch targeting that
// domain entered the memory request buffer.
func (p *PADC) NoteSent(domain, core int) {
	m := &p.meters[domain][core]
	m.psc++
	m.everSent = true
}

// NoteUsed increments the (domain, core) PUC: a prefetched line from that
// domain was hit by a demand, or a demand matched an in-buffer prefetch.
func (p *PADC) NoteUsed(domain, core int) { p.meters[domain][core].puc++ }

// NotePrefetchSent is the flat-machine spelling of NoteSent (domain 0).
func (p *PADC) NotePrefetchSent(core int) { p.NoteSent(0, core) }

// NotePrefetchUsed is the flat-machine spelling of NoteUsed (domain 0).
func (p *PADC) NotePrefetchUsed(core int) { p.NoteUsed(0, core) }

// EndInterval recomputes every meter's PAR from the interval's counters
// and resets them (§4.1). Meters that sent nothing keep their previous
// PAR. Promotion-flip events carry the domain index in Chan on tiered
// machines and the historical -1 on flat ones.
func (p *PADC) EndInterval() {
	tiered := len(p.meters) > 1
	for d := range p.meters {
		for i := range p.meters[d] {
			m := &p.meters[d][i]
			wasCritical := m.par >= p.cfg.PromotionThreshold
			if m.psc > 0 {
				m.par = float64(m.puc) / float64(m.psc)
				// PUC can briefly exceed PSC across interval boundaries (a
				// prefetch sent late in one interval is used in the next);
				// clamp like the paper's saturating PAR register would.
				if m.par > 1 {
					m.par = 1
				}
			}
			m.psc, m.puc = 0, 0
			if p.tel != nil {
				if nowCritical := m.par >= p.cfg.PromotionThreshold; nowCritical != wasCritical {
					promoted := uint64(0)
					if nowCritical {
						promoted = 1
					}
					ch := int16(-1)
					if tiered {
						ch = int16(d)
					}
					p.tel.Emit(telemetry.Event{
						Cycle: p.clock(), Kind: telemetry.EvPromotion,
						Core: int16(i), Chan: ch, Bank: int16(promoted),
						A: uint64(m.par * 1e6), // new PAR in ppm
					})
				}
			}
		}
	}
	// The per-domain memory-side meters roll over on the same interval.
	for d := range p.msMeters {
		m := &p.msMeters[d]
		if m.psc > 0 {
			m.par = float64(m.puc) / float64(m.psc)
			if m.par > 1 {
				m.par = 1
			}
		}
		m.psc, m.puc = 0, 0
	}
}

// AccuracyIn returns the (domain, core) PAR from the last completed
// interval.
func (p *PADC) AccuracyIn(domain, core int) float64 { return p.meters[domain][core].par }

// Accuracy returns the core's domain-0 PAR (the flat-machine estimate).
func (p *PADC) Accuracy(core int) float64 { return p.AccuracyIn(0, core) }

// PrefetchCriticalIn reports whether the core's prefetches into the
// domain are critical: measured tier-local accuracy meets the promotion
// threshold.
func (p *PADC) PrefetchCriticalIn(domain, core int) bool {
	if !p.cfg.EnableAPS {
		return false
	}
	return p.meters[domain][core].par >= p.cfg.PromotionThreshold
}

// PrefetchCritical implements memctrl.CoreState against domain 0.
func (p *PADC) PrefetchCritical(core int) bool { return p.PrefetchCriticalIn(0, core) }

// UrgencyEnabled implements memctrl.CoreState.
func (p *PADC) UrgencyEnabled() bool { return p.cfg.EnableUrgency }

// DropThresholdIn returns the APD age limit for the core's prefetches in
// the domain under its tier-local measured accuracy. It returns
// ^uint64(0) when APD is off.
func (p *PADC) DropThresholdIn(domain, core int) uint64 {
	if !p.cfg.EnableAPD {
		return ^uint64(0)
	}
	return p.ladder(p.meters[domain][core].par)
}

// ladder maps a measured accuracy onto the Table 6 drop threshold.
func (p *PADC) ladder(par float64) uint64 {
	for _, l := range p.cfg.DropLadder {
		if par < l.AccuracyBelow {
			return l.Cycles
		}
	}
	return p.cfg.DropLadder[len(p.cfg.DropLadder)-1].Cycles
}

// DropThreshold returns the domain-0 APD age limit (flat machines).
func (p *PADC) DropThreshold(core int) uint64 { return p.DropThresholdIn(0, core) }

// TierView is one domain's slice of the PADC: it satisfies
// memctrl.CoreState so each controller consults its own tier's accuracy
// estimates for APS criticality.
type TierView struct {
	p *PADC
	d int
}

// DomainView returns the CoreState view bound to domain d.
func (p *PADC) DomainView(d int) *TierView { return &TierView{p: p, d: d} }

// PrefetchCritical implements memctrl.CoreState for the bound domain.
func (v *TierView) PrefetchCritical(core int) bool { return v.p.PrefetchCriticalIn(v.d, core) }

// UrgencyEnabled implements memctrl.CoreState.
func (v *TierView) UrgencyEnabled() bool { return v.p.UrgencyEnabled() }

// IntervalCycles returns the accuracy sampling interval.
func (p *PADC) IntervalCycles() uint64 { return p.cfg.IntervalCycles }

// String summarizes current per-core accuracy, for debugging output.
func (p *PADC) String() string {
	s := "PADC["
	for d := range p.meters {
		for i := range p.meters[d] {
			if d > 0 || i > 0 {
				s += " "
			}
			if len(p.meters) > 1 {
				s += fmt.Sprintf("%s/", p.domains[d])
			}
			s += fmt.Sprintf("c%d:%.0f%%", i, p.meters[d][i].par*100)
		}
	}
	return s + "]"
}
