// Package core implements the paper's primary contribution: the
// Prefetch-Aware DRAM Controller's adaptive machinery. It measures each
// core's prefetch accuracy over fixed intervals (§4.1), exposes the
// criticality/urgency predicates Adaptive Prefetch Scheduling needs
// (§4.2), selects the dynamic drop threshold Adaptive Prefetch Dropping
// uses (§4.3, Table 6), and models the hardware storage cost (§4.4,
// Tables 1–2).
package core

import (
	"fmt"

	"padc/internal/telemetry"
)

// Config holds the PADC knobs. Zero values fall back to the paper's
// evaluation settings: 85% promotion threshold, 100K-cycle accuracy
// interval, and the Table 6 drop-threshold ladder.
type Config struct {
	PromotionThreshold float64
	IntervalCycles     uint64
	DropLadder         []DropLevel

	// Mechanism toggles for ablations. In the full PADC all three are on;
	// APS alone is EnableAPD=false; the §6.3.4 no-urgency ablation clears
	// EnableUrgency.
	EnableAPS     bool
	EnableAPD     bool
	EnableUrgency bool
}

// DropLevel maps an accuracy band to an APD drop threshold.
type DropLevel struct {
	AccuracyBelow float64 // band upper bound (exclusive except the last)
	Cycles        uint64
}

// DefaultDropLadder returns Table 6: accuracy 0–10% drops at 100 cycles,
// 10–30% at 1 500, 30–70% at 50 000, 70–100% at 100 000.
func DefaultDropLadder() []DropLevel {
	return []DropLevel{
		{AccuracyBelow: 0.10, Cycles: 100},
		{AccuracyBelow: 0.30, Cycles: 1_500},
		{AccuracyBelow: 0.70, Cycles: 50_000},
		{AccuracyBelow: 1.01, Cycles: 100_000},
	}
}

// DefaultConfig returns the paper's full PADC configuration.
func DefaultConfig() Config {
	return Config{
		PromotionThreshold: 0.85,
		IntervalCycles:     100_000,
		DropLadder:         DefaultDropLadder(),
		EnableAPS:          true,
		EnableAPD:          true,
		EnableUrgency:      true,
	}
}

func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.PromotionThreshold == 0 {
		c.PromotionThreshold = def.PromotionThreshold
	}
	if c.IntervalCycles == 0 {
		c.IntervalCycles = def.IntervalCycles
	}
	if c.DropLadder == nil {
		c.DropLadder = def.DropLadder
	}
	return c
}

// coreMeter is one core's accuracy state: the PSC/PUC counters of the
// current interval and the PAR computed from the previous one.
type coreMeter struct {
	psc uint64 // Prefetch Sent Counter
	puc uint64 // Prefetch Used Counter
	par float64
	// everSent distinguishes "no prefetching yet" (treated as accurate,
	// so cold prefetchers are not penalized) from measured inaccuracy.
	everSent bool
}

// PADC is the adaptive controller state shared by APS and APD across all
// memory controllers in the system.
type PADC struct {
	cfg    Config
	meters []coreMeter

	tel   *telemetry.Telemetry // nil unless Instrument was called
	clock func() uint64        // current cycle, for event timestamps
}

// New builds PADC state for ncores cores.
func New(ncores int, cfg Config) *PADC {
	p := &PADC{cfg: cfg.withDefaults(), meters: make([]coreMeter, ncores)}
	for i := range p.meters {
		p.meters[i].par = 1 // optimistic until the first interval elapses
	}
	return p
}

// Config returns the effective configuration after defaulting.
func (p *PADC) Config() Config { return p.cfg }

// Instrument registers each core's accuracy estimate as a
// "core<i>/acc_estimate" gauge and arms promotion-flip events: whenever an
// interval rollover moves a core's PAR across the APS promotion threshold,
// an EvPromotion event is emitted at clock()'s cycle. A nil tel is a
// no-op.
func (p *PADC) Instrument(tel *telemetry.Telemetry, clock func() uint64) {
	if tel == nil {
		return
	}
	p.tel, p.clock = tel, clock
	for i := range p.meters {
		m := &p.meters[i]
		tel.GaugeFunc(fmt.Sprintf("core%d/acc_estimate", i), func() float64 { return m.par })
	}
}

// NotePrefetchSent increments the core's PSC (a prefetch entered the
// memory request buffer).
func (p *PADC) NotePrefetchSent(core int) {
	p.meters[core].psc++
	p.meters[core].everSent = true
}

// NotePrefetchUsed increments the core's PUC (a prefetched line was hit by
// a demand, or a demand matched an in-buffer prefetch).
func (p *PADC) NotePrefetchUsed(core int) { p.meters[core].puc++ }

// EndInterval recomputes each core's PAR from the interval's counters and
// resets them (§4.1). Cores that sent nothing keep their previous PAR.
func (p *PADC) EndInterval() {
	for i := range p.meters {
		m := &p.meters[i]
		wasCritical := m.par >= p.cfg.PromotionThreshold
		if m.psc > 0 {
			m.par = float64(m.puc) / float64(m.psc)
			// PUC can briefly exceed PSC across interval boundaries (a
			// prefetch sent late in one interval is used in the next);
			// clamp like the paper's saturating PAR register would.
			if m.par > 1 {
				m.par = 1
			}
		}
		m.psc, m.puc = 0, 0
		if p.tel != nil {
			if nowCritical := m.par >= p.cfg.PromotionThreshold; nowCritical != wasCritical {
				promoted := uint64(0)
				if nowCritical {
					promoted = 1
				}
				p.tel.Emit(telemetry.Event{
					Cycle: p.clock(), Kind: telemetry.EvPromotion,
					Core: int16(i), Chan: -1, Bank: int16(promoted),
					A: uint64(m.par * 1e6), // new PAR in ppm
				})
			}
		}
	}
}

// Accuracy returns the core's PAR from the last completed interval.
func (p *PADC) Accuracy(core int) float64 { return p.meters[core].par }

// PrefetchCritical implements memctrl.CoreState: a core's prefetches are
// critical when its measured accuracy meets the promotion threshold.
func (p *PADC) PrefetchCritical(core int) bool {
	if !p.cfg.EnableAPS {
		return false
	}
	return p.meters[core].par >= p.cfg.PromotionThreshold
}

// UrgencyEnabled implements memctrl.CoreState.
func (p *PADC) UrgencyEnabled() bool { return p.cfg.EnableUrgency }

// DropThreshold returns the APD age limit for the core's prefetches under
// its current measured accuracy. It returns ^uint64(0) when APD is off.
func (p *PADC) DropThreshold(core int) uint64 {
	if !p.cfg.EnableAPD {
		return ^uint64(0)
	}
	par := p.meters[core].par
	for _, l := range p.cfg.DropLadder {
		if par < l.AccuracyBelow {
			return l.Cycles
		}
	}
	return p.cfg.DropLadder[len(p.cfg.DropLadder)-1].Cycles
}

// IntervalCycles returns the accuracy sampling interval.
func (p *PADC) IntervalCycles() uint64 { return p.cfg.IntervalCycles }

// String summarizes current per-core accuracy, for debugging output.
func (p *PADC) String() string {
	s := "PADC["
	for i := range p.meters {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("c%d:%.0f%%", i, p.meters[i].par*100)
	}
	return s + "]"
}
