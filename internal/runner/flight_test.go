package runner

import (
	"bytes"
	"encoding/json"
	"testing"
)

// flightSpec is a small grid that exercises refresh and the adaptive
// page policy, so the recorded summaries carry every cell field.
func flightSpec() Spec {
	return Spec{
		Name:      "flight",
		Seed:      9,
		Cores:     2,
		Insts:     6_000,
		Policies:  []string{"demand-first", "padc"},
		Workloads: [][]string{{"swim", "libquantum"}},
		Mixes:     2,
	}
}

// TestFlightSummaryWorkerInvariance pins the telemetry determinism
// contract: the per-job flight summary is a pure function of the job's
// configuration, so its serialized form is byte-identical across worker
// counts — which is what makes sidecar-derived heatmap artifacts safe to
// merge from a sharded fleet.
func TestFlightSummaryWorkerInvariance(t *testing.T) {
	opts := Options{Flight: FlightOptions{Enabled: true}}
	opts.Workers = 1
	serial, err := Run(flightSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	parallel, err := Run(flightSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Jobs) == 0 || len(serial.Jobs) != len(parallel.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(serial.Jobs), len(parallel.Jobs))
	}
	for i := range serial.Jobs {
		sj, pj := serial.Jobs[i], parallel.Jobs[i]
		if sj.Flight == nil || pj.Flight == nil {
			t.Fatalf("job %s missing flight summary (serial %v, parallel %v)",
				sj.Key, sj.Flight != nil, pj.Flight != nil)
		}
		sb, err := json.Marshal(sj.Flight)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := json.Marshal(pj.Flight)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb, pb) {
			t.Fatalf("job %s flight summary differs across worker counts:\n1 worker: %s\n4 workers: %s",
				sj.Key, sb, pb)
		}
		if len(sj.Flight.Totals) == 0 {
			t.Fatalf("job %s flight summary has no totals", sj.Key)
		}
		var hits uint64
		for _, c := range sj.Flight.Totals {
			hits += c.Hits + c.Closed + c.Conflicts
		}
		if hits == 0 {
			t.Fatalf("job %s flight summary recorded no bank accesses", sj.Key)
		}
	}
}

// TestFlightOffKeepsArtifactsIdentical is the feature-off guard: a sweep
// without FlightOptions records nothing, and the CSV/JSON artifacts stay
// byte-identical whether the flight recorder ran or not (the CSV has
// fixed columns; the JSON omits the flight field entirely when absent).
func TestFlightOffKeepsArtifactsIdentical(t *testing.T) {
	plain, err := Run(flightSpec(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range plain.Jobs {
		if j.Flight != nil {
			t.Fatalf("job %s carries a flight summary without FlightOptions.Enabled", j.Key)
		}
	}
	plainCSV, plainJSON := artifacts(t, plain)

	recorded, err := Run(flightSpec(), Options{Workers: 2, Flight: FlightOptions{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	recCSV, _ := artifacts(t, recorded)
	if recCSV != plainCSV {
		t.Fatal("enabling the flight recorder changed the CSV artifact")
	}
	// Stripping the summaries must recover the exact plain JSON: the
	// recorder may not perturb any metric column.
	for i := range recorded.Jobs {
		recorded.Jobs[i].Flight = nil
	}
	strippedCSV, strippedJSON := artifacts(t, recorded)
	if strippedCSV != plainCSV || strippedJSON != plainJSON {
		t.Fatal("flight recorder perturbed the metric columns")
	}
}
