package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"padc/internal/sim"
	"padc/internal/stats"
	"padc/internal/telemetry/flight"
	"padc/internal/telemetry/lifecycle"
)

// defaultWorkers is the process-wide pool size used when Options.Workers
// is unset; 0 means GOMAXPROCS. The padcsim -jobs flag sets it once at
// startup, but it is atomic so tests can flip it safely.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the pool size Parallel and Run fall back to when
// no explicit worker count is given; n <= 0 restores GOMAXPROCS.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers returns the current fallback pool size.
func DefaultWorkers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Parallel runs jobs 0..n-1 on the default worker pool. It is the
// low-level fan-out primitive the experiment runners use; unlike Run it
// does not recover panics (experiment configs are statically correct, so
// a panic there is a programming error that should fail loudly).
func Parallel(n int, job func(i int)) {
	workers := DefaultWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Progress observes sweep execution: done jobs so far (including failed),
// the total, and the job that just finished. Called from worker
// goroutines under a lock, so implementations need no synchronization.
type Progress func(done, total int, r JobResult)

// Shard selects a 1-of-Count slice of the expanded grid by the stable
// grid index, so cooperating processes can split one spec without
// coordination: shard s owns exactly the jobs with Index % Count == s.
// The union of all Count shards is the full grid with no overlap, which
// is what makes the merged union byte-identical to an unsharded run.
type Shard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// Enabled reports whether the shard actually restricts the grid
// (Count <= 1 means the whole grid).
func (s Shard) Enabled() bool { return s.Count > 1 }

// Owns reports whether this shard executes the job at the given stable
// grid index.
func (s Shard) Owns(index int) bool {
	return !s.Enabled() || index%s.Count == s.Index
}

// Validate reports malformed shard coordinates.
func (s Shard) Validate() error {
	if s.Count < 0 || s.Index < 0 {
		return fmt.Errorf("runner: negative shard coordinates %d/%d", s.Index, s.Count)
	}
	if s.Count > 0 && s.Index >= s.Count {
		return fmt.Errorf("runner: shard index %d out of range for %d shards", s.Index, s.Count)
	}
	return nil
}

// String renders "i/n" ("all" when unsharded) for logs and journals.
func (s Shard) String() string {
	if !s.Enabled() {
		return "all"
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// Options tunes one Run call.
type Options struct {
	// Workers bounds the pool; <= 0 uses DefaultWorkers().
	Workers int
	// Verify runs the invariant checks (profiler attribution identity,
	// prefetch conservation, span-latency decomposition) on every job and
	// records violations in JobResult.Err.
	Verify bool
	// Progress, when non-nil, is called after each job completes.
	Progress Progress
	// Shard restricts execution to the jobs this shard owns (by stable
	// grid index). The merged result then contains only those rows; union
	// the shards' rows with MergeRows to reassemble the full artifact.
	Shard Shard
	// Reuse, when non-nil, is consulted before a job executes. Returning
	// (row, true) records the row without re-running the simulation — the
	// resume hook the sweep service's journal recovery uses. A reused row
	// still counts toward Progress's done total.
	Reuse func(Job) (JobResult, bool)
	// Start, when non-nil, is called (under the same lock as Progress)
	// just before a job actually executes; reused jobs never trigger it.
	// It is the queued→running transition hook for live metrics.
	Start func(Job)
	// Flight, when enabled, attaches a bank-state flight recorder to every
	// executed job and stores its summary on the row (JobResult.Flight).
	Flight FlightOptions
}

// FlightOptions configures the optional per-job flight recorder (see
// internal/telemetry/flight). The summary is a deterministic function of
// the job's configuration, so enabling it never perturbs the metric
// columns and the recorded roll-up is identical across worker counts.
type FlightOptions struct {
	// Enabled turns the recorder on; the zero value keeps jobs untouched.
	Enabled bool
	// EpochCycles overrides the rotation period; 0 uses the flight default.
	EpochCycles uint64
	// MaxEpochs overrides the retained-ring bound; 0 uses the flight default.
	MaxEpochs int
}

// JobResult is one job's merged row. Every field except the unexported
// wall-clock measurement is a deterministic function of the job's
// configuration, so the exported artifacts are byte-identical across
// worker counts.
type JobResult struct {
	Index      int      `json:"index"`
	Key        string   `json:"key"`
	Seed       uint64   `json:"seed"`
	Policy     string   `json:"policy"`
	Prefetcher string   `json:"prefetcher"`
	Promotion  float64  `json:"promotion,omitempty"`
	Drop       uint64   `json:"drop,omitempty"`
	Refresh    string   `json:"refresh,omitempty"`  // "" = off
	Page       string   `json:"page,omitempty"`     // "" = open
	Topology   string   `json:"topology,omitempty"` // "" = flat
	MemSide    string   `json:"memside,omitempty"`  // "" = off
	Mix        string   `json:"mix"`
	Workloads  []string `json:"workloads"`

	// Err is non-empty when the job failed (simulator error, invariant
	// violation, or recovered panic); the metric fields are then zero.
	Err string `json:"err,omitempty"`

	Cycles     uint64    `json:"cycles"`
	IPC        []float64 `json:"ipc"` // per core
	Throughput float64   `json:"throughput"`
	WS         float64   `json:"-"` // reserved: needs alone baselines

	BusDemand  uint64  `json:"bus_demand"`
	BusUseful  uint64  `json:"bus_useful"`
	BusUseless uint64  `json:"bus_useless"`
	Serviced   uint64  `json:"serviced"`
	RowHitRate float64 `json:"row_hit_rate"`
	RBHU       float64 `json:"rbhu"`

	PrefSent    uint64 `json:"pref_sent"`
	PrefUsed    uint64 `json:"pref_used"`
	PrefDropped uint64 `json:"pref_dropped"`

	// Telemetry is the per-job roll-up of headline simulator aggregates
	// beyond the fixed columns (buffer rejects, per-core MPKI/accuracy…),
	// keyed by metric name so new metrics extend the JSON without schema
	// churn.
	Telemetry map[string]float64 `json:"telemetry,omitempty"`

	// Flight is the bank-state flight-recorder roll-up (per-epoch ×
	// per-bank row outcomes, transitions, rule-win attribution), present
	// only when Options.Flight.Enabled — absent, artifacts stay
	// byte-identical to their pre-flight form.
	Flight *flight.Summary `json:"flight,omitempty"`

	wall time.Duration // measured latency; never serialized
}

// RunStats reports the sweep's wall-clock behavior. It is intentionally
// not part of the deterministic artifacts.
type RunStats struct {
	Workers int
	Jobs    int
	Failed  int
	Wall    time.Duration
	JobMin  time.Duration
	JobMax  time.Duration
	JobMean time.Duration
	// JobTotal sums the per-job latencies. On an unloaded machine with
	// enough cores it approximates serial execution time; when workers
	// outnumber cores the interleaving inflates individual latencies, so
	// read it as an upper bound on the serialized cost.
	JobTotal time.Duration
}

// String renders the one-line wall-clock summary the CLI prints.
func (s RunStats) String() string {
	return fmt.Sprintf("%d jobs (%d failed) on %d workers in %v; job latency min/mean/max %v/%v/%v, summed %v",
		s.Jobs, s.Failed, s.Workers, s.Wall.Round(time.Millisecond),
		s.JobMin.Round(time.Millisecond), s.JobMean.Round(time.Millisecond),
		s.JobMax.Round(time.Millisecond), s.JobTotal.Round(time.Millisecond))
}

// SweepResult is the merged outcome of one sweep.
type SweepResult struct {
	Spec Spec        `json:"spec"`
	Jobs []JobResult `json:"jobs"` // sorted by Key (ties by Index)
	// Stats is execution telemetry, excluded from the deterministic
	// CSV/JSON artifacts.
	Stats RunStats `json:"-"`
}

// Run expands the spec and executes every job on a bounded worker pool.
// A job that panics (or fails an invariant check with Options.Verify) is
// recorded as a failed row rather than killing the sweep. The returned
// jobs are merged in job-key order; the error is non-nil only for spec
// errors, never for individual job failures.
func Run(spec Spec, opts Options) (*SweepResult, error) {
	return RunContext(context.Background(), spec, opts)
}

// RunContext is Run with cancellation: when ctx is cancelled the pool
// stops picking up new jobs, in-flight jobs finish, and the call returns
// the merged partial result (only rows that actually completed) together
// with ctx's error. A nil result is returned only for spec or shard
// errors.
func RunContext(ctx context.Context, spec Spec, opts Options) (*SweepResult, error) {
	all, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	if err := opts.Shard.Validate(); err != nil {
		return nil, err
	}
	jobs := all
	if opts.Shard.Enabled() {
		jobs = make([]Job, 0, len(all)/opts.Shard.Count+1)
		for _, j := range all {
			if opts.Shard.Owns(j.Index) {
				jobs = append(jobs, j)
			}
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]JobResult, len(jobs))
	ran := make([]bool, len(jobs))
	start := time.Now()

	var mu sync.Mutex // guards done counter + Start/Progress callbacks
	done := 0
	runIdx := func(i int) {
		if ctx.Err() != nil {
			return
		}
		var r JobResult
		reused := false
		if opts.Reuse != nil {
			r, reused = opts.Reuse(jobs[i])
		}
		if !reused {
			if opts.Start != nil {
				mu.Lock()
				opts.Start(jobs[i])
				mu.Unlock()
			}
			r = runJob(jobs[i], opts.Verify, opts.Flight)
		}
		results[i] = r
		ran[i] = true
		mu.Lock()
		done++
		if opts.Progress != nil {
			opts.Progress(done, len(jobs), r)
		}
		mu.Unlock()
	}

	if workers == 1 {
		for i := range jobs {
			if ctx.Err() != nil {
				break
			}
			runIdx(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					runIdx(i)
				}
			}()
		}
	dispatch:
		for i := range jobs {
			select {
			case next <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(next)
		wg.Wait()
	}

	rows := results
	if err := ctx.Err(); err != nil {
		rows = rows[:0]
		for i, ok := range ran {
			if ok {
				rows = append(rows, results[i])
			}
		}
	}
	res := &SweepResult{Spec: spec, Jobs: rows}
	res.merge()
	res.Stats = gatherStats(rows, workers, time.Since(start))
	return res, ctx.Err()
}

// MergeRows assembles a merged SweepResult from externally collected rows
// — journal recovery, shard union — applying the same key-sort contract
// as Run, so reassembled artifacts are byte-identical to a single-process
// sweep of the same spec.
func MergeRows(spec Spec, rows []JobResult) *SweepResult {
	res := &SweepResult{Spec: spec, Jobs: append([]JobResult(nil), rows...)}
	res.merge()
	return res
}

// merge orders the job rows by their stable key (ties by index), the
// contract that makes the exported artifacts independent of completion
// order.
func (r *SweepResult) merge() {
	sort.Slice(r.Jobs, func(i, j int) bool {
		if r.Jobs[i].Key != r.Jobs[j].Key {
			return r.Jobs[i].Key < r.Jobs[j].Key
		}
		return r.Jobs[i].Index < r.Jobs[j].Index
	})
}

// Failed returns how many jobs carry an error.
func (r *SweepResult) Failed() int {
	n := 0
	for _, j := range r.Jobs {
		if j.Err != "" {
			n++
		}
	}
	return n
}

func gatherStats(results []JobResult, workers int, wall time.Duration) RunStats {
	st := RunStats{Workers: workers, Jobs: len(results), Wall: wall}
	for _, r := range results {
		if r.Err != "" {
			st.Failed++
		}
		st.JobTotal += r.wall
		if st.JobMin == 0 || r.wall < st.JobMin {
			st.JobMin = r.wall
		}
		if r.wall > st.JobMax {
			st.JobMax = r.wall
		}
	}
	if len(results) > 0 {
		st.JobMean = st.JobTotal / time.Duration(len(results))
	}
	return st
}

// runJob executes one job, converting panics and invariant violations
// into a failed-row result.
func runJob(j Job, verify bool, fo FlightOptions) (out JobResult) {
	out = JobResult{
		Index: j.Index, Key: j.Key, Seed: j.Seed,
		Policy: j.Policy, Prefetcher: j.Prefetcher,
		Promotion: j.Promotion, Drop: j.Drop,
		Refresh: j.Refresh, Page: j.Page, Topology: j.Topology,
		MemSide: j.MemSide, Mix: j.Mix, Workloads: j.Workloads,
	}
	start := time.Now()
	defer func() {
		out.wall = time.Since(start)
		if p := recover(); p != nil {
			out.Err = fmt.Sprintf("panic: %v\n%s", p, debug.Stack())
		}
	}()

	cfg := j.Config
	var lc *lifecycle.Tracer
	if verify {
		cfg.Profile = true
		lc = lifecycle.New(lifecycle.Options{})
		cfg.Lifecycle = lc
	}
	var rec *flight.Recorder
	if fo.Enabled {
		rec = flight.New(flight.Options{EpochCycles: fo.EpochCycles, MaxEpochs: fo.MaxEpochs})
		cfg.Flight = rec
	}
	res, err := sim.Run(cfg)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	if verify {
		if errs := VerifyResults(res, lc.Spans()); len(errs) > 0 {
			out.Err = "invariant violation: " + errs[0].Error()
			return out
		}
	}
	if rec != nil {
		out.Flight = rec.Summary()
	}
	out.fill(res)
	return out
}

// fill lowers a simulation outcome into the row's metric fields.
func (r *JobResult) fill(res stats.Results) {
	r.Cycles = res.Cycles
	r.BusDemand = res.Bus.Demand
	r.BusUseful = res.Bus.UsefulPref
	r.BusUseless = res.Bus.UselessPref
	r.Serviced = res.Serviced
	r.RowHitRate = res.RBH()
	r.RBHU = res.RBHU()
	tel := map[string]float64{
		"buffer_rejects": float64(res.BufferRejects),
		"useful_rowhits": float64(res.UsefulRowHits),
	}
	// Refresh counters appear only when the maintenance engine ran, so
	// refresh-off artifacts stay byte-identical to their pre-refresh form.
	if rf := res.Refresh; rf.Issued > 0 || rf.Postponed > 0 {
		tel["refreshes_issued"] = float64(rf.Issued)
		tel["refreshes_postponed"] = float64(rf.Postponed)
		tel["refreshes_pulled_in"] = float64(rf.PulledIn)
		tel["refreshes_forced"] = float64(rf.Forced)
		tel["refresh_blocked_cycles"] = float64(rf.BlockedCycles)
	}
	for i, c := range res.PerCore {
		ipc := c.IPC()
		r.IPC = append(r.IPC, ipc)
		r.Throughput += ipc
		r.PrefSent += c.PrefSent
		r.PrefUsed += c.PrefUsed
		r.PrefDropped += c.PrefDropped
		pre := fmt.Sprintf("core%d/", i)
		tel[pre+"mpki"] = c.MPKI()
		tel[pre+"spl"] = c.SPL()
		tel[pre+"acc"] = c.ACC()
		tel[pre+"cov"] = c.COV()
	}
	// Memory-side and DSPatch counters appear only when those features ran,
	// so artifacts from sweeps that never enable them stay byte-identical.
	if ms := res.MemSide; ms != nil {
		tel["memside/generated"] = float64(ms.Generated)
		tel["memside/issued"] = float64(ms.Issued)
		tel["memside/serviced"] = float64(ms.Serviced)
		tel["memside/used"] = float64(ms.Used)
		tel["memside/dropped_pressure"] = float64(ms.DroppedPressure)
		tel["memside/dropped_apd"] = float64(ms.Dropped)
		tel["memside/acc"] = ms.ACC()
	}
	if ds := res.DSPatch; ds != nil {
		tel["dspatch/issued"] = float64(ds.Issued)
		tel["dspatch/covp_triggers"] = float64(ds.CovPSelected)
		tel["dspatch/accp_triggers"] = float64(ds.AccPSelected)
		tel["dspatch/headroom"] = ds.Headroom
	}
	// Per-domain counters appear only on multi-tier topologies, so flat
	// artifacts stay byte-identical to their pre-topology form.
	for _, d := range res.Domains {
		pre := "dom/" + d.Name + "/"
		tel[pre+"serviced"] = float64(d.Serviced)
		tel[pre+"row_hit_rate"] = d.RBH()
		tel[pre+"bus_busy_cycles"] = float64(d.BusBusyCycles)
		tel[pre+"refresh_blocked"] = float64(d.RefreshBlocked)
		tel[pre+"pref_sent"] = float64(d.PrefSent)
		tel[pre+"pref_used"] = float64(d.PrefUsed)
		tel[pre+"acc"] = d.ACC()
	}
	r.Telemetry = tel
}
