package runner

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// testSpec returns a ≥16-job sweep small enough for test latency: 4
// policies × 1 prefetcher × (1 explicit + 3 random) mixes = 16 jobs.
func testSpec() Spec {
	return Spec{
		Name:      "determinism",
		Seed:      7,
		Cores:     2,
		Insts:     8_000,
		Policies:  []string{"demand-first", "equal", "aps", "padc"},
		Workloads: [][]string{{"swim", "art"}},
		Mixes:     3,
	}
}

// artifacts renders the deterministic exports of one run.
func artifacts(t *testing.T, res *SweepResult) (csv, js string) {
	t.Helper()
	var cb, jb bytes.Buffer
	if err := res.WriteCSV(&cb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if err := res.WriteJSON(&jb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return cb.String(), jb.String()
}

// TestSweepDeterministicAcrossWorkerCounts is the engine's core contract:
// the same spec produces byte-identical merged CSV and JSON artifacts at
// -jobs=1, -jobs=4 and -jobs=GOMAXPROCS, and — because Verify is on —
// every one of the ≥16 jobs also passes the accounting invariants
// (attribution sums to frozen cycles, prefetch conservation, span
// decomposition) in all three runs.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := testSpec()
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}

	var wantCSV, wantJSON string
	for _, workers := range workerCounts {
		res, err := Run(spec, Options{Workers: workers, Verify: true})
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		if len(res.Jobs) < 16 {
			t.Fatalf("sweep expanded to %d jobs, want >= 16", len(res.Jobs))
		}
		for _, j := range res.Jobs {
			if j.Err != "" {
				t.Fatalf("workers=%d: job %s failed: %s", workers, j.Key, j.Err)
			}
			if j.Cycles == 0 || j.Throughput <= 0 {
				t.Fatalf("workers=%d: job %s produced empty metrics: %+v", workers, j.Key, j)
			}
		}
		csv, js := artifacts(t, res)
		if wantCSV == "" {
			wantCSV, wantJSON = csv, js
			continue
		}
		if csv != wantCSV {
			t.Errorf("workers=%d: CSV differs from workers=%d run:\n%s", workers, workerCounts[0], firstDiff(wantCSV, csv))
		}
		if js != wantJSON {
			t.Errorf("workers=%d: JSON differs from workers=%d run:\n%s", workers, workerCounts[0], firstDiff(wantJSON, js))
		}
	}
}

// firstDiff locates the first differing line of two artifacts.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length differs: %d vs %d lines", len(al), len(bl))
}

// TestSweepMergeOrder asserts the merged rows are sorted by job key with
// stable index tiebreaks, independent of completion order.
func TestSweepMergeOrder(t *testing.T) {
	res, err := Run(testSpec(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Jobs); i++ {
		prev, cur := res.Jobs[i-1], res.Jobs[i]
		if prev.Key > cur.Key || (prev.Key == cur.Key && prev.Index >= cur.Index) {
			t.Fatalf("rows %d/%d out of order: %q(#%d) before %q(#%d)",
				i-1, i, prev.Key, prev.Index, cur.Key, cur.Index)
		}
	}
}

// TestSweepProgressAndStats checks the progress callback fires once per
// job with a monotonically increasing done count, and that the wall-clock
// stats are populated and excluded from the JSON artifact.
func TestSweepProgressAndStats(t *testing.T) {
	var mu sync.Mutex
	var calls []int
	res, err := Run(testSpec(), Options{
		Workers: 4,
		Progress: func(done, total int, _ JobResult) {
			mu.Lock()
			calls = append(calls, done)
			_ = total
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(res.Jobs) {
		t.Fatalf("progress fired %d times for %d jobs", len(calls), len(res.Jobs))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress done counts not monotone: %v", calls)
		}
	}
	st := res.Stats
	if st.Jobs != len(res.Jobs) || st.Workers != 4 || st.Wall <= 0 || st.JobMax < st.JobMin || st.JobMean <= 0 {
		t.Fatalf("implausible run stats: %+v", st)
	}
	_, js := artifacts(t, res)
	for _, forbidden := range []string{"wall", "Wall", "JobMean"} {
		if strings.Contains(js, forbidden) {
			t.Fatalf("JSON artifact leaks wall-clock field %q", forbidden)
		}
	}
}

// TestSweepPanicBecomesFailedRow injects a job that panics (via an
// impossible workload pulled from under the runner) and checks the sweep
// survives with a failed row instead of crashing.
func TestSweepPanicBecomesFailedRow(t *testing.T) {
	jobs, err := testSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage one expanded config so sim.New fails validation — runJob
	// must turn the error into a failed row, and a panicking config (nil
	// pattern) must be recovered.
	j := jobs[0]
	j.Config.Workload = nil // sim: empty workload -> error
	r := runJob(j, false, FlightOptions{})
	if r.Err == "" {
		t.Fatal("invalid config produced no error row")
	}
	j = jobs[1]
	j.Config.Workload[0].Gen.Pattern = nil // nil pattern -> panic in trace.Gen.At
	r = runJob(j, false, FlightOptions{})
	if r.Err == "" || !strings.Contains(r.Err, "panic") {
		t.Fatalf("panicking job not recovered into a failed row: %q", r.Err)
	}
	if r.Key != jobs[1].Key {
		t.Fatalf("failed row lost its key: %q", r.Key)
	}
}

// TestSweepStress hammers a small sweep with many workers repeatedly —
// primarily a race-detector target (the CI runs this package with
// -race -count=2).
func TestSweepStress(t *testing.T) {
	spec := Spec{
		Name:     "stress",
		Seed:     3,
		Cores:    1,
		Insts:    2_000,
		Policies: []string{"demand-first", "padc"},
		Mixes:    4,
	}
	rounds := 3
	if testing.Short() {
		rounds = 1
	}
	var want string
	for i := 0; i < rounds; i++ {
		res, err := Run(spec, Options{Workers: 8, Verify: true, Progress: func(int, int, JobResult) {}})
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := res.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		if want == "" {
			want = b.String()
		} else if b.String() != want {
			t.Fatalf("round %d produced different artifact", i)
		}
	}
}

// TestParallelCoversAllIndices checks the shared fan-out primitive runs
// every index exactly once for odd pool shapes.
func TestParallelCoversAllIndices(t *testing.T) {
	old := DefaultWorkers()
	defer SetDefaultWorkers(old)
	for _, workers := range []int{0, 1, 3, 16} {
		SetDefaultWorkers(workers)
		const n = 37
		var mu sync.Mutex
		seen := make([]int, n)
		Parallel(n, func(i int) {
			mu.Lock()
			seen[i]++
			mu.Unlock()
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// BenchmarkSweepParallel measures the same 16-job sweep at one worker and
// at GOMAXPROCS, so `go test -bench SweepParallel` demonstrates the
// wall-clock speedup on multi-core runners (the two sub-benchmarks' ns/op
// are directly comparable — identical work, different pool widths).
func BenchmarkSweepParallel(b *testing.B) {
	spec := testSpec()
	spec.Insts = 20_000
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("jobs=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Run(spec, Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if n := res.Failed(); n > 0 {
					b.Fatalf("%d jobs failed", n)
				}
			}
		})
	}
}

// TestRunContextCancellation covers the graceful-shutdown contract: after
// cancellation RunContext returns context.Canceled plus only the rows
// that actually completed, and finishing the sweep later with those rows
// fed back through the Reuse hook yields artifacts byte-identical to an
// uninterrupted run.
func TestRunContextCancellation(t *testing.T) {
	spec := testSpec()
	full, err := Run(spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, wantJSON := artifacts(t, full)

	ctx, cancel := context.WithCancel(context.Background())
	const stopAfter = 5
	partial, err := RunContext(ctx, spec, Options{
		Workers: 2,
		Progress: func(done, total int, _ JobResult) {
			if done == stopAfter {
				cancel()
			}
		},
	})
	if err != context.Canceled {
		t.Fatalf("cancelled RunContext error = %v, want context.Canceled", err)
	}
	if n := len(partial.Jobs); n < stopAfter || n >= len(full.Jobs) {
		t.Fatalf("cancelled run completed %d of %d jobs, want in [%d, %d)", n, len(full.Jobs), stopAfter, len(full.Jobs))
	}
	for _, j := range partial.Jobs {
		if j.Err != "" {
			t.Fatalf("completed row %s carries error %q", j.Key, j.Err)
		}
		if j.Cycles == 0 {
			t.Fatalf("cancelled run leaked an unexecuted zero row: %+v", j)
		}
	}

	// Resume: journal-style reuse of the completed rows must re-run only
	// the remainder and reproduce the uninterrupted artifacts exactly.
	recovered := make(map[int]JobResult, len(partial.Jobs))
	for _, j := range partial.Jobs {
		recovered[j.Index] = j
	}
	executed := 0
	resumed, err := Run(spec, Options{
		Workers: 3,
		Reuse: func(j Job) (JobResult, bool) {
			r, ok := recovered[j.Index]
			return r, ok
		},
		Start: func(Job) { executed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(full.Jobs) - len(partial.Jobs); executed != want {
		t.Fatalf("resume executed %d jobs, want %d", executed, want)
	}
	csv, js := artifacts(t, resumed)
	if csv != wantCSV {
		t.Errorf("resumed CSV differs from uninterrupted run:\n%s", firstDiff(wantCSV, csv))
	}
	if js != wantJSON {
		t.Errorf("resumed JSON differs from uninterrupted run:\n%s", firstDiff(wantJSON, js))
	}
}

// TestShardUnionMatchesUnsharded is the shard-determinism contract: for
// uneven splits (shard counts that do not divide the job count) the union
// of every shard's rows, merged with MergeRows, is byte-identical to the
// unsharded artifact — and the shards partition the grid with no overlap.
func TestShardUnionMatchesUnsharded(t *testing.T) {
	spec := testSpec() // 16 jobs: 3 and 5 shards are both uneven splits
	full, err := Run(spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, wantJSON := artifacts(t, full)

	for _, count := range []int{2, 3, 5} {
		var union []JobResult
		seen := map[int]bool{}
		for idx := 0; idx < count; idx++ {
			res, err := Run(spec, Options{Workers: 2, Shard: Shard{Index: idx, Count: count}})
			if err != nil {
				t.Fatalf("shard %d/%d: %v", idx, count, err)
			}
			for _, j := range res.Jobs {
				if seen[j.Index] {
					t.Fatalf("shard %d/%d re-ran job index %d", idx, count, j.Index)
				}
				seen[j.Index] = true
			}
			union = append(union, res.Jobs...)
		}
		if len(union) != len(full.Jobs) {
			t.Fatalf("%d shards yielded %d rows, want %d", count, len(union), len(full.Jobs))
		}
		csv, js := artifacts(t, MergeRows(spec, union))
		if csv != wantCSV {
			t.Errorf("count=%d: sharded union CSV differs:\n%s", count, firstDiff(wantCSV, csv))
		}
		if js != wantJSON {
			t.Errorf("count=%d: sharded union JSON differs:\n%s", count, firstDiff(wantJSON, js))
		}
	}
}

// TestShardValidate rejects malformed shard coordinates.
func TestShardValidate(t *testing.T) {
	for _, s := range []Shard{{Index: -1, Count: 2}, {Index: 2, Count: 2}, {Index: 0, Count: -1}} {
		if _, err := Run(testSpec(), Options{Shard: s}); err == nil {
			t.Errorf("shard %+v accepted, want error", s)
		}
	}
	if !(Shard{Count: 1}).Owns(3) || (Shard{Index: 0, Count: 2}).Owns(3) {
		t.Error("modulo ownership broken")
	}
}
