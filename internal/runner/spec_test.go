package runner

import (
	"encoding/json"
	"strings"
	"testing"

	"padc/internal/sim"
)

func TestParseSpecDefaults(t *testing.T) {
	s, err := ParseSpec([]byte(`{"mixes": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	d := s.withDefaults()
	if d.Cores != 4 || d.Insts != 100_000 || d.Name != "sweep" {
		t.Fatalf("defaults not applied: %+v", d)
	}
	jobs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 3 default policies × 1 prefetcher × 2 mixes.
	if len(jobs) != 6 {
		t.Fatalf("expanded to %d jobs, want 6", len(jobs))
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := map[string]string{
		"bad JSON":           `{"mixes":`,
		"unknown field":      `{"mixez": 2}`,
		"unknown policy":     `{"mixes": 1, "policies": ["frfcfs-typo"]}`,
		"unknown prefetcher": `{"mixes": 1, "prefetchers": ["ghb"]}`,
		"unknown benchmark":  `{"workloads": [["not-a-bench"]]}`,
		"no workloads":       `{}`,
		"cores too high":     `{"mixes": 1, "cores": 99}`,
		"mix too wide":       `{"cores": 2, "workloads": [["swim","art","milc"]]}`,
		"negative mixes":     `{"mixes": -1}`,
		"grid too large":     `{"mixes": 256, "policies": ["padc","aps","equal","demand-first","no-pref"], "prefetchers": ["stream","stride","cdc","markov"]}`,
		"bad promotion":      `{"mixes": 1, "promotion_thresholds": [1.5]}`,
	}
	for name, in := range cases {
		if _, err := ParseSpec([]byte(in)); err == nil {
			t.Errorf("%s: spec accepted: %s", name, in)
		}
	}
}

// TestExpandDeterministicAndStable pins the expansion order contract:
// indices are dense, keys unique, random mixes are a function of their
// index (not of how many axes precede them), and per-job seeds derive
// from the root seed.
func TestExpandDeterministicAndStable(t *testing.T) {
	spec := Spec{Cores: 2, Mixes: 3, Seed: 11, Policies: []string{"padc", "aps"}}
	a, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := spec.Expand()
	keys := map[string]bool{}
	for i := range a {
		if a[i].Index != i {
			t.Fatalf("job %d has index %d", i, a[i].Index)
		}
		if a[i].Key != b[i].Key || a[i].Seed != b[i].Seed {
			t.Fatalf("expansion not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
		if keys[a[i].Key] {
			t.Fatalf("duplicate key %q", a[i].Key)
		}
		keys[a[i].Key] = true
	}
	// The same mix index yields the same workloads under a different
	// policy axis (mixes must not depend on grid position).
	wider := Spec{Cores: 2, Mixes: 3, Seed: 11, Policies: []string{"padc", "aps", "equal"}}
	c, _ := wider.Expand()
	for _, j := range c {
		if j.Policy != "padc" {
			continue
		}
		for _, k := range a {
			if k.Policy == "padc" && k.Mix == j.Mix {
				if strings.Join(k.Workloads, "+") != strings.Join(j.Workloads, "+") {
					t.Fatalf("mix %s changed workloads across specs: %v vs %v", j.Mix, k.Workloads, j.Workloads)
				}
			}
		}
	}
	// Different root seeds draw different random mixes.
	other := Spec{Cores: 2, Mixes: 3, Seed: 12, Policies: []string{"padc", "aps"}}
	d, _ := other.Expand()
	same := 0
	for i := range a {
		if strings.Join(a[i].Workloads, "+") == strings.Join(d[i].Workloads, "+") {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("root seed does not influence random mix draws")
	}
}

// TestThresholdAxesReachConfig checks the promotion/drop axes actually
// land in the expanded PADC config.
func TestThresholdAxesReachConfig(t *testing.T) {
	spec := Spec{
		Cores:               2,
		Workloads:           [][]string{{"swim"}},
		Policies:            []string{"padc"},
		PromotionThresholds: []float64{0.5},
		DropCycles:          []uint64{777},
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("want 1 job, got %d", len(jobs))
	}
	cfg := jobs[0].Config
	if cfg.PADC.PromotionThreshold != 0.5 {
		t.Errorf("promotion threshold not applied: %v", cfg.PADC.PromotionThreshold)
	}
	if len(cfg.PADC.DropLadder) != 1 || cfg.PADC.DropLadder[0].Cycles != 777 {
		t.Errorf("drop ladder not flattened: %+v", cfg.PADC.DropLadder)
	}
	if !strings.Contains(jobs[0].Key, "promo=0.50") || !strings.Contains(jobs[0].Key, "drop=777") {
		t.Errorf("threshold axes missing from key %q", jobs[0].Key)
	}
}

// TestRuleStackPolicyAxis covers the "rules:" sweep vocabulary: explicit
// rule stacks expand like any other policy (reaching Config.Rules with
// APD off, so the grid isolates scheduling order), and malformed stacks
// are rejected at spec validation.
func TestRuleStackPolicyAxis(t *testing.T) {
	stack := "rules:critical,rowhit,urgent,fcfs"
	spec := Spec{
		Cores:     2,
		Workloads: [][]string{{"swim"}},
		Policies:  []string{stack, "aps"},
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("want 2 jobs, got %d", len(jobs))
	}
	cfg := jobs[0].Config
	if cfg.Rules != stack {
		t.Errorf("rule stack not applied: %q", cfg.Rules)
	}
	if cfg.PADC.EnableAPD {
		t.Error("rule-stack policy left APD enabled")
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("expanded config invalid: %v", err)
	}
	if !strings.Contains(jobs[0].Key, "policy="+stack) {
		t.Errorf("rule stack missing from key %q", jobs[0].Key)
	}
	for _, bad := range []string{"rules:", "rules:frobnicate", "rules:fcfs,rowhit"} {
		s := Spec{Cores: 2, Workloads: [][]string{{"swim"}}, Policies: []string{bad}}
		if _, err := s.Expand(); err == nil {
			t.Errorf("bad stack %q accepted", bad)
		}
	}
}

// FuzzSpecJSON feeds arbitrary bytes through the spec parser: parsing
// must never panic, and any spec it accepts must expand to a bounded,
// well-formed job list.
func FuzzSpecJSON(f *testing.F) {
	f.Add([]byte(`{"mixes": 2}`))
	f.Add([]byte(`{"name":"x","seed":9,"cores":2,"insts":1000,"policies":["padc"],"workloads":[["swim","art"]]}`))
	f.Add([]byte(`{"mixes": 1, "drop_cycles": [100, 0], "promotion_thresholds": [0.25]}`))
	f.Add([]byte(`{"policies": ["no-pref","prefetch-first"], "prefetchers": ["markov"], "mixes": 3}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"cores": -1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		jobs, err := spec.Expand()
		if err != nil {
			t.Fatalf("validated spec failed to expand: %v", err)
		}
		if len(jobs) == 0 || len(jobs) > MaxJobs {
			t.Fatalf("accepted spec expanded to %d jobs (bounds 1..%d)", len(jobs), MaxJobs)
		}
		seen := map[string]bool{}
		for i, j := range jobs {
			if j.Index != i {
				t.Fatalf("job %d carries index %d", i, j.Index)
			}
			if seen[j.Key] {
				t.Fatalf("duplicate job key %q", j.Key)
			}
			seen[j.Key] = true
			if len(j.Config.Workload) == 0 {
				t.Fatalf("job %q has no workload", j.Key)
			}
			if err := j.Config.Validate(); err != nil {
				t.Fatalf("job %q expanded to invalid config: %v", j.Key, err)
			}
		}
		// A spec must round-trip through JSON without changing its grid.
		re, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		spec2, err := ParseSpec(re)
		if err != nil {
			t.Fatalf("re-encoded spec rejected: %v", err)
		}
		jobs2, err := spec2.Expand()
		if err != nil || len(jobs2) != len(jobs) {
			t.Fatalf("round-tripped spec expands differently: %d vs %d (%v)", len(jobs), len(jobs2), err)
		}
	})
}

func TestRefreshAndPageAxes(t *testing.T) {
	spec := Spec{
		Cores:        2,
		Workloads:    [][]string{{"swim"}},
		Policies:     []string{"padc"},
		Refresh:      []string{"off", "per-bank", "all-bank"},
		PagePolicies: []string{"open", "closed", "adaptive"},
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 9 {
		t.Fatalf("want 3x3 = 9 jobs, got %d", len(jobs))
	}
	sawEnabled := false
	for _, j := range jobs {
		rf := j.Config.DRAM.Refresh
		switch j.Refresh {
		case "":
			if rf.Enabled() {
				t.Errorf("%s: refresh enabled for the off axis value", j.Key)
			}
			if strings.Contains(j.Key, "refresh=") {
				t.Errorf("default refresh leaked into key %q", j.Key)
			}
		case "per-bank", "all-bank":
			sawEnabled = true
			if !rf.Enabled() || rf.Mode.String() != j.Refresh {
				t.Errorf("%s: refresh mode %v not applied", j.Key, rf.Mode)
			}
			if !strings.Contains(j.Key, "refresh="+j.Refresh) {
				t.Errorf("refresh axis missing from key %q", j.Key)
			}
		default:
			t.Errorf("unexpected normalized refresh value %q", j.Refresh)
		}
		switch j.Page {
		case "":
			if j.Config.DRAM.EffectivePage().String() != "open" {
				t.Errorf("%s: default page policy not open", j.Key)
			}
			if strings.Contains(j.Key, "page=") {
				t.Errorf("default page leaked into key %q", j.Key)
			}
		case "closed", "adaptive":
			if j.Config.DRAM.Page.String() != j.Page {
				t.Errorf("%s: page policy %v not applied", j.Key, j.Config.DRAM.Page)
			}
			if !strings.Contains(j.Key, "page="+j.Page) {
				t.Errorf("page axis missing from key %q", j.Key)
			}
		default:
			t.Errorf("unexpected normalized page value %q", j.Page)
		}
	}
	if !sawEnabled {
		t.Fatal("no refresh-enabled job expanded")
	}

	// The explicit-default spelling and the omitted axis produce identical
	// job keys (golden-compatibility contract).
	plain := Spec{Cores: 2, Workloads: [][]string{{"swim"}}, Policies: []string{"padc"}}
	spelled := Spec{Cores: 2, Workloads: [][]string{{"swim"}}, Policies: []string{"padc"},
		Refresh: []string{"off"}, PagePolicies: []string{"open"}}
	a, _ := plain.Expand()
	b, _ := spelled.Expand()
	if a[0].Key != b[0].Key {
		t.Fatalf("explicit defaults changed the key: %q vs %q", a[0].Key, b[0].Key)
	}

	for name, in := range map[string]string{
		"bad refresh": `{"mixes": 1, "refresh": ["hourly"]}`,
		"bad page":    `{"mixes": 1, "page_policies": ["ajar"]}`,
	} {
		if _, err := ParseSpec([]byte(in)); err == nil {
			t.Errorf("%s: spec accepted", name)
		}
	}
}

func TestMemSideAxis(t *testing.T) {
	spec := Spec{
		Cores:       2,
		Workloads:   [][]string{{"swim"}},
		Policies:    []string{"padc"},
		Prefetchers: []string{"dspatch"},
		MemSide:     []string{"off", "on"},
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("want off+on = 2 jobs, got %d", len(jobs))
	}
	for _, j := range jobs {
		if j.Config.Prefetcher != sim.PFDSPatch {
			t.Errorf("%s: dspatch prefetcher not applied", j.Key)
		}
		switch j.MemSide {
		case "":
			if j.Config.MemSide {
				t.Errorf("%s: memside enabled for the off axis value", j.Key)
			}
			if strings.Contains(j.Key, "memside=") {
				t.Errorf("default memside leaked into key %q", j.Key)
			}
		case "on":
			if !j.Config.MemSide {
				t.Errorf("%s: memside not applied", j.Key)
			}
			if !strings.Contains(j.Key, "memside=on") {
				t.Errorf("memside axis missing from key %q", j.Key)
			}
		default:
			t.Errorf("unexpected normalized memside value %q", j.MemSide)
		}
	}

	// Explicit "off" and an omitted axis produce identical job keys.
	plain := Spec{Cores: 2, Workloads: [][]string{{"swim"}}, Policies: []string{"padc"}}
	spelled := Spec{Cores: 2, Workloads: [][]string{{"swim"}}, Policies: []string{"padc"},
		MemSide: []string{"off"}}
	a, _ := plain.Expand()
	b, _ := spelled.Expand()
	if a[0].Key != b[0].Key {
		t.Fatalf("explicit default changed the key: %q vs %q", a[0].Key, b[0].Key)
	}

	if _, err := ParseSpec([]byte(`{"mixes": 1, "memside": ["sideways"]}`)); err == nil {
		t.Error("bad memside value accepted")
	}
}
