// Package runner is the parallel sweep engine behind the paper-shaped
// experiment grids: it expands a declarative Spec (a cartesian grid of
// scheduling policy, prefetcher, PADC-threshold and workload parameters)
// into an ordered job list, executes the jobs on a bounded worker pool,
// and merges the per-job results into deterministic aggregates — the same
// output bytes regardless of worker count.
//
// Determinism comes from three properties: every job is a pure function of
// its expanded configuration (the simulator itself is deterministic),
// random workload mixes are drawn from per-index seeds derived from the
// spec's root seed (never from execution order), and the merge sorts on
// the stable job key. Wall-clock measurements are kept out of the
// exported artifacts (RunStats is reported separately) so CSV/JSON output
// is byte-comparable across runs and machines.
package runner

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"padc/internal/core"
	"padc/internal/dram"
	"padc/internal/dram/refresh"
	"padc/internal/memctrl"
	"padc/internal/memctrl/sched"
	"padc/internal/sim"
	"padc/internal/topology"
	"padc/internal/workload"
)

// Bounds on an expanded sweep, enforced by Validate so a hostile or
// fuzzed spec cannot expand into unbounded work.
const (
	MaxJobs  = 4096 // cartesian-product ceiling
	MaxMixes = 256  // random workload draws per spec
	MaxCores = 16   // cores per simulated system
)

// Spec declares one sweep: every non-empty axis multiplies the grid.
// Zero-valued fields fall back to the documented defaults, so the minimal
// useful spec is `{"mixes": 4}`.
type Spec struct {
	Name string `json:"name,omitempty"` // sweep label (default "sweep")
	Seed uint64 `json:"seed,omitempty"` // root seed for random mix draws

	Cores int    `json:"cores,omitempty"` // cores per system (default 4)
	Insts uint64 `json:"insts,omitempty"` // instructions per core (default 100000)

	// Policies names the scheduling policies to compare; the vocabulary is
	// the CLI's: no-pref, demand-first, equal, prefetch-first, aps, padc,
	// padc-rank. Default: demand-first, aps, padc.
	Policies []string `json:"policies,omitempty"`

	// Prefetchers names the prefetch engines: none, stream, stride, cdc,
	// markov, dspatch. Default: stream.
	Prefetchers []string `json:"prefetchers,omitempty"`

	// MemSide optionally sweeps the DRAM-side prefetch path: "off" (or "")
	// keeps prefetching core-side only, "on" attaches the memory-side
	// engine to every controller. Default: off, matching the historical
	// simulator behavior.
	MemSide []string `json:"memside,omitempty"`

	// PromotionThresholds optionally sweeps the APS promotion threshold
	// (paper default 0.85); 0 entries leave the default.
	PromotionThresholds []float64 `json:"promotion_thresholds,omitempty"`

	// DropCycles optionally sweeps a flat APD drop threshold replacing the
	// Table 6 ladder; a 0 entry keeps the default ladder.
	DropCycles []uint64 `json:"drop_cycles,omitempty"`

	// Refresh optionally sweeps the DRAM maintenance engine: "off" (or ""),
	// "per-bank", "all-bank". Default: off, matching the historical
	// simulator behavior.
	Refresh []string `json:"refresh,omitempty"`

	// PagePolicies optionally sweeps row-buffer management: "open" (or ""),
	// "closed", "adaptive". Default: open.
	PagePolicies []string `json:"page_policies,omitempty"`

	// Topologies optionally sweeps the memory wiring by preset name:
	// "flat" (or "") keeps the single-domain layout, "far-tier" adds a
	// one-channel pooled tier behind a long link (see internal/topology).
	// Default: flat, matching the historical simulator behavior.
	Topologies []string `json:"topologies,omitempty"`

	// Workloads lists explicit benchmark mixes (each inner list is one mix,
	// one benchmark per core). Mixes additionally draws that many random
	// Cores-wide mixes from the extended suite using the root seed. At
	// least one of the two must yield a mix.
	Workloads [][]string `json:"workloads,omitempty"`
	Mixes     int        `json:"mixes,omitempty"`

	// Kernel selects the simulation loop every job runs under: "" or
	// "events" (the cycle-skipping default) or "stepped" (the
	// cycle-by-cycle reference). It is not a grid axis and never appears
	// in job keys — both kernels produce byte-identical artifacts, which
	// the differential suite verifies.
	Kernel string `json:"kernel,omitempty"`
}

// ParseSpec decodes and validates a JSON sweep spec.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("runner: parsing sweep spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// withDefaults returns the spec with every zero-valued axis filled in.
func (s Spec) withDefaults() Spec {
	if s.Name == "" {
		s.Name = "sweep"
	}
	if s.Cores == 0 {
		s.Cores = 4
	}
	if s.Insts == 0 {
		s.Insts = 100_000
	}
	if len(s.Policies) == 0 {
		s.Policies = []string{"demand-first", "aps", "padc"}
	}
	if len(s.Prefetchers) == 0 {
		s.Prefetchers = []string{"stream"}
	}
	if len(s.PromotionThresholds) == 0 {
		s.PromotionThresholds = []float64{0}
	}
	if len(s.DropCycles) == 0 {
		s.DropCycles = []uint64{0}
	}
	// The refresh and page axes normalize to "" (their disabled defaults)
	// so job keys and artifacts stay byte-identical for specs that never
	// mention them.
	s.Refresh = normalizeAxis(s.Refresh, "off")
	s.PagePolicies = normalizeAxis(s.PagePolicies, "open")
	s.Topologies = normalizeAxis(s.Topologies, "flat")
	s.MemSide = normalizeAxis(s.MemSide, "off")
	return s
}

// normalizeAxis fills an empty axis with the single default value and
// rewrites the default's explicit spelling to "" without mutating the
// caller's slice.
func normalizeAxis(vals []string, defaultName string) []string {
	if len(vals) == 0 {
		return []string{""}
	}
	out := make([]string, len(vals))
	for i, v := range vals {
		if v != defaultName {
			out[i] = v
		}
	}
	return out
}

// Validate reports the first problem with the spec: unknown policy or
// prefetcher names, unknown benchmarks, out-of-range axes, or a grid
// exceeding MaxJobs.
func (s Spec) Validate() error {
	d := s.withDefaults()
	if d.Cores < 1 || d.Cores > MaxCores {
		return fmt.Errorf("runner: cores must be 1..%d, got %d", MaxCores, d.Cores)
	}
	if d.Mixes < 0 || d.Mixes > MaxMixes {
		return fmt.Errorf("runner: mixes must be 0..%d, got %d", MaxMixes, d.Mixes)
	}
	for _, p := range d.Policies {
		if _, err := policyMutator(p); err != nil {
			return err
		}
	}
	for _, p := range d.Prefetchers {
		if _, err := prefetcherKind(p); err != nil {
			return err
		}
	}
	for _, th := range d.PromotionThresholds {
		if th < 0 || th > 1 {
			return fmt.Errorf("runner: promotion threshold must be in [0,1], got %g", th)
		}
	}
	for _, r := range d.Refresh {
		if _, err := refresh.ParseMode(r); err != nil {
			return fmt.Errorf("runner: %v", err)
		}
	}
	for _, p := range d.PagePolicies {
		if _, err := dram.ParsePagePolicy(p); err != nil {
			return fmt.Errorf("runner: %v", err)
		}
	}
	for _, t := range d.Topologies {
		// The channel count only scales the preset; any power of two
		// exercises the name lookup, which is what validation is about.
		if _, err := topology.Preset(t, 4); err != nil {
			return fmt.Errorf("runner: %v", err)
		}
	}
	for _, m := range d.MemSide {
		if _, err := parseMemSide(m); err != nil {
			return err
		}
	}
	if _, err := sim.ParseKernel(d.Kernel); err != nil {
		return fmt.Errorf("runner: %v", err)
	}
	for mi, mix := range d.Workloads {
		if len(mix) == 0 || len(mix) > d.Cores {
			return fmt.Errorf("runner: workload mix %d needs 1..%d benchmarks, got %d", mi, d.Cores, len(mix))
		}
		for _, name := range mix {
			if _, err := workload.ByName(name); err != nil {
				return err
			}
		}
	}
	nmixes := len(d.Workloads) + d.Mixes
	if nmixes == 0 {
		return fmt.Errorf("runner: spec yields no workload mixes (set workloads or mixes)")
	}
	n := len(d.Policies) * len(d.Prefetchers) * len(d.PromotionThresholds) * len(d.DropCycles) *
		len(d.Refresh) * len(d.PagePolicies) * len(d.Topologies) * len(d.MemSide) * nmixes
	if n > MaxJobs {
		return fmt.Errorf("runner: sweep expands to %d jobs, limit %d", n, MaxJobs)
	}
	return nil
}

// Job is one expanded configuration: a stable index and key plus the
// fully-resolved simulator config.
type Job struct {
	Index int    // position in expansion order (stable given the spec)
	Key   string // canonical "policy=…/pf=…/…/mix=…" grid coordinates
	Seed  uint64 // per-job seed: splitmix(root seed, Index)

	Policy     string
	Prefetcher string
	Promotion  float64 // 0 = paper default
	Drop       uint64  // 0 = Table 6 ladder
	Refresh    string  // "" = off
	Page       string  // "" = open
	Topology   string  // "" = flat
	MemSide    string  // "" = off
	Mix        string  // mix label ("swim+art" or "rnd03")
	Workloads  []string

	Config sim.Config
}

// splitmix is SplitMix64's finalizer: the per-index seed derivation for
// jobs and random mixes.
func splitmix(seed, x uint64) uint64 {
	x += seed + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}

// Expand materializes the spec's cartesian grid in deterministic order:
// mixes vary fastest, then drop threshold, promotion threshold,
// prefetcher, and policy slowest. The spec must have passed Validate.
func (s Spec) Expand() ([]Job, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	d := s.withDefaults()
	kernel, _ := sim.ParseKernel(d.Kernel)

	type mixEntry struct {
		label string
		profs []workload.Profile
	}
	var mixes []mixEntry
	for _, names := range d.Workloads {
		profs := make([]workload.Profile, len(names))
		for i, n := range names {
			profs[i] = workload.MustByName(n)
		}
		mixes = append(mixes, mixEntry{label: strings.Join(names, "+"), profs: profs})
	}
	for i := 0; i < d.Mixes; i++ {
		// Each random mix is drawn from its own index-derived seed, so mix
		// i is the same workload set no matter how many mixes precede it or
		// which worker later runs it.
		profs := workload.Mixes(1, d.Cores, splitmix(d.Seed, uint64(i)))[0]
		mixes = append(mixes, mixEntry{label: fmt.Sprintf("rnd%02d", i), profs: profs})
	}

	var jobs []Job
	for _, pol := range d.Policies {
		mutate, _ := policyMutator(pol)
		for _, pf := range d.Prefetchers {
			pfKind, _ := prefetcherKind(pf)
			for _, promo := range d.PromotionThresholds {
				for _, drop := range d.DropCycles {
					for _, rf := range d.Refresh {
						rfMode, _ := refresh.ParseMode(rf)
						for _, page := range d.PagePolicies {
							pagePol, _ := dram.ParsePagePolicy(page)
							for _, topo := range d.Topologies {
								for _, ms := range d.MemSide {
									msOn, _ := parseMemSide(ms)
									for _, mx := range mixes {
										cfg := sim.Baseline(d.Cores)
										cfg.TargetInsts = d.Insts
										cfg.PADC = core.DefaultConfig()
										cfg.Prefetcher = pfKind
										mutate(&cfg)
										if promo > 0 {
											cfg.PADC.PromotionThreshold = promo
										}
										if drop > 0 {
											cfg.PADC.DropLadder = []core.DropLevel{{AccuracyBelow: 1.01, Cycles: drop}}
										}
										cfg.DRAM.Refresh.Mode = rfMode
										cfg.DRAM.Page = pagePol
										if topo != "" {
											// Resolved against the baseline channel
											// count so the near tier matches flat.
											t, err := topology.Preset(topo, cfg.DRAM.Channels)
											if err != nil {
												return nil, err
											}
											cfg.Topology = &t
										}
										cfg.MemSide = msOn
										cfg.Kernel = kernel
										cfg.Workload = append([]workload.Profile(nil), mx.profs...)
										idx := len(jobs)
										jobs = append(jobs, Job{
											Index:      idx,
											Key:        jobKey(pol, pf, promo, drop, rf, page, topo, ms, mx.label),
											Seed:       splitmix(d.Seed, uint64(idx)|1<<32),
											Policy:     pol,
											Prefetcher: pf,
											Promotion:  promo,
											Drop:       drop,
											Refresh:    rf,
											Page:       page,
											Topology:   topo,
											MemSide:    ms,
											Mix:        mx.label,
											Workloads:  namesOf(mx.profs),
											Config:     cfg,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return jobs, nil
}

func namesOf(profs []workload.Profile) []string {
	out := make([]string, len(profs))
	for i, p := range profs {
		out[i] = p.Name
	}
	return out
}

// jobKey renders the canonical grid coordinates the merge sorts on.
// Default-valued axes are omitted, so keys (and sort order) from sweeps
// predating an axis never change.
func jobKey(pol, pf string, promo float64, drop uint64, rf, page, topo, ms, mix string) string {
	parts := []string{"policy=" + pol, "pf=" + pf}
	if promo > 0 {
		parts = append(parts, fmt.Sprintf("promo=%.2f", promo))
	}
	if drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%d", drop))
	}
	if rf != "" {
		parts = append(parts, "refresh="+rf)
	}
	if page != "" {
		parts = append(parts, "page="+page)
	}
	if topo != "" {
		parts = append(parts, "topo="+topo)
	}
	if ms != "" {
		parts = append(parts, "memside="+ms)
	}
	parts = append(parts, "mix="+mix)
	return strings.Join(parts, "/")
}

// policyMutator maps a policy name onto its sim.Config mutation; the
// vocabulary matches the padcsim CLI.
func policyMutator(name string) (func(*sim.Config), error) {
	switch name {
	case "no-pref":
		return func(c *sim.Config) {
			c.Prefetcher = sim.PFNone
			c.PADC.EnableAPD = false
		}, nil
	case "demand-first":
		return func(c *sim.Config) {
			c.Policy = memctrl.DemandFirst
			c.PADC.EnableAPD = false
		}, nil
	case "equal":
		return func(c *sim.Config) {
			c.Policy = memctrl.DemandPrefEqual
			c.PADC.EnableAPD = false
		}, nil
	case "prefetch-first":
		return func(c *sim.Config) {
			c.Policy = memctrl.PrefetchFirst
			c.PADC.EnableAPD = false
		}, nil
	case "aps":
		return func(c *sim.Config) {
			c.Policy = memctrl.APS
			c.PADC.EnableAPD = false
		}, nil
	case "padc":
		return func(c *sim.Config) { c.Policy = memctrl.APS }, nil
	case "padc-rank":
		return func(c *sim.Config) { c.Policy = memctrl.APSRank }, nil
	default:
		// Explicit rule stacks ("rules:critical,rowhit,fcfs") sweep the
		// scheduler's priority order directly. Like "aps" and the other
		// scheduling-only policies, APD is disabled so the grid isolates
		// the ordering under study.
		if strings.HasPrefix(name, sched.Prefix) {
			if _, err := sched.Parse(name); err != nil {
				return nil, fmt.Errorf("runner: %v", err)
			}
			return func(c *sim.Config) {
				c.Rules = name
				c.PADC.EnableAPD = false
			}, nil
		}
		return nil, fmt.Errorf("runner: unknown policy %q (known: %s; or %s<list> rule stacks)",
			name, strings.Join(PolicyNames(), ", "), sched.Prefix)
	}
}

// prefetcherKind maps a prefetcher name onto its sim kind.
func prefetcherKind(name string) (sim.PrefetcherKind, error) {
	switch name {
	case "none":
		return sim.PFNone, nil
	case "stream":
		return sim.PFStream, nil
	case "stride":
		return sim.PFStride, nil
	case "cdc":
		return sim.PFCDC, nil
	case "markov":
		return sim.PFMarkov, nil
	case "dspatch":
		return sim.PFDSPatch, nil
	default:
		return 0, fmt.Errorf("runner: unknown prefetcher %q (known: %s)", name, strings.Join(PrefetcherNames(), ", "))
	}
}

// parseMemSide maps a memside axis value onto the config switch.
func parseMemSide(name string) (bool, error) {
	switch name {
	case "", "off":
		return false, nil
	case "on":
		return true, nil
	default:
		return false, fmt.Errorf("runner: unknown memside value %q (known: off, on)", name)
	}
}

// PolicyNames returns the accepted Spec.Policies vocabulary, sorted.
func PolicyNames() []string {
	out := []string{"no-pref", "demand-first", "equal", "prefetch-first", "aps", "padc", "padc-rank"}
	sort.Strings(out)
	return out
}

// PrefetcherNames returns the accepted Spec.Prefetchers vocabulary, sorted.
func PrefetcherNames() []string {
	out := []string{"none", "stream", "stride", "cdc", "markov", "dspatch"}
	sort.Strings(out)
	return out
}
