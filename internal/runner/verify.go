package runner

import (
	"fmt"

	"padc/internal/stats"
	"padc/internal/telemetry/lifecycle"
)

// VerifyResults checks the simulator's cross-cutting accounting
// identities on one run's results:
//
//  1. cycle-accounting: each profiled core's attribution buckets sum to
//     its frozen cycle count (every cycle lands in exactly one class);
//  2. prefetch conservation: per core, admitted prefetches equal
//     serviced + dropped + still-in-flight (nothing leaks from the
//     request buffer);
//  3. span decomposition: for every recorded lifecycle span, queue wait
//     plus DRAM service equals the span's total latency, and the stage
//     stamps are monotone.
//
// The sweep engine runs these on every job when Options.Verify is set, so
// a regression in any accounting path turns sweeps red rather than
// silently skewing tables. The returned slice is empty when all
// invariants hold.
func VerifyResults(res stats.Results, spans []lifecycle.Span) []error {
	var errs []error
	for i, c := range res.PerCore {
		if c.Attribution != nil {
			var sum uint64
			for _, v := range c.Attribution {
				sum += v
			}
			if sum != c.Cycles {
				errs = append(errs, fmt.Errorf(
					"core %d (%s): attribution buckets sum to %d cycles, frozen at %d",
					i, c.Benchmark, sum, c.Cycles))
			}
		}
		if got := c.PrefServiced + c.PrefDropped + c.PrefInflight; got != c.PrefSent {
			errs = append(errs, fmt.Errorf(
				"core %d (%s): prefetch conservation broken: serviced %d + dropped %d + inflight %d = %d, sent %d",
				i, c.Benchmark, c.PrefServiced, c.PrefDropped, c.PrefInflight, got, c.PrefSent))
		}
		if c.PrefUsed > c.PrefSent {
			errs = append(errs, fmt.Errorf(
				"core %d (%s): %d useful prefetches exceed %d sent",
				i, c.Benchmark, c.PrefUsed, c.PrefSent))
		}
	}
	for _, sp := range spans {
		if err := verifySpan(sp); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// verifySpan checks one lifecycle span's latency decomposition.
func verifySpan(sp lifecycle.Span) error {
	if sp.Finish < sp.Enqueue {
		return fmt.Errorf("span core %d line %#x: finish %d before enqueue %d",
			sp.Core, sp.Line, sp.Finish, sp.Enqueue)
	}
	total := sp.Finish - sp.Enqueue
	if sp.Issue == 0 {
		// Dropped before issue: the whole life is queue wait.
		if sp.Service() != 0 || sp.QueueWait() != total {
			return fmt.Errorf("span core %d line %#x: dropped span decomposes to wait %d + service %d, total %d",
				sp.Core, sp.Line, sp.QueueWait(), sp.Service(), total)
		}
		return nil
	}
	if sp.Issue < sp.Enqueue || sp.Finish < sp.Issue {
		return fmt.Errorf("span core %d line %#x: non-monotone stamps enqueue %d issue %d finish %d",
			sp.Core, sp.Line, sp.Enqueue, sp.Issue, sp.Finish)
	}
	if sp.QueueWait()+sp.Service() != total {
		return fmt.Errorf("span core %d line %#x: wait %d + service %d != total %d",
			sp.Core, sp.Line, sp.QueueWait(), sp.Service(), total)
	}
	return nil
}
