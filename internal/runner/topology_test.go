package runner

import (
	"bytes"
	"strings"
	"testing"
)

// TestTopologyAxis pins the topology sweep axis: expansion semantics,
// config wiring, key formatting, and the golden-compatibility contract
// that the explicit "flat" spelling is indistinguishable from omitting
// the axis entirely.
func TestTopologyAxis(t *testing.T) {
	spec := Spec{
		Cores:      2,
		Workloads:  [][]string{{"swim"}},
		Policies:   []string{"padc"},
		Topologies: []string{"flat", "far-tier"},
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("want 2 jobs, got %d", len(jobs))
	}
	sawFar := false
	for _, j := range jobs {
		switch j.Topology {
		case "":
			if j.Config.Topology != nil {
				t.Errorf("%s: flat job carries a topology override", j.Key)
			}
			if strings.Contains(j.Key, "topo=") {
				t.Errorf("default topology leaked into key %q", j.Key)
			}
		case "far-tier":
			sawFar = true
			tp := j.Config.Topology
			if tp == nil {
				t.Fatalf("%s: far-tier job has no topology", j.Key)
			}
			if len(tp.Domains) != 2 {
				t.Errorf("%s: far-tier expanded to %d domains", j.Key, len(tp.Domains))
			}
			// The near tier must match the flat channel count so the axis
			// compares wiring, not raw channel counts on the fast tier.
			if tp.Domains[0].Channels != j.Config.DRAM.Channels {
				t.Errorf("%s: near tier has %d channels, base has %d",
					j.Key, tp.Domains[0].Channels, j.Config.DRAM.Channels)
			}
			if !strings.Contains(j.Key, "topo=far-tier") {
				t.Errorf("topology axis missing from key %q", j.Key)
			}
		default:
			t.Errorf("unexpected normalized topology value %q", j.Topology)
		}
	}
	if !sawFar {
		t.Fatal("no far-tier job expanded")
	}

	plain := Spec{Cores: 2, Workloads: [][]string{{"swim"}}, Policies: []string{"padc"}}
	spelled := Spec{Cores: 2, Workloads: [][]string{{"swim"}}, Policies: []string{"padc"},
		Topologies: []string{"flat"}}
	a, _ := plain.Expand()
	b, _ := spelled.Expand()
	if a[0].Key != b[0].Key {
		t.Fatalf("explicit flat changed the key: %q vs %q", a[0].Key, b[0].Key)
	}

	if _, err := ParseSpec([]byte(`{"mixes": 1, "topologies": ["moebius"]}`)); err == nil {
		t.Error("spec with an unknown topology accepted")
	}
}

// TestTopologyArtifactIdentity sweeps the topology axis under different
// worker counts and requires byte-identical CSV and JSON artifacts, and
// checks that far-tier rows carry the per-domain telemetry while flat
// rows stay free of it (the byte-identity contract for old sweeps).
func TestTopologyArtifactIdentity(t *testing.T) {
	spec := Spec{
		Cores:      2,
		Insts:      6_000,
		Workloads:  [][]string{{"swim", "art"}},
		Policies:   []string{"demand-first", "padc"},
		Topologies: []string{"flat", "far-tier"},
	}
	render := func(workers int) (*SweepResult, []byte, []byte) {
		t.Helper()
		res, err := Run(spec, Options{Workers: workers, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		if n := res.Failed(); n > 0 {
			for _, j := range res.Jobs {
				if j.Err != "" {
					t.Logf("%s: %s", j.Key, j.Err)
				}
			}
			t.Fatalf("%d jobs failed", n)
		}
		var c, j bytes.Buffer
		if err := res.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		return res, c.Bytes(), j.Bytes()
	}

	res, csv1, json1 := render(1)
	_, csv4, json4 := render(4)
	if !bytes.Equal(csv1, csv4) {
		t.Errorf("CSV artifacts differ across worker counts:\n%s", firstDiff(string(csv1), string(csv4)))
	}
	if !bytes.Equal(json1, json4) {
		t.Errorf("JSON artifacts differ across worker counts:\n%s", firstDiff(string(json1), string(json4)))
	}

	for _, j := range res.Jobs {
		_, hasDom := j.Telemetry["dom/far/serviced"]
		switch j.Topology {
		case "":
			if hasDom {
				t.Errorf("%s: flat row carries per-domain telemetry", j.Key)
			}
		case "far-tier":
			if !hasDom {
				t.Errorf("%s: far-tier row missing per-domain telemetry", j.Key)
			}
			if j.Telemetry["dom/far/serviced"] == 0 {
				t.Errorf("%s: far tier serviced nothing", j.Key)
			}
		}
	}
}
