package runner

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// csvHeader is the fixed column set of the merged CSV artifact. Per-core
// and roll-up metrics live in the JSON export; the CSV keeps the columns
// every sweep shares so goldens stay small and diffable.
var csvHeader = []string{
	"key", "policy", "prefetcher", "mix", "workloads", "seed", "err",
	"cycles", "throughput", "ipc",
	"bus_demand", "bus_useful", "bus_useless", "serviced",
	"row_hit_rate", "rbhu",
	"pref_sent", "pref_used", "pref_dropped",
}

// WriteCSV writes the merged sweep as CSV: one row per job in job-key
// order. Output is a pure function of the spec (no timestamps, no
// wall-clock fields), so runs with different worker counts are
// byte-identical.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, j := range r.Jobs {
		ipcs := make([]string, len(j.IPC))
		for i, v := range j.IPC {
			ipcs[i] = formatFloat(v)
		}
		row := []string{
			j.Key, j.Policy, j.Prefetcher, j.Mix, strings.Join(j.Workloads, "+"),
			fmt.Sprintf("%d", j.Seed), firstLine(j.Err),
			fmt.Sprintf("%d", j.Cycles), formatFloat(j.Throughput), strings.Join(ipcs, " "),
			fmt.Sprintf("%d", j.BusDemand), fmt.Sprintf("%d", j.BusUseful),
			fmt.Sprintf("%d", j.BusUseless), fmt.Sprintf("%d", j.Serviced),
			formatFloat(j.RowHitRate), formatFloat(j.RBHU),
			fmt.Sprintf("%d", j.PrefSent), fmt.Sprintf("%d", j.PrefUsed),
			fmt.Sprintf("%d", j.PrefDropped),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the merged sweep (spec + jobs, including per-job
// telemetry roll-ups) as indented JSON. Like the CSV it contains no
// execution-order- or clock-dependent fields.
func (r *SweepResult) WriteJSON(w io.Writer) error {
	// The kernel is a loop-strategy switch, not a grid axis: both kernels
	// produce identical rows, so the echoed spec drops it to keep the
	// artifact byte-identical across kernels (and kernel spellings).
	out := *r
	out.Spec.Kernel = ""
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// formatFloat renders metric floats at fixed precision so artifacts are
// stable across Go versions' shortest-float heuristics.
func formatFloat(v float64) string { return fmt.Sprintf("%.6f", v) }

// firstLine truncates multi-line errors (panic stacks) to their headline
// for the tabular artifacts; the JSON export keeps the full text.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// TableData returns the merged sweep as an aligned-text-ready header and
// rows (the exp.Table shape), for the CLI and examples to render.
func (r *SweepResult) TableData() (header []string, rows [][]string) {
	header = []string{"job", "cycles", "thruput", "bus(D/U/X)", "rowhit", "rbhu", "sent", "used", "dropped", "status"}
	for _, j := range r.Jobs {
		status := "ok"
		if j.Err != "" {
			status = "FAILED: " + firstLine(j.Err)
		}
		rows = append(rows, []string{
			j.Key,
			fmt.Sprintf("%d", j.Cycles),
			fmt.Sprintf("%.3f", j.Throughput),
			fmt.Sprintf("%d/%d/%d", j.BusDemand, j.BusUseful, j.BusUseless),
			fmt.Sprintf("%.3f", j.RowHitRate),
			fmt.Sprintf("%.3f", j.RBHU),
			fmt.Sprintf("%d", j.PrefSent),
			fmt.Sprintf("%d", j.PrefUsed),
			fmt.Sprintf("%d", j.PrefDropped),
			status,
		})
	}
	return header, rows
}
