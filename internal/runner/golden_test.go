package runner

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden sweep artifacts")

// goldenSpec is the paper-shaped comparison: FR-FCFS (demand-pref-equal)
// vs. APS vs. APS+APD (full PADC) on two fixed synthetic workload mixes —
// a prefetch-friendly one (swim+libquantum streams) and an unfriendly one
// (art+milc pointer/random traffic). The golden CSV pins every merged
// metric; any behavioral drift in the scheduler, prefetchers, or trace
// generators fails this test until the change is reviewed and the file
// regenerated with `go test ./internal/runner -run Golden -update`.
func goldenSpec() Spec {
	return Spec{
		Name:     "golden-frfcfs-aps-padc",
		Seed:     2008, // MICRO 2008
		Cores:    2,
		Insts:    12_000,
		Policies: []string{"equal", "aps", "padc"},
		Workloads: [][]string{
			{"swim", "libquantum"},
			{"art", "milc"},
		},
	}
}

func TestGoldenPolicyComparison(t *testing.T) {
	res, err := Run(goldenSpec(), Options{Workers: 2, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Failed(); n > 0 {
		t.Fatalf("%d golden jobs failed", n)
	}

	var csv, js bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "sweep_policies.csv", csv.Bytes())
	compareGolden(t, "sweep_policies.json", js.Bytes())
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to generate): %v", err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("%s drifted from golden artifact:\n%s\nrerun with -update if the change is intentional",
			name, firstDiff(string(want), string(got)))
	}
}
