package runner

import (
	"bytes"
	"testing"
)

// TestKernelArtifactIdentity runs the golden paper-shaped sweep under
// both simulation kernels (and different worker counts, for good
// measure) and requires byte-identical CSV and JSON artifacts: the
// kernel is a loop-strategy switch, never a results axis.
func TestKernelArtifactIdentity(t *testing.T) {
	render := func(kernel string, workers int) (csv, js []byte) {
		t.Helper()
		spec := goldenSpec()
		spec.Insts = 6_000
		spec.Kernel = kernel
		res, err := Run(spec, Options{Workers: workers, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		if n := res.Failed(); n > 0 {
			t.Fatalf("%d jobs failed under kernel %q", n, kernel)
		}
		var c, j bytes.Buffer
		if err := res.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		return c.Bytes(), j.Bytes()
	}

	eventsCSV, eventsJSON := render("events", 4)
	steppedCSV, steppedJSON := render("stepped", 1)
	defaultCSV, defaultJSON := render("", 2)

	if !bytes.Equal(eventsCSV, steppedCSV) {
		t.Errorf("CSV artifacts differ between kernels:\n%s", firstDiff(string(steppedCSV), string(eventsCSV)))
	}
	if !bytes.Equal(eventsJSON, steppedJSON) {
		t.Errorf("JSON artifacts differ between kernels:\n%s", firstDiff(string(steppedJSON), string(eventsJSON)))
	}
	if !bytes.Equal(eventsCSV, defaultCSV) || !bytes.Equal(eventsJSON, defaultJSON) {
		t.Error("empty kernel spelling is not the events default")
	}
}

// TestKernelSpecValidation pins the spec-level vocabulary: the kernel
// field accepts the two loop strategies, rejects anything else, and
// never leaks into job keys.
func TestKernelSpecValidation(t *testing.T) {
	spec := goldenSpec()
	spec.Kernel = "stepped"
	if err := spec.Validate(); err != nil {
		t.Fatalf("stepped kernel rejected: %v", err)
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if bytes.Contains([]byte(j.Key), []byte("kernel")) {
			t.Fatalf("job key %q leaks the kernel axis", j.Key)
		}
	}

	spec.Kernel = "warp"
	if err := spec.Validate(); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if _, err := ParseSpec([]byte(`{"mixes": 1, "kernel": "warp"}`)); err == nil {
		t.Fatal("ParseSpec accepted an unknown kernel")
	}
}
