package prefetch

// CDCConfig sizes the CZone/Delta-Correlation prefetcher (Nesbit et al.,
// PACT-13). The address space is statically partitioned into CZones;
// within a zone, the prefetcher keeps a small delta history and replays
// the deltas that followed the most recent earlier occurrence of the
// current delta pair.
type CDCConfig struct {
	Zones        int    // tracked zones (LRU replaced)
	CZoneLines   uint64 // zone size in cache lines (1024 lines = 64KB)
	HistoryDepth int    // deltas of history kept per zone
	Degree       int
}

// DefaultCDCConfig returns a 64-zone, 64KB-CZone, degree-4 configuration.
func DefaultCDCConfig() CDCConfig {
	return CDCConfig{Zones: 64, CZoneLines: 1024, HistoryDepth: 16, Degree: 4}
}

type cdcZone struct {
	zoneID   uint64
	lastAddr uint64
	deltas   []int64
	valid    bool
	lastUsed uint64
}

// CDC is the CZone/Delta-Correlation prefetcher.
type CDC struct {
	cfg   CDCConfig
	zones []cdcZone
	clock uint64
}

// NewCDC builds a C/DC prefetcher; zero fields fall back to defaults.
func NewCDC(cfg CDCConfig) *CDC {
	def := DefaultCDCConfig()
	if cfg.Zones == 0 {
		cfg.Zones = def.Zones
	}
	if cfg.CZoneLines == 0 {
		cfg.CZoneLines = def.CZoneLines
	}
	if cfg.HistoryDepth == 0 {
		cfg.HistoryDepth = def.HistoryDepth
	}
	if cfg.Degree == 0 {
		cfg.Degree = def.Degree
	}
	return &CDC{cfg: cfg, zones: make([]cdcZone, cfg.Zones)}
}

// Name implements Prefetcher.
func (c *CDC) Name() string { return "cdc" }

// SetAggressiveness implements Throttleable.
func (c *CDC) SetAggressiveness(degree int, _ uint64) {
	if degree > 0 {
		c.cfg.Degree = degree
	}
}

func (c *CDC) zone(id uint64) *cdcZone {
	c.clock++
	victim := 0
	for i := range c.zones {
		z := &c.zones[i]
		if z.valid && z.zoneID == id {
			z.lastUsed = c.clock
			return z
		}
		if !c.zones[victim].valid {
			continue
		}
		if !z.valid || z.lastUsed < c.zones[victim].lastUsed {
			victim = i
		}
	}
	c.zones[victim] = cdcZone{
		zoneID:   id,
		valid:    true,
		lastUsed: c.clock,
		deltas:   make([]int64, 0, c.cfg.HistoryDepth),
	}
	return &c.zones[victim]
}

// Observe implements Prefetcher. Only misses train and trigger C/DC, as
// the delta stream is defined over miss addresses.
func (c *CDC) Observe(ev AccessEvent, budget int) []uint64 {
	if !ev.Miss {
		return nil
	}
	z := c.zone(ev.LineAddr / c.cfg.CZoneLines)
	if z.lastAddr == 0 && len(z.deltas) == 0 {
		z.lastAddr = ev.LineAddr
		return nil
	}
	d := int64(ev.LineAddr) - int64(z.lastAddr)
	z.lastAddr = ev.LineAddr
	if d == 0 {
		return nil
	}
	if len(z.deltas) == c.cfg.HistoryDepth {
		copy(z.deltas, z.deltas[1:])
		z.deltas = z.deltas[:len(z.deltas)-1]
	}
	z.deltas = append(z.deltas, d)

	n := len(z.deltas)
	if n < 3 {
		return nil
	}
	// Correlate on the newest delta pair: find its most recent earlier
	// occurrence and replay the deltas that followed it.
	d1, d2 := z.deltas[n-2], z.deltas[n-1]
	match := -1
	for i := n - 3; i >= 1; i-- {
		if z.deltas[i-1] == d1 && z.deltas[i] == d2 {
			match = i
			break
		}
	}
	if match < 0 {
		return nil
	}
	deg := c.cfg.Degree
	if budget < deg {
		deg = budget
	}
	if deg <= 0 {
		return nil
	}
	out := make([]uint64, 0, deg)
	next := int64(ev.LineAddr)
	for i := match + 1; i < n && len(out) < deg; i++ {
		next += z.deltas[i]
		if next < 0 {
			break
		}
		out = append(out, uint64(next))
	}
	// If the replayed tail is shorter than the degree, wrap around the
	// matched pattern to keep issuing (the pattern is assumed periodic).
	for i := match - 1; len(out) < deg && i+2 < n; i++ {
		next += z.deltas[i+2]
		if next < 0 {
			break
		}
		out = append(out, uint64(next))
	}
	return out
}
