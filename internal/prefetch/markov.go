package prefetch

// MarkovConfig sizes the Markov prefetcher (Joseph & Grunwald, ISCA-24).
// The table records, per miss address, the miss addresses that followed
// it; a repeat miss prefetches the recorded successors.
type MarkovConfig struct {
	TableEntries int // direct-mapped correlation table entries
	Successors   int // successors remembered (and prefetched) per address
}

// DefaultMarkovConfig returns a 4096-entry, 2-successor table.
func DefaultMarkovConfig() MarkovConfig {
	return MarkovConfig{TableEntries: 4096, Successors: 2}
}

type markovEntry struct {
	tag   uint64
	succ  []uint64
	valid bool
}

// Markov is a correlation prefetcher over the miss-address stream. It
// exploits temporal rather than spatial correlation, so unlike the other
// prefetchers it can cover pointer chasing — but only for recurring miss
// sequences.
type Markov struct {
	cfg      MarkovConfig
	table    []markovEntry
	lastMiss uint64
	haveLast bool
}

// NewMarkov builds a Markov prefetcher; zero fields fall back to defaults.
func NewMarkov(cfg MarkovConfig) *Markov {
	def := DefaultMarkovConfig()
	if cfg.TableEntries == 0 {
		cfg.TableEntries = def.TableEntries
	}
	if cfg.Successors == 0 {
		cfg.Successors = def.Successors
	}
	return &Markov{cfg: cfg, table: make([]markovEntry, cfg.TableEntries)}
}

// Name implements Prefetcher.
func (m *Markov) Name() string { return "markov" }

func (m *Markov) slot(addr uint64) *markovEntry {
	return &m.table[hash64(addr)%uint64(len(m.table))]
}

// Observe implements Prefetcher. Both training and prediction operate on
// the miss stream only.
func (m *Markov) Observe(ev AccessEvent, budget int) []uint64 {
	if !ev.Miss {
		return nil
	}
	if m.haveLast {
		e := m.slot(m.lastMiss)
		if !e.valid || e.tag != m.lastMiss {
			*e = markovEntry{tag: m.lastMiss, valid: true, succ: make([]uint64, 0, m.cfg.Successors)}
		}
		seen := false
		for _, s := range e.succ {
			if s == ev.LineAddr {
				seen = true
				break
			}
		}
		if !seen {
			if len(e.succ) == m.cfg.Successors {
				// MRU insertion: shift out the oldest successor.
				copy(e.succ, e.succ[1:])
				e.succ = e.succ[:len(e.succ)-1]
			}
			e.succ = append(e.succ, ev.LineAddr)
		}
	}
	m.lastMiss, m.haveLast = ev.LineAddr, true

	e := m.slot(ev.LineAddr)
	if !e.valid || e.tag != ev.LineAddr || len(e.succ) == 0 {
		return nil
	}
	n := len(e.succ)
	if budget < n {
		n = budget
	}
	if n <= 0 {
		return nil
	}
	out := make([]uint64, n)
	copy(out, e.succ[:n])
	return out
}
