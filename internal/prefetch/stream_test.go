package prefetch

import "testing"

func observeAll(p Prefetcher, addr uint64, miss bool) []uint64 {
	return p.Observe(AccessEvent{LineAddr: addr, Miss: miss}, 1<<20)
}

func TestStreamTrainingAscending(t *testing.T) {
	s := NewStream(StreamConfig{})
	if got := observeAll(s, 1000, true); len(got) != 0 {
		t.Fatalf("allocation access should not prefetch: %v", got)
	}
	if got := observeAll(s, 1001, true); len(got) != 0 {
		t.Fatalf("first confirmation should not prefetch yet: %v", got)
	}
	got := observeAll(s, 1002, true)
	if len(got) != s.cfg.Degree {
		t.Fatalf("promotion should emit a full batch, got %v", got)
	}
	for i, a := range got {
		if a != 1003+uint64(i) {
			t.Fatalf("ramp should start right after demand: %v", got)
		}
	}
}

func TestStreamDescending(t *testing.T) {
	s := NewStream(StreamConfig{})
	observeAll(s, 5000, true)
	observeAll(s, 4999, true)
	got := observeAll(s, 4998, true)
	if len(got) == 0 || got[0] != 4997 {
		t.Fatalf("descending stream should prefetch downward: %v", got)
	}
}

func TestStreamPerfectCoverage(t *testing.T) {
	s := NewStream(StreamConfig{})
	issued := map[uint64]bool{}
	misses := 0
	for a := uint64(1000); a < 5000; a++ {
		miss := !issued[a]
		if miss {
			misses++
		}
		for _, c := range observeAll(s, a, miss) {
			issued[c] = true
		}
	}
	if misses > 10 {
		t.Fatalf("stream prefetcher loses coverage on a perfect stream: %d misses", misses)
	}
}

func TestStreamDistanceCap(t *testing.T) {
	s := NewStream(StreamConfig{Distance: 16})
	observeAll(s, 100, true)
	observeAll(s, 101, true)
	var issued []uint64
	// Hammer the same in-stream access: the prefetch pointer must not run
	// more than Distance ahead of the last demand.
	for i := 0; i < 50; i++ {
		issued = append(issued, observeAll(s, 102, false)...)
	}
	for _, a := range issued {
		if a > 102+16+1 {
			t.Fatalf("prefetch %d exceeds distance cap from demand 102", a)
		}
	}
}

func TestStreamBudgetBackpressure(t *testing.T) {
	s := NewStream(StreamConfig{})
	observeAll(s, 10, true)
	observeAll(s, 11, true) // one confirm
	got := s.Observe(AccessEvent{LineAddr: 12, Miss: true}, 2)
	if len(got) != 2 {
		t.Fatalf("budget 2 should emit 2, got %v", got)
	}
	// The pointer must not have skipped anything: the next emission
	// continues where the budget cut off.
	got2 := s.Observe(AccessEvent{LineAddr: 13, Miss: false}, 4)
	if len(got2) == 0 || got2[0] != got[len(got)-1]+1 {
		t.Fatalf("backpressure skipped lines: first=%v then=%v", got, got2)
	}
	if got3 := s.Observe(AccessEvent{LineAddr: 14, Miss: false}, 0); len(got3) != 0 {
		t.Fatalf("zero budget must emit nothing, got %v", got3)
	}
}

func TestStreamOverrunRestartsAhead(t *testing.T) {
	s := NewStream(StreamConfig{})
	observeAll(s, 10, true)
	observeAll(s, 11, true)
	s.Observe(AccessEvent{LineAddr: 12, Miss: true}, 0) // throttled: nothing issued
	// Demand overruns the prefetch pointer.
	got := observeAll(s, 20, true)
	if len(got) == 0 || got[0] != 21 {
		t.Fatalf("overrun should restart just ahead of demand: %v", got)
	}
}

func TestStreamLRUReplacement(t *testing.T) {
	s := NewStream(StreamConfig{Streams: 2})
	observeAll(s, 1000, true)
	observeAll(s, 2000, true)
	observeAll(s, 3000, true) // evicts LRU (1000)
	// Train the 3000 stream: it must have an entry.
	observeAll(s, 3001, true)
	got := observeAll(s, 3002, true)
	if len(got) == 0 {
		t.Fatalf("newest stream should have trained after replacement")
	}
}

func TestStreamSetAggressiveness(t *testing.T) {
	s := NewStream(StreamConfig{})
	s.SetAggressiveness(2, 8)
	if s.Config().Degree != 2 || s.Config().Distance != 8 {
		t.Fatalf("throttle not applied: %+v", s.Config())
	}
	observeAll(s, 10, true)
	observeAll(s, 11, true)
	if got := observeAll(s, 12, true); len(got) != 2 {
		t.Fatalf("degree 2 should emit 2: %v", got)
	}
}

func TestStreamHitsDoNotAllocate(t *testing.T) {
	s := NewStream(StreamConfig{Streams: 1})
	observeAll(s, 100, false) // a hit far from anything must not allocate
	if s.entries[0].state != streamInvalid {
		t.Fatal("cache hit allocated a stream entry")
	}
}
