package prefetch

import (
	"math/rand"
	"testing"
)

// dsEv builds a demand access for DSPatch tests.
func dsEv(line, pc uint64) AccessEvent {
	return AccessEvent{LineAddr: line, PC: pc, Miss: true}
}

// trainRegion walks DSPatch through one region's footprint: the first
// offset is the trigger, the rest accumulate.
func trainRegion(d *DSPatch, base, pc uint64, offs []uint64) []uint64 {
	out := d.Observe(dsEv(base+offs[0], pc), 64)
	for _, o := range offs[1:] {
		d.Observe(dsEv(base+o, pc), 64)
	}
	return out
}

func TestDSPatchLearnsAndPredicts(t *testing.T) {
	// One page-buffer entry so every new region trains the table with
	// the previous region's footprint immediately.
	d := NewDSPatch(DSPatchConfig{Pages: 1, SPTEntries: 16})
	pc := uint64(0x400)

	if got := trainRegion(d, 0, pc, []uint64{0, 1, 2, 3}); len(got) != 0 {
		t.Fatalf("cold signature should not prefetch: %v", got)
	}
	// Same trigger (PC, offset) in a new region: the learned footprint
	// should be replayed at the new base, minus the trigger line itself.
	got := d.Observe(dsEv(2*RegionLines, pc), 64)
	want := []uint64{2*RegionLines + 1, 2*RegionLines + 2, 2*RegionLines + 3}
	if len(got) != len(want) {
		t.Fatalf("predicted lines = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("predicted lines = %v, want %v", got, want)
		}
	}
	if d.Issued != 3 || d.CovPSelected != 1 {
		t.Fatalf("Issued=%d CovPSelected=%d, want 3/1", d.Issued, d.CovPSelected)
	}
}

func TestDSPatchBiasFollowsHeadroom(t *testing.T) {
	d := NewDSPatch(DSPatchConfig{Pages: 1, SPTEntries: 16})
	pc := uint64(0x400)
	offs := []uint64{0, 1, 2, 3}
	trainRegion(d, 0, pc, offs)
	trainRegion(d, 1*RegionLines, pc, offs) // trains {0,1,2,3}; CovP == AccP

	// Idle bus: coverage-biased pattern selected.
	d.SetBandwidthHeadroom(1)
	if got := trainRegion(d, 2*RegionLines, pc, offs); len(got) == 0 {
		t.Fatal("no prediction with idle bus")
	}
	if d.CovPSelected != 2 || d.AccPSelected != 0 {
		t.Fatalf("cov/acc selections = %d/%d, want 2/0", d.CovPSelected, d.AccPSelected)
	}

	// Saturated bus: the accuracy-biased pattern must take over. The
	// CovPromote override stays off because CovP's measured accuracy on
	// this perfectly regular stream is high, so pin it out of reach.
	d.cfg.CovPromote = 2
	d.SetBandwidthHeadroom(0)
	if got := trainRegion(d, 3*RegionLines, pc, offs); len(got) == 0 {
		t.Fatal("no prediction under pressure")
	}
	if d.AccPSelected != 1 {
		t.Fatalf("AccPSelected = %d, want 1", d.AccPSelected)
	}
}

func TestDSPatchCovPromoteOverridesPressure(t *testing.T) {
	d := NewDSPatch(DSPatchConfig{Pages: 1, SPTEntries: 16})
	pc := uint64(0x400)
	offs := []uint64{0, 1, 2, 3}
	// Two predicted regions whose footprints match exactly drive the
	// CovP meter to 1.0 (the trigger bit always hits).
	for r := uint64(0); r < 4; r++ {
		trainRegion(d, r*RegionLines, pc, offs)
	}
	if acc := d.CovAccuracy(); acc < 0.99 {
		t.Fatalf("CovAccuracy = %v, want ~1 on a regular stream", acc)
	}
	d.SetBandwidthHeadroom(0) // pressure — but CovP has earned trust
	trainRegion(d, 10*RegionLines, pc, offs)
	if d.AccPSelected != 0 {
		t.Fatalf("accurate CovP should be kept under pressure; AccPSelected=%d", d.AccPSelected)
	}
}

func TestDSPatchAccPReseedsAfterDecay(t *testing.T) {
	d := NewDSPatch(DSPatchConfig{Pages: 1, SPTEntries: 16, MinAccBits: 2})
	pc := uint64(0x400)
	// Disjoint footprints AND to just the trigger bit, under MinAccBits.
	trainRegion(d, 0, pc, []uint64{0, 1, 2})
	trainRegion(d, 1*RegionLines, pc, []uint64{0, 8, 9})
	trainRegion(d, 2*RegionLines, pc, []uint64{0}) // evicts + trains region 1
	e := &d.spt[d.signature(pc, 0)&d.sptMask]
	if e.accP != 1|1<<8|1<<9 {
		t.Fatalf("accP = %b, want reseed from latest footprint", e.accP)
	}
	if e.covP != 1|1<<1|1<<2|1<<8|1<<9 {
		t.Fatalf("covP = %b, want OR of both footprints", e.covP)
	}
}

func TestDSPatchBudgetAndZeroAddress(t *testing.T) {
	d := NewDSPatch(DSPatchConfig{Pages: 1, SPTEntries: 16})
	// Zero line address trains and triggers without underflow.
	trainRegion(d, 0, 0, []uint64{0, 1, 2, 3, 4, 5})
	got := d.Observe(dsEv(1*RegionLines, 0), 2)
	if len(got) != 2 {
		t.Fatalf("budget 2 should cap emission: %v", got)
	}
	// Budget 0 emits nothing but still records the trigger for training.
	d2 := NewDSPatch(DSPatchConfig{Pages: 1, SPTEntries: 16})
	trainRegion(d2, 0, 0, []uint64{0, 1, 2, 3})
	if got := d2.Observe(dsEv(1*RegionLines, 0), 0); got != nil {
		t.Fatalf("budget 0 must emit nothing: %v", got)
	}
	if d2.Issued != 0 || d2.CovPSelected != 0 {
		t.Fatal("budget-0 trigger must not count as a selection")
	}
}

func TestDSPatchPredictionsStayInRegion(t *testing.T) {
	d := NewDSPatch(DSPatchConfig{Pages: 2, SPTEntries: 16})
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		line := r.Uint64() % (512 * RegionLines)
		pc := uint64(r.Intn(8)) * 4
		for _, a := range d.Observe(dsEv(line, pc), 8) {
			if a/RegionLines != line/RegionLines {
				t.Fatalf("prefetch %d escaped trigger region of line %d", a, line)
			}
			if a == line {
				t.Fatalf("prefetched the trigger line %d", line)
			}
		}
	}
}

// FuzzDSPatchPatterns drives random access streams through the region
// table and checks the structural invariants: every emitted address
// stays inside the trigger's region and is never the trigger line,
// emission respects the budget, and the page buffer's region index
// round-trips (every map entry points at a valid entry for that region,
// every valid entry is indexed).
func FuzzDSPatchPatterns(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 64, 65, 66, 2, 3}, uint8(4))
	f.Add([]byte{255, 0, 255, 0, 128, 7}, uint8(0))
	f.Add([]byte{10, 10, 10}, uint8(255))
	f.Fuzz(func(t *testing.T, stream []byte, budget8 uint8) {
		d := NewDSPatch(DSPatchConfig{Pages: 4, SPTEntries: 16})
		budget := int(budget8 % 16)
		var line uint64
		for i, b := range stream {
			// Mix of local strides and region jumps from the raw bytes.
			if b&1 == 0 {
				line += uint64(b >> 1)
			} else {
				line = uint64(b) * 37 * RegionLines / 5
			}
			pc := uint64(b&0x0f) << 2
			out := d.Observe(dsEv(line, pc), budget)
			if len(out) > budget {
				t.Fatalf("step %d: emitted %d > budget %d", i, len(out), budget)
			}
			seen := map[uint64]bool{}
			for _, a := range out {
				if a/RegionLines != line/RegionLines {
					t.Fatalf("step %d: address %d outside region of %d", i, a, line)
				}
				if a == line {
					t.Fatalf("step %d: emitted the trigger line", i)
				}
				if seen[a] {
					t.Fatalf("step %d: duplicate address %d", i, a)
				}
				seen[a] = true
			}
			// Region-table round-trip.
			for region, idx := range d.pageIdx {
				if idx < 0 || idx >= len(d.pages) || !d.pages[idx].valid || d.pages[idx].region != region {
					t.Fatalf("step %d: pageIdx[%d]=%d inconsistent", i, region, idx)
				}
			}
			valid := 0
			for j := range d.pages {
				if d.pages[j].valid {
					valid++
					if got, ok := d.pageIdx[d.pages[j].region]; !ok || got != j {
						t.Fatalf("step %d: valid page %d not indexed", i, j)
					}
				}
			}
			if valid != len(d.pageIdx) {
				t.Fatalf("step %d: %d valid pages vs %d index entries", i, valid, len(d.pageIdx))
			}
		}
	})
}

func BenchmarkDSPatch(b *testing.B) {
	d := NewDSPatch(DSPatchConfig{})
	r := rand.New(rand.NewSource(1))
	lines := make([]uint64, 4096)
	pcs := make([]uint64, 4096)
	for i := range lines {
		base := uint64(r.Intn(64)) * RegionLines
		lines[i] = base + uint64(r.Intn(8))*3%RegionLines
		pcs[i] = uint64(r.Intn(16)) * 4
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(dsEv(lines[i%len(lines)], pcs[i%len(pcs)]), 8)
	}
}
