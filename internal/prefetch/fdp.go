package prefetch

// FDP implements Feedback Directed Prefetching (Srinath et al., HPCA-13):
// at every sampling interval it inspects the prefetcher's measured
// accuracy, lateness and cache-pollution and moves the wrapped
// prefetcher's aggressiveness up or down a five-level ladder.
//
// PADC's APD is compared against FDP in the paper's §6.12: FDP avoids
// generating useless prefetches, while APD drops them after generation and
// therefore never sacrifices useful ones during ramp-up.
type FDP struct {
	inner Prefetcher
	cfg   FDPConfig
	level int

	// Interval counters, maintained by the simulator via the Count* hooks.
	sent     uint64
	useful   uint64
	late     uint64
	polluted uint64

	// Pollution filter: a small Bloom filter of demand lines evicted by
	// prefetch fills; a demand miss that hits the filter counts as
	// pollution.
	bloom []uint64

	// Stats.
	LevelChanges uint64
}

// FDPLevel is one rung of the aggressiveness ladder.
type FDPLevel struct {
	Degree   int
	Distance uint64
}

// FDPConfig holds the thresholds and the ladder.
type FDPConfig struct {
	AccHigh    float64
	AccLow     float64
	LateThresh float64
	PollThresh float64
	Levels     []FDPLevel
	BloomBits  int
}

// DefaultFDPConfig returns the thresholds the paper tuned for its system:
// accuracy 90%/40%, lateness 1%, pollution 0.5%, 4Kbit pollution filter.
func DefaultFDPConfig() FDPConfig {
	return FDPConfig{
		AccHigh:    0.90,
		AccLow:     0.40,
		LateThresh: 0.01,
		PollThresh: 0.005,
		Levels: []FDPLevel{
			{Degree: 1, Distance: 4},
			{Degree: 1, Distance: 8},
			{Degree: 2, Distance: 16},
			{Degree: 4, Distance: 32},
			{Degree: 4, Distance: 64},
		},
		BloomBits: 4096,
	}
}

// NewFDP wraps a throttleable prefetcher. The initial level is the middle
// of the ladder, per the FDP paper.
func NewFDP(inner Prefetcher, cfg FDPConfig) *FDP {
	def := DefaultFDPConfig()
	if cfg.Levels == nil {
		cfg.Levels = def.Levels
	}
	if cfg.AccHigh == 0 {
		cfg.AccHigh = def.AccHigh
	}
	if cfg.AccLow == 0 {
		cfg.AccLow = def.AccLow
	}
	if cfg.LateThresh == 0 {
		cfg.LateThresh = def.LateThresh
	}
	if cfg.PollThresh == 0 {
		cfg.PollThresh = def.PollThresh
	}
	if cfg.BloomBits == 0 {
		cfg.BloomBits = def.BloomBits
	}
	f := &FDP{inner: inner, cfg: cfg, level: len(cfg.Levels) / 2}
	f.bloom = make([]uint64, (cfg.BloomBits+63)/64)
	f.apply()
	return f
}

// Name implements Prefetcher.
func (f *FDP) Name() string { return f.inner.Name() + "+fdp" }

// Observe implements Prefetcher.
func (f *FDP) Observe(ev AccessEvent, budget int) []uint64 { return f.inner.Observe(ev, budget) }

// Level returns the current aggressiveness rung (0 = least aggressive).
func (f *FDP) Level() int { return f.level }

func (f *FDP) apply() {
	if t, ok := f.inner.(Throttleable); ok {
		l := f.cfg.Levels[f.level]
		t.SetAggressiveness(l.Degree, l.Distance)
	}
}

// CountSent, CountUseful and CountLate are the per-interval feedback hooks
// the simulator calls as prefetches flow through the memory system. A
// "late" prefetch is one a demand caught while it was still in flight.
func (f *FDP) CountSent()   { f.sent++ }
func (f *FDP) CountUseful() { f.useful++ }
func (f *FDP) CountLate()   { f.late++ }

func (f *FDP) bloomIdx(lineAddr uint64) (word int, bit uint64) {
	h := hash64(lineAddr) % uint64(len(f.bloom)*64)
	return int(h / 64), uint64(1) << (h % 64)
}

// NoteEviction records that a prefetch fill evicted the given demand line.
func (f *FDP) NoteEviction(victimLine uint64) {
	w, b := f.bloomIdx(victimLine)
	f.bloom[w] |= b
}

// NoteDemandMiss checks a demand miss against the pollution filter.
func (f *FDP) NoteDemandMiss(lineAddr uint64) {
	w, b := f.bloomIdx(lineAddr)
	if f.bloom[w]&b != 0 {
		f.polluted++
		f.bloom[w] &^= b
	}
}

// EndInterval applies the FDP decision rules for the elapsed interval and
// resets the counters. demandMisses scales the pollution ratio.
func (f *FDP) EndInterval(demandMisses uint64) {
	if f.sent == 0 {
		return
	}
	acc := float64(f.useful) / float64(f.sent)
	lateness := float64(f.late) / float64(f.sent)
	pollution := 0.0
	if demandMisses > 0 {
		pollution = float64(f.polluted) / float64(demandMisses)
	}

	dir := 0
	switch {
	case pollution > f.cfg.PollThresh:
		dir = -1
	case acc >= f.cfg.AccHigh:
		if lateness > f.cfg.LateThresh {
			dir = 1
		}
	case acc >= f.cfg.AccLow:
		if lateness > f.cfg.LateThresh {
			dir = -1 // mid accuracy and late: throttle to improve timeliness
		}
	default:
		dir = -1
	}
	next := f.level + dir
	if next >= 0 && next < len(f.cfg.Levels) && next != f.level {
		f.level = next
		f.LevelChanges++
		f.apply()
	}
	f.sent, f.useful, f.late, f.polluted = 0, 0, 0, 0
}

// SetAggressiveness implements Throttleable so FDP composes under other
// wrappers, though normally FDP is the outermost controller.
func (f *FDP) SetAggressiveness(degree int, distance uint64) {
	if t, ok := f.inner.(Throttleable); ok {
		t.SetAggressiveness(degree, distance)
	}
}
