package prefetch

import (
	"testing"
	"testing/quick"
)

func TestStrideDetection(t *testing.T) {
	s := NewStride(StrideConfig{})
	pc := uint64(0x400)
	var got []uint64
	for i := uint64(0); i < 5; i++ {
		got = s.Observe(AccessEvent{LineAddr: 100 + 3*i, PC: pc, Miss: true}, 64)
	}
	if len(got) != 4 {
		t.Fatalf("confirmed stride should prefetch degree lines: %v", got)
	}
	for i, a := range got {
		if want := 100 + 3*4 + 3*uint64(i+1); a != want {
			t.Fatalf("stride target %d: got %d want %d", i, a, want)
		}
	}
}

func TestStrideRejectsIrregular(t *testing.T) {
	s := NewStride(StrideConfig{})
	addrs := []uint64{100, 107, 109, 150, 151, 300}
	for _, a := range addrs {
		if got := s.Observe(AccessEvent{LineAddr: a, PC: 7, Miss: true}, 64); len(got) != 0 {
			t.Fatalf("irregular pattern prefetched: %v", got)
		}
	}
}

func TestStrideSeparatesPCs(t *testing.T) {
	s := NewStride(StrideConfig{})
	// Interleave two PCs with different strides; both should confirm.
	var gotA, gotB []uint64
	for i := uint64(0); i < 5; i++ {
		gotA = s.Observe(AccessEvent{LineAddr: 10 + 2*i, PC: 1, Miss: true}, 64)
		gotB = s.Observe(AccessEvent{LineAddr: 1000 + 5*i, PC: 2, Miss: true}, 64)
	}
	if len(gotA) == 0 || len(gotB) == 0 {
		t.Fatalf("per-PC streams not detected: %v %v", gotA, gotB)
	}
	if gotA[0] != 10+2*4+2 || gotB[0] != 1000+5*4+5 {
		t.Fatalf("wrong stride targets: %v %v", gotA, gotB)
	}
}

func TestCDCDeltaCorrelation(t *testing.T) {
	c := NewCDC(CDCConfig{})
	// Repeating delta pattern +1,+1,+3 within one zone.
	deltas := []int64{1, 1, 3, 1, 1, 3, 1, 1}
	addr := uint64(5000)
	var got []uint64
	for _, d := range deltas {
		addr += uint64(d)
		got = c.Observe(AccessEvent{LineAddr: addr, Miss: true}, 64)
	}
	if len(got) == 0 {
		t.Fatal("periodic delta pattern not detected")
	}
	// After ...,1,1 the history predicts +3 next.
	if got[0] != addr+3 {
		t.Fatalf("first prediction should follow the pattern: got %d want %d", got[0], addr+3)
	}
}

func TestCDCZoneIsolation(t *testing.T) {
	c := NewCDC(CDCConfig{CZoneLines: 1024})
	// Accesses in different zones never correlate.
	for i := uint64(0); i < 8; i++ {
		if got := c.Observe(AccessEvent{LineAddr: i * 10_000, Miss: true}, 64); len(got) != 0 {
			t.Fatalf("cross-zone correlation: %v", got)
		}
	}
}

func TestCDCIgnoresHits(t *testing.T) {
	c := NewCDC(CDCConfig{})
	for i := uint64(0); i < 10; i++ {
		if got := c.Observe(AccessEvent{LineAddr: 100 + i, Miss: false}, 64); len(got) != 0 {
			t.Fatalf("hits trained C/DC: %v", got)
		}
	}
}

func TestMarkovLearnsSuccessors(t *testing.T) {
	m := NewMarkov(MarkovConfig{})
	seq := []uint64{10, 77, 10, 77, 10}
	var got []uint64
	for _, a := range seq {
		got = m.Observe(AccessEvent{LineAddr: a, Miss: true}, 64)
	}
	if len(got) != 1 || got[0] != 77 {
		t.Fatalf("markov should predict 77 after 10: %v", got)
	}
}

func TestMarkovMultipleSuccessors(t *testing.T) {
	m := NewMarkov(MarkovConfig{Successors: 2})
	for _, a := range []uint64{1, 2, 1, 3, 1} {
		m.Observe(AccessEvent{LineAddr: a, Miss: true}, 64)
	}
	got := m.Observe(AccessEvent{LineAddr: 1, Miss: true}, 64)
	if len(got) != 2 {
		t.Fatalf("both successors should be prefetched: %v", got)
	}
}

func TestMarkovBudget(t *testing.T) {
	m := NewMarkov(MarkovConfig{Successors: 2})
	for _, a := range []uint64{1, 2, 1, 3, 1} {
		m.Observe(AccessEvent{LineAddr: a, Miss: true}, 64)
	}
	if got := m.Observe(AccessEvent{LineAddr: 1, Miss: true}, 1); len(got) != 1 {
		t.Fatalf("budget 1 must cap output: %v", got)
	}
}

// fixedPF always proposes the same candidate: DDPF filtering is defined
// over recurring prefetch targets.
type fixedPF struct{ line uint64 }

func (f fixedPF) Name() string                      { return "fixed" }
func (f fixedPF) Observe(AccessEvent, int) []uint64 { return []uint64{f.line} }

func TestDDPFFiltersUseless(t *testing.T) {
	d := NewDDPF(fixedPF{line: 42}, DDPFConfig{})
	if got := d.Observe(AccessEvent{}, 64); len(got) != 1 {
		t.Fatalf("cold DDPF should pass prefetches: %v", got)
	}
	for i := 0; i < 4; i++ {
		d.Feedback(42, false)
	}
	if got := d.Observe(AccessEvent{}, 64); len(got) != 0 {
		t.Fatalf("persistently useless target should be filtered: %v", got)
	}
	if d.Filtered == 0 {
		t.Fatal("filter counter not incremented")
	}
	// Useful feedback rehabilitates the target.
	for i := 0; i < 4; i++ {
		d.Feedback(42, true)
	}
	if got := d.Observe(AccessEvent{}, 64); len(got) != 1 {
		t.Fatalf("rehabilitated target should pass: %v", got)
	}
}

func TestFDPThrottlesDown(t *testing.T) {
	inner := NewStream(StreamConfig{})
	f := NewFDP(inner, FDPConfig{})
	start := f.Level()
	// A low-accuracy interval must lower aggressiveness.
	for i := 0; i < 100; i++ {
		f.CountSent()
	}
	f.CountUseful()
	f.EndInterval(100)
	if f.Level() >= start {
		t.Fatalf("low accuracy should throttle down: %d -> %d", start, f.Level())
	}
}

func TestFDPRampsUpWhenAccurateAndLate(t *testing.T) {
	inner := NewStream(StreamConfig{})
	f := NewFDP(inner, FDPConfig{})
	start := f.Level()
	for i := 0; i < 100; i++ {
		f.CountSent()
		f.CountUseful()
	}
	for i := 0; i < 10; i++ {
		f.CountLate()
	}
	f.EndInterval(100)
	if f.Level() <= start {
		t.Fatalf("accurate+late should ramp up: %d -> %d", start, f.Level())
	}
}

func TestFDPPollutionThrottles(t *testing.T) {
	inner := NewStream(StreamConfig{})
	f := NewFDP(inner, FDPConfig{})
	start := f.Level()
	for i := 0; i < 100; i++ {
		f.CountSent()
		f.CountUseful()
	}
	// Heavy pollution despite perfect accuracy.
	for i := uint64(0); i < 50; i++ {
		f.NoteEviction(i)
		f.NoteDemandMiss(i)
	}
	f.EndInterval(100)
	if f.Level() >= start {
		t.Fatalf("pollution should throttle down: %d -> %d", start, f.Level())
	}
}

func TestBudgetNeverExceeded(t *testing.T) {
	mk := map[string]func() Prefetcher{
		"stream":  func() Prefetcher { return NewStream(StreamConfig{}) },
		"stride":  func() Prefetcher { return NewStride(StrideConfig{}) },
		"cdc":     func() Prefetcher { return NewCDC(CDCConfig{}) },
		"markov":  func() Prefetcher { return NewMarkov(MarkovConfig{}) },
		"ddpf":    func() Prefetcher { return NewDDPF(NewStream(StreamConfig{}), DDPFConfig{}) },
		"fdp":     func() Prefetcher { return NewFDP(NewStream(StreamConfig{}), FDPConfig{}) },
		"dspatch": func() Prefetcher { return NewDSPatch(DSPatchConfig{}) },
	}
	for name, ctor := range mk {
		p := ctor()
		f := func(addr uint16, miss bool, budget uint8) bool {
			b := int(budget % 8)
			got := p.Observe(AccessEvent{LineAddr: uint64(addr), PC: uint64(addr) % 7, Miss: miss}, b)
			return len(got) <= b
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s violates its budget: %v", name, err)
		}
	}
}

// TestZooEdgeCases sweeps every prefetcher in the zoo through the shared
// edge cases: a full prefetch queue (budget 0), a single free slot, the
// degree/budget cap under a large budget, and the zero line address. The
// properties are engine-independent: output length never exceeds the
// budget, a full queue emits nothing, one Observe never proposes
// duplicates, and the trigger line is never its own prefetch.
func TestZooEdgeCases(t *testing.T) {
	zoo := []struct {
		name string
		mk   func() Prefetcher
	}{
		{"stream", func() Prefetcher { return NewStream(StreamConfig{}) }},
		{"stride", func() Prefetcher { return NewStride(StrideConfig{}) }},
		{"cdc", func() Prefetcher { return NewCDC(CDCConfig{}) }},
		{"markov", func() Prefetcher { return NewMarkov(MarkovConfig{}) }},
		{"ddpf", func() Prefetcher { return NewDDPF(NewStream(StreamConfig{}), DDPFConfig{}) }},
		{"fdp", func() Prefetcher { return NewFDP(NewStream(StreamConfig{}), FDPConfig{}) }},
		// A 4-entry page buffer so the 3-stream drill below actually evicts
		// regions: eviction is what trains DSPatch's signature table.
		{"dspatch", func() Prefetcher { return NewDSPatch(DSPatchConfig{Pages: 4}) }},
	}
	// Enough regular traffic to confirm any engine's pattern detector:
	// three interleaved unit-stride streams, each crossing four 64-line
	// regions, replayed twice (Markov needs recurring successors; DSPatch
	// needs region turnover to train and a warm signature to predict).
	drill := func(visit func(ev AccessEvent)) {
		for pass := 0; pass < 2; pass++ {
			for i := uint64(0); i < 768; i++ {
				visit(AccessEvent{LineAddr: (i%3)*16384 + i/3, PC: 0x40 + i%3, Miss: true})
			}
		}
	}
	for _, z := range zoo {
		z := z
		t.Run(z.name+"/queue-full", func(t *testing.T) {
			p := z.mk()
			drill(func(ev AccessEvent) {
				if got := p.Observe(ev, 0); len(got) != 0 {
					t.Fatalf("budget 0 must suppress all prefetches, got %v", got)
				}
			})
		})
		t.Run(z.name+"/single-slot", func(t *testing.T) {
			p := z.mk()
			drill(func(ev AccessEvent) {
				if got := p.Observe(ev, 1); len(got) > 1 {
					t.Fatalf("budget 1 exceeded: %v", got)
				}
			})
		})
		t.Run(z.name+"/degree-cap", func(t *testing.T) {
			p := z.mk()
			confirmed := false
			drill(func(ev AccessEvent) {
				got := p.Observe(ev, 64)
				if len(got) > 64 {
					t.Fatalf("budget 64 exceeded: %d candidates", len(got))
				}
				seen := map[uint64]bool{}
				for _, a := range got {
					if a == ev.LineAddr {
						t.Fatalf("prefetcher proposed its own trigger line %d", a)
					}
					if seen[a] {
						t.Fatalf("duplicate candidate %d in one Observe", a)
					}
					seen[a] = true
				}
				if len(got) > 0 {
					confirmed = true
				}
			})
			if !confirmed {
				t.Fatal("regular streams never confirmed a prefetch")
			}
		})
		t.Run(z.name+"/zero-address", func(t *testing.T) {
			p := z.mk()
			// Line 0 as trigger, neighbor, and recurring successor: the
			// engines must treat it as an ordinary line, not a sentinel.
			for pass := 0; pass < 3; pass++ {
				for i := uint64(0); i < 8; i++ {
					got := p.Observe(AccessEvent{LineAddr: i, PC: 0x7, Miss: true}, 8)
					if len(got) > 8 {
						t.Fatalf("budget 8 exceeded at line %d: %v", i, got)
					}
				}
				got := p.Observe(AccessEvent{LineAddr: 0, PC: 0x7, Miss: true}, 8)
				if len(got) > 8 {
					t.Fatalf("budget 8 exceeded at line 0: %v", got)
				}
			}
		})
	}
}
