// Package prefetch implements the hardware prefetchers the PADC paper
// evaluates — the IBM POWER4/5-style stream prefetcher used for the main
// results, plus PC-based stride, CZone/Delta-Correlation (C/DC) and Markov
// prefetchers (§6.11) — and the two prefetch-control mechanisms PADC is
// compared against: Dynamic Data Prefetch Filtering (DDPF) and Feedback
// Directed Prefetching (FDP) (§6.12).
//
// A prefetcher observes every last-level-cache access of its core and
// returns candidate prefetch line addresses; the simulator deduplicates
// them against the cache and MSHRs and enters survivors into the memory
// request buffer.
package prefetch

// AccessEvent describes one last-level cache access as seen by a
// prefetcher.
type AccessEvent struct {
	LineAddr uint64
	PC       uint64
	Miss     bool
	Cycle    uint64
}

// Prefetcher is the common interface of all prefetch engines. Observe may
// return zero or more candidate prefetch line addresses for the access —
// never more than budget, which is how many prefetches the memory system
// can accept right now (free MSHR and request-buffer slots). Stateful
// prefetchers use the budget as backpressure: the stream prefetcher does
// not advance its prefetch pointer past lines it could not emit, so a full
// memory system makes prefetches late rather than silently skipped.
type Prefetcher interface {
	Name() string
	Observe(ev AccessEvent, budget int) []uint64
}

// Throttleable is implemented by prefetchers whose aggressiveness FDP can
// adjust at interval boundaries.
type Throttleable interface {
	SetAggressiveness(degree int, distance uint64)
}

// Nop is a prefetcher that never prefetches (the paper's "no prefetching"
// baseline).
type Nop struct{}

// Name implements Prefetcher.
func (Nop) Name() string { return "none" }

// Observe implements Prefetcher.
func (Nop) Observe(AccessEvent, int) []uint64 { return nil }

// hash64 is SplitMix64's finalizer; used wherever a prefetcher needs a
// cheap table index.
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
