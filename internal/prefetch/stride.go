package prefetch

// StrideConfig sizes the PC-based stride prefetcher (Baer & Chen).
type StrideConfig struct {
	TableEntries int
	Degree       int
	MinConfirm   int
}

// DefaultStrideConfig returns a 256-entry, degree-4 stride prefetcher.
func DefaultStrideConfig() StrideConfig {
	return StrideConfig{TableEntries: 256, Degree: 4, MinConfirm: 2}
}

type strideEntry struct {
	pcTag    uint64
	lastAddr uint64
	stride   int64
	confirms int
	valid    bool
}

// Stride detects constant-stride sequences per load PC and prefetches
// along the stride once the pattern has repeated MinConfirm times.
type Stride struct {
	cfg   StrideConfig
	table []strideEntry
}

// NewStride builds a stride prefetcher; zero fields fall back to defaults.
func NewStride(cfg StrideConfig) *Stride {
	def := DefaultStrideConfig()
	if cfg.TableEntries == 0 {
		cfg.TableEntries = def.TableEntries
	}
	if cfg.Degree == 0 {
		cfg.Degree = def.Degree
	}
	if cfg.MinConfirm == 0 {
		cfg.MinConfirm = def.MinConfirm
	}
	return &Stride{cfg: cfg, table: make([]strideEntry, cfg.TableEntries)}
}

// Name implements Prefetcher.
func (s *Stride) Name() string { return "stride" }

// SetAggressiveness implements Throttleable; distance is ignored since the
// stride table has no lookahead window.
func (s *Stride) SetAggressiveness(degree int, _ uint64) {
	if degree > 0 {
		s.cfg.Degree = degree
	}
}

// Observe implements Prefetcher.
func (s *Stride) Observe(ev AccessEvent, budget int) []uint64 {
	idx := hash64(ev.PC) % uint64(len(s.table))
	e := &s.table[idx]
	if !e.valid || e.pcTag != ev.PC {
		*e = strideEntry{pcTag: ev.PC, lastAddr: ev.LineAddr, valid: true}
		return nil
	}
	stride := int64(ev.LineAddr) - int64(e.lastAddr)
	e.lastAddr = ev.LineAddr
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.confirms < s.cfg.MinConfirm {
			e.confirms++
		}
	} else {
		e.stride = stride
		e.confirms = 1
		return nil
	}
	if e.confirms < s.cfg.MinConfirm {
		return nil
	}
	n := s.cfg.Degree
	if budget < n {
		n = budget
	}
	out := make([]uint64, 0, max(n, 0))
	next := int64(ev.LineAddr)
	for k := 0; k < n; k++ {
		next += stride
		if next < 0 {
			break
		}
		out = append(out, uint64(next))
	}
	return out
}
