package prefetch

import "math/bits"

// RegionLines is the spatial region DSPatch learns patterns over: 64
// cache lines (4KB at 64B lines — one physical page), so one region's
// footprint is a single 64-bit word.
const RegionLines = 64

// DSPatchConfig sizes the dual-spatial-pattern prefetcher.
type DSPatchConfig struct {
	Pages      int // active-region accumulation buffer entries
	SPTEntries int // signature pattern table entries (power of two)
	// HighHeadroom is the bandwidth-headroom fraction (1 = bus fully
	// idle) at or above which the coverage-biased pattern is selected.
	HighHeadroom float64
	// CovPromote selects CovP regardless of headroom once its measured
	// bit accuracy reaches this fraction: an accurate coverage pattern
	// costs nothing extra.
	CovPromote float64
	// MinAccBits floors the accuracy-biased pattern: when repeated
	// AND-merges thin AccP below this many bits it is reseeded from the
	// latest observation instead of decaying to the empty pattern.
	MinAccBits int
}

// DefaultDSPatchConfig returns the defaults: a 64-region page buffer,
// a 256-entry signature table, and the bias flip at 60% headroom. The
// flip point sits above this machine's bus-saturation knee — sustained
// full-load runs bottom out near 52–55% headroom (bank timing, not the
// data bus, is the limiter), so a 50% threshold would never engage.
func DefaultDSPatchConfig() DSPatchConfig {
	return DSPatchConfig{Pages: 64, SPTEntries: 256, HighHeadroom: 0.6, CovPromote: 0.85, MinAccBits: 2}
}

// pageEntry accumulates one active region's access bitmap between its
// trigger access and its eviction from the page buffer, when the
// observation trains the signature table.
type pageEntry struct {
	valid    bool
	region   uint64
	sig      uint64
	trigOff  uint
	pattern  uint64 // absolute line-offset bitmap of accesses seen
	predCov  uint64 // absolute bitmap CovP predicted at trigger (0 = none)
	predAcc  uint64 // ditto for AccP
	lastUsed uint64
}

// sptEntry is one signature's dual pattern pair, anchored at the trigger
// offset (bit 0 = the trigger line).
type sptEntry struct {
	valid bool
	tag   uint64
	covP  uint64 // coverage-biased: OR of every observed pattern
	accP  uint64 // accuracy-biased: AND of recent observed patterns
}

// meter is a decaying hit/total pair measuring one pattern's bit
// accuracy: predicted bits that a demand later touched over predicted
// bits. Halving both on overflow keeps it a recent-history estimate.
type meter struct{ good, pred uint64 }

func (m *meter) add(good, pred uint64) {
	m.good += good
	m.pred += pred
	if m.pred >= 1<<20 {
		m.good >>= 1
		m.pred >>= 1
	}
}

func (m *meter) value() float64 {
	if m.pred == 0 {
		return 0
	}
	return float64(m.good) / float64(m.pred)
}

// DSPatch is a dual-spatial-pattern prefetcher (Bera et al., MICRO 2019):
// per-region access bitmaps train a signature table holding two bit
// patterns per signature — a coverage-biased pattern (CovP, the OR of
// every observed footprint) and an accuracy-biased one (AccP, the AND of
// recent footprints, rotated to the trigger) — and the trigger-time
// selector picks between them on measured DRAM bandwidth headroom:
// coverage when the bus is idle, accuracy under pressure.
type DSPatch struct {
	cfg     DSPatchConfig
	pages   []pageEntry
	pageIdx map[uint64]int // region -> pages index
	spt     []sptEntry
	sptMask uint64
	clock   uint64

	headroom float64 // latest bandwidth-headroom sample (1 = idle)

	covMeter meter
	accMeter meter

	// Issued counts every candidate returned; CovPSelected/AccPSelected
	// count trigger accesses that emitted from each pattern (the
	// coverage/accuracy trade-off the abl-memside ablation reports).
	Issued       uint64
	CovPSelected uint64
	AccPSelected uint64
}

// NewDSPatch builds a DSPatch prefetcher; zero config fields fall back
// to the defaults. The headroom signal starts at 1 (idle bus), so a cold
// prefetcher is coverage-biased until the first sample arrives.
func NewDSPatch(cfg DSPatchConfig) *DSPatch {
	def := DefaultDSPatchConfig()
	if cfg.Pages <= 0 {
		cfg.Pages = def.Pages
	}
	if cfg.SPTEntries <= 0 {
		cfg.SPTEntries = def.SPTEntries
	}
	// Round the table up to a power of two so the signature mask is exact.
	n := 1
	for n < cfg.SPTEntries {
		n <<= 1
	}
	cfg.SPTEntries = n
	if cfg.HighHeadroom == 0 {
		cfg.HighHeadroom = def.HighHeadroom
	}
	if cfg.CovPromote == 0 {
		cfg.CovPromote = def.CovPromote
	}
	if cfg.MinAccBits == 0 {
		cfg.MinAccBits = def.MinAccBits
	}
	return &DSPatch{
		cfg:      cfg,
		pages:    make([]pageEntry, cfg.Pages),
		pageIdx:  make(map[uint64]int, cfg.Pages),
		spt:      make([]sptEntry, cfg.SPTEntries),
		sptMask:  uint64(cfg.SPTEntries - 1),
		headroom: 1,
	}
}

// Name implements Prefetcher.
func (d *DSPatch) Name() string { return "dspatch" }

// SetBandwidthHeadroom feeds the selector its input: the fraction of
// recent DRAM bus cycles that were idle (1 = free machine, 0 = saturated
// bus). The simulator samples it from the per-channel bus-busy counters
// at accuracy-interval boundaries.
func (d *DSPatch) SetBandwidthHeadroom(h float64) {
	if h < 0 {
		h = 0
	}
	if h > 1 {
		h = 1
	}
	d.headroom = h
}

// BandwidthHeadroom returns the latest headroom sample.
func (d *DSPatch) BandwidthHeadroom() float64 { return d.headroom }

// CovAccuracy returns the measured bit accuracy of the coverage-biased
// pattern (predicted bits later touched / predicted bits).
func (d *DSPatch) CovAccuracy() float64 { return d.covMeter.value() }

// AccAccuracy returns the measured bit accuracy of the accuracy-biased
// pattern.
func (d *DSPatch) AccAccuracy() float64 { return d.accMeter.value() }

// signature mixes the trigger PC and its in-region offset, the standard
// DSPatch trigger signature.
func (d *DSPatch) signature(pc uint64, off uint) uint64 {
	return hash64(pc<<6 | uint64(off))
}

// train folds an evicted region's observed footprint into its
// signature's dual patterns and scores the predictions made at trigger
// time against what the region actually touched.
func (d *DSPatch) train(p *pageEntry) {
	if !p.valid {
		return
	}
	if p.predCov != 0 {
		d.covMeter.add(uint64(bits.OnesCount64(p.predCov&p.pattern)), uint64(bits.OnesCount64(p.predCov)))
	}
	if p.predAcc != 0 {
		d.accMeter.add(uint64(bits.OnesCount64(p.predAcc&p.pattern)), uint64(bits.OnesCount64(p.predAcc)))
	}
	// Anchor the footprint at the trigger so patterns generalize across
	// regions entered at different offsets.
	obs := bits.RotateLeft64(p.pattern, -int(p.trigOff))
	e := &d.spt[p.sig&d.sptMask]
	if !e.valid || e.tag != p.sig {
		*e = sptEntry{valid: true, tag: p.sig, covP: obs, accP: obs}
		return
	}
	e.covP |= obs
	e.accP &= obs
	if bits.OnesCount64(e.accP) < d.cfg.MinAccBits {
		// The AND decayed below usefulness: reseed from the latest
		// footprint rather than predicting nothing forever.
		e.accP = obs
	}
}

// selectPattern picks the trigger-time prediction: the coverage-biased
// pattern when the bus has headroom (or has proven accurate anyway), the
// accuracy-biased one under pressure. Returns trigger-anchored patterns.
func (d *DSPatch) selectPattern(e *sptEntry) (sel uint64, fromCov bool) {
	useCov := d.headroom >= d.cfg.HighHeadroom || d.covMeter.value() >= d.cfg.CovPromote
	if useCov && e.covP != 0 {
		return e.covP, true
	}
	if e.accP != 0 {
		return e.accP, false
	}
	return e.covP, true
}

// Observe implements Prefetcher. Non-trigger accesses only accumulate
// the region footprint; the first access to a region (its trigger) looks
// up the signature table and emits the selected pattern's lines, bounded
// by budget.
func (d *DSPatch) Observe(ev AccessEvent, budget int) []uint64 {
	d.clock++
	region := ev.LineAddr / RegionLines
	off := uint(ev.LineAddr % RegionLines)

	if idx, ok := d.pageIdx[region]; ok {
		p := &d.pages[idx]
		p.pattern |= 1 << off
		p.lastUsed = d.clock
		return nil
	}

	// New region: evict the LRU accumulation entry, training the table
	// with its footprint, and allocate this region with off as trigger.
	victim := 0
	for i := range d.pages {
		if !d.pages[i].valid {
			victim = i
			break
		}
		if d.pages[i].lastUsed < d.pages[victim].lastUsed {
			victim = i
		}
	}
	if d.pages[victim].valid {
		d.train(&d.pages[victim])
		delete(d.pageIdx, d.pages[victim].region)
	}
	p := &d.pages[victim]
	*p = pageEntry{
		valid: true, region: region, trigOff: off,
		sig: d.signature(ev.PC, off), pattern: 1 << off, lastUsed: d.clock,
	}
	d.pageIdx[region] = victim

	e := &d.spt[p.sig&d.sptMask]
	if !e.valid || e.tag != p.sig {
		return nil // cold signature: learn first, predict next time
	}
	sel, fromCov := d.selectPattern(e)
	if sel == 0 {
		return nil
	}
	// De-anchor back to absolute offsets and record the prediction so
	// eviction can score it.
	abs := bits.RotateLeft64(sel, int(off))
	if fromCov {
		p.predCov = abs
	} else {
		p.predAcc = abs
	}
	if budget <= 0 {
		return nil
	}
	var out []uint64
	base := region * RegionLines
	counted := false
	for rest := abs &^ (1 << off); rest != 0 && len(out) < budget; rest &= rest - 1 {
		i := uint(bits.TrailingZeros64(rest))
		out = append(out, base+uint64(i))
		counted = true
	}
	if counted {
		if fromCov {
			d.CovPSelected++
		} else {
			d.AccPSelected++
		}
		d.Issued += uint64(len(out))
	}
	return out
}
