package prefetch

// DDPF implements Dynamic Data Prefetch Filtering (Zhuang & Lee): a
// two-level, gshare-style table of saturating counters records whether
// prefetches generated in a similar context were useful in the past, and
// filters new candidates predicted useless. The simulator feeds outcomes
// back through Feedback.
//
// The paper's §6.12 finding is that DDPF cuts traffic more than APD but
// also kills useful prefetches, so it trades performance for bandwidth.
type DDPF struct {
	inner     Prefetcher
	counters  []uint8
	threshold uint8
	maxCtr    uint8

	// Stats.
	Filtered uint64
	Passed   uint64
}

// DDPFConfig sizes the filter.
type DDPFConfig struct {
	TableEntries int
	Threshold    uint8 // pass a prefetch when its counter >= Threshold
}

// DefaultDDPFConfig returns the paper's tuned 4K-entry, 2-bit, threshold-3
// filter.
func DefaultDDPFConfig() DDPFConfig { return DDPFConfig{TableEntries: 4096, Threshold: 3} }

// NewDDPF wraps inner with a DDPF filter.
func NewDDPF(inner Prefetcher, cfg DDPFConfig) *DDPF {
	def := DefaultDDPFConfig()
	if cfg.TableEntries == 0 {
		cfg.TableEntries = def.TableEntries
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = def.Threshold
	}
	d := &DDPF{
		inner:     inner,
		counters:  make([]uint8, cfg.TableEntries),
		threshold: cfg.Threshold,
		maxCtr:    3,
	}
	// Start fully confident so cold prefetches flow until proven useless.
	for i := range d.counters {
		d.counters[i] = d.maxCtr
	}
	return d
}

// Name implements Prefetcher.
func (d *DDPF) Name() string { return d.inner.Name() + "+ddpf" }

// index hashes the prefetch target into the counter table. The hardware
// proposal indexes by load PC xor branch history; hashing the line address
// is the analog available at the prefetcher, and keeps prediction and
// training consistent for a given target.
func (d *DDPF) index(lineAddr uint64) uint64 {
	return hash64(lineAddr) % uint64(len(d.counters))
}

// Observe implements Prefetcher, dropping candidates whose history counter
// is below the threshold.
func (d *DDPF) Observe(ev AccessEvent, budget int) []uint64 {
	cands := d.inner.Observe(ev, budget)
	if len(cands) == 0 {
		return cands
	}
	out := cands[:0]
	for _, a := range cands {
		if d.counters[d.index(a)] >= d.threshold {
			out = append(out, a)
			d.Passed++
		} else {
			d.Filtered++
		}
	}
	return out
}

// Feedback trains the filter with the outcome of a serviced prefetch:
// useful prefetches strengthen their context, useless ones weaken it. The
// global history register folds in recent outcomes, giving the gshare-like
// second level.
func (d *DDPF) Feedback(lineAddr uint64, useful bool) {
	idx := d.index(lineAddr)
	if useful {
		if d.counters[idx] < d.maxCtr {
			d.counters[idx]++
		}
	} else if d.counters[idx] > 0 {
		d.counters[idx]--
	}
}

// SetAggressiveness forwards FDP-style throttling to the wrapped
// prefetcher when it supports it.
func (d *DDPF) SetAggressiveness(degree int, distance uint64) {
	if t, ok := d.inner.(Throttleable); ok {
		t.SetAggressiveness(degree, distance)
	}
}
