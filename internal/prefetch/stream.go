package prefetch

// StreamConfig sizes the stream prefetcher. Defaults follow the paper's
// baseline (Table 3): 32 streams, prefetch degree 4, prefetch distance
// (lookahead cap) 64 lines; training confirms a direction after two nearby
// accesses within 16 lines of the allocation address.
type StreamConfig struct {
	Streams   int
	Degree    int    // prefetches launched per in-stream access
	Distance  uint64 // max lines the prefetch pointer may run ahead of demand
	TrainDist uint64 // accesses this close to the allocation address train it
	TrainHits int    // confirmations needed to start prefetching
}

// DefaultStreamConfig returns the paper's baseline stream prefetcher.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{Streams: 32, Degree: 4, Distance: 64, TrainDist: 16, TrainHits: 2}
}

type streamState int

const (
	streamInvalid streamState = iota
	streamTraining
	streamMonitoring
)

type streamEntry struct {
	state    streamState
	start    int64 // allocation address S (line address)
	dir      int64 // +1 ascending, -1 descending
	confirms int
	last     int64 // most advanced in-stream demand seen
	next     int64 // next line the prefetcher will request
	lastUsed uint64
}

// Stream is an aggressive POWER4/5-style stream prefetcher. A new L2 miss
// not covered by an existing stream allocates an entry; nearby accesses
// establish a direction; once confirmed, every in-stream access launches
// up to Degree prefetches, ramping the prefetch pointer ahead of demand
// until it runs the full Distance lookahead ahead — so long streams get
// deep, accurate prefetching while dying streams strand at most Distance
// useless lines.
type Stream struct {
	cfg     StreamConfig
	entries []streamEntry
	clock   uint64

	// Issued counts every candidate returned; callers use it to reason
	// about dedup rates.
	Issued uint64
}

// NewStream builds a stream prefetcher with cfg; zero fields fall back to
// the defaults.
func NewStream(cfg StreamConfig) *Stream {
	def := DefaultStreamConfig()
	if cfg.Streams == 0 {
		cfg.Streams = def.Streams
	}
	if cfg.Degree == 0 {
		cfg.Degree = def.Degree
	}
	if cfg.Distance == 0 {
		cfg.Distance = def.Distance
	}
	if cfg.TrainDist == 0 {
		cfg.TrainDist = def.TrainDist
	}
	if cfg.TrainHits == 0 {
		cfg.TrainHits = def.TrainHits
	}
	return &Stream{cfg: cfg, entries: make([]streamEntry, cfg.Streams)}
}

// Name implements Prefetcher.
func (s *Stream) Name() string { return "stream" }

// SetAggressiveness implements Throttleable for FDP.
func (s *Stream) SetAggressiveness(degree int, distance uint64) {
	if degree > 0 {
		s.cfg.Degree = degree
	}
	if distance > 0 {
		s.cfg.Distance = distance
	}
}

// Config returns the current (possibly throttled) configuration.
func (s *Stream) Config() StreamConfig { return s.cfg }

// inStream reports whether a continues e's monitored stream: at most
// Distance behind the newest demand, and not beyond the prefetch pointer
// plus a small jump allowance.
func (e *streamEntry) inStream(a int64, dist int64) bool {
	behind := (e.last - a) * e.dir  // positive when a trails the stream
	forward := (a - e.last) * e.dir // positive when a advances the stream
	return behind <= dist && forward <= dist
}

// emit launches up to Degree prefetches (and never more than budget)
// without letting the prefetch pointer run more than Distance beyond the
// newest demand. The pointer only advances over emitted lines, so memory
// system backpressure delays prefetches instead of skipping them.
func (s *Stream) emit(e *streamEntry, budget int) []uint64 {
	n := s.cfg.Degree
	if budget < n {
		n = budget
	}
	if n <= 0 {
		return nil
	}
	out := make([]uint64, 0, n)
	for k := 0; k < n; k++ {
		if (e.next-e.last)*e.dir > int64(s.cfg.Distance) || e.next < 0 {
			break
		}
		out = append(out, uint64(e.next))
		e.next += e.dir
	}
	s.Issued += uint64(len(out))
	return out
}

// Observe implements Prefetcher.
func (s *Stream) Observe(ev AccessEvent, budget int) []uint64 {
	s.clock++
	a := int64(ev.LineAddr)

	// 1. An in-stream access advances the stream and launches the next
	// prefetch batch.
	for i := range s.entries {
		e := &s.entries[i]
		if e.state != streamMonitoring || !e.inStream(a, int64(s.cfg.Distance)) {
			continue
		}
		e.lastUsed = s.clock
		if (a-e.last)*e.dir > 0 {
			e.last = a
		}
		if (a-e.next)*e.dir >= 0 {
			// Demand overran the prefetcher (it was throttled or just
			// promoted); restart just ahead of demand.
			e.next = a + e.dir
		}
		return s.emit(e, budget)
	}

	// 2. Train an allocated entry whose start is close by.
	for i := range s.entries {
		e := &s.entries[i]
		if e.state != streamTraining {
			continue
		}
		d := a - e.start
		if d == 0 || d > int64(s.cfg.TrainDist) || d < -int64(s.cfg.TrainDist) {
			continue
		}
		e.lastUsed = s.clock
		if d > 0 {
			e.dir = 1
		} else {
			e.dir = -1
		}
		e.confirms++
		if e.confirms < s.cfg.TrainHits {
			return nil
		}
		e.state = streamMonitoring
		e.last = a
		e.next = a + e.dir
		return s.emit(e, budget)
	}

	// 3. A miss not belonging to any stream allocates a new entry,
	// replacing the least recently used one.
	if !ev.Miss {
		return nil
	}
	victim := 0
	for i := range s.entries {
		if s.entries[i].state == streamInvalid {
			victim = i
			break
		}
		if s.entries[i].lastUsed < s.entries[victim].lastUsed {
			victim = i
		}
	}
	s.entries[victim] = streamEntry{state: streamTraining, start: a, lastUsed: s.clock}
	return nil
}
