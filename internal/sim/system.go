package sim

import (
	"fmt"

	"padc/internal/cache"
	"padc/internal/core"
	"padc/internal/cpu"
	"padc/internal/dram"
	"padc/internal/dram/refresh"
	"padc/internal/memctrl"
	"padc/internal/memctrl/memsidepf"
	"padc/internal/prefetch"
	"padc/internal/stats"
	"padc/internal/telemetry"
	"padc/internal/telemetry/lifecycle"
	"padc/internal/topology"
	"padc/internal/workload"
)

// coreSpaceShift separates per-core address spaces: multiprogrammed
// workloads share no data, as in the paper's setup.
const coreSpaceShift = 44

// histBuckets matches Figure 4(a): nine 200-cycle service-time bins.
const histBuckets = 9

// dropEvery is the APD scan period: every dropEvery cycles the run loop
// sweeps waiting prefetches past their drop threshold out of the buffers.
const dropEvery = 128

// coreCtx bundles one active core with its private hierarchy and stats.
type coreCtx struct {
	id   int
	prof workload.Profile
	core *cpu.Core

	l1   *cache.Cache // nil when disabled
	l2   *cache.Cache // private or the shared LLC
	mshr *cache.MSHR  // ditto

	pf      prefetch.Prefetcher
	fdp     *prefetch.FDP    // non-nil when Filter == FilterFDP
	ddpf    *prefetch.DDPF   // non-nil when Filter == FilterDDPF
	dspatch *prefetch.DSPatch // non-nil when Prefetcher == PFDSPatch

	// Running counters (snapshotted into frozen when the core reaches its
	// instruction target).
	l2Demand      uint64
	l2Miss        uint64
	demandReqs    uint64
	prefSent      uint64
	prefUsed      uint64
	prefDropped   uint64
	prefServiced  uint64 // admitted prefetches DRAM completed (pure or promoted)
	prefInflight  uint64 // admitted prefetches currently buffered or in service
	intervalMiss  uint64
	busDemand     uint64
	busPrefPure   uint64 // serviced still-prefetch lines (usefulness pending)
	busPrefPromo  uint64 // serviced promoted prefetches (known useful)
	prefUsedAfter uint64 // pure-prefetch lines later consumed by a demand

	pfqDropped uint64 // prefetch candidates dropped at issue (resources full)

	frozen bool
	snap   stats.CoreResult
	// Traffic snapshot at freeze, so post-freeze execution (kept running
	// only to preserve contention) does not skew bus-traffic comparisons.
	snapBusDemand, snapBusPure, snapBusPromo, snapUsedAfter, snapDropped uint64
}

// System is one fully wired simulated machine. Controllers are kept as
// one flat slice in global channel order (domain 0's channels first) so
// the run loop, event aggregation and audits are topology-oblivious; the
// steering tables translate between global line addresses and per-domain
// controller state.
type System struct {
	cfg   Config
	padc  *core.PADC
	chans []*dram.Channel
	ctrls []*memctrl.Controller
	cores []*coreCtx

	// Topology wiring: compiled address steering, per-domain DRAM configs,
	// and per-global-channel domain/link lookups. A flat machine has one
	// domain, identity steering, and all-zero links.
	steer     *topology.Steering
	domCfg    []dram.Config
	chanOff   []int
	ctrlDom   []int
	ctrlLink  []uint64
	domThresh []func(r *memctrl.Request) uint64 // APD threshold bound per domain

	// Memory-side prefetch bookkeeping (nil map when the path is off):
	// lines a memory-side prefetch filled, awaiting their first demand
	// use, keyed by global line address with the filling domain as value.
	memsideLines map[uint64]int
	msServiced   uint64
	msUsed       uint64
	msDropped    uint64

	// Bandwidth-headroom tracking, enabled with dspatch or memside: per
	// global channel, 1 - bus-busy fraction over the last accuracy
	// interval (nil slices otherwise).
	headroom     []float64
	busPrev      []uint64
	lastInterval uint64

	// Per-domain service accounting (reported only on multi-domain runs).
	domServiced []uint64
	domRowHits  []uint64
	domPrefSent []uint64
	domPrefUsed []uint64

	cycle uint64

	// Global service accounting.
	serviced       uint64
	rowHits        uint64
	usefulServiced uint64
	usefulRowHits  uint64

	histUseful  []uint64
	histUseless []uint64
	pendingUse  map[uint64]uint64 // gline -> service time, usefulness unknown
	accTrace    []float64

	tel     *telemetry.Telemetry // nil when telemetry is disabled
	svcHist *telemetry.Histogram // dram/service_cycles (nil-safe)
	lc      *lifecycle.Tracer    // nil when span tracing is disabled

	// Run-loop bounds, kept as fields so nextEvent (and the lockstep
	// property tests replaying its decisions) sees the loop's live state.
	runMax       uint64
	dramEvery    uint64
	apdActive    bool
	nextSample   uint64
	nextRotate   uint64
	nextInterval uint64

	// Event-kernel accounting: jumps taken and cycles they covered.
	// Deliberately not part of stats.Results — results are identical
	// across kernels by contract.
	skips   uint64
	skipped uint64

	// onCycle, when non-nil, runs at the end of every executed cycle body
	// (test hook for the lockstep audit; nil costs one compare per cycle).
	onCycle func(now uint64)
}

// New builds a System from cfg.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg}

	topo := cfg.topo()
	names := make([]string, len(topo.Domains))
	for d, dom := range topo.Domains {
		names[d] = dom.Name
	}
	s.padc = core.NewTiered(names, cfg.Cores, cfg.PADC)
	steer, err := topo.Steering(cfg.DRAM.LinesPerRow())
	if err != nil {
		return nil, err
	}
	s.steer = steer

	// Each domain fronts its own DRAM config: the topology supplies the
	// channel count and optional timing part, the base config everything
	// else. A flat machine's single domain config equals cfg.DRAM exactly.
	s.domCfg = make([]dram.Config, len(topo.Domains))
	for d, dom := range topo.Domains {
		dc := cfg.DRAM
		dc.Channels = dom.Channels
		if dom.Timing != nil {
			dc.Timing = *dom.Timing
		}
		if err := dc.Validate(); err != nil {
			return nil, fmt.Errorf("sim: topology domain %q: %w", dom.Name, err)
		}
		s.domCfg[d] = dc
	}
	s.chanOff = topo.ChannelOffsets()
	nchan := topo.TotalChannels()

	s.chans = make([]*dram.Channel, nchan)
	s.ctrls = make([]*memctrl.Controller, nchan)
	s.ctrlDom = make([]int, nchan)
	s.ctrlLink = make([]uint64, nchan)
	s.domServiced = make([]uint64, len(topo.Domains))
	s.domRowHits = make([]uint64, len(topo.Domains))
	s.domPrefSent = make([]uint64, len(topo.Domains))
	s.domPrefUsed = make([]uint64, len(topo.Domains))
	s.domThresh = make([]func(r *memctrl.Request) uint64, len(topo.Domains))
	for d := range s.domThresh {
		d := d
		s.domThresh[d] = func(r *memctrl.Request) uint64 {
			if r.MemSide {
				return s.padc.MemSideDropThresholdIn(d)
			}
			return s.padc.DropThresholdIn(d, r.Core)
		}
	}
	stack, err := memctrl.ResolveStack(cfg.Policy, cfg.Rules)
	if err != nil {
		return nil, err
	}
	// Explicit rule stacks always see the PADC accuracy meter (rules that
	// never consult it simply ignore it); the legacy enum path keeps its
	// historical wiring of handing it only to the adaptive policies. Each
	// controller sees its own domain's view, so APS criticality follows
	// tier-local accuracy.
	wantState := cfg.Rules != "" || cfg.Policy == memctrl.APS || cfg.Policy == memctrl.APSRank
	if cfg.Flight != nil {
		cfg.Flight.Configure(nchan, cfg.DRAM.Banks)
		if len(topo.Domains) > 1 {
			chanDoms := make([]string, nchan)
			for d, dom := range topo.Domains {
				for lc := 0; lc < dom.Channels; lc++ {
					chanDoms[s.chanOff[d]+lc] = dom.Name
				}
			}
			cfg.Flight.LabelDomains(chanDoms)
		}
	}
	gi := 0
	for d, dom := range topo.Domains {
		dc := s.domCfg[d]
		var st memctrl.CoreState
		if wantState {
			st = s.padc.DomainView(d)
		}
		for lc := 0; lc < dom.Channels; lc++ {
			s.chans[gi] = dram.NewChannel(dc)
			s.ctrls[gi] = memctrl.NewStack(stack, s.chans[gi], cfg.BufferSlots, st)
			s.ctrls[gi].SetLinkLatency(dom.LinkCycles)
			s.ctrlDom[gi] = d
			s.ctrlLink[gi] = dom.LinkCycles
			if dc.Refresh.Enabled() {
				eng := refresh.NewEngine(dc.Refresh, dc.Banks)
				// The run loop ticks controllers every EffectiveTickEvery
				// cycles while they have work, so each Advance normally covers
				// exactly one tick period. The event kernel may skip across
				// provably-idle gaps; capping the delta at the period keeps the
				// first post-gap blocked-cycle charge identical to stepping.
				eng.CapDelta(dc.EffectiveTickEvery())
				s.ctrls[gi].AttachRefresh(eng)
			}
			if cfg.Flight != nil {
				s.ctrls[gi].AttachFlight(cfg.Flight, gi)
			}
			gi++
		}
	}

	var sharedL2 *cache.Cache
	var sharedMSHR *cache.MSHR
	if cfg.SharedL2 {
		sharedL2 = cache.New(cfg.L2)
		sharedMSHR = cache.NewMSHR(cfg.MSHR)
	}

	s.cores = make([]*coreCtx, len(cfg.Workload))
	for i, prof := range cfg.Workload {
		cc := &coreCtx{id: i, prof: prof}
		if cfg.L1.Bytes > 0 {
			cc.l1 = cache.New(cfg.L1)
		}
		if cfg.SharedL2 {
			cc.l2, cc.mshr = sharedL2, sharedMSHR
		} else {
			cc.l2 = cache.New(cfg.L2)
			cc.mshr = cache.NewMSHR(cfg.MSHR)
		}
		cc.pf = buildPrefetcher(cfg.Prefetcher)
		if ds, ok := cc.pf.(*prefetch.DSPatch); ok {
			cc.dspatch = ds
		}
		switch cfg.Filter {
		case FilterDDPF:
			cc.ddpf = prefetch.NewDDPF(cc.pf, prefetch.DDPFConfig{})
			cc.pf = cc.ddpf
		case FilterFDP:
			cc.fdp = prefetch.NewFDP(cc.pf, prefetch.FDPConfig{})
			cc.pf = cc.fdp
		}
		cc.core = cpu.New(i, cfg.Core, prof.Gen, s)
		if cfg.Profile {
			cc.core.EnableAccounting()
		}
		s.cores[i] = cc
	}
	s.lc = cfg.Lifecycle

	if cfg.MemSide {
		// Arm the per-tier memory-side accuracy meters before Instrument
		// so their gauges register, and give every controller its own
		// candidate engine: the gate consults the tier's PADC memory-side
		// accuracy, the filter dedupes against the originating core's
		// cache and outstanding misses.
		s.padc.TrackMemSide()
		s.memsideLines = make(map[uint64]int)
		for gi, ctrl := range s.ctrls {
			d := s.ctrlDom[gi]
			eng := memsidepf.New(memsidepf.Config{}, s.domCfg[d].LinesPerRow())
			eng.SetGate(func() bool { return s.padc.MemSideAllowIn(d) })
			eng.SetFilter(func(c int, line uint64) bool {
				cs := s.cores[c]
				return cs.l2.Contains(line) || cs.mshr.Lookup(line) != nil
			})
			ctrl.AttachMemSide(eng)
		}
	}
	if cfg.MemSide || cfg.Prefetcher == PFDSPatch {
		s.headroom = make([]float64, nchan)
		for i := range s.headroom {
			s.headroom[i] = 1 // cold machine: bus idle
		}
		s.busPrev = make([]uint64, nchan)
		// The flight recorder's bus_busy column rides the same gate, so
		// heatmaps from runs without the prefetch subsystem keep their
		// historical byte-identical format.
		if cfg.Flight != nil {
			for i := range s.chans {
				ch := s.chans[i]
				cfg.Flight.AttachBus(i, func() uint64 { return ch.BusBusyCycles })
			}
		}
	}

	if cfg.TrackServiceHist {
		s.histUseful = make([]uint64, histBuckets)
		s.histUseless = make([]uint64, histBuckets)
		s.pendingUse = make(map[uint64]uint64)
	}
	if cfg.Telemetry != nil {
		s.instrument(cfg.Telemetry)
	}
	return s, nil
}

// instrument registers every subsystem's metrics into tel. Registration
// happens once here; the hot paths touch telemetry only through
// preregistered handles and nil compares.
func (s *System) instrument(tel *telemetry.Telemetry) {
	s.tel = tel
	for i, ctrl := range s.ctrls {
		ctrl.Instrument(tel, i)
	}
	s.padc.Instrument(tel, func() uint64 { return s.cycle })

	tel.CounterFunc("sim/serviced", func() uint64 { return s.serviced })
	tel.CounterFunc("sim/row_hits", func() uint64 { return s.rowHits })
	tel.GaugeFunc("sim/row_hit_rate", func() float64 {
		if s.serviced == 0 {
			return 0
		}
		return float64(s.rowHits) / float64(s.serviced)
	})
	// Arrival-to-fill service time, the Figure 4(a) axis.
	s.svcHist = tel.Histogram("dram/service_cycles", []uint64{200, 400, 800, 1600, 3200})

	// Bandwidth-headroom and memory-side series exist only when those
	// paths are on, keeping the baseline metric namespace unchanged.
	if s.headroom != nil {
		for i := range s.ctrls {
			i := i
			tel.GaugeFunc(fmt.Sprintf("memctrl%d/bw_headroom", i), func() float64 { return s.headroom[i] })
		}
	}
	if s.memsideLines != nil {
		tel.CounterFunc("sim/memside_serviced", func() uint64 { return s.msServiced })
		tel.CounterFunc("sim/memside_used", func() uint64 { return s.msUsed })
		tel.CounterFunc("sim/memside_dropped", func() uint64 { return s.msDropped })
	}

	// Per-domain series exist only on multi-tier machines, so flat runs
	// keep the exact pre-topology metric namespace.
	if topo := s.steer.Topology(); len(topo.Domains) > 1 {
		for d := range topo.Domains {
			d := d
			pre := "dom/" + topo.Domains[d].Name
			tel.CounterFunc(pre+"/serviced", func() uint64 { return s.domServiced[d] })
			tel.CounterFunc(pre+"/row_hits", func() uint64 { return s.domRowHits[d] })
			tel.CounterFunc(pre+"/pref_sent", func() uint64 { return s.domPrefSent[d] })
			tel.CounterFunc(pre+"/pref_used", func() uint64 { return s.domPrefUsed[d] })
		}
	}

	for _, cs := range s.cores {
		cs := cs
		pre := fmt.Sprintf("core%d", cs.id)
		tel.CounterFunc(pre+"/retired", func() uint64 { return cs.core.Retired })
		tel.CounterFunc(pre+"/l2_misses", func() uint64 { return cs.l2Miss })
		tel.CounterFunc(pre+"/pref_sent", func() uint64 { return cs.prefSent })
		tel.CounterFunc(pre+"/pref_used", func() uint64 { return cs.prefUsed })
		tel.CounterFunc(pre+"/pref_dropped", func() uint64 { return cs.prefDropped })
		tel.CounterFunc(pre+"/mshr_stalls", func() uint64 { return cs.mshr.FullStalls })
		tel.CounterFunc(pre+"/mshr_stalls_demand", func() uint64 { return cs.mshr.FullStallsDemand })
		tel.CounterFunc(pre+"/mshr_stalls_pref", func() uint64 { return cs.mshr.FullStallsPref })
		tel.GaugeFunc(pre+"/mshr_occupancy", func() float64 { return float64(cs.mshr.Len()) })
		if acct := cs.core.Account(); acct != nil {
			// Per-epoch deltas of these expose stall phases in the series.
			for k := cpu.CycleClass(0); k < cpu.NumCycleClasses; k++ {
				k := k
				tel.CounterFunc(fmt.Sprintf("%s/cycles_%s", pre, k), func() uint64 { return acct[k] })
			}
		}
		tel.GaugeFunc(pre+"/ipc", func() float64 {
			if s.cycle == 0 {
				return 0
			}
			return float64(cs.core.Retired) / float64(s.cycle)
		})
	}
}

func buildPrefetcher(kind PrefetcherKind) prefetch.Prefetcher {
	switch kind {
	case PFStream:
		return prefetch.NewStream(prefetch.StreamConfig{})
	case PFStride:
		return prefetch.NewStride(prefetch.StrideConfig{})
	case PFCDC:
		return prefetch.NewCDC(prefetch.CDCConfig{})
	case PFMarkov:
		return prefetch.NewMarkov(prefetch.MarkovConfig{})
	case PFDSPatch:
		return prefetch.NewDSPatch(prefetch.DSPatchConfig{})
	default:
		return prefetch.Nop{}
	}
}

// coreOffset decorrelates per-core address spaces: without it, identical
// applications on different cores would walk the same bank/column sequence
// in lockstep (real processes differ in physical page placement). The
// offset is added below the core-id bits, preserving spatial contiguity.
func coreOffset(coreID int) uint64 {
	x := uint64(coreID) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x & (1<<coreSpaceShift - 1)
}

func gline(coreID int, line uint64) uint64 {
	return uint64(coreID)<<coreSpaceShift | (line+coreOffset(coreID))&(1<<coreSpaceShift-1)
}

func (s *System) ctrlFor(a dram.Address) *memctrl.Controller { return s.ctrls[a.Channel] }

// mapLine steers a global line address to its owning domain and maps it
// through that domain's DRAM config, returning a machine-global address
// (Channel is the global channel index). On a flat machine steering is
// the identity and this is exactly cfg.DRAM.Map.
func (s *System) mapLine(g uint64) dram.Address {
	d, local := s.steer.Steer(g)
	a := s.domCfg[d].Map(local)
	a.Channel += s.chanOff[d]
	return a
}

// domainOfLine returns the memory domain a global line address steers to.
func (s *System) domainOfLine(g uint64) int {
	d, _ := s.steer.Steer(g)
	return d
}

// Load implements cpu.Memory: the demand-load path through L1, the
// last-level cache, MSHRs and the memory request buffer. Statistics and
// prefetcher training fire only on a load's first attempt; retries after a
// resource-full rejection re-walk the hierarchy silently.
func (s *System) Load(coreID int, seq, line, pc uint64, runahead bool, now uint64, firstTry bool) cpu.LoadResult {
	cs := s.cores[coreID]
	g := gline(coreID, line)

	if cs.l1 != nil {
		if cs.l1.Access(g).Hit {
			return cpu.LoadResult{ReadyAt: now + s.cfg.L1.HitCycles}
		}
	}

	info := cs.l2.Access(g)
	if info.Hit {
		if firstTry {
			cs.l2Demand++
		}
		if info.WasPrefetch {
			// A memory-side fill's consumption credits the tier's meter,
			// not any core's: the controller sent it, not a core engine.
			if d, ok := s.memsideLines[g]; ok {
				delete(s.memsideLines, g)
				s.msUsed++
				s.padc.NoteMemSideUsed(d)
			} else {
				s.noteUseful(cs, g, info.FillRowHit, false)
			}
		}
		if cs.l1 != nil {
			cs.l1.Fill(g, false, false)
		}
		if firstTry {
			s.observe(cs, prefetch.AccessEvent{LineAddr: g, PC: pc, Miss: false, Cycle: now}, now)
		}
		return cpu.LoadResult{ReadyAt: now + s.cfg.L2.HitCycles}
	}

	// Last-level miss. A merge with an outstanding demand fill is the L1
	// MSHR's job in real hardware: it neither re-counts the miss nor
	// retrains the prefetcher.
	if e := cs.mshr.Lookup(g); e != nil && !e.Prefetch {
		e.Waiters = append(e.Waiters, cache.Waiter{Core: coreID, Seq: seq})
		return cpu.LoadResult{Pending: true}
	}

	if firstTry {
		cs.l2Demand++
		cs.l2Miss++
		cs.intervalMiss++
		if cs.fdp != nil {
			cs.fdp.NoteDemandMiss(g)
		}
		s.observe(cs, prefetch.AccessEvent{LineAddr: g, PC: pc, Miss: true, Cycle: now}, now)
	}

	if e := cs.mshr.Lookup(g); e != nil {
		// The demand caught an in-flight prefetch: promote it to demand
		// criticality; it counts as useful (§4.1, footnote 9).
		if e.Prefetch {
			e.Prefetch = false
			addr := s.mapLine(g)
			s.ctrlFor(addr).MatchPrefetch(coreID, g, now)
			s.noteUseful(cs, g, false, true)
		}
		e.Waiters = append(e.Waiters, cache.Waiter{Core: coreID, Seq: seq})
		return cpu.LoadResult{Pending: true}
	}

	if cs.mshr.Full() {
		if firstTry {
			cs.mshr.NoteFullStall(false)
			if s.tel != nil {
				s.tel.Emit(telemetry.Event{
					Cycle: now, Kind: telemetry.EvMSHRStall,
					Core: int16(coreID), Chan: -1, Bank: -1, Line: g,
				})
			}
		}
		return cpu.LoadResult{Retry: true}
	}
	addr := s.mapLine(g)
	req := &memctrl.Request{
		Core: coreID, Line: g, Addr: addr,
		Runahead: runahead, Arrival: now,
	}
	if !s.ctrlFor(addr).Enqueue(req) {
		return cpu.LoadResult{Retry: true}
	}
	e := cs.mshr.Allocate(g, false)
	if e == nil {
		// Cannot happen after the Full check, but stay safe.
		return cpu.LoadResult{Retry: true}
	}
	e.Waiters = append(e.Waiters, cache.Waiter{Core: coreID, Seq: seq})
	cs.demandReqs++
	return cpu.LoadResult{Pending: true}
}

// noteUseful books one useful prefetch for the core. For a line already in
// the cache, fillRowHit feeds RBHU; for a promotion the row-hit status is
// accounted at service completion instead.
func (s *System) noteUseful(cs *coreCtx, g uint64, fillRowHit, promotion bool) {
	cs.prefUsed++
	d := s.domainOfLine(g)
	s.padc.NoteUsed(d, cs.id)
	s.domPrefUsed[d]++
	if cs.fdp != nil {
		cs.fdp.CountUseful()
		if promotion {
			cs.fdp.CountLate()
		}
	}
	if cs.ddpf != nil {
		cs.ddpf.Feedback(g, true)
	}
	if !promotion {
		cs.prefUsedAfter++
		s.usefulServiced++
		if fillRowHit {
			s.usefulRowHits++
		}
		if s.pendingUse != nil {
			if t, ok := s.pendingUse[g]; ok {
				s.histUseful[histBucket(t)]++
				delete(s.pendingUse, g)
			}
		}
	}
}

// prefetchBudget returns how many prefetches the memory system can accept
// from this core right now: free MSHR entries and free request-buffer
// slots (summed across controllers) both bound it. Passing this to the
// prefetcher lets stateful engines apply backpressure instead of losing
// lines.
func (s *System) prefetchBudget(cs *coreCtx) int {
	b := cs.mshr.Capacity() - cs.mshr.Len()
	free := 0
	for _, ctrl := range s.ctrls {
		free += s.cfg.BufferSlots - ctrl.Occupancy()
	}
	if free < b {
		b = free
	}
	return b
}

// observe feeds the core's prefetcher and issues its candidates into the
// memory system. Candidates that race with a concurrent fill (already in
// cache or outstanding) are silently absorbed; a candidate that still
// cannot enter (e.g. its channel's buffer is the full one) is dropped, the
// paper's coverage-loss-under-full-buffer behavior (§6.1).
func (s *System) observe(cs *coreCtx, ev prefetch.AccessEvent, now uint64) {
	for _, cand := range cs.pf.Observe(ev, s.prefetchBudget(cs)) {
		if cs.l2.Contains(cand) || cs.mshr.Lookup(cand) != nil {
			continue // already present or outstanding
		}
		if cs.mshr.Full() {
			cs.mshr.NoteFullStall(true)
			cs.pfqDropped++
			continue
		}
		addr := s.mapLine(cand)
		ctrl := s.ctrlFor(addr)
		req := &memctrl.Request{
			Core: cs.id, Line: cand, Addr: addr,
			Prefetch: true, WasPref: true, Arrival: now,
		}
		if !ctrl.Enqueue(req) {
			cs.pfqDropped++
			continue
		}
		cs.mshr.Allocate(cand, true)
		cs.prefSent++
		cs.prefInflight++
		d := s.ctrlDom[addr.Channel]
		s.padc.NoteSent(d, cs.id)
		s.domPrefSent[d]++
		if cs.fdp != nil {
			cs.fdp.CountSent()
		}
	}
}

func histBucket(t uint64) int {
	b := int(t / 200)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// rowOutcome lowers a dram.RowState onto the lifecycle mirror type.
func rowOutcome(st dram.RowState) lifecycle.RowOutcome {
	switch st {
	case dram.RowHit:
		return lifecycle.RowHit
	case dram.RowClosed:
		return lifecycle.RowClosed
	default:
		return lifecycle.RowConflict
	}
}

// span assembles the lifecycle record of a serviced request from the
// stage stamps the controller left on it.
func (s *System) span(r *memctrl.Request, class lifecycle.Class) lifecycle.Span {
	// FinishAt includes the domain's link delay; the bus transfer happened
	// before the request went onto the link, at that domain's burst width.
	busStart := r.FinishAt
	if link := s.ctrlLink[r.Addr.Channel]; busStart > link {
		busStart -= link
	}
	if burst := s.domCfg[s.ctrlDom[r.Addr.Channel]].Timing.Burst; busStart > burst {
		busStart -= burst
	}
	return lifecycle.Span{
		Enqueue: r.Arrival, Promote: r.PromotedAt, Issue: r.ServiceAt,
		Bus: busStart, Finish: r.FinishAt,
		Line: r.Line, Class: class, Row: rowOutcome(r.RowState),
		Core: int16(r.Core), Chan: int16(r.Addr.Channel), Bank: int16(r.Addr.Bank),
	}
}

// complete retires one serviced DRAM request back into the hierarchy.
func (s *System) complete(r *memctrl.Request, now uint64) {
	if r.MemSide {
		s.completeMemSide(r)
		return
	}
	cs := s.cores[r.Core]
	s.serviced++
	d := s.ctrlDom[r.Addr.Channel]
	s.domServiced[d]++
	if r.IssueHit {
		s.rowHits++
		s.domRowHits[d]++
	}
	if r.WasPref {
		cs.prefServiced++
		cs.prefInflight--
	}
	svc := r.FinishAt - r.Arrival
	if s.tel != nil {
		s.svcHist.Observe(svc)
		s.tel.Emit(telemetry.Event{
			Cycle: r.ServiceAt, Kind: telemetry.EvComplete, Pref: r.Prefetch,
			Core: int16(r.Core), Chan: int16(r.Addr.Channel), Bank: int16(r.Addr.Bank),
			Line: r.Line, A: r.FinishAt - r.ServiceAt,
		})
	}
	if s.lc != nil {
		class := lifecycle.ClassDemand
		switch {
		case !r.WasPref:
		case !r.Prefetch:
			class = lifecycle.ClassPrefUseful
		default:
			class = lifecycle.ClassPrefPure
		}
		s.lc.Record(s.span(r, class))
	}

	switch {
	case !r.WasPref:
		cs.busDemand++
		s.usefulServiced++
		if r.IssueHit {
			s.usefulRowHits++
		}
	case !r.Prefetch: // promoted prefetch: known useful
		cs.busPrefPromo++
		s.usefulServiced++
		if r.IssueHit {
			s.usefulRowHits++
		}
		if s.histUseful != nil {
			s.histUseful[histBucket(svc)]++
		}
	default: // still a prefetch: usefulness resolves later
		cs.busPrefPure++
		if s.pendingUse != nil {
			s.pendingUse[r.Line] = svc
		}
	}

	ev := cs.l2.Fill(r.Line, r.Prefetch, r.IssueHit)
	if ev.Valid {
		if _, ms := s.memsideLines[ev.LineAddr]; ms {
			// An unused memory-side fill aged out of the cache: no core
			// engine issued it, so no core-side feedback fires.
			delete(s.memsideLines, ev.LineAddr)
		} else if ev.WasPrefetch {
			if cs.ddpf != nil {
				cs.ddpf.Feedback(ev.LineAddr, false)
			}
			if s.pendingUse != nil {
				if t, ok := s.pendingUse[ev.LineAddr]; ok {
					s.histUseless[histBucket(t)]++
					delete(s.pendingUse, ev.LineAddr)
				}
			}
		} else if r.Prefetch && cs.fdp != nil {
			cs.fdp.NoteEviction(ev.LineAddr)
		}
	}

	if e := cs.mshr.Lookup(r.Line); e != nil {
		if len(e.Waiters) > 0 && cs.l1 != nil {
			cs.l1.Fill(r.Line, false, false)
		}
		for _, w := range e.Waiters {
			s.cores[w.Core].core.Complete(w.Seq, r.FinishAt)
		}
		cs.mshr.Release(r.Line)
	}
}

// completeMemSide retires a serviced memory-side prefetch: a DRAM
// service and an L2 fill for the originating core, but no MSHR entry
// and no core-side prefetch conservation — no core ever sent this
// request, so the core-side PrefSent/Serviced/Inflight identity never
// sees it. The tier's memory-side meter books the send here, at the
// request's terminal event, pairing with NoteMemSideUsed on first use.
func (s *System) completeMemSide(r *memctrl.Request) {
	cs := s.cores[r.Core]
	s.serviced++
	d := s.ctrlDom[r.Addr.Channel]
	s.domServiced[d]++
	if r.IssueHit {
		s.rowHits++
		s.domRowHits[d]++
	}
	s.msServiced++
	s.padc.NoteMemSideSent(d)
	if s.tel != nil {
		s.svcHist.Observe(r.FinishAt - r.Arrival)
		s.tel.Emit(telemetry.Event{
			Cycle: r.ServiceAt, Kind: telemetry.EvComplete, Pref: true,
			Core: int16(r.Core), Chan: int16(r.Addr.Channel), Bank: int16(r.Addr.Bank),
			Line: r.Line, A: r.FinishAt - r.ServiceAt,
		})
	}
	if s.lc != nil {
		s.lc.Record(s.span(r, lifecycle.ClassPrefPure))
	}

	ev := cs.l2.Fill(r.Line, true, r.IssueHit)
	if ev.Valid {
		if _, ms := s.memsideLines[ev.LineAddr]; ms {
			delete(s.memsideLines, ev.LineAddr)
		} else if ev.WasPrefetch {
			if cs.ddpf != nil {
				cs.ddpf.Feedback(ev.LineAddr, false)
			}
			if s.pendingUse != nil {
				if t, ok := s.pendingUse[ev.LineAddr]; ok {
					s.histUseless[histBucket(t)]++
					delete(s.pendingUse, ev.LineAddr)
				}
			}
		}
	}
	s.memsideLines[r.Line] = d

	// A demand already waiting on this line is satisfied by the fill; a
	// core-side prefetch entry keeps its own accounting and is left alone
	// (its request completes against an already-filled line, harmlessly).
	if e := cs.mshr.Lookup(r.Line); e != nil && !e.Prefetch {
		if len(e.Waiters) > 0 && cs.l1 != nil {
			cs.l1.Fill(r.Line, false, false)
		}
		for _, w := range e.Waiters {
			s.cores[w.Core].core.Complete(w.Seq, r.FinishAt)
		}
		cs.mshr.Release(r.Line)
	}
}

// dropExpired runs the APD scan over every controller, each judged by its
// own domain's drop thresholds.
func (s *System) dropExpired(now uint64) {
	for i, ctrl := range s.ctrls {
		if ctrl.Pending() == 0 {
			continue
		}
		d := s.ctrlDom[i]
		for _, r := range ctrl.DropExpired(now, s.domThresh[d]) {
			if r.MemSide {
				// No MSHR entry to release and no core-side conservation:
				// the drop is a terminal event on the tier's own stream.
				s.msDropped++
				s.padc.NoteMemSideSent(d)
			} else {
				cs := s.cores[r.Core]
				cs.mshr.Release(r.Line)
				cs.prefDropped++
				cs.prefInflight--
			}
			if s.lc != nil {
				s.lc.Record(lifecycle.Span{
					Enqueue: r.Arrival, Finish: now,
					Line: r.Line, Class: lifecycle.ClassDropped, Row: lifecycle.RowNone,
					Core: int16(r.Core), Chan: int16(r.Addr.Channel), Bank: int16(r.Addr.Bank),
				})
			}
		}
	}
}

func (s *System) freeze(cs *coreCtx) {
	cs.frozen = true
	cs.snap = stats.CoreResult{
		Benchmark:    cs.prof.Name,
		Cycles:       s.cycle,
		Retired:      cs.core.Retired,
		Loads:        cs.core.Loads,
		StallCycles:  cs.core.StallCycles,
		L2Demand:     cs.l2Demand,
		L2Misses:     cs.l2Miss,
		DemandReqs:   cs.demandReqs,
		PrefSent:     cs.prefSent,
		PrefUsed:     cs.prefUsed,
		PrefDropped:  cs.prefDropped,
		PrefServiced: cs.prefServiced,
		PrefInflight: cs.prefInflight,
		Attribution:  cs.core.AccountSnapshot(),
	}
	cs.snapBusDemand = cs.busDemand
	cs.snapBusPure = cs.busPrefPure
	cs.snapBusPromo = cs.busPrefPromo
	cs.snapUsedAfter = cs.prefUsedAfter
	cs.snapDropped = cs.prefDropped
}

// Run drives the system until every active core retires the target
// instruction count (cores that finish early keep executing to preserve
// contention, with their statistics frozen, following the paper's
// methodology) and returns the collected results.
//
// Two kernels drive the same per-cycle body. KernelStepped executes every
// cycle — the reference. KernelEvents executes the identical body, then
// asks every component for its next interesting cycle (nextEvent) and
// jumps straight there, applying the skipped cycles' stall accounting
// arithmetically via Core.Skip. Both kernels produce identical results by
// construction, and the lockstep differential suite enforces it.
func (s *System) Run() (stats.Results, error) {
	cfg := s.cfg
	s.runMax = cfg.maxCycles()
	interval := s.padc.IntervalCycles()
	s.dramEvery = cfg.DRAM.EffectiveTickEvery()
	s.apdActive = cfg.PADC.EnableAPD && (cfg.Prefetcher != PFNone || cfg.MemSide)
	events := cfg.Kernel == KernelEvents

	// The first accuracy samples come early (geometric warm-up) so APS
	// escapes its optimistic cold-start quickly, then settle to the
	// paper's fixed interval.
	s.nextInterval = interval / 8
	if s.nextInterval == 0 {
		s.nextInterval = interval
	}

	// Epoch sampling: disabled telemetry leaves nextSample at the
	// unreachable maximum, so the per-cycle cost is one compare.
	epoch := s.tel.EpochCycles()
	s.nextSample = ^uint64(0)
	var lastSample uint64
	if epoch > 0 {
		s.nextSample = epoch
	}

	// Flight-recorder rotation runs on its own period, same disabled-cost
	// trick as epoch sampling: one compare per cycle when off.
	fEpoch := cfg.Flight.EpochCycles()
	s.nextRotate = ^uint64(0)
	if fEpoch > 0 {
		s.nextRotate = fEpoch
	}

	remaining := len(s.cores)
	for remaining > 0 && s.cycle < s.runMax {
		s.cycle++
		now := s.cycle

		// Rotate the tick order so no core systematically wins FCFS ties
		// (hardware arbiters round-robin equal-priority requesters).
		start := int(now) % len(s.cores)
		for i := range s.cores {
			s.cores[(start+i)%len(s.cores)].core.Tick(now)
		}

		if now%s.dramEvery == 0 {
			for _, ctrl := range s.ctrls {
				// A refresh engine accrues obligations and pulls refreshes
				// into idle banks, so it must tick even with an empty buffer.
				if ctrl.Occupancy() == 0 && !ctrl.NeedsIdleTick() {
					continue
				}
				for _, r := range ctrl.Tick(now, cfg.Cores) {
					s.complete(r, now)
				}
			}
		}

		if s.apdActive && now%dropEvery == 0 {
			s.dropExpired(now)
		}

		if now >= s.nextSample {
			s.tel.Sample(now)
			lastSample = now
			s.nextSample += epoch
		}

		if now >= s.nextRotate {
			cfg.Flight.Rotate(now)
			s.nextRotate += fEpoch
		}

		if now >= s.nextInterval {
			if s.headroom != nil {
				s.updateHeadroom(now)
			}
			s.padc.EndInterval()
			for _, cs := range s.cores {
				if cs.fdp != nil {
					cs.fdp.EndInterval(cs.intervalMiss)
				}
				cs.intervalMiss = 0
			}
			if cfg.TrackAccuracyTrace {
				s.accTrace = append(s.accTrace, s.padc.Accuracy(0))
			}
			if s.nextInterval < interval {
				s.nextInterval *= 2
			} else {
				s.nextInterval += interval
			}
		}

		for _, cs := range s.cores {
			if !cs.frozen && cs.core.Retired >= cfg.TargetInsts {
				s.freeze(cs)
				remaining--
			}
		}

		if s.onCycle != nil {
			s.onCycle(now)
		}
		if events && remaining > 0 {
			if next := s.nextEvent(now); next > now+1 {
				// Cycles in (now, next) are provably inert: no retire,
				// issue, fetch, DRAM action, refresh action or epoch
				// boundary can occur. Apply their stall accounting
				// arithmetically and land the loop's increment on next.
				n := next - now - 1
				for _, cs := range s.cores {
					cs.core.Skip(n)
				}
				s.cycle += n
				s.skips++
				s.skipped += n
			}
		}
	}

	// Close the partial last epoch so short runs still yield a series.
	if epoch > 0 && s.cycle > lastSample {
		s.tel.Sample(s.cycle)
	}
	// Likewise the flight recorder's partial last epoch (a no-op when the
	// run ended exactly on a rotation boundary).
	cfg.Flight.Rotate(s.cycle)

	if remaining > 0 {
		// Safety bound hit: freeze stragglers so results stay meaningful,
		// but surface the truncation.
		for _, cs := range s.cores {
			if !cs.frozen {
				s.freeze(cs)
			}
		}
		return s.results(), fmt.Errorf("sim: %d core(s) hit the %d-cycle safety bound before retiring %d instructions",
			remaining, s.runMax, cfg.TargetInsts)
	}
	return s.results(), nil
}

// updateHeadroom closes one accuracy interval's bandwidth window: each
// channel's headroom is 1 minus its bus-busy fraction over the interval,
// and the machine-wide aggregate feeds every DSPatch selector. Interval
// boundaries execute identically under both kernels, so the samples —
// and the bias decisions they drive — are kernel-independent.
func (s *System) updateHeadroom(now uint64) {
	window := now - s.lastInterval
	s.lastInterval = now
	if window == 0 {
		return
	}
	var busy uint64
	for i, ch := range s.chans {
		delta := ch.BusBusyCycles - s.busPrev[i]
		s.busPrev[i] = ch.BusBusyCycles
		busy += delta
		h := 1 - float64(delta)/float64(window)
		if h < 0 {
			h = 0
		}
		s.headroom[i] = h
	}
	agg := 1 - float64(busy)/(float64(window)*float64(len(s.chans)))
	if agg < 0 {
		agg = 0
	}
	for _, cs := range s.cores {
		if cs.dspatch != nil {
			cs.dspatch.SetBandwidthHeadroom(agg)
		}
	}
}

// nextEvent computes the first cycle after now at which any component can
// act: core retire/issue/fetch wake-ups, controller work (completion
// harvest, bank arbitration, refresh duties — lifted onto the DRAM tick
// grid, since controllers only tick there), the APD drop scan, and the
// telemetry/flight/PADC epoch boundaries. Every cycle strictly between
// now and the returned value is inert: stepping through it would only
// repeat the stall accounting Core.Skip reproduces arithmetically.
func (s *System) nextEvent(now uint64) uint64 {
	next := s.runMax
	for _, cs := range s.cores {
		if e := cs.core.NextEvent(now); e < next {
			next = e
		}
	}
	nextGrid := now - now%s.dramEvery + s.dramEvery
	for _, ctrl := range s.ctrls {
		e := ctrl.NextEvent(now)
		if e == memctrl.NeverEvent {
			continue
		}
		// Controllers act only on grid ticks: lift the event to the first
		// grid cycle at or after it — exactly where the stepped loop would
		// first service it.
		if e < nextGrid {
			e = nextGrid
		} else if r := e % s.dramEvery; r != 0 {
			e += s.dramEvery - r
		}
		if e < next {
			next = e
		}
	}
	if s.apdActive {
		// The drop scan only acts on buffered prefetches; while any exist
		// the next dropEvery boundary must execute so drops land on the
		// same cycle the stepped loop drops them.
		for _, ctrl := range s.ctrls {
			if ctrl.HasPrefetches() {
				if e := now - now%dropEvery + dropEvery; e < next {
					next = e
				}
				break
			}
		}
	}
	if s.nextSample < next {
		next = s.nextSample
	}
	if s.nextRotate < next {
		next = s.nextRotate
	}
	if s.nextInterval < next {
		next = s.nextInterval
	}
	if next <= now {
		next = now + 1
	}
	return next
}

// SkipStats reports the event kernel's jump count and the cycles those
// jumps covered (both zero under KernelStepped). Executed cycles plus
// skipped cycles always equal Results.Cycles.
func (s *System) SkipStats() (skips, skippedCycles uint64) { return s.skips, s.skipped }

func (s *System) results() stats.Results {
	r := stats.Results{
		Cycles:         s.cycle,
		Serviced:       s.serviced,
		RowHits:        s.rowHits,
		UsefulServiced: s.usefulServiced,
		UsefulRowHits:  s.usefulRowHits,
	}
	for _, cs := range s.cores {
		r.PerCore = append(r.PerCore, cs.snap)
		used := cs.snapUsedAfter
		if used > cs.snapBusPure {
			used = cs.snapBusPure
		}
		r.Bus.Demand += cs.snapBusDemand
		r.Bus.UsefulPref += cs.snapBusPromo + used
		r.Bus.UselessPref += cs.snapBusPure - used
		r.Dropped += cs.snapDropped
	}
	for _, ctrl := range s.ctrls {
		r.BufferRejects += ctrl.RejectsFull
		if eng := ctrl.Refresh(); eng != nil {
			r.Refresh.Issued += eng.Issued
			r.Refresh.Postponed += eng.Postponed
			r.Refresh.PulledIn += eng.PulledIn
			r.Refresh.Forced += eng.Forced
			r.Refresh.BlockedCycles += eng.BlockedCycles
		}
	}
	if topo := s.steer.Topology(); len(topo.Domains) > 1 {
		r.Domains = make([]stats.DomainStats, len(topo.Domains))
		for d, dom := range topo.Domains {
			ds := stats.DomainStats{
				Name: dom.Name, Channels: dom.Channels, LinkCycles: dom.LinkCycles,
				Serviced: s.domServiced[d], RowHits: s.domRowHits[d],
				PrefSent: s.domPrefSent[d], PrefUsed: s.domPrefUsed[d],
			}
			for lc := 0; lc < dom.Channels; lc++ {
				gi := s.chanOff[d] + lc
				ds.BusBusyCycles += s.chans[gi].BusBusyCycles
				if eng := s.ctrls[gi].Refresh(); eng != nil {
					ds.RefreshBlocked += eng.BlockedCycles
				}
			}
			ds.Accuracy = make([]float64, s.cfg.Cores)
			for c := range ds.Accuracy {
				ds.Accuracy[c] = s.padc.AccuracyIn(d, c)
			}
			r.Domains[d] = ds
		}
	}
	if s.memsideLines != nil {
		ms := &stats.MemSideStats{Serviced: s.msServiced, Used: s.msUsed, Dropped: s.msDropped}
		for _, ctrl := range s.ctrls {
			if eng := ctrl.MemSide(); eng != nil {
				ms.Generated += eng.Generated
				ms.Enqueued += eng.Enqueued
				ms.Issued += eng.Issued
				ms.Filtered += eng.Filtered
				ms.DroppedOverflow += eng.DroppedOverflow
				ms.DroppedStale += eng.DroppedStale
				ms.DroppedPressure += eng.DroppedPressure
				ms.GateClosed += eng.GateClosed
			}
		}
		r.MemSide = ms
	}
	for _, cs := range s.cores {
		if cs.dspatch == nil {
			continue
		}
		if r.DSPatch == nil {
			r.DSPatch = &stats.DSPatchStats{
				CovAccuracy: cs.dspatch.CovAccuracy(),
				AccAccuracy: cs.dspatch.AccAccuracy(),
				Headroom:    cs.dspatch.BandwidthHeadroom(),
			}
		}
		r.DSPatch.Issued += cs.dspatch.Issued
		r.DSPatch.CovPSelected += cs.dspatch.CovPSelected
		r.DSPatch.AccPSelected += cs.dspatch.AccPSelected
	}
	if s.histUseful != nil {
		// Prefetches still pending classification at the end of the run
		// were never used: useless.
		for _, t := range s.pendingUse {
			s.histUseless[histBucket(t)]++
		}
		r.ServiceHistUseful = append([]uint64(nil), s.histUseful...)
		r.ServiceHistUseless = append([]uint64(nil), s.histUseless...)
	}
	r.AccuracyTrace = append([]float64(nil), s.accTrace...)
	return r
}

// Run is the package-level convenience: build a System from cfg and run it.
func Run(cfg Config) (stats.Results, error) {
	s, err := New(cfg)
	if err != nil {
		return stats.Results{}, err
	}
	return s.Run()
}
