package sim

import (
	"reflect"
	"testing"

	"padc/internal/dram"
	"padc/internal/dram/refresh"
	"padc/internal/memctrl"
	"padc/internal/topology"
	"padc/internal/workload"
)

// FuzzKernelDifferential drives both run-loop kernels from fuzzed
// configuration bytes and fails on any stats divergence. It is the
// adversarial arm of the lockstep suite: the randomized test samples the
// axes uniformly, the fuzzer hunts the corners.
func FuzzKernelDifferential(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint16(2_000), false, false)
	f.Add(uint8(3), uint8(1), uint8(1), uint8(1), uint8(1), uint8(1), uint16(5_000), true, false)
	f.Add(uint8(5), uint8(4), uint8(2), uint8(2), uint8(3), uint8(2), uint16(8_000), true, true)
	f.Add(uint8(1), uint8(2), uint8(0), uint8(2), uint8(7), uint8(131), uint16(3_000), false, true)

	pool := []string{"swim", "mcf", "art", "milc", "hmmer", "omnetpp", "libquantum", "sjeng"}

	f.Fuzz(func(t *testing.T, polSel, pfSel, refSel, pageSel, wlSel, topoSel uint8, insts uint16, apd, runahead bool) {
		cores := 1 + int(wlSel>>6)%2 // 1 or 2 cores
		cfg := Baseline(cores)
		cfg.TargetInsts = 1_000 + uint64(insts)%8_000
		cfg.Policy = []memctrl.Policy{
			memctrl.DemandPrefEqual, memctrl.DemandFirst, memctrl.PrefetchFirst,
			memctrl.APS, memctrl.APSRank,
		}[int(polSel)%5]
		cfg.Prefetcher = []PrefetcherKind{PFNone, PFStream, PFStride, PFCDC, PFMarkov, PFDSPatch}[int(pfSel)%6]
		cfg.MemSide = pfSel&0x40 != 0
		cfg.PADC.EnableAPD = apd
		cfg.Core.Runahead = runahead
		cfg.DRAM.Refresh.Mode = []refresh.Mode{refresh.Off, refresh.PerBank, refresh.AllBank}[int(refSel)%3]
		if cfg.DRAM.Refresh.Mode != refresh.Off {
			cfg.DRAM.Refresh.TREFI = 3_000
			cfg.DRAM.Refresh.MaxPostpone = 3
		}
		cfg.DRAM.Page = []dram.PagePolicy{dram.OpenPage, dram.ClosedPage, dram.AdaptivePage}[int(pageSel)%3]
		switch topoSel % 3 {
		case 1:
			tp, err := topology.Preset("far-tier", cfg.DRAM.Channels)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Topology = &tp
		case 2:
			// Unequal links, with the high bit picking the interleave and
			// the remaining bits skewing the far link latency.
			il := topology.InterleaveChannel
			if topoSel&0x80 != 0 {
				il = topology.InterleaveDomain
			}
			tp := topology.Topology{
				Name:       "fuzz-dual",
				Interleave: il,
				Domains: []topology.Domain{
					{Name: "a", Channels: cfg.DRAM.Channels, LinkCycles: uint64(topoSel & 0x0f)},
					{Name: "b", Channels: 1, LinkCycles: 32 + uint64(topoSel)*3},
				},
			}
			cfg.Topology = &tp
		}
		for i := 0; i < cores; i++ {
			cfg.Workload = append(cfg.Workload, workload.MustByName(pool[(int(wlSel)+i)%len(pool)]))
		}

		run := func(k Kernel) (any, string) {
			c := cfg
			c.Kernel = k
			res, err := Run(c)
			if err != nil {
				return res, err.Error()
			}
			return res, ""
		}
		resS, errS := run(KernelStepped)
		resE, errE := run(KernelEvents)
		if errS != errE {
			t.Fatalf("error mismatch:\n  stepped: %q\n  events:  %q", errS, errE)
		}
		if !reflect.DeepEqual(resS, resE) {
			t.Fatalf("kernel divergence:\n  config:  %s\n  stepped: %+v\n  events:  %+v",
				describeCfg(cfg), resS, resE)
		}
	})
}
