package sim

// Lockstep differential suite for the two run-loop kernels: the
// cycle-skipping event kernel (KernelEvents, the default) must be
// indistinguishable from the cycle-by-cycle reference (KernelStepped) on
// every observable output — stats.Results, telemetry series, flight
// epochs, lifecycle breakdowns — across the whole configuration space.
// The property tests additionally replay the event kernel's skip claims
// inside a stepped run and verify that every claimed-inert cycle really
// is inert.

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"padc/internal/core"
	"padc/internal/dram"
	"padc/internal/dram/refresh"
	"padc/internal/memctrl"
	"padc/internal/stats"
	"padc/internal/telemetry"
	"padc/internal/telemetry/flight"
	"padc/internal/telemetry/lifecycle"
	"padc/internal/topology"
	"padc/internal/workload"
)

// diffPool spans all three workload classes plus dependent pointer
// chases, so random draws cover streaming, bursty, and latency-bound
// memory behavior.
var diffPool = []string{
	"swim", "libquantum", "leslie3d", "mcf", "astar", "gcc",
	"art", "milc", "omnetpp", "xalancbmk", "hmmer", "sjeng",
}

// randomKernelConfig draws one configuration across the policy ×
// prefetcher × filter × refresh × page × APD × runahead × topology axes.
// Instruction targets are kept small: the point is breadth, not depth.
func randomKernelConfig(r *rand.Rand) Config {
	cores := []int{1, 2, 4}[r.Intn(3)]
	cfg := Baseline(cores)
	cfg.TargetInsts = 6_000 + uint64(r.Intn(4))*4_000

	type pol struct {
		p     memctrl.Policy
		rules string
	}
	pick := []pol{
		{p: memctrl.DemandPrefEqual},
		{p: memctrl.DemandFirst},
		{p: memctrl.PrefetchFirst},
		{p: memctrl.APS},
		{p: memctrl.APSRank},
		{rules: "rules:critical,rowhit,urgent,fcfs"},
		{rules: "rules:rowhit,demandfirst,fcfs"},
	}[r.Intn(7)]
	cfg.Policy, cfg.Rules = pick.p, pick.rules

	cfg.Prefetcher = []PrefetcherKind{PFNone, PFStream, PFStride, PFCDC, PFMarkov, PFDSPatch}[r.Intn(6)]
	if cfg.Prefetcher != PFNone {
		cfg.Filter = []FilterKind{FilterNone, FilterNone, FilterDDPF, FilterFDP}[r.Intn(4)]
	}
	cfg.MemSide = r.Intn(3) == 0
	cfg.PADC = core.DefaultConfig()
	cfg.PADC.EnableAPD = r.Intn(2) == 0
	cfg.PADC.EnableUrgency = r.Intn(2) == 0

	cfg.DRAM.Refresh.Mode = []refresh.Mode{refresh.Off, refresh.PerBank, refresh.AllBank}[r.Intn(3)]
	if cfg.DRAM.Refresh.Mode != refresh.Off {
		// Shrink the window so short runs cross accrual, postpone and
		// forced-refresh boundaries.
		cfg.DRAM.Refresh.TREFI = 3_000 + uint64(r.Intn(3))*1_000
		cfg.DRAM.Refresh.MaxPostpone = 2 + r.Intn(4)
	}
	cfg.DRAM.Page = []dram.PagePolicy{dram.OpenPage, dram.ClosedPage, dram.AdaptivePage}[r.Intn(3)]
	cfg.DRAM.Channels = 1 + r.Intn(2)
	cfg.DRAM.Permutation = r.Intn(2) == 0

	// A third of the draws run on a multi-domain topology: the far-tier
	// preset, or a hand-built two-domain layout with unequal link
	// latencies under either interleave policy.
	switch r.Intn(3) {
	case 0:
		tp, err := topology.Preset("far-tier", cfg.DRAM.Channels)
		if err != nil {
			panic(err)
		}
		cfg.Topology = &tp
	case 1:
		il := []string{topology.InterleaveChannel, topology.InterleaveDomain}[r.Intn(2)]
		tp := topology.Topology{
			Name:       "dual",
			Interleave: il,
			Domains: []topology.Domain{
				{Name: "near", Channels: cfg.DRAM.Channels, LinkCycles: uint64(r.Intn(32))},
				{Name: "far", Channels: 1 << r.Intn(2), LinkCycles: 64 + uint64(r.Intn(512))},
			},
		}
		cfg.Topology = &tp
	}

	cfg.Core.Runahead = r.Intn(2) == 0
	if r.Intn(3) == 0 {
		cfg.Core.ROB = 64 // small window: more full-ROB stalls, longer skips
	}
	cfg.SharedL2 = r.Intn(4) == 0
	cfg.TrackServiceHist = r.Intn(2) == 0
	cfg.TrackAccuracyTrace = r.Intn(2) == 0
	cfg.Profile = r.Intn(2) == 0

	for i := 0; i < cores; i++ {
		cfg.Workload = append(cfg.Workload, workload.MustByName(diffPool[r.Intn(len(diffPool))]))
	}
	return cfg
}

// runKernel runs cfg under the given kernel, returning the results, the
// error string ("" for success), and the system for post-run inspection.
func runKernel(t *testing.T, cfg Config, k Kernel) (stats.Results, string, *System) {
	t.Helper()
	cfg.Kernel = k
	sys, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%v): %v", k, err)
	}
	res, err := sys.Run()
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	return res, msg, sys
}

// TestKernelDifferentialRandomized is the headline lockstep differential:
// dozens of seeded configurations across every axis, each run under both
// kernels, requiring exactly equal results and errors.
func TestKernelDifferentialRandomized(t *testing.T) {
	const seeds = 36
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			cfg := randomKernelConfig(rand.New(rand.NewSource(int64(seed))))
			resS, errS, _ := runKernel(t, cfg, KernelStepped)
			resE, errE, sysE := runKernel(t, cfg, KernelEvents)
			if errS != errE {
				t.Fatalf("error mismatch:\n  stepped: %q\n  events:  %q", errS, errE)
			}
			if !reflect.DeepEqual(resS, resE) {
				t.Fatalf("results diverge for %s:\n  stepped: %+v\n  events:  %+v",
					describeCfg(cfg), resS, resE)
			}
			skips, skipped := sysE.SkipStats()
			t.Logf("%s: %d cycles, %d skips covering %d cycles (%.1f%%)",
				describeCfg(cfg), resE.Cycles, skips, skipped,
				100*float64(skipped)/float64(resE.Cycles))
		})
	}
}

func describeCfg(cfg Config) string {
	pol := cfg.Rules
	if pol == "" {
		pol = fmt.Sprintf("policy%d", int(cfg.Policy))
	}
	names := make([]string, len(cfg.Workload))
	for i, w := range cfg.Workload {
		names[i] = w.Name
	}
	topo := "flat"
	if cfg.Topology != nil {
		topo = cfg.Topology.Name
	}
	return fmt.Sprintf("%s/%v/refresh=%v/page=%v/apd=%v/ra=%v/ch=%d/topo=%s/ms=%v/%v",
		pol, cfg.Prefetcher, cfg.DRAM.Refresh.Mode, cfg.DRAM.Page,
		cfg.PADC.EnableAPD, cfg.Core.Runahead, cfg.DRAM.Channels, topo, cfg.MemSide, names)
}

// TestKernelDifferentialTwoDomain pins the lockstep property on the
// topology corner the randomized draws only sample: a two-domain machine
// with sharply unequal link latencies and a timing-override far tier,
// where NextEvent aggregation spans heterogeneous controllers. Both
// kernels must agree on the full Results including the per-domain
// breakdown, and traffic must actually reach both tiers.
func TestKernelDifferentialTwoDomain(t *testing.T) {
	slow := dram.DDR3()
	slow.CL += 17 // odd skew so far-tier events land off the near tier's grid
	tp := topology.Topology{
		Name:       "two-domain",
		Interleave: topology.InterleaveChannel,
		Domains: []topology.Domain{
			{Name: "near", Channels: 2, LinkCycles: 3},
			{Name: "far", Channels: 1, LinkCycles: 389, Timing: &slow},
		},
	}
	cfg := quickCfg(2, "mcf", "art")
	cfg.TargetInsts = 25_000
	cfg.Policy = memctrl.APS
	cfg.PADC.EnableAPD = true
	cfg.DRAM.Channels = 2
	cfg.Topology = &tp

	resS, errS, _ := runKernel(t, cfg, KernelStepped)
	resE, errE, sysE := runKernel(t, cfg, KernelEvents)
	if errS != errE {
		t.Fatalf("error mismatch:\n  stepped: %q\n  events:  %q", errS, errE)
	}
	if !reflect.DeepEqual(resS, resE) {
		t.Fatalf("results diverge on the two-domain topology:\n  stepped: %+v\n  events:  %+v", resS, resE)
	}
	if len(resE.Domains) != 2 {
		t.Fatalf("expected 2 domain breakdowns, got %d", len(resE.Domains))
	}
	for _, d := range resE.Domains {
		if d.Serviced == 0 {
			t.Errorf("domain %q serviced no requests: steering never reached it", d.Name)
		}
	}
	skips, skipped := sysE.SkipStats()
	if skips == 0 || skipped == 0 {
		t.Fatalf("event kernel never skipped on the two-domain machine (skips=%d skipped=%d)", skips, skipped)
	}
	t.Logf("two-domain: %d cycles, near=%d far=%d serviced, %d skips covering %d cycles",
		resE.Cycles, resE.Domains[0].Serviced, resE.Domains[1].Serviced, skips, skipped)
}

// TestKernelDifferentialMemSide pins the lockstep property on the
// memory-side prefetch path: controllers inject their own requests from
// inside Tick, so the event kernel must never skip across a cycle where
// a candidate could enter an idle row-hit window. Both kernels must
// agree on the full Results including the MemSide and DSPatch blocks,
// and the path must actually carry traffic.
func TestKernelDifferentialMemSide(t *testing.T) {
	cfg := quickCfg(2, "swim", "libquantum")
	cfg.TargetInsts = 30_000
	cfg.Policy = memctrl.APS
	cfg.PADC.EnableAPD = true
	cfg.Prefetcher = PFDSPatch
	cfg.MemSide = true

	resS, errS, _ := runKernel(t, cfg, KernelStepped)
	resE, errE, sysE := runKernel(t, cfg, KernelEvents)
	if errS != errE {
		t.Fatalf("error mismatch:\n  stepped: %q\n  events:  %q", errS, errE)
	}
	if !reflect.DeepEqual(resS, resE) {
		t.Fatalf("results diverge with memside on:\n  stepped: %+v\n  events:  %+v", resS, resE)
	}
	ms := resE.MemSide
	if ms == nil {
		t.Fatal("MemSide stats missing with the path enabled")
	}
	if ms.Generated == 0 || ms.Enqueued == 0 {
		t.Fatalf("memory-side path generated no candidates: %+v", ms)
	}
	if ms.Issued == 0 {
		t.Fatalf("no memory-side prefetch ever found an idle row-hit window: %+v", ms)
	}
	if got := ms.Serviced + ms.Dropped; got > ms.Issued {
		t.Fatalf("memside conservation broken: serviced %d + dropped %d > issued %d",
			ms.Serviced, ms.Dropped, ms.Issued)
	}
	if resE.DSPatch == nil {
		t.Fatal("DSPatch stats missing with the dspatch prefetcher")
	}
	skips, skipped := sysE.SkipStats()
	t.Logf("memside: %d cycles, %d skips covering %d cycles; memside %+v; dspatch %+v",
		resE.Cycles, skips, skipped, ms, resE.DSPatch)
}

// TestKernelTelemetryRollups runs both kernels with the full observability
// stack attached — telemetry epochs, the bank-state flight recorder, and
// the request-lifecycle tracer — and requires byte-identical exports.
func TestKernelTelemetryRollups(t *testing.T) {
	base := func() Config {
		cfg := quickCfg(2, "swim", "art")
		cfg.TargetInsts = 40_000
		cfg.DRAM.Refresh.Mode = refresh.PerBank
		cfg.DRAM.Refresh.TREFI = 4_000
		cfg.Profile = true
		return cfg
	}

	type export struct {
		metrics, events, banks, spans, breakdown []byte
	}
	collect := func(k Kernel) export {
		cfg := base()
		cfg.Kernel = k
		cfg.Telemetry = telemetry.New(telemetry.Options{EpochCycles: 5_000})
		cfg.Flight = flight.New(flight.Options{EpochCycles: 5_000})
		cfg.Lifecycle = lifecycle.New(lifecycle.Options{})
		if _, err := Run(cfg); err != nil {
			t.Fatalf("Run(%v): %v", k, err)
		}
		var out export
		bufs := []struct {
			dst *[]byte
			fn  func(*bytes.Buffer) error
		}{
			{&out.metrics, func(b *bytes.Buffer) error { return cfg.Telemetry.WriteCSV(b) }},
			{&out.events, func(b *bytes.Buffer) error { return cfg.Telemetry.WriteJSONL(b) }},
			{&out.banks, func(b *bytes.Buffer) error { return cfg.Flight.WriteCSV(b) }},
			{&out.spans, func(b *bytes.Buffer) error { return cfg.Lifecycle.WriteJSONL(b) }},
			{&out.breakdown, func(b *bytes.Buffer) error { return cfg.Lifecycle.WriteCSV(b) }},
		}
		for _, x := range bufs {
			var b bytes.Buffer
			if err := x.fn(&b); err != nil {
				t.Fatal(err)
			}
			*x.dst = b.Bytes()
		}
		return out
	}

	stepped := collect(KernelStepped)
	events := collect(KernelEvents)
	for _, cmp := range []struct {
		name string
		a, b []byte
	}{
		{"telemetry CSV", stepped.metrics, events.metrics},
		{"telemetry JSONL", stepped.events, events.events},
		{"flight CSV", stepped.banks, events.banks},
		{"lifecycle JSONL", stepped.spans, events.spans},
		{"lifecycle CSV", stepped.breakdown, events.breakdown},
	} {
		if !bytes.Equal(cmp.a, cmp.b) {
			t.Errorf("%s differs between kernels (%d vs %d bytes)", cmp.name, len(cmp.a), len(cmp.b))
		}
	}
}

// auditSignature is the progress-counter fingerprint the lockstep audit
// tracks: every counter here advances only when some component acts, so
// it must stay frozen across a claimed-inert window. Stall accounting
// (StallCycles, cycle-class buckets) is deliberately excluded — those are
// exactly the quantities Core.Skip reproduces arithmetically.
func auditSignature(s *System) string {
	var b bytes.Buffer
	for _, cs := range s.cores {
		fmt.Fprintf(&b, "c%d:%d,%d,%d,%d,%d;", cs.id,
			cs.core.Retired, cs.core.Loads, cs.prefSent, cs.prefDropped, cs.l2Miss)
	}
	fmt.Fprintf(&b, "svc:%d,hits:%d;", s.serviced, s.rowHits)
	for i, ctrl := range s.ctrls {
		fmt.Fprintf(&b, "m%d:%d,%d;", i, ctrl.Pending(), ctrl.Occupancy())
		if eng := ctrl.Refresh(); eng != nil {
			fmt.Fprintf(&b, "r%d:%d,%d,%d,%d;", i, eng.Issued, eng.Postponed, eng.PulledIn, eng.Forced)
		}
	}
	return b.String()
}

// TestEventWheelLockstepAudit replays the event kernel's decisions inside
// stepped runs: at each executed cycle where the previous claim expires,
// nextEvent issues a new claim; every stepped cycle strictly inside the
// claimed window must (a) leave the progress signature untouched and
// (b) never see a component event earlier than the claim — i.e. the event
// kernel cannot skip past anything.
func TestEventWheelLockstepAudit(t *testing.T) {
	for seed := 0; seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			cfg := randomKernelConfig(rand.New(rand.NewSource(int64(100 + seed))))
			cfg.TargetInsts = 5_000
			cfg.Kernel = KernelStepped
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}

			var (
				claimAt, claimUntil uint64
				claimSig            string
				windows, audited    uint64
			)
			sys.onCycle = func(now uint64) {
				if now >= claimUntil {
					claimAt, claimUntil = now, sys.nextEvent(now)
					if claimUntil <= now {
						t.Fatalf("cycle %d: claim %d not in the future", now, claimUntil)
					}
					if claimUntil > now+1 {
						windows++
						claimSig = auditSignature(sys)
					}
					return
				}
				// now is strictly inside (claimAt, claimUntil): the event
				// kernel would have skipped this cycle.
				audited++
				if got := auditSignature(sys); got != claimSig {
					t.Fatalf("claimed-inert cycle %d (window %d..%d) changed state:\n  before: %s\n  after:  %s",
						now, claimAt, claimUntil, claimSig, got)
				}
				if re := sys.nextEvent(now); re < claimUntil {
					t.Fatalf("cycle %d inside window %d..%d reports earlier event %d: kernel would skip past it",
						now, claimAt, claimUntil, re)
				}
			}
			if _, err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			// Some draws (notably runahead, which fetches every cycle while
			// a miss is outstanding) legitimately never open a window; the
			// skips>0 assertion lives in TestEventKernelInvariants on a
			// workload guaranteed to stall.
			t.Logf("%s: %d windows, %d audited inert cycles", describeCfg(cfg), windows, audited)
		})
	}
}

// TestEventKernelInvariants checks the event kernel's own bookkeeping:
// executed cycles strictly increase, every jump lands exactly on the
// claim made at the previous executed cycle, executed + skipped cycles
// sum to the reported total, and with the profiler on, every core's
// cycle-class buckets still sum to its frozen cycle count.
func TestEventKernelInvariants(t *testing.T) {
	cfg := quickCfg(2, "mcf", "art")
	cfg.TargetInsts = 30_000
	cfg.Profile = true
	cfg.Kernel = KernelEvents
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var (
		executed  uint64
		lastCycle uint64
		lastClaim uint64
	)
	sys.onCycle = func(now uint64) {
		if now <= lastCycle {
			t.Fatalf("executed cycle %d not after %d", now, lastCycle)
		}
		if lastClaim != 0 && now != lastClaim {
			t.Fatalf("executed cycle %d, but the claim at %d was %d", now, lastCycle, lastClaim)
		}
		lastCycle = now
		lastClaim = sys.nextEvent(now)
		if lastClaim <= now {
			t.Fatalf("cycle %d: claim %d not in the future", now, lastClaim)
		}
		executed++
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}

	skips, skipped := sys.SkipStats()
	if executed+skipped != res.Cycles {
		t.Fatalf("executed %d + skipped %d != total cycles %d", executed, skipped, res.Cycles)
	}
	if skips == 0 || skipped == 0 {
		t.Fatalf("event kernel never skipped on a stall-heavy workload (skips=%d skipped=%d)", skips, skipped)
	}
	for i, cr := range res.PerCore {
		var sum uint64
		for _, v := range cr.Attribution {
			sum += v
		}
		if sum != cr.Cycles {
			t.Fatalf("core %d: attribution sums to %d, frozen at cycle %d", i, sum, cr.Cycles)
		}
	}
	t.Logf("executed %d of %d cycles (%d skips covering %d)", executed, res.Cycles, skips, skipped)
}

// TestKernelConfigSurface pins the Kernel parse/validate vocabulary.
func TestKernelConfigSurface(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kernel
		ok   bool
	}{
		{"", KernelEvents, true},
		{"events", KernelEvents, true},
		{"stepped", KernelStepped, true},
		{"ticks", 0, false},
	} {
		got, err := ParseKernel(tc.in)
		if (err == nil) != tc.ok {
			t.Fatalf("ParseKernel(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if tc.ok && got != tc.want {
			t.Fatalf("ParseKernel(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if KernelEvents.String() != "events" || KernelStepped.String() != "stepped" {
		t.Fatal("kernel String() vocabulary changed")
	}
	cfg := quickCfg(1, "swim")
	cfg.Kernel = Kernel(7)
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted an out-of-range kernel")
	}
}
