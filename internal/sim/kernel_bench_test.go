package sim

import (
	"testing"

	"padc/internal/topology"
	"padc/internal/trace"
	"padc/internal/workload"
)

// benchConfig is an idle-heavy single-core configuration: a dependent
// pointer chase over a cache-defeating working set, no prefetcher, and a
// small ROB. Every load serializes a full DRAM round trip behind the
// previous one, so the core stalls for the vast majority of cycles — the
// workload class the event kernel was built for.
func benchConfig(k Kernel) Config {
	cfg := Baseline(1)
	cfg.Core.ROB = 64
	cfg.Prefetcher = PFNone
	cfg.TargetInsts = 50_000
	cfg.Workload = []workload.Profile{{
		Name:  "chase",
		Class: workload.Unfriendly,
		Gen: trace.Gen{
			Pattern:  trace.RandomPattern{Seed: 1, WSLines: 1 << 20, Dep: true},
			MemEvery: 4,
		},
	}}
	cfg.Kernel = k
	return cfg
}

// BenchmarkSystemRun measures whole-system simulation throughput under
// both kernels. The ns/cycle metric (wall time per simulated cycle) is
// the headline: the event kernel must stay well ahead of stepped on
// stall-heavy workloads. Recorded by scripts/benchsnap into
// BENCH_sweep.json and guarded by `make bench-compare`.
func BenchmarkSystemRun(b *testing.B) {
	for _, k := range []Kernel{KernelStepped, KernelEvents} {
		k := k
		bench := func(b *testing.B, mk func(Kernel) Config) {
			var cycles uint64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Run(mk(k))
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/cycle")
		}
		b.Run(k.String(), func(b *testing.B) { bench(b, benchConfig) })
		// The two-domain variant measures the topology layer's overhead:
		// steering on every mapped line plus NextEvent aggregation across
		// heterogeneous controllers with a long far-tier link.
		b.Run(k.String()+"/far-tier", func(b *testing.B) {
			bench(b, func(k Kernel) Config {
				cfg := benchConfig(k)
				tp, err := topology.Preset("far-tier", cfg.DRAM.Channels)
				if err != nil {
					b.Fatal(err)
				}
				cfg.Topology = &tp
				return cfg
			})
		})
	}
}
