// Package sim wires the substrates — cores, caches, prefetchers, memory
// controllers and DRAM — into the full CMP system of the paper's Tables 3
// and 4, and drives the cycle loop.
package sim

import (
	"fmt"

	"padc/internal/cache"
	"padc/internal/core"
	"padc/internal/cpu"
	"padc/internal/dram"
	"padc/internal/memctrl"
	"padc/internal/telemetry"
	"padc/internal/telemetry/flight"
	"padc/internal/telemetry/lifecycle"
	"padc/internal/topology"
	"padc/internal/workload"
)

// PrefetcherKind selects the per-core prefetch engine.
type PrefetcherKind int

const (
	PFNone PrefetcherKind = iota
	PFStream
	PFStride
	PFCDC
	PFMarkov
	PFDSPatch
)

// String implements fmt.Stringer.
func (k PrefetcherKind) String() string {
	switch k {
	case PFNone:
		return "none"
	case PFStream:
		return "stream"
	case PFStride:
		return "stride"
	case PFCDC:
		return "cdc"
	case PFMarkov:
		return "markov"
	case PFDSPatch:
		return "dspatch"
	default:
		return fmt.Sprintf("PrefetcherKind(%d)", int(k))
	}
}

// Kernel selects the main-loop execution strategy. Both kernels simulate
// the same machine cycle for cycle and must produce identical results —
// the lockstep differential suite in kernel_test.go enforces it.
type Kernel int

const (
	// KernelEvents is the cycle-skipping event kernel (the default): every
	// component reports its next interesting cycle and the loop jumps to
	// the minimum, turning per-cycle stall accounting into per-interval
	// arithmetic.
	KernelEvents Kernel = iota
	// KernelStepped is the retained cycle-by-cycle reference loop the
	// event kernel is differentially tested against.
	KernelStepped
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case KernelEvents:
		return "events"
	case KernelStepped:
		return "stepped"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// ParseKernel maps the configuration-surface spellings onto a Kernel. The
// empty string is KernelEvents, so zero-valued configs take the fast path.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "", "events":
		return KernelEvents, nil
	case "stepped":
		return KernelStepped, nil
	default:
		return KernelEvents, fmt.Errorf("sim: unknown kernel %q (events, stepped)", s)
	}
}

// KernelNames returns the accepted ParseKernel vocabulary.
func KernelNames() []string { return []string{"events", "stepped"} }

// FilterKind optionally wraps the prefetcher with a §6.12 comparison
// mechanism.
type FilterKind int

const (
	FilterNone FilterKind = iota
	FilterDDPF
	FilterFDP
)

// String implements fmt.Stringer.
func (k FilterKind) String() string {
	switch k {
	case FilterNone:
		return "none"
	case FilterDDPF:
		return "ddpf"
	case FilterFDP:
		return "fdp"
	default:
		return fmt.Sprintf("FilterKind(%d)", int(k))
	}
}

// Config describes one simulated system and run.
type Config struct {
	Cores int // cores the system is provisioned for (resource sizing)
	Core  cpu.Config

	L1       cache.Config // L1.Bytes == 0 disables the L1
	L2       cache.Config // per core, or total when SharedL2
	SharedL2 bool
	MSHR     int // entries per last-level cache

	DRAM dram.Config
	// Topology, when non-nil, wires the machine as multiple memory domains
	// (per-domain channel counts, link latencies, timing overrides; see
	// internal/topology). DRAM then supplies the shared geometry — banks,
	// row/line size, tick period, refresh — while each domain's channel
	// count comes from the topology. Nil is the flat machine: one domain
	// holding DRAM.Channels channels at link distance zero, byte-identical
	// to the pre-topology simulator.
	Topology    *topology.Topology
	BufferSlots int // memory request buffer entries per controller
	Policy      memctrl.Policy
	// Rules, when non-empty, overrides Policy with an explicit scheduling
	// rule stack: a legacy alias ("aps") or a "rules:" list such as
	// "rules:critical,rowhit,urgent,fcfs" (see internal/memctrl/sched).
	// Priority-order ablations vary this string instead of adding enum
	// values.
	Rules string
	PADC  core.Config

	Prefetcher PrefetcherKind
	Filter     FilterKind

	// MemSide enables the DROPLET-style memory-side prefetch path: each
	// controller generates same-row next-line candidates from the demand
	// stream it admits and drains them into idle row-hit windows, gated
	// and aged by the tier's PADC memory-side accuracy. Off by default;
	// a disabled path leaves the machine byte-identical to the
	// pre-memside simulator.
	MemSide bool

	Workload []workload.Profile // profile per core; fewer than Cores leaves the rest idle

	TargetInsts uint64 // instructions each active core must retire
	MaxCycles   uint64 // safety bound; 0 derives one from TargetInsts

	// Kernel selects the main-loop strategy: KernelEvents (the zero value)
	// skips provably-inert cycle runs, KernelStepped executes every cycle.
	// Results are identical either way.
	Kernel Kernel

	TrackServiceHist   bool // Figure 4(a) service-time histograms
	TrackAccuracyTrace bool // Figure 4(b) per-interval PAR of core 0

	// Telemetry, when non-nil, receives the run's metric registrations,
	// epoch samples (every Telemetry.EpochCycles() cycles) and trace
	// events; see internal/telemetry. Nil — the default — disables all
	// instrumentation, leaving the hot path with only nil compares.
	Telemetry *telemetry.Telemetry

	// Flight, when non-nil, is the bank-state flight recorder: bounded
	// per-epoch × per-bank accounting of row outcomes, open/close
	// transitions, demand/prefetch issues, refresh interference and
	// rule-win attribution; see internal/telemetry/flight. The system
	// configures its geometry, attaches it to every controller, and
	// rotates epochs in the run loop. Nil — the default — costs one
	// pointer compare at each hook.
	Flight *flight.Recorder

	// Lifecycle, when non-nil, receives one span per completed or dropped
	// memory request (queue-wait vs. service decomposition, request class,
	// row outcome); see internal/telemetry/lifecycle. Nil disables span
	// tracing at one pointer compare per request retirement.
	Lifecycle *lifecycle.Tracer

	// Profile enables per-core cycle accounting: every core cycle is
	// attributed to exactly one cpu.CycleClass bucket, snapshotted into
	// stats.CoreResult.Attribution at the core's instruction target.
	Profile bool
}

// Baseline returns the paper's baseline system for ncores in {1, 2, 4, 8}
// (Tables 3 and 4): per-core 32KB L1 and 512KB 8-way L2 (1MB on a single
// core), stream prefetcher, one DDR3 channel with 8 banks and 4KB rows,
// and 64/64/128/256 request-buffer and MSHR entries.
func Baseline(ncores int) Config {
	l2Bytes := uint64(512 << 10)
	if ncores == 1 {
		l2Bytes = 1 << 20
	}
	buffer := map[int]int{1: 64, 2: 64, 4: 128, 8: 256}[ncores]
	if buffer == 0 {
		buffer = 32 * ncores
	}
	return Config{
		Cores: ncores,
		Core:  cpu.DefaultConfig(),
		L1:    cache.Config{Bytes: 32 << 10, Ways: 4, LineBytes: 64, HitCycles: 2},
		L2:    cache.Config{Bytes: l2Bytes, Ways: 8, LineBytes: 64, HitCycles: 15},
		MSHR:  buffer / ncores,

		DRAM:        dram.DefaultConfig(),
		BufferSlots: buffer,
		Policy:      memctrl.DemandFirst,
		PADC:        core.DefaultConfig(),

		Prefetcher:  PFStream,
		TargetInsts: 500_000,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("sim: need at least one core, got %d", c.Cores)
	}
	if len(c.Workload) > c.Cores {
		return fmt.Errorf("sim: %d workloads for %d cores", len(c.Workload), c.Cores)
	}
	if len(c.Workload) == 0 {
		return fmt.Errorf("sim: empty workload")
	}
	if c.L1.Bytes != 0 {
		if err := c.L1.Validate(); err != nil {
			return err
		}
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if c.Topology != nil {
		if err := c.Topology.Validate(); err != nil {
			return err
		}
	}
	if c.BufferSlots < 1 {
		return fmt.Errorf("sim: request buffer needs at least one slot")
	}
	if c.MSHR < 1 {
		return fmt.Errorf("sim: MSHR needs at least one entry")
	}
	if _, err := memctrl.ResolveStack(c.Policy, c.Rules); err != nil {
		return err
	}
	if c.TargetInsts == 0 {
		return fmt.Errorf("sim: TargetInsts must be positive")
	}
	if c.Kernel != KernelEvents && c.Kernel != KernelStepped {
		return fmt.Errorf("sim: unknown kernel %d", int(c.Kernel))
	}
	return nil
}

// topo returns the effective topology: the configured one, or the flat
// single-domain layout over DRAM.Channels.
func (c Config) topo() topology.Topology {
	if c.Topology != nil {
		return *c.Topology
	}
	return topology.Flat(c.DRAM.Channels)
}

// maxCycles returns the safety bound for the run.
func (c Config) maxCycles() uint64 {
	if c.MaxCycles != 0 {
		return c.MaxCycles
	}
	m := 400 * c.TargetInsts
	if m < 20_000_000 {
		m = 20_000_000
	}
	return m
}
