package sim

import (
	"reflect"
	"testing"

	"padc/internal/cpu"
	"padc/internal/dram/refresh"
	"padc/internal/memctrl"
	"padc/internal/stats"
	"padc/internal/telemetry"
	"padc/internal/telemetry/lifecycle"
	"padc/internal/workload"
)

func quickCfg(ncores int, names ...string) Config {
	cfg := Baseline(ncores)
	cfg.TargetInsts = 120_000
	for _, n := range names {
		cfg.Workload = append(cfg.Workload, workload.MustByName(n))
	}
	return cfg
}

func mustRun(t *testing.T, cfg Config) stats.Results {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Workload = nil },
		func(c *Config) { c.Workload = append(c.Workload, c.Workload[0]) }, // 2 > 1 core
		func(c *Config) { c.BufferSlots = 0 },
		func(c *Config) { c.MSHR = 0 },
		func(c *Config) { c.TargetInsts = 0 },
		func(c *Config) { c.L2.Ways = 0 },
		func(c *Config) { c.DRAM.Banks = 3 },
	}
	for i, mod := range bad {
		cfg := quickCfg(1, "swim")
		mod(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNoPrefHasNoPrefetchActivity(t *testing.T) {
	cfg := quickCfg(1, "swim")
	cfg.Prefetcher = PFNone
	res := mustRun(t, cfg)
	c := res.PerCore[0]
	if c.PrefSent != 0 || c.PrefUsed != 0 || res.Bus.UsefulPref != 0 || res.Bus.UselessPref != 0 {
		t.Fatalf("no-pref run shows prefetch activity: %+v", c)
	}
	if c.Retired < cfg.TargetInsts {
		t.Fatalf("retired %d < target %d", c.Retired, cfg.TargetInsts)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() stats.Results {
		cfg := quickCfg(2, "libquantum", "milc")
		cfg.Policy = memctrl.APS
		return mustRun(t, cfg)
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Serviced != b.Serviced || a.Bus != b.Bus || a.Dropped != b.Dropped {
		t.Fatalf("nondeterministic runs:\n%+v\n%+v", a, b)
	}
	for i := range a.PerCore {
		if !reflect.DeepEqual(a.PerCore[i], b.PerCore[i]) {
			t.Fatalf("core %d diverged", i)
		}
	}
}

func TestAccountingInvariants(t *testing.T) {
	for _, pol := range []memctrl.Policy{memctrl.DemandFirst, memctrl.DemandPrefEqual, memctrl.APS} {
		cfg := quickCfg(2, "swim", "omnetpp")
		cfg.Policy = pol
		res := mustRun(t, cfg)
		if res.Bus.Total() > res.Serviced {
			t.Errorf("%v: snapshotted traffic %d exceeds serviced %d", pol, res.Bus.Total(), res.Serviced)
		}
		if res.RowHits > res.Serviced || res.UsefulRowHits > res.UsefulServiced {
			t.Errorf("%v: row-hit counters inconsistent", pol)
		}
		for _, c := range res.PerCore {
			if c.PrefUsed > c.PrefSent {
				t.Errorf("%v/%s: used %d > sent %d", pol, c.Benchmark, c.PrefUsed, c.PrefSent)
			}
			if acc := c.ACC(); acc < 0 || acc > 1 {
				t.Errorf("%v/%s: ACC out of range: %v", pol, c.Benchmark, acc)
			}
			if cov := c.COV(); cov < 0 || cov > 1 {
				t.Errorf("%v/%s: COV out of range: %v", pol, c.Benchmark, cov)
			}
		}
	}
}

func TestMPKICalibration(t *testing.T) {
	// No-prefetch MPKI should land near the paper's Table 5 values.
	targets := map[string]float64{
		"libquantum": 13.51,
		"swim":       27.57,
		"milc":       29.33,
		"art":        89.39,
		"GemsFDTD":   15.61,
	}
	for name, want := range targets {
		cfg := quickCfg(1, name)
		cfg.Prefetcher = PFNone
		res := mustRun(t, cfg)
		got := res.PerCore[0].MPKI()
		if got < want*0.6 || got > want*1.5 {
			t.Errorf("%s: no-pref MPKI %.1f far from paper's %.1f", name, got, want)
		}
	}
}

func TestClassBehaviorUnderRigidPolicies(t *testing.T) {
	ipc := func(name string, pol memctrl.Policy) float64 {
		cfg := quickCfg(1, name)
		cfg.Policy = pol
		return mustRun(t, cfg).PerCore[0].IPC()
	}
	// Prefetch-friendly: demand-pref-equal must clearly win (Figure 1 right).
	for _, b := range []string{"libquantum", "swim", "bwaves"} {
		first, equal := ipc(b, memctrl.DemandFirst), ipc(b, memctrl.DemandPrefEqual)
		if equal < first*1.05 {
			t.Errorf("%s: demand-pref-equal %.3f should beat demand-first %.3f", b, equal, first)
		}
	}
	// Prefetch-unfriendly: demand-first must win (Figure 1 left).
	for _, b := range []string{"milc", "ammp", "art"} {
		first, equal := ipc(b, memctrl.DemandFirst), ipc(b, memctrl.DemandPrefEqual)
		if first < equal {
			t.Errorf("%s: demand-first %.3f should beat demand-pref-equal %.3f", b, first, equal)
		}
	}
}

func TestAPSAdaptsPerBenchmark(t *testing.T) {
	// APS should land within 12% of the better rigid policy on both a
	// friendly and an unfriendly benchmark (the paper's §6.1 claim).
	// milc's phase behavior needs runs spanning several accuracy intervals
	// (the figure runners use those); the quick check uses stable classes.
	for _, b := range []string{"libquantum", "ammp"} {
		ipc := map[memctrl.Policy]float64{}
		for _, pol := range []memctrl.Policy{memctrl.DemandFirst, memctrl.DemandPrefEqual, memctrl.APS} {
			cfg := quickCfg(1, b)
			cfg.Policy = pol
			cfg.PADC.EnableAPD = false
			ipc[pol] = mustRun(t, cfg).PerCore[0].IPC()
		}
		best := ipc[memctrl.DemandFirst]
		if ipc[memctrl.DemandPrefEqual] > best {
			best = ipc[memctrl.DemandPrefEqual]
		}
		if ipc[memctrl.APS] < best*0.88 {
			t.Errorf("%s: APS %.3f below best rigid %.3f", b, ipc[memctrl.APS], best)
		}
	}
}

func TestAPDDropsUselessAndSavesTraffic(t *testing.T) {
	run := func(apd bool) stats.Results {
		cfg := quickCfg(1, "mcf")
		cfg.Policy = memctrl.APS
		cfg.PADC.EnableAPD = apd
		return mustRun(t, cfg)
	}
	with, without := run(true), run(false)
	if with.Dropped == 0 {
		t.Fatal("APD dropped nothing for a prefetch-unfriendly benchmark")
	}
	if with.Bus.Total() >= without.Bus.Total() {
		t.Errorf("APD should reduce traffic: %d vs %d", with.Bus.Total(), without.Bus.Total())
	}
}

func TestMultiCoreFreezeSemantics(t *testing.T) {
	cfg := quickCfg(4, "eon", "art", "swim", "milc")
	res := mustRun(t, cfg)
	for _, c := range res.PerCore {
		if c.Retired < cfg.TargetInsts {
			t.Errorf("%s froze before target: %d", c.Benchmark, c.Retired)
		}
		if c.Cycles > res.Cycles {
			t.Errorf("%s snapshot after end of run", c.Benchmark)
		}
	}
	// eon (cache-resident) must finish long before the memory-bound apps.
	if res.PerCore[0].Cycles >= res.PerCore[1].Cycles {
		t.Error("insensitive benchmark should freeze first")
	}
}

func TestIdenticalAppsBehaveSymmetrically(t *testing.T) {
	cfg := quickCfg(4, "libquantum", "libquantum", "libquantum", "libquantum")
	cfg.Policy = memctrl.APS
	res := mustRun(t, cfg)
	min, max := res.PerCore[0].IPC(), res.PerCore[0].IPC()
	for _, c := range res.PerCore[1:] {
		if v := c.IPC(); v < min {
			min = v
		} else if v > max {
			max = v
		}
	}
	// Perfect symmetry is impossible under deep saturation (bank alignment
	// differs per address-space offset); the paperif max/min > 1.35 {apos;s Table 9 shows the
	// same small systematic spread.
	if max/min > 1.5 {
		t.Fatalf("identical apps diverge: min=%.3f max=%.3f", min, max)
	}
}

func TestSystemVariantsRun(t *testing.T) {
	mods := map[string]func(*Config){
		"dual-channel": func(c *Config) { c.DRAM.Channels = 2 },
		"closed-row":   func(c *Config) { c.DRAM.ClosedRow = true },
		"permutation":  func(c *Config) { c.DRAM.Permutation = true },
		"shared-l2": func(c *Config) {
			c.SharedL2 = true
			c.L2.Bytes = 2 << 20
			c.L2.Ways = 16
			c.MSHR = c.BufferSlots
		},
		"big-l2":    func(c *Config) { c.L2.Bytes = 4 << 20 },
		"small-row": func(c *Config) { c.DRAM.RowBytes = 2 << 10 },
		"stride":    func(c *Config) { c.Prefetcher = PFStride },
		"cdc":       func(c *Config) { c.Prefetcher = PFCDC },
		"markov":    func(c *Config) { c.Prefetcher = PFMarkov },
		"ddpf":      func(c *Config) { c.Filter = FilterDDPF },
		"fdp":       func(c *Config) { c.Filter = FilterFDP },
		"ranking":   func(c *Config) { c.Policy = memctrl.APSRank },
	}
	for name, mod := range mods {
		name, mod := name, mod
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := quickCfg(2, "swim", "omnetpp")
			cfg.Policy = memctrl.APS
			mod(&cfg)
			res := mustRun(t, cfg)
			for _, c := range res.PerCore {
				if c.Retired < cfg.TargetInsts {
					t.Fatalf("%s: %s did not finish", name, c.Benchmark)
				}
			}
		})
	}
}

func TestRunaheadImprovesChaseWorkload(t *testing.T) {
	run := func(ra bool) float64 {
		cfg := quickCfg(1, "mcf")
		cfg.Core.Runahead = ra
		return mustRun(t, cfg).PerCore[0].IPC()
	}
	base, ra := run(false), run(true)
	if ra < base*0.95 {
		t.Fatalf("runahead should not hurt a miss-bound workload: %.3f vs %.3f", ra, base)
	}
}

func TestServiceHistogramTracked(t *testing.T) {
	cfg := quickCfg(1, "milc")
	cfg.TargetInsts = 400_000 // span several 100K-cycle accuracy intervals
	cfg.TrackServiceHist = true
	cfg.TrackAccuracyTrace = true
	res := mustRun(t, cfg)
	var total uint64
	for i := range res.ServiceHistUseful {
		total += res.ServiceHistUseful[i] + res.ServiceHistUseless[i]
	}
	if total == 0 {
		t.Fatal("service-time histogram empty")
	}
	if len(res.AccuracyTrace) == 0 {
		t.Fatal("accuracy trace empty")
	}
}

func TestSharedCacheCrossPollution(t *testing.T) {
	// With a shared LLC, a junk-prefetching app inflates its neighbor's
	// misses relative to private caches (the §6.10 mechanism).
	run := func(shared bool) float64 {
		cfg := quickCfg(2, "eon", "art")
		cfg.Policy = memctrl.DemandPrefEqual
		if shared {
			cfg.SharedL2 = true
			cfg.L2.Bytes = 1 << 20
			cfg.L2.Ways = 16
			cfg.MSHR = cfg.BufferSlots
		}
		res := mustRun(t, cfg)
		return res.PerCore[0].MPKI() // eon
	}
	private, shared := run(false), run(true)
	if shared < private {
		t.Logf("note: shared-LLC pollution did not exceed private (%.2f vs %.2f)", shared, private)
	}
}

func TestTelemetryIntegration(t *testing.T) {
	tel := telemetry.New(telemetry.Options{EpochCycles: 5_000})
	cfg := quickCfg(2, "swim", "art")
	cfg.Policy = memctrl.APS
	cfg.Telemetry = tel
	mustRun(t, cfg)

	s := tel.SeriesData()
	if len(s.Rows) < 2 {
		t.Fatalf("epoch series has %d rows, want >= 2", len(s.Rows))
	}
	// Every core's accuracy gauge and the controller metrics must be
	// registered and sampled.
	for _, name := range []string{
		"core0/acc_estimate", "core1/acc_estimate", "core0/ipc",
		"memctrl0/enqueued", "memctrl0/occupancy", "dram0/row_conflicts",
		"sim/row_hit_rate",
	} {
		if s.Column(name) == nil {
			t.Fatalf("metric %q missing from the epoch series", name)
		}
	}
	// Counter deltas across the series must sum to the cumulative value.
	var enq float64
	for _, v := range s.Column("memctrl0/enqueued") {
		enq += v
	}
	if cum, _ := tel.Value("memctrl0/enqueued"); enq != cum {
		t.Fatalf("series deltas sum to %g, cumulative counter is %g", enq, cum)
	}
	if cum, _ := tel.Value("memctrl0/enqueued"); cum == 0 {
		t.Fatal("no requests counted")
	}

	if tel.EventsTotal() == 0 {
		t.Fatal("no events recorded")
	}
	counts := tel.EventCounts()
	for _, kind := range []string{"enqueue", "issue", "complete"} {
		if counts[kind] == 0 {
			t.Fatalf("no %q events recorded (have %v)", kind, counts)
		}
	}
}

// TestTelemetryDisabledIdenticalResults pins the nil-telemetry fast path:
// instrumentation must not perturb simulation results.
func TestTelemetryDisabledIdenticalResults(t *testing.T) {
	base := mustRun(t, quickCfg(1, "swim"))
	cfg := quickCfg(1, "swim")
	cfg.Telemetry = telemetry.New(telemetry.Options{EpochCycles: 1_000})
	instrumented := mustRun(t, cfg)
	if base.Cycles != instrumented.Cycles || base.Serviced != instrumented.Serviced ||
		base.PerCore[0].Retired != instrumented.PerCore[0].Retired {
		t.Fatalf("telemetry changed the simulation: %d/%d cycles, %d/%d serviced",
			base.Cycles, instrumented.Cycles, base.Serviced, instrumented.Serviced)
	}
}

func TestProfileAttributionSumsToCycles(t *testing.T) {
	cfg := quickCfg(2, "swim", "art")
	cfg.Profile = true
	res := mustRun(t, cfg)
	for i, c := range res.PerCore {
		if len(c.Attribution) != int(cpu.NumCycleClasses) {
			t.Fatalf("core %d: attribution has %d classes, want %d", i, len(c.Attribution), cpu.NumCycleClasses)
		}
		var sum uint64
		for _, v := range c.Attribution {
			sum += v
		}
		if sum != c.Cycles {
			t.Errorf("core %d: attribution sums to %d, want the frozen cycle count %d", i, sum, c.Cycles)
		}
	}
}

func TestProfileOffLeavesNoAttribution(t *testing.T) {
	res := mustRun(t, quickCfg(1, "swim"))
	if res.PerCore[0].Attribution != nil {
		t.Fatal("attribution present without Profile")
	}
}

func TestLifecycleSpansRecorded(t *testing.T) {
	cfg := quickCfg(2, "swim", "art")
	tr := lifecycle.New(lifecycle.Options{})
	cfg.Lifecycle = tr
	res := mustRun(t, cfg)
	if tr.Recorded() == 0 {
		t.Fatal("no lifecycle spans recorded")
	}
	// Every serviced request ends in exactly one span; drops add more.
	if tr.Recorded() < res.Serviced {
		t.Fatalf("recorded %d spans < %d serviced requests", tr.Recorded(), res.Serviced)
	}
	var demand, dropped uint64
	for core := 0; core < tr.Cores(); core++ {
		bd := tr.Breakdown(core)
		demand += bd.Total(lifecycle.ClassDemand).Count
		dropped += bd.Total(lifecycle.ClassDropped).Count
	}
	if demand == 0 {
		t.Fatal("no demand spans folded")
	}
	if dropped != res.Dropped {
		t.Fatalf("dropped spans %d != dropped counter %d", dropped, res.Dropped)
	}
	for _, sp := range tr.Spans() {
		if sp.Class == lifecycle.ClassDropped {
			if sp.Issue != 0 || sp.Service() != 0 {
				t.Fatalf("dropped span claims DRAM service: %+v", sp)
			}
			continue
		}
		if sp.Issue < sp.Enqueue || sp.Finish < sp.Issue {
			t.Fatalf("span stamps out of order: %+v", sp)
		}
		if sp.Row == lifecycle.RowNone {
			t.Fatalf("serviced span has no row outcome: %+v", sp)
		}
	}
}

func TestRefreshIntegration(t *testing.T) {
	base := func() Config {
		cfg := quickCfg(2, "swim", "art")
		cfg.TargetInsts = 80_000
		return cfg
	}
	off := mustRun(t, base())
	if off.Refresh != (stats.RefreshStats{}) {
		t.Fatalf("refresh-off run reports maintenance activity: %+v", off.Refresh)
	}

	for _, mode := range []refresh.Mode{refresh.PerBank, refresh.AllBank} {
		cfg := base()
		cfg.DRAM.Refresh.Mode = mode
		// Shrink the window so both modes exercise postpone, pull-in and
		// the forced deadline within a short run.
		cfg.DRAM.Refresh.TREFI = 4_000
		cfg.DRAM.Refresh.MaxPostpone = 4

		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		rf := res.Refresh
		if rf.Issued == 0 {
			t.Errorf("%v: no refreshes issued in %d cycles", mode, res.Cycles)
		}
		if rf.BlockedCycles == 0 {
			t.Errorf("%v: no request ever waited behind a refresh", mode)
		}
		if res.Cycles <= off.Cycles {
			t.Errorf("%v: refresh run finished in %d cycles, refresh-off took %d — maintenance should cost time",
				mode, res.Cycles, off.Cycles)
		}
		// Conservation: per unit, issued refreshes track elapsed tREFI
		// windows within the credit band.
		for i, ctrl := range sys.ctrls {
			eng := ctrl.Refresh()
			if eng == nil {
				t.Fatalf("%v: controller %d has no engine attached", mode, i)
			}
			if err := eng.Audit(res.Cycles); err != nil {
				t.Errorf("%v: controller %d: %v", mode, i, err)
			}
		}
	}
}

func TestRefreshDisabledBehaviorUnchanged(t *testing.T) {
	// An all-zero refresh config must reproduce the historical simulator
	// bit for bit: same cycles, same per-core results.
	run := func(mut func(*Config)) stats.Results {
		cfg := quickCfg(2, "libquantum", "milc")
		cfg.TargetInsts = 60_000
		if mut != nil {
			mut(&cfg)
		}
		return mustRun(t, cfg)
	}
	plain := run(nil)
	zeroed := run(func(c *Config) { c.DRAM.Refresh = refresh.Config{} })
	if plain.Cycles != zeroed.Cycles || !reflect.DeepEqual(plain.PerCore, zeroed.PerCore) {
		t.Fatalf("zero-valued refresh config changed results: %d vs %d cycles", plain.Cycles, zeroed.Cycles)
	}
}
