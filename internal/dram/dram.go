// Package dram models a DDR3-like SDRAM subsystem at the granularity the
// MICRO-41 PADC paper schedules it: per-bank row buffers with row-hit /
// row-closed / row-conflict latencies, a shared data bus per channel, and
// one or more independent channels (memory controllers).
//
// The model is request-level: a read request scheduled to a bank occupies
// that bank for the full precharge/activate/CAS sequence its row-buffer
// state requires, and reserves the channel's data bus for the burst at the
// end of the access. Banks on a channel overlap freely except for the bus;
// this preserves the bank-level parallelism and the ~3x row-hit versus
// row-conflict latency asymmetry that every scheduling policy in the paper
// exploits.
package dram

import (
	"fmt"

	"padc/internal/dram/refresh"
)

// Timing holds DRAM timing parameters in processor cycles. The defaults
// correspond to the paper's DDR3-1333 part (15ns per command) on a 4GHz
// core: tRP = tRCD = CL = 60 cycles and a 64B line occupying the 16B-wide
// DDR bus for 12 cycles. A row-hit therefore costs 72 cycles and a
// row-conflict 192 — the ~1:3 asymmetry the paper's scheduling effects
// depend on — and peak bandwidth is one line per 12 cycles.
type Timing struct {
	TRP   uint64 // precharge latency
	TRCD  uint64 // activate (row open) latency
	CL    uint64 // read/write (CAS) latency
	Burst uint64 // data bus occupancy per cache-line transfer
}

// DDR3 returns the paper's baseline DDR3-1333 timing.
func DDR3() Timing {
	return Timing{TRP: 60, TRCD: 60, CL: 60, Burst: 12}
}

// RowState classifies the row-buffer state a request finds at its bank.
type RowState int

const (
	RowHit RowState = iota
	RowClosed
	RowConflict
)

func (s RowState) String() string {
	switch s {
	case RowHit:
		return "row-hit"
	case RowClosed:
		return "row-closed"
	case RowConflict:
		return "row-conflict"
	default:
		return fmt.Sprintf("RowState(%d)", int(s))
	}
}

// Latency returns the total access latency a request experiences when it
// finds the bank in state s.
func (t Timing) Latency(s RowState) uint64 {
	switch s {
	case RowHit:
		return t.CL + t.Burst
	case RowClosed:
		return t.TRCD + t.CL + t.Burst
	default:
		return t.TRP + t.TRCD + t.CL + t.Burst
	}
}

// Config describes the DRAM geometry and management policies.
type Config struct {
	Channels    int    // independent memory controllers
	Banks       int    // banks per channel
	RowBytes    uint64 // row-buffer size per bank
	LineBytes   uint64 // cache-line (transfer) size
	Timing      Timing
	ClosedRow   bool // closed-row policy instead of open-row (alias for Page: ClosedPage)
	Permutation bool // permutation-based bank index remapping (Zhang et al.)
	TickEvery   uint64

	// Page selects the row-buffer management policy (open, closed, or the
	// adaptive per-bank predictor). The legacy ClosedRow flag is honored
	// when Page is left at its OpenPage zero value.
	Page PagePolicy

	// Refresh configures the maintenance engine (off by default); the
	// memory controller owns its scheduling (see internal/dram/refresh).
	Refresh refresh.Config
}

// EffectiveTickEvery resolves the controller scheduling period: the
// historical default of one decision per DRAM bus cycle when TickEvery is
// left zero. Everything that quantizes cycles onto the controller grid
// (the sim loop, the event kernel, refresh delta accounting) must use
// this resolved value.
func (c Config) EffectiveTickEvery() uint64 {
	if c.TickEvery == 0 {
		return 4
	}
	return c.TickEvery
}

// EffectivePage resolves the page policy, folding the legacy ClosedRow
// flag into the Page field's vocabulary.
func (c Config) EffectivePage() PagePolicy {
	if c.Page != OpenPage {
		return c.Page
	}
	if c.ClosedRow {
		return ClosedPage
	}
	return OpenPage
}

// DefaultConfig is the paper's baseline: one channel, 8 banks, 4KB rows,
// 64B lines, open-row policy.
func DefaultConfig() Config {
	return Config{
		Channels:  1,
		Banks:     8,
		RowBytes:  4096,
		LineBytes: 64,
		Timing:    DDR3(),
		TickEvery: 4, // one scheduling decision per DRAM bus cycle at 4GHz
	}
}

// Validate reports a descriptive error for impossible geometries.
func (c Config) Validate() error {
	switch {
	case c.Channels < 1:
		return fmt.Errorf("dram: need at least one channel, got %d", c.Channels)
	case c.Banks < 1 || c.Banks&(c.Banks-1) != 0:
		return fmt.Errorf("dram: banks must be a power of two, got %d", c.Banks)
	case c.RowBytes == 0 || c.LineBytes == 0:
		return fmt.Errorf("dram: row (%d) and line (%d) bytes must be nonzero", c.RowBytes, c.LineBytes)
	case c.RowBytes%c.LineBytes != 0:
		return fmt.Errorf("dram: row size %d not a multiple of line size %d", c.RowBytes, c.LineBytes)
	case c.Channels&(c.Channels-1) != 0:
		return fmt.Errorf("dram: channels must be a power of two, got %d", c.Channels)
	case c.Page < OpenPage || c.Page > AdaptivePage:
		return fmt.Errorf("dram: unknown page policy %d", int(c.Page))
	}
	return c.Refresh.Validate()
}

// LinesPerRow returns the number of cache lines a row buffer caches.
func (c Config) LinesPerRow() uint64 { return c.RowBytes / c.LineBytes }

// Address is a physical line address decomposed into DRAM coordinates.
type Address struct {
	Channel int
	Bank    int
	Row     uint64
	Col     uint64
}

// Map decomposes a cache-line address (byte address >> log2(LineBytes))
// into channel, bank, row and column. Consecutive lines walk a row; rows
// interleave across channels then banks, so streams exploit the row buffer
// while independent streams spread over banks.
func (c Config) Map(lineAddr uint64) Address {
	lpr := c.LinesPerRow()
	col := lineAddr % lpr
	rest := lineAddr / lpr
	ch := int(rest % uint64(c.Channels))
	rest /= uint64(c.Channels)
	bank := int(rest % uint64(c.Banks))
	row := rest / uint64(c.Banks)
	if c.Permutation {
		// Permutation-based page interleaving: XOR low row bits into the
		// bank index to spread row-conflicting addresses across banks.
		bank = bank ^ int(row%uint64(c.Banks))
	}
	return Address{Channel: ch, Bank: bank, Row: row, Col: col}
}

// Unmap is the inverse of Map: it reassembles the cache-line address from
// DRAM coordinates. Map and Unmap form a bijection over line addresses —
// including with Permutation enabled, since the XOR bank remap is
// self-inverse given the row.
func (c Config) Unmap(a Address) uint64 {
	bank := a.Bank
	if c.Permutation {
		bank = bank ^ int(a.Row%uint64(c.Banks))
	}
	rest := a.Row*uint64(c.Banks) + uint64(bank)
	rest = rest*uint64(c.Channels) + uint64(a.Channel)
	return rest*c.LinesPerRow() + a.Col
}

// Bank is the state of one DRAM bank.
type Bank struct {
	OpenRow   int64  // -1 when no row is open (precharged)
	BusyUntil uint64 // cycle at which the bank can accept a new request

	// Stats.
	Hits      uint64
	Closed    uint64
	Conflicts uint64
}

// State classifies what a request to row would currently find.
func (b *Bank) State(row uint64) RowState {
	switch {
	case b.OpenRow < 0:
		return RowClosed
	case b.OpenRow == int64(row):
		return RowHit
	default:
		return RowConflict
	}
}

// Observer receives per-access bank-state transitions as the channel
// decides them. The flight recorder attaches one per channel; the hook
// reports precharges the controller never sees (the closed-page policy's
// hidden precharge, the adaptive predictor's close, the refresh
// precharge), so transition counts are exact. A nil observer costs one
// pointer compare per access.
type Observer interface {
	// BankAccess reports one serviced request: the row-buffer state it
	// found, how many rows it activated (0 or 1) and how many precharges
	// it caused (0–2: a conflict precharges before the access, and a
	// closing page policy may precharge again after it).
	BankAccess(bank int, state RowState, opens, closes int)
	// BankRefresh reports a maintenance operation occupying the bank;
	// closedRow is true when it had to precharge an open row.
	BankRefresh(bank int, closedRow bool)
}

// Channel is one memory controller's DRAM resources: its banks plus the
// shared data bus.
type Channel struct {
	cfg       Config
	page      PagePolicy
	pred      []pagePredictor // per-bank predictors (AdaptivePage only)
	obs       Observer
	Banks     []Bank
	busUntil  uint64 // data bus reserved through this cycle
	completed uint64

	// Command stats for telemetry: row activations, precharges (explicit
	// on a conflict, hidden under the closed-row policy), and data-bus
	// occupancy in cycles.
	Activations   uint64
	Precharges    uint64
	BusBusyCycles uint64

	// Refreshes counts the maintenance operations applied to this
	// channel's banks; PredCloses counts precharges the adaptive page
	// predictor decided (a subset of Precharges).
	Refreshes  uint64
	PredCloses uint64
}

// NewChannel builds the banks for one channel of cfg.
func NewChannel(cfg Config) *Channel {
	ch := &Channel{cfg: cfg, page: cfg.EffectivePage(), Banks: make([]Bank, cfg.Banks)}
	for i := range ch.Banks {
		ch.Banks[i].OpenRow = -1
	}
	if ch.page == AdaptivePage {
		ch.pred = make([]pagePredictor, cfg.Banks)
		for i := range ch.pred {
			ch.pred[i] = newPagePredictor()
		}
	}
	return ch
}

// Config returns the geometry this channel was built with.
func (ch *Channel) Config() Config { return ch.cfg }

// Observe attaches (or, with nil, detaches) the transition observer.
func (ch *Channel) Observe(o Observer) { ch.obs = o }

// BankReady reports whether bank b can accept a request at cycle now.
func (ch *Channel) BankReady(b int, now uint64) bool {
	return ch.Banks[b].BusyUntil <= now
}

// Issue schedules a request to (bank, row) at cycle now and returns the
// completion cycle (when the line's burst has fully transferred) and the
// row-buffer state the request found. The caller must have checked
// BankReady. keepOpen tells the channel whether more row-hit work for
// this row is pending; the closed-row and adaptive page policies keep the
// row open in that case and otherwise may precharge it for free after the
// access (the closed-row policy always does, the adaptive policy when its
// per-bank predictor votes precharge). The open-row policy ignores it.
func (ch *Channel) Issue(bank int, row, now uint64, keepOpen bool) (finish uint64, state RowState) {
	b := &ch.Banks[bank]
	state = b.State(row)
	lat := ch.cfg.Timing.Latency(state)

	// The burst must win the shared data bus; delay the whole access until
	// the bus slot at its tail is free.
	start := now
	if dataAt := start + lat - ch.cfg.Timing.Burst; dataAt < ch.busUntil {
		start += ch.busUntil - dataAt
	}
	finish = start + lat
	ch.busUntil = finish
	b.BusyUntil = finish

	opens, closes := 0, 0
	switch state {
	case RowHit:
		b.Hits++
	case RowClosed:
		b.Closed++
		ch.Activations++
		opens++
	default:
		b.Conflicts++
		ch.Activations++
		ch.Precharges++
		opens++
		closes++
	}
	ch.BusBusyCycles += ch.cfg.Timing.Burst

	switch ch.page {
	case ClosedPage:
		if keepOpen {
			b.OpenRow = int64(row)
		} else {
			ch.Precharges++ // the closed-row policy's hidden precharge
			closes++
			b.OpenRow = -1
		}
	case AdaptivePage:
		p := &ch.pred[bank]
		p.train(state, row)
		if keepOpen || p.keepOpen() {
			b.OpenRow = int64(row)
		} else {
			ch.Precharges++
			ch.PredCloses++
			closes++
			b.OpenRow = -1
		}
		p.lastRow = int64(row)
	default: // open-page: the row stays open until a conflict evicts it
		b.OpenRow = int64(row)
	}
	ch.completed++
	if ch.obs != nil {
		ch.obs.BankAccess(bank, state, opens, closes)
	}
	return finish, state
}

// Refresh occupies bank b with a maintenance operation through cycle
// until: the row buffer is precharged and the bank accepts no request
// before the refresh completes. Refresh commands do not use the data bus.
// The caller (the memory controller's refresh engine) must have checked
// BankReady.
func (ch *Channel) Refresh(b int, until uint64) {
	bank := &ch.Banks[b]
	closedRow := bank.OpenRow >= 0
	if closedRow {
		ch.Precharges++ // refresh implies precharging the open row
	}
	bank.OpenRow = -1
	bank.BusyUntil = until
	ch.Refreshes++
	if ch.obs != nil {
		ch.obs.BankRefresh(b, closedRow)
	}
}

// Completed returns the number of requests this channel has serviced.
func (ch *Channel) Completed() uint64 { return ch.completed }

// Counts returns the channel-wide row-buffer outcome totals summed over
// banks: (hits, closed, conflicts).
func (ch *Channel) Counts() (hits, closed, conflicts uint64) {
	for i := range ch.Banks {
		hits += ch.Banks[i].Hits
		closed += ch.Banks[i].Closed
		conflicts += ch.Banks[i].Conflicts
	}
	return hits, closed, conflicts
}

// RowHitRate returns the fraction of serviced requests that were row hits.
func (ch *Channel) RowHitRate() float64 {
	hits, closed, conflicts := ch.Counts()
	total := hits + closed + conflicts
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
