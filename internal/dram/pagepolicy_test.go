package dram

import "testing"

func TestParsePagePolicy(t *testing.T) {
	for s, want := range map[string]PagePolicy{
		"": OpenPage, "open": OpenPage, "closed": ClosedPage, "adaptive": AdaptivePage,
	} {
		got, err := ParsePagePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePagePolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParsePagePolicy("auto"); err == nil {
		t.Error("unknown page policy accepted")
	}
}

func TestEffectivePageHonorsLegacyClosedRow(t *testing.T) {
	c := DefaultConfig()
	if c.EffectivePage() != OpenPage {
		t.Fatal("default should be open-page")
	}
	c.ClosedRow = true
	if c.EffectivePage() != ClosedPage {
		t.Fatal("ClosedRow flag should alias ClosedPage")
	}
	c.Page = AdaptivePage
	if c.EffectivePage() != AdaptivePage {
		t.Fatal("explicit Page should win over the legacy flag")
	}
}

// issueAll drives one bank through the row sequence and returns the
// observed states.
func issueAll(ch *Channel, rows []uint64) []RowState {
	var states []RowState
	now := uint64(0)
	for _, r := range rows {
		for !ch.BankReady(0, now) {
			now++
		}
		_, st := ch.Issue(0, r, now, false)
		states = append(states, st)
	}
	return states
}

func TestAdaptivePageLearnsStreams(t *testing.T) {
	// A row-hit-heavy stream must keep the predictor voting open, so the
	// adaptive policy converges to open-page behavior: hits everywhere
	// after the first access.
	cfg := DefaultConfig()
	cfg.Page = AdaptivePage
	ch := NewChannel(cfg)
	rows := make([]uint64, 32)
	states := issueAll(ch, rows) // same row throughout
	for i, st := range states[1:] {
		if st != RowHit {
			t.Fatalf("access %d: %v, want row-hit under a hit-heavy stream", i+1, st)
		}
	}
	if ch.PredCloses != 0 {
		t.Fatalf("predictor closed %d times on a pure stream", ch.PredCloses)
	}
}

func TestAdaptivePageLearnsConflicts(t *testing.T) {
	// An alternating-row pattern is all conflicts under open-page; the
	// predictor must learn to precharge, converting the tail of the
	// sequence from row-conflicts into cheaper row-closed accesses.
	cfg := DefaultConfig()
	cfg.Page = AdaptivePage
	ch := NewChannel(cfg)
	rows := make([]uint64, 40)
	for i := range rows {
		rows[i] = uint64(i % 2) // A, B, A, B, ...
	}
	states := issueAll(ch, rows)
	tail := states[len(states)-8:]
	for i, st := range tail {
		if st == RowConflict {
			t.Fatalf("tail access %d still a row-conflict; predictor never learned to close", i)
		}
	}
	if ch.PredCloses == 0 {
		t.Fatal("predictor never chose to precharge")
	}

	// The same pattern under open-page is conflicts throughout — the
	// predictor must strictly beat it on conflict count.
	open := NewChannel(DefaultConfig())
	issueAll(open, rows)
	_, _, openConf := open.Counts()
	_, _, adConf := ch.Counts()
	if adConf >= openConf {
		t.Fatalf("adaptive saw %d conflicts, open-page %d; predictor should win", adConf, openConf)
	}
}

func TestChannelRefreshClosesRowAndBlocksBank(t *testing.T) {
	cfg := DefaultConfig()
	ch := NewChannel(cfg)
	ch.Issue(0, 7, 0, false)
	if ch.Banks[0].OpenRow != 7 {
		t.Fatal("row should be open after the access")
	}
	pre := ch.Precharges
	ch.Refresh(0, 1_000)
	if ch.Banks[0].OpenRow != -1 {
		t.Fatal("refresh must precharge the open row")
	}
	if ch.Precharges != pre+1 {
		t.Fatal("refresh of an open row must count a precharge")
	}
	if ch.BankReady(0, 999) || !ch.BankReady(0, 1_000) {
		t.Fatal("bank must be blocked exactly through the refresh window")
	}
	if ch.Refreshes != 1 {
		t.Fatalf("Refreshes = %d, want 1", ch.Refreshes)
	}
}
