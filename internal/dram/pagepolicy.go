package dram

import "fmt"

// PagePolicy selects how a bank manages its row buffer after an access:
// leave the row open betting on locality (open-page), precharge
// immediately betting against it (closed-page), or predict per bank from
// recent row-buffer outcomes (HAPPY-style adaptive). The zero value is
// OpenPage so existing configs keep their behavior.
type PagePolicy int

const (
	OpenPage PagePolicy = iota
	ClosedPage
	AdaptivePage
)

// String implements fmt.Stringer.
func (p PagePolicy) String() string {
	switch p {
	case OpenPage:
		return "open"
	case ClosedPage:
		return "closed"
	case AdaptivePage:
		return "adaptive"
	default:
		return fmt.Sprintf("PagePolicy(%d)", int(p))
	}
}

// ParsePagePolicy maps the configuration-surface spellings onto a
// PagePolicy. The empty string is OpenPage, the simulator default.
func ParsePagePolicy(s string) (PagePolicy, error) {
	switch s {
	case "", "open":
		return OpenPage, nil
	case "closed":
		return ClosedPage, nil
	case "adaptive":
		return AdaptivePage, nil
	default:
		return OpenPage, fmt.Errorf("dram: unknown page policy %q (open, closed, adaptive)", s)
	}
}

// PagePolicyNames returns the accepted ParsePagePolicy vocabulary.
func PagePolicyNames() []string { return []string{"open", "closed", "adaptive"} }

// pagePredictor is one bank's keep-open/precharge predictor: a saturating
// counter trained on observed row-buffer outcomes, in the spirit of HAPPY
// (Ghasempour et al.) reduced to per-bank history. High counter values
// vote keep-open, low values vote precharge.
type pagePredictor struct {
	ctr     int8  // saturating in [0, predMax]
	lastRow int64 // last accessed row, remembered across precharges
}

const (
	predMax  = 7
	predKeep = 4 // ctr >= predKeep predicts keep-open
	predInit = 5 // start leaning open, matching the open-page default
)

func newPagePredictor() pagePredictor { return pagePredictor{ctr: predInit, lastRow: -1} }

// train updates the counter with the outcome the previous decision
// produced for an access to row:
//
//   - a row hit means keeping the row open paid off;
//   - a row conflict means it should have been precharged;
//   - arriving at a precharged bank, re-opening the row that was just
//     closed means the precharge wasted a tRCD (vote open), while opening
//     a different row means the precharge hid a would-be conflict's tRP
//     (vote close).
func (p *pagePredictor) train(state RowState, row uint64) {
	switch state {
	case RowHit:
		p.up()
	case RowConflict:
		p.down()
	case RowClosed:
		if p.lastRow < 0 {
			return // cold bank: nothing to learn from
		}
		if p.lastRow == int64(row) {
			p.up()
		} else {
			p.down()
		}
	}
}

func (p *pagePredictor) up() {
	if p.ctr < predMax {
		p.ctr++
	}
}

func (p *pagePredictor) down() {
	if p.ctr > 0 {
		p.ctr--
	}
}

// keepOpen returns the current prediction.
func (p *pagePredictor) keepOpen() bool { return p.ctr >= predKeep }
