package dram

import (
	"testing"
	"testing/quick"
)

// geometries returns a spread of valid configs, with and without the
// permutation remap, for the bijection properties.
func geometries() []Config {
	var out []Config
	for _, chans := range []int{1, 2, 4} {
		for _, banks := range []int{4, 8, 16} {
			for _, perm := range []bool{false, true} {
				c := DefaultConfig()
				c.Channels = chans
				c.Banks = banks
				c.Permutation = perm
				out = append(out, c)
			}
		}
	}
	return out
}

func TestMapUnmapBijection(t *testing.T) {
	for _, c := range geometries() {
		c := c
		// Unmap(Map(line)) == line over the full line-address space.
		roundTrip := func(line uint64) bool { return c.Unmap(c.Map(line)) == line }
		if err := quick.Check(roundTrip, nil); err != nil {
			t.Errorf("chans=%d banks=%d perm=%v: %v", c.Channels, c.Banks, c.Permutation, err)
		}
		// Map(Unmap(addr)) == addr for in-range coordinates: injectivity in
		// the other direction, so the pair is a true bijection.
		coords := func(row uint64, bank, ch uint16, col uint16) bool {
			a := Address{
				Channel: int(ch) % c.Channels,
				Bank:    int(bank) % c.Banks,
				Row:     row % (1 << 40),
				Col:     uint64(col) % c.LinesPerRow(),
			}
			return c.Map(c.Unmap(a)) == a
		}
		if err := quick.Check(coords, nil); err != nil {
			t.Errorf("chans=%d banks=%d perm=%v (inverse): %v", c.Channels, c.Banks, c.Permutation, err)
		}
	}
}

func TestUnmapPermutationSelfInverse(t *testing.T) {
	// The permutation remap XORs low row bits into the bank index; applying
	// it twice must be the identity, which is what lets Unmap recover the
	// pre-permutation bank.
	c := DefaultConfig()
	c.Permutation = true
	for line := uint64(0); line < 1<<16; line++ {
		a := c.Map(line)
		if got := c.Unmap(a); got != line {
			t.Fatalf("line %#x -> %+v -> %#x", line, a, got)
		}
	}
}

func FuzzMapUnmap(f *testing.F) {
	f.Add(uint64(0), uint8(1), uint8(8), false)
	f.Add(uint64(1<<40), uint8(2), uint8(16), true)
	f.Add(^uint64(0)>>8, uint8(4), uint8(4), true)
	f.Fuzz(func(t *testing.T, line uint64, chans, banks uint8, perm bool) {
		c := DefaultConfig()
		// Clamp the fuzzed geometry onto valid powers of two.
		c.Channels = 1 << (chans % 3) // 1, 2, 4
		c.Banks = 4 << (banks % 3)    // 4, 8, 16
		c.Permutation = perm
		if err := c.Validate(); err != nil {
			t.Fatalf("fuzz geometry invalid: %v", err)
		}
		a := c.Map(line)
		if a.Bank < 0 || a.Bank >= c.Banks || a.Channel < 0 || a.Channel >= c.Channels || a.Col >= c.LinesPerRow() {
			t.Fatalf("Map(%#x) out of range: %+v", line, a)
		}
		if got := c.Unmap(a); got != line {
			t.Fatalf("Unmap(Map(%#x)) = %#x (%+v)", line, got, a)
		}
	})
}
