package dram

import (
	"testing"
	"testing/quick"
)

func TestTimingLatencyOrdering(t *testing.T) {
	tm := DDR3()
	hit, closed, conflict := tm.Latency(RowHit), tm.Latency(RowClosed), tm.Latency(RowConflict)
	if !(hit < closed && closed < conflict) {
		t.Fatalf("latency ordering broken: hit=%d closed=%d conflict=%d", hit, closed, conflict)
	}
	// The paper's ~1:3 row-hit to row-conflict asymmetry.
	if ratio := float64(conflict) / float64(hit); ratio < 2 || ratio > 4 {
		t.Fatalf("hit:conflict ratio %.2f outside the expected 2-4x band", ratio)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.Channels = 3 },
		func(c *Config) { c.Banks = 0 },
		func(c *Config) { c.Banks = 6 },
		func(c *Config) { c.RowBytes = 0 },
		func(c *Config) { c.LineBytes = 0 },
		func(c *Config) { c.RowBytes = 100 },
	}
	for i, mod := range cases {
		c := DefaultConfig()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestMapGeometry(t *testing.T) {
	c := DefaultConfig()
	lpr := c.LinesPerRow()
	if lpr != 64 {
		t.Fatalf("4KB rows of 64B lines should hold 64 lines, got %d", lpr)
	}
	// Consecutive lines walk one row in one bank.
	a0, a1 := c.Map(0), c.Map(1)
	if a0.Bank != a1.Bank || a0.Row != a1.Row || a1.Col != a0.Col+1 {
		t.Fatalf("consecutive lines should share a row: %+v %+v", a0, a1)
	}
	// Crossing the row boundary moves to the next bank (row interleaving).
	b := c.Map(lpr)
	if b.Bank == a0.Bank || b.Row != a0.Row {
		t.Fatalf("row crossing should change bank, keep row index: %+v -> %+v", a0, b)
	}
}

func TestMapInjective(t *testing.T) {
	c := DefaultConfig()
	c.Channels = 2
	f := func(line uint32) bool {
		a := c.Map(uint64(line))
		// Reconstruct the line address from the coordinates.
		rest := a.Row*uint64(c.Banks) + uint64(a.Bank)
		rest = rest*uint64(c.Channels) + uint64(a.Channel)
		return rest*c.LinesPerRow()+a.Col == uint64(line)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapPermutationStaysInRange(t *testing.T) {
	c := DefaultConfig()
	c.Permutation = true
	f := func(line uint64) bool {
		a := c.Map(line)
		return a.Bank >= 0 && a.Bank < c.Banks && a.Channel == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBankStateMachine(t *testing.T) {
	ch := NewChannel(DefaultConfig())
	if got := ch.Banks[0].State(5); got != RowClosed {
		t.Fatalf("fresh bank should be closed, got %v", got)
	}
	fin, st := ch.Issue(0, 5, 0, false)
	if st != RowClosed {
		t.Fatalf("first access should be row-closed, got %v", st)
	}
	if !ch.BankReady(0, fin) || ch.BankReady(0, fin-1) {
		t.Fatalf("bank busy window wrong: finish=%d", fin)
	}
	_, st = ch.Issue(0, 5, fin, false)
	if st != RowHit {
		t.Fatalf("same row should hit, got %v", st)
	}
	_, st = ch.Issue(0, 9, fin*3, false)
	if st != RowConflict {
		t.Fatalf("different row should conflict, got %v", st)
	}
}

func TestClosedRowPolicy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClosedRow = true
	ch := NewChannel(cfg)
	fin, _ := ch.Issue(0, 5, 0, false) // no more row work: precharge for free
	if ch.Banks[0].OpenRow != -1 {
		t.Fatalf("closed-row policy should close the row")
	}
	_, st := ch.Issue(0, 7, fin, false)
	if st != RowClosed {
		t.Fatalf("next different-row access should be row-closed (not conflict), got %v", st)
	}
	// With more row work pending the row stays open.
	fin2, _ := ch.Issue(0, 7, fin*4, true)
	if ch.Banks[0].OpenRow != 7 {
		t.Fatalf("keepOpen should keep the row open")
	}
	_, st = ch.Issue(0, 7, fin2, false)
	if st != RowHit {
		t.Fatalf("pending row work should hit, got %v", st)
	}
}

func TestBusSerializesBanks(t *testing.T) {
	ch := NewChannel(DefaultConfig())
	// Two different banks issued the same cycle: accesses overlap except
	// the data burst.
	f0, _ := ch.Issue(0, 1, 0, false)
	f1, _ := ch.Issue(1, 1, 0, false)
	if f1 < f0+ch.cfg.Timing.Burst {
		t.Fatalf("bursts must serialize on the bus: f0=%d f1=%d", f0, f1)
	}
	if f1 >= f0+ch.cfg.Timing.Latency(RowClosed) {
		t.Fatalf("banks should overlap their activates: f0=%d f1=%d", f0, f1)
	}
}

func TestRowHitRateStat(t *testing.T) {
	ch := NewChannel(DefaultConfig())
	fin, _ := ch.Issue(0, 1, 0, false)
	fin, _ = ch.Issue(0, 1, fin, false)
	_, _ = ch.Issue(0, 1, fin, false)
	if got := ch.RowHitRate(); got < 0.6 || got > 0.7 {
		t.Fatalf("2 hits of 3 accesses: RBH=%v", got)
	}
	if ch.Completed() != 3 {
		t.Fatalf("completed=%d", ch.Completed())
	}
}
