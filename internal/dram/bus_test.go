package dram

import (
	"sort"
	"testing"
)

// TestIssueBusSerialization is the data-bus contention regression: with
// requests in flight on many banks at once, no two bursts may overlap on
// the shared data bus, and the accounted bus occupancy must equal
// completed requests times the burst length exactly.
func TestIssueBusSerialization(t *testing.T) {
	cfg := DefaultConfig()
	ch := NewChannel(cfg)
	burst := cfg.Timing.Burst

	type window struct{ start, end uint64 }
	var bursts []window
	completed := uint64(0)
	now := uint64(0)
	// Waves of concurrent accesses: every ready bank issues in the same
	// cycle, mixing rows so hits, closed rows and conflicts all occur.
	for round := uint64(0); round < 32; round++ {
		for b := 0; b < cfg.Banks; b++ {
			if !ch.BankReady(b, now) {
				continue
			}
			row := (round / 2) % 3 // repeat rows for hits, rotate for conflicts
			fin, _ := ch.Issue(b, row, now, false)
			if fin < now+burst {
				t.Fatalf("finish %d before burst could fit after cycle %d", fin, now)
			}
			bursts = append(bursts, window{fin - burst, fin})
			completed++
		}
		now += 30 // advance partway through the accesses so banks overlap
	}

	if completed < uint64(2*cfg.Banks) {
		t.Fatalf("test issued only %d requests; want real bank overlap", completed)
	}
	sort.Slice(bursts, func(i, j int) bool { return bursts[i].start < bursts[j].start })
	for i := 1; i < len(bursts); i++ {
		if bursts[i].start < bursts[i-1].end {
			t.Fatalf("burst %d [%d,%d) overlaps burst %d [%d,%d) on the data bus",
				i, bursts[i].start, bursts[i].end, i-1, bursts[i-1].start, bursts[i-1].end)
		}
	}
	if want := completed * burst; ch.BusBusyCycles != want {
		t.Fatalf("BusBusyCycles = %d, want completed(%d) x Burst(%d) = %d",
			ch.BusBusyCycles, completed, burst, want)
	}
	if ch.Completed() != completed {
		t.Fatalf("channel completed %d, test counted %d", ch.Completed(), completed)
	}
}
