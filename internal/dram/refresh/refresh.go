// Package refresh is the DRAM maintenance engine: a cycle-level model of
// DDR3-style periodic refresh with the JEDEC postpone/pull-in credit
// window. Every refresh unit (one bank under per-bank refresh, the whole
// rank under all-bank refresh) accrues one refresh obligation per tREFI;
// servicing an obligation occupies the unit for tRFC. The controller may
// postpone up to MaxPostpone obligations when demand traffic is waiting
// and pull refreshes in ahead of schedule when banks idle, banking up to
// MaxPostpone credits; when the postpone budget is exhausted the unit
// must refresh before it accepts any other access (the forced-refresh
// deadline path).
//
// The engine is pure bookkeeping: it decides when a refresh may, should,
// or must issue and accounts the credits, but the memory controller owns
// the actual scheduling (internal/memctrl consults the engine before
// issuing requests and applies refresh busy windows to the DRAM banks).
// That split keeps this package free of controller and channel internals,
// mirroring internal/memctrl/sched.
package refresh

import "fmt"

// Mode selects the refresh granularity.
type Mode int

const (
	// Off disables refresh entirely (the historical simulator behavior
	// and the default, so existing artifacts stay byte-identical).
	Off Mode = iota
	// PerBank refreshes one bank at a time (DDR4 REFpb-style): each bank
	// accrues its own obligations on a staggered schedule and blocks only
	// itself for the shorter TRFCpb.
	PerBank
	// AllBank refreshes the whole rank at once (DDR3 REF): one obligation
	// stream, and a refresh blocks every bank for TRFC.
	AllBank
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case PerBank:
		return "per-bank"
	case AllBank:
		return "all-bank"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode maps the configuration-surface spellings onto a Mode. The
// empty string is Off, so zero-valued configs mean "no refresh".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "off":
		return Off, nil
	case "per-bank":
		return PerBank, nil
	case "all-bank":
		return AllBank, nil
	default:
		return Off, fmt.Errorf("refresh: unknown mode %q (off, per-bank, all-bank)", s)
	}
}

// ModeNames returns the accepted ParseMode vocabulary.
func ModeNames() []string { return []string{"off", "per-bank", "all-bank"} }

// Config holds the refresh timing in processor cycles. The defaults
// correspond to a DDR3-1333 2Gb part on the 4GHz core the rest of the
// simulator assumes: tREFI = 7.8us = 31200 cycles, tRFC = 160ns = 640
// cycles for an all-bank refresh, and 90ns = 360 cycles for a per-bank
// one. MaxPostpone is the JEDEC window of 8 refreshes that may be
// postponed past their tREFI slot (and symmetrically pulled in early).
type Config struct {
	Mode        Mode
	TREFI       uint64 // cycles between refresh obligations per unit
	TRFC        uint64 // all-bank refresh occupancy in cycles
	TRFCpb      uint64 // per-bank refresh occupancy in cycles
	MaxPostpone int    // postpone/pull-in credit window
}

// DefaultConfig returns the DDR3-1333 refresh timing with refresh Off.
func DefaultConfig() Config {
	return Config{Mode: Off, TREFI: 31_200, TRFC: 640, TRFCpb: 360, MaxPostpone: 8}
}

// withDefaults fills zero-valued timing fields so a config that only sets
// Mode still validates.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.TREFI == 0 {
		c.TREFI = d.TREFI
	}
	if c.TRFC == 0 {
		c.TRFC = d.TRFC
	}
	if c.TRFCpb == 0 {
		c.TRFCpb = d.TRFCpb
	}
	if c.MaxPostpone == 0 {
		c.MaxPostpone = d.MaxPostpone
	}
	return c
}

// Resolved returns the config with zero-valued timing fields replaced by
// the DDR3-1333 defaults — the timing NewEngine actually runs with.
func (c Config) Resolved() Config { return c.withDefaults() }

// Enabled reports whether the config asks for any refresh at all.
func (c Config) Enabled() bool { return c.Mode != Off }

// Validate reports a descriptive error for impossible refresh timings.
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	d := c.withDefaults()
	switch {
	case d.Mode != PerBank && d.Mode != AllBank:
		return fmt.Errorf("refresh: unknown mode %d", int(d.Mode))
	case d.TRFC >= d.TREFI || d.TRFCpb >= d.TREFI:
		return fmt.Errorf("refresh: tRFC (%d/%d) must be shorter than tREFI (%d)", d.TRFC, d.TRFCpb, d.TREFI)
	case d.MaxPostpone < 1:
		return fmt.Errorf("refresh: MaxPostpone must be positive, got %d", d.MaxPostpone)
	}
	return nil
}

// Unit is one refresh domain's state: a bank under PerBank, the whole
// rank under AllBank.
type Unit struct {
	NextDue   uint64 // cycle at which the next obligation accrues
	Owed      int    // outstanding obligations; negative = pulled-in ahead
	BusyUntil uint64 // refresh in progress through this cycle
	Accrued   uint64 // total obligations accrued (tREFI windows elapsed)
	Issued    uint64 // refreshes issued for this unit
}

// Engine tracks refresh obligations and credits for one channel.
type Engine struct {
	cfg   Config
	banks int
	units []Unit
	last  uint64 // cycle of the previous Advance
	dt    uint64 // cycles covered by the current Advance
	dtCap uint64 // upper bound on dt (0 = uncapped); see CapDelta

	// Counters (telemetry and the ablation read these).
	Issued        uint64 // refreshes issued
	Postponed     uint64 // obligations that slipped past a full tREFI window
	PulledIn      uint64 // refreshes issued ahead of schedule on idle banks
	Forced        uint64 // refreshes issued on the exhausted-credit deadline path
	BlockedCycles uint64 // cycles a bank with waiting requests was refresh-blocked
}

// NewEngine builds the engine for a channel with the given bank count.
// Per-bank units are staggered across the tREFI window, as real
// controllers spread REFpb commands.
func NewEngine(cfg Config, banks int) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{cfg: cfg, banks: banks}
	n := 1
	if cfg.Mode == PerBank {
		n = banks
	}
	e.units = make([]Unit, n)
	for u := range e.units {
		e.units[u].NextDue = cfg.TREFI * uint64(u+1) / uint64(n)
	}
	return e
}

// Config returns the timing the engine runs with (defaults filled in).
func (e *Engine) Config() Config { return e.cfg }

// Mode returns the refresh granularity.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// Duration returns how many cycles one refresh occupies its unit.
func (e *Engine) Duration() uint64 {
	if e.cfg.Mode == PerBank {
		return e.cfg.TRFCpb
	}
	return e.cfg.TRFC
}

// unit maps a bank index onto its refresh unit.
func (e *Engine) unit(bank int) *Unit {
	if e.cfg.Mode == PerBank {
		return &e.units[bank]
	}
	return &e.units[0]
}

// Advance accrues the obligations whose tREFI slots have passed by now.
// An obligation accruing while an earlier one is still outstanding means
// that earlier refresh has been postponed past a full window. Call once
// per controller tick, with non-decreasing cycles.
func (e *Engine) Advance(now uint64) {
	if now > e.last {
		e.dt = now - e.last
		e.last = now
	} else {
		e.dt = 0
	}
	if e.dtCap != 0 && e.dt > e.dtCap {
		e.dt = e.dtCap
	}
	for u := range e.units {
		unit := &e.units[u]
		for now >= unit.NextDue {
			if unit.Owed >= 1 {
				e.Postponed++
			}
			unit.Owed++
			unit.Accrued++
			unit.NextDue += e.cfg.TREFI
		}
	}
}

// Due reports whether bank's unit has an outstanding obligation it could
// service now (not already refreshing).
func (e *Engine) Due(bank int, now uint64) bool {
	u := e.unit(bank)
	return u.Owed > 0 && u.BusyUntil <= now
}

// MustRefresh reports whether bank's unit has exhausted its postpone
// credits: the controller must refresh it before issuing anything else.
func (e *Engine) MustRefresh(bank int) bool {
	return e.unit(bank).Owed >= e.cfg.MaxPostpone
}

// Refreshing reports whether bank's unit is mid-refresh at now.
func (e *Engine) Refreshing(bank int, now uint64) bool {
	return e.unit(bank).BusyUntil > now
}

// Blocked reports whether bank may not accept a request at now: either a
// refresh is in progress, or the forced-refresh deadline has been reached
// and the bank must drain into a refresh first.
func (e *Engine) Blocked(bank int, now uint64) bool {
	return e.Refreshing(bank, now) || e.MustRefresh(bank)
}

// CanPullIn reports whether bank's unit may bank another pull-in credit
// by refreshing ahead of schedule.
func (e *Engine) CanPullIn(bank int) bool {
	return e.unit(bank).Owed > -e.cfg.MaxPostpone
}

// Start issues one refresh for bank's unit at now and returns the cycle
// through which the unit is occupied. The caller blocks the affected DRAM
// bank(s) until then. Issuing with no outstanding obligation consumes a
// pull-in credit; issuing at the credit deadline counts as forced.
func (e *Engine) Start(bank int, now uint64) (until uint64) {
	u := e.unit(bank)
	if u.Owed <= 0 {
		e.PulledIn++
	}
	if u.Owed >= e.cfg.MaxPostpone {
		e.Forced++
	}
	u.Owed--
	u.Issued++
	e.Issued++
	u.BusyUntil = now + e.Duration()
	return u.BusyUntil
}

// NoteBlocked accounts the cycles covered by the current Advance to
// refresh-blocked time; the controller calls it when a bank with waiting
// requests was unavailable because of refresh.
func (e *Engine) NoteBlocked() { e.BlockedCycles += e.dt }

// CapDelta bounds the per-Advance delta NoteBlocked charges. A caller
// that ticks the engine on a fixed grid of `period` cycles while traffic
// is waiting — but may legitimately skip ticks across provably-idle gaps
// (the event kernel) — sets the cap to that period, making the first
// post-gap NoteBlocked charge exactly what per-tick stepping would have
// charged. With every tick executed the delta already equals the period,
// so the cap is an identity there. Zero disables the cap.
func (e *Engine) CapDelta(period uint64) { e.dtCap = period }

// NextAccrual returns the earliest cycle at which any unit accrues its
// next obligation — the only spontaneous state change the engine makes,
// and therefore an event the cycle-skipping kernel must not jump past.
func (e *Engine) NextAccrual() uint64 {
	next := ^uint64(0)
	for u := range e.units {
		if e.units[u].NextDue < next {
			next = e.units[u].NextDue
		}
	}
	return next
}

// BusyUntil returns the cycle through which bank's unit is occupied by an
// in-progress refresh (a past cycle when idle) — the expiry event after
// which the unit can start its next refresh or unblock its bank.
func (e *Engine) BusyUntil(bank int) uint64 { return e.unit(bank).BusyUntil }

// Units returns a copy of the per-unit state (tests and invariants).
func (e *Engine) Units() []Unit { return append([]Unit(nil), e.units...) }

// Audit checks the refresh conservation invariant at cycle now (which
// must be >= the last Advance): every unit's issued refreshes equal its
// elapsed tREFI windows within the postpone/pull-in credit band. One
// window of slack absorbs the in-flight accrual at the audit instant.
func (e *Engine) Audit(now uint64) error {
	for ui := range e.units {
		u := &e.units[ui]
		first := e.cfg.TREFI * uint64(ui+1) / uint64(len(e.units))
		var windows uint64
		if now >= first {
			windows = (now-first)/e.cfg.TREFI + 1
		}
		if u.Accrued > windows || windows-u.Accrued > 1 {
			return fmt.Errorf("refresh: unit %d accrued %d obligations, %d tREFI windows elapsed", ui, u.Accrued, windows)
		}
		if int64(u.Accrued) != int64(u.Issued)+int64(u.Owed) {
			return fmt.Errorf("refresh: unit %d books do not balance: accrued=%d issued=%d owed=%d", ui, u.Accrued, u.Issued, u.Owed)
		}
		if u.Owed > e.cfg.MaxPostpone+1 || u.Owed < -e.cfg.MaxPostpone {
			return fmt.Errorf("refresh: unit %d owes %d refreshes, outside the +/-%d credit band", ui, u.Owed, e.cfg.MaxPostpone)
		}
	}
	return nil
}
