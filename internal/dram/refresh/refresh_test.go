package refresh

import "testing"

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"": Off, "off": Off, "per-bank": PerBank, "all-bank": AllBank} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseMode("rank-level"); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	c := Config{Mode: PerBank} // zero timings fill from defaults
	if err := c.Validate(); err != nil {
		t.Fatalf("mode-only config invalid: %v", err)
	}
	c = Config{Mode: AllBank, TREFI: 100, TRFC: 200}
	if err := c.Validate(); err == nil {
		t.Error("tRFC >= tREFI accepted")
	}
}

// drive advances the engine to now, issuing refreshes per the policy fn.
func drive(e *Engine, banks int, upto uint64, step uint64, issue func(now uint64)) {
	for now := step; now <= upto; now += step {
		e.Advance(now)
		issue(now)
	}
}

func TestConservationEagerIssue(t *testing.T) {
	// A controller that refreshes whenever due must issue exactly one
	// refresh per elapsed tREFI window per unit.
	for _, mode := range []Mode{PerBank, AllBank} {
		cfg := Config{Mode: mode, TREFI: 1000, TRFC: 100, TRFCpb: 50, MaxPostpone: 8}
		e := NewEngine(cfg, 4)
		end := uint64(100_000)
		drive(e, 4, end, 10, func(now uint64) {
			for b := 0; b < 4; b++ {
				if e.Due(b, now) && !e.Refreshing(b, now) {
					e.Start(b, now)
				}
			}
		})
		if err := e.Audit(end); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		wantPerUnit := end / cfg.TREFI // +-1 for stagger
		for ui, u := range e.Units() {
			if u.Issued < wantPerUnit-1 || u.Issued > wantPerUnit+1 {
				t.Errorf("%v unit %d: issued %d, want ~%d", mode, ui, u.Issued, wantPerUnit)
			}
		}
		if e.Postponed != 0 || e.PulledIn != 0 || e.Forced != 0 {
			t.Errorf("%v: eager issue should not postpone/pull-in/force: %d/%d/%d",
				mode, e.Postponed, e.PulledIn, e.Forced)
		}
	}
}

func TestPostponeCreditsAndForcedDeadline(t *testing.T) {
	// A controller that never volunteers a refresh accumulates postpones
	// until MustRefresh fires at the credit limit; servicing only forced
	// refreshes keeps every unit inside the +-8 band forever.
	cfg := Config{Mode: PerBank, TREFI: 1000, TRFCpb: 50, MaxPostpone: 8}
	e := NewEngine(cfg, 2)
	sawForced := false
	end := uint64(200_000)
	drive(e, 2, end, 10, func(now uint64) {
		for b := 0; b < 2; b++ {
			if e.MustRefresh(b) && !e.Refreshing(b, now) {
				sawForced = true
				if !e.Blocked(b, now) {
					t.Fatal("MustRefresh unit not Blocked")
				}
				e.Start(b, now)
			}
		}
	})
	if !sawForced {
		t.Fatal("forced-refresh deadline never fired")
	}
	if e.Forced == 0 || e.Postponed == 0 {
		t.Fatalf("expected forced and postponed counts, got forced=%d postponed=%d", e.Forced, e.Postponed)
	}
	if err := e.Audit(end); err != nil {
		t.Fatal(err)
	}
}

func TestPullInCreditsBounded(t *testing.T) {
	// A controller that refreshes at every opportunity (idle machine)
	// banks pull-in credits but never more than MaxPostpone ahead.
	cfg := Config{Mode: PerBank, TREFI: 1000, TRFCpb: 50, MaxPostpone: 8}
	e := NewEngine(cfg, 1)
	drive(e, 1, 50_000, 10, func(now uint64) {
		if !e.Refreshing(0, now) && (e.Due(0, now) || e.CanPullIn(0)) {
			e.Start(0, now)
		}
	})
	if e.PulledIn == 0 {
		t.Fatal("idle issue never pulled a refresh in")
	}
	u := e.Units()[0]
	if u.Owed < -cfg.MaxPostpone {
		t.Fatalf("pulled in past the credit window: owed %d", u.Owed)
	}
	if err := e.Audit(50_000); err != nil {
		t.Fatal(err)
	}
}

func TestAllBankSharesOneUnit(t *testing.T) {
	e := NewEngine(Config{Mode: AllBank, TREFI: 1000, TRFC: 100, MaxPostpone: 8}, 8)
	e.Advance(1500)
	if !e.Due(0, 1500) || !e.Due(7, 1500) {
		t.Fatal("all banks should share the rank obligation")
	}
	until := e.Start(3, 1500)
	if until != 1600 {
		t.Fatalf("refresh until %d, want 1600", until)
	}
	for b := 0; b < 8; b++ {
		if !e.Refreshing(b, 1599) {
			t.Fatalf("bank %d not refreshing during all-bank refresh", b)
		}
	}
}

func TestNoteBlockedUsesAdvanceDelta(t *testing.T) {
	e := NewEngine(Config{Mode: PerBank}, 1)
	e.Advance(4)
	e.NoteBlocked()
	e.Advance(8)
	e.NoteBlocked()
	e.NoteBlocked() // two banks blocked in the same tick
	if e.BlockedCycles != 4+4+4 {
		t.Fatalf("blocked cycles %d, want 12", e.BlockedCycles)
	}
}
