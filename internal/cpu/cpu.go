// Package cpu models the processing cores of the simulated CMP. The model
// is deliberately simple — the paper's results are memory-system results —
// but keeps the properties that matter to a DRAM-scheduling study:
//
//   - a finite reorder buffer (256 entries) retired in order, up to 4 per
//     cycle, so long DRAM latencies stall the window;
//   - loads issue to the memory hierarchy at dispatch, so independent
//     misses overlap (memory-level parallelism) while dependent loads
//     (pointer chasing) serialize;
//   - optional runahead execution (§6.14): when an L2-miss load blocks the
//     ROB head, the core checkpoints, pseudo-retires, and keeps fetching to
//     generate accurate future memory requests, replaying the real path
//     when the blocking fill returns.
package cpu

import "padc/internal/trace"

// CycleClass attributes one core cycle to the resource that bounded it.
// The profiler classifies every cycle into exactly one class, so over any
// window the class counts sum to the cycle count — the cycle-accounting
// identity the attribution tables rely on.
type CycleClass uint8

const (
	// CycleRetire: at least one instruction retired this cycle.
	CycleRetire CycleClass = iota
	// CycleStallDemand: retirement was blocked by a load waiting on an
	// outstanding long-latency (DRAM) miss — the ROB fills behind it.
	CycleStallDemand
	// CycleStallResource: the head load could not even enter the memory
	// system (MSHR file or request buffer full) and is backing off.
	CycleStallResource
	// CycleCompute: the window had work but nothing retired — dependence
	// waits, short-latency cache hits in flight, fill/fetch cycles.
	CycleCompute
	// CycleIdle: the instruction window was empty.
	CycleIdle
	// NumCycleClasses bounds CycleClass values.
	NumCycleClasses
)

// String implements fmt.Stringer.
func (c CycleClass) String() string {
	switch c {
	case CycleRetire:
		return "retire"
	case CycleStallDemand:
		return "demand-miss"
	case CycleStallResource:
		return "mshr-full"
	case CycleCompute:
		return "compute"
	case CycleIdle:
		return "idle"
	default:
		return "unknown"
	}
}

// CycleClassNames returns the class labels in CycleClass order, for table
// headers and metric names.
func CycleClassNames() []string {
	out := make([]string, NumCycleClasses)
	for c := CycleClass(0); c < NumCycleClasses; c++ {
		out[c] = c.String()
	}
	return out
}

// CycleAccount is a per-class cycle tally.
type CycleAccount [NumCycleClasses]uint64

// Total returns the cycles accounted (equals the profiled cycle count).
func (a *CycleAccount) Total() uint64 {
	var t uint64
	for _, v := range a {
		t += v
	}
	return t
}

// Config shapes a core. Zero values fall back to the paper's baseline
// (Table 3): 256-entry ROB, 4-wide retire.
type Config struct {
	ROB      int
	Width    int
	Runahead bool
}

// DefaultConfig returns the paper's per-core baseline.
func DefaultConfig() Config { return Config{ROB: 256, Width: 4} }

// LoadResult is the memory hierarchy's immediate answer to a load.
type LoadResult struct {
	ReadyAt uint64 // valid when !Pending
	Pending bool   // completion will arrive via Core.Complete
	Retry   bool   // resource full; re-issue next cycle
}

// Memory is the interface the core uses to access its cache hierarchy.
// seq identifies the load so the hierarchy can complete it later.
// firstTry distinguishes a load's first issue from retries after a
// resource-full rejection, so the hierarchy counts statistics and trains
// prefetchers exactly once per load.
type Memory interface {
	Load(coreID int, seq, line, pc uint64, runahead bool, now uint64, firstTry bool) LoadResult
}

type robEntry struct {
	seq      uint64
	line     uint64
	pc       uint64
	isLoad   bool
	dep      bool   // depends on the previous memory instruction
	depOn    uint64 // seq of the producing memory instruction when dep
	ready    bool
	readyAt  uint64
	issued   bool
	tried    bool   // reached the memory hierarchy at least once
	rejected bool   // last issue attempt was a resource-full rejection
	retryAt  uint64 // back-off deadline after a resource-full rejection
	l2miss   bool   // became Pending (true long-latency miss)
	runahead bool   // fetched during runahead mode
}

// Core is one simulated processor.
type Core struct {
	ID  int
	cfg Config
	gen trace.Gen
	mem Memory

	buf     []robEntry
	head    int
	count   int
	nextIdx uint64 // next instruction index to fetch

	prevMemSeq  uint64 // seq of the most recent memory instruction fetched
	havePrevMem bool

	// deferred holds seqs of dispatched loads that could not issue yet
	// (dependence not resolved, or memory resources full); retried each
	// cycle. Keeping this list avoids scanning the whole window.
	deferred []uint64

	// Runahead state.
	inRunahead bool
	raBlockSeq uint64 // seq of the load that triggered runahead
	raResume   uint64 // instruction index to replay from on exit

	// acct, when non-nil, attributes every cycle to one CycleClass; nil
	// (the default) keeps the uninstrumented Tick free of profiling work
	// beyond one pointer compare.
	acct *CycleAccount

	// Stats.
	Retired     uint64
	Loads       uint64
	StallCycles uint64 // cycles retirement was blocked by an unready load
	RAEntries   uint64 // times runahead mode was entered
	RAInsts     uint64 // instructions pseudo-executed in runahead mode
}

// EnableAccounting turns on per-cycle attribution. Call before the first
// Tick so the account covers the whole run.
func (c *Core) EnableAccounting() { c.acct = new(CycleAccount) }

// Account returns the cycle attribution (nil unless EnableAccounting was
// called).
func (c *Core) Account() *CycleAccount { return c.acct }

// AccountSnapshot returns a copy of the attribution as a slice in
// CycleClass order, or nil when accounting is off. The copy freezes a
// core's buckets at its instruction target while the core keeps running
// for contention.
func (c *Core) AccountSnapshot() []uint64 {
	if c.acct == nil {
		return nil
	}
	out := make([]uint64, NumCycleClasses)
	copy(out, c.acct[:])
	return out
}

// classifyCycle attributes the cycle that just failed to retire anything:
// the ROB-head entry names the bounding resource.
func (c *Core) classifyCycle() CycleClass {
	if c.count == 0 {
		return CycleIdle
	}
	e := c.at(0)
	if e.isLoad {
		switch {
		case e.issued && !e.ready && e.l2miss:
			return CycleStallDemand
		case !e.issued && e.rejected:
			return CycleStallResource
		}
	}
	return CycleCompute
}

// New builds a core executing gen against mem.
func New(id int, cfg Config, gen trace.Gen, mem Memory) *Core {
	def := DefaultConfig()
	if cfg.ROB == 0 {
		cfg.ROB = def.ROB
	}
	if cfg.Width == 0 {
		cfg.Width = def.Width
	}
	return &Core{ID: id, cfg: cfg, gen: gen, mem: mem, buf: make([]robEntry, cfg.ROB)}
}

func (c *Core) at(pos int) *robEntry { return &c.buf[(c.head+pos)%len(c.buf)] }

// entryBySeq returns the in-window entry with the given seq, or nil. Seqs
// are contiguous within the window, so this is index arithmetic.
func (c *Core) entryBySeq(seq uint64) *robEntry {
	if c.count == 0 {
		return nil
	}
	first := c.at(0).seq
	if seq < first || seq >= first+uint64(c.count) {
		return nil
	}
	return c.at(int(seq - first))
}

// Complete delivers a memory fill for the load with the given seq. Stale
// completions for flushed runahead work are ignored.
func (c *Core) Complete(seq, now uint64) {
	if c.inRunahead && seq == c.raBlockSeq {
		c.exitRunahead()
		return
	}
	if e := c.entryBySeq(seq); e != nil && e.issued && !e.ready {
		e.ready = true
		e.readyAt = now
	}
}

func (c *Core) enterRunahead(blockSeq uint64) {
	c.inRunahead = true
	c.raBlockSeq = blockSeq
	c.raResume = blockSeq // seq doubles as instruction index
	c.RAEntries++
	// Pseudo-retire the blocking load; fetch continues past it. Everything
	// still in the window will be replayed on exit, so it must count as
	// runahead work, not retired instructions.
	c.head = (c.head + 1) % len(c.buf)
	c.count--
	for i := 0; i < c.count; i++ {
		c.at(i).runahead = true
	}
}

func (c *Core) exitRunahead() {
	c.inRunahead = false
	c.count = 0
	c.nextIdx = c.raResume
	c.havePrevMem = false
	c.deferred = c.deferred[:0]
}

// Tick advances the core one cycle: retire up to Width ready instructions
// from the head, then fetch/dispatch up to Width new ones.
func (c *Core) Tick(now uint64) {
	// Retire.
	retired := false
	for w := 0; w < c.cfg.Width && c.count > 0; w++ {
		e := c.at(0)
		if c.inRunahead && e.issued && e.l2miss && !e.ready {
			// Runahead pseudo-retires miss loads with an INV result.
			e.ready = true
			e.readyAt = now
		}
		if !e.issued || !e.ready || e.readyAt > now {
			if w == 0 && e.isLoad && e.issued {
				c.StallCycles++
				if c.cfg.Runahead && !c.inRunahead && e.l2miss && !e.ready {
					c.enterRunahead(e.seq)
				}
			}
			break
		}
		if e.runahead {
			c.RAInsts++
		} else {
			c.Retired++
			if e.isLoad {
				c.Loads++
			}
		}
		retired = true
		c.head = (c.head + 1) % len(c.buf)
		c.count--
	}

	// Attribute the cycle before fetch refills the window: the head that
	// blocked retirement (or the empty window) names the cycle's class.
	if c.acct != nil {
		if retired {
			c.acct[CycleRetire]++
		} else {
			c.acct[c.classifyCycle()]++
		}
	}

	// Issue any dispatched-but-unissued loads whose dependence or resource
	// stall has cleared.
	if len(c.deferred) > 0 {
		keep := c.deferred[:0]
		for _, seq := range c.deferred {
			e := c.entryBySeq(seq)
			if e == nil || e.issued {
				continue // flushed by runahead exit, or issued meanwhile
			}
			if !c.tryIssue(e, now) {
				keep = append(keep, seq)
			}
		}
		c.deferred = keep
	}

	// Fetch/dispatch.
	for w := 0; w < c.cfg.Width && c.count < len(c.buf); w++ {
		inst := c.gen.At(c.nextIdx)
		e := c.at(c.count)
		*e = robEntry{seq: c.nextIdx, runahead: c.inRunahead}
		c.nextIdx++
		c.count++
		if !inst.Mem {
			e.issued = true
			e.ready = true
			e.readyAt = now
			continue
		}
		e.isLoad = true
		e.line = inst.Line
		e.pc = inst.PC
		e.dep = inst.Dep && c.havePrevMem
		if e.dep {
			e.depOn = c.prevMemSeq
		}
		c.prevMemSeq = e.seq
		c.havePrevMem = true
		if !c.tryIssue(e, now) {
			c.deferred = append(c.deferred, e.seq)
		}
	}
}

// tryIssue attempts to send the load to memory; it reports whether the
// load is settled (issued, or resolved without a memory access) as opposed
// to needing a retry.
func (c *Core) tryIssue(e *robEntry, now uint64) bool {
	if e.retryAt > now {
		return false
	}
	if e.dep {
		p := c.entryBySeq(e.depOn)
		if p != nil && (!p.ready || p.readyAt > now) {
			if c.inRunahead && p.l2miss {
				// Runahead semantics: a load consuming an INV (unavailable)
				// value is dropped rather than issued.
				e.ready = true
				e.readyAt = now
				e.issued = true
				return true
			}
			return false // wait for the producer
		}
	}
	res := c.mem.Load(c.ID, e.seq, e.line, e.pc, e.runahead, now, !e.tried)
	e.tried = true
	if res.Retry {
		// Resources (MSHR or request buffer) are full; back off a few
		// cycles rather than hammering the hierarchy every cycle.
		e.rejected = true
		e.retryAt = now + 8
		return false
	}
	e.rejected = false
	e.issued = true
	if res.Pending {
		e.l2miss = true
	} else {
		e.ready = true
		e.readyAt = res.ReadyAt
	}
	return true
}

// NeverEvent is the NextEvent value meaning "no internally-scheduled
// work": only an external completion can change the component's state, so
// the caller must bound any skip by the event that delivers it.
const NeverEvent = ^uint64(0)

// NextEvent reports the earliest cycle > now at which Tick could do
// anything beyond repeating the current cycle's stall accounting: retire
// the head, enter or leave runahead, issue a deferred load, or fetch.
// The contract Skip relies on: for every cycle u in (now, NextEvent(now)),
// Tick(u) would be a pure repeat of cycle now's blocked bookkeeping
// (StallCycles and the cycle-class attribution), with no other state
// change. The caller must re-evaluate after any executed cycle and after
// any Complete delivery.
func (c *Core) NextEvent(now uint64) uint64 {
	if c.count < len(c.buf) {
		return now + 1 // fetch/dispatch proceeds every cycle
	}
	next := NeverEvent
	e := c.at(0)
	if e.issued {
		if e.ready {
			if e.readyAt <= now {
				return now + 1 // head retires on the next tick
			}
			next = e.readyAt
		} else if c.inRunahead || c.cfg.Runahead {
			// Next tick either pseudo-retires the blocking miss (in
			// runahead) or enters runahead mode — both are state changes.
			return now + 1
		}
		// Otherwise the head waits on a DRAM fill: an external Complete.
	}
	for _, seq := range c.deferred {
		d := c.entryBySeq(seq)
		if d == nil || d.issued {
			continue // flushed by runahead exit, or issued meanwhile
		}
		if d.retryAt > now {
			if d.retryAt < next {
				next = d.retryAt
			}
			continue
		}
		if d.dep {
			p := c.entryBySeq(d.depOn)
			if p != nil && (!p.ready || p.readyAt > now) {
				if c.inRunahead && p.l2miss {
					return now + 1 // INV drop resolves the load next tick
				}
				if p.ready && p.readyAt < next {
					next = p.readyAt
				}
				continue // unready producer: woken by its completion
			}
		}
		return now + 1 // issueable: next tick's deferred pass acts
	}
	return next
}

// Skip accounts n cycles the caller proved inert via NextEvent: the
// stepped loop would only have repeated the head-blocked bookkeeping, so
// it is applied arithmetically. Skipped windows always have a full
// window (NextEvent returns now+1 otherwise), so the head entry — which
// classifyCycle and the stall condition read — is constant throughout.
func (c *Core) Skip(n uint64) {
	if c.count > 0 {
		if e := c.at(0); e.isLoad && e.issued {
			c.StallCycles += n
		}
	}
	if c.acct != nil {
		c.acct[c.classifyCycle()] += n
	}
}

// InRunahead reports whether the core is currently in runahead mode.
func (c *Core) InRunahead() bool { return c.inRunahead }
