package cpu

import (
	"testing"

	"padc/internal/trace"
)

// stallCore builds a core wedged behind a never-completing head load:
// MemEvery 4 with line 0 pending fills the ROB and blocks retirement,
// the canonical skippable state.
func stallCore(rob int) (*Core, *fakeMem) {
	m := newFakeMem()
	m.pending[0] = true
	g := trace.Gen{Pattern: pattern{}, MemEvery: 4}
	c := New(0, Config{ROB: rob, Width: 4}, g, m)
	run(c, 200)
	return c, m
}

func TestNextEventFetchingCore(t *testing.T) {
	g := trace.Gen{Pattern: pattern{}, MemEvery: 1 << 60}
	c := New(0, Config{ROB: 64, Width: 4}, g, newFakeMem())
	// A non-full ROB fetches every cycle: the next cycle is always an event.
	if e := c.NextEvent(0); e != 1 {
		t.Fatalf("fetching core NextEvent = %d, want 1", e)
	}
	c.Tick(1)
	if e := c.NextEvent(1); e != 2 {
		t.Fatalf("fetching core NextEvent = %d, want 2", e)
	}
}

func TestNextEventBlockedHead(t *testing.T) {
	c, _ := stallCore(16)
	// Full ROB, head load issued and pending with no completion scheduled:
	// only an external Complete can wake the core.
	if e := c.NextEvent(200); e != NeverEvent {
		t.Fatalf("wedged core NextEvent = %d, want NeverEvent", e)
	}
	// Schedule the completion: the core's next event is exactly that cycle.
	c.Complete(0, 300)
	e := c.NextEvent(200)
	if e != 300 {
		t.Fatalf("NextEvent after Complete(0, 300) = %d, want 300", e)
	}
	// At the wake-up cycle itself the core can retire: next cycle is live.
	if e := c.NextEvent(300); e != 301 {
		t.Fatalf("NextEvent at the ready cycle = %d, want 301", e)
	}
}

// TestSkipMatchesTicking is the unit-level lockstep: two identical wedged
// cores, one ticked cycle by cycle through the inert window, one skipped
// across it arithmetically. Every observable counter must agree.
func TestSkipMatchesTicking(t *testing.T) {
	ticked, tm := stallCore(16)
	skipped, sm := stallCore(16)

	const n = 500
	for now := uint64(201); now <= 200+n; now++ {
		ticked.Tick(now)
	}
	skipped.Skip(n)

	if ticked.Retired != skipped.Retired || ticked.Loads != skipped.Loads {
		t.Fatalf("progress diverged: ticked retired=%d loads=%d, skipped retired=%d loads=%d",
			ticked.Retired, ticked.Loads, skipped.Retired, skipped.Loads)
	}
	if ticked.StallCycles != skipped.StallCycles {
		t.Fatalf("stall accounting diverged: ticked=%d skipped=%d",
			ticked.StallCycles, skipped.StallCycles)
	}
	if tm.firstTries != sm.firstTries || tm.retries != sm.retries {
		t.Fatalf("memory traffic diverged: ticked %d/%d, skipped %d/%d",
			tm.firstTries, tm.retries, sm.firstTries, sm.retries)
	}
}

// TestSkipMatchesTickingWithAccounting repeats the lockstep with the
// cycle-accounting profiler on: the skipped core's class buckets must
// land exactly where per-cycle classification would put them.
func TestSkipMatchesTickingWithAccounting(t *testing.T) {
	build := func() *Core {
		m := newFakeMem()
		m.pending[0] = true
		g := trace.Gen{Pattern: pattern{}, MemEvery: 4}
		c := New(0, Config{ROB: 16, Width: 4}, g, m)
		c.EnableAccounting()
		run(c, 200)
		return c
	}
	ticked, skipped := build(), build()

	const n = 300
	for now := uint64(201); now <= 200+n; now++ {
		ticked.Tick(now)
	}
	skipped.Skip(n)

	ta, sa := ticked.AccountSnapshot(), skipped.AccountSnapshot()
	for k, v := range ta {
		if sa[k] != v {
			t.Fatalf("class %v diverged: ticked=%d skipped=%d", CycleClass(k), v, sa[k])
		}
	}
	var total uint64
	for _, v := range sa {
		total += v
	}
	if total != 200+n {
		t.Fatalf("accounting buckets sum to %d, want %d", total, 200+n)
	}
}

func TestNextEventDeferredRetry(t *testing.T) {
	m := newFakeMem()
	m.retryLeft[0] = 1 << 30 // line 0 rejects forever: the load stays deferred
	g := trace.Gen{Pattern: pattern{}, MemEvery: 4}
	c := New(0, Config{ROB: 16, Width: 4}, g, m)
	run(c, 200)
	// The deferred load retries on a fixed backoff: the core's next event
	// is a real cycle, never NeverEvent, and never more than the backoff
	// window away.
	e := c.NextEvent(200)
	if e == NeverEvent {
		t.Fatal("core with a deferred retry reports no next event")
	}
	if e <= 200 || e > 200+16 {
		t.Fatalf("retry wake-up %d outside (200, 216]", e)
	}
	retries := m.retries
	for now := uint64(201); now < e; now++ {
		c.Tick(now)
	}
	if m.retries != retries {
		t.Fatalf("claimed-inert window issued %d retries", m.retries-retries)
	}
	c.Tick(e)
	if m.retries == retries {
		t.Fatalf("no retry at the claimed wake-up cycle %d", e)
	}
}
