package cpu

import (
	"testing"

	"padc/internal/trace"
)

// fakeMem scripts the memory hierarchy for core tests.
type fakeMem struct {
	hitLatency uint64
	pending    map[uint64]bool // lines that go Pending until Complete
	retryLeft  map[uint64]int  // lines that Retry n times first
	loads      []uint64        // line of every first-try load, in issue order
	firstTries int
	retries    int
}

func newFakeMem() *fakeMem {
	return &fakeMem{hitLatency: 2, pending: map[uint64]bool{}, retryLeft: map[uint64]int{}}
}

func (m *fakeMem) Load(_ int, _ uint64, line, _ uint64, _ bool, now uint64, firstTry bool) LoadResult {
	if firstTry {
		m.firstTries++
		m.loads = append(m.loads, line)
	} else {
		m.retries++
	}
	if n := m.retryLeft[line]; n > 0 {
		m.retryLeft[line] = n - 1
		return LoadResult{Retry: true}
	}
	if m.pending[line] {
		return LoadResult{Pending: true}
	}
	return LoadResult{ReadyAt: now + m.hitLatency}
}

// computeGen returns a pure-compute instruction stream.
type pattern struct {
	ops []trace.MemOp
}

func (p pattern) Name() string { return "test" }
func (p pattern) MemOp(m uint64) trace.MemOp {
	if len(p.ops) == 0 {
		return trace.MemOp{Line: m}
	}
	return p.ops[m%uint64(len(p.ops))]
}

func run(c *Core, cycles uint64) {
	for now := uint64(1); now <= cycles; now++ {
		c.Tick(now)
	}
}

func TestRetireWidth(t *testing.T) {
	// Pure compute: IPC approaches the width.
	g := trace.Gen{Pattern: pattern{}, MemEvery: 1 << 60}
	c := New(0, Config{ROB: 64, Width: 4}, g, newFakeMem())
	run(c, 1000)
	if ipc := float64(c.Retired) / 1000; ipc < 3.5 || ipc > 4.0 {
		t.Fatalf("compute IPC should approach 4, got %.2f", ipc)
	}
}

func TestLoadsIssueAtDispatch(t *testing.T) {
	m := newFakeMem()
	g := trace.Gen{Pattern: pattern{}, MemEvery: 4}
	c := New(0, Config{ROB: 64, Width: 4}, g, m)
	run(c, 100)
	if m.firstTries == 0 {
		t.Fatal("no loads issued")
	}
	if c.Loads == 0 {
		t.Fatal("no loads retired")
	}
}

func TestMissBlocksRetirementThenCompletes(t *testing.T) {
	m := newFakeMem()
	m.pending[0] = true // the first load (line 0) never returns by itself
	g := trace.Gen{Pattern: pattern{}, MemEvery: 4}
	c := New(0, Config{ROB: 16, Width: 4}, g, m)
	run(c, 200)
	retiredBefore := c.Retired
	if retiredBefore > 4 {
		t.Fatalf("retirement should block behind the pending load, retired=%d", retiredBefore)
	}
	if c.StallCycles == 0 {
		t.Fatal("stall cycles not counted")
	}
	// Deliver the fill for the blocking load (seq 0 is instruction 0).
	c.Complete(0, 200)
	run2 := func() {
		for now := uint64(201); now <= 260; now++ {
			// Later loads to other lines hit; only line 0 was pending once.
			m.pending = map[uint64]bool{}
			c.Tick(now)
		}
	}
	run2()
	if c.Retired <= retiredBefore {
		t.Fatal("completion did not unblock retirement")
	}
}

func TestROBCapacityBoundsOutstanding(t *testing.T) {
	m := newFakeMem()
	g := trace.Gen{Pattern: pattern{}, MemEvery: 1}
	// Every instruction is a pending load.
	for i := uint64(0); i < 1000; i++ {
		m.pending[i] = true
	}
	c := New(0, Config{ROB: 8, Width: 4}, g, m)
	run(c, 100)
	if m.firstTries > 8 {
		t.Fatalf("ROB of 8 should bound outstanding loads, issued %d", m.firstTries)
	}
}

func TestDependentLoadWaitsForProducer(t *testing.T) {
	m := newFakeMem()
	m.pending[100] = true
	ops := []trace.MemOp{{Line: 100}, {Line: 200, Dep: true}}
	g := trace.Gen{Pattern: pattern{ops: ops}, MemEvery: 2}
	c := New(0, Config{ROB: 16, Width: 2}, g, m)
	run(c, 50)
	// Only the producer should have issued; the dependent is deferred.
	for _, l := range m.loads {
		if l == 200 {
			t.Fatal("dependent load issued before its producer completed")
		}
	}
	c.Complete(0, 50) // seq 0 = instruction 0 = the producer
	run2 := New(0, Config{}, g, m)
	_ = run2
	for now := uint64(51); now <= 80; now++ {
		c.Tick(now)
	}
	found := false
	for _, l := range m.loads {
		if l == 200 {
			found = true
		}
	}
	if !found {
		t.Fatal("dependent load never issued after producer fill")
	}
}

func TestRetryBackoff(t *testing.T) {
	m := newFakeMem()
	m.retryLeft[0] = 3
	g := trace.Gen{Pattern: pattern{}, MemEvery: 1 << 60}
	// Make instruction 0 a load by MemEvery=1<<60 trick: index 0 % anything == 0.
	g = trace.Gen{Pattern: pattern{}, MemEvery: 1000}
	c := New(0, Config{ROB: 8, Width: 1}, g, m)
	run(c, 100)
	if m.retries == 0 {
		t.Fatal("no retries recorded")
	}
	if m.firstTries+m.retries > 20 {
		t.Fatalf("retry storm: %d attempts", m.firstTries+m.retries)
	}
}

func TestRunaheadGeneratesFutureLoadsAndReplays(t *testing.T) {
	m := newFakeMem()
	// All loads pend; fills delivered manually.
	g := trace.Gen{Pattern: pattern{}, MemEvery: 8}
	for i := uint64(0); i < 1000; i++ {
		m.pending[i] = true
	}
	c := New(0, Config{ROB: 16, Width: 4, Runahead: true}, g, m)
	run(c, 500)
	if c.RAEntries == 0 {
		t.Fatal("runahead never entered")
	}
	// Runahead keeps fetching past the blocked head: more distinct loads
	// than a 16-entry window could hold (16/8 = 2 loads per window).
	if m.firstTries <= 2 {
		t.Fatalf("runahead should prefetch ahead, issued %d loads", m.firstTries)
	}
	if !c.InRunahead() {
		t.Fatal("core should still be in runahead")
	}
	// Deliver the blocking fill: the core must exit and replay.
	c.Complete(c.raBlockSeq, 501)
	if c.InRunahead() {
		t.Fatal("runahead exit failed")
	}

	// Now let everything hit and confirm retired count reaches a target
	// without double counting.
	m.pending = map[uint64]bool{}
	for now := uint64(502); now <= 2000; now++ {
		c.Tick(now)
	}
	want := uint64(0)
	_ = want
	if c.Retired == 0 {
		t.Fatal("no forward progress after runahead")
	}
	if c.RAInsts == 0 {
		t.Fatal("runahead instructions not accounted")
	}
}

func TestDeterministicProgress(t *testing.T) {
	mk := func() *Core {
		m := newFakeMem()
		g := trace.Gen{Pattern: pattern{}, MemEvery: 3}
		return New(0, Config{ROB: 32, Width: 4}, g, m)
	}
	a, b := mk(), mk()
	run(a, 3000)
	run(b, 3000)
	if a.Retired != b.Retired || a.StallCycles != b.StallCycles || a.Loads != b.Loads {
		t.Fatalf("nondeterminism: %d/%d %d/%d", a.Retired, b.Retired, a.StallCycles, b.StallCycles)
	}
}

func TestAccountingOffByDefault(t *testing.T) {
	c := New(0, Config{ROB: 8, Width: 2}, trace.Gen{Pattern: pattern{}, MemEvery: 4}, newFakeMem())
	run(c, 100)
	if c.Account() != nil || c.AccountSnapshot() != nil {
		t.Fatal("accounting should be off unless EnableAccounting is called")
	}
}

func TestAccountingSumsToTickedCycles(t *testing.T) {
	m := newFakeMem()
	m.pending[0] = true // mix in a long-latency demand stall
	c := New(0, Config{ROB: 16, Width: 4}, trace.Gen{Pattern: pattern{}, MemEvery: 4}, m)
	c.EnableAccounting()
	const cycles = 137
	run(c, cycles)
	if got := c.Account().Total(); got != cycles {
		t.Fatalf("attribution sums to %d, want every ticked cycle (%d)", got, cycles)
	}
	snap := c.AccountSnapshot()
	if len(snap) != int(NumCycleClasses) {
		t.Fatalf("snapshot has %d classes, want %d", len(snap), NumCycleClasses)
	}
	var sum uint64
	for _, v := range snap {
		sum += v
	}
	if sum != cycles {
		t.Fatalf("snapshot sums to %d, want %d", sum, cycles)
	}
}

func TestAccountingPureComputeRetires(t *testing.T) {
	c := New(0, Config{ROB: 64, Width: 4}, trace.Gen{Pattern: pattern{}, MemEvery: 1 << 60}, newFakeMem())
	c.EnableAccounting()
	run(c, 1000)
	a := c.Account()
	if a[CycleRetire] < 900 {
		t.Fatalf("pure compute should retire nearly every cycle, got %v", *a)
	}
	if a[CycleStallDemand] != 0 || a[CycleStallResource] != 0 {
		t.Fatalf("pure compute charged memory stalls: %v", *a)
	}
}

func TestAccountingDemandMissStall(t *testing.T) {
	m := newFakeMem()
	for i := uint64(0); i < 1000; i++ {
		m.pending[i] = true // every load is an unfilled long-latency miss
	}
	c := New(0, Config{ROB: 16, Width: 4}, trace.Gen{Pattern: pattern{}, MemEvery: 2}, m)
	c.EnableAccounting()
	run(c, 500)
	a := c.Account()
	if a[CycleStallDemand] < 400 {
		t.Fatalf("blocked demand miss should dominate, got %v", *a)
	}
}

func TestAccountingResourceStall(t *testing.T) {
	m := newFakeMem()
	m.retryLeft[0] = 1 << 30 // the first load is rejected (MSHR full) forever
	c := New(0, Config{ROB: 8, Width: 1}, trace.Gen{Pattern: pattern{}, MemEvery: 1}, m)
	c.EnableAccounting()
	run(c, 300)
	a := c.Account()
	if a[CycleStallResource] < 200 {
		t.Fatalf("resource-full rejection should dominate, got %v", *a)
	}
}
