package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestHistogramExposition pins the histogram exposition shape: cumulative
// bucket counts in ascending le order, an le="+Inf" bucket equal to
// _count, and a _sum of the observed values.
func TestHistogramExposition(t *testing.T) {
	r := NewPromRegistry()
	h := r.Histogram("req_seconds", "request latency", []float64{0.1, 1, 10}, "route")
	s := h.With("/a")
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		s.Observe(v)
	}
	h.With("/b").Observe(0.01)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP req_seconds request latency
# TYPE req_seconds histogram
req_seconds_bucket{route="/a",le="0.1"} 1
req_seconds_bucket{route="/a",le="1"} 3
req_seconds_bucket{route="/a",le="10"} 4
req_seconds_bucket{route="/a",le="+Inf"} 5
req_seconds_sum{route="/a"} 56.05
req_seconds_count{route="/a"} 5
req_seconds_bucket{route="/b",le="0.1"} 1
req_seconds_bucket{route="/b",le="1"} 1
req_seconds_bucket{route="/b",le="10"} 1
req_seconds_bucket{route="/b",le="+Inf"} 1
req_seconds_sum{route="/b"} 0.01
req_seconds_count{route="/b"} 1
`
	if b.String() != want {
		t.Fatalf("histogram exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestHistogramValidation covers the programming-error panics: buckets
// must be ascending, and a histogram name cannot collide with an
// existing family.
func TestHistogramValidation(t *testing.T) {
	r := NewPromRegistry()
	assertPanics(t, "non-ascending buckets", func() {
		r.Histogram("bad", "", []float64{1, 1})
	})
	r.Counter("taken", "")
	assertPanics(t, "name collision", func() {
		r.Histogram("taken", "", nil)
	})

	// nil buckets fall back to the duration defaults.
	h := r.Histogram("ok", "", nil)
	h.With().Observe(0.002)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `ok_bucket{le="0.001"} 0`) {
		t.Fatalf("default buckets not applied:\n%s", b.String())
	}

	// nil registry: all no-ops.
	var nr *PromRegistry
	nr.Histogram("x", "", nil).With().Observe(1)
}

// TestHistogramConcurrent hammers one series from many goroutines (run
// under -race in CI) and checks no observation is lost and the mid-write
// invariant holds: the +Inf count can never undercount the buckets.
func TestHistogramConcurrent(t *testing.T) {
	r := NewPromRegistry()
	h := r.Histogram("lat", "", []float64{1}, "k")
	const goroutines, perG = 8, 1000
	var observers, scraper sync.WaitGroup
	stop := make(chan struct{})
	// A concurrent scraper exercising the writer against live updates.
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b bytes.Buffer
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		observers.Add(1)
		go func(g int) {
			defer observers.Done()
			s := h.With("k")
			for i := 0; i < perG; i++ {
				s.Observe(float64(g%2) * 2) // half below the bucket, half above
			}
		}(g)
	}
	observers.Wait()
	close(stop)
	scraper.Wait()

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `lat_count{k="k"} 8000`) {
		t.Fatalf("concurrent observes lost updates:\n%s", b.String())
	}
}

// TestLabelEscaping pins the exposition escaping rules: backslash, double
// quote, and newline are escaped — and nothing else is (a `%q`-style
// encoding would corrupt values containing `{` or unicode).
func TestLabelEscaping(t *testing.T) {
	r := NewPromRegistry()
	c := r.Counter("esc", "", "v")
	c.With(`quote " backslash \ newline ` + "\n" + ` brace {x} ünïcode`).Inc()

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc{v="quote \" backslash \\ newline \n brace {x} ünïcode"} 1`
	if !strings.Contains(b.String(), want+"\n") {
		t.Fatalf("escaping mismatch:\ngot:\n%s\nwant line:\n%s", b.String(), want)
	}
	// No line of the exposition may contain a raw (unescaped) newline
	// inside a label value: every line must be a comment or a sample.
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "#") && !strings.HasSuffix(line, " 1") {
			t.Fatalf("raw newline split a sample line: %q", line)
		}
	}
}
