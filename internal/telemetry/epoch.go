package telemetry

// Series is the epoch time series: one Sample per epoch boundary holding
// every registered metric. Counter-kind metrics are recorded as the delta
// accumulated during the epoch (a rate); gauge-kind metrics as the
// instantaneous value at the boundary.
type Series struct {
	Names []string     // column names, registration order
	Kinds []MetricKind // per-column sampling semantics
	Rows  []Sample
}

// Sample is one epoch snapshot.
type Sample struct {
	Cycle uint64
	Vals  []float64
}

// Sample snapshots every registered metric at cycle now into the series.
// The simulator calls it at each epoch boundary; tests may call it
// directly.
func (t *Telemetry) Sample(now uint64) {
	if t == nil {
		return
	}
	s := &t.series
	if s.Names == nil {
		s.Names = t.Names()
		s.Kinds = make([]MetricKind, len(t.metrics))
		for i, m := range t.metrics {
			s.Kinds[i] = m.kind
		}
	}
	vals := make([]float64, len(t.metrics))
	prevTotal := t.lastTotals()
	for i, m := range t.metrics {
		v := m.read()
		if m.kind == KindCounter && prevTotal != nil {
			vals[i] = v - prevTotal[i]
		} else {
			vals[i] = v
		}
		t.totals[i] = v
	}
	s.Rows = append(s.Rows, Sample{Cycle: now, Vals: vals})
}

// lastTotals returns the cumulative counter readings at the previous
// sample (nil on the first), (re)sizing the scratch slice.
func (t *Telemetry) lastTotals() []float64 {
	if t.totals == nil {
		t.totals = make([]float64, len(t.metrics))
		return nil
	}
	if len(t.totals) != len(t.metrics) {
		// Metrics registered after the first sample: grow, new columns
		// start from zero.
		grown := make([]float64, len(t.metrics))
		copy(grown, t.totals)
		t.totals = grown
	}
	prev := make([]float64, len(t.totals))
	copy(prev, t.totals)
	return prev
}

// SeriesData returns the collected epoch series (empty for nil or
// never-sampled telemetry).
func (t *Telemetry) SeriesData() Series {
	if t == nil {
		return Series{}
	}
	return t.series
}

// Column returns the sampled values of the named metric across all
// epochs, or nil if the metric was never sampled.
func (s Series) Column(name string) []float64 {
	col := -1
	for i, n := range s.Names {
		if n == name {
			col = i
			break
		}
	}
	if col < 0 {
		return nil
	}
	out := make([]float64, 0, len(s.Rows))
	for _, r := range s.Rows {
		if col < len(r.Vals) {
			out = append(out, r.Vals[col])
		}
	}
	return out
}
