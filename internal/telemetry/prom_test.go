package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestPromRegistryExposition pins the exposition shape: family order is
// registration order, series are sorted by label values, counters and
// gauges carry their kinds, and label values are quoted.
func TestPromRegistryExposition(t *testing.T) {
	r := NewPromRegistry()
	done := r.Counter("padc_sweepd_jobs_done", "completed jobs", "campaign")
	lag := r.Gauge("padc_sweepd_checkpoint_lag", "rows not yet journaled", "campaign")
	done.With("c2").Add(3)
	done.With("c1").Inc()
	lag.With("c1").Set(2.5)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP padc_sweepd_jobs_done completed jobs
# TYPE padc_sweepd_jobs_done counter
padc_sweepd_jobs_done{campaign="c1"} 1
padc_sweepd_jobs_done{campaign="c2"} 3
# HELP padc_sweepd_checkpoint_lag rows not yet journaled
# TYPE padc_sweepd_checkpoint_lag gauge
padc_sweepd_checkpoint_lag{campaign="c1"} 2.5
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestPromRegistryConcurrent hammers one series from many goroutines —
// the atomic-add contract (run under -race in CI).
func TestPromRegistryConcurrent(t *testing.T) {
	r := NewPromRegistry()
	c := r.Counter("hits", "", "who")
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := c.With("x")
			for i := 0; i < perG; i++ {
				m.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.With("x").Value(); got != goroutines*perG {
		t.Fatalf("concurrent adds lost updates: %v", got)
	}
}

// TestPromRegistryNilAndPanics covers the nil no-op paths and the two
// programming-error panics (duplicate family, label arity).
func TestPromRegistryNilAndPanics(t *testing.T) {
	var nr *PromRegistry
	nv := nr.Counter("x", "")
	nv.With().Inc() // all no-ops
	var b bytes.Buffer
	if err := nr.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", b.String(), err)
	}

	r := NewPromRegistry()
	r.Counter("dup", "")
	assertPanics(t, "duplicate family", func() { r.Counter("dup", "") })
	v := r.Gauge("g", "", "a", "b")
	assertPanics(t, "label arity", func() { v.With("only-one") })
}

func assertPanics(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

// TestPromRegistryUnlabeled checks a zero-label family renders without
// braces.
func TestPromRegistryUnlabeled(t *testing.T) {
	r := NewPromRegistry()
	r.Gauge("up", "").With().Set(1)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "\nup 1\n") {
		t.Fatalf("unlabeled series malformed:\n%s", b.String())
	}
}
