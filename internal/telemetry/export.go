package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// cyclesPerMicro converts simulator cycles to trace_event microseconds
// (the paper's 4GHz core clock: 4000 cycles per µs).
const cyclesPerMicro = 4000.0

// WriteCSV writes the epoch time series as CSV: a "cycle" column followed
// by one column per registered metric in registration order. Counter
// columns hold per-epoch deltas, gauge columns instantaneous values.
func (t *Telemetry) WriteCSV(w io.Writer) error {
	s := t.SeriesData()
	bw := bufio.NewWriter(w)
	bw.WriteString("cycle")
	for _, n := range s.Names {
		bw.WriteByte(',')
		bw.WriteString(csvQuote(n))
	}
	bw.WriteByte('\n')
	for _, row := range s.Rows {
		bw.WriteString(strconv.FormatUint(row.Cycle, 10))
		for _, v := range row.Vals {
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// csvQuote quotes a field when it needs it (metric names are plain, but
// stay safe).
func csvQuote(s string) string {
	for _, r := range s {
		if r == ',' || r == '"' || r == '\n' {
			return strconv.Quote(s)
		}
	}
	return s
}

// WriteJSONL writes the retained events one JSON object per line, oldest
// first: {"cycle":..,"kind":"drop","core":..,"chan":..,"bank":..,
// "line":..,"a":..,"pref":..}.
func (t *Telemetry) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, ev := range t.Events() {
		fmt.Fprintf(bw, `{"cycle":%d,"kind":%q,"core":%d,"chan":%d,"bank":%d,"line":%d,"a":%d,"pref":%t}`+"\n",
			ev.Cycle, ev.Kind.String(), ev.Core, ev.Chan, ev.Bank, ev.Line, ev.A, ev.Pref)
	}
	return bw.Flush()
}

// Chrome trace_event pid/tid conventions: each memory controller is a
// process whose threads are its banks; core-side events (promotion flips,
// MSHR stalls) live in a synthetic "cores" process with one thread per
// core.
const chromeCorePID = 1000

// WriteChromeTrace writes the retained events in Chrome trace_event JSON
// (load in chrome://tracing or https://ui.perfetto.dev). DRAM service
// completions render as duration ("X") spans on their bank's track;
// drops, promotions, rejects and stalls render as instant ("i") events.
// Timestamps are microseconds at the 4GHz core clock.
func (t *Telemetry) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	// Name the tracks that appear in the event stream.
	chans := map[int16]bool{}
	cores := map[int16]bool{}
	for _, ev := range t.Events() {
		if ev.Chan >= 0 {
			chans[ev.Chan] = true
		}
		if ev.Core >= 0 {
			cores[ev.Core] = true
		}
	}
	for ch := range chans {
		emit(`{"ph":"M","name":"process_name","pid":%d,"args":{"name":"memctrl%d"}}`, ch, ch)
	}
	if len(cores) > 0 {
		emit(`{"ph":"M","name":"process_name","pid":%d,"args":{"name":"cores"}}`, chromeCorePID)
		for c := range cores {
			emit(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":"core%d"}}`, chromeCorePID, c, c)
		}
	}

	for _, ev := range t.Events() {
		ts := float64(ev.Cycle) / cyclesPerMicro
		switch ev.Kind {
		case EvComplete:
			name := "demand"
			if ev.Pref {
				name = "prefetch"
			}
			emit(`{"ph":"X","name":%q,"cat":"dram","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"core":%d,"line":%d}}`,
				name, ts, float64(ev.A)/cyclesPerMicro, ev.Chan, ev.Bank, ev.Core, ev.Line)
		case EvDrop, EvRowConflict, EvEnqueue, EvIssue, EvReject:
			emit(`{"ph":"i","s":"t","name":%q,"cat":"memctrl","ts":%.3f,"pid":%d,"tid":%d,"args":{"core":%d,"line":%d,"a":%d}}`,
				ev.Kind.String(), ts, ev.Chan, ev.Bank, ev.Core, ev.Line, ev.A)
		case EvPromotion, EvMSHRStall:
			emit(`{"ph":"i","s":"t","name":%q,"cat":"core","ts":%.3f,"pid":%d,"tid":%d,"args":{"a":%d}}`,
				ev.Kind.String(), ts, chromeCorePID, ev.Core, ev.A)
		}
	}
	bw.WriteString("]}")
	return bw.Flush()
}
