package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// sortedKeys returns a map's keys in ascending order, for deterministic
// export iteration.
func sortedKeys(m map[int16]bool) []int16 {
	out := make([]int16, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// cyclesPerMicro converts simulator cycles to trace_event microseconds
// (the paper's 4GHz core clock: 4000 cycles per µs).
const cyclesPerMicro = 4000.0

// WriteCSV writes the epoch time series as CSV: a "cycle" column followed
// by one column per registered metric in registration order. Counter
// columns hold per-epoch deltas, gauge columns instantaneous values.
func (t *Telemetry) WriteCSV(w io.Writer) error {
	s := t.SeriesData()
	bw := bufio.NewWriter(w)
	bw.WriteString("cycle")
	for _, n := range s.Names {
		bw.WriteByte(',')
		bw.WriteString(csvQuote(n))
	}
	bw.WriteByte('\n')
	for _, row := range s.Rows {
		bw.WriteString(strconv.FormatUint(row.Cycle, 10))
		for _, v := range row.Vals {
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// csvQuote quotes a field when it needs it (metric names are plain, but
// stay safe).
func csvQuote(s string) string {
	for _, r := range s {
		if r == ',' || r == '"' || r == '\n' {
			return strconv.Quote(s)
		}
	}
	return s
}

// WriteJSONL writes the retained events one JSON object per line, oldest
// first: {"cycle":..,"kind":"drop","core":..,"chan":..,"bank":..,
// "line":..,"a":..,"pref":..}.
func (t *Telemetry) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, ev := range t.Events() {
		fmt.Fprintf(bw, `{"cycle":%d,"kind":%q,"core":%d,"chan":%d,"bank":%d,"line":%d,"a":%d,"pref":%t}`+"\n",
			ev.Cycle, ev.Kind.String(), ev.Core, ev.Chan, ev.Bank, ev.Line, ev.A, ev.Pref)
	}
	return bw.Flush()
}

// Chrome trace_event pid/tid conventions: each memory controller is a
// process whose threads are its banks; core-side events (promotion flips,
// MSHR stalls) live in a synthetic "cores" process with one thread per
// core.
const chromeCorePID = 1000

// WriteChromeTrace writes the retained events in Chrome trace_event JSON
// (load in chrome://tracing or https://ui.perfetto.dev). DRAM service
// completions render as duration ("X") spans on their bank's track;
// drops, promotions, rejects and stalls render as instant ("i") events.
// Timestamps are microseconds at the 4GHz core clock.
func (t *Telemetry) WriteChromeTrace(w io.Writer) error {
	return t.WriteChromeTraceWith(w, nil)
}

// WriteChromeTraceWith is WriteChromeTrace with a hook: extra, when
// non-nil, is called with the raw trace_event emitter so other layers
// (lifecycle span tracing) can interleave their slices into the same
// trace file. The emitter handles comma placement; each call must format
// one complete trace_event JSON object.
func (t *Telemetry) WriteChromeTraceWith(w io.Writer, extra func(emit func(format string, args ...any))) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	// Name the tracks that appear in the event stream. Keys are sorted so
	// the trace file is byte-identical across runs (map iteration order
	// would otherwise leak into the metadata records).
	chans := map[int16]bool{}
	cores := map[int16]bool{}
	for _, ev := range t.Events() {
		if ev.Chan >= 0 {
			chans[ev.Chan] = true
		}
		if ev.Core >= 0 {
			cores[ev.Core] = true
		}
	}
	for _, ch := range sortedKeys(chans) {
		emit(`{"ph":"M","name":"process_name","pid":%d,"args":{"name":"memctrl%d"}}`, ch, ch)
	}
	if len(cores) > 0 {
		emit(`{"ph":"M","name":"process_name","pid":%d,"args":{"name":"cores"}}`, chromeCorePID)
		for _, c := range sortedKeys(cores) {
			emit(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":"core%d"}}`, chromeCorePID, c, c)
		}
	}

	for _, ev := range t.Events() {
		ts := float64(ev.Cycle) / cyclesPerMicro
		switch ev.Kind {
		case EvComplete:
			name := "demand"
			if ev.Pref {
				name = "prefetch"
			}
			emit(`{"ph":"X","name":%q,"cat":"dram","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"core":%d,"line":%d}}`,
				name, ts, float64(ev.A)/cyclesPerMicro, ev.Chan, ev.Bank, ev.Core, ev.Line)
		case EvDrop, EvRowConflict, EvEnqueue, EvIssue, EvReject:
			emit(`{"ph":"i","s":"t","name":%q,"cat":"memctrl","ts":%.3f,"pid":%d,"tid":%d,"args":{"core":%d,"line":%d,"a":%d}}`,
				ev.Kind.String(), ts, ev.Chan, ev.Bank, ev.Core, ev.Line, ev.A)
		case EvPromotion, EvMSHRStall:
			emit(`{"ph":"i","s":"t","name":%q,"cat":"core","ts":%.3f,"pid":%d,"tid":%d,"args":{"a":%d}}`,
				ev.Kind.String(), ts, chromeCorePID, ev.Core, ev.A)
		}
	}
	if extra != nil {
		extra(emit)
	}
	bw.WriteString("]}")
	return bw.Flush()
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format, for the CLI's live -http endpoint. Slash-scoped
// metric names are flattened to padc_<name> with non-alphanumerics
// replaced by underscores; counters and gauges carry their kind, and
// histograms expand to the cumulative _bucket/_sum/_count triple.
func (t *Telemetry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if t == nil {
		return bw.Flush()
	}
	for _, m := range t.metrics {
		name := promName(m.name)
		kind := "counter"
		if m.kind == KindGauge {
			kind = "gauge"
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n%s %s\n",
			name, kind, name, strconv.FormatFloat(m.read(), 'g', -1, 64))
	}
	for _, h := range t.hists {
		name := promName(h.name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		var cum uint64
		for i, c := range h.counts {
			cum += c
			if i < len(h.bounds) {
				fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", name, h.bounds[i], cum)
			} else {
				fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			}
		}
		fmt.Fprintf(bw, "%s_sum %d\n%s_count %d\n", name, h.Sum(), name, h.Total())
	}
	return bw.Flush()
}

// promName flattens a slash-scoped metric name into a Prometheus-legal
// one: "memctrl0/drops" -> "padc_memctrl0_drops".
func promName(name string) string {
	b := []byte("padc_" + name)
	for i := 5; i < len(b); i++ {
		c := b[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			continue
		}
		b[i] = '_'
	}
	return string(b)
}
