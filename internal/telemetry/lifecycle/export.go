package lifecycle

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// cyclesPerMicro converts simulator cycles to trace_event microseconds
// (the paper's 4GHz core clock), matching internal/telemetry's constant so
// lifecycle slices line up with the event timeline in one trace.
const cyclesPerMicro = 4000.0

// chromeLifecyclePID hosts lifecycle span tracks in the Chrome trace;
// channel c's spans render under pid chromeLifecyclePID+c so they sit next
// to (not on top of) the raw memctrl event tracks.
const chromeLifecyclePID = 2000

// WriteCSV writes the per-core latency decomposition, one row per
// populated (core, class, row-outcome) cell:
//
//	core,class,row,count,queue_cycles,service_cycles,avg_queue,avg_service
func (t *Tracer) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("core,class,row,count,queue_cycles,service_cycles,avg_queue,avg_service\n")
	if t != nil {
		for core := range t.cores {
			agg := &t.cores[core].agg
			for cl := Class(0); cl < NumClasses; cl++ {
				for row := RowOutcome(0); row < NumRowOutcomes; row++ {
					cell := agg.Cells[cl][row]
					if cell.Count == 0 {
						continue
					}
					n := float64(cell.Count)
					fmt.Fprintf(bw, "%d,%s,%s,%d,%d,%d,%.1f,%.1f\n",
						core, cl, row, cell.Count, cell.QueueCycles, cell.ServiceCycles,
						float64(cell.QueueCycles)/n, float64(cell.ServiceCycles)/n)
				}
			}
		}
	}
	return bw.Flush()
}

// WriteJSONL writes the retained spans one JSON object per line, ordered
// by enqueue cycle.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, sp := range t.Spans() {
		fmt.Fprintf(bw, `{"core":%d,"chan":%d,"bank":%d,"line":%d,"class":%q,"row":%q,`+
			`"enqueue":%d,"promote":%d,"issue":%d,"finish":%d,"queue_wait":%d,"service":%d}`+"\n",
			sp.Core, sp.Chan, sp.Bank, sp.Line, sp.Class.String(), sp.Row.String(),
			sp.Enqueue, sp.Promote, sp.Issue, sp.Finish, sp.QueueWait(), sp.Service())
	}
	return bw.Flush()
}

// ChromeSlices emits the retained spans as Chrome trace_event entries via
// emit (the hook telemetry.WriteChromeTraceWith passes through), so
// lifecycle spans land in the same trace file as the event ring. Each
// request renders as one duration slice from enqueue to completion on its
// channel's lifecycle track (one thread per bank), carrying queue-wait
// versus service args; drops render as instant events.
func (t *Tracer) ChromeSlices(emit func(format string, args ...any)) {
	if t == nil {
		return
	}
	spans := t.Spans()
	chans := map[int16]bool{}
	for _, sp := range spans {
		if sp.Chan >= 0 {
			chans[sp.Chan] = true
		}
	}
	for ch := range chans {
		emit(`{"ph":"M","name":"process_name","pid":%d,"args":{"name":"lifecycle%d"}}`,
			chromeLifecyclePID+int(ch), ch)
	}
	for _, sp := range spans {
		pid := chromeLifecyclePID + int(sp.Chan)
		ts := float64(sp.Enqueue) / cyclesPerMicro
		if sp.Class == ClassDropped {
			emit(`{"ph":"i","s":"t","name":"drop","cat":"lifecycle","ts":%.3f,"pid":%d,"tid":%d,"args":{"core":%d,"line":%d,"queue_wait":%d}}`,
				float64(sp.Finish)/cyclesPerMicro, pid, sp.Bank, sp.Core, sp.Line, sp.QueueWait())
			continue
		}
		dur := float64(sp.Finish-sp.Enqueue) / cyclesPerMicro
		emit(`{"ph":"X","name":%q,"cat":"lifecycle","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,`+
			`"args":{"core":%d,"line":%d,"queue_wait":%d,"service":%d,"row":%q,"promoted":%t}}`,
			sp.Class.String(), ts, dur, pid, sp.Bank,
			sp.Core, sp.Line, sp.QueueWait(), sp.Service(), sp.Row.String(), sp.Promote != 0)
	}
}

// BreakdownTable renders an aligned per-core latency-decomposition table:
// per request class, the span count and average queue-wait and service
// cycles, plus the row-outcome mix of serviced spans.
func (t *Tracer) BreakdownTable() string {
	if t == nil {
		return "lifecycle: disabled\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "lifecycle: %d spans recorded\n", t.Recorded())
	fmt.Fprintf(&b, "%-5s %-13s %9s %10s %10s %7s %7s %8s\n",
		"core", "class", "count", "avg-queue", "avg-svc", "hit%", "closed%", "conflict%")
	for core := range t.cores {
		agg := &t.cores[core].agg
		for cl := Class(0); cl < NumClasses; cl++ {
			tot := agg.Total(cl)
			if tot.Count == 0 {
				continue
			}
			n := float64(tot.Count)
			var hit, closed, conflict uint64
			for row := RowOutcome(0); row < NumRowOutcomes; row++ {
				switch row {
				case RowHit:
					hit = agg.Cells[cl][row].Count
				case RowClosed:
					closed = agg.Cells[cl][row].Count
				case RowConflict:
					conflict = agg.Cells[cl][row].Count
				}
			}
			fmt.Fprintf(&b, "%-5d %-13s %9d %10.1f %10.1f %6.1f%% %6.1f%% %7.1f%%\n",
				core, cl, tot.Count,
				float64(tot.QueueCycles)/n, float64(tot.ServiceCycles)/n,
				100*float64(hit)/n, 100*float64(closed)/n, 100*float64(conflict)/n)
		}
	}
	return b.String()
}
