// Package lifecycle is the per-request span layer of the simulator's
// observability stack: every memory request is stamped through its stages
// (enqueue into the memory request buffer, optional promotion from
// prefetch to demand criticality, issue to a DRAM bank, bus transfer,
// completion or APD drop) and the resulting span is folded into per-core
// latency-decomposition aggregates — queue wait versus DRAM service, split
// by request class (demand / useful prefetch / pure prefetch / dropped)
// and by the row-buffer state the request found.
//
// The package follows internal/telemetry's nil-safety convention: a nil
// *Tracer is a valid disabled instance, so instrumented call sites hold a
// possibly-nil *Tracer and pay one pointer compare when tracing is off.
// When tracing is on, Record is allocation-free on the steady state: spans
// are folded into preallocated per-core aggregates and retained in a
// bounded per-core reservoir (deterministic xorshift sampling), so
// arbitrarily long runs keep a representative sample at fixed memory.
package lifecycle

import "sort"

// Class classifies a request at the end of its lifecycle.
type Class uint8

const (
	// ClassDemand is a demand miss serviced by DRAM.
	ClassDemand Class = iota
	// ClassPrefUseful is a prefetch a demand promoted before service
	// completed (known useful, §4.1).
	ClassPrefUseful
	// ClassPrefPure is a prefetch that completed still speculative; its
	// usefulness resolves (or not) after the fill.
	ClassPrefPure
	// ClassDropped is a prefetch Adaptive Prefetch Dropping removed from
	// the request buffer before issue.
	ClassDropped
	// NumClasses bounds Class values.
	NumClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassDemand:
		return "demand"
	case ClassPrefUseful:
		return "pref-useful"
	case ClassPrefPure:
		return "pref-pure"
	case ClassDropped:
		return "pref-dropped"
	default:
		return "unknown"
	}
}

// RowOutcome mirrors dram.RowState for issued requests, with an extra
// "never issued" value for drops, keeping this package dependency-free.
type RowOutcome uint8

const (
	// RowNone marks a request that never reached a bank (APD drops).
	RowNone RowOutcome = iota
	// RowHit found its row open.
	RowHit
	// RowClosed found the bank precharged.
	RowClosed
	// RowConflict found a different row open.
	RowConflict
	// NumRowOutcomes bounds RowOutcome values.
	NumRowOutcomes
)

// String implements fmt.Stringer.
func (r RowOutcome) String() string {
	switch r {
	case RowNone:
		return "none"
	case RowHit:
		return "hit"
	case RowClosed:
		return "closed"
	case RowConflict:
		return "conflict"
	default:
		return "unknown"
	}
}

// Span is one request's complete lifecycle. Cycle stamps are absolute;
// Promote, Issue and Bus are zero when the request never reached that
// stage (drops have only Enqueue and Finish).
type Span struct {
	Enqueue uint64 // admitted to the memory request buffer
	Promote uint64 // demand merged into the buffered prefetch (0 = never)
	Issue   uint64 // scheduled to a DRAM bank (0 = dropped before issue)
	Bus     uint64 // data burst began on the shared bus (0 = dropped)
	Finish  uint64 // fill completed, or the drop cycle for ClassDropped

	Line  uint64
	Class Class
	Row   RowOutcome
	Core  int16
	Chan  int16
	Bank  int16
}

// QueueWait returns the cycles the request waited in the buffer before
// issue; for dropped requests this is the whole buffered life.
func (s Span) QueueWait() uint64 {
	end := s.Issue
	if end == 0 {
		end = s.Finish
	}
	if end < s.Enqueue {
		return 0
	}
	return end - s.Enqueue
}

// Service returns the DRAM service cycles (issue to fill); 0 for drops.
func (s Span) Service() uint64 {
	if s.Issue == 0 || s.Finish < s.Issue {
		return 0
	}
	return s.Finish - s.Issue
}

// Cell is one (class, row-outcome) aggregation bucket of a core's
// latency decomposition.
type Cell struct {
	Count         uint64
	QueueCycles   uint64 // summed queue waits
	ServiceCycles uint64 // summed DRAM service spans
}

// histBounds are the inclusive upper edges of the queue-wait and service
// histograms (cycles); one overflow bucket is implicit. The range covers
// a row hit (72 cycles at DDR3-1333/4GHz) through deeply queued requests.
var histBounds = [...]uint64{30, 60, 120, 240, 480, 960, 1920, 3840}

// NumHistBuckets is the bucket count of QueueHist/ServiceHist (the bounds
// plus one overflow bucket).
const NumHistBuckets = len(histBounds) + 1

// CoreBreakdown is one core's folded latency decomposition.
type CoreBreakdown struct {
	Cells       [NumClasses][NumRowOutcomes]Cell
	QueueHist   [NumHistBuckets]uint64
	ServiceHist [NumHistBuckets]uint64
}

// Total returns the summed (count, queue cycles, service cycles) over all
// cells of the given class.
func (b *CoreBreakdown) Total(c Class) Cell {
	var t Cell
	for _, cell := range b.Cells[c] {
		t.Count += cell.Count
		t.QueueCycles += cell.QueueCycles
		t.ServiceCycles += cell.ServiceCycles
	}
	return t
}

// Spans returns the total spans folded into this breakdown.
func (b *CoreBreakdown) Spans() uint64 {
	var n uint64
	for c := Class(0); c < NumClasses; c++ {
		n += b.Total(c).Count
	}
	return n
}

// HistBounds returns the shared histogram bucket bounds (inclusive upper
// edges; the last bucket is overflow).
func HistBounds() []uint64 { return histBounds[:] }

func histBucket(v uint64) int {
	for i, b := range histBounds {
		if v <= b {
			return i
		}
	}
	return len(histBounds)
}

// Options configures a Tracer.
type Options struct {
	// ReservoirPerCore bounds how many raw spans each core retains for
	// export (0 uses DefaultReservoir, negative disables retention;
	// aggregates always accumulate).
	ReservoirPerCore int
}

// DefaultReservoir is the per-core span retention when Options leaves it
// zero.
const DefaultReservoir = 4096

// coreState is one core's aggregates plus its span reservoir.
type coreState struct {
	agg  CoreBreakdown
	res  []Span
	seen uint64 // spans offered to the reservoir
}

// Tracer folds request spans into per-core breakdowns and retains a
// bounded sample of raw spans. A nil *Tracer is a valid disabled tracer.
type Tracer struct {
	opts   Options
	resCap int
	cores  []*coreState
	rng    uint64 // deterministic xorshift64* state for reservoir sampling

	recorded uint64 // spans folded over the run
}

// New builds an enabled Tracer.
func New(opts Options) *Tracer {
	cap := opts.ReservoirPerCore
	if cap == 0 {
		cap = DefaultReservoir
	}
	if cap < 0 {
		cap = 0
	}
	return &Tracer{opts: opts, resCap: cap, rng: 0x9e3779b97f4a7c15}
}

// Enabled reports whether this tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

func (t *Tracer) next() uint64 {
	// xorshift64*: deterministic, seeded at construction, good enough for
	// reservoir admission decisions.
	x := t.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	t.rng = x
	return x * 0x2545f4914f6cdd1d
}

func (t *Tracer) core(id int16) *coreState {
	for int(id) >= len(t.cores) {
		t.cores = append(t.cores, &coreState{})
	}
	return t.cores[id]
}

// Record folds one finished span (completion or drop) into its core's
// breakdown and offers it to the reservoir. Nil tracers no-op, so call
// sites guard with a single pointer compare.
func (t *Tracer) Record(sp Span) {
	if t == nil || sp.Core < 0 {
		return
	}
	cs := t.core(sp.Core)
	row := sp.Row
	if row >= NumRowOutcomes {
		row = RowNone
	}
	cl := sp.Class
	if cl >= NumClasses {
		cl = ClassDemand
	}
	cell := &cs.agg.Cells[cl][row]
	qw, svc := sp.QueueWait(), sp.Service()
	cell.Count++
	cell.QueueCycles += qw
	cell.ServiceCycles += svc
	cs.agg.QueueHist[histBucket(qw)]++
	if sp.Issue != 0 {
		cs.agg.ServiceHist[histBucket(svc)]++
	}
	t.recorded++

	// Reservoir (algorithm R): keep a uniform sample at fixed memory.
	if t.resCap == 0 {
		return
	}
	cs.seen++
	if len(cs.res) < t.resCap {
		cs.res = append(cs.res, sp)
		return
	}
	if j := t.next() % cs.seen; j < uint64(t.resCap) {
		cs.res[j] = sp
	}
}

// Recorded returns how many spans were folded over the run.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.recorded
}

// Cores returns how many cores have recorded spans (the highest core id
// seen plus one).
func (t *Tracer) Cores() int {
	if t == nil {
		return 0
	}
	return len(t.cores)
}

// Breakdown returns core's folded latency decomposition (zero value for
// unknown cores or a nil tracer).
func (t *Tracer) Breakdown(core int) CoreBreakdown {
	if t == nil || core < 0 || core >= len(t.cores) {
		return CoreBreakdown{}
	}
	return t.cores[core].agg
}

// Spans returns every retained span across cores, ordered by enqueue
// cycle (ties by core). When a core saw more spans than its reservoir
// holds, the result is a uniform sample; Recorded reports the true total.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for _, cs := range t.cores {
		out = append(out, cs.res...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Enqueue != out[j].Enqueue {
			return out[i].Enqueue < out[j].Enqueue
		}
		return out[i].Core < out[j].Core
	})
	return out
}
