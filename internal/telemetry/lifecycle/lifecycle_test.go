package lifecycle

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func span(core int16, enq, issue, finish uint64, cl Class, row RowOutcome) Span {
	return Span{Enqueue: enq, Issue: issue, Bus: finish - 4, Finish: finish,
		Line: uint64(core)<<20 | enq, Class: cl, Row: row, Core: core}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Record(span(0, 1, 2, 3, ClassDemand, RowHit))
	if tr.Recorded() != 0 || tr.Cores() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer recorded something")
	}
	if bd := tr.Breakdown(0); bd.Spans() != 0 {
		t.Fatal("nil tracer has a breakdown")
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	tr.ChromeSlices(func(string, ...any) { t.Fatal("nil tracer emitted a slice") })
	if !strings.Contains(tr.BreakdownTable(), "disabled") {
		t.Fatal("nil tracer table should say disabled")
	}
}

func TestSpanMath(t *testing.T) {
	s := span(0, 100, 250, 400, ClassDemand, RowHit)
	if s.QueueWait() != 150 {
		t.Fatalf("QueueWait = %d, want 150", s.QueueWait())
	}
	if s.Service() != 150 {
		t.Fatalf("Service = %d, want 150", s.Service())
	}
	drop := Span{Enqueue: 100, Finish: 1100, Class: ClassDropped}
	if drop.QueueWait() != 1000 {
		t.Fatalf("drop QueueWait = %d, want the whole buffered life 1000", drop.QueueWait())
	}
	if drop.Service() != 0 {
		t.Fatalf("drop Service = %d, want 0", drop.Service())
	}
}

func TestRecordFoldsAggregates(t *testing.T) {
	tr := New(Options{})
	tr.Record(span(0, 0, 10, 110, ClassDemand, RowHit))      // queue 10, svc 100
	tr.Record(span(0, 5, 25, 225, ClassDemand, RowConflict)) // queue 20, svc 200
	tr.Record(span(0, 0, 40, 90, ClassPrefPure, RowHit))     // queue 40, svc 50
	tr.Record(Span{Enqueue: 0, Finish: 5000, Class: ClassDropped, Row: RowNone, Core: 0})
	tr.Record(span(2, 0, 1, 2, ClassPrefUseful, RowClosed))

	if tr.Recorded() != 5 {
		t.Fatalf("Recorded = %d, want 5", tr.Recorded())
	}
	if tr.Cores() != 3 {
		t.Fatalf("Cores = %d, want 3 (highest id + 1)", tr.Cores())
	}
	bd := tr.Breakdown(0)
	if bd.Spans() != 4 {
		t.Fatalf("core 0 spans = %d, want 4", bd.Spans())
	}
	dem := bd.Total(ClassDemand)
	if dem.Count != 2 || dem.QueueCycles != 30 || dem.ServiceCycles != 300 {
		t.Fatalf("demand total = %+v, want {2 30 300}", dem)
	}
	if c := bd.Cells[ClassDemand][RowConflict]; c.Count != 1 || c.QueueCycles != 20 || c.ServiceCycles != 200 {
		t.Fatalf("demand/conflict cell = %+v", c)
	}
	if c := bd.Cells[ClassDropped][RowNone]; c.Count != 1 || c.QueueCycles != 5000 || c.ServiceCycles != 0 {
		t.Fatalf("dropped cell = %+v", c)
	}
	// Queue histogram saw all 4 core-0 spans; service histogram only the
	// 3 that issued.
	var q, s uint64
	for i := 0; i < NumHistBuckets; i++ {
		q += bd.QueueHist[i]
		s += bd.ServiceHist[i]
	}
	if q != 4 || s != 3 {
		t.Fatalf("hist totals queue=%d service=%d, want 4 and 3", q, s)
	}
	if bd.QueueHist[NumHistBuckets-1] != 1 {
		t.Fatalf("5000-cycle drop should land in the overflow bucket, hist=%v", bd.QueueHist)
	}
}

func TestReservoirBoundsRetention(t *testing.T) {
	const cap, n = 8, 1000
	tr := New(Options{ReservoirPerCore: cap})
	for i := 0; i < n; i++ {
		tr.Record(span(0, uint64(i), uint64(i)+10, uint64(i)+110, ClassDemand, RowHit))
	}
	if tr.Recorded() != n {
		t.Fatalf("Recorded = %d, want %d (aggregates see everything)", tr.Recorded(), n)
	}
	spans := tr.Spans()
	if len(spans) != cap {
		t.Fatalf("retained %d spans, want the reservoir cap %d", len(spans), cap)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Enqueue < spans[i-1].Enqueue {
			t.Fatal("Spans() not ordered by enqueue cycle")
		}
	}
	bd := tr.Breakdown(0)
	if bd.Total(ClassDemand).Count != n {
		t.Fatalf("aggregate count = %d, want %d despite sampling", bd.Total(ClassDemand).Count, n)
	}
}

func TestReservoirDeterministic(t *testing.T) {
	mk := func() []Span {
		tr := New(Options{ReservoirPerCore: 16})
		for i := 0; i < 500; i++ {
			tr.Record(span(int16(i%2), uint64(i), uint64(i)+5, uint64(i)+105, ClassDemand, RowHit))
		}
		return tr.Spans()
	}
	if !reflect.DeepEqual(mk(), mk()) {
		t.Fatal("identical input produced different reservoir samples")
	}
}

func TestNegativeReservoirDisablesRetention(t *testing.T) {
	tr := New(Options{ReservoirPerCore: -1})
	tr.Record(span(0, 1, 2, 3, ClassDemand, RowHit))
	if len(tr.Spans()) != 0 {
		t.Fatal("negative reservoir should retain no spans")
	}
	bd := tr.Breakdown(0)
	if tr.Recorded() != 1 || bd.Spans() != 1 {
		t.Fatal("aggregates must still accumulate with retention off")
	}
}

func TestWriteCSV(t *testing.T) {
	tr := New(Options{})
	tr.Record(span(1, 0, 10, 110, ClassDemand, RowHit))
	tr.Record(span(1, 0, 20, 120, ClassDemand, RowHit))
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "core,class,row,count,queue_cycles,service_cycles,avg_queue,avg_service" {
		t.Fatalf("bad header: %s", lines[0])
	}
	if len(lines) != 2 || lines[1] != "1,demand,hit,2,30,200,15.0,100.0" {
		t.Fatalf("bad rows: %v", lines[1:])
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := New(Options{})
	tr.Record(span(0, 7, 17, 117, ClassPrefUseful, RowConflict))
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("invalid JSONL line %q: %v", buf.String(), err)
	}
	if obj["class"] != "pref-useful" || obj["row"] != "conflict" ||
		obj["queue_wait"] != float64(10) || obj["service"] != float64(100) {
		t.Fatalf("bad span object: %v", obj)
	}
}

func TestChromeSlices(t *testing.T) {
	tr := New(Options{})
	tr.Record(span(0, 0, 10, 110, ClassDemand, RowHit))
	tr.Record(Span{Enqueue: 0, Finish: 400, Class: ClassDropped, Row: RowNone, Core: 0})

	var events []map[string]any
	tr.ChromeSlices(func(format string, args ...any) {
		var obj map[string]any
		s := strings.TrimSpace(fmt.Sprintf(format, args...))
		if err := json.Unmarshal([]byte(s), &obj); err != nil {
			t.Fatalf("emitted invalid JSON %q: %v", s, err)
		}
		events = append(events, obj)
	})

	var slices, instants, meta int
	for _, e := range events {
		switch e["ph"] {
		case "X":
			slices++
			args := e["args"].(map[string]any)
			if args["queue_wait"] != float64(10) || args["service"] != float64(100) {
				t.Fatalf("slice args missing queue-wait/service split: %v", args)
			}
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if slices != 1 || instants != 1 || meta == 0 {
		t.Fatalf("slices=%d instants=%d meta=%d, want 1/1/>0", slices, instants, meta)
	}
}

func TestBreakdownTableRows(t *testing.T) {
	tr := New(Options{})
	tr.Record(span(0, 0, 10, 110, ClassDemand, RowHit))
	out := tr.BreakdownTable()
	if !strings.Contains(out, "1 spans recorded") || !strings.Contains(out, "demand") {
		t.Fatalf("unexpected table:\n%s", out)
	}
}
