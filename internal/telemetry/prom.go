package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the service-side counterpart of the simulator registry:
// long-running processes (the sweep service) need metrics that many
// goroutines update concurrently and that carry labels (one series per
// campaign). The simulator registry stays single-threaded and unlabeled
// on purpose — its counters are plain uint64 adds on the Tick hot path —
// so the live registry is a separate, lock-free-on-update type rather
// than a retrofit.

// LiveMetric is one labeled series: a float64 updated atomically, usable
// as either a counter (Add/Inc) or a gauge (Set). The zero value is ready
// to use; a nil *LiveMetric no-ops like the simulator metrics.
type LiveMetric struct {
	bits atomic.Uint64 // math.Float64bits of the current value
}

// Add atomically adds delta (CAS loop; safe from any goroutine).
func (m *LiveMetric) Add(delta float64) {
	if m == nil {
		return
	}
	for {
		old := m.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if m.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (m *LiveMetric) Inc() { m.Add(1) }

// Set atomically replaces the value (gauge semantics).
func (m *LiveMetric) Set(v float64) {
	if m == nil {
		return
	}
	m.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 for nil).
func (m *LiveMetric) Value() float64 {
	if m == nil {
		return 0
	}
	return math.Float64frombits(m.bits.Load())
}

// LiveVec is one metric family: a name, a kind, a fixed label schema, and
// one LiveMetric per label-value combination, created on first use.
type LiveVec struct {
	name   string
	help   string
	kind   MetricKind
	labels []string

	mu     sync.Mutex
	series map[string]*LiveMetric
	order  []string // insertion order of series keys
}

// With returns the series for the given label values (one value per label
// name passed at registration, in the same order), creating it at zero on
// first use. It panics on arity mismatch — that is a programming error,
// like a duplicate metric name in the simulator registry.
func (v *LiveVec) With(values ...string) *LiveMetric {
	if v == nil {
		return nil
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	m, ok := v.series[key]
	if !ok {
		m = &LiveMetric{}
		v.series[key] = m
		v.order = append(v.order, key)
	}
	return m
}

// PromRegistry is a concurrency-safe registry of labeled live metrics
// with a Prometheus text-exposition writer. Unlike the simulator registry
// it may be updated from any goroutine at any time, which is what a
// network service needs.
type PromRegistry struct {
	mu   sync.Mutex
	vecs []*LiveVec
	seen map[string]bool
}

// NewPromRegistry builds an empty live registry.
func NewPromRegistry() *PromRegistry {
	return &PromRegistry{seen: make(map[string]bool)}
}

func (r *PromRegistry) register(name, help string, kind MetricKind, labels []string) *LiveVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[name] {
		panic(fmt.Sprintf("telemetry: duplicate live metric %q", name))
	}
	r.seen[name] = true
	v := &LiveVec{
		name:   name,
		help:   help,
		kind:   kind,
		labels: append([]string(nil), labels...),
		series: make(map[string]*LiveMetric),
	}
	r.vecs = append(r.vecs, v)
	return v
}

// Counter registers a monotonically-increasing family; callers promise to
// only Add/Inc its series. Name must be Prometheus-legal already (the
// live registry does not flatten like promName; service metric names are
// chosen, not derived).
func (r *PromRegistry) Counter(name, help string, labels ...string) *LiveVec {
	return r.register(name, help, KindCounter, labels)
}

// Gauge registers an instantaneous family; series are usually Set.
func (r *PromRegistry) Gauge(name, help string, labels ...string) *LiveVec {
	return r.register(name, help, KindGauge, labels)
}

// WritePrometheus writes every family in registration order, each family's
// series sorted by label values, in the Prometheus text exposition format.
func (r *PromRegistry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if r == nil {
		return bw.Flush()
	}
	r.mu.Lock()
	vecs := append([]*LiveVec(nil), r.vecs...)
	r.mu.Unlock()
	for _, v := range vecs {
		kind := "counter"
		if v.kind == KindGauge {
			kind = "gauge"
		}
		if v.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", v.name, v.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", v.name, kind)
		v.mu.Lock()
		keys := append([]string(nil), v.order...)
		sort.Strings(keys)
		for _, key := range keys {
			m := v.series[key]
			bw.WriteString(v.name)
			if len(v.labels) > 0 {
				vals := strings.Split(key, "\x00")
				bw.WriteByte('{')
				for i, l := range v.labels {
					if i > 0 {
						bw.WriteByte(',')
					}
					fmt.Fprintf(bw, "%s=%q", l, vals[i])
				}
				bw.WriteByte('}')
			}
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatFloat(m.Value(), 'g', -1, 64))
			bw.WriteByte('\n')
		}
		v.mu.Unlock()
	}
	return bw.Flush()
}
