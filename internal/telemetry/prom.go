package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the service-side counterpart of the simulator registry:
// long-running processes (the sweep service) need metrics that many
// goroutines update concurrently and that carry labels (one series per
// campaign). The simulator registry stays single-threaded and unlabeled
// on purpose — its counters are plain uint64 adds on the Tick hot path —
// so the live registry is a separate, lock-free-on-update type rather
// than a retrofit.

// LiveMetric is one labeled series: a float64 updated atomically, usable
// as either a counter (Add/Inc) or a gauge (Set). The zero value is ready
// to use; a nil *LiveMetric no-ops like the simulator metrics.
type LiveMetric struct {
	bits atomic.Uint64 // math.Float64bits of the current value
}

// Add atomically adds delta (CAS loop; safe from any goroutine).
func (m *LiveMetric) Add(delta float64) {
	if m == nil {
		return
	}
	for {
		old := m.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if m.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (m *LiveMetric) Inc() { m.Add(1) }

// Set atomically replaces the value (gauge semantics).
func (m *LiveMetric) Set(v float64) {
	if m == nil {
		return
	}
	m.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 for nil).
func (m *LiveMetric) Value() float64 {
	if m == nil {
		return 0
	}
	return math.Float64frombits(m.bits.Load())
}

// LiveVec is one metric family: a name, a kind, a fixed label schema, and
// one LiveMetric per label-value combination, created on first use.
type LiveVec struct {
	name   string
	help   string
	kind   MetricKind
	labels []string

	mu     sync.Mutex
	series map[string]*LiveMetric
	order  []string // insertion order of series keys
}

// With returns the series for the given label values (one value per label
// name passed at registration, in the same order), creating it at zero on
// first use. It panics on arity mismatch — that is a programming error,
// like a duplicate metric name in the simulator registry.
func (v *LiveVec) With(values ...string) *LiveMetric {
	if v == nil {
		return nil
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	m, ok := v.series[key]
	if !ok {
		m = &LiveMetric{}
		v.series[key] = m
		v.order = append(v.order, key)
	}
	return m
}

// LiveHist is one labeled histogram series: cumulative bucket counts, a
// sum, and an observation count, all updated atomically. The zero value
// is not usable — histograms carry their bucket layout, so they are only
// built through HistVec.With.
type LiveHist struct {
	buckets []float64 // upper bounds, ascending; +Inf is implicit
	counts  []atomic.Uint64
	inf     atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// Observe records one value (CAS loop on the sum; safe from any
// goroutine).
func (h *LiveHist) Observe(v float64) {
	if h == nil {
		return
	}
	// inf first, buckets second; the writer reads buckets before inf, and
	// Go atomics are sequentially consistent, so a scrape that sees a
	// bucket increment always sees its observation counted — cumulative
	// bucket values never exceed the le="+Inf" count mid-scrape.
	h.inf.Add(1)
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistVec is one histogram family: a fixed bucket layout shared by every
// labeled series, created on first use like LiveVec.
type HistVec struct {
	name    string
	help    string
	labels  []string
	buckets []float64

	mu     sync.Mutex
	series map[string]*LiveHist
	order  []string
}

// With returns the histogram series for the given label values, creating
// it on first use. Arity mismatches panic, mirroring LiveVec.
func (v *HistVec) With(values ...string) *LiveHist {
	if v == nil {
		return nil
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.series[key]
	if !ok {
		h = &LiveHist{buckets: v.buckets, counts: make([]atomic.Uint64, len(v.buckets))}
		v.series[key] = h
		v.order = append(v.order, key)
	}
	return h
}

// DefaultDurationBuckets is the latency bucket layout (seconds) the
// service's request-duration histograms use: sub-millisecond health
// probes through multi-second artifact merges.
var DefaultDurationBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5}

// promFamily is one exposable metric family (a LiveVec or a HistVec).
type promFamily interface {
	writeProm(bw *bufio.Writer)
}

// PromRegistry is a concurrency-safe registry of labeled live metrics
// with a Prometheus text-exposition writer. Unlike the simulator registry
// it may be updated from any goroutine at any time, which is what a
// network service needs.
type PromRegistry struct {
	mu   sync.Mutex
	fams []promFamily
	seen map[string]bool
}

// NewPromRegistry builds an empty live registry.
func NewPromRegistry() *PromRegistry {
	return &PromRegistry{seen: make(map[string]bool)}
}

// reserve claims a family name, panicking on duplicates.
func (r *PromRegistry) reserve(name string) {
	if r.seen[name] {
		panic(fmt.Sprintf("telemetry: duplicate live metric %q", name))
	}
	r.seen[name] = true
}

func (r *PromRegistry) register(name, help string, kind MetricKind, labels []string) *LiveVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reserve(name)
	v := &LiveVec{
		name:   name,
		help:   help,
		kind:   kind,
		labels: append([]string(nil), labels...),
		series: make(map[string]*LiveMetric),
	}
	r.fams = append(r.fams, v)
	return v
}

// Histogram registers a histogram family with the given bucket upper
// bounds (ascending; the +Inf bucket is implicit). A nil buckets slice
// uses DefaultDurationBuckets.
func (r *PromRegistry) Histogram(name, help string, buckets []float64, labels ...string) *HistVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefaultDurationBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending: %v", name, buckets))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reserve(name)
	v := &HistVec{
		name:    name,
		help:    help,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*LiveHist),
	}
	r.fams = append(r.fams, v)
	return v
}

// Counter registers a monotonically-increasing family; callers promise to
// only Add/Inc its series. Name must be Prometheus-legal already (the
// live registry does not flatten like promName; service metric names are
// chosen, not derived).
func (r *PromRegistry) Counter(name, help string, labels ...string) *LiveVec {
	return r.register(name, help, KindCounter, labels)
}

// Gauge registers an instantaneous family; series are usually Set.
func (r *PromRegistry) Gauge(name, help string, labels ...string) *LiveVec {
	return r.register(name, help, KindGauge, labels)
}

// WritePrometheus writes every family in registration order, each family's
// series sorted by label values, in the Prometheus text exposition format.
func (r *PromRegistry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if r == nil {
		return bw.Flush()
	}
	r.mu.Lock()
	fams := append([]promFamily(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		f.writeProm(bw)
	}
	return bw.Flush()
}

// writeEscaped writes one label value using only the escapes the
// exposition format defines for quoted label values: backslash, double
// quote, and line feed. Anything else (%q's \t, \r, \xNN…) is illegal to
// a strict Prometheus parser.
func writeEscaped(bw *bufio.Writer, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			bw.WriteString(`\\`)
		case '"':
			bw.WriteString(`\"`)
		case '\n':
			bw.WriteString(`\n`)
		default:
			bw.WriteByte(c)
		}
	}
}

// writeLabels writes a {name="value",...} block; extra appends one more
// pair (the histogram writer's le label) without rebuilding slices.
func writeLabels(bw *bufio.Writer, labels []string, key string, extraName, extraVal string) {
	if len(labels) == 0 && extraName == "" {
		return
	}
	bw.WriteByte('{')
	vals := strings.Split(key, "\x00")
	for i, l := range labels {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(l)
		bw.WriteString(`="`)
		writeEscaped(bw, vals[i])
		bw.WriteByte('"')
	}
	if extraName != "" {
		if len(labels) > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(extraName)
		bw.WriteString(`="`)
		writeEscaped(bw, extraVal)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

func formatPromFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (v *LiveVec) writeProm(bw *bufio.Writer) {
	kind := "counter"
	if v.kind == KindGauge {
		kind = "gauge"
	}
	if v.help != "" {
		fmt.Fprintf(bw, "# HELP %s %s\n", v.name, v.help)
	}
	fmt.Fprintf(bw, "# TYPE %s %s\n", v.name, kind)
	v.mu.Lock()
	keys := append([]string(nil), v.order...)
	sort.Strings(keys)
	for _, key := range keys {
		m := v.series[key]
		bw.WriteString(v.name)
		writeLabels(bw, v.labels, key, "", "")
		bw.WriteByte(' ')
		bw.WriteString(formatPromFloat(m.Value()))
		bw.WriteByte('\n')
	}
	v.mu.Unlock()
}

func (v *HistVec) writeProm(bw *bufio.Writer) {
	if v.help != "" {
		fmt.Fprintf(bw, "# HELP %s %s\n", v.name, v.help)
	}
	fmt.Fprintf(bw, "# TYPE %s histogram\n", v.name)
	v.mu.Lock()
	keys := append([]string(nil), v.order...)
	sort.Strings(keys)
	for _, key := range keys {
		h := v.series[key]
		// Buckets are cumulative: each le bound includes every smaller one,
		// and le="+Inf" equals the observation count.
		cum := uint64(0)
		for i, ub := range h.buckets {
			cum += h.counts[i].Load()
			bw.WriteString(v.name)
			bw.WriteString("_bucket")
			writeLabels(bw, v.labels, key, "le", formatPromFloat(ub))
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatUint(cum, 10))
			bw.WriteByte('\n')
		}
		count := h.inf.Load()
		bw.WriteString(v.name)
		bw.WriteString("_bucket")
		writeLabels(bw, v.labels, key, "le", "+Inf")
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(count, 10))
		bw.WriteByte('\n')
		bw.WriteString(v.name)
		bw.WriteString("_sum")
		writeLabels(bw, v.labels, key, "", "")
		bw.WriteByte(' ')
		bw.WriteString(formatPromFloat(math.Float64frombits(h.sumBits.Load())))
		bw.WriteByte('\n')
		bw.WriteString(v.name)
		bw.WriteString("_count")
		writeLabels(bw, v.labels, key, "", "")
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(count, 10))
		bw.WriteByte('\n')
	}
	v.mu.Unlock()
}
