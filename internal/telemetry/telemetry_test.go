package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTelemetryIsNoOp(t *testing.T) {
	var tel *Telemetry
	c := tel.Counter("x")
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Fatalf("nil counter accumulated %d", c.Value())
	}
	tel.CounterFunc("y", func() uint64 { return 1 })
	tel.GaugeFunc("z", func() float64 { return 1 })
	h := tel.Histogram("h", []uint64{10})
	h.Observe(5)
	if h.Total() != 0 {
		t.Fatal("nil histogram observed")
	}
	tel.Emit(Event{Kind: EvDrop})
	tel.Sample(100)
	if tel.Enabled() || tel.EpochCycles() != 0 || len(tel.Events()) != 0 {
		t.Fatal("nil telemetry not inert")
	}
	if got := tel.Summary(); !strings.Contains(got, "disabled") {
		t.Fatalf("nil summary = %q", got)
	}
	if s := tel.SeriesData(); len(s.Rows) != 0 {
		t.Fatal("nil series has rows")
	}
}

func TestRegistryAndSampling(t *testing.T) {
	tel := New(Options{EpochCycles: 100})
	drops := tel.Counter("memctrl0/drops")
	var ext uint64
	tel.CounterFunc("core0/retired", func() uint64 { return ext })
	occ := 3.0
	tel.GaugeFunc("memctrl0/occupancy", func() float64 { return occ })

	drops.Add(5)
	ext = 40
	tel.Sample(100)
	drops.Inc()
	ext = 90
	occ = 7
	tel.Sample(200)

	s := tel.SeriesData()
	if len(s.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(s.Rows))
	}
	if got := s.Column("memctrl0/drops"); got[0] != 5 || got[1] != 1 {
		t.Fatalf("counter deltas = %v, want [5 1]", got)
	}
	if got := s.Column("core0/retired"); got[0] != 40 || got[1] != 50 {
		t.Fatalf("counterfunc deltas = %v, want [40 50]", got)
	}
	if got := s.Column("memctrl0/occupancy"); got[0] != 3 || got[1] != 7 {
		t.Fatalf("gauge samples = %v, want [3 7]", got)
	}
	if v, ok := tel.Value("memctrl0/drops"); !ok || v != 6 {
		t.Fatalf("Value = %v,%v; want 6,true", v, ok)
	}
	if s.Column("nope") != nil {
		t.Fatal("unknown column not nil")
	}
}

func TestDuplicateMetricPanics(t *testing.T) {
	tel := New(Options{})
	tel.Counter("a")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	tel.Counter("a")
}

func TestHistogramBuckets(t *testing.T) {
	tel := New(Options{})
	h := tel.Histogram("svc", []uint64{10, 100})
	for _, v := range []uint64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	_, counts := h.Buckets()
	want := []uint64{2, 2, 2}
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d, want 6", h.Total())
	}
}

func TestEventRingWraps(t *testing.T) {
	tel := New(Options{EventCapacity: 4})
	for i := 0; i < 10; i++ {
		tel.Emit(Event{Cycle: uint64(i), Kind: EvEnqueue})
	}
	evs := tel.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Cycle != uint64(6+i) {
			t.Fatalf("event %d cycle = %d, want %d (chronological)", i, ev.Cycle, 6+i)
		}
	}
	if tel.EventsTotal() != 10 || tel.EventsDropped() != 6 {
		t.Fatalf("total/dropped = %d/%d, want 10/6", tel.EventsTotal(), tel.EventsDropped())
	}
}

func TestExporters(t *testing.T) {
	tel := New(Options{EpochCycles: 50, EventCapacity: 16})
	c := tel.Counter("memctrl0/drops")
	tel.GaugeFunc("core0/acc_estimate", func() float64 { return 0.9 })
	c.Add(2)
	tel.Sample(50)
	c.Add(3)
	tel.Sample(100)
	tel.Emit(Event{Cycle: 10, Kind: EvComplete, Core: 0, Chan: 0, Bank: 3, Line: 42, A: 72})
	tel.Emit(Event{Cycle: 20, Kind: EvDrop, Core: 1, Chan: 0, Bank: -1, Line: 43, A: 900, Pref: true})
	tel.Emit(Event{Cycle: 30, Kind: EvPromotion, Core: 1, Chan: -1, Bank: 1, A: 920000})

	var csv strings.Builder
	if err := tel.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3:\n%s", len(lines), csv.String())
	}
	if lines[0] != "cycle,memctrl0/drops,core0/acc_estimate" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if lines[1] != "50,2,0.9" || lines[2] != "100,3,0.9" {
		t.Fatalf("csv rows = %q, %q", lines[1], lines[2])
	}

	var jsonl strings.Builder
	if err := tel.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	jl := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(jl) != 3 {
		t.Fatalf("jsonl lines = %d, want 3", len(jl))
	}
	for _, line := range jl {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("jsonl line %q: %v", line, err)
		}
	}

	var chrome strings.Builder
	if err := tel.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(chrome.String()), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var spans, instants int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			spans++
			if ev["dur"].(float64) <= 0 {
				t.Fatalf("span with non-positive dur: %v", ev)
			}
		case "i":
			instants++
		}
	}
	if spans != 1 || instants != 2 {
		t.Fatalf("spans/instants = %d/%d, want 1/2", spans, instants)
	}
}

func TestSummary(t *testing.T) {
	tel := New(Options{EpochCycles: 10})
	tel.Counter("a/count").Add(3)
	tel.GaugeFunc("b/gauge", func() float64 { return 1.5 })
	tel.Histogram("c/hist", []uint64{10}).Observe(4)
	tel.Emit(Event{Kind: EvDrop})
	tel.Sample(10)
	s := tel.Summary()
	for _, want := range []string{"a/count", "3", "b/gauge", "1.5", "c/hist", "drop=1", "1 epochs"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

// BenchmarkDisabledCounter measures the disabled hot path: one nil check.
func BenchmarkDisabledCounter(b *testing.B) {
	var tel *Telemetry
	c := tel.Counter("x")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkEnabledCounter measures the enabled hot path: a plain add.
func BenchmarkEnabledCounter(b *testing.B) {
	tel := New(Options{})
	c := tel.Counter("x")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	_ = c.Value()
}

// BenchmarkEmit measures event recording into the ring.
func BenchmarkEmit(b *testing.B) {
	tel := New(Options{EventCapacity: 1 << 12})
	for i := 0; i < b.N; i++ {
		tel.Emit(Event{Cycle: uint64(i), Kind: EvEnqueue})
	}
}

func TestWraparoundOrderingInExporters(t *testing.T) {
	// Overflow a 4-slot ring and confirm both line-oriented exporters see
	// the survivors oldest-first — the overwrite must not leave the output
	// rotated to the ring's physical layout.
	tel := New(Options{EventCapacity: 4})
	// 1000-cycle spacing keeps timestamps distinct after the exporter's
	// microsecond rounding.
	for i := 0; i < 11; i++ {
		tel.Emit(Event{Cycle: uint64(1000 * (i + 1)), Kind: EvEnqueue, Core: 0, Chan: 0, Bank: int16(i % 8), Line: uint64(i)})
	}

	var jsonl strings.Builder
	if err := tel.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("JSONL has %d lines, want the ring capacity 4", len(lines))
	}
	prev := -1
	for _, ln := range lines {
		var obj struct {
			Cycle int `json:"cycle"`
			Line  int `json:"line"`
		}
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
		if obj.Cycle <= prev {
			t.Fatalf("JSONL out of order: cycle %d after %d", obj.Cycle, prev)
		}
		if obj.Cycle < 8000 {
			t.Fatalf("JSONL kept overwritten event at cycle %d", obj.Cycle)
		}
		prev = obj.Cycle
	}

	var tr strings.Builder
	if err := tel.WriteChromeTrace(&tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string  `json:"ph"`
			Ts float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(tr.String()), &doc); err != nil {
		t.Fatalf("invalid Chrome trace: %v", err)
	}
	var tss []float64
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "i" {
			tss = append(tss, ev.Ts)
		}
	}
	if len(tss) != 4 {
		t.Fatalf("trace has %d instants, want 4", len(tss))
	}
	for i := 1; i < len(tss); i++ {
		if tss[i] <= tss[i-1] {
			t.Fatalf("trace instants out of order: %v", tss)
		}
	}
}

func TestHistogramSum(t *testing.T) {
	tel := New(Options{})
	h := tel.Histogram("memctrl0/queue_wait", []uint64{10, 100})
	for _, v := range []uint64{5, 50, 500} {
		h.Observe(v)
	}
	if h.Sum() != 555 || h.Total() != 3 {
		t.Fatalf("sum/total = %d/%d, want 555/3", h.Sum(), h.Total())
	}
	var nilH *Histogram
	if nilH.Sum() != 0 {
		t.Fatal("nil histogram sum should be 0")
	}
}

func TestWritePrometheus(t *testing.T) {
	tel := New(Options{})
	tel.Counter("memctrl0/drops").Add(7)
	tel.GaugeFunc("core0/acc-estimate", func() float64 { return 0.25 })
	h := tel.Histogram("memctrl0/queue_wait", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	var b strings.Builder
	if err := tel.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE padc_memctrl0_drops counter\npadc_memctrl0_drops 7\n",
		"# TYPE padc_core0_acc_estimate gauge\npadc_core0_acc_estimate 0.25\n",
		"# TYPE padc_memctrl0_queue_wait histogram\n",
		`padc_memctrl0_queue_wait_bucket{le="10"} 1`,
		`padc_memctrl0_queue_wait_bucket{le="100"} 2`,
		`padc_memctrl0_queue_wait_bucket{le="+Inf"} 3`,
		"padc_memctrl0_queue_wait_sum 555",
		"padc_memctrl0_queue_wait_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, out)
		}
	}

	var nilTel *Telemetry
	b.Reset()
	if err := nilTel.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil telemetry should write nothing: err=%v out=%q", err, b.String())
	}
}
