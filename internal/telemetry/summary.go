package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// Summary renders a human-readable digest of the run's telemetry: final
// counter totals, last gauge values, histogram shapes and event counts.
// The exp runners and the padcsim CLI embed it under their tables.
func (t *Telemetry) Summary() string {
	if t == nil {
		return "telemetry: disabled\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry: %d metrics, %d epochs (every %d cycles), %d events",
		len(t.metrics), len(t.series.Rows), t.opts.EpochCycles, t.EventsTotal())
	if d := t.EventsDropped(); d > 0 {
		fmt.Fprintf(&b, " (%d overwritten)", d)
	}
	b.WriteByte('\n')

	width := 0
	for _, m := range t.metrics {
		if len(m.name) > width {
			width = len(m.name)
		}
	}
	for _, m := range t.metrics {
		switch m.kind {
		case KindCounter:
			fmt.Fprintf(&b, "  %-*s %d\n", width, m.name, uint64(m.read()))
		default:
			fmt.Fprintf(&b, "  %-*s %.4g\n", width, m.name, m.read())
		}
	}
	for _, h := range t.hists {
		fmt.Fprintf(&b, "  %s (n=%d):", h.name, h.Total())
		for i, c := range h.counts {
			if i < len(h.bounds) {
				fmt.Fprintf(&b, " <=%d:%d", h.bounds[i], c)
			} else {
				fmt.Fprintf(&b, " >%d:%d", h.bounds[len(h.bounds)-1], c)
			}
		}
		b.WriteByte('\n')
	}
	if counts := t.EventCounts(); len(counts) > 0 {
		kinds := make([]string, 0, len(counts))
		for k := range counts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		b.WriteString("  events:")
		for _, k := range kinds {
			fmt.Fprintf(&b, " %s=%d", k, counts[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// EventCounts returns, per event kind, how many retained events the ring
// holds.
func (t *Telemetry) EventCounts() map[string]uint64 {
	if t == nil {
		return nil
	}
	out := make(map[string]uint64)
	for _, ev := range t.Events() {
		out[ev.Kind.String()]++
	}
	return out
}
