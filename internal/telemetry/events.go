package telemetry

// EventKind classifies a trace event.
type EventKind uint8

const (
	// EvEnqueue: a request entered a memory controller's request buffer.
	// A = 1 if prefetch.
	EvEnqueue EventKind = iota
	// EvIssue: a controller issued a request to its DRAM channel.
	// A = predicted finish cycle.
	EvIssue
	// EvComplete: DRAM service finished and the line was filled.
	// A = service span in cycles (issue to finish); Cycle is the issue
	// cycle so Chrome-trace spans render at the right place.
	EvComplete
	// EvDrop: APD removed an expired prefetch from the buffer.
	// A = the request's age in cycles at the drop.
	EvDrop
	// EvPromotion: a core's accuracy estimate crossed the APS promotion
	// threshold. A = new accuracy in ppm; Bank = 1 when promoted, 0 when
	// demoted.
	EvPromotion
	// EvRowConflict: an issued request found a conflicting open row.
	EvRowConflict
	// EvMSHRStall: a demand load was rejected because the MSHR file or
	// the request buffer was full.
	EvMSHRStall
	// EvReject: a request was rejected by a full request buffer.
	EvReject
	// EvRefresh: the maintenance engine refreshed a bank (Bank >= 0) or a
	// whole rank (Bank = -1). A = the cycle the refresh completes.
	EvRefresh
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvEnqueue:
		return "enqueue"
	case EvIssue:
		return "issue"
	case EvComplete:
		return "complete"
	case EvDrop:
		return "drop"
	case EvPromotion:
		return "promotion"
	case EvRowConflict:
		return "row-conflict"
	case EvMSHRStall:
		return "mshr-stall"
	case EvReject:
		return "reject"
	case EvRefresh:
		return "refresh"
	default:
		return "unknown"
	}
}

// Event is one typed trace record. The fixed shape keeps the ring
// allocation-free: Emit copies the struct into a preallocated slot.
type Event struct {
	Cycle uint64
	Line  uint64 // line address (0 when not applicable)
	A     uint64 // kind-specific scalar; see the EventKind docs
	Kind  EventKind
	Pref  bool  // the request was (still) a prefetch
	Core  int16 // -1 when not applicable
	Chan  int16 // memory controller index; -1 when not applicable
	Bank  int16 // -1 when not applicable
}

// ring is a bounded overwrite-oldest event buffer.
type ring struct {
	buf     []Event
	next    int
	wrapped bool
	dropped uint64 // events overwritten after the ring wrapped
	total   uint64
}

func (r *ring) init(capacity int) {
	if capacity > 0 {
		r.buf = make([]Event, capacity)
	}
}

func (r *ring) add(ev Event) {
	if len(r.buf) == 0 {
		return
	}
	if r.wrapped {
		r.dropped++
	}
	r.buf[r.next] = ev
	r.next++
	r.total++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
}

// events returns the retained events in chronological order.
func (r *ring) events() []Event {
	if !r.wrapped {
		return r.buf[:r.next]
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Emit records one event (no-op for nil or event-disabled telemetry).
func (t *Telemetry) Emit(ev Event) {
	if t == nil {
		return
	}
	t.ring.add(ev)
}

// Events returns the retained events in chronological order. When the run
// produced more events than the ring holds, the oldest were overwritten;
// EventsDropped reports how many.
func (t *Telemetry) Events() []Event {
	if t == nil {
		return nil
	}
	return t.ring.events()
}

// EventsTotal returns how many events were emitted over the run.
func (t *Telemetry) EventsTotal() uint64 {
	if t == nil {
		return 0
	}
	return t.ring.total
}

// EventsDropped returns how many emitted events were overwritten.
func (t *Telemetry) EventsDropped() uint64 {
	if t == nil {
		return 0
	}
	return t.ring.dropped
}
