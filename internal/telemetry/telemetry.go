// Package telemetry is the simulator's cycle-level observability layer:
// a metric registry (counters, gauges, fixed-bucket histograms registered
// by name), an epoch sampler that snapshots every registered metric into a
// per-run time series, and a bounded ring of typed trace events with CSV,
// JSONL and Chrome trace_event exporters.
//
// The whole package is disabled-by-default and nil-safe: every method has
// a nil-receiver fast path, so instrumented subsystems hold a possibly-nil
// *Telemetry and call it unconditionally. With telemetry off the hot-path
// cost is one pointer compare per call site; with it on, counter updates
// are plain uint64 adds (registry lookups happen only at construction).
//
// Metric names are slash-scoped, instance-indexed strings following the
// DROPLET convention ("memctrl0/drops", "dram0/row_conflicts",
// "core3/acc_estimate"); see README.md's Telemetry section for the full
// names the simulator registers.
package telemetry

import (
	"fmt"
	"sort"
)

// MetricKind distinguishes how the epoch sampler treats a metric.
type MetricKind uint8

const (
	// KindCounter metrics are monotonically increasing; the sampler
	// records the delta accumulated during each epoch.
	KindCounter MetricKind = iota
	// KindGauge metrics are instantaneous; the sampler records the value
	// at the epoch boundary.
	KindGauge
)

// Counter is a monotonically increasing metric. The zero of *Counter (nil)
// is a valid no-op counter, so disabled telemetry costs one branch.
type Counter struct {
	v uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Value returns the accumulated count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper edges; one implicit overflow bucket catches everything beyond the
// last bound. A nil *Histogram is a valid no-op.
type Histogram struct {
	name   string
	bounds []uint64
	counts []uint64
	sum    uint64
}

// Observe books one observation of v.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.sum += v
}

// Sum returns the summed observed values (0 for a nil histogram), the
// Prometheus exposition's <name>_sum.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 {
	if h == nil {
		return 0
	}
	var t uint64
	for _, c := range h.counts {
		t += c
	}
	return t
}

// Buckets returns (bounds, counts); counts has one more entry than bounds
// (the overflow bucket).
func (h *Histogram) Buckets() ([]uint64, []uint64) {
	if h == nil {
		return nil, nil
	}
	return h.bounds, h.counts
}

// metric is one registered, sampleable metric.
type metric struct {
	name string
	kind MetricKind
	// Exactly one of counter / counterFn / gaugeFn is set.
	counter   *Counter
	counterFn func() uint64
	gaugeFn   func() float64
}

func (m *metric) read() float64 {
	switch {
	case m.counter != nil:
		return float64(m.counter.v)
	case m.counterFn != nil:
		return float64(m.counterFn())
	default:
		return m.gaugeFn()
	}
}

// Options configures a Telemetry instance.
type Options struct {
	// EpochCycles is the sampling period of the epoch time series; 0
	// disables sampling (metrics and events still work).
	EpochCycles uint64
	// EventCapacity bounds the event ring; 0 uses DefaultEventCapacity,
	// negative disables event recording.
	EventCapacity int
}

// DefaultEventCapacity is the event-ring size when Options leaves it zero.
const DefaultEventCapacity = 1 << 16

// Telemetry is one run's metric registry, epoch series and event ring.
// A nil *Telemetry is a valid disabled instance: every method no-ops.
type Telemetry struct {
	opts    Options
	metrics []*metric
	byName  map[string]*metric
	hists   []*Histogram

	series Series
	totals []float64 // cumulative counter readings at the last sample
	ring   ring
}

// New builds an enabled Telemetry with the given options.
func New(opts Options) *Telemetry {
	cap := opts.EventCapacity
	if cap == 0 {
		cap = DefaultEventCapacity
	}
	if cap < 0 {
		cap = 0
	}
	t := &Telemetry{opts: opts, byName: make(map[string]*metric)}
	t.ring.init(cap)
	return t
}

// Enabled reports whether this instance records anything.
func (t *Telemetry) Enabled() bool { return t != nil }

// EpochCycles returns the sampling period (0 when sampling is off or the
// receiver is nil).
func (t *Telemetry) EpochCycles() uint64 {
	if t == nil {
		return 0
	}
	return t.opts.EpochCycles
}

func (t *Telemetry) register(m *metric) {
	if _, dup := t.byName[m.name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", m.name))
	}
	t.byName[m.name] = m
	t.metrics = append(t.metrics, m)
}

// Counter registers (or returns, for a nil receiver, nil) a counter
// metric. Call once at construction; the returned *Counter is the
// zero-allocation hot-path handle.
func (t *Telemetry) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	c := &Counter{}
	t.register(&metric{name: name, kind: KindCounter, counter: c})
	return c
}

// CounterFunc registers a counter metric backed by an existing
// monotonically-increasing source (a stats field a subsystem already
// maintains), avoiding double counting on the hot path.
func (t *Telemetry) CounterFunc(name string, fn func() uint64) {
	if t == nil {
		return
	}
	t.register(&metric{name: name, kind: KindCounter, counterFn: fn})
}

// GaugeFunc registers an instantaneous metric sampled at epoch
// boundaries (occupancy, accuracy estimate, rate).
func (t *Telemetry) GaugeFunc(name string, fn func() float64) {
	if t == nil {
		return
	}
	t.register(&metric{name: name, kind: KindGauge, gaugeFn: fn})
}

// Histogram registers a fixed-bucket histogram with the given inclusive
// upper bounds (must be ascending); an overflow bucket is implicit.
func (t *Telemetry) Histogram(name string, bounds []uint64) *Histogram {
	if t == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{
		name:   name,
		bounds: append([]uint64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	t.hists = append(t.hists, h)
	return h
}

// Names returns the registered metric names in registration order.
func (t *Telemetry) Names() []string {
	if t == nil {
		return nil
	}
	out := make([]string, len(t.metrics))
	for i, m := range t.metrics {
		out[i] = m.name
	}
	return out
}

// Value returns the current value of the named metric (counters report the
// cumulative count) and whether it exists.
func (t *Telemetry) Value(name string) (float64, bool) {
	if t == nil {
		return 0, false
	}
	m, ok := t.byName[name]
	if !ok {
		return 0, false
	}
	return m.read(), true
}
