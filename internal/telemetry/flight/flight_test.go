package flight

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRecorderBounds pins the flight-recorder memory contract: an
// arbitrarily long run retains at most MaxEpochs epochs (the most recent
// ones), lifetime totals keep accumulating across evictions, and a
// steady-state rotation allocates nothing once the ring is full.
func TestRecorderBounds(t *testing.T) {
	const maxEpochs, rotations = 8, 1000
	r := New(Options{EpochCycles: 100, MaxEpochs: maxEpochs})
	r.Configure(1, 4)
	now := uint64(0)
	for i := 0; i < rotations; i++ {
		r.NoteIssue(0, i%4, i%2 == 0)
		r.NoteAccess(0, i%4, OutcomeHit, 0, 0)
		now += 100
		r.Rotate(now)
	}
	retained, completed, evicted := r.Retained()
	if retained != maxEpochs || completed != rotations || evicted != rotations-maxEpochs {
		t.Fatalf("Retained() = (%d, %d, %d), want (%d, %d, %d)",
			retained, completed, evicted, maxEpochs, rotations, rotations-maxEpochs)
	}
	eps := r.Epochs()
	if len(eps) != maxEpochs {
		t.Fatalf("Epochs() returned %d epochs, ring bound is %d", len(eps), maxEpochs)
	}
	for i, ep := range eps {
		if want := rotations - maxEpochs + i; ep.Index != want {
			t.Fatalf("epoch %d has index %d, want %d (most-recent history must survive)", i, ep.Index, want)
		}
	}
	var hits uint64
	for _, c := range r.Summary().Totals {
		hits += c.Hits
	}
	if hits != rotations {
		t.Fatalf("lifetime totals lost evicted epochs: %d hits, want %d", hits, rotations)
	}

	// Steady state must not grow: rotations with the ring full reuse its
	// slots (rule-win deltas are absent here, so zero allocations).
	allocs := testing.AllocsPerRun(100, func() {
		r.NoteAccess(0, 1, OutcomeConflict, 1, 1)
		now += 100
		r.Rotate(now)
	})
	if allocs != 0 {
		t.Fatalf("steady-state rotation allocates %.1f objects per epoch; ring slots must be reused", allocs)
	}
}

// TestRecorderRuleWinDeltas checks per-epoch attribution: the recorder
// samples cumulative counters at each rotation and stores the deltas.
func TestRecorderRuleWinDeltas(t *testing.T) {
	r := New(Options{EpochCycles: 10, MaxEpochs: 4})
	r.Configure(1, 1)
	cum := []uint64{0, 0}
	r.AttachRules(0, []string{"rowhit", "fcfs"}, func() []uint64 {
		return append([]uint64(nil), cum...)
	})
	cum = []uint64{5, 2}
	r.Rotate(10)
	cum = []uint64{9, 2}
	r.Rotate(20)
	eps := r.Epochs()
	if len(eps) != 2 {
		t.Fatalf("got %d epochs, want 2", len(eps))
	}
	if got := eps[0].RuleWins[0]; got[0] != 5 || got[1] != 2 {
		t.Fatalf("epoch 0 deltas = %v, want [5 2]", got)
	}
	if got := eps[1].RuleWins[0]; got[0] != 4 || got[1] != 0 {
		t.Fatalf("epoch 1 deltas = %v, want [4 0]", got)
	}
	if rules := r.Summary().Rules; len(rules) != 2 || rules[0] != "rowhit" {
		t.Fatalf("summary rules = %v", rules)
	}
}

// TestRecorderNilAndEmptyRotate covers the disabled paths: a nil
// recorder no-ops everywhere, and a rotation with no elapsed cycles
// (run ending exactly on a boundary) adds no epoch.
func TestRecorderNilAndEmptyRotate(t *testing.T) {
	var nr *Recorder
	nr.Configure(1, 8)
	nr.NoteIssue(0, 0, true)
	nr.NoteAccess(0, 0, OutcomeHit, 1, 0)
	nr.NoteBlocked(0, 0)
	nr.NoteRefresh(0, 0, true)
	nr.Rotate(100)
	if nr.Summary() != nil || nr.Epochs() != nil || nr.EpochCycles() != 0 {
		t.Fatal("nil recorder must report nothing")
	}
	var b bytes.Buffer
	if err := nr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}

	r := New(Options{})
	r.Configure(2, 2)
	r.Rotate(50)
	r.Rotate(50) // same cycle: no second epoch
	if got, _, _ := r.Retained(); got != 1 {
		t.Fatalf("duplicate-boundary rotate created %d epochs, want 1", got)
	}
}

// TestRecorderExportShapes sanity-checks the three exporters: the CSV
// has one row per (epoch, channel, bank) plus a header, the JSONL lines
// decode back into epochs, and the Chrome counters use the channel/bank
// pid/tid convention.
func TestRecorderExportShapes(t *testing.T) {
	r := New(Options{EpochCycles: 10, MaxEpochs: 4})
	r.Configure(2, 2)
	r.NoteAccess(1, 1, OutcomeConflict, 1, 2)
	r.NoteIssue(1, 1, false)
	r.Rotate(10)
	r.NoteRefresh(0, 0, true)
	r.NoteBlocked(0, 0)
	r.Rotate(20)

	var csv bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(csv.String(), "\n"), "\n")
	if want := 1 + 2*2*2; len(lines) != want {
		t.Fatalf("CSV has %d lines, want %d:\n%s", len(lines), want, csv.String())
	}
	if !strings.HasPrefix(lines[0], "epoch,start,end,chan,bank,") {
		t.Fatalf("CSV header malformed: %q", lines[0])
	}

	var jsonl bytes.Buffer
	if err := r.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(strings.NewReader(jsonl.String()))
	var eps []Epoch
	for dec.More() {
		var ep Epoch
		if err := dec.Decode(&ep); err != nil {
			t.Fatalf("JSONL line does not decode: %v", err)
		}
		eps = append(eps, ep)
	}
	if len(eps) != 2 || eps[1].Cells[0].Refreshes != 1 || eps[1].Cells[0].RefreshBlocked != 1 {
		t.Fatalf("JSONL round-trip lost data: %+v", eps)
	}
	// The refresh precharged an open row: that close must be booked.
	if eps[1].Cells[0].Closes != 1 {
		t.Fatalf("refresh close not booked: %+v", eps[1].Cells[0])
	}

	var emitted []string
	r.ChromeCounters(func(format string, args ...any) {
		emitted = append(emitted, format)
	})
	if want := 2 * 2 * 2 * 2; len(emitted) != want { // epochs × chans × banks × 2 tracks
		t.Fatalf("ChromeCounters emitted %d events, want %d", len(emitted), want)
	}
}

// TestRecorderGeometryPanics pins the misuse contract.
func TestRecorderGeometryPanics(t *testing.T) {
	r := New(Options{})
	r.Configure(1, 8)
	r.Configure(1, 8) // same geometry: fine
	for _, tc := range []func(){
		func() { r.Configure(2, 8) },
		func() { New(Options{}).Configure(0, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad geometry did not panic")
				}
			}()
			tc()
		}()
	}
}

// TestRecorderBusBusyDeltas checks the bandwidth gauge: an attached bus
// sampler yields per-epoch busy-cycle deltas and a trailing heatmap
// column, while unattached recorders keep the historical export format.
func TestRecorderBusBusyDeltas(t *testing.T) {
	r := New(Options{EpochCycles: 10, MaxEpochs: 4})
	r.Configure(2, 1)
	cum := []uint64{0, 0}
	for ch := 0; ch < 2; ch++ {
		ch := ch
		r.AttachBus(ch, func() uint64 { return cum[ch] })
	}
	cum = []uint64{6, 10}
	r.Rotate(10)
	cum = []uint64{9, 10}
	r.Rotate(20)

	eps := r.Epochs()
	if got := eps[0].BusBusy; len(got) != 2 || got[0] != 6 || got[1] != 10 {
		t.Fatalf("epoch 0 bus deltas = %v, want [6 10]", got)
	}
	if got := eps[1].BusBusy; got[0] != 3 || got[1] != 0 {
		t.Fatalf("epoch 1 bus deltas = %v, want [3 0]", got)
	}

	var csv bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if !strings.HasSuffix(lines[0], ",bus_busy") {
		t.Fatalf("attached recorder must export the bus_busy column: %q", lines[0])
	}
	// Channel 0's first-epoch row ends with its 6 busy cycles.
	if !strings.HasSuffix(lines[1], ",6") {
		t.Fatalf("bus_busy value missing from heatmap row: %q", lines[1])
	}

	// The summary's ring copies the deltas.
	if got := r.Summary().Ring[0].BusBusy; len(got) != 2 || got[0] != 6 {
		t.Fatalf("summary ring bus deltas = %v", got)
	}

	// Without a sampler the column (and epoch field) stays absent.
	plain := New(Options{EpochCycles: 10})
	plain.Configure(1, 1)
	plain.Rotate(10)
	if plain.Epochs()[0].BusBusy != nil {
		t.Fatal("unattached recorder recorded bus deltas")
	}
	csv.Reset()
	if err := plain.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(csv.String(), "bus_busy") {
		t.Fatalf("unattached recorder must keep the historical header: %q", csv.String())
	}
}
