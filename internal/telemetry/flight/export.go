package flight

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
)

// cyclesPerMicro matches the telemetry package's Chrome trace_event
// conversion (4GHz core clock: 4000 cycles per µs).
const cyclesPerMicro = 4000.0

// WriteCSV writes the retained epochs as a long-form heatmap table: one
// row per (epoch, channel, bank), ready to pivot into an epoch × bank
// heatmap. Output is a pure function of the recorded run.
func (r *Recorder) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	// Multi-tier recorders carry per-channel domain labels; a trailing
	// domain column appears only then, so flat heatmaps stay byte-identical
	// to the historical format.
	labeled := r != nil && len(r.domains) > 0
	// Likewise the bus_busy column (per-channel bus-busy cycles, the
	// bandwidth-headroom numerator) appears only when a sampler is attached.
	busCol := r != nil && r.busAttached
	bw.WriteString("epoch,start,end,chan,bank,hits,closed,conflicts,opens,closes,demand,pref,refreshes,refresh_blocked")
	if labeled {
		bw.WriteString(",domain")
	}
	if busCol {
		bw.WriteString(",bus_busy")
	}
	bw.WriteByte('\n')
	if r == nil {
		return bw.Flush()
	}
	for _, ep := range r.Epochs() {
		for ch := 0; ch < r.channels; ch++ {
			for b := 0; b < r.banks; b++ {
				c := &ep.Cells[ch*r.banks+b]
				for i, v := range [...]uint64{
					uint64(ep.Index), ep.Start, ep.End, uint64(ch), uint64(b),
					c.Hits, c.Closed, c.Conflicts, c.Opens, c.Closes,
					c.Demand, c.Pref, c.Refreshes, c.RefreshBlocked,
				} {
					if i > 0 {
						bw.WriteByte(',')
					}
					bw.WriteString(strconv.FormatUint(v, 10))
				}
				if labeled {
					bw.WriteByte(',')
					bw.WriteString(r.domains[ch])
				}
				if busCol {
					bw.WriteByte(',')
					var busy uint64
					if ch < len(ep.BusBusy) {
						busy = ep.BusBusy[ch]
					}
					bw.WriteString(strconv.FormatUint(busy, 10))
				}
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}

// WriteJSONL writes one JSON object per retained epoch, oldest first —
// the streaming-friendly form of the same heatmap.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if r == nil {
		return bw.Flush()
	}
	enc := json.NewEncoder(bw)
	for _, ep := range r.Epochs() {
		if err := enc.Encode(ep); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ChromeCounters emits one Chrome trace_event counter ("C") sample per
// bank per retained epoch, using the same pid/tid convention as the
// telemetry event exporter (pid = memory controller, tid = bank), so
// flight-recorder tracks interleave into the same trace file via
// Telemetry.WriteChromeTraceWith.
func (r *Recorder) ChromeCounters(emit func(format string, args ...any)) {
	if r == nil {
		return
	}
	for _, ep := range r.Epochs() {
		ts := float64(ep.Start) / cyclesPerMicro
		for ch := 0; ch < r.channels; ch++ {
			for b := 0; b < r.banks; b++ {
				c := &ep.Cells[ch*r.banks+b]
				emit(`{"ph":"C","name":"bank%d rows","cat":"flight","ts":%.3f,"pid":%d,"tid":%d,"args":{"hits":%d,"closed":%d,"conflicts":%d}}`,
					b, ts, ch, b, c.Hits, c.Closed, c.Conflicts)
				emit(`{"ph":"C","name":"bank%d traffic","cat":"flight","ts":%.3f,"pid":%d,"tid":%d,"args":{"demand":%d,"pref":%d,"refresh_blocked":%d}}`,
					b, ts, ch, b, c.Demand, c.Pref, c.RefreshBlocked)
			}
		}
	}
}
