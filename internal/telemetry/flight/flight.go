// Package flight is the bank-state flight recorder: bounded per-epoch ×
// per-bank accounting of what every DRAM bank did and why. Where the
// epoch sampler in internal/telemetry answers "what did the whole system
// do over time" and the event ring answers "what happened at cycle X",
// the flight recorder answers "what was bank (c,b) doing during epoch e":
// row hits/closed-row fills/conflicts, open/close (activate/precharge)
// transitions, demand vs. prefetch issue counts, refresh activity and
// refresh-blocked scheduling slots, plus per-epoch rule-win attribution
// from the scheduler's rule stack.
//
// Like the rest of the telemetry layer it is disabled-by-default and
// nil-safe: every method has a nil-receiver fast path, so the controller
// and DRAM model hold a possibly-nil *Recorder and call it
// unconditionally. Memory is bounded: the recorder keeps lifetime
// per-bank totals plus a ring of the last MaxEpochs epochs — classic
// flight-recorder semantics, the most recent history survives — so
// arbitrarily long runs stay O(MaxEpochs × banks).
package flight

// Outcome classifies one bank access by row-buffer state, mirroring the
// DRAM model's hit/closed/conflict taxonomy without importing it.
type Outcome uint8

const (
	// OutcomeHit is a row-buffer hit (row already open).
	OutcomeHit Outcome = iota
	// OutcomeClosed is an access to a precharged bank (activate, no
	// conflict).
	OutcomeClosed
	// OutcomeConflict is a row conflict (wrong row open: precharge then
	// activate).
	OutcomeConflict
)

// Cell is one bank's accounting for one epoch (or, in Summary.Totals,
// for the whole run).
type Cell struct {
	// Hits, Closed and Conflicts count accesses by row-buffer outcome.
	Hits      uint64 `json:"hits"`
	Closed    uint64 `json:"closed"`
	Conflicts uint64 `json:"conflicts"`
	// Opens counts row activations; Closes counts precharges from any
	// cause (conflicts, closed-page policy, the adaptive predictor,
	// refresh), as reported by the DRAM model itself.
	Opens  uint64 `json:"opens"`
	Closes uint64 `json:"closes"`
	// Demand and Pref count issued requests by class.
	Demand uint64 `json:"demand"`
	Pref   uint64 `json:"pref"`
	// Refreshes counts refresh operations started on the bank.
	// RefreshBlocked counts scheduler slots (controller ticks) in which
	// the bank had work but was busy refreshing.
	Refreshes      uint64 `json:"refreshes"`
	RefreshBlocked uint64 `json:"refresh_blocked"`
}

func (c *Cell) accumulate(o Cell) {
	c.Hits += o.Hits
	c.Closed += o.Closed
	c.Conflicts += o.Conflicts
	c.Opens += o.Opens
	c.Closes += o.Closes
	c.Demand += o.Demand
	c.Pref += o.Pref
	c.Refreshes += o.Refreshes
	c.RefreshBlocked += o.RefreshBlocked
}

func (c *Cell) zero() { *c = Cell{} }

// Epoch is one completed accounting interval: cells are channel-major
// (cell for channel c, bank b at index c*banks+b), RuleWins holds the
// per-channel rule-win deltas accumulated during the epoch (same order
// as Summary.Rules).
type Epoch struct {
	Index    int        `json:"epoch"`
	Start    uint64     `json:"start"`
	End      uint64     `json:"end"`
	Cells    []Cell     `json:"cells"`
	RuleWins [][]uint64 `json:"rule_wins,omitempty"`
	// BusBusy holds each channel's data-bus-busy cycles during the epoch
	// (index = channel), present only when a bus sampler was attached —
	// 1 − BusBusy[ch]/(End−Start) is the channel's bandwidth headroom.
	BusBusy []uint64 `json:"bus_busy,omitempty"`
}

// Options configures a Recorder.
type Options struct {
	// EpochCycles is the accounting interval; 0 uses DefaultEpochCycles.
	// The recorder itself is cadence-free — the simulation loop calls
	// Rotate — but the period is recorded so exporters can label axes.
	EpochCycles uint64
	// MaxEpochs bounds the retained-epoch ring; 0 uses DefaultMaxEpochs.
	MaxEpochs int
}

// DefaultEpochCycles is the rotation period when Options leaves it zero.
const DefaultEpochCycles = 10_000

// DefaultMaxEpochs is the ring bound when Options leaves it zero.
const DefaultMaxEpochs = 64

// ruleSource samples one channel's cumulative rule-win counters so
// Rotate can attribute per-epoch deltas.
type ruleSource struct {
	names  []string
	sample func() []uint64
	prev   []uint64
}

// busSource samples one channel's cumulative bus-busy cycle counter so
// Rotate can attribute per-epoch bandwidth deltas.
type busSource struct {
	sample func() uint64
	prev   uint64
}

// Recorder accumulates per-bank cells into the current epoch and, on
// Rotate, pushes the epoch into a bounded ring. A nil *Recorder is a
// valid disabled instance: every method no-ops.
type Recorder struct {
	opts     Options
	channels int
	banks    int

	cur   Epoch   // epoch being filled
	ring  []Epoch // retained completed epochs; slots reused once full
	head  int     // oldest retained epoch's slot
	count int     // retained epochs
	done  int     // epochs ever completed
	drop  int     // epochs evicted from the ring

	totals []Cell // lifetime per-bank accumulation (includes evicted epochs)
	rules  []ruleSource
	bus    []busSource
	// busAttached gates the bus-busy epoch column (and the heatmap's
	// trailing bus_busy column): recorders with no sampler export the
	// historical format unchanged.
	busAttached bool

	// domains, when set, labels each channel with its memory-domain name
	// (multi-tier topologies). Empty on flat machines, keeping their
	// exports byte-identical to the pre-topology format.
	domains []string
}

// New builds an enabled Recorder. Geometry is supplied by the simulation
// via Configure before any recording happens.
func New(opts Options) *Recorder {
	if opts.EpochCycles == 0 {
		opts.EpochCycles = DefaultEpochCycles
	}
	if opts.MaxEpochs <= 0 {
		opts.MaxEpochs = DefaultMaxEpochs
	}
	return &Recorder{opts: opts}
}

// EpochCycles returns the configured rotation period (0 for nil).
func (r *Recorder) EpochCycles() uint64 {
	if r == nil {
		return 0
	}
	return r.opts.EpochCycles
}

// Configure sets the bank geometry. The simulation calls it once at
// construction; calling again with the same geometry is a no-op, with a
// different one a panic (a recorder records one machine shape per run).
func (r *Recorder) Configure(channels, banks int) {
	if r == nil {
		return
	}
	if r.channels != 0 || r.banks != 0 {
		if r.channels != channels || r.banks != banks {
			panic("flight: recorder reconfigured with different geometry")
		}
		return
	}
	if channels <= 0 || banks <= 0 {
		panic("flight: non-positive geometry")
	}
	r.channels, r.banks = channels, banks
	r.cur = Epoch{Cells: make([]Cell, channels*banks)}
	r.totals = make([]Cell, channels*banks)
	r.rules = make([]ruleSource, channels)
	r.bus = make([]busSource, channels)
}

// LabelDomains tags each channel with its memory-domain name (index =
// channel). The simulation calls it only on multi-tier topologies;
// unlabeled recorders export the historical flat format unchanged.
func (r *Recorder) LabelDomains(names []string) {
	if r == nil || len(names) == 0 {
		return
	}
	if r.channels != 0 && len(names) != r.channels {
		panic("flight: domain labels do not match channel count")
	}
	r.domains = append([]string(nil), names...)
}

// Domain returns the channel's domain label ("" when unlabeled).
func (r *Recorder) Domain(ch int) string {
	if r == nil || ch < 0 || ch >= len(r.domains) {
		return ""
	}
	return r.domains[ch]
}

// AttachRules registers a channel's rule-win sampler: names label the
// scheduler's rules, sample returns the cumulative win counters in the
// same order. Rotate stores per-epoch deltas.
func (r *Recorder) AttachRules(ch int, names []string, sample func() []uint64) {
	if r == nil || ch < 0 || ch >= len(r.rules) {
		return
	}
	r.rules[ch] = ruleSource{
		names:  append([]string(nil), names...),
		sample: sample,
		prev:   make([]uint64, len(names)),
	}
}

// AttachBus registers a channel's bandwidth sampler: sample returns the
// channel's cumulative data-bus-busy cycles. Rotate stores per-epoch
// deltas, from which exporters derive the bandwidth-headroom gauge.
func (r *Recorder) AttachBus(ch int, sample func() uint64) {
	if r == nil || ch < 0 || ch >= len(r.bus) || sample == nil {
		return
	}
	r.bus[ch] = busSource{sample: sample}
	r.busAttached = true
}

func (r *Recorder) cell(ch, bank int) *Cell {
	return &r.cur.Cells[ch*r.banks+bank]
}

// ready reports whether the recorder can accept notes (non-nil and
// configured).
func (r *Recorder) ready() bool { return r != nil && r.banks != 0 }

// NoteAccess records one bank access: its row-buffer outcome plus how
// many row activations and precharges it caused, as decided inside the
// DRAM model — including hidden closed-page and predictor precharges the
// controller never sees (a conflict under a closing policy precharges
// twice: once before the access, once after).
func (r *Recorder) NoteAccess(ch, bank int, out Outcome, opens, closes int) {
	if !r.ready() {
		return
	}
	c := r.cell(ch, bank)
	switch out {
	case OutcomeHit:
		c.Hits++
	case OutcomeClosed:
		c.Closed++
	case OutcomeConflict:
		c.Conflicts++
	}
	c.Opens += uint64(opens)
	c.Closes += uint64(closes)
}

// NoteIssue records one scheduled request by class (controller-side: the
// DRAM model does not know demand from prefetch).
func (r *Recorder) NoteIssue(ch, bank int, pref bool) {
	if !r.ready() {
		return
	}
	if pref {
		r.cell(ch, bank).Pref++
	} else {
		r.cell(ch, bank).Demand++
	}
}

// NoteRefresh records a refresh starting on the bank; closed reports
// whether it had to precharge an open row first.
func (r *Recorder) NoteRefresh(ch, bank int, closed bool) {
	if !r.ready() {
		return
	}
	c := r.cell(ch, bank)
	c.Refreshes++
	if closed {
		c.Closes++
	}
}

// NoteBlocked records one scheduler slot in which the bank had pending
// work but was refreshing.
func (r *Recorder) NoteBlocked(ch, bank int) {
	if !r.ready() {
		return
	}
	r.cell(ch, bank).RefreshBlocked++
}

// Rotate closes the current epoch at cycle now and starts the next one.
// The simulation loop calls it on epoch boundaries and once more after
// the final partial epoch. A rotation with no elapsed cycles is a no-op,
// so the final call is safe when the run ended exactly on a boundary.
func (r *Recorder) Rotate(now uint64) {
	if !r.ready() || now <= r.cur.Start {
		return
	}
	var slot *Epoch
	if r.count < r.opts.MaxEpochs {
		r.ring = append(r.ring, Epoch{Cells: make([]Cell, len(r.cur.Cells))})
		slot = &r.ring[(r.head+r.count)%r.opts.MaxEpochs]
		r.count++
	} else {
		slot = &r.ring[r.head]
		r.head = (r.head + 1) % r.opts.MaxEpochs
		r.drop++
	}
	slot.Index = r.cur.Index
	slot.Start = r.cur.Start
	slot.End = now
	copy(slot.Cells, r.cur.Cells)
	slot.RuleWins = slot.RuleWins[:0]
	for ch := range r.rules {
		src := &r.rules[ch]
		if src.sample == nil {
			continue
		}
		cum := src.sample()
		delta := make([]uint64, len(cum))
		for i, v := range cum {
			if i < len(src.prev) {
				delta[i] = v - src.prev[i]
			} else {
				delta[i] = v
			}
		}
		src.prev = cum
		for len(slot.RuleWins) < ch {
			slot.RuleWins = append(slot.RuleWins, nil)
		}
		slot.RuleWins = append(slot.RuleWins, delta)
	}
	slot.BusBusy = slot.BusBusy[:0]
	if r.busAttached {
		for ch := range r.bus {
			src := &r.bus[ch]
			var delta uint64
			if src.sample != nil {
				cum := src.sample()
				delta = cum - src.prev
				src.prev = cum
			}
			slot.BusBusy = append(slot.BusBusy, delta)
		}
	} else {
		slot.BusBusy = nil
	}
	for i := range r.cur.Cells {
		r.totals[i].accumulate(r.cur.Cells[i])
		r.cur.Cells[i].zero()
	}
	r.done++
	r.cur.Index++
	r.cur.Start = now
}

// Epochs returns the retained completed epochs oldest-first. The slices
// alias recorder storage; callers must not mutate them.
func (r *Recorder) Epochs() []Epoch {
	if r == nil || r.count == 0 {
		return nil
	}
	out := make([]Epoch, 0, r.count)
	for i := 0; i < r.count; i++ {
		out = append(out, r.ring[(r.head+i)%r.opts.MaxEpochs])
	}
	return out
}

// Retained returns (retained, completed, evicted) epoch counts — the
// bounds contract: retained never exceeds MaxEpochs.
func (r *Recorder) Retained() (retained, completed, evicted int) {
	if r == nil {
		return 0, 0, 0
	}
	return r.count, r.done, r.drop
}

// Summary is the recorder's portable roll-up: what a sweep job ships to
// the campaign service as its telemetry sidecar record. It is a pure
// function of the simulated run, so it is byte-identical under JSON
// marshalling at any worker count.
type Summary struct {
	EpochCycles uint64   `json:"epoch_cycles"`
	Channels    int      `json:"channels"`
	Banks       int      `json:"banks"`
	Epochs      int      `json:"epochs"`            // epochs ever completed
	Dropped     int      `json:"dropped,omitempty"` // evicted from the ring
	Rules       []string `json:"rules,omitempty"`   // rule names (shared across channels)
	Domains     []string `json:"domains,omitempty"` // per-channel domain labels (multi-tier only)
	Totals      []Cell   `json:"totals"`            // lifetime per-bank cells, channel-major
	Ring        []Epoch  `json:"ring"`              // retained epochs, oldest first
}

// Summary snapshots the recorder. Cell slices are copied, so the summary
// stays valid if the recorder keeps running.
func (r *Recorder) Summary() *Summary {
	if r == nil || r.banks == 0 {
		return nil
	}
	s := &Summary{
		EpochCycles: r.opts.EpochCycles,
		Channels:    r.channels,
		Banks:       r.banks,
		Epochs:      r.done,
		Dropped:     r.drop,
		Totals:      append([]Cell(nil), r.totals...),
	}
	if len(r.domains) > 0 {
		s.Domains = append([]string(nil), r.domains...)
	}
	// All channels run the same rule stack in one machine, so channel
	// 0's names label every channel's delta vector.
	for ch := range r.rules {
		if len(r.rules[ch].names) > 0 {
			s.Rules = r.rules[ch].names
			break
		}
	}
	for _, ep := range r.Epochs() {
		cp := ep
		cp.Cells = append([]Cell(nil), ep.Cells...)
		if ep.RuleWins != nil {
			cp.RuleWins = make([][]uint64, len(ep.RuleWins))
			for i, w := range ep.RuleWins {
				cp.RuleWins[i] = append([]uint64(nil), w...)
			}
		}
		if ep.BusBusy != nil {
			cp.BusBusy = append([]uint64(nil), ep.BusBusy...)
		}
		s.Ring = append(s.Ring, cp)
	}
	return s
}
