// Package workload defines the synthetic benchmark suite that stands in
// for the paper's 55 SPEC CPU 2000/2006 benchmarks. Each named profile is
// tuned to its paper counterpart's class from Table 5:
//
//	class 0 — prefetch-insensitive (low MPKI or nothing to prefetch)
//	class 1 — prefetch-friendly (long streams, high accuracy)
//	class 2 — prefetch-unfriendly (short deceptive bursts that train the
//	          stream prefetcher and die, or phase-unstable accuracy)
//
// The knobs are the statistical properties the PADC mechanisms actually
// respond to: memory intensity (MemEvery), working-set size vs. cache
// size, stream length (which sets prefetch accuracy), dependence chains
// (which set memory-level parallelism) and phase behavior.
package workload

import (
	"fmt"
	"sort"

	"padc/internal/trace"
)

// Class labels the paper's three benchmark categories.
type Class int

const (
	Insensitive Class = iota // class 0
	Friendly                 // class 1
	Unfriendly               // class 2
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Insensitive:
		return "class0"
	case Friendly:
		return "class1"
	case Unfriendly:
		return "class2"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Profile is one synthetic benchmark.
type Profile struct {
	Name  string
	Class Class
	Gen   trace.Gen
}

const (
	wsHuge  = 1 << 21 // 128MB of lines: streaming working sets
	wsBig   = 1 << 19 // 32MB: far beyond any L2
	wsSmall = 1 << 11 // 128KB: fits the 512KB L2 (class-0 reuse)
)

func seedOf(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h | 1
}

// stream builds a long-stream pattern: the prefetch-friendly archetype.
func stream(name string, streams, length uint64) trace.Pattern {
	return trace.StreamPattern{Seed: seedOf(name), Streams: streams, StreamLen: length, WSLines: wsHuge, StrideLn: 1}
}

// burst builds the prefetch-unfriendly archetype: sequences just long
// enough to train the stream prefetcher before dying.
func burst(name string, streams, length uint64) trace.Pattern {
	return trace.StreamPattern{Seed: seedOf(name), Streams: streams, StreamLen: length, WSLines: wsBig, StrideLn: 1}
}

func random(name string) trace.Pattern {
	return trace.RandomPattern{Seed: seedOf(name), WSLines: wsBig}
}

func chase(name string) trace.Pattern {
	return trace.RandomPattern{Seed: seedOf(name), WSLines: wsBig, Dep: true}
}

// chaseWS is a pointer chase over an explicit working-set size; mid-size
// sets (1-8MB) give the paper's §6.9 cache-size sensitivity.
func chaseWS(name string, ws uint64) trace.Pattern {
	return trace.RandomPattern{Seed: seedOf(name), WSLines: ws, Dep: true}
}

// burstWS is a deceptive-burst pattern over an explicit working set.
func burstWS(name string, streams, length, ws uint64) trace.Pattern {
	return trace.StreamPattern{Seed: seedOf(name), Streams: streams, StreamLen: length, WSLines: ws, StrideLn: 1}
}

func loop(name string, length uint64) trace.Pattern {
	return trace.LoopPattern{Seed: seedOf(name), Len: length, WSLines: wsSmall}
}

func mix(name string, a, b trace.Pattern, numA, den uint64) trace.Pattern {
	return trace.MixPattern{Seed: seedOf(name), A: a, B: b, NumA: numA, Den: den}
}

func gen(p trace.Pattern, memEvery, repeat uint64) trace.Gen {
	return trace.Gen{Pattern: p, MemEvery: memEvery, Repeat: repeat}
}

// Suite returns the 28 named profiles mirroring the paper's Table 5.
// MemEvery is tuned so each profile's no-prefetch MPKI lands near the
// paper's, and stream length so its stream-prefetcher accuracy does (see
// the workload calibration test): ACC ≈ (L-3)/(L+Distance) for a stream of
// L lines under the ramping prefetcher.
func Suite() []Profile {
	return []Profile{
		// --- class 1: prefetch-friendly ----------------------------------
		// Stream counts at or above the bank count make row locality
		// policy-sensitive (the paper's §3 mechanism); longer streams raise
		// prefetch accuracy.
		{"swim", Friendly, gen(stream("swim", 10, 8192), 3, 12)},
		{"libquantum", Friendly, gen(stream("libquantum", 12, 32768), 4, 18)},
		{"bwaves", Friendly, gen(stream("bwaves", 9, 16384), 4, 13)},
		{"leslie3d", Friendly, gen(stream("leslie3d", 8, 560), 3, 16)},
		{"lbm", Friendly, gen(stream("lbm", 8, 1100), 3, 16)},
		{"soplex", Friendly, gen(mix("soplex", stream("soplex", 8, 280), random("soplex.r"), 9, 10), 3, 14)},
		{"GemsFDTD", Friendly, gen(stream("GemsFDTD", 12, 700), 4, 16)},
		{"mgrid", Friendly, gen(stream("mgrid", 4, 2600), 6, 26)},
		{"lucas", Friendly, gen(stream("lucas", 4, 480), 6, 16)},
		{"facerec", Friendly, gen(stream("facerec", 4, 85), 6, 48)},
		{"equake", Friendly, gen(stream("equake", 8, 1500), 5, 10)},
		{"wrf", Friendly, gen(stream("wrf", 4, 1300), 6, 21)},
		{"sphinx3", Friendly, gen(stream("sphinx3", 6, 80), 6, 13)},
		{"cactusADM", Friendly, gen(stream("cactusADM", 4, 56), 6, 37)},
		{"gcc", Friendly, gen(mix("gcc", loop("gcc", 1024), stream("gcc.s", 2, 36), 5, 10), 4, 20)},
		{"astar", Friendly, gen(mix("astar", chaseWS("astar", 36864), stream("astar.s", 2, 20), 7, 10), 5, 20)},
		{"mcf", Friendly, gen(mix("mcf", chase("mcf"), burst("mcf.s", 2, 34), 7, 10), 3, 10)},
		{"zeusmp", Friendly, gen(mix("zeusmp", stream("zeusmp", 4, 80), random("zeusmp.r"), 6, 10), 6, 36)},
		// --- class 2: prefetch-unfriendly --------------------------------
		{"art", Unfriendly, gen(mix("art", burst("art.b", 6, 8), random("art.r"), 85, 100), 2, 6)},
		{"galgel", Unfriendly, gen(burstWS("galgel", 4, 8, 40960), 6, 39)},
		{"ammp", Unfriendly, gen(burst("ammp", 4, 4), 8, 80)},
		{"xalancbmk", Unfriendly, gen(mix("xalancbmk", chaseWS("xalancbmk", 24576), burst("xalancbmk.b", 4, 4), 5, 10), 8, 60)},
		{"milc", Unfriendly, gen(trace.PhasedPattern{
			A:    stream("milc.a", 4, 2048),
			B:    burst("milc.b", 4, 3),
			ALen: 5_000,
			BLen: 15_000,
		}, 3, 11)},
		{"omnetpp", Unfriendly, gen(mix("omnetpp", chaseWS("omnetpp", 49152), burst("omnetpp.b", 4, 5), 4, 10), 5, 20)},
		// --- class 0: prefetch-insensitive -------------------------------
		{"eon", Insensitive, gen(loop("eon", 512), 5, 1)},
		{"gamess", Insensitive, gen(loop("gamess", 768), 5, 1)},
		{"sjeng", Insensitive, gen(loop("sjeng", 1024), 6, 1)},
		{"hmmer", Insensitive, gen(mix("hmmer", loop("hmmer", 1536), random("hmmer.r"), 127, 128), 4, 1)},
	}
}

// Extended returns the full 55-profile suite: the 28 named profiles plus
// 27 parameter-space variants, mirroring the paper's gmean55 population
// (29 of 55 prefetch-friendly).
func Extended() []Profile {
	out := Suite()
	type v struct {
		name  string
		class Class
		g     trace.Gen
	}
	var variants []v
	for i := 0; i < 11; i++ { // friendly variants
		name := fmt.Sprintf("syn-f%02d", i)
		variants = append(variants, v{name, Friendly,
			gen(stream(name, uint64(4+i), uint64(256<<(i%5))), uint64(3+i%4), uint64(10+5*i))})
	}
	for i := 0; i < 8; i++ { // unfriendly variants
		name := fmt.Sprintf("syn-u%02d", i)
		variants = append(variants, v{name, Unfriendly,
			gen(mix(name, burst(name+".b", uint64(2+i%4), uint64(4+3*i)), random(name+".r"), 6, 10), uint64(3+i%4), uint64(8+8*i))})
	}
	for i := 0; i < 8; i++ { // insensitive variants
		name := fmt.Sprintf("syn-i%02d", i)
		variants = append(variants, v{name, Insensitive,
			gen(loop(name, uint64(384+128*i)), uint64(4+i%4), 1)})
	}
	for _, x := range variants {
		out = append(out, Profile{Name: x.name, Class: x.class, Gen: x.g})
	}
	return out
}

// ByName returns the named profile from the extended suite.
func ByName(name string) (Profile, error) {
	for _, p := range Extended() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// MustByName is ByName for static names in examples and benches.
func MustByName(name string) Profile {
	p, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns the sorted names of the extended suite.
func Names() []string {
	ps := Extended()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}

// CacheSensitive builds a profile whose working set cycles repeatedly
// through wsLines cache lines in a shuffled order: it thrashes any cache
// smaller than the working set and fits in any larger one, giving the
// §6.9 cache-size sweep its signal at simulation-friendly run lengths.
func CacheSensitive(name string, wsLines uint64) Profile {
	return Profile{
		Name:  name,
		Class: Insensitive,
		Gen: trace.Gen{
			Pattern:  trace.ShuffledLoopPattern{Seed: seedOf(name), Len: wsLines, WSLines: wsLines * 2},
			MemEvery: 2, // intense, so several working-set laps fit in a short run
		},
	}
}

// Mixes builds n deterministic multiprogrammed workloads of k benchmarks
// each, drawn from the extended suite — the paper's randomly chosen 2-, 4-
// and 8-core combinations.
func Mixes(n, k int, seed uint64) [][]Profile {
	suite := Extended()
	out := make([][]Profile, n)
	s := seed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		return z ^ z>>31
	}
	for i := range out {
		mixp := make([]Profile, k)
		for j := range mixp {
			mixp[j] = suite[next()%uint64(len(suite))]
		}
		out[i] = mixp
	}
	return out
}
