package workload

import (
	"testing"
)

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 28 {
		t.Fatalf("named suite should have 28 profiles (Table 5), got %d", len(suite))
	}
	classes := map[Class]int{}
	names := map[string]bool{}
	for _, p := range suite {
		if names[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		names[p.Name] = true
		classes[p.Class]++
		if p.Gen.MemEvery == 0 {
			t.Fatalf("%s: zero MemEvery", p.Name)
		}
	}
	if classes[Friendly] < 10 || classes[Unfriendly] < 4 || classes[Insensitive] < 3 {
		t.Fatalf("class balance off: %v", classes)
	}
}

func TestExtendedIs55(t *testing.T) {
	if got := len(Extended()); got != 55 {
		t.Fatalf("extended suite should match the paper's 55 benchmarks, got %d", got)
	}
	friendly := 0
	for _, p := range Extended() {
		if p.Class == Friendly {
			friendly++
		}
	}
	// The paper: 29 of 55 are class 1.
	if friendly != 29 {
		t.Fatalf("want 29 prefetch-friendly profiles, got %d", friendly)
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("libquantum")
	if err != nil || p.Name != "libquantum" || p.Class != Friendly {
		t.Fatalf("ByName: %+v %v", p, err)
	}
	if _, err := ByName("no-such-benchmark"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestMixesDeterministicAndSized(t *testing.T) {
	a := Mixes(5, 4, 42)
	b := Mixes(5, 4, 42)
	if len(a) != 5 {
		t.Fatalf("want 5 mixes, got %d", len(a))
	}
	for i := range a {
		if len(a[i]) != 4 {
			t.Fatalf("mix %d has %d members", i, len(a[i]))
		}
		for j := range a[i] {
			if a[i][j].Name != b[i][j].Name {
				t.Fatal("mixes not deterministic")
			}
		}
	}
	c := Mixes(5, 4, 43)
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j].Name != c[i][j].Name {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical mixes")
	}
}

func TestNamesSortedComplete(t *testing.T) {
	names := Names()
	if len(names) != 55 {
		t.Fatalf("Names() should list 55, got %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
}

func TestProfilesDisjointSeeds(t *testing.T) {
	// Two distinct profiles must not produce the identical line sequence.
	a := MustByName("swim").Gen
	b := MustByName("bwaves").Gen
	same := 0
	for i := uint64(0); i < 1000; i++ {
		ia, ib := a.At(i), b.At(i)
		if ia.Mem && ib.Mem && ia.Line == ib.Line {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("profiles overlap suspiciously: %d identical lines", same)
	}
}
