package sched

import (
	"strings"
	"testing"
)

func TestParseAliases(t *testing.T) {
	want := map[string]string{
		"demand-pref-equal": "rules:rowhit,fcfs",
		"equal":             "rules:rowhit,fcfs",
		"demand-first":      "rules:demandfirst,rowhit,fcfs",
		"prefetch-first":    "rules:prefetchfirst,rowhit,fcfs",
		"aps":               "rules:critical,rowhit,urgent,fcfs",
		"aps-rank":          "rules:critical,rowhit,urgent,rank,fcfs",
	}
	for alias, canon := range want {
		s, err := Parse(alias)
		if err != nil {
			t.Fatalf("Parse(%q): %v", alias, err)
		}
		if s.String() != canon {
			t.Errorf("Parse(%q) = %q, want %q", alias, s, canon)
		}
	}
}

func TestParseRulesString(t *testing.T) {
	s, err := Parse("rules:critical, rowhit ,urgent,fcfs")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != "rules:critical,rowhit,urgent,fcfs" {
		t.Errorf("canonical form = %q", got)
	}
	if !s.Uses("urgent") || s.Uses("rank") {
		t.Errorf("Uses: urgent=%v rank=%v", s.Uses("urgent"), s.Uses("rank"))
	}
	// Round trip: the canonical form parses back to itself.
	s2, err := Parse(s.String())
	if err != nil || s2.String() != s.String() {
		t.Fatalf("round trip: %q, %v", s2, err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",                      // unknown
		"padc",                  // APD is not a scheduling rule
		"rules:",                // empty list
		"rules:frobnicate",      // unknown rule
		"rules:rowhit,rowhit",   // duplicate
		"rules:fcfs,rowhit",     // unreachable after fcfs
		"rules:rowhit,,fcfs",    // empty element
		"RULES:rowhit",          // case-sensitive prefix
		"rules:critical rowhit", // missing comma => unknown rule
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
	// Error text should teach the syntax.
	_, err := Parse("bogus")
	if err == nil || !strings.Contains(err.Error(), Prefix) {
		t.Errorf("unknown-policy error should mention the %q syntax: %v", Prefix, err)
	}
}

func TestRuleSemantics(t *testing.T) {
	// Each rule orders its attribute and abstains otherwise.
	cases := []struct {
		rule string
		a, b Cand
		want int
	}{
		{"critical", Cand{Critical: true}, Cand{}, 1},
		{"critical", Cand{}, Cand{Critical: true}, -1},
		{"critical", Cand{Critical: true}, Cand{Critical: true}, 0},
		{"rowhit", Cand{Hit: true}, Cand{}, 1},
		{"urgent", Cand{Urgent: true}, Cand{}, 1},
		{"demandfirst", Cand{}, Cand{Pref: true}, 1},
		{"demandfirst", Cand{Pref: true}, Cand{}, -1},
		{"prefetchfirst", Cand{Pref: true}, Cand{}, 1},
		{"fcfs", Cand{Seq: 1}, Cand{Seq: 2}, 1},
		{"fcfs", Cand{Seq: 2}, Cand{Seq: 1}, -1},
		// Rank orders critical requests by rank, higher first…
		{"rank", Cand{Critical: true, Rank: -1}, Cand{Critical: true, Rank: -3}, 1},
		// …treats a non-critical request as rank 0 (it can outrank a
		// critical one here; criticality splits earlier in real stacks)…
		{"rank", Cand{Rank: -5}, Cand{Critical: true, Rank: -3}, 1},
		// …and abstains on equal effective rank.
		{"rank", Cand{Critical: true, Rank: -2}, Cand{Critical: true, Rank: -2}, 0},
	}
	for _, c := range cases {
		r := ruleByName[c.rule]
		if got := r.Compare(c.a, c.b); got != c.want {
			t.Errorf("%s.Compare(%+v, %+v) = %d, want %d", c.rule, c.a, c.b, got, c.want)
		}
	}
}

func TestStackBetterOrderAndDecider(t *testing.T) {
	s := MustParse("aps")
	// Criticality dominates row-hit status.
	crit := Cand{Seq: 2, Critical: true}
	hit := Cand{Seq: 1, Hit: true}
	if better, by := s.Better(crit, hit); !better || s.DeciderName(by) != "critical" {
		t.Errorf("critical should dominate: better=%v by=%s", better, s.DeciderName(by))
	}
	// Fully tied candidates fall to the explicit fcfs rule.
	a := Cand{Seq: 1, Critical: true}
	b := Cand{Seq: 2, Critical: true}
	if better, by := s.Better(a, b); !better || s.DeciderName(by) != "fcfs" {
		t.Errorf("fcfs tiebreak: better=%v by=%s", better, s.DeciderName(by))
	}
	if better, _ := s.Better(b, a); better {
		t.Error("younger request won the fcfs tiebreak")
	}
}

func TestImplicitFCFSFallback(t *testing.T) {
	s := MustParse("rules:rowhit") // no explicit fcfs
	a := Cand{Seq: 1}
	b := Cand{Seq: 2}
	better, by := s.Better(a, b)
	if !better || by != ImplicitFCFS || s.DeciderName(by) != "fcfs" {
		t.Errorf("implicit fallback: better=%v by=%d name=%s", better, by, s.DeciderName(by))
	}
}

// TestStackIsStrictTotalOrder checks antisymmetry over a candidate cross
// product: exactly one of Better(a,b) / Better(b,a) holds for a != b.
func TestStackIsStrictTotalOrder(t *testing.T) {
	var cands []Cand
	seq := uint64(0)
	for _, crit := range []bool{false, true} {
		for _, hit := range []bool{false, true} {
			for _, urg := range []bool{false, true} {
				for _, pref := range []bool{false, true} {
					for _, rank := range []int{-2, 0} {
						cands = append(cands, Cand{
							Seq: seq, Critical: crit, Hit: hit, Urgent: urg, Pref: pref, Rank: rank,
						})
						seq++
					}
				}
			}
		}
	}
	for _, spec := range append(AliasNames(), "rules:rank,urgent,prefetchfirst") {
		s := MustParse(spec)
		for i, a := range cands {
			for j, b := range cands {
				if i == j {
					continue
				}
				ab, _ := s.Better(a, b)
				ba, _ := s.Better(b, a)
				if ab == ba {
					t.Fatalf("%s: Better not antisymmetric for %+v vs %+v (both %v)", spec, a, b, ab)
				}
			}
		}
	}
}

func TestRefreshRuleOrdering(t *testing.T) {
	s, err := Parse("rules:critical,rowhit,refresh,fcfs")
	if err != nil {
		t.Fatal(err)
	}
	refresh := Cand{IsRefresh: true, Seq: ^uint64(0)}
	crit := Cand{Critical: true, Seq: 5}
	hit := Cand{Hit: true, Seq: 7}
	plain := Cand{Seq: 1}

	if better, _ := s.Better(refresh, crit); better {
		t.Error("refresh must yield to a critical request placed above it")
	}
	if better, _ := s.Better(refresh, hit); better {
		t.Error("refresh must yield to a row-hit placed above it")
	}
	better, by := s.Better(refresh, plain)
	if !better {
		t.Error("refresh must beat a plain request below it in the stack")
	}
	if s.DeciderName(by) != "refresh" {
		t.Errorf("decider = %s, want refresh", s.DeciderName(by))
	}
	// Stacks without the rule never prefer the pseudo-candidate: its Seq
	// is the maximum, so even the FCFS fallback rejects it.
	plainStack := MustParse("rules:rowhit,fcfs")
	if better, _ := plainStack.Better(refresh, plain); better {
		t.Error("a stack without the refresh rule preferred the pseudo-candidate")
	}
}
