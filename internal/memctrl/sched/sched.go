// Package sched is the memory controller's scheduling kernel: a small
// vocabulary of composable priority rules and an ordered rule stack that
// compares schedulable requests.
//
// The paper's contribution is literally a priority ordering (Critical >
// Row-hit > Urgent > Rank > FCFS, §5–6), so every scheduling policy is
// expressed here as a declarative stack of rules rather than a monolithic
// comparator: plain FR-FCFS is `rowhit,fcfs`, the demand-first baseline is
// `demandfirst,rowhit,fcfs`, Adaptive Prefetch Scheduling is
// `critical,rowhit,urgent,fcfs`, and §6.5's ranking variant inserts `rank`
// before `fcfs`. Custom stacks parse from a `rules:` string
// (e.g. "rules:critical,rowhit,urgent,fcfs"), which makes §6-style
// priority-order ablations a configuration grid instead of new code.
//
// The package is deliberately free of controller internals: rules compare
// Cand values whose fields (row-hit status, criticality, urgency, rank)
// the controller derives from its indexes before arbitration.
package sched

import (
	"fmt"
	"sort"
	"strings"
)

// Cand is one schedulable request's priority inputs, precomputed by the
// controller so each rule is a pure field comparison.
type Cand struct {
	Seq      uint64 // admission order, the universal FCFS tiebreak
	Rank     int    // per-core shortest-job rank (higher schedules first)
	Core     int
	Pref     bool // currently a prefetch (promoted prefetches are demands)
	Hit      bool // request targets its bank's open row
	Critical bool // demand, or prefetch of an accurate core (rule 1)
	Urgent   bool // demand of a core whose prefetching is inaccurate (rule 3)

	// IsRefresh marks the pseudo-candidate the controller synthesizes for a
	// bank with a due refresh when the stack contains the "refresh" rule.
	// Every other field is zero, so rules ahead of "refresh" in the stack
	// define exactly which request classes a due refresh yields to.
	IsRefresh bool
}

// Rule is one priority comparator in a stack. Compare returns a positive
// value when a outranks b, a negative value when b outranks a, and 0 when
// the rule has no opinion (the next rule in the stack decides).
type Rule interface {
	Name() string
	Compare(a, b Cand) int
}

// boolCmp orders true before false.
func boolCmp(a, b bool) int {
	switch {
	case a == b:
		return 0
	case a:
		return 1
	default:
		return -1
	}
}

// criticalRule is priority rule 1: critical requests (demands, and
// prefetches of cores whose measured accuracy promoted them) first.
type criticalRule struct{}

func (criticalRule) Name() string          { return "critical" }
func (criticalRule) Compare(a, b Cand) int { return boolCmp(a.Critical, b.Critical) }

// rowHitRule is priority rule 2: row-buffer hits first (the FR of FR-FCFS).
type rowHitRule struct{}

func (rowHitRule) Name() string          { return "rowhit" }
func (rowHitRule) Compare(a, b Cand) int { return boolCmp(a.Hit, b.Hit) }

// urgentRule is priority rule 3: demands of cores with inaccurate
// prefetching outrank requests of equal criticality and row-hit status.
type urgentRule struct{}

func (urgentRule) Name() string          { return "urgent" }
func (urgentRule) Compare(a, b Cand) int { return boolCmp(a.Urgent, b.Urgent) }

// demandFirstRule is the rigid demand-first class split: any demand
// outranks any prefetch.
type demandFirstRule struct{}

func (demandFirstRule) Name() string          { return "demandfirst" }
func (demandFirstRule) Compare(a, b Cand) int { return boolCmp(!a.Pref, !b.Pref) }

// prefetchFirstRule is the footnote-2 strawman: prefetches first.
type prefetchFirstRule struct{}

func (prefetchFirstRule) Name() string          { return "prefetchfirst" }
func (prefetchFirstRule) Compare(a, b Cand) int { return boolCmp(a.Pref, b.Pref) }

// refreshRule arbitrates a due refresh against waiting requests: the
// refresh pseudo-candidate outranks any request once no rule ahead of it
// in the stack objects. Placing the rule after critical/rowhit, say,
// yields the paper-style "refresh when the bank has no urgent work"
// policy; stacks without the rule never see a refresh candidate (the
// engine then refreshes only idle banks and at forced deadlines).
type refreshRule struct{}

func (refreshRule) Name() string          { return "refresh" }
func (refreshRule) Compare(a, b Cand) int { return boolCmp(a.IsRefresh, b.IsRefresh) }

// rankRule is the §6.5 shortest-job ranking stage: among critical
// requests, cores with fewer outstanding critical requests first. A
// non-critical request competes with rank 0, matching the paper's rule
// table (ranking applies to critical requests only).
type rankRule struct{}

func (rankRule) Name() string { return "rank" }
func (rankRule) Compare(a, b Cand) int {
	ra, rb := 0, 0
	if a.Critical {
		ra = a.Rank
	}
	if b.Critical {
		rb = b.Rank
	}
	switch {
	case ra == rb:
		return 0
	case ra > rb:
		return 1
	default:
		return -1
	}
}

// fcfsRule is the final oldest-first tiebreak. Sequence numbers are unique
// per controller, so this rule is always decisive.
type fcfsRule struct{}

func (fcfsRule) Name() string { return "fcfs" }
func (fcfsRule) Compare(a, b Cand) int {
	switch {
	case a.Seq == b.Seq:
		return 0
	case a.Seq < b.Seq:
		return 1
	default:
		return -1
	}
}

// ruleByName is the rule vocabulary Parse accepts.
var ruleByName = map[string]Rule{
	"critical":      criticalRule{},
	"rowhit":        rowHitRule{},
	"urgent":        urgentRule{},
	"demandfirst":   demandFirstRule{},
	"prefetchfirst": prefetchFirstRule{},
	"refresh":       refreshRule{},
	"rank":          rankRule{},
	"fcfs":          fcfsRule{},
}

// RuleNames returns the accepted rule vocabulary, sorted.
func RuleNames() []string {
	out := make([]string, 0, len(ruleByName))
	for n := range ruleByName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Prefix introduces a custom rule stack in every policy surface
// (sim config, sweep specs, the -policy flag): "rules:critical,rowhit,fcfs".
const Prefix = "rules:"

// aliases maps the legacy policy names onto their canonical rule lists
// (DESIGN.md maps each onto the paper's §5.1/§6.5 priority tables).
var aliases = map[string]string{
	"demand-pref-equal": "rowhit,fcfs",
	"equal":             "rowhit,fcfs",
	"demand-first":      "demandfirst,rowhit,fcfs",
	"prefetch-first":    "prefetchfirst,rowhit,fcfs",
	"aps":               "critical,rowhit,urgent,fcfs",
	"aps-rank":          "critical,rowhit,urgent,rank,fcfs",
}

// Stack is an ordered chain of priority rules; earlier rules dominate.
// The zero Stack is invalid — build one with Parse or MustParse.
type Stack struct {
	spec  string // canonical "rules:..." form
	rules []Rule
}

// Parse builds a Stack from a policy string: either a legacy alias
// (demand-pref-equal, equal, demand-first, prefetch-first, aps, aps-rank)
// or an explicit "rules:" list such as "rules:critical,rowhit,urgent,fcfs".
// Unknown names, empty lists, duplicate rules and rules listed after the
// always-decisive fcfs are rejected.
func Parse(policy string) (Stack, error) {
	list, ok := aliases[policy]
	if !ok {
		if !strings.HasPrefix(policy, Prefix) {
			return Stack{}, fmt.Errorf(
				"sched: unknown policy %q (aliases: %s; or %s<list> over %s)",
				policy, strings.Join(AliasNames(), ", "), Prefix, strings.Join(RuleNames(), ", "))
		}
		list = strings.TrimPrefix(policy, Prefix)
	}
	parts := strings.Split(list, ",")
	s := Stack{rules: make([]Rule, 0, len(parts))}
	seen := map[string]bool{}
	for _, p := range parts {
		name := strings.TrimSpace(p)
		if name == "" {
			return Stack{}, fmt.Errorf("sched: empty rule name in %q", policy)
		}
		r, ok := ruleByName[name]
		if !ok {
			return Stack{}, fmt.Errorf("sched: unknown rule %q (known: %s)", name, strings.Join(RuleNames(), ", "))
		}
		if seen[name] {
			return Stack{}, fmt.Errorf("sched: duplicate rule %q in %q", name, policy)
		}
		if seen["fcfs"] {
			return Stack{}, fmt.Errorf("sched: rule %q is unreachable after fcfs in %q", name, policy)
		}
		seen[name] = true
		s.rules = append(s.rules, r)
	}
	if len(s.rules) == 0 {
		return Stack{}, fmt.Errorf("sched: empty rule stack %q", policy)
	}
	names := make([]string, len(s.rules))
	for i, r := range s.rules {
		names[i] = r.Name()
	}
	s.spec = Prefix + strings.Join(names, ",")
	return s, nil
}

// MustParse is Parse for statically-known policies; it panics on error.
func MustParse(policy string) Stack {
	s, err := Parse(policy)
	if err != nil {
		panic(err)
	}
	return s
}

// AliasNames returns the accepted legacy policy aliases, sorted.
func AliasNames() []string {
	out := make([]string, 0, len(aliases))
	for n := range aliases {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// String returns the canonical "rules:..." spelling of the stack.
func (s Stack) String() string { return s.spec }

// Rules returns the chain in priority order. Callers must not mutate it.
func (s Stack) Rules() []Rule { return s.rules }

// Uses reports whether the stack contains the named rule; the controller
// consults it to skip maintaining inputs no rule reads.
func (s Stack) Uses(name string) bool {
	for _, r := range s.rules {
		if r.Name() == name {
			return true
		}
	}
	return false
}

// ImplicitFCFS is the decider index Better returns when no rule in the
// stack had an opinion and the admission-order tiebreak decided.
const ImplicitFCFS = -1

// Better reports whether a should be scheduled before b, and which rule
// decided: the index into Rules, or ImplicitFCFS for the trailing
// admission-order tiebreak every stack falls back to. Sequence numbers are
// unique, so the result is a strict total order regardless of scan order.
func (s Stack) Better(a, b Cand) (better bool, decider int) {
	for i, r := range s.rules {
		if d := r.Compare(a, b); d != 0 {
			return d > 0, i
		}
	}
	return a.Seq < b.Seq, ImplicitFCFS
}

// DeciderName names a decider index returned by Better.
func (s Stack) DeciderName(i int) string {
	if i >= 0 && i < len(s.rules) {
		return s.rules[i].Name()
	}
	return "fcfs"
}
