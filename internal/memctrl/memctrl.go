// Package memctrl implements the memory request buffer and the DRAM
// scheduling policies the paper studies: the rigid demand-prefetch-equal
// (plain FR-FCFS), demand-first and prefetch-first policies, and the
// adaptive APS / APS+ranking policies that, together with adaptive
// prefetch dropping, form the Prefetch-Aware DRAM Controller.
//
// Scheduling itself is delegated to the composable rule kernel in
// internal/memctrl/sched: every policy — the legacy enum values and
// arbitrary "rules:" stacks — is an ordered chain of small priority rules
// arbitrating per-bank request buckets. The controller maintains the
// rules' inputs incrementally (per-(bank,row) waiting counts for the
// closed-row keep-open decision, per-core outstanding-request counts for
// the §6.5 shortest-job ranking), so a scheduling decision costs a scan
// of the ready banks' buckets rather than the whole buffer, and the hot
// path allocates nothing in steady state.
package memctrl

import (
	"fmt"

	"padc/internal/dram"
	"padc/internal/dram/refresh"
	"padc/internal/memctrl/sched"
	"padc/internal/telemetry"
	"padc/internal/telemetry/flight"
)

// Policy selects the scheduling priority order. The enum values are the
// paper's named policies, kept as aliases for the rule stacks they expand
// to (see Stack); custom orderings come in through NewStack / sim.Config's
// Rules string instead of new enum values.
type Policy int

const (
	// DemandPrefEqual is plain FR-FCFS: row-hit first, then oldest first,
	// with no demand/prefetch distinction.
	DemandPrefEqual Policy = iota
	// DemandFirst services all demands to a bank before any prefetch.
	DemandFirst
	// PrefetchFirst always prioritizes prefetches (the paper's footnote 2
	// strawman; uniformly worst).
	PrefetchFirst
	// APS is Adaptive Prefetch Scheduling (Rule 1): Critical > Row-hit >
	// Urgent > FCFS, with criticality and urgency derived from each core's
	// measured prefetch accuracy.
	APS
	// APSRank is APS with the shortest-job-first ranking stage of §6.5
	// inserted before FCFS (Rule 2).
	APSRank
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case DemandPrefEqual:
		return "demand-pref-equal"
	case DemandFirst:
		return "demand-first"
	case PrefetchFirst:
		return "prefetch-first"
	case APS:
		return "aps"
	case APSRank:
		return "aps-rank"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Stack returns the rule stack the legacy policy name aliases.
func (p Policy) Stack() sched.Stack { return sched.MustParse(p.String()) }

// ResolveStack maps the configuration surface onto a scheduling stack:
// rules, when non-empty, is parsed (legacy aliases or a "rules:" list) and
// wins; otherwise the enum policy's canonical stack is used.
func ResolveStack(p Policy, rules string) (sched.Stack, error) {
	if rules != "" {
		return sched.Parse(rules)
	}
	return p.Stack(), nil
}

// Request is one entry of the memory request buffer.
type Request struct {
	Core     int
	Line     uint64
	Addr     dram.Address
	Prefetch bool // currently a prefetch (false for demands and promoted prefetches)
	WasPref  bool // originated as a prefetch (even if later promoted)
	Runahead bool
	Arrival  uint64
	seq      uint64 // FCFS tiebreak

	Inflight   bool
	FinishAt   uint64
	IssueHit   bool // the DRAM access was a row hit
	RowState   dram.RowState
	ServiceAt  uint64
	PromotedAt uint64 // cycle a demand promoted this prefetch (0 = never)
}

// Age returns how long the request has been buffered. It clamps to 0 when
// now precedes the arrival cycle, so callers aging a request concurrently
// with (or before) its admission cannot underflow into a huge age.
func (r *Request) Age(now uint64) uint64 {
	if now < r.Arrival {
		return 0
	}
	return now - r.Arrival
}

// CoreState provides the per-core adaptive inputs the APS policies use;
// the PADC accuracy meter implements it.
type CoreState interface {
	// PrefetchCritical reports whether the core's prefetches are currently
	// promoted to demand priority (accuracy >= promotion threshold).
	PrefetchCritical(core int) bool
	// UrgencyEnabled gates priority rule 3 (for the §6.3.4 ablation).
	UrgencyEnabled() bool
}

// rowKey indexes the per-(bank,row) waiting count.
type rowKey struct {
	bank int
	row  uint64
}

// Controller is one memory controller: a bounded request buffer in front
// of one DRAM channel, scheduling one request per DRAM cycle per ready
// bank. Waiting requests live in per-bank buckets; the scheduling indexes
// (row waiting counts, per-core outstanding counts) are maintained
// incrementally on enqueue/promote/issue/complete/drop.
type Controller struct {
	policy   Policy // legacy label; PolicyCustom for explicit rule stacks
	stack    sched.Stack
	channel  *dram.Channel
	state    CoreState
	capacity int
	nextSeq  uint64

	// Which Cand inputs the stack actually reads; unset inputs are
	// neither computed per candidate nor maintained per tick.
	useCrit, useUrgent, useRank bool

	// refresh is the optional maintenance engine (nil when refresh is
	// disabled); useRefresh records whether the stack contains the
	// "refresh" rule, letting due refreshes contend with waiting requests
	// in per-bank arbitration rather than waiting for idle banks or the
	// forced deadline.
	refresh    *refresh.Engine
	useRefresh bool

	banks    [][]*Request // waiting requests bucketed by bank
	pending  int          // total waiting requests across buckets
	inflight []*Request
	done     []*Request // reusable completion buffer returned by Tick

	// rowWait counts waiting requests per (bank, row); entries are removed
	// when they reach zero. It makes the closed-row keep-open decision
	// ("is more work queued for this row?") O(1) per issue.
	rowWait map[rowKey]int

	// Per-core outstanding (waiting + in-flight) request counts by class,
	// sized lazily to the largest core id seen. Together with the per-tick
	// criticality flags they make the §6.5 ranking O(cores), replacing the
	// per-tick full-buffer scan.
	demandCnt []int
	prefCnt   []int

	// Per-tick scratch, reused across ticks to keep Tick allocation-free.
	critFlags []bool
	urgFlags  []bool
	rankBuf   []int

	// ruleWins counts scheduling decisions by the rule that settled them:
	// index i is the stack's i-th rule, the last slot the implicit
	// admission-order tiebreak. Only contested arbitrations (bucket held
	// more than one candidate) are counted.
	ruleWins []uint64

	tel   *telemetry.Telemetry // nil unless Instrument was called
	telID int16                // controller index in event records

	// flight is the optional bank-state flight recorder (nil when off);
	// flightCh is this controller's channel index in its geometry.
	flight   *flight.Recorder
	flightCh int

	// linkCycles is the topology-supplied round-trip wire delay to this
	// controller's memory domain, added to every request's completion time
	// after DRAM service. It occupies neither the bank nor the data bus —
	// the request is on the link, not in the DRAM — so scheduling state is
	// untouched; zero (the flat topology) leaves completion times exactly
	// as the channel computed them.
	linkCycles uint64

	// Stats.
	Enqueued    uint64
	RejectsFull uint64
	Serviced    uint64
	Dropped     uint64
}

// PolicyCustom is the Policy label reported by controllers built from an
// explicit rule stack rather than a legacy enum value.
const PolicyCustom Policy = -1

// New builds a controller over channel with the given buffer capacity,
// running the named legacy policy's rule stack. state may be nil for
// rigid policies.
func New(policy Policy, channel *dram.Channel, capacity int, state CoreState) *Controller {
	c := NewStack(policy.Stack(), channel, capacity, state)
	c.policy = policy
	return c
}

// NewStack builds a controller scheduling with an explicit rule stack
// (sched.Parse accepts legacy aliases and "rules:" lists). state may be
// nil when no rule in the stack consults core accuracy.
func NewStack(stack sched.Stack, channel *dram.Channel, capacity int, state CoreState) *Controller {
	c := &Controller{
		policy:     PolicyCustom,
		stack:      stack,
		channel:    channel,
		capacity:   capacity,
		state:      state,
		useCrit:    stack.Uses("critical") || stack.Uses("rank"),
		useUrgent:  stack.Uses("urgent"),
		useRank:    stack.Uses("rank"),
		useRefresh: stack.Uses("refresh"),
		banks:      make([][]*Request, len(channel.Banks)),
		rowWait:    make(map[rowKey]int),
		ruleWins:   make([]uint64, len(stack.Rules())+1),
	}
	return c
}

// SetLinkLatency sets the extra round-trip cycles between this controller
// and its cores (a far pooled-memory tier behind a link). Call once after
// construction, before the first Tick.
func (c *Controller) SetLinkLatency(cycles uint64) { c.linkCycles = cycles }

// LinkLatency returns the configured link delay.
func (c *Controller) LinkLatency() uint64 { return c.linkCycles }

// Instrument registers this controller's (and its channel's) metrics into
// tel under "memctrl<id>/..." and "dram<id>/..." names and enables event
// emission. Call once after construction; a nil tel is a no-op, keeping
// the uninstrumented hot path free of telemetry work beyond one pointer
// compare.
func (c *Controller) Instrument(tel *telemetry.Telemetry, id int) {
	if tel == nil {
		return
	}
	c.tel, c.telID = tel, int16(id)
	pre := fmt.Sprintf("memctrl%d", id)
	tel.CounterFunc(pre+"/enqueued", func() uint64 { return c.Enqueued })
	tel.CounterFunc(pre+"/serviced", func() uint64 { return c.Serviced })
	tel.CounterFunc(pre+"/drops", func() uint64 { return c.Dropped })
	tel.CounterFunc(pre+"/rejects_full", func() uint64 { return c.RejectsFull })
	tel.GaugeFunc(pre+"/occupancy", func() float64 { return float64(c.Occupancy()) })
	// Per-rule "decision won by" counters: how often each rule of the
	// stack settled a contested arbitration.
	for i := range c.ruleWins {
		i := i
		name := c.stack.DeciderName(sched.ImplicitFCFS)
		if i < len(c.stack.Rules()) {
			name = c.stack.DeciderName(i)
		} else if c.stack.Uses("fcfs") {
			continue // explicit fcfs already registered; implicit slot stays unused
		}
		tel.CounterFunc(fmt.Sprintf("%s/rule_wins/%s", pre, name), func() uint64 { return c.ruleWins[i] })
	}

	ch := c.channel
	dpre := fmt.Sprintf("dram%d", id)
	tel.CounterFunc(dpre+"/row_hits", func() uint64 { h, _, _ := ch.Counts(); return h })
	tel.CounterFunc(dpre+"/row_closed", func() uint64 { _, cl, _ := ch.Counts(); return cl })
	tel.CounterFunc(dpre+"/row_conflicts", func() uint64 { _, _, cf := ch.Counts(); return cf })
	tel.CounterFunc(dpre+"/activations", func() uint64 { return ch.Activations })
	tel.CounterFunc(dpre+"/precharges", func() uint64 { return ch.Precharges })
	tel.CounterFunc(dpre+"/bus_busy_cycles", func() uint64 { return ch.BusBusyCycles })
	if eng := c.refresh; eng != nil {
		tel.CounterFunc(dpre+"/refreshes_issued", func() uint64 { return eng.Issued })
		tel.CounterFunc(dpre+"/refreshes_postponed", func() uint64 { return eng.Postponed })
		tel.CounterFunc(dpre+"/refreshes_pulled_in", func() uint64 { return eng.PulledIn })
		tel.CounterFunc(dpre+"/refreshes_forced", func() uint64 { return eng.Forced })
		tel.CounterFunc(dpre+"/refresh_blocked_cycles", func() uint64 { return eng.BlockedCycles })
	}
}

// flightObserver adapts the DRAM channel's transition hook onto the
// flight recorder, pinning the channel index and translating the row
// state into the recorder's import-free Outcome vocabulary.
type flightObserver struct {
	rec *flight.Recorder
	ch  int
}

func (o flightObserver) BankAccess(bank int, state dram.RowState, opens, closes int) {
	out := flight.OutcomeHit
	switch state {
	case dram.RowClosed:
		out = flight.OutcomeClosed
	case dram.RowConflict:
		out = flight.OutcomeConflict
	}
	o.rec.NoteAccess(o.ch, bank, out, opens, closes)
}

func (o flightObserver) BankRefresh(bank int, closedRow bool) {
	o.rec.NoteRefresh(o.ch, bank, closedRow)
}

// AttachFlight connects the bank-state flight recorder: the DRAM channel
// reports row-buffer outcomes and open/close transitions through an
// observer, the controller adds demand/prefetch issue classes and
// refresh-blocked slots, and the recorder samples this controller's
// cumulative rule-win counters at epoch rotation for per-epoch
// attribution. ch is this controller's index in the recorder's geometry
// (the recorder must already be Configured). A nil recorder is a no-op.
func (c *Controller) AttachFlight(rec *flight.Recorder, ch int) {
	if rec == nil {
		return
	}
	c.flight, c.flightCh = rec, ch
	c.channel.Observe(flightObserver{rec: rec, ch: ch})
	names, _ := c.RuleWins()
	rec.AttachRules(ch, names, func() []uint64 {
		_, wins := c.RuleWins()
		return wins
	})
}

// AttachRefresh puts the controller in charge of scheduling eng's refresh
// obligations against its request traffic. Call before Instrument so the
// refresh counters register; a nil engine (or one with Mode Off) leaves
// refresh disabled. The engine's bank count must match the channel's in
// per-bank mode.
func (c *Controller) AttachRefresh(eng *refresh.Engine) {
	if eng == nil || !eng.Config().Enabled() {
		return
	}
	c.refresh = eng
}

// Refresh returns the attached maintenance engine, nil when refresh is
// disabled.
func (c *Controller) Refresh() *refresh.Engine { return c.refresh }

// NeedsIdleTick reports whether the controller must be ticked even with an
// empty request buffer — true once a refresh engine is attached, since
// obligations accrue and idle banks can pull refreshes in with no request
// traffic at all.
func (c *Controller) NeedsIdleTick() bool { return c.refresh != nil }

// Policy returns the legacy policy label this controller was built from,
// or PolicyCustom for explicit rule stacks.
func (c *Controller) Policy() Policy { return c.policy }

// Stack returns the scheduling rule stack in force.
func (c *Controller) Stack() sched.Stack { return c.stack }

// RuleWins reports the per-rule decision counters: for each rule name in
// stack order (plus a trailing implicit "fcfs" when the stack lacks an
// explicit one), how many contested arbitrations that rule settled.
func (c *Controller) RuleWins() (names []string, wins []uint64) {
	for i, r := range c.stack.Rules() {
		names = append(names, r.Name())
		wins = append(wins, c.ruleWins[i])
	}
	if !c.stack.Uses("fcfs") {
		names = append(names, "fcfs")
		wins = append(wins, c.ruleWins[len(c.ruleWins)-1])
	}
	return names, wins
}

// Occupancy returns how many buffer entries are in use.
func (c *Controller) Occupancy() int { return c.pending + len(c.inflight) }

// Full reports whether the request buffer has no free entry.
func (c *Controller) Full() bool { return c.Occupancy() >= c.capacity }

// noteAdmit updates the per-core outstanding counts for a request
// entering the controller (delta +1) or leaving it (delta -1), keyed by
// its current class — promotions move a count via MatchPrefetch instead.
func (c *Controller) noteAdmit(r *Request, delta int) {
	if r.Core >= len(c.demandCnt) {
		grown := make([]int, r.Core+1)
		copy(grown, c.demandCnt)
		c.demandCnt = grown
		grownP := make([]int, r.Core+1)
		copy(grownP, c.prefCnt)
		c.prefCnt = grownP
	}
	if r.Prefetch {
		c.prefCnt[r.Core] += delta
	} else {
		c.demandCnt[r.Core] += delta
	}
}

// Enqueue admits a request. It returns false (and drops the request) when
// the buffer is full; callers treat that as a stall for demands and a
// cancelled issue for prefetches.
func (c *Controller) Enqueue(r *Request) bool {
	if c.Full() {
		c.RejectsFull++
		if c.tel != nil {
			c.tel.Emit(telemetry.Event{
				Cycle: r.Arrival, Kind: telemetry.EvReject, Pref: r.Prefetch,
				Core: int16(r.Core), Chan: c.telID, Bank: int16(r.Addr.Bank), Line: r.Line,
			})
		}
		return false
	}
	r.seq = c.nextSeq
	c.nextSeq++
	b := r.Addr.Bank
	c.banks[b] = append(c.banks[b], r)
	c.pending++
	c.rowWait[rowKey{b, r.Addr.Row}]++
	c.noteAdmit(r, +1)
	c.Enqueued++
	if c.tel != nil {
		c.tel.Emit(telemetry.Event{
			Cycle: r.Arrival, Kind: telemetry.EvEnqueue, Pref: r.Prefetch,
			Core: int16(r.Core), Chan: c.telID, Bank: int16(r.Addr.Bank), Line: r.Line,
		})
	}
	return true
}

// MatchPrefetch looks for a buffered (waiting or in-flight) prefetch from
// core for line and promotes it to demand criticality at cycle now,
// returning it; nil if absent. Per the paper's §4.1 a promoted prefetch
// counts as useful. The promotion cycle is stamped into the request so
// lifecycle tracing can report how long the prefetch ran speculatively.
func (c *Controller) MatchPrefetch(core int, line uint64, now uint64) *Request {
	promote := func(r *Request) {
		r.Prefetch = false
		r.PromotedAt = now
		// The request changes class while outstanding: move its count.
		c.prefCnt[r.Core]--
		c.demandCnt[r.Core]++
	}
	for _, bucket := range c.banks {
		for _, r := range bucket {
			if r.Core == core && r.Line == line && r.Prefetch {
				promote(r)
				return r
			}
		}
	}
	for _, r := range c.inflight {
		if r.Core == core && r.Line == line && r.Prefetch {
			promote(r)
			return r
		}
	}
	return nil
}

// critical implements priority rule 1 for one request given its core's
// per-tick prefetch-criticality flag.
func critical(r *Request, coreCrit bool) bool {
	return !r.Prefetch || coreCrit
}

// refreshFlags recomputes the per-core criticality/urgency flags the
// stack's rules read this tick. One CoreState call per core per tick
// replaces the per-comparison calls of the old monolithic comparator.
func (c *Controller) refreshFlags(ncores int) {
	if n := len(c.demandCnt); n > ncores {
		ncores = n
	}
	if cap(c.critFlags) < ncores {
		c.critFlags = make([]bool, ncores)
		c.urgFlags = make([]bool, ncores)
	}
	c.critFlags = c.critFlags[:ncores]
	c.urgFlags = c.urgFlags[:ncores]
	urgencyOn := c.useUrgent && c.state != nil && c.state.UrgencyEnabled()
	for core := 0; core < ncores; core++ {
		crit := c.state != nil && c.state.PrefetchCritical(core)
		c.critFlags[core] = crit
		c.urgFlags[core] = urgencyOn && !crit
	}
}

// refreshRanks recomputes the §6.5 shortest-job ranks from the
// incrementally-maintained per-core outstanding counts: cores with fewer
// critical (demand + critical-prefetch) requests rank higher.
func (c *Controller) refreshRanks(ncores int) {
	if n := len(c.demandCnt); n > ncores {
		ncores = n
	}
	if cap(c.rankBuf) < ncores {
		c.rankBuf = make([]int, ncores)
	}
	c.rankBuf = c.rankBuf[:ncores]
	for core := 0; core < ncores; core++ {
		n := 0
		if core < len(c.demandCnt) {
			n = c.demandCnt[core]
			if c.critFlags[core] {
				n += c.prefCnt[core]
			}
		}
		c.rankBuf[core] = -n // fewer outstanding critical requests => larger rank
	}
}

// cand assembles the rule inputs for one waiting request.
func (c *Controller) cand(r *Request, bank *dram.Bank) sched.Cand {
	cd := sched.Cand{
		Seq:  r.seq,
		Core: r.Core,
		Pref: r.Prefetch,
		Hit:  bank.State(r.Addr.Row) == dram.RowHit,
	}
	if c.useCrit {
		cd.Critical = critical(r, c.critFlags[r.Core])
	}
	if c.useUrgent {
		cd.Urgent = !r.Prefetch && c.urgFlags[r.Core]
	}
	if c.useRank {
		cd.Rank = c.rankBuf[r.Core]
	}
	return cd
}

// Tick makes the cycle's scheduling decisions and returns any requests
// whose DRAM service completed by now; the returned slice is reused by
// the next Tick. Scheduling is per bank — banks precharge and activate in
// parallel, serializing only on the shared data bus — so each ready bank
// issues its own highest-priority waiting request, the arbitration
// FR-FCFS-class schedulers perform. Busy banks' buckets are skipped
// entirely. ncores sizes the per-core flag and rank scratch.
func (c *Controller) Tick(now uint64, ncores int) []*Request {
	// Harvest completions into the reusable buffer.
	done := c.done[:0]
	keep := c.inflight[:0]
	for _, r := range c.inflight {
		if r.FinishAt <= now {
			c.noteAdmit(r, -1) // leaves the controller
			done = append(done, r)
		} else {
			keep = append(keep, r)
		}
	}
	c.inflight = keep
	c.done = done
	if c.refresh != nil {
		c.refreshPass(now)
	}
	if c.pending == 0 {
		return done
	}

	if c.useCrit || c.useUrgent {
		c.refreshFlags(ncores)
	}
	if c.useRank {
		c.refreshRanks(ncores)
	}

	for b := range c.banks {
		bucket := c.banks[b]
		if len(bucket) == 0 {
			continue
		}
		if c.refresh != nil && c.refresh.Blocked(b, now) {
			// The bank is mid-refresh or past its forced deadline: requests
			// wait, and the wait is charged to the refresh engine.
			c.refresh.NoteBlocked()
			c.flight.NoteBlocked(c.flightCh, b)
			continue
		}
		if !c.channel.BankReady(b, now) {
			continue
		}
		bank := &c.channel.Banks[b]
		bestIdx := 0
		best := c.cand(bucket[0], bank)
		decider := -1 // uncontested unless a comparison happens
		for i := 1; i < len(bucket); i++ {
			cd := c.cand(bucket[i], bank)
			better, by := c.stack.Better(cd, best)
			if better {
				best, bestIdx = cd, i
			}
			decider = by
		}
		if decider != -1 || len(bucket) > 1 {
			if decider == sched.ImplicitFCFS {
				decider = len(c.ruleWins) - 1
			}
			c.ruleWins[decider]++
		}
		// With the "refresh" rule in the stack, a due refresh contends as a
		// pseudo-candidate against the bucket's best request: the rules
		// ahead of "refresh" decide which request classes it yields to.
		// Per-bank mode only — an all-bank refresh cannot be granted from
		// one bank's arbitration.
		if c.useRefresh && c.refresh != nil && c.refresh.Mode() == refresh.PerBank &&
			c.refresh.Due(b, now) {
			rc := sched.Cand{IsRefresh: true, Seq: ^uint64(0)}
			if better, by := c.stack.Better(rc, best); better {
				c.ruleWins[by]++
				c.startRefresh(b, now)
				continue
			}
		}
		c.issue(b, bestIdx, now)
	}
	return done
}

// NeverEvent is the NextEvent value meaning no internally-scheduled work:
// only a new Enqueue (which happens on an executed core cycle) can give
// the controller something to do.
const NeverEvent = ^uint64(0)

// NextEvent reports the earliest cycle > now at which Tick could change
// state: an in-flight access completing, a waiting request's bank coming
// free, a refresh obligation accruing, an in-progress refresh expiring,
// or a startable refresh's bank draining. It returns now+1 whenever the
// very next tick can already act — a ready bank with waiting work, or a
// refresh-blocked bank with waiting work (whose wait is charged per tick
// and therefore must not be skipped). Cycles in (now, NextEvent(now)) are
// guaranteed no-op ticks: skipping them changes no counter and no
// scheduling decision. The caller quantizes the result onto its tick
// grid and re-evaluates after every executed cycle.
func (c *Controller) NextEvent(now uint64) uint64 {
	next := NeverEvent
	for _, r := range c.inflight {
		if r.FinishAt < next {
			next = r.FinishAt
		}
	}
	for b := range c.banks {
		if len(c.banks[b]) == 0 {
			continue
		}
		if c.refresh != nil && c.refresh.Blocked(b, now) {
			return now + 1 // blocked-cycle accounting accrues every tick
		}
		if !c.channel.BankReady(b, now) {
			if bu := c.channel.Banks[b].BusyUntil; bu < next {
				next = bu
			}
			continue
		}
		return now + 1 // a ready bank with waiting work arbitrates next tick
	}
	if c.refresh != nil {
		if e := c.refreshNextEvent(now); e < next {
			next = e
		}
	}
	return next
}

// refreshNextEvent bounds the maintenance engine's next action: the next
// obligation accrual, the expiry of an in-progress refresh, and the cycle
// a currently-startable refresh would fire once its bank(s) drain. The
// fire conditions mirror refreshPass; when none holds, only the accrual
// and expiry deadlines (or an enqueue/completion, handled by the caller)
// can change that.
func (c *Controller) refreshNextEvent(now uint64) uint64 {
	eng := c.refresh
	next := eng.NextAccrual()
	idle := c.pending == 0 && len(c.inflight) == 0
	if eng.Mode() == refresh.AllBank {
		if eng.Refreshing(0, now) {
			if bu := eng.BusyUntil(0); bu < next {
				next = bu
			}
			return next
		}
		if eng.MustRefresh(0) || (idle && (eng.Due(0, now) || eng.CanPullIn(0))) {
			start := now + 1
			for b := range c.channel.Banks {
				if bu := c.channel.Banks[b].BusyUntil; bu > start {
					start = bu
				}
			}
			if start < next {
				next = start
			}
		}
		return next
	}
	for b := range c.channel.Banks {
		if eng.Refreshing(b, now) {
			if bu := eng.BusyUntil(b); bu < next {
				next = bu
			}
			continue
		}
		if eng.MustRefresh(b) || (len(c.banks[b]) == 0 && (eng.Due(b, now) || (idle && eng.CanPullIn(b)))) {
			start := now + 1
			if bu := c.channel.Banks[b].BusyUntil; bu > start {
				start = bu
			}
			if start < next {
				next = start
			}
		}
	}
	return next
}

// HasPrefetches reports whether any admitted request is still classed as
// a prefetch (waiting or in flight) — the only state the APD drop scan
// can act on, so its periodic boundary is skippable while this is false.
func (c *Controller) HasPrefetches() bool {
	for _, n := range c.prefCnt {
		if n > 0 {
			return true
		}
	}
	return false
}

// refreshPass runs the maintenance engine's per-tick duties before request
// arbitration: accrue obligations, fire forced refreshes whose postpone
// credit ran out, and opportunistically refresh idle banks — due refreshes
// when the bank's bucket is empty, early pull-ins (bounded by the credit
// window) when the whole controller is idle.
func (c *Controller) refreshPass(now uint64) {
	eng := c.refresh
	eng.Advance(now)
	idle := c.pending == 0 && len(c.inflight) == 0
	if eng.Mode() == refresh.AllBank {
		// One obligation covers the rank; it fires only when every bank is
		// ready. Engine.Blocked holds all banks once the deadline passes,
		// so in-flight accesses drain and the rank-wide gap opens.
		if eng.Refreshing(0, now) {
			return
		}
		for b := range c.channel.Banks {
			if !c.channel.BankReady(b, now) {
				return
			}
		}
		if eng.MustRefresh(0) || (idle && (eng.Due(0, now) || eng.CanPullIn(0))) {
			until := eng.Start(0, now)
			for b := range c.channel.Banks {
				c.channel.Refresh(b, until)
			}
			if c.tel != nil {
				c.tel.Emit(telemetry.Event{
					Cycle: now, Kind: telemetry.EvRefresh, A: until,
					Core: -1, Chan: c.telID, Bank: -1,
				})
			}
		}
		return
	}
	for b := range c.channel.Banks {
		if eng.Refreshing(b, now) || !c.channel.BankReady(b, now) {
			continue
		}
		switch {
		case eng.MustRefresh(b):
			// Forced deadline: the refresh preempts any waiting requests.
			c.startRefresh(b, now)
		case len(c.banks[b]) == 0 && (eng.Due(b, now) || (idle && eng.CanPullIn(b))):
			c.startRefresh(b, now)
		}
	}
}

// startRefresh issues a per-bank refresh to bank b, blocking it for tRFCpb.
func (c *Controller) startRefresh(b int, now uint64) {
	until := c.refresh.Start(b, now)
	c.channel.Refresh(b, until)
	if c.tel != nil {
		c.tel.Emit(telemetry.Event{
			Cycle: now, Kind: telemetry.EvRefresh, A: until,
			Core: -1, Chan: c.telID, Bank: int16(b),
		})
	}
}

// issue removes bucket[idx] from the waiting set and schedules it on the
// DRAM channel, consulting the row-wait index for the closed-row
// keep-open decision.
func (c *Controller) issue(b, idx int, now uint64) {
	bucket := c.banks[b]
	r := bucket[idx]
	last := len(bucket) - 1
	bucket[idx] = bucket[last]
	bucket[last] = nil
	c.banks[b] = bucket[:last]
	c.pending--

	keepOpen := c.moreRowWork(r) // before removing r's own count
	key := rowKey{b, r.Addr.Row}
	if n := c.rowWait[key] - 1; n <= 0 {
		delete(c.rowWait, key)
	} else {
		c.rowWait[key] = n
	}

	finish, state := c.channel.Issue(b, r.Addr.Row, now, keepOpen)
	finish += c.linkCycles
	r.Inflight = true
	r.FinishAt = finish
	r.RowState = state
	r.IssueHit = state == dram.RowHit
	r.ServiceAt = now
	c.inflight = append(c.inflight, r)
	c.Serviced++
	c.flight.NoteIssue(c.flightCh, b, r.Prefetch)
	if c.tel != nil {
		c.tel.Emit(telemetry.Event{
			Cycle: now, Kind: telemetry.EvIssue, Pref: r.Prefetch, A: finish,
			Core: int16(r.Core), Chan: c.telID, Bank: int16(b), Line: r.Line,
		})
		if state == dram.RowConflict {
			c.tel.Emit(telemetry.Event{
				Cycle: now, Kind: telemetry.EvRowConflict, Pref: r.Prefetch,
				Core: int16(r.Core), Chan: c.telID, Bank: int16(b), Line: r.Line,
			})
		}
	}
}

// moreRowWork reports whether another waiting request targets the same
// bank and row as r, via the incrementally-maintained row-wait index
// (consulted by the closed-row policy to decide whether to keep the row
// open). O(1), where the pre-index implementation scanned the buffer.
func (c *Controller) moreRowWork(r *Request) bool {
	return c.rowWait[rowKey{r.Addr.Bank, r.Addr.Row}] > 1
}

// DropExpired implements the buffer half of Adaptive Prefetch Dropping:
// waiting (never in-flight) prefetches older than their core's drop
// threshold are removed and returned so the caller can release MSHR
// entries and account statistics.
func (c *Controller) DropExpired(now uint64, threshold func(core int) uint64) []*Request {
	var dropped []*Request
	for b := range c.banks {
		bucket := c.banks[b]
		keep := bucket[:0]
		for _, r := range bucket {
			if r.Prefetch && r.Age(now) > threshold(r.Core) {
				dropped = append(dropped, r)
				c.pending--
				c.prefCnt[r.Core]--
				key := rowKey{b, r.Addr.Row}
				if n := c.rowWait[key] - 1; n <= 0 {
					delete(c.rowWait, key)
				} else {
					c.rowWait[key] = n
				}
				if c.tel != nil {
					c.tel.Emit(telemetry.Event{
						Cycle: now, Kind: telemetry.EvDrop, Pref: true, A: r.Age(now),
						Core: int16(r.Core), Chan: c.telID, Bank: int16(r.Addr.Bank), Line: r.Line,
					})
				}
				continue
			}
			keep = append(keep, r)
		}
		// Zero the tail so dropped requests do not linger in the backing array.
		for i := len(keep); i < len(bucket); i++ {
			bucket[i] = nil
		}
		c.banks[b] = keep
	}
	c.Dropped += uint64(len(dropped))
	return dropped
}

// Channel exposes the controller's DRAM channel (stats, tests).
func (c *Controller) Channel() *dram.Channel { return c.channel }

// Pending returns the number of waiting (not yet issued) requests.
func (c *Controller) Pending() int { return c.pending }
