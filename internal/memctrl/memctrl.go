// Package memctrl implements the memory request buffer and the DRAM
// scheduling policies the paper studies: the rigid demand-prefetch-equal
// (plain FR-FCFS), demand-first and prefetch-first policies, and the
// adaptive APS / APS+ranking policies that, together with adaptive
// prefetch dropping, form the Prefetch-Aware DRAM Controller.
package memctrl

import (
	"fmt"

	"padc/internal/dram"
	"padc/internal/telemetry"
)

// Policy selects the scheduling priority order.
type Policy int

const (
	// DemandPrefEqual is plain FR-FCFS: row-hit first, then oldest first,
	// with no demand/prefetch distinction.
	DemandPrefEqual Policy = iota
	// DemandFirst services all demands to a bank before any prefetch.
	DemandFirst
	// PrefetchFirst always prioritizes prefetches (the paper's footnote 2
	// strawman; uniformly worst).
	PrefetchFirst
	// APS is Adaptive Prefetch Scheduling (Rule 1): Critical > Row-hit >
	// Urgent > FCFS, with criticality and urgency derived from each core's
	// measured prefetch accuracy.
	APS
	// APSRank is APS with the shortest-job-first ranking stage of §6.5
	// inserted before FCFS (Rule 2).
	APSRank
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case DemandPrefEqual:
		return "demand-pref-equal"
	case DemandFirst:
		return "demand-first"
	case PrefetchFirst:
		return "prefetch-first"
	case APS:
		return "aps"
	case APSRank:
		return "aps-rank"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Request is one entry of the memory request buffer.
type Request struct {
	Core     int
	Line     uint64
	Addr     dram.Address
	Prefetch bool // currently a prefetch (false for demands and promoted prefetches)
	WasPref  bool // originated as a prefetch (even if later promoted)
	Runahead bool
	Arrival  uint64
	seq      uint64 // FCFS tiebreak

	Inflight   bool
	FinishAt   uint64
	IssueHit   bool // the DRAM access was a row hit
	RowState   dram.RowState
	ServiceAt  uint64
	PromotedAt uint64 // cycle a demand promoted this prefetch (0 = never)
}

// Age returns how long the request has been buffered. It clamps to 0 when
// now precedes the arrival cycle, so callers aging a request concurrently
// with (or before) its admission cannot underflow into a huge age.
func (r *Request) Age(now uint64) uint64 {
	if now < r.Arrival {
		return 0
	}
	return now - r.Arrival
}

// CoreState provides the per-core adaptive inputs the APS policies use;
// the PADC accuracy meter implements it.
type CoreState interface {
	// PrefetchCritical reports whether the core's prefetches are currently
	// promoted to demand priority (accuracy >= promotion threshold).
	PrefetchCritical(core int) bool
	// UrgencyEnabled gates priority rule 3 (for the §6.3.4 ablation).
	UrgencyEnabled() bool
}

// Controller is one memory controller: a bounded request buffer in front
// of one DRAM channel, scheduling one request per DRAM cycle.
type Controller struct {
	policy   Policy
	channel  *dram.Channel
	state    CoreState
	capacity int
	nextSeq  uint64

	queue       []*Request
	inflight    []*Request
	bestPerBank []int // scratch for Tick's per-bank arbitration

	tel   *telemetry.Telemetry // nil unless Instrument was called
	telID int16                // controller index in event records

	// Stats.
	Enqueued    uint64
	RejectsFull uint64
	Serviced    uint64
	Dropped     uint64
}

// New builds a controller over channel with the given buffer capacity.
// state may be nil for rigid policies.
func New(policy Policy, channel *dram.Channel, capacity int, state CoreState) *Controller {
	return &Controller{policy: policy, channel: channel, capacity: capacity, state: state}
}

// Instrument registers this controller's (and its channel's) metrics into
// tel under "memctrl<id>/..." and "dram<id>/..." names and enables event
// emission. Call once after construction; a nil tel is a no-op, keeping
// the uninstrumented hot path free of telemetry work beyond one pointer
// compare.
func (c *Controller) Instrument(tel *telemetry.Telemetry, id int) {
	if tel == nil {
		return
	}
	c.tel, c.telID = tel, int16(id)
	pre := fmt.Sprintf("memctrl%d", id)
	tel.CounterFunc(pre+"/enqueued", func() uint64 { return c.Enqueued })
	tel.CounterFunc(pre+"/serviced", func() uint64 { return c.Serviced })
	tel.CounterFunc(pre+"/drops", func() uint64 { return c.Dropped })
	tel.CounterFunc(pre+"/rejects_full", func() uint64 { return c.RejectsFull })
	tel.GaugeFunc(pre+"/occupancy", func() float64 { return float64(c.Occupancy()) })

	ch := c.channel
	dpre := fmt.Sprintf("dram%d", id)
	tel.CounterFunc(dpre+"/row_hits", func() uint64 { h, _, _ := ch.Counts(); return h })
	tel.CounterFunc(dpre+"/row_closed", func() uint64 { _, cl, _ := ch.Counts(); return cl })
	tel.CounterFunc(dpre+"/row_conflicts", func() uint64 { _, _, cf := ch.Counts(); return cf })
	tel.CounterFunc(dpre+"/activations", func() uint64 { return ch.Activations })
	tel.CounterFunc(dpre+"/precharges", func() uint64 { return ch.Precharges })
	tel.CounterFunc(dpre+"/bus_busy_cycles", func() uint64 { return ch.BusBusyCycles })
}

// Policy returns the scheduling policy in force.
func (c *Controller) Policy() Policy { return c.policy }

// Occupancy returns how many buffer entries are in use.
func (c *Controller) Occupancy() int { return len(c.queue) + len(c.inflight) }

// Full reports whether the request buffer has no free entry.
func (c *Controller) Full() bool { return c.Occupancy() >= c.capacity }

// Enqueue admits a request. It returns false (and drops the request) when
// the buffer is full; callers treat that as a stall for demands and a
// cancelled issue for prefetches.
func (c *Controller) Enqueue(r *Request) bool {
	if c.Full() {
		c.RejectsFull++
		if c.tel != nil {
			c.tel.Emit(telemetry.Event{
				Cycle: r.Arrival, Kind: telemetry.EvReject, Pref: r.Prefetch,
				Core: int16(r.Core), Chan: c.telID, Bank: int16(r.Addr.Bank), Line: r.Line,
			})
		}
		return false
	}
	r.seq = c.nextSeq
	c.nextSeq++
	c.queue = append(c.queue, r)
	c.Enqueued++
	if c.tel != nil {
		c.tel.Emit(telemetry.Event{
			Cycle: r.Arrival, Kind: telemetry.EvEnqueue, Pref: r.Prefetch,
			Core: int16(r.Core), Chan: c.telID, Bank: int16(r.Addr.Bank), Line: r.Line,
		})
	}
	return true
}

// MatchPrefetch looks for a buffered (waiting or in-flight) prefetch from
// core for line and promotes it to demand criticality at cycle now,
// returning it; nil if absent. Per the paper's §4.1 a promoted prefetch
// counts as useful. The promotion cycle is stamped into the request so
// lifecycle tracing can report how long the prefetch ran speculatively.
func (c *Controller) MatchPrefetch(core int, line uint64, now uint64) *Request {
	for _, r := range c.queue {
		if r.Core == core && r.Line == line && r.Prefetch {
			r.Prefetch = false
			r.PromotedAt = now
			return r
		}
	}
	for _, r := range c.inflight {
		if r.Core == core && r.Line == line && r.Prefetch {
			r.Prefetch = false
			r.PromotedAt = now
			return r
		}
	}
	return nil
}

// critical implements priority rule 1.
func (c *Controller) critical(r *Request) bool {
	if !r.Prefetch {
		return true
	}
	return c.state != nil && c.state.PrefetchCritical(r.Core)
}

// urgent implements priority rule 3: demands of cores whose prefetching is
// inaccurate outrank other requests of equal criticality and row-hit
// status.
func (c *Controller) urgent(r *Request) bool {
	if r.Prefetch || c.state == nil || !c.state.UrgencyEnabled() {
		return false
	}
	return !c.state.PrefetchCritical(r.Core)
}

// better reports whether a should be scheduled before b under the policy.
// rank holds the per-core rank values (higher = first) for APSRank.
func (c *Controller) better(a, b *Request, aHit, bHit bool, rank []int) bool {
	type cmp struct{ a, b bool }
	lex := func(terms ...cmp) bool {
		for _, t := range terms {
			if t.a != t.b {
				return t.a
			}
		}
		return a.seq < b.seq
	}
	switch c.policy {
	case DemandPrefEqual:
		return lex(cmp{aHit, bHit})
	case DemandFirst:
		return lex(cmp{!a.Prefetch, !b.Prefetch}, cmp{aHit, bHit})
	case PrefetchFirst:
		return lex(cmp{a.Prefetch, b.Prefetch}, cmp{aHit, bHit})
	case APS:
		return lex(cmp{c.critical(a), c.critical(b)}, cmp{aHit, bHit}, cmp{c.urgent(a), c.urgent(b)})
	case APSRank:
		ra, rb := 0, 0
		if c.critical(a) {
			ra = rank[a.Core]
		}
		if c.critical(b) {
			rb = rank[b.Core]
		}
		if c.critical(a) != c.critical(b) {
			return c.critical(a)
		}
		if aHit != bHit {
			return aHit
		}
		if ua, ub := c.urgent(a), c.urgent(b); ua != ub {
			return ua
		}
		if ra != rb {
			return ra > rb
		}
		return a.seq < b.seq
	default:
		return a.seq < b.seq
	}
}

// ranks computes the §6.5 shortest-job ranking: cores with fewer
// outstanding critical requests rank higher. The returned slice maps core
// id to a rank value where larger means schedule first.
func (c *Controller) ranks(ncores int) []int {
	counts := make([]int, ncores)
	for _, r := range c.queue {
		if c.critical(r) {
			counts[r.Core]++
		}
	}
	for _, r := range c.inflight {
		if c.critical(r) {
			counts[r.Core]++
		}
	}
	rank := make([]int, ncores)
	for i, n := range counts {
		rank[i] = -n // fewer critical requests => larger rank value
	}
	return rank
}

// Tick makes the cycle's scheduling decisions and returns any requests
// whose DRAM service completed by now. Scheduling is per bank — banks
// precharge and activate in parallel, serializing only on the shared data
// bus — so each ready bank issues its own highest-priority request, the
// arbitration FR-FCFS-class schedulers perform. ncores sizes the ranking
// pass.
func (c *Controller) Tick(now uint64, ncores int) []*Request {
	// Harvest completions.
	var done []*Request
	keep := c.inflight[:0]
	for _, r := range c.inflight {
		if r.FinishAt <= now {
			done = append(done, r)
		} else {
			keep = append(keep, r)
		}
	}
	c.inflight = keep
	if len(c.queue) == 0 {
		return done
	}

	var rank []int
	if c.policy == APSRank {
		rank = c.ranks(ncores)
	}

	// One pass: find each ready bank's best request.
	nbanks := len(c.channel.Banks)
	if cap(c.bestPerBank) < nbanks {
		c.bestPerBank = make([]int, nbanks)
	}
	best := c.bestPerBank[:nbanks]
	for i := range best {
		best[i] = -1
	}
	for i, r := range c.queue {
		b := r.Addr.Bank
		if !c.channel.BankReady(b, now) {
			continue
		}
		if best[b] < 0 {
			best[b] = i
			continue
		}
		o := c.queue[best[b]]
		rHit := c.channel.Banks[b].State(r.Addr.Row) == dram.RowHit
		oHit := c.channel.Banks[b].State(o.Addr.Row) == dram.RowHit
		if c.better(r, o, rHit, oHit, rank) {
			best[b] = i
		}
	}

	issued := 0
	for b := 0; b < nbanks; b++ {
		if best[b] < 0 {
			continue
		}
		r := c.queue[best[b]]
		keepOpen := c.moreRowWork(r, best[b])
		finish, state := c.channel.Issue(b, r.Addr.Row, now, keepOpen)
		r.Inflight = true
		r.FinishAt = finish
		r.RowState = state
		r.IssueHit = state == dram.RowHit
		r.ServiceAt = now
		c.inflight = append(c.inflight, r)
		c.Serviced++
		issued++
		if c.tel != nil {
			c.tel.Emit(telemetry.Event{
				Cycle: now, Kind: telemetry.EvIssue, Pref: r.Prefetch, A: finish,
				Core: int16(r.Core), Chan: c.telID, Bank: int16(b), Line: r.Line,
			})
			if state == dram.RowConflict {
				c.tel.Emit(telemetry.Event{
					Cycle: now, Kind: telemetry.EvRowConflict, Pref: r.Prefetch,
					Core: int16(r.Core), Chan: c.telID, Bank: int16(b), Line: r.Line,
				})
			}
		}
	}
	if issued > 0 {
		keepQ := c.queue[:0]
		for _, r := range c.queue {
			if !r.Inflight {
				keepQ = append(keepQ, r)
			}
		}
		c.queue = keepQ
	}
	return done
}

// moreRowWork reports whether another queued request targets the same bank
// and row as r (consulted by the closed-row policy to decide whether to
// keep the row open).
func (c *Controller) moreRowWork(r *Request, skip int) bool {
	for i, q := range c.queue {
		if i == skip {
			continue
		}
		if q.Addr.Bank == r.Addr.Bank && q.Addr.Row == r.Addr.Row {
			return true
		}
	}
	return false
}

// DropExpired implements the buffer half of Adaptive Prefetch Dropping:
// waiting (never in-flight) prefetches older than their core's drop
// threshold are removed and returned so the caller can release MSHR
// entries and account statistics.
func (c *Controller) DropExpired(now uint64, threshold func(core int) uint64) []*Request {
	var dropped []*Request
	keep := c.queue[:0]
	for _, r := range c.queue {
		if r.Prefetch && r.Age(now) > threshold(r.Core) {
			dropped = append(dropped, r)
			if c.tel != nil {
				c.tel.Emit(telemetry.Event{
					Cycle: now, Kind: telemetry.EvDrop, Pref: true, A: r.Age(now),
					Core: int16(r.Core), Chan: c.telID, Bank: int16(r.Addr.Bank), Line: r.Line,
				})
			}
			continue
		}
		keep = append(keep, r)
	}
	c.queue = keep
	c.Dropped += uint64(len(dropped))
	return dropped
}

// Channel exposes the controller's DRAM channel (stats, tests).
func (c *Controller) Channel() *dram.Channel { return c.channel }

// Pending returns the number of waiting (not yet issued) requests.
func (c *Controller) Pending() int { return len(c.queue) }
