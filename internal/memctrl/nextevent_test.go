package memctrl

import (
	"testing"

	"padc/internal/dram/refresh"
)

func TestNextEventIdleController(t *testing.T) {
	c := New(DemandFirst, oneBank(), 8, nil)
	if e := c.NextEvent(10); e != NeverEvent {
		t.Fatalf("idle controller NextEvent = %d, want NeverEvent", e)
	}
}

func TestNextEventQueuedAndInflight(t *testing.T) {
	c := New(DemandFirst, oneBank(), 8, nil)
	c.Enqueue(req(0, 1, 1, false))
	// A queued request on a ready bank can issue immediately.
	if e := c.NextEvent(0); e != 1 {
		t.Fatalf("ready-bank NextEvent = %d, want 1", e)
	}
	c.Tick(1, 8) // issues the request; the bank goes busy
	if c.Pending() != 0 {
		t.Fatal("request did not issue")
	}
	// The only future event is the in-flight completion; ticking every
	// cycle strictly before it must harvest nothing.
	e := c.NextEvent(1)
	if e == NeverEvent || e <= 1 {
		t.Fatalf("in-flight completion NextEvent = %d", e)
	}
	for now := uint64(2); now < e; now++ {
		if done := c.Tick(now, 8); len(done) != 0 {
			t.Fatalf("completion harvested at %d, before the claimed event %d", now, e)
		}
	}
	if done := c.Tick(e, 8); len(done) != 1 {
		t.Fatalf("no completion at the claimed event cycle %d", e)
	}
	if e := c.NextEvent(e); e != NeverEvent {
		t.Fatalf("drained controller NextEvent = %d, want NeverEvent", e)
	}
}

func TestNextEventBusyBankWake(t *testing.T) {
	c := New(DemandFirst, oneBank(), 8, nil)
	c.Enqueue(req(0, 1, 1, false))
	c.Tick(1, 8) // first request occupies the bank
	c.Enqueue(req(0, 2, 2, false))
	// The waiting request's event is the bank release; it must be a real
	// cycle and it must not fire early.
	e := c.NextEvent(1)
	if e == NeverEvent || e <= 1 {
		t.Fatalf("busy-bank NextEvent = %d", e)
	}
	pend := c.Pending()
	for now := uint64(2); now < e; now++ {
		c.Tick(now, 8)
		if c.Pending() != pend {
			// The second request issued before the claimed wake-up: the
			// event kernel would have skipped a live cycle.
			t.Fatalf("request issued at %d, before the claimed event %d", now, e)
		}
	}
}

func TestHasPrefetches(t *testing.T) {
	c := New(DemandFirst, oneBank(), 8, nil)
	if c.HasPrefetches() {
		t.Fatal("empty controller claims prefetches")
	}
	c.Enqueue(req(0, 1, 1, false))
	if c.HasPrefetches() {
		t.Fatal("demand-only controller claims prefetches")
	}
	c.Enqueue(req(0, 2, 2, true))
	if !c.HasPrefetches() {
		t.Fatal("buffered prefetch not reported")
	}
	drain(c, 2)
	if c.HasPrefetches() {
		t.Fatal("drained controller still claims prefetches")
	}
}

func TestNextEventRefresh(t *testing.T) {
	c := New(DemandFirst, oneBank(), 8, nil)
	eng := refresh.NewEngine(refresh.Config{
		Mode: refresh.PerBank, TREFI: 200, TRFC: 80, TRFCpb: 40, MaxPostpone: 2,
	}, 1)
	c.AttachRefresh(eng)

	// An idle bank with pull-in credit can start a refresh next cycle.
	if e := c.NextEvent(0); e != 1 {
		t.Fatalf("idle refresh NextEvent = %d, want 1", e)
	}
	c.Tick(1, 8)
	if eng.Issued != 1 {
		t.Fatalf("idle pull-in did not start a refresh (issued=%d)", eng.Issued)
	}
	// While refreshing, the next event is the refresh completion (the
	// accrual deadline is much further out); nothing may happen before it.
	e := c.NextEvent(1)
	if e == NeverEvent || e <= 1 {
		t.Fatalf("refreshing NextEvent = %d", e)
	}
	issued := eng.Issued
	for now := uint64(2); now < e; now++ {
		c.Tick(now, 8)
		if eng.Issued != issued {
			t.Fatalf("refresh state changed at %d, before the claimed event %d", now, e)
		}
	}

	// A demand arriving against a refreshing bank makes every cycle live:
	// the per-tick blocked accounting must not be skipped.
	c.Enqueue(req(0, 1, 1, false))
	if eng.Blocked(0, e-1) {
		if got := c.NextEvent(e - 1); got != e {
			t.Fatalf("blocked-with-waiting NextEvent = %d, want next cycle %d", got, e)
		}
	}
}
