package memctrl

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"padc/internal/dram"
)

// This file holds the differential test layer guarding the rule-stack
// refactor: legacyController below is the pre-refactor scheduler (the
// monolithic better() switch over a flat queue, with per-tick full-buffer
// rank and row-work scans) copied verbatim minus telemetry, and the
// property test drives it and the rewritten Controller through identical
// randomized request schedules, asserting identical issue orders, DRAM row
// outcomes, completion orders and drop sets for all five legacy policies.

// legacyController is the reference scheduler.
type legacyController struct {
	policy   Policy
	channel  *dram.Channel
	state    CoreState
	capacity int
	nextSeq  uint64

	queue    []*Request
	inflight []*Request

	serviced uint64
	dropped  uint64
}

func legacyNew(policy Policy, channel *dram.Channel, capacity int, state CoreState) *legacyController {
	return &legacyController{policy: policy, channel: channel, capacity: capacity, state: state}
}

func (c *legacyController) occupancy() int { return len(c.queue) + len(c.inflight) }
func (c *legacyController) full() bool     { return c.occupancy() >= c.capacity }

func (c *legacyController) enqueue(r *Request) bool {
	if c.full() {
		return false
	}
	r.seq = c.nextSeq
	c.nextSeq++
	c.queue = append(c.queue, r)
	return true
}

func (c *legacyController) matchPrefetch(core int, line uint64, now uint64) *Request {
	for _, r := range c.queue {
		if r.Core == core && r.Line == line && r.Prefetch {
			r.Prefetch = false
			r.PromotedAt = now
			return r
		}
	}
	for _, r := range c.inflight {
		if r.Core == core && r.Line == line && r.Prefetch {
			r.Prefetch = false
			r.PromotedAt = now
			return r
		}
	}
	return nil
}

func (c *legacyController) critical(r *Request) bool {
	if !r.Prefetch {
		return true
	}
	return c.state != nil && c.state.PrefetchCritical(r.Core)
}

func (c *legacyController) urgent(r *Request) bool {
	if r.Prefetch || c.state == nil || !c.state.UrgencyEnabled() {
		return false
	}
	return !c.state.PrefetchCritical(r.Core)
}

func (c *legacyController) better(a, b *Request, aHit, bHit bool, rank []int) bool {
	type cmp struct{ a, b bool }
	lex := func(terms ...cmp) bool {
		for _, t := range terms {
			if t.a != t.b {
				return t.a
			}
		}
		return a.seq < b.seq
	}
	switch c.policy {
	case DemandPrefEqual:
		return lex(cmp{aHit, bHit})
	case DemandFirst:
		return lex(cmp{!a.Prefetch, !b.Prefetch}, cmp{aHit, bHit})
	case PrefetchFirst:
		return lex(cmp{a.Prefetch, b.Prefetch}, cmp{aHit, bHit})
	case APS:
		return lex(cmp{c.critical(a), c.critical(b)}, cmp{aHit, bHit}, cmp{c.urgent(a), c.urgent(b)})
	case APSRank:
		ra, rb := 0, 0
		if c.critical(a) {
			ra = rank[a.Core]
		}
		if c.critical(b) {
			rb = rank[b.Core]
		}
		if c.critical(a) != c.critical(b) {
			return c.critical(a)
		}
		if aHit != bHit {
			return aHit
		}
		if ua, ub := c.urgent(a), c.urgent(b); ua != ub {
			return ua
		}
		if ra != rb {
			return ra > rb
		}
		return a.seq < b.seq
	default:
		return a.seq < b.seq
	}
}

func (c *legacyController) ranks(ncores int) []int {
	counts := make([]int, ncores)
	for _, r := range c.queue {
		if c.critical(r) {
			counts[r.Core]++
		}
	}
	for _, r := range c.inflight {
		if c.critical(r) {
			counts[r.Core]++
		}
	}
	rank := make([]int, ncores)
	for i, n := range counts {
		rank[i] = -n
	}
	return rank
}

func (c *legacyController) tick(now uint64, ncores int) []*Request {
	var done []*Request
	keep := c.inflight[:0]
	for _, r := range c.inflight {
		if r.FinishAt <= now {
			done = append(done, r)
		} else {
			keep = append(keep, r)
		}
	}
	c.inflight = keep
	if len(c.queue) == 0 {
		return done
	}

	var rank []int
	if c.policy == APSRank {
		rank = c.ranks(ncores)
	}

	nbanks := len(c.channel.Banks)
	best := make([]int, nbanks)
	for i := range best {
		best[i] = -1
	}
	for i, r := range c.queue {
		b := r.Addr.Bank
		if !c.channel.BankReady(b, now) {
			continue
		}
		if best[b] < 0 {
			best[b] = i
			continue
		}
		o := c.queue[best[b]]
		rHit := c.channel.Banks[b].State(r.Addr.Row) == dram.RowHit
		oHit := c.channel.Banks[b].State(o.Addr.Row) == dram.RowHit
		if c.better(r, o, rHit, oHit, rank) {
			best[b] = i
		}
	}

	issued := 0
	for b := 0; b < nbanks; b++ {
		if best[b] < 0 {
			continue
		}
		r := c.queue[best[b]]
		keepOpen := c.legacyMoreRowWork(r, best[b])
		finish, state := c.channel.Issue(b, r.Addr.Row, now, keepOpen)
		r.Inflight = true
		r.FinishAt = finish
		r.RowState = state
		r.IssueHit = state == dram.RowHit
		r.ServiceAt = now
		c.inflight = append(c.inflight, r)
		c.serviced++
		issued++
	}
	if issued > 0 {
		keepQ := c.queue[:0]
		for _, r := range c.queue {
			if !r.Inflight {
				keepQ = append(keepQ, r)
			}
		}
		c.queue = keepQ
	}
	return done
}

func (c *legacyController) legacyMoreRowWork(r *Request, skip int) bool {
	for i, q := range c.queue {
		if i == skip {
			continue
		}
		if q.Addr.Bank == r.Addr.Bank && q.Addr.Row == r.Addr.Row {
			return true
		}
	}
	return false
}

func (c *legacyController) dropExpired(now uint64, threshold func(r *Request) uint64) []*Request {
	var dropped []*Request
	keep := c.queue[:0]
	for _, r := range c.queue {
		if r.Prefetch && r.Age(now) > threshold(r) {
			dropped = append(dropped, r)
			continue
		}
		keep = append(keep, r)
	}
	c.queue = keep
	c.dropped += uint64(len(dropped))
	return dropped
}

// flipState is a mutable CoreState shared by both schedulers; the driver
// flips per-core criticality and urgency between ticks to exercise the
// adaptive paths (the per-tick flag hoisting in the new controller must
// observe flips exactly as the legacy per-comparison calls did).
type flipState struct {
	crit    [diffCores]bool
	urgency bool
}

func (s *flipState) PrefetchCritical(core int) bool { return s.crit[core%diffCores] }
func (s *flipState) UrgencyEnabled() bool           { return s.urgency }

const diffCores = 4

// issueTuple identifies one scheduling decision and its DRAM outcome.
type issueTuple struct {
	cycle uint64
	line  uint64
	bank  int
	row   uint64
	fin   uint64
	state dram.RowState
	pref  bool
}

// issuedAt collects the requests issued at cycle now, in inflight
// (bank-ascending issue) order.
func issuedAt(inflight []*Request, now uint64) []issueTuple {
	var out []issueTuple
	for _, r := range inflight {
		if r.ServiceAt == now && r.Inflight {
			out = append(out, issueTuple{
				cycle: now, line: r.Line, bank: r.Addr.Bank, row: r.Addr.Row,
				fin: r.FinishAt, state: r.RowState, pref: r.Prefetch,
			})
		}
	}
	return out
}

func sortedLines(reqs []*Request) []uint64 {
	lines := make([]uint64, len(reqs))
	for i, r := range reqs {
		lines[i] = r.Line
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	return lines
}

// runDifferential drives the legacy reference and the rule-stack
// controller through one identical randomized schedule and fails on the
// first divergence.
func runDifferential(t *testing.T, pol Policy, seed int64, banks int, closedRow bool, cycles uint64) {
	t.Helper()
	cfg := dram.DefaultConfig()
	cfg.Banks = banks
	cfg.ClosedRow = closedRow

	state := &flipState{}
	ref := legacyNew(pol, dram.NewChannel(cfg), 32, state)
	cur := New(pol, dram.NewChannel(cfg), 32, state)

	rng := rand.New(rand.NewSource(seed))
	threshold := func(r *Request) uint64 { return uint64(20 + 10*r.Core) }
	var lineCtr uint64
	type prefRef struct {
		core int
		line uint64
	}
	var prefs []prefRef

	for now := uint64(1); now <= cycles; now++ {
		// Flip adaptive state between ticks only; both sides share it.
		if rng.Intn(32) == 0 {
			state.crit[rng.Intn(diffCores)] = rng.Intn(2) == 0
		}
		if rng.Intn(64) == 0 {
			state.urgency = !state.urgency
		}

		// Enqueue 0-2 new requests with unique lines.
		for n := rng.Intn(3); n > 0; n-- {
			core := rng.Intn(diffCores)
			bank := rng.Intn(banks)
			row := uint64(rng.Intn(4))
			pref := rng.Intn(2) == 0
			lineCtr++
			mk := func() *Request {
				return &Request{
					Core: core, Line: lineCtr, Prefetch: pref, WasPref: pref,
					Arrival: now, Addr: dram.Address{Bank: bank, Row: row},
				}
			}
			okRef := ref.enqueue(mk())
			okCur := cur.Enqueue(mk())
			if okRef != okCur {
				t.Fatalf("%v seed=%d cycle=%d: enqueue accept diverged ref=%v cur=%v", pol, seed, now, okRef, okCur)
			}
			if pref && okRef {
				prefs = append(prefs, prefRef{core, lineCtr})
			}
		}

		// Randomly promote a remembered prefetch (demand hits its line).
		if len(prefs) > 0 && rng.Intn(4) == 0 {
			i := rng.Intn(len(prefs))
			p := prefs[i]
			prefs[i] = prefs[len(prefs)-1]
			prefs = prefs[:len(prefs)-1]
			gotRef := ref.matchPrefetch(p.core, p.line, now)
			gotCur := cur.MatchPrefetch(p.core, p.line, now)
			if (gotRef == nil) != (gotCur == nil) {
				t.Fatalf("%v seed=%d cycle=%d: promotion diverged ref=%v cur=%v", pol, seed, now, gotRef != nil, gotCur != nil)
			}
		}

		// Periodic adaptive prefetch dropping. The refactor buckets the
		// buffer by bank, so drop *order* legitimately changed; the drop
		// *set* must not.
		if rng.Intn(16) == 0 {
			dRef := sortedLines(ref.dropExpired(now, threshold))
			dCur := sortedLines(cur.DropExpired(now, threshold))
			if fmt.Sprint(dRef) != fmt.Sprint(dCur) {
				t.Fatalf("%v seed=%d cycle=%d: drop sets diverged ref=%v cur=%v", pol, seed, now, dRef, dCur)
			}
		}

		doneRef := ref.tick(now, diffCores)
		doneCur := cur.Tick(now, diffCores)
		for i := range doneRef {
			if i >= len(doneCur) || doneRef[i].Line != doneCur[i].Line {
				t.Fatalf("%v seed=%d cycle=%d: completion order diverged ref=%v cur=%v",
					pol, seed, now, sortedLines(doneRef), sortedLines(doneCur))
			}
		}
		if len(doneRef) != len(doneCur) {
			t.Fatalf("%v seed=%d cycle=%d: completions ref=%d cur=%d", pol, seed, now, len(doneRef), len(doneCur))
		}

		isRef := issuedAt(ref.inflight, now)
		isCur := issuedAt(cur.inflight, now)
		if fmt.Sprint(isRef) != fmt.Sprint(isCur) {
			t.Fatalf("%v seed=%d cycle=%d: issue decisions diverged\nref: %+v\ncur: %+v", pol, seed, now, isRef, isCur)
		}
		if ref.occupancy() != cur.Occupancy() {
			t.Fatalf("%v seed=%d cycle=%d: occupancy ref=%d cur=%d", pol, seed, now, ref.occupancy(), cur.Occupancy())
		}
	}
	if ref.serviced != cur.Serviced || ref.dropped != cur.Dropped {
		t.Fatalf("%v seed=%d: totals diverged serviced ref=%d cur=%d dropped ref=%d cur=%d",
			pol, seed, ref.serviced, cur.Serviced, ref.dropped, cur.Dropped)
	}
}

// TestDifferentialSchedulerEquivalence proves schedule-equivalence of the
// rule-stack controller against the legacy monolithic scheduler for all
// five policies, across bank counts, row policies and random seeds.
func TestDifferentialSchedulerEquivalence(t *testing.T) {
	policies := []Policy{DemandPrefEqual, DemandFirst, PrefetchFirst, APS, APSRank}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			for _, banks := range []int{1, 8} {
				for _, closed := range []bool{false, true} {
					for seed := int64(1); seed <= 3; seed++ {
						runDifferential(t, pol, seed, banks, closed, 600)
					}
				}
			}
		})
	}
}
