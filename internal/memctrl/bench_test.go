package memctrl

import (
	"fmt"
	"testing"

	"padc/internal/dram"
)

// benchState is a deterministic CoreState: even cores prefetch accurately
// (critical prefetches), odd cores do not (urgent demands).
type benchState struct{}

func (benchState) PrefetchCritical(core int) bool { return core%2 == 0 }
func (benchState) UrgencyEnabled() bool           { return true }

// benchCores is the simulated core count the benchmark schedules for.
const benchCores = 8

// fillController preloads depth requests spread over banks, rows, cores
// and request classes, mirroring a busy steady-state buffer.
func fillController(c *Controller, depth int, banks int) []*Request {
	reqs := make([]*Request, depth)
	for i := 0; i < depth; i++ {
		r := &Request{
			Core:     i % benchCores,
			Line:     uint64(i),
			Addr:     dram.Address{Bank: i % banks, Row: uint64(i/banks) % 4},
			Prefetch: i%3 == 0,
			WasPref:  i%3 == 0,
		}
		c.Enqueue(r)
		reqs[i] = r
	}
	return reqs
}

// tickSteadyState drives one cycle and recycles completions back into the
// buffer, so occupancy (and therefore per-tick work) stays at depth.
func tickSteadyState(c *Controller, now uint64, banks int) {
	for _, r := range c.Tick(now, benchCores) {
		r.Inflight = false
		r.FinishAt = 0
		r.ServiceAt = 0
		r.Arrival = now
		r.Prefetch = r.WasPref
		r.Addr.Row = (r.Addr.Row + 1) % 4 // wander rows so hits and conflicts mix
		c.Enqueue(r)
	}
}

// BenchmarkControllerTick measures the scheduler hot path: one Tick per
// iteration against a full request buffer at the given depth, recycling
// completions so the buffer never drains. Depths 16/64/256 span the
// paper's per-core to 8-core buffer sizings.
func BenchmarkControllerTick(b *testing.B) {
	policies := []struct {
		name string
		pol  Policy
	}{
		{"fr-fcfs", DemandPrefEqual},
		{"aps", APS},
		{"aps-rank", APSRank},
	}
	for _, p := range policies {
		for _, depth := range []int{16, 64, 256} {
			b.Run(fmt.Sprintf("policy=%s/depth=%d", p.name, depth), func(b *testing.B) {
				cfg := dram.DefaultConfig()
				ch := dram.NewChannel(cfg)
				c := New(p.pol, ch, depth, benchState{})
				fillController(c, depth, cfg.Banks)
				now := uint64(0)
				// Warm up past slice growth and map sizing.
				for i := 0; i < 4*depth; i++ {
					now++
					tickSteadyState(c, now, cfg.Banks)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					now++
					tickSteadyState(c, now, cfg.Banks)
				}
			})
		}
	}
}
