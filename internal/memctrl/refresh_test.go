package memctrl

import (
	"testing"

	"padc/internal/dram"
	"padc/internal/dram/refresh"
	"padc/internal/memctrl/sched"
	"padc/internal/telemetry"
)

// testRefreshCfg shrinks the refresh timing so a short test accrues many
// obligations.
func testRefreshCfg(mode refresh.Mode) refresh.Config {
	return refresh.Config{Mode: mode, TREFI: 500, TRFC: 100, TRFCpb: 60, MaxPostpone: 2}
}

// tickRange ticks the controller every 4 cycles over [0, end).
func tickRange(c *Controller, end uint64) {
	for now := uint64(0); now < end; now += 4 {
		c.Tick(now, 4)
	}
}

func TestRefreshIdlePullInConservation(t *testing.T) {
	for _, mode := range []refresh.Mode{refresh.PerBank, refresh.AllBank} {
		cfg := dram.DefaultConfig()
		cfg.Banks = 4
		ch := dram.NewChannel(cfg)
		c := New(DemandPrefEqual, ch, 16, nil)
		eng := refresh.NewEngine(testRefreshCfg(mode), cfg.Banks)
		c.AttachRefresh(eng)
		if !c.NeedsIdleTick() {
			t.Fatalf("%v: controller with a refresh engine must request idle ticks", mode)
		}

		end := uint64(10_000)
		tickRange(c, end)
		if err := eng.Audit(end); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		// Idle banks pull refreshes in ahead of schedule, so every elapsed
		// window is covered and some credits are banked.
		units := 1
		if mode == refresh.PerBank {
			units = cfg.Banks
		}
		windows := end / 500 * uint64(units)
		if eng.Issued < windows {
			t.Fatalf("%v: issued %d refreshes, %d windows elapsed on an idle channel", mode, eng.Issued, windows)
		}
		if eng.PulledIn == 0 {
			t.Fatalf("%v: an idle channel should pull refreshes in early", mode)
		}
		if eng.Forced != 0 || eng.BlockedCycles != 0 {
			t.Fatalf("%v: idle channel saw forced=%d blocked=%d", mode, eng.Forced, eng.BlockedCycles)
		}
		wantCh := eng.Issued
		if mode == refresh.AllBank {
			wantCh *= uint64(cfg.Banks) // one rank refresh touches every bank
		}
		if ch.Refreshes != wantCh {
			t.Fatalf("%v: channel recorded %d bank refreshes, engine issued %d", mode, ch.Refreshes, eng.Issued)
		}
	}
}

// loadBank keeps bank 0 saturated with demand requests while ticking, so
// no idle gap ever opens and refreshes can only postpone or force.
func loadBank(c *Controller, end uint64) {
	line := uint64(0)
	for now := uint64(0); now < end; now += 4 {
		for c.Pending() < 4 && !c.Full() {
			line++
			c.Enqueue(&Request{
				Core: 0, Line: line,
				Addr:    dram.Address{Bank: 0, Row: line % 2},
				Arrival: now,
			})
		}
		c.Tick(now, 1)
	}
}

func TestRefreshForcedDeadlineUnderLoad(t *testing.T) {
	cfg := dram.DefaultConfig()
	cfg.Banks = 1
	ch := dram.NewChannel(cfg)
	c := New(DemandPrefEqual, ch, 16, nil)
	eng := refresh.NewEngine(testRefreshCfg(refresh.PerBank), cfg.Banks)
	c.AttachRefresh(eng)

	end := uint64(20_000)
	loadBank(c, end)
	if err := eng.Audit(end); err != nil {
		t.Fatal(err)
	}
	if eng.Forced == 0 {
		t.Fatal("a saturated bank must hit the forced-refresh deadline")
	}
	if eng.Postponed == 0 {
		t.Fatal("a saturated bank must postpone refreshes first")
	}
	if eng.BlockedCycles == 0 {
		t.Fatal("forced refreshes over waiting requests must account blocked cycles")
	}
	if eng.PulledIn != 0 {
		t.Fatalf("a saturated bank pulled in %d refreshes early", eng.PulledIn)
	}
	// Conservation under load: issued tracks elapsed windows within the
	// credit band.
	windows := int64(end / 500)
	if diff := windows - int64(eng.Issued); diff < -2 || diff > 2 {
		t.Fatalf("issued %d refreshes, %d windows elapsed: outside the +/-2 credit band", eng.Issued, windows)
	}
}

func TestRefreshRuleWinsArbitration(t *testing.T) {
	// With "refresh" at the top of the stack, a due refresh preempts
	// waiting requests immediately instead of waiting for the deadline.
	cfg := dram.DefaultConfig()
	cfg.Banks = 1
	ch := dram.NewChannel(cfg)
	c := NewStack(sched.MustParse("rules:refresh,rowhit,fcfs"), ch, 16, nil)
	eng := refresh.NewEngine(testRefreshCfg(refresh.PerBank), cfg.Banks)
	c.AttachRefresh(eng)

	c.Enqueue(&Request{Core: 0, Line: 1, Addr: dram.Address{Bank: 0, Row: 0}})
	c.Enqueue(&Request{Core: 0, Line: 2, Addr: dram.Address{Bank: 0, Row: 1}})
	// First obligation accrues at TREFI (bank 0 of 1 unit): tick just past it.
	c.Tick(504, 1)
	if eng.Issued != 1 || c.Serviced != 0 {
		t.Fatalf("refresh-first stack issued %d refreshes, %d requests; want the refresh to win", eng.Issued, c.Serviced)
	}
	if ch.Refreshes != 1 {
		t.Fatalf("channel saw %d refreshes, want 1", ch.Refreshes)
	}
	// Once the refresh window passes, the requests proceed.
	c.Tick(504+60, 1)
	if c.Serviced != 1 {
		t.Fatalf("request did not issue after the refresh window (serviced=%d)", c.Serviced)
	}
}

func TestRefreshRuleYieldsToHigherRules(t *testing.T) {
	// With "refresh" below "rowhit", a row-hit request beats the due
	// refresh; the refresh then lands in the idle gap that follows.
	cfg := dram.DefaultConfig()
	cfg.Banks = 1
	ch := dram.NewChannel(cfg)
	c := NewStack(sched.MustParse("rules:rowhit,refresh,fcfs"), ch, 16, nil)
	eng := refresh.NewEngine(testRefreshCfg(refresh.PerBank), cfg.Banks)
	c.AttachRefresh(eng)

	// Open row 3, then queue a hit to it.
	c.Enqueue(&Request{Core: 0, Line: 1, Addr: dram.Address{Bank: 0, Row: 3}})
	c.Tick(0, 1)
	c.Enqueue(&Request{Core: 0, Line: 2, Addr: dram.Address{Bank: 0, Row: 3}, Arrival: 400})
	// Find the first tick past the obligation where the bank is ready.
	now := uint64(504)
	for !ch.BankReady(0, now) {
		now += 4
	}
	c.Tick(now, 1)
	if c.Serviced != 2 || eng.Issued != 0 {
		t.Fatalf("row-hit should outrank the due refresh (serviced=%d refreshes=%d)", c.Serviced, eng.Issued)
	}
}

func TestRefreshAllBankDrainsThenBlocksAllBanks(t *testing.T) {
	cfg := dram.DefaultConfig()
	cfg.Banks = 4
	ch := dram.NewChannel(cfg)
	c := New(DemandPrefEqual, ch, 32, nil)
	eng := refresh.NewEngine(testRefreshCfg(refresh.AllBank), cfg.Banks)
	c.AttachRefresh(eng)

	end := uint64(20_000)
	line := uint64(0)
	for now := uint64(0); now < end; now += 4 {
		for c.Pending() < 8 && !c.Full() {
			line++
			c.Enqueue(&Request{
				Core: 0, Line: line,
				Addr:    dram.Address{Bank: int(line) % cfg.Banks, Row: line % 2},
				Arrival: now,
			})
		}
		c.Tick(now, 1)
	}
	if err := eng.Audit(end); err != nil {
		t.Fatal(err)
	}
	if eng.Issued == 0 {
		t.Fatal("no all-bank refresh issued under load")
	}
	if eng.Forced == 0 {
		t.Fatal("a saturated channel must reach the all-bank forced deadline")
	}
	if ch.Refreshes != eng.Issued*uint64(cfg.Banks) {
		t.Fatalf("channel bank-refreshes %d != issued %d x %d banks", ch.Refreshes, eng.Issued, cfg.Banks)
	}
	if eng.BlockedCycles == 0 {
		t.Fatal("rank-wide refreshes over pending work must account blocked cycles")
	}
}

func TestRefreshInstrumentRegistersCounters(t *testing.T) {
	cfg := dram.DefaultConfig()
	cfg.Banks = 2
	ch := dram.NewChannel(cfg)
	c := New(DemandPrefEqual, ch, 16, nil)
	c.AttachRefresh(refresh.NewEngine(testRefreshCfg(refresh.PerBank), cfg.Banks))
	tel := telemetry.New(telemetry.Options{})
	c.Instrument(tel, 0)
	tickRange(c, 5_000)
	for _, name := range []string{
		"dram0/refreshes_issued", "dram0/refreshes_postponed",
		"dram0/refreshes_pulled_in", "dram0/refreshes_forced",
		"dram0/refresh_blocked_cycles",
	} {
		if _, ok := tel.Value(name); !ok {
			t.Errorf("counter %s not registered", name)
		}
	}
	if v, _ := tel.Value("dram0/refreshes_issued"); v == 0 {
		t.Error("refreshes_issued stayed zero on an idle ticking controller")
	}
}

func TestAttachRefreshIgnoresDisabledEngines(t *testing.T) {
	c := New(DemandPrefEqual, oneBank(), 16, nil)
	c.AttachRefresh(nil)
	c.AttachRefresh(refresh.NewEngine(refresh.Config{Mode: refresh.Off}, 1))
	if c.NeedsIdleTick() || c.Refresh() != nil {
		t.Fatal("disabled engines must leave refresh off")
	}
}
