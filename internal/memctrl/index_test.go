package memctrl

import (
	"math/rand"
	"testing"

	"padc/internal/dram"
	"padc/internal/telemetry"
)

// Tests for the incrementally-maintained scheduling indexes: the
// per-core outstanding counts behind the §6.5 ranking, the per-(bank,row)
// waiting counts behind the closed-row keep-open decision, and the
// zero-allocation guarantee of the Tick hot path.

// auditIndexes recomputes every incremental index by brute force over the
// buckets and inflight list and fails on any disagreement.
func auditIndexes(t *testing.T, c *Controller) {
	t.Helper()
	demand := map[int]int{}
	pref := map[int]int{}
	rows := map[rowKey]int{}
	pending := 0
	for b, bucket := range c.banks {
		for _, r := range bucket {
			pending++
			rows[rowKey{b, r.Addr.Row}]++
			if r.Prefetch {
				pref[r.Core]++
			} else {
				demand[r.Core]++
			}
		}
	}
	for _, r := range c.inflight {
		if r.Prefetch {
			pref[r.Core]++
		} else {
			demand[r.Core]++
		}
	}
	if pending != c.pending {
		t.Fatalf("pending: index=%d actual=%d", c.pending, pending)
	}
	for core := 0; core < len(c.demandCnt); core++ {
		if c.demandCnt[core] != demand[core] || c.prefCnt[core] != pref[core] {
			t.Fatalf("core %d: index demand=%d pref=%d, actual demand=%d pref=%d",
				core, c.demandCnt[core], c.prefCnt[core], demand[core], pref[core])
		}
		delete(demand, core)
		delete(pref, core)
	}
	for core, n := range demand {
		if n != 0 {
			t.Fatalf("core %d has %d demands but no index slot", core, n)
		}
	}
	if len(c.rowWait) != len(rows) {
		t.Fatalf("rowWait has %d keys, actual %d (stale zero entries?)", len(c.rowWait), len(rows))
	}
	for k, n := range rows {
		if c.rowWait[k] != n {
			t.Fatalf("rowWait[%v]: index=%d actual=%d", k, c.rowWait[k], n)
		}
	}
}

// TestIndexCountConservation drives a random mix of enqueues, promotions,
// drops, ticks and completions and audits the incremental per-core and
// per-row counts against a full recomputation after every step.
func TestIndexCountConservation(t *testing.T) {
	cfg := dram.DefaultConfig()
	cfg.Banks = 4
	c := New(APSRank, dram.NewChannel(cfg), 24, fixedState{critical: map[int]bool{0: true}, urgency: true})
	rng := rand.New(rand.NewSource(42))
	var lineCtr uint64
	type pr struct {
		core int
		line uint64
	}
	var prefs []pr
	threshold := func(*Request) uint64 { return 25 }

	for now := uint64(1); now <= 800; now++ {
		for n := rng.Intn(3); n > 0; n-- {
			lineCtr++
			pref := rng.Intn(2) == 0
			r := &Request{
				Core: rng.Intn(4), Line: lineCtr, Prefetch: pref, WasPref: pref,
				Arrival: now,
				Addr:    dram.Address{Bank: rng.Intn(cfg.Banks), Row: uint64(rng.Intn(3))},
			}
			if c.Enqueue(r) && pref {
				prefs = append(prefs, pr{r.Core, r.Line})
			}
		}
		if len(prefs) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(prefs))
			c.MatchPrefetch(prefs[i].core, prefs[i].line, now)
			prefs[i] = prefs[len(prefs)-1]
			prefs = prefs[:len(prefs)-1]
		}
		if rng.Intn(10) == 0 {
			c.DropExpired(now, threshold)
		}
		c.Tick(now, 4)
		auditIndexes(t, c)
	}
	// Drain completely: all counts must return to zero.
	for now := uint64(801); c.Occupancy() > 0 && now < 100_000; now++ {
		c.Tick(now, 4)
	}
	if c.Occupancy() != 0 {
		t.Fatal("controller failed to drain")
	}
	auditIndexes(t, c)
	for core := range c.demandCnt {
		if c.demandCnt[core] != 0 || c.prefCnt[core] != 0 {
			t.Fatalf("drained controller retains counts for core %d: demand=%d pref=%d",
				core, c.demandCnt[core], c.prefCnt[core])
		}
	}
	if len(c.rowWait) != 0 {
		t.Fatalf("drained controller retains %d rowWait entries", len(c.rowWait))
	}
}

// TestClosedRowKeepOpenBurst is the regression test for the O(1) row-wait
// index replacing moreRowWork's full-buffer scan: under the closed-row
// policy, a same-row burst must keep the row open exactly while more work
// for it is waiting, yielding the same hit/closed sequence as the scan.
func TestClosedRowKeepOpenBurst(t *testing.T) {
	cfg := dram.DefaultConfig()
	cfg.Banks = 1
	cfg.ClosedRow = true
	c := New(DemandPrefEqual, dram.NewChannel(cfg), 16, nil)

	mk := func(line, row uint64) *Request {
		return &Request{Line: line, Addr: dram.Address{Bank: 0, Row: row}, Arrival: 0}
	}
	burst := []*Request{mk(1, 5), mk(2, 5), mk(3, 5), mk(4, 9)}
	for _, r := range burst {
		if !c.Enqueue(r) {
			t.Fatal("enqueue failed")
		}
	}

	var states []dram.RowState
	for now := uint64(1); len(states) < len(burst) && now < 10_000; now++ {
		for _, r := range c.Tick(now, 1) {
			states = append(states, r.RowState)
		}
	}
	// Request 1 activates the idle bank (closed); 2 and 3 hit because the
	// keep-open decision sees more row-5 work waiting; after 3 the index
	// holds no more row-5 work, the row closes, and 4 activates a closed
	// bank again. A stale index would turn the hits into closed accesses
	// (undercounting) or the final access into a conflict (overcounting).
	want := []dram.RowState{dram.RowClosed, dram.RowHit, dram.RowHit, dram.RowClosed}
	for i, s := range states {
		if s != want[i] {
			t.Fatalf("row-state sequence %v, want %v", states, want)
		}
	}
	if c.moreRowWork(mk(99, 5)) {
		t.Error("moreRowWork reports waiting row-5 work in a drained controller")
	}
}

// TestRuleWinsAttribution checks the per-rule decision counters: a
// contested arbitration is attributed to the rule that settled it, both
// through RuleWins and the registered telemetry counters.
func TestRuleWinsAttribution(t *testing.T) {
	tel := telemetry.New(telemetry.Options{})
	c := New(APS, oneBank(), 8, fixedState{critical: map[int]bool{}, urgency: false})
	c.Instrument(tel, 0)

	demand := req(0, 1, 7, false)
	pref := req(1, 2, 7, true)
	c.Enqueue(demand)
	c.Enqueue(pref) // same bank: contested, criticality decides
	c.Tick(1, 2)

	names, wins := c.RuleWins()
	byName := map[string]uint64{}
	for i, n := range names {
		byName[n] = wins[i]
	}
	if byName["critical"] != 1 {
		t.Fatalf("critical wins = %d, want 1 (all: %v %v)", byName["critical"], names, wins)
	}
	if v, ok := tel.Value("memctrl0/rule_wins/critical"); !ok || v != 1 {
		t.Fatalf("telemetry rule_wins/critical = %v, %v", v, ok)
	}
	// The remaining request is issued uncontested: no rule is credited.
	drain(c, 1)
	if _, wins2 := c.RuleWins(); sum(wins2) != 1 {
		t.Fatalf("uncontested issue was counted: %v", wins2)
	}
}

func sum(xs []uint64) (s uint64) {
	for _, x := range xs {
		s += x
	}
	return s
}

// TestTickZeroSteadyStateAllocs asserts the scheduling hot path performs
// no allocations in steady state for every legacy policy (the pre-refactor
// APSRank allocated two rank slices per tick, and every policy allocated a
// fresh completion slice).
func TestTickZeroSteadyStateAllocs(t *testing.T) {
	for _, pol := range []Policy{DemandPrefEqual, DemandFirst, PrefetchFirst, APS, APSRank} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := dram.DefaultConfig()
			ch := dram.NewChannel(cfg)
			c := New(pol, ch, 64, benchState{})
			fillController(c, 64, cfg.Banks)
			now := uint64(0)
			for i := 0; i < 256; i++ { // warm buffers, maps and scratch
				now++
				tickSteadyState(c, now, cfg.Banks)
			}
			avg := testing.AllocsPerRun(100, func() {
				now++
				tickSteadyState(c, now, cfg.Banks)
			})
			if avg != 0 {
				t.Errorf("policy %v: %v allocs per steady-state tick, want 0", pol, avg)
			}
		})
	}
}
