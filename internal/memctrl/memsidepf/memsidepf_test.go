package memsidepf

import (
	"math/rand"
	"testing"

	"padc/internal/dram"
)

func addr(row, col uint64) dram.Address {
	return dram.Address{Channel: 0, Bank: 2, Row: row, Col: col}
}

func TestTrainGeneratesSameRowNeighbors(t *testing.T) {
	e := New(Config{}, 64)
	e.Train(1, 100, addr(5, 0), 10)
	if e.Pending() != 4 {
		t.Fatalf("degree-4 trigger should queue 4 candidates, got %d", e.Pending())
	}
	if e.Generated != 4 || e.Enqueued != 4 {
		t.Fatalf("Generated=%d Enqueued=%d, want 4/4", e.Generated, e.Enqueued)
	}
	// Every candidate is the trigger's address with the column advanced.
	for i, c := range e.list {
		want := Candidate{Core: 1, Line: 100 + uint64(i+1), Addr: addr(5, uint64(i+1)), Born: 10}
		if c != want {
			t.Fatalf("candidate %d = %+v, want %+v", i, c, want)
		}
	}
}

func TestTrainStopsAtRowBoundary(t *testing.T) {
	e := New(Config{}, 64)
	e.Train(0, 100, addr(5, 62), 0)
	if e.Pending() != 1 {
		t.Fatalf("trigger at column 62 of 64 leaves one neighbor, got %d", e.Pending())
	}
	e2 := New(Config{}, 64)
	e2.Train(0, 100, addr(5, 63), 0)
	if e2.Pending() != 0 {
		t.Fatalf("trigger at the last column must generate nothing, got %d", e2.Pending())
	}
}

func TestTrainDedupesAndFilters(t *testing.T) {
	e := New(Config{}, 64)
	e.Train(0, 100, addr(5, 0), 0)
	e.Train(0, 100, addr(5, 0), 1) // same trigger: all candidates already queued
	if e.Pending() != 4 || e.Enqueued != 4 {
		t.Fatalf("duplicate trigger must not re-enqueue: pending=%d enqueued=%d", e.Pending(), e.Enqueued)
	}

	e2 := New(Config{}, 64)
	e2.SetFilter(func(core int, line uint64) bool { return line%2 == 0 })
	e2.Train(3, 100, addr(5, 0), 0)
	if e2.Pending() != 2 || e2.Filtered != 2 {
		t.Fatalf("filter should reject the even lines: pending=%d filtered=%d", e2.Pending(), e2.Filtered)
	}
}

func TestGateSuppressesGeneration(t *testing.T) {
	open := true
	e := New(Config{}, 64)
	e.SetGate(func() bool { return open })
	e.Train(0, 100, addr(5, 0), 0)
	open = false
	e.Train(0, 200, addr(6, 0), 0)
	if e.Pending() != 4 || e.GateClosed != 1 {
		t.Fatalf("closed gate must suppress the second trigger: pending=%d gateClosed=%d",
			e.Pending(), e.GateClosed)
	}
}

func TestOverflowEvictsOldest(t *testing.T) {
	e := New(Config{ListSize: 4}, 64)
	e.Train(0, 100, addr(5, 0), 0) // fills the list with lines 101..104
	e.Train(0, 200, addr(6, 0), 1) // four more: the first four must be shed
	if e.Pending() != 4 || e.DroppedOverflow != 4 {
		t.Fatalf("pending=%d droppedOverflow=%d, want 4/4", e.Pending(), e.DroppedOverflow)
	}
	for _, c := range e.list {
		if c.Line < 201 || c.Line > 204 {
			t.Fatalf("stale line %d survived overflow", c.Line)
		}
	}
	if len(e.have) != 4 {
		t.Fatalf("dedupe index out of sync after overflow: %d entries", len(e.have))
	}
}

func TestTakeHonorsAcceptAndStaleness(t *testing.T) {
	e := New(Config{MaxAge: 100}, 64)
	e.Train(0, 100, addr(5, 0), 0)
	e.Train(0, 200, addr(9, 0), 50)

	// Only the second trigger's bank row is acceptable.
	c, ok := e.Take(60, func(a dram.Address) bool { return a.Row == 9 })
	if !ok || c.Line != 201 {
		t.Fatalf("Take skipped to the acceptable row: ok=%v line=%d", ok, c.Line)
	}
	// Past the first trigger's MaxAge, its candidates are shed in the scan.
	c, ok = e.Take(120, func(a dram.Address) bool { return true })
	if !ok || c.Line != 202 {
		t.Fatalf("stale candidates must be skipped: ok=%v line=%d", ok, c.Line)
	}
	if e.DroppedStale != 4 {
		t.Fatalf("DroppedStale = %d, want the 4 born-at-0 leftovers", e.DroppedStale)
	}
	if _, ok := e.Take(120, func(a dram.Address) bool { return false }); ok {
		t.Fatal("no acceptable candidate must return ok=false")
	}
}

func TestPressureDropsWholeList(t *testing.T) {
	e := New(Config{}, 64)
	e.Train(0, 100, addr(5, 0), 0)
	if !e.PressureAt(33, 64) || e.PressureAt(32, 64) {
		t.Fatal("PressureAt must trip strictly above half the buffer")
	}
	if n := e.DropPressure(); n != 4 || e.Pending() != 0 || len(e.have) != 0 {
		t.Fatalf("DropPressure shed %d, pending=%d have=%d", n, e.Pending(), len(e.have))
	}
	// The list accepts the same lines again after the drop.
	e.Train(0, 100, addr(5, 0), 1)
	if e.Pending() != 4 {
		t.Fatalf("list must refill after a pressure drop, got %d", e.Pending())
	}
}

// TestAccountingPartition checks the pipeline identity on a random
// workload: every admitted candidate is issued, dropped, or still
// pending, and the dedupe index always mirrors the list.
func TestAccountingPartition(t *testing.T) {
	e := New(Config{ListSize: 16, MaxAge: 50}, 64)
	r := rand.New(rand.NewSource(3))
	now := uint64(0)
	for i := 0; i < 5000; i++ {
		now += uint64(r.Intn(20))
		switch r.Intn(4) {
		case 0, 1:
			e.Train(r.Intn(4), uint64(r.Intn(4096)), addr(uint64(r.Intn(8)), uint64(r.Intn(64))), now)
		case 2:
			e.Take(now, func(a dram.Address) bool { return a.Bank == 2 && r.Intn(2) == 0 })
		case 3:
			if r.Intn(8) == 0 {
				e.DropPressure()
			}
		}
		if len(e.have) > e.Pending() {
			t.Fatalf("step %d: dedupe index larger than list", i)
		}
	}
	acct := e.Issued + e.DroppedOverflow + e.DroppedStale + e.DroppedPressure + uint64(e.Pending())
	if acct != e.Enqueued {
		t.Fatalf("admitted-candidate partition broken: issued+dropped+pending=%d, enqueued=%d",
			acct, e.Enqueued)
	}
	count := 0
	for _, c := range e.list {
		if e.have[c.Line] <= 0 {
			t.Fatalf("listed line %d missing from dedupe index", c.Line)
		}
		count++
	}
	if count != e.Pending() {
		t.Fatal("list/index mismatch")
	}
}

func BenchmarkMemSidePF(b *testing.B) {
	e := New(Config{}, 64)
	e.SetGate(func() bool { return true })
	e.SetFilter(func(core int, line uint64) bool { return line%7 == 0 })
	r := rand.New(rand.NewSource(1))
	rows := make([]uint64, 1024)
	cols := make([]uint64, 1024)
	lines := make([]uint64, 1024)
	for i := range rows {
		rows[i] = uint64(r.Intn(64))
		cols[i] = uint64(r.Intn(64))
		lines[i] = rows[i]*64 + cols[i]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(rows)
		e.Train(j&3, lines[j], addr(rows[j], cols[j]), uint64(i))
		if i%4 == 3 {
			e.Take(uint64(i), func(a dram.Address) bool { return a.Row&1 == 0 })
		}
	}
}
