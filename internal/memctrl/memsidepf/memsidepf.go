// Package memsidepf implements a DROPLET-style memory-side prefetch
// path: each controller owns a bounded list of prefetch candidates
// generated from the demand stream it actually sees, and drains that
// list only into idle row-buffer-hit windows — an open row, a ready
// bank, an empty bucket — so memory-side prefetches ride the locality
// the demands already paid for and never contend for a row activation.
//
// The engine is deliberately dumb about policy: the controller decides
// when a window is idle, the simulator supplies the cache/MSHR dedupe
// filter and the PADC accuracy gate, and pressure is handled by
// dropping the whole candidate list the moment demand occupancy climbs
// — a memory-side prefetch is the cheapest request to sacrifice.
package memsidepf

import "padc/internal/dram"

// Config sizes the memory-side prefetch engine.
type Config struct {
	// ListSize bounds the candidate list; the oldest candidate is
	// dropped when a new one arrives at a full list.
	ListSize int
	// Degree is how many next lines of the triggering demand's DRAM row
	// are generated per demand (never crossing the row boundary, so
	// every candidate is a potential row hit at the same bank).
	Degree int
	// MaxAge drops candidates that waited longer than this many cycles
	// for an idle window: the open row that motivated them is long gone.
	MaxAge uint64
	// PressureFrac is the demand-occupancy fraction of the controller's
	// buffer at which the whole candidate list is dropped.
	PressureFrac float64
}

// DefaultConfig returns the DROPLET-flavored defaults: a 128-entry
// list, degree 4, a 10k-cycle staleness bound, and list drop once
// demands fill half the request buffer.
func DefaultConfig() Config {
	return Config{ListSize: 128, Degree: 4, MaxAge: 10_000, PressureFrac: 0.5}
}

// Candidate is one pending memory-side prefetch: the line to fetch, its
// DRAM coordinates, the core whose demand generated it (the L2 the fill
// targets), and its birth cycle for staleness.
type Candidate struct {
	Core int
	Line uint64
	Addr dram.Address
	Born uint64
}

// Engine is one controller's memory-side prefetch state.
type Engine struct {
	cfg    Config
	lpr    uint64 // lines per DRAM row
	list   []Candidate
	have   map[uint64]int // line -> count in list (dedupe)
	filter func(core int, line uint64) bool
	gate   func() bool

	// Counters. Generated counts candidate lines proposed, Enqueued the
	// ones admitted to the list, Issued the ones handed to the
	// controller for DRAM; the Dropped* family partitions every admitted
	// candidate that never issued, and Filtered counts proposals the
	// dedupe filter rejected before admission.
	Generated       uint64
	Enqueued        uint64
	Issued          uint64
	Filtered        uint64
	DroppedOverflow uint64
	DroppedStale    uint64
	DroppedPressure uint64
	// GateClosed counts demand triggers suppressed whole by the PADC
	// accuracy gate (low measured memory-side accuracy).
	GateClosed uint64
}

// New builds an engine for one controller; linesPerRow is its channel's
// dram.Config.LinesPerRow(). Zero config fields fall back to
// DefaultConfig.
func New(cfg Config, linesPerRow uint64) *Engine {
	def := DefaultConfig()
	if cfg.ListSize <= 0 {
		cfg.ListSize = def.ListSize
	}
	if cfg.Degree <= 0 {
		cfg.Degree = def.Degree
	}
	if cfg.MaxAge == 0 {
		cfg.MaxAge = def.MaxAge
	}
	if cfg.PressureFrac == 0 {
		cfg.PressureFrac = def.PressureFrac
	}
	if linesPerRow == 0 {
		linesPerRow = 1
	}
	return &Engine{
		cfg:  cfg,
		lpr:  linesPerRow,
		list: make([]Candidate, 0, cfg.ListSize),
		have: make(map[uint64]int, cfg.ListSize),
	}
}

// Config returns the resolved configuration.
func (e *Engine) Config() Config { return e.cfg }

// SetFilter installs the dedupe predicate: true means the line is
// already cached or in flight for that core and must not be fetched
// again. The simulator wires this to its L2 + MSHR state.
func (e *Engine) SetFilter(f func(core int, line uint64) bool) { e.filter = f }

// SetGate installs the accuracy gate consulted once per demand trigger:
// false suppresses candidate generation entirely. The simulator wires
// this to the per-tier PADC memory-side accuracy estimate.
func (e *Engine) SetGate(g func() bool) { e.gate = g }

// Pending returns the number of buffered candidates.
func (e *Engine) Pending() int { return len(e.list) }

// remove deletes list[i] preserving FIFO order and keeps the dedupe
// index in sync.
func (e *Engine) remove(i int) Candidate {
	c := e.list[i]
	copy(e.list[i:], e.list[i+1:])
	e.list = e.list[:len(e.list)-1]
	if n := e.have[c.Line] - 1; n <= 0 {
		delete(e.have, c.Line)
	} else {
		e.have[c.Line] = n
	}
	return c
}

// Train observes one demand admitted at the controller and generates up
// to Degree candidates for the next lines of the same DRAM row. Both the
// global address map and topology steering interleave at row
// granularity, so a same-row neighbor provably shares the demand's
// channel, bank, and row: its address is the trigger's with the column
// advanced, no re-mapping needed — and each candidate is a row hit while
// that row stays open.
func (e *Engine) Train(core int, line uint64, addr dram.Address, now uint64) {
	if e.gate != nil && !e.gate() {
		e.GateClosed++
		return
	}
	for i := uint64(1); i <= uint64(e.cfg.Degree) && addr.Col+i < e.lpr; i++ {
		cand := line + i
		e.Generated++
		if e.have[cand] > 0 {
			continue // already queued
		}
		if e.filter != nil && e.filter(core, cand) {
			e.Filtered++
			continue
		}
		if len(e.list) >= e.cfg.ListSize {
			e.remove(0)
			e.DroppedOverflow++
		}
		a := addr
		a.Col += i
		e.list = append(e.list, Candidate{Core: core, Line: cand, Addr: a, Born: now})
		e.have[cand]++
		e.Enqueued++
	}
}

// Take returns the oldest still-fresh candidate whose DRAM coordinates
// the controller accepts (idle bank, matching open row), removing it
// from the list; ok=false when no candidate qualifies. Stale candidates
// encountered during the scan are dropped as a side effect.
func (e *Engine) Take(now uint64, accept func(a dram.Address) bool) (Candidate, bool) {
	for i := 0; i < len(e.list); {
		c := e.list[i]
		if now > c.Born+e.cfg.MaxAge {
			e.remove(i)
			e.DroppedStale++
			continue
		}
		if accept(c.Addr) {
			e.remove(i)
			e.Issued++
			return c, true
		}
		i++
	}
	return Candidate{}, false
}

// DropPressure empties the candidate list (demand occupancy crossed the
// pressure threshold) and returns how many candidates were shed.
func (e *Engine) DropPressure() int {
	n := len(e.list)
	e.list = e.list[:0]
	for k := range e.have {
		delete(e.have, k)
	}
	e.DroppedPressure += uint64(n)
	return n
}

// PressureAt reports whether a demand occupancy of demands out of
// capacity buffer slots crosses the drop threshold.
func (e *Engine) PressureAt(demands, capacity int) bool {
	return float64(demands) > e.cfg.PressureFrac*float64(capacity)
}
