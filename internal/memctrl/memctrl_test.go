package memctrl

import (
	"testing"

	"padc/internal/dram"
	"padc/internal/telemetry"
)

// fixedState drives the APS predicates in tests.
type fixedState struct {
	critical map[int]bool
	urgency  bool
}

func (s fixedState) PrefetchCritical(core int) bool { return s.critical[core] }
func (s fixedState) UrgencyEnabled() bool           { return s.urgency }

func oneBank() *dram.Channel {
	cfg := dram.DefaultConfig()
	cfg.Banks = 1
	return dram.NewChannel(cfg)
}

func req(core int, line uint64, row uint64, prefetch bool) *Request {
	return &Request{
		Core: core, Line: line,
		Addr:     dram.Address{Bank: 0, Row: row},
		Prefetch: prefetch, WasPref: prefetch,
	}
}

// drain ticks until all enqueued requests complete, recording completion order.
func drain(c *Controller, n int) []*Request {
	var order []*Request
	for now := uint64(1); now < 1_000_000 && len(order) < n; now++ {
		order = append(order, c.Tick(now, 8)...)
	}
	return order
}

func TestEnqueueCapacity(t *testing.T) {
	c := New(DemandFirst, oneBank(), 2, nil)
	if !c.Enqueue(req(0, 1, 1, false)) || !c.Enqueue(req(0, 2, 1, false)) {
		t.Fatal("enqueue failed below capacity")
	}
	if c.Enqueue(req(0, 3, 1, false)) {
		t.Fatal("enqueue above capacity succeeded")
	}
	if !c.Full() || c.Occupancy() != 2 || c.RejectsFull != 1 {
		t.Fatalf("full=%v occ=%d rejects=%d", c.Full(), c.Occupancy(), c.RejectsFull)
	}
}

func TestDemandFirstPriority(t *testing.T) {
	c := New(DemandFirst, oneBank(), 16, nil)
	p := req(0, 1, 5, true)
	d := req(0, 2, 9, false)
	c.Enqueue(p) // older prefetch
	c.Enqueue(d) // younger demand
	order := drain(c, 2)
	if order[0] != d {
		t.Fatal("demand-first must service the demand before the older prefetch")
	}
}

func TestDemandPrefEqualIsRowHitFirst(t *testing.T) {
	ch := oneBank()
	ch.Banks[0].OpenRow = 5
	c := New(DemandPrefEqual, ch, 16, nil)
	d := req(0, 1, 9, false) // older row-conflict demand
	p := req(0, 2, 5, true)  // younger row-hit prefetch
	c.Enqueue(d)
	c.Enqueue(p)
	order := drain(c, 2)
	if order[0] != p {
		t.Fatal("FR-FCFS must service the row-hit prefetch first")
	}
}

func TestPrefetchFirstPriority(t *testing.T) {
	c := New(PrefetchFirst, oneBank(), 16, nil)
	d := req(0, 1, 5, false)
	p := req(0, 2, 9, true)
	c.Enqueue(d)
	c.Enqueue(p)
	if order := drain(c, 2); order[0] != p {
		t.Fatal("prefetch-first must service the prefetch first")
	}
}

func TestAPSCriticalPromotion(t *testing.T) {
	// Core 0's prefetches are critical (accurate); core 1's are not.
	st := fixedState{critical: map[int]bool{0: true, 1: false}, urgency: true}
	c := New(APS, oneBank(), 16, st)
	junk := req(1, 1, 5, true)   // inaccurate core's prefetch (older)
	useful := req(0, 2, 9, true) // accurate core's prefetch (younger)
	c.Enqueue(junk)
	c.Enqueue(useful)
	if order := drain(c, 2); order[0] != useful {
		t.Fatal("APS must service the critical prefetch before the non-critical one")
	}
}

func TestAPSUrgencyBreaksTies(t *testing.T) {
	st := fixedState{critical: map[int]bool{0: true, 1: false}, urgency: true}
	c := New(APS, oneBank(), 16, st)
	// Same row state (both conflicts), both critical: core 0's demand vs
	// core 1's (urgent) demand; the urgent one wins despite arriving later.
	d0 := req(0, 1, 5, false)
	d1 := req(1, 2, 9, false)
	c.Enqueue(d0)
	c.Enqueue(d1)
	if order := drain(c, 2); order[0] != d1 {
		t.Fatal("urgent demand should win the tie")
	}

	// With urgency disabled, FCFS decides.
	st.urgency = false
	c2 := New(APS, oneBank(), 16, st)
	d0b := req(0, 1, 5, false)
	d1b := req(1, 2, 9, false)
	c2.Enqueue(d0b)
	c2.Enqueue(d1b)
	if order := drain(c2, 2); order[0] != d0b {
		t.Fatal("without urgency the older request should win")
	}
}

func TestAPSRankPrefersShortJobs(t *testing.T) {
	st := fixedState{critical: map[int]bool{0: false, 1: false}, urgency: false}
	c := New(APSRank, oneBank(), 16, st)
	// Core 0 has three outstanding demands, core 1 has one. At equal
	// criticality/row state, core 1 (fewer critical requests) ranks higher
	// even though its request is younger.
	c.Enqueue(req(0, 1, 5, false))
	c.Enqueue(req(0, 2, 6, false))
	c.Enqueue(req(0, 3, 7, false))
	short := req(1, 4, 8, false)
	c.Enqueue(short)
	if order := drain(c, 4); order[0] != short {
		t.Fatal("ranking should service the shortest job's request first")
	}
}

func TestMatchPrefetchPromotes(t *testing.T) {
	c := New(DemandFirst, oneBank(), 16, nil)
	p := req(3, 42, 5, true)
	c.Enqueue(p)
	got := c.MatchPrefetch(3, 42, 17)
	if got != p || p.Prefetch {
		t.Fatal("promotion failed")
	}
	if p.PromotedAt != 17 {
		t.Fatalf("PromotedAt = %d, want the promotion cycle 17", p.PromotedAt)
	}
	if c.MatchPrefetch(3, 42, 18) != nil {
		t.Fatal("double promotion")
	}
	if c.MatchPrefetch(2, 42, 19) != nil {
		t.Fatal("cross-core promotion")
	}
}

func TestDropExpired(t *testing.T) {
	c := New(APS, oneBank(), 16, fixedState{critical: map[int]bool{}})
	old := req(0, 1, 5, true)
	old.Arrival = 0
	young := req(0, 2, 6, true)
	young.Arrival = 990
	dem := req(0, 3, 7, false)
	dem.Arrival = 0
	c.Enqueue(old)
	c.Enqueue(young)
	c.Enqueue(dem)
	dropped := c.DropExpired(1000, func(*Request) uint64 { return 100 })
	if len(dropped) != 1 || dropped[0] != old {
		t.Fatalf("should drop exactly the old prefetch, got %v", dropped)
	}
	if c.Pending() != 2 || c.Dropped != 1 {
		t.Fatalf("pending=%d dropped=%d", c.Pending(), c.Dropped)
	}
}

// TestAgeClampsBeforeArrival is the regression test for the latent
// underflow: aging a request before its arrival cycle used to wrap
// now - Arrival around to ~2^64, making APD drop freshly queued
// prefetches whose arrival raced ahead of the drop scan's cycle.
func TestAgeClampsBeforeArrival(t *testing.T) {
	r := req(0, 1, 5, true)
	r.Arrival = 100
	if got := r.Age(50); got != 0 {
		t.Fatalf("Age before arrival = %d, want 0 (underflow)", got)
	}
	if got := r.Age(100); got != 0 {
		t.Fatalf("Age at arrival = %d, want 0", got)
	}
	if got := r.Age(130); got != 30 {
		t.Fatalf("Age after arrival = %d, want 30", got)
	}

	// End to end: a drop scan at a cycle preceding the arrival must not
	// treat the request as ancient.
	c := New(APS, oneBank(), 16, fixedState{critical: map[int]bool{}})
	c.Enqueue(r)
	if dropped := c.DropExpired(50, func(*Request) uint64 { return 100 }); len(dropped) != 0 {
		t.Fatalf("drop scan before arrival dropped %d requests", len(dropped))
	}
}

func TestDropExpiredSkipsInflightAndDemands(t *testing.T) {
	c := New(APS, oneBank(), 16, fixedState{critical: map[int]bool{}})
	inflight := req(0, 1, 5, true)
	inflight.Arrival = 0
	c.Enqueue(inflight)
	// Issue the lone prefetch so it is in flight, then queue an old
	// demand and run a drop scan with a threshold everything exceeds.
	c.Tick(1, 8)
	if len(c.inflight) != 1 {
		t.Fatal("setup: prefetch did not go in flight")
	}
	dem := req(0, 2, 6, false)
	dem.Arrival = 0
	c.Enqueue(dem)
	dropped := c.DropExpired(1_000_000, func(*Request) uint64 { return 1 })
	if len(dropped) != 0 {
		t.Fatalf("dropped %d requests; in-flight prefetches and demands must survive", len(dropped))
	}
	if c.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0", c.Dropped)
	}
}

func TestDropExpiredRespectsPerCoreThresholds(t *testing.T) {
	c := New(APS, oneBank(), 16, fixedState{critical: map[int]bool{}})
	inaccurate := req(0, 1, 5, true) // core 0: tight threshold
	accurate := req(1, 2, 6, true)   // core 1: generous threshold
	c.Enqueue(inaccurate)
	c.Enqueue(accurate)
	thr := func(r *Request) uint64 {
		if r.Core == 0 {
			return 100
		}
		return 100_000
	}
	dropped := c.DropExpired(1_000, thr)
	if len(dropped) != 1 || dropped[0] != inaccurate {
		t.Fatalf("per-core thresholds: dropped %v, want only core 0's prefetch", dropped)
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", c.Pending())
	}
}

func TestDropExpiredEmitsOneEventPerDrop(t *testing.T) {
	tel := telemetry.New(telemetry.Options{})
	c := New(APS, oneBank(), 16, fixedState{critical: map[int]bool{}})
	c.Instrument(tel, 0)
	for i := uint64(1); i <= 3; i++ {
		c.Enqueue(req(0, i, i, true))
	}
	survivor := req(1, 9, 9, true)
	survivor.Arrival = 999
	c.Enqueue(survivor)

	dropped := c.DropExpired(1_000, func(r *Request) uint64 {
		if r.Core == 0 {
			return 10
		}
		return 100_000
	})
	if len(dropped) != 3 {
		t.Fatalf("dropped %d, want 3", len(dropped))
	}
	var drops int
	for _, ev := range tel.Events() {
		if ev.Kind == telemetry.EvDrop {
			drops++
			if ev.Core != 0 || !ev.Pref || ev.Cycle != 1_000 {
				t.Fatalf("malformed drop event: %+v", ev)
			}
		}
	}
	if drops != 3 {
		t.Fatalf("telemetry recorded %d drop events, want exactly one per drop (3)", drops)
	}
	if v, ok := tel.Value("memctrl0/drops"); !ok || v != 3 {
		t.Fatalf("memctrl0/drops = %v,%v; want 3", v, ok)
	}
}

func TestRowHitBeatsConflictWithinClass(t *testing.T) {
	ch := oneBank()
	ch.Banks[0].OpenRow = 7
	c := New(DemandFirst, ch, 16, nil)
	conflict := req(0, 1, 5, false)
	hit := req(0, 2, 7, false)
	c.Enqueue(conflict)
	c.Enqueue(hit)
	if order := drain(c, 2); order[0] != hit {
		t.Fatal("row-hit demand should beat older row-conflict demand")
	}
}

func TestBankParallelism(t *testing.T) {
	cfg := dram.DefaultConfig()
	cfg.Banks = 2
	ch := dram.NewChannel(cfg)
	c := New(DemandFirst, ch, 16, nil)
	a := &Request{Core: 0, Line: 1, Addr: dram.Address{Bank: 0, Row: 1}}
	b := &Request{Core: 0, Line: 2, Addr: dram.Address{Bank: 1, Row: 1}}
	c.Enqueue(a)
	c.Enqueue(b)
	order := drain(c, 2)
	// Both must issue the same tick; completions differ only by the burst.
	if d := order[1].FinishAt - order[0].FinishAt; d != cfg.Timing.Burst {
		t.Fatalf("banks should overlap, completions %d and %d", order[0].FinishAt, order[1].FinishAt)
	}
}

func TestServiceRecordsRowState(t *testing.T) {
	c := New(DemandFirst, oneBank(), 16, nil)
	r := req(0, 1, 5, false)
	c.Enqueue(r)
	drain(c, 1)
	if r.RowState != dram.RowClosed || r.IssueHit {
		t.Fatalf("first access should record row-closed: %+v", r)
	}
	if c.Serviced != 1 {
		t.Fatalf("serviced=%d", c.Serviced)
	}
}
