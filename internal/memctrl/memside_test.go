package memctrl

import (
	"testing"

	"padc/internal/dram"
	"padc/internal/memctrl/memsidepf"
)

// memsideCtrl builds a one-bank controller with an attached memory-side
// engine and the bank's row 5 held open.
func memsideCtrl(slots int) (*Controller, *memsidepf.Engine) {
	ch := oneBank()
	ch.Banks[0].OpenRow = 5
	c := New(DemandPrefEqual, ch, slots, nil)
	eng := memsidepf.New(memsidepf.Config{}, 64)
	c.AttachMemSide(eng)
	return c, eng
}

func TestMemSideAdmitsIntoIdleRowHitWindow(t *testing.T) {
	c, eng := memsideCtrl(16)
	eng.Train(3, 100, dram.Address{Bank: 0, Row: 5, Col: 0}, 1)
	if !c.NeedsIdleTick() {
		t.Fatal("pending candidates must force idle ticks")
	}
	if next := c.NextEvent(1); next != 2 {
		t.Fatalf("NextEvent with pending candidates = %d, want now+1", next)
	}

	// One candidate is admitted per idle tick, each a row hit.
	c.Tick(2, 8)
	if c.Occupancy() != 1 || eng.Issued != 1 {
		t.Fatalf("occupancy=%d issued=%d after one idle tick, want 1/1", c.Occupancy(), eng.Issued)
	}
	if !c.HasPrefetches() {
		t.Fatal("a buffered memory-side prefetch must arm the APD scan")
	}

	done := drain(c, 4)
	for _, r := range done {
		if !r.MemSide || !r.Prefetch || !r.WasPref || r.Core != 3 {
			t.Fatalf("completed request misclassified: %+v", r)
		}
		if r.RowState != dram.RowHit {
			t.Fatalf("memory-side prefetch must issue as a row hit, got %v", r.RowState)
		}
	}
	if len(done) != 4 || eng.Issued != 4 {
		t.Fatalf("all 4 candidates should drain: done=%d issued=%d", len(done), eng.Issued)
	}
	if c.HasPrefetches() || c.Occupancy() != 0 {
		t.Fatal("drained controller still reports memory-side work")
	}
}

func TestMemSideRejectsClosedRowAndBusyBank(t *testing.T) {
	c, eng := memsideCtrl(16)
	// Row 9 does not match the open row: never admitted.
	eng.Train(0, 200, dram.Address{Bank: 0, Row: 9, Col: 0}, 1)
	for now := uint64(2); now < 10; now++ {
		c.Tick(now, 8)
	}
	if eng.Issued != 0 || c.Occupancy() != 0 {
		t.Fatalf("row-conflict candidate admitted: issued=%d occ=%d", eng.Issued, c.Occupancy())
	}

	// A waiting demand occupies the bank's bucket: the window is not idle.
	if !c.Enqueue(req(0, 1, 5, false)) {
		t.Fatal("demand enqueue failed")
	}
	eng.Train(0, 300, dram.Address{Bank: 0, Row: 5, Col: 0}, 10)
	c.Tick(11, 8) // demand wins the bank; no admission this tick
	if eng.Issued != 0 {
		t.Fatal("memory-side prefetch admitted into a contended bank")
	}
}

func TestMemSidePressureDropsList(t *testing.T) {
	c, eng := memsideCtrl(4)
	eng.Train(0, 100, dram.Address{Bank: 0, Row: 5, Col: 0}, 1)
	// Three demands out of four slots crosses the 0.5 pressure fraction.
	for i := uint64(0); i < 3; i++ {
		if !c.Enqueue(req(0, 10+i, 7, false)) {
			t.Fatal("demand enqueue failed")
		}
	}
	// The demands themselves train more candidates on admission; whatever
	// is queued when pressure trips must all be shed.
	queued := uint64(eng.Pending())
	before := c.Dropped
	c.Tick(2, 8)
	if eng.DroppedPressure < queued || eng.Pending() != 0 {
		t.Fatalf("pressure must shed the whole list: droppedPressure=%d pending=%d",
			eng.DroppedPressure, eng.Pending())
	}
	if c.Dropped != before+eng.DroppedPressure {
		t.Fatalf("controller drop counter = %d, want +%d", c.Dropped, eng.DroppedPressure)
	}
	if eng.Issued != 0 {
		t.Fatal("no candidate may issue on a pressure tick")
	}
}

func TestMemSideDropExpiredUsesOwnThreshold(t *testing.T) {
	c, _ := memsideCtrl(16)
	// A waiting memory-side prefetch (as memsidePass admits them) next to
	// a waiting core prefetch.
	if !c.Enqueue(&Request{
		Core: 2, Line: 100, Addr: dram.Address{Bank: 0, Row: 5, Col: 1},
		Prefetch: true, WasPref: true, MemSide: true, Arrival: 1,
	}) {
		t.Fatal("memory-side enqueue failed")
	}
	if !c.Enqueue(req(0, 50, 5, true)) {
		t.Fatal("core prefetch enqueue failed")
	}

	// Memory-side requests age against a 10-cycle limit, core prefetches
	// against 1000: only the memory-side request is shed.
	dropped := c.DropExpired(100, func(r *Request) uint64 {
		if r.MemSide {
			return 10
		}
		return 1000
	})
	if len(dropped) != 1 || !dropped[0].MemSide {
		t.Fatalf("expected exactly the memory-side request dropped, got %v", dropped)
	}
	if c.HasPrefetches() != true {
		t.Fatal("the core-side prefetch is still buffered")
	}
	c2 := c.Occupancy()
	if c2 != 1 {
		t.Fatalf("occupancy after drop = %d, want the surviving core prefetch", c2)
	}
}
