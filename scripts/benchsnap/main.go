// Command benchsnap records the performance-tracking benchmarks into a
// checked-in JSON snapshot (BENCH_sweep.json at the repo root). It runs
// `go test -bench` as subprocesses — one per package so the benchmarks
// see an idle machine — parses the standard benchmark output, and writes
// one JSON document with the environment (Go version, GOMAXPROCS) and
// every sub-benchmark's ns/op, B/op and allocs/op.
//
// The snapshot is a reviewable record, not a regression gate: numbers
// move with hardware, so CI re-runs the benchmarks in smoke mode instead
// of diffing the file. Refresh it after perf-relevant changes with:
//
//	make bench-snapshot
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// targets are the benchmarks the snapshot tracks: the parallel sweep
// engine (wall-clock scaling) and the memory-controller scheduler hot
// path (per-tick cost across policies and buffer depths).
var targets = []struct {
	pkg   string
	bench string
}{
	{"./internal/runner", "^BenchmarkSweepParallel$"},
	{"./internal/memctrl", "^BenchmarkControllerTick$"},
}

type entry struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int    `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int    `json:"allocs_per_op,omitempty"`
}

type snapshot struct {
	Go         string  `json:"go"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Benchtime  string  `json:"benchtime"`
	Benchmarks []entry `json:"benchmarks"`
}

// benchLine matches one line of `go test -bench` output, e.g.
//
//	BenchmarkControllerTick/policy=aps/depth=64-8   1201  987.4 ns/op  12 B/op  1 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_sweep.json", "snapshot file to write")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime per sub-benchmark")
	flag.Parse()

	snap := snapshot{
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  *benchtime,
	}
	for _, tgt := range targets {
		entries, err := run(tgt.pkg, tgt.bench, *benchtime)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		snap.Benchmarks = append(snap.Benchmarks, entries...)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchsnap: no benchmark lines parsed")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	fmt.Printf("benchsnap: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}

// run executes one package's benchmarks and parses the output lines.
func run(pkg, bench, benchtime string) ([]entry, error) {
	fmt.Fprintf(os.Stderr, "benchsnap: go test -bench %s %s\n", bench, pkg)
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", bench,
		"-benchtime", benchtime, "-benchmem", pkg)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("%s: %w\n%s", pkg, err, buf.String())
	}
	var entries []entry
	for _, line := range strings.Split(buf.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: parsing %q: %w", pkg, line, err)
		}
		e := entry{Package: strings.TrimPrefix(pkg, "./"), Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			b, _ := strconv.Atoi(m[4])
			e.BytesPerOp = &b
		}
		if m[5] != "" {
			a, _ := strconv.Atoi(m[5])
			e.AllocsPerOp = &a
		}
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines in output:\n%s", pkg, buf.String())
	}
	return entries, nil
}
