// Command benchsnap records the performance-tracking benchmarks into a
// checked-in JSON history (BENCH_sweep.json at the repo root). It runs
// `go test -bench` as subprocesses — one per package so the benchmarks
// see an idle machine — parses the standard benchmark output, and
// appends one timestamped snapshot (environment plus every
// sub-benchmark's ns/op, B/op and allocs/op) to the history array. A
// pre-history single-snapshot file is migrated in place: it becomes the
// first entry of the array.
//
// With -compare, no benchmarks run: the last two snapshots in the
// history are diffed per (package, benchmark), the ns/op deltas are
// printed, and the command exits non-zero if any benchmark regressed by
// more than -threshold (default 20%). Numbers move with hardware, so
// the comparison is meaningful between snapshots taken on the same
// machine — `make bench-compare` after `make bench-snapshot` on a
// perf-relevant change is the intended loop:
//
//	make bench-snapshot   # append a snapshot
//	make bench-compare    # diff the last two, fail on >20% regression
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// targets are the benchmarks the snapshot tracks: the parallel sweep
// engine (wall-clock scaling), the memory-controller scheduler hot path
// (per-tick cost across policies and buffer depths), the whole-system
// run loop under both kernels (the stepped/events pair pins the event
// kernel's speedup on stall-heavy workloads), and the prefetch subsystem
// hot paths (DSPatch's per-access Observe and the memory-side candidate
// list's train/take cycle, both on the controller tick path).
var targets = []struct {
	pkg   string
	bench string
}{
	{"./internal/runner", "^BenchmarkSweepParallel$"},
	{"./internal/memctrl", "^BenchmarkControllerTick$"},
	{"./internal/sim", "^BenchmarkSystemRun$"},
	{"./internal/prefetch", "^BenchmarkDSPatch$"},
	{"./internal/memctrl/memsidepf", "^BenchmarkMemSidePF$"},
}

type entry struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int    `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int    `json:"allocs_per_op,omitempty"`
}

type snapshot struct {
	Taken      string  `json:"taken,omitempty"` // RFC3339; absent on migrated pre-history entries
	Go         string  `json:"go"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Benchtime  string  `json:"benchtime"`
	Benchmarks []entry `json:"benchmarks"`
}

// benchLine matches one line of `go test -bench` output, e.g.
//
//	BenchmarkControllerTick/policy=aps/depth=64-8   1201  987.4 ns/op  12 B/op  1 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_sweep.json", "snapshot history file")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime per sub-benchmark")
	compare := flag.Bool("compare", false, "diff the last two snapshots instead of benchmarking")
	threshold := flag.Float64("threshold", 20, "with -compare: fail on ns/op regressions above this percentage")
	keep := flag.Int("keep", 50, "cap the history at this many snapshots (0 = unbounded)")
	flag.Parse()

	if *compare {
		if err := compareLast(*out, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		return
	}
	if err := record(*out, *benchtime, *keep); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}

// loadHistory reads the snapshot history, migrating the pre-history
// single-object format (the file starts with `{`) into a one-entry
// array. A missing file is an empty history.
func loadHistory(path string) ([]snapshot, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, nil
	}
	if trimmed[0] == '{' {
		var single snapshot
		if err := json.Unmarshal(data, &single); err != nil {
			return nil, fmt.Errorf("migrating single-snapshot %s: %w", path, err)
		}
		return []snapshot{single}, nil
	}
	var hist []snapshot
	if err := json.Unmarshal(data, &hist); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return hist, nil
}

func writeHistory(path string, hist []snapshot) error {
	data, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// record runs the target benchmarks and appends one snapshot.
func record(path, benchtime string, keep int) error {
	snap := snapshot{
		Taken:      time.Now().UTC().Format(time.RFC3339),
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  benchtime,
	}
	for _, tgt := range targets {
		entries, err := run(tgt.pkg, tgt.bench, benchtime)
		if err != nil {
			return err
		}
		snap.Benchmarks = append(snap.Benchmarks, entries...)
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines parsed")
	}

	hist, err := loadHistory(path)
	if err != nil {
		return err
	}
	hist = append(hist, snap)
	if keep > 0 && len(hist) > keep {
		hist = hist[len(hist)-keep:]
	}
	if err := writeHistory(path, hist); err != nil {
		return err
	}
	fmt.Printf("benchsnap: appended %d benchmarks to %s (%d snapshots)\n",
		len(snap.Benchmarks), path, len(hist))
	return nil
}

// compareLast diffs the last two snapshots per (package, benchmark) and
// fails on any ns/op regression above thresholdPct. Fewer than two
// snapshots is a pass: there is nothing to regress against yet.
func compareLast(path string, thresholdPct float64) error {
	hist, err := loadHistory(path)
	if err != nil {
		return err
	}
	if len(hist) < 2 {
		fmt.Printf("benchsnap: %d snapshot(s) in %s — nothing to compare\n", len(hist), path)
		return nil
	}
	prev, cur := hist[len(hist)-2], hist[len(hist)-1]
	key := func(e entry) string { return e.Package + " " + e.Name }
	base := make(map[string]entry, len(prev.Benchmarks))
	for _, e := range prev.Benchmarks {
		base[key(e)] = e
	}

	fmt.Printf("benchsnap: comparing %s -> %s (threshold %.0f%%)\n",
		orUnstamped(prev.Taken), orUnstamped(cur.Taken), thresholdPct)
	if prev.GOOS != cur.GOOS || prev.GOARCH != cur.GOARCH || prev.GOMAXPROCS != cur.GOMAXPROCS {
		fmt.Printf("benchsnap: WARNING: environments differ (%s/%s/%d vs %s/%s/%d) — deltas are indicative only\n",
			prev.GOOS, prev.GOARCH, prev.GOMAXPROCS, cur.GOOS, cur.GOARCH, cur.GOMAXPROCS)
	}

	var regressed []string
	for _, e := range cur.Benchmarks {
		b, ok := base[key(e)]
		if !ok {
			fmt.Printf("  %-60s %12.1f ns/op  (new)\n", key(e), e.NsPerOp)
			continue
		}
		pct := 0.0
		if b.NsPerOp > 0 {
			pct = (e.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		}
		mark := ""
		if pct > thresholdPct {
			mark = "  REGRESSED"
			regressed = append(regressed, fmt.Sprintf("%s (%+.1f%%)", key(e), pct))
		}
		fmt.Printf("  %-60s %12.1f -> %12.1f ns/op  %+7.1f%%%s\n",
			key(e), b.NsPerOp, e.NsPerOp, pct, mark)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% ns/op: %s",
			len(regressed), thresholdPct, strings.Join(regressed, ", "))
	}
	fmt.Println("benchsnap: no regressions above threshold")
	return nil
}

func orUnstamped(taken string) string {
	if taken == "" {
		return "(unstamped)"
	}
	return taken
}

// run executes one package's benchmarks and parses the output lines.
func run(pkg, bench, benchtime string) ([]entry, error) {
	fmt.Fprintf(os.Stderr, "benchsnap: go test -bench %s %s\n", bench, pkg)
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", bench,
		"-benchtime", benchtime, "-benchmem", pkg)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("%s: %w\n%s", pkg, err, buf.String())
	}
	var entries []entry
	for _, line := range strings.Split(buf.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: parsing %q: %w", pkg, line, err)
		}
		e := entry{Package: strings.TrimPrefix(pkg, "./"), Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			b, _ := strconv.Atoi(m[4])
			e.BytesPerOp = &b
		}
		if m[5] != "" {
			a, _ := strconv.Atoi(m[5])
			e.AllocsPerOp = &a
		}
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines in output:\n%s", pkg, buf.String())
	}
	return entries, nil
}
