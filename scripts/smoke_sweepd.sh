#!/usr/bin/env bash
# End-to-end smoke for the sweep service: build the real binaries, run a
# campaign against a live padcsweepd over HTTP, SIGKILL the server
# mid-campaign, restart it over the same data directory, and verify the
# resumed campaign's CSV artifact is byte-identical to an uninterrupted
# in-process `padcsim -sweep` run. This is the PR's acceptance criterion
# exercised with real processes and real signals (the in-process variant
# lives in internal/sweepd's resume tests).
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

say() { echo "smoke_sweepd: $*"; }

say "building padcsim and padcsweepd"
go build -o "$tmp/padcsim" ./cmd/padcsim
go build -o "$tmp/padcsweepd" ./cmd/padcsweepd

cat >"$tmp/spec.json" <<'EOF'
{
    "name": "smoke",
    "seed": 7,
    "cores": 2,
    "insts": 8000,
    "policies": ["demand-first", "aps", "padc"],
    "workloads": [["swim", "libquantum"]],
    "mixes": 3
}
EOF

say "golden artifact: in-process padcsim -sweep"
"$tmp/padcsim" -sweep "$tmp/spec.json" -jobs 2 -sweep-csv "$tmp/golden.csv" >/dev/null 2>&1

start_server() {
    rm -f "$tmp/addr"
    "$tmp/padcsweepd" serve -addr 127.0.0.1:0 -data "$tmp/data" -jobs 1 \
        -addr-file "$tmp/addr" >>"$tmp/server.log" 2>&1 &
    pid=$!
    disown "$pid" 2>/dev/null || true # silence the shell's SIGKILL notice
    for _ in $(seq 1 100); do
        [ -s "$tmp/addr" ] && break
        sleep 0.1
    done
    [ -s "$tmp/addr" ] || { say "server never bound"; cat "$tmp/server.log"; exit 1; }
    base="http://$(cat "$tmp/addr")"
    # The listener binds before journal replay; wait on readiness, not
    # liveness — /readyz only turns 200 once replay/resume has finished
    # and the real handler is installed.
    for _ in $(seq 1 100); do
        curl -sf "$base/readyz" >/dev/null && return 0
        sleep 0.1
    done
    say "server never became ready"; cat "$tmp/server.log"; exit 1
}

say "starting padcsweepd"
start_server

say "submitting campaign over HTTP ($base)"
id=$(curl -sf -X POST "$base/api/v1/campaigns" \
    -H 'Content-Type: application/json' \
    -d "{\"spec\": $(cat "$tmp/spec.json"), \"workers\": 1, \"telemetry\": true}" |
    sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$id" ] || { say "submit returned no campaign id"; exit 1; }
say "campaign $id accepted"

# Wait until at least two rows are journaled, then SIGKILL: no signal
# handler runs, no terminal journal event is written — only the
# flushed-per-row journal survives.
for _ in $(seq 1 600); do
    done_count=$(curl -sf "$base/api/v1/campaigns/$id" |
        sed -n 's/.*"done": \([0-9]*\).*/\1/p')
    [ "${done_count:-0}" -ge 2 ] && break
    sleep 0.05
done
[ "${done_count:-0}" -ge 2 ] || { say "campaign made no progress"; cat "$tmp/server.log"; exit 1; }
say "SIGKILL after $done_count journaled rows"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

say "restarting over the same data directory"
start_server

state=""
for _ in $(seq 1 600); do
    state=$(curl -sf "$base/api/v1/campaigns/$id" |
        sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
    [ "$state" = "completed" ] && break
    [ "$state" = "failed" ] || [ "$state" = "cancelled" ] &&
        { say "resumed campaign ended $state"; cat "$tmp/server.log"; exit 1; }
    sleep 0.05
done
[ "$state" = "completed" ] || { say "campaign never completed"; cat "$tmp/server.log"; exit 1; }

# The per-campaign metrics must be on /metrics, alongside the per-route
# RED series the HTTP middleware records. Scrape once into a file: a
# `curl | grep -q` pipeline can flake under pipefail when grep exits at
# the first match and curl takes the SIGPIPE.
curl -sf "$base/metrics" >"$tmp/metrics.txt"
grep -q "padc_sweepd_jobs_done{campaign=\"$id\"}" "$tmp/metrics.txt" ||
    { say "per-campaign metrics missing from /metrics"; exit 1; }
grep -q 'padc_sweepd_http_requests_total{' "$tmp/metrics.txt" ||
    { say "per-route RED metrics missing from /metrics"; exit 1; }

# The telemetry sidecar survived the SIGKILL: one NDJSON roll-up per job,
# each carrying a flight summary.
say "fetching per-job telemetry roll-ups"
rows=$(curl -sf "$base/api/v1/campaigns/$id/telemetry" | grep -c '"flight"')
total=$(curl -sf "$base/api/v1/campaigns/$id" | sed -n 's/.*"total": \([0-9]*\).*/\1/p')
[ "$rows" = "$total" ] ||
    { say "telemetry has $rows flight records, want $total"; exit 1; }

say "fetching the resumed artifact"
curl -sf "$base/api/v1/campaigns/$id/artifact.csv" >"$tmp/resumed.csv"
if ! cmp -s "$tmp/golden.csv" "$tmp/resumed.csv"; then
    say "FAIL: resumed artifact differs from in-process sweep"
    diff "$tmp/golden.csv" "$tmp/resumed.csv" | head -20
    exit 1
fi
say "PASS: post-SIGKILL artifact is byte-identical to padcsim -sweep ($(wc -c <"$tmp/golden.csv") bytes)"
