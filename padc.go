// Package padc is a from-scratch reproduction of "Prefetch-Aware DRAM
// Controllers" (Lee, Mutlu, Narasiman, Patt — MICRO-41, 2008): a
// cycle-level chip-multiprocessor and DDR3 DRAM simulator whose memory
// controller implements the paper's Adaptive Prefetch Scheduling (APS) and
// Adaptive Prefetch Dropping (APD) mechanisms alongside the rigid
// demand-first / demand-prefetch-equal / prefetch-first baselines.
//
// The package is the stable public surface over the internal substrates
// (DRAM, caches, prefetchers, cores, synthetic workloads). Typical use:
//
//	res, err := padc.Run(padc.DefaultSystem(4), []string{"swim", "art", "libquantum", "milc"})
//
// or regenerate any of the paper's figures and tables:
//
//	out, err := padc.Experiment("fig16", false)
package padc

import (
	"fmt"
	"sort"
	"strings"

	"padc/internal/core"
	"padc/internal/cpu"
	"padc/internal/dram"
	"padc/internal/dram/refresh"
	"padc/internal/memctrl"
	"padc/internal/sim"
	"padc/internal/stats"
	"padc/internal/telemetry"
	"padc/internal/telemetry/flight"
	"padc/internal/telemetry/lifecycle"
	"padc/internal/topology"
	"padc/internal/workload"
)

// Policy selects how the memory controller prioritizes demands versus
// prefetches.
type Policy int

const (
	// DemandPrefEqual treats prefetches like demands (plain FR-FCFS).
	DemandPrefEqual Policy = iota
	// DemandFirst always prioritizes demand requests.
	DemandFirst
	// PrefetchFirst always prioritizes prefetch requests.
	PrefetchFirst
	// APS adapts priority to measured per-core prefetch accuracy; with
	// SystemConfig.APD enabled this is the full PADC.
	APS
	// APSRank adds the shortest-job ranking stage (§6.5) to APS.
	APSRank
)

// Prefetcher selects the per-core prefetch engine.
type Prefetcher int

const (
	NoPrefetcher Prefetcher = iota
	Stream                  // POWER4/5-style stream prefetcher (paper baseline)
	Stride                  // PC-based stride
	CDC                     // CZone/Delta-Correlation
	Markov                  // correlation (Markov) prefetcher
	DSPatch                 // dual-spatial-pattern prefetcher (bandwidth-adaptive bias)
)

// Filter optionally wraps the prefetcher with one of the §6.12 comparison
// mechanisms.
type Filter int

const (
	NoFilter Filter = iota
	DDPF            // dynamic data prefetch filtering
	FDP             // feedback-directed prefetching
)

// SystemConfig describes a simulated machine. DefaultSystem returns the
// paper's baseline; zero-valued fields of a hand-built config are invalid.
type SystemConfig struct {
	Cores      int
	Policy     Policy
	Prefetcher Prefetcher
	Filter     Filter

	// Rules, when non-empty, overrides Policy with an explicit scheduling
	// rule stack — "rules:critical,rowhit,urgent,fcfs" — composed from the
	// priority rules in internal/memctrl/sched (critical, rowhit, urgent,
	// demandfirst, prefetchfirst, rank, fcfs). Legacy policy names are
	// accepted as aliases. This is the knob for §6-style priority-order
	// ablations.
	Rules string

	APD     bool // adaptive prefetch dropping (with APS this forms PADC)
	Urgency bool // priority rule 3 (boost demands of inaccurate cores)

	// MemSide enables the DROPLET-style memory-side prefetch path: each
	// memory controller generates same-row next-line candidates from the
	// demand stream it admits and drains them into idle row-hit windows,
	// gated and APD-aged by its tier's memory-side accuracy meter.
	MemSide bool

	Channels    int    // independent memory controllers
	RowBufferKB uint64 // DRAM row-buffer size per bank

	// Topology selects the memory wiring: "" or "flat" (default, one
	// domain holding Channels channels), a named preset such as
	// "far-tier" (near domain at Channels channels plus a one-channel
	// pooled tier behind a 256-cycle link), or an inline JSON topology
	// spec (a string starting with "{"; see internal/topology). Presets
	// are resolved against Channels. TopologyNames lists the presets.
	Topology    string
	L2KB        uint64 // last-level cache per core (or total when SharedL2)
	SharedL2    bool
	ClosedRow   bool
	Permutation bool // permutation-based bank interleaving
	Runahead    bool

	// RefreshMode enables the DRAM maintenance engine: "" or "off"
	// (default, no refresh), "per-bank" (staggered REFpb, tRFCpb per
	// bank), or "all-bank" (rank-wide REF, tRFC across every bank). The
	// engine follows the JEDEC postpone/pull-in credit window (up to 8
	// refreshes either way) with a forced-refresh deadline when credits
	// run out.
	RefreshMode string

	// PagePolicy selects row-buffer management: "" or "open" (default),
	// "closed", or "adaptive" (per-bank keep-open/precharge predictor
	// trained on recent row-buffer outcomes). "closed" is equivalent to
	// the legacy ClosedRow flag.
	PagePolicy string

	TargetInsts uint64 // instructions each core retires before stats freeze

	// Kernel selects the main-loop strategy: "" or "events" (default, the
	// cycle-skipping event kernel) or "stepped" (the cycle-by-cycle
	// reference loop). Both simulate the same machine and produce
	// identical results; "stepped" exists as the differential-testing
	// baseline and as a debugging fallback.
	Kernel string

	// Telemetry, when non-nil, instruments the run: counters, epoch time
	// series and trace events land in it (build one with NewTelemetry and
	// export with its WriteCSV / WriteJSONL / WriteChromeTrace / Summary
	// methods). Nil keeps the simulator on the uninstrumented fast path.
	Telemetry *telemetry.Telemetry

	// Flight, when non-nil, is the bank-state flight recorder: bounded
	// per-epoch × per-bank accounting of row outcomes, open/close
	// transitions, demand/prefetch issues, refresh interference and
	// scheduler rule-win attribution (build one with NewFlightRecorder;
	// export with its WriteCSV / WriteJSONL / ChromeCounters / Summary
	// methods). Nil keeps the hot path at one pointer compare per hook.
	Flight *flight.Recorder

	// Lifecycle, when non-nil, traces every memory request end to end
	// (enqueue, promotion, issue, bus, completion/drop) into per-core
	// queue-wait/service breakdowns and a sampled span reservoir (build
	// one with NewLifecycle; export with its WriteCSV / WriteJSONL /
	// BreakdownTable methods or fold its spans into a Chrome trace).
	Lifecycle *lifecycle.Tracer

	// Profile enables the cycle-accounting profiler: each core cycle is
	// attributed to exactly one bucket (retire, demand-miss, mshr-full,
	// compute, idle) and reported in Result.Cores[i].Attribution.
	Profile bool
}

// NewTelemetry builds a telemetry sink sampling every epochCycles cycles
// (0 disables the epoch series) with the default event-ring capacity.
// Attach it to SystemConfig.Telemetry before Run.
func NewTelemetry(epochCycles uint64) *telemetry.Telemetry {
	return telemetry.New(telemetry.Options{EpochCycles: epochCycles})
}

// NewFlightRecorder builds a bank-state flight recorder rotating every
// epochCycles cycles (0 uses the package default) and retaining the last
// maxEpochs epochs (0 uses the default ring bound). Attach it to
// SystemConfig.Flight before Run; memory stays O(maxEpochs × banks) on
// arbitrarily long runs.
func NewFlightRecorder(epochCycles uint64, maxEpochs int) *flight.Recorder {
	return flight.New(flight.Options{EpochCycles: epochCycles, MaxEpochs: maxEpochs})
}

// NewLifecycle builds a request-lifecycle tracer retaining up to
// reservoirPerCore sampled spans per core (0 uses the default). Attach it
// to SystemConfig.Lifecycle before Run.
func NewLifecycle(reservoirPerCore int) *lifecycle.Tracer {
	return lifecycle.New(lifecycle.Options{ReservoirPerCore: reservoirPerCore})
}

// CycleClassNames returns the cycle-accounting bucket names in the order
// CoreResult.Attribution uses.
func CycleClassNames() []string { return cpu.CycleClassNames() }

// DefaultSystem returns the paper's baseline machine for ncores in
// {1, 2, 4, 8}, running the full PADC (APS + APD + urgency).
func DefaultSystem(ncores int) SystemConfig {
	base := sim.Baseline(ncores)
	return SystemConfig{
		Cores:       ncores,
		Policy:      APS,
		Prefetcher:  Stream,
		APD:         true,
		Urgency:     true,
		Channels:    1,
		RowBufferKB: base.DRAM.RowBytes >> 10,
		L2KB:        base.L2.Bytes >> 10,
		TargetInsts: base.TargetInsts,
	}
}

// toSim lowers the public config onto the internal simulator config.
func (c SystemConfig) toSim() (sim.Config, error) {
	cfg := sim.Baseline(c.Cores)
	cfg.Rules = c.Rules
	cfg.Policy = map[Policy]memctrl.Policy{
		DemandPrefEqual: memctrl.DemandPrefEqual,
		DemandFirst:     memctrl.DemandFirst,
		PrefetchFirst:   memctrl.PrefetchFirst,
		APS:             memctrl.APS,
		APSRank:         memctrl.APSRank,
	}[c.Policy]
	cfg.Prefetcher = map[Prefetcher]sim.PrefetcherKind{
		NoPrefetcher: sim.PFNone,
		Stream:       sim.PFStream,
		Stride:       sim.PFStride,
		CDC:          sim.PFCDC,
		Markov:       sim.PFMarkov,
		DSPatch:      sim.PFDSPatch,
	}[c.Prefetcher]
	cfg.MemSide = c.MemSide
	cfg.Filter = map[Filter]sim.FilterKind{
		NoFilter: sim.FilterNone,
		DDPF:     sim.FilterDDPF,
		FDP:      sim.FilterFDP,
	}[c.Filter]

	pc := core.DefaultConfig()
	pc.EnableAPD = c.APD
	pc.EnableUrgency = c.Urgency
	cfg.PADC = pc

	if c.Channels > 0 {
		cfg.DRAM.Channels = c.Channels
	}
	if c.RowBufferKB > 0 {
		cfg.DRAM.RowBytes = c.RowBufferKB << 10
	}
	if c.L2KB > 0 {
		cfg.L2.Bytes = c.L2KB << 10
	}
	cfg.SharedL2 = c.SharedL2
	if c.SharedL2 {
		cfg.L2.Ways = 4 * c.Cores
		cfg.MSHR = cfg.BufferSlots
	}
	cfg.DRAM.ClosedRow = c.ClosedRow
	cfg.DRAM.Permutation = c.Permutation
	mode, err := refresh.ParseMode(c.RefreshMode)
	if err != nil {
		return sim.Config{}, err
	}
	cfg.DRAM.Refresh.Mode = mode
	page, err := dram.ParsePagePolicy(c.PagePolicy)
	if err != nil {
		return sim.Config{}, err
	}
	cfg.DRAM.Page = page
	cfg.Core.Runahead = c.Runahead
	topo, err := c.resolveTopology(cfg.DRAM.Channels)
	if err != nil {
		return sim.Config{}, err
	}
	cfg.Topology = topo
	if c.TargetInsts > 0 {
		cfg.TargetInsts = c.TargetInsts
	}
	kernel, err := sim.ParseKernel(c.Kernel)
	if err != nil {
		return sim.Config{}, err
	}
	cfg.Kernel = kernel
	cfg.Telemetry = c.Telemetry
	cfg.Flight = c.Flight
	cfg.Lifecycle = c.Lifecycle
	cfg.Profile = c.Profile
	// Full validation (including the workload) happens in sim.Run.
	return cfg, nil
}

// resolveTopology lowers the Topology string: empty and "flat" stay nil
// (the flat machine), other names resolve as presets against the base
// channel count, and a leading "{" parses as an inline JSON spec.
func (c SystemConfig) resolveTopology(channels int) (*topology.Topology, error) {
	spec := strings.TrimSpace(c.Topology)
	switch {
	case spec == "" || spec == "flat":
		return nil, nil
	case strings.HasPrefix(spec, "{"):
		t, err := topology.FromJSON([]byte(spec))
		if err != nil {
			return nil, err
		}
		return &t, nil
	default:
		t, err := topology.Preset(spec, channels)
		if err != nil {
			return nil, err
		}
		return &t, nil
	}
}

// TopologyNames returns the built-in topology preset names.
func TopologyNames() []string { return topology.Names() }

// ResolvedCache is one cache level's resolved shape.
type ResolvedCache struct {
	Bytes     uint64 `json:"bytes"`
	Ways      int    `json:"ways"`
	LineBytes uint64 `json:"line_bytes"`
	HitCycles uint64 `json:"hit_cycles"`
}

// ResolvedRefresh is the maintenance engine's resolved timing. The timing
// fields are omitted when Mode is "off" (the engine never runs).
type ResolvedRefresh struct {
	Mode        string `json:"mode"`
	TREFI       uint64 `json:"trefi,omitempty"`
	TRFC        uint64 `json:"trfc,omitempty"`
	TRFCpb      uint64 `json:"trfcpb,omitempty"`
	MaxPostpone int    `json:"max_postpone,omitempty"`
}

// ResolvedDRAM is the memory system's resolved geometry, timing (in
// processor cycles), and management policies.
type ResolvedDRAM struct {
	Channels    int    `json:"channels"`
	Banks       int    `json:"banks"`
	RowBytes    uint64 `json:"row_bytes"`
	LineBytes   uint64 `json:"line_bytes"`
	Permutation bool   `json:"permutation"`
	PagePolicy  string `json:"page_policy"`

	TRP   uint64 `json:"trp"`
	TRCD  uint64 `json:"trcd"`
	CL    uint64 `json:"cl"`
	Burst uint64 `json:"burst"`

	Refresh ResolvedRefresh `json:"refresh"`
}

// ResolvedDomain is one memory domain's resolved wiring: its channel
// range in global numbering, link latency, and effective timing.
type ResolvedDomain struct {
	Name         string `json:"name"`
	Channels     int    `json:"channels"`
	FirstChannel int    `json:"first_channel"`
	LinkCycles   uint64 `json:"link_cycles"`

	TRP   uint64 `json:"trp"`
	TRCD  uint64 `json:"trcd"`
	CL    uint64 `json:"cl"`
	Burst uint64 `json:"burst"`
}

// ResolvedTopology is the resolved memory wiring: the domain list in
// global channel order and the interleave policy steering addresses
// across it. A flat machine reports one zero-link domain.
type ResolvedTopology struct {
	Name       string           `json:"name"`
	Interleave string           `json:"interleave"`
	Channels   int              `json:"channels"` // machine-wide total
	Domains    []ResolvedDomain `json:"domains"`
}

// ResolvedConfig is the fully-lowered view of a SystemConfig: every
// default filled in, every enum reduced to its canonical spelling, and
// the scheduling policy expanded into the rule stack it runs as. padcsim
// -dump-config prints it as JSON so scripts and sweep specs can pin the
// exact machine a flag combination produces.
type ResolvedConfig struct {
	Cores       int    `json:"cores"`
	TargetInsts uint64 `json:"target_insts"`

	RuleStack  string `json:"rule_stack"`
	APD        bool   `json:"apd"`
	Urgency    bool   `json:"urgency"`
	Prefetcher string `json:"prefetcher"`
	Filter     string `json:"filter"`
	MemSide    bool   `json:"memside,omitempty"`

	DRAM        ResolvedDRAM     `json:"dram"`
	Topology    ResolvedTopology `json:"topology"`
	L1          ResolvedCache    `json:"l1"`
	L2          ResolvedCache    `json:"l2"`
	SharedL2    bool             `json:"shared_l2"`
	MSHR        int              `json:"mshr_per_cache"`
	BufferSlots int              `json:"buffer_slots"`
}

// Describe lowers the config exactly as Run would and reports the
// resolved machine, or the configuration error Run would hit.
func (c SystemConfig) Describe() (ResolvedConfig, error) {
	cfg, err := c.toSim()
	if err != nil {
		return ResolvedConfig{}, err
	}
	stack, err := memctrl.ResolveStack(cfg.Policy, cfg.Rules)
	if err != nil {
		return ResolvedConfig{}, err
	}
	rc := ResolvedConfig{
		Cores:       cfg.Cores,
		TargetInsts: cfg.TargetInsts,
		RuleStack:   stack.String(),
		APD:         cfg.PADC.EnableAPD,
		Urgency:     cfg.PADC.EnableUrgency,
		Prefetcher:  cfg.Prefetcher.String(),
		Filter:      cfg.Filter.String(),
		MemSide:     cfg.MemSide,
		DRAM: ResolvedDRAM{
			Channels:    cfg.DRAM.Channels,
			Banks:       cfg.DRAM.Banks,
			RowBytes:    cfg.DRAM.RowBytes,
			LineBytes:   cfg.DRAM.LineBytes,
			Permutation: cfg.DRAM.Permutation,
			PagePolicy:  cfg.DRAM.EffectivePage().String(),
			TRP:         cfg.DRAM.Timing.TRP,
			TRCD:        cfg.DRAM.Timing.TRCD,
			CL:          cfg.DRAM.Timing.CL,
			Burst:       cfg.DRAM.Timing.Burst,
			Refresh:     ResolvedRefresh{Mode: refresh.Off.String()},
		},
		L1:          ResolvedCache(cfg.L1),
		L2:          ResolvedCache(cfg.L2),
		SharedL2:    cfg.SharedL2,
		MSHR:        cfg.MSHR,
		BufferSlots: cfg.BufferSlots,
	}
	if cfg.DRAM.Refresh.Enabled() {
		r := cfg.DRAM.Refresh.Resolved()
		rc.DRAM.Refresh = ResolvedRefresh{
			Mode:        r.Mode.String(),
			TREFI:       r.TREFI,
			TRFC:        r.TRFC,
			TRFCpb:      r.TRFCpb,
			MaxPostpone: r.MaxPostpone,
		}
	}
	topo := topology.Flat(cfg.DRAM.Channels)
	if cfg.Topology != nil {
		topo = *cfg.Topology
	}
	il := topo.Interleave
	if il == "" {
		il = topology.InterleaveChannel
	}
	rc.Topology = ResolvedTopology{
		Name:       topo.Name,
		Interleave: il,
		Channels:   topo.TotalChannels(),
	}
	offs := topo.ChannelOffsets()
	for d, dom := range topo.Domains {
		tm := cfg.DRAM.Timing
		if dom.Timing != nil {
			tm = *dom.Timing
		}
		rc.Topology.Domains = append(rc.Topology.Domains, ResolvedDomain{
			Name: dom.Name, Channels: dom.Channels, FirstChannel: offs[d],
			LinkCycles: dom.LinkCycles,
			TRP:        tm.TRP, TRCD: tm.TRCD, CL: tm.CL, Burst: tm.Burst,
		})
	}
	return rc, nil
}

// CoreResult is one core's outcome.
type CoreResult struct {
	Benchmark    string
	IPC          float64
	MPKI         float64
	SPL          float64
	PrefAccuracy float64
	PrefCoverage float64
	PrefSent     uint64
	PrefDropped  uint64

	// Attribution is the cycle-accounting profile in CycleClassNames
	// order; nil unless SystemConfig.Profile was set.
	Attribution []uint64
}

// Result is a full simulation outcome.
type Result struct {
	Cycles     uint64
	Cores      []CoreResult
	BusDemand  uint64
	BusUseful  uint64
	BusUseless uint64
	RowHitRate float64
	RBHU       float64
	Dropped    uint64

	// DRAM maintenance totals, all zero unless RefreshMode enabled the
	// refresh engine.
	RefreshesIssued      uint64
	RefreshesPostponed   uint64
	RefreshesPulledIn    uint64
	RefreshesForced      uint64
	RefreshBlockedCycles uint64

	// Domains holds per-domain breakdowns on multi-tier topologies (nil on
	// flat machines): service and row-hit counts, bus occupancy, refresh
	// blocking, and the tier-local PADC accuracy estimates APS/APD acted
	// on.
	Domains []DomainResult

	// MemSide reports the memory-side prefetch pipeline, nil unless
	// SystemConfig.MemSide enabled the path.
	MemSide *MemSideResult

	// DSPatch reports the dual-spatial prefetcher's bias trade-off, nil
	// unless the dspatch prefetcher ran.
	DSPatch *DSPatchResult
}

// MemSideResult is the memory-side prefetch pipeline over every
// controller: candidate flow, drop partition, and the issued requests'
// cache outcomes.
type MemSideResult struct {
	Generated       uint64
	Enqueued        uint64
	Issued          uint64
	Filtered        uint64
	DroppedOverflow uint64
	DroppedStale    uint64
	DroppedPressure uint64
	GateClosed      uint64
	Serviced        uint64
	Used            uint64
	Dropped         uint64
	Accuracy        float64 // used / (serviced + APD-dropped)
}

// DSPatchResult is the dual-spatial prefetcher's coverage/accuracy bias
// summary: trigger selections per pattern, each pattern's measured bit
// accuracy, and the final bandwidth-headroom sample.
type DSPatchResult struct {
	Issued       uint64
	CovPSelected uint64
	AccPSelected uint64
	CovAccuracy  float64
	AccAccuracy  float64
	Headroom     float64
}

// DomainResult is one memory domain's slice of the run.
type DomainResult struct {
	Name       string
	Channels   int
	LinkCycles uint64

	Serviced       uint64
	RowHitRate     float64
	BusBusyCycles  uint64
	RefreshBlocked uint64

	PrefSent     uint64
	PrefUsed     uint64
	PrefAccuracy float64 // whole-run used/sent for prefetches into this tier

	// CoreAccuracy is each core's tier-local PAR estimate at the end of
	// the run — the per-tier PADC accuracy APS promotion and APD drop
	// thresholds consulted.
	CoreAccuracy []float64
}

// BusTotal returns total transferred cache lines.
func (r Result) BusTotal() uint64 { return r.BusDemand + r.BusUseful + r.BusUseless }

// Benchmarks returns the names of the 55 synthetic benchmarks.
func Benchmarks() []string { return workload.Names() }

// Run simulates the given benchmarks (one per core) on the configured
// system until every core retires its instruction target.
func Run(c SystemConfig, benchmarks []string) (Result, error) {
	cfg, err := c.toSim()
	if err != nil {
		return Result{}, err
	}
	if len(benchmarks) == 0 || len(benchmarks) > c.Cores {
		return Result{}, fmt.Errorf("padc: need 1..%d benchmarks, got %d", c.Cores, len(benchmarks))
	}
	for _, b := range benchmarks {
		p, err := workload.ByName(b)
		if err != nil {
			return Result{}, err
		}
		cfg.Workload = append(cfg.Workload, p)
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return Result{}, err
	}
	return lower(res), nil
}

func lower(res stats.Results) Result {
	out := Result{
		Cycles:     res.Cycles,
		BusDemand:  res.Bus.Demand,
		BusUseful:  res.Bus.UsefulPref,
		BusUseless: res.Bus.UselessPref,
		RowHitRate: res.RBH(),
		RBHU:       res.RBHU(),
		Dropped:    res.Dropped,

		RefreshesIssued:      res.Refresh.Issued,
		RefreshesPostponed:   res.Refresh.Postponed,
		RefreshesPulledIn:    res.Refresh.PulledIn,
		RefreshesForced:      res.Refresh.Forced,
		RefreshBlockedCycles: res.Refresh.BlockedCycles,
	}
	for _, d := range res.Domains {
		out.Domains = append(out.Domains, DomainResult{
			Name:           d.Name,
			Channels:       d.Channels,
			LinkCycles:     d.LinkCycles,
			Serviced:       d.Serviced,
			RowHitRate:     d.RBH(),
			BusBusyCycles:  d.BusBusyCycles,
			RefreshBlocked: d.RefreshBlocked,
			PrefSent:       d.PrefSent,
			PrefUsed:       d.PrefUsed,
			PrefAccuracy:   d.ACC(),
			CoreAccuracy:   append([]float64(nil), d.Accuracy...),
		})
	}
	if ms := res.MemSide; ms != nil {
		out.MemSide = &MemSideResult{
			Generated: ms.Generated, Enqueued: ms.Enqueued, Issued: ms.Issued,
			Filtered: ms.Filtered, DroppedOverflow: ms.DroppedOverflow,
			DroppedStale: ms.DroppedStale, DroppedPressure: ms.DroppedPressure,
			GateClosed: ms.GateClosed,
			Serviced:   ms.Serviced, Used: ms.Used, Dropped: ms.Dropped,
			Accuracy: ms.ACC(),
		}
	}
	if ds := res.DSPatch; ds != nil {
		out.DSPatch = &DSPatchResult{
			Issued: ds.Issued, CovPSelected: ds.CovPSelected, AccPSelected: ds.AccPSelected,
			CovAccuracy: ds.CovAccuracy, AccAccuracy: ds.AccAccuracy, Headroom: ds.Headroom,
		}
	}
	for _, c := range res.PerCore {
		out.Cores = append(out.Cores, CoreResult{
			Benchmark:    c.Benchmark,
			IPC:          c.IPC(),
			MPKI:         c.MPKI(),
			SPL:          c.SPL(),
			PrefAccuracy: c.ACC(),
			PrefCoverage: c.COV(),
			PrefSent:     c.PrefSent,
			PrefDropped:  c.PrefDropped,
			Attribution:  c.Attribution,
		})
	}
	return out
}

// sortedKeys is shared by the experiment registry.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
