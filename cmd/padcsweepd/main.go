// Command padcsweepd is the sweep campaign service and its CLI client.
//
// The serve subcommand runs the daemon: it accepts sweep-spec uploads
// over HTTP/JSON, executes them on the deterministic engine with a
// bounded worker pool, journals every completed row to a write-ahead
// log under the data directory, and streams rows to attached clients
// with backpressure. Killing the server mid-campaign loses nothing: on
// restart it replays the journal and resumes each interrupted campaign
// from the rows already on disk, converging on artifacts byte-identical
// to an uninterrupted `padcsim -sweep` run.
//
//	padcsweepd serve -addr :8080 -data /var/lib/padcsweepd -jobs 8 \
//	    [-log-level debug|info|warn|error] [-log-json]
//
// The daemon binds its listener before replaying the data directory:
// /healthz (liveness) answers immediately, while /readyz (readiness)
// and the API return 503 until journal replay and campaign resume
// finish. Logs are structured (log/slog) with campaign/job/request
// correlation ids; -log-json switches them to JSON for log shippers.
//
// The remaining subcommands are thin clients for a running server:
//
//	padcsweepd submit -server http://host:8080 -spec sweep.json [-telemetry] -wait
//	padcsweepd status -server http://host:8080 [campaign-id]
//	padcsweepd rows -server http://host:8080 <campaign-id> [-offset N]
//	padcsweepd artifact -server http://host:8080 <campaign-id> [-format csv|json] [-o out]
//	padcsweepd telemetry -server http://host:8080 <campaign-id> [-partial] [-o out]
//	padcsweepd cancel -server http://host:8080 <campaign-id>
//
// Sharded campaigns: submit the same spec to N cooperating servers with
// -shard 0/N ... (N-1)/N; each server owns the grid indexes congruent to
// its shard index, and the unioned rows merge into the unsharded
// artifact (see EXPERIMENTS.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"padc/internal/runner"
	"padc/internal/sweepd"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("padcsweepd: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd, args := os.Args[1], os.Args[2:]; cmd {
	case "serve":
		err = serve(args)
	case "submit":
		err = submit(args)
	case "status":
		err = status(args)
	case "rows":
		err = rows(args)
	case "artifact":
		err = artifact(args)
	case "telemetry":
		err = telemetryCmd(args)
	case "cancel":
		err = cancel(args)
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "padcsweepd: unknown subcommand %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: padcsweepd <subcommand> [flags]

  serve     run the sweep service daemon
  submit    upload a sweep spec to a running server
  status    list campaigns, or show one campaign's status
  rows      stream a campaign's result rows as NDJSON
  artifact  download a campaign's merged CSV/JSON artifact
  telemetry download a campaign's per-job flight roll-ups (NDJSON)
  cancel    cancel a running campaign

Run 'padcsweepd <subcommand> -h' for that subcommand's flags.
`)
}

// serve runs the daemon until SIGINT/SIGTERM. Graceful shutdown writes
// no terminal journal event on purpose — an interrupted campaign resumes
// on the next start.
func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	data := fs.String("data", "", "campaign data directory (journals live here; required)")
	jobs := fs.Int("jobs", runtime.GOMAXPROCS(0), "default per-campaign worker-pool size")
	addrFile := fs.String("addr-file", "", "write the bound listen address to this file (for scripts using port 0)")
	noResume := fs.Bool("no-resume", false, "do not auto-resume interrupted campaigns on start")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
	logJSON := fs.Bool("log-json", false, "emit structured logs as JSON instead of text")
	fs.Parse(args)
	if *data == "" {
		return fmt.Errorf("serve: -data is required")
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("serve: bad -log-level %q: %w", *logLevel, err)
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, hopts)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	}
	logger := slog.New(handler)

	// Bind and serve the readiness gate before touching the data
	// directory: liveness probes answer immediately, /readyz and the API
	// hold at 503 while journal replay and campaign resume run, and
	// scripts waiting on the addr file see it as soon as the port exists.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		// Write to a temp name then rename so pollers never read a torn file.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			return err
		}
	}
	gate := sweepd.NewGate()
	srv := &http.Server{Handler: gate}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	logger.Info("listening", "addr", ln.Addr().String(), "data", *data, "workers", *jobs)

	s, err := sweepd.NewService(sweepd.ServiceOptions{
		DataDir: *data,
		Workers: *jobs,
		Resume:  !*noResume,
		Logger:  logger,
	})
	if err != nil {
		srv.Close()
		return err
	}
	gate.SetReady(s.Handler())
	logger.Info("ready")

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Info("shutting down (running campaigns will resume on restart)", "signal", sig.String())
	case err := <-errc:
		s.Close()
		return err
	}
	ctx, stop := context.WithTimeout(context.Background(), 5*time.Second)
	defer stop()
	srv.Shutdown(ctx)
	s.Close()
	return nil
}

// clientFlags adds the -server flag every client subcommand shares.
func clientFlags(fs *flag.FlagSet) *string {
	return fs.String("server", "http://127.0.0.1:8080", "padcsweepd server base URL")
}

func newClient(server string) (*sweepd.Client, error) {
	return sweepd.NewClient(server)
}

// parseShard decodes "i/n" (e.g. "0/4") into a runner.Shard.
func parseShard(s string) (runner.Shard, error) {
	var sh runner.Shard
	if s == "" {
		return sh, nil
	}
	idx, count, ok := strings.Cut(s, "/")
	if !ok {
		return sh, fmt.Errorf("shard %q: want index/count (e.g. 0/4)", s)
	}
	var err error
	if sh.Index, err = strconv.Atoi(idx); err != nil {
		return sh, fmt.Errorf("shard %q: bad index", s)
	}
	if sh.Count, err = strconv.Atoi(count); err != nil {
		return sh, fmt.Errorf("shard %q: bad count", s)
	}
	return sh, sh.Validate()
}

func submit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	server := clientFlags(fs)
	specPath := fs.String("spec", "", "JSON sweep spec file (required)")
	workers := fs.Int("workers", 0, "campaign worker-pool size (0 = server default)")
	verify := fs.Bool("verify", false, "run accounting-invariant checks on every job")
	telemetry := fs.Bool("telemetry", false, "record per-job flight-recorder roll-ups (GET .../telemetry)")
	shardStr := fs.String("shard", "", "grid shard this server owns, as index/count (e.g. 0/4)")
	wait := fs.Bool("wait", false, "block until the campaign reaches a terminal state")
	csvOut := fs.String("csv", "", "with -wait: download the merged CSV artifact to this file")
	jsonOut := fs.String("json", "", "with -wait: download the merged JSON artifact to this file")
	fs.Parse(args)
	if *specPath == "" {
		return fmt.Errorf("submit: -spec is required")
	}
	spec, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	shard, err := parseShard(*shardStr)
	if err != nil {
		return err
	}
	cl, err := newClient(*server)
	if err != nil {
		return err
	}
	ctx := context.Background()
	info, err := cl.Submit(ctx, sweepd.SubmitRequest{
		Spec: spec, Workers: *workers, Verify: *verify, Shard: shard, Telemetry: *telemetry,
	})
	if err != nil {
		return err
	}
	fmt.Printf("campaign %s: %s, %d jobs (shard %s)\n", info.ID, info.State, info.Total, info.Shard)
	if !*wait {
		return nil
	}
	final, err := waitWithProgress(ctx, cl, info.ID)
	if err != nil {
		return err
	}
	if *csvOut != "" {
		if err := download(ctx, cl, info.ID, "csv", *csvOut); err != nil {
			return err
		}
	}
	if *jsonOut != "" {
		if err := download(ctx, cl, info.ID, "json", *jsonOut); err != nil {
			return err
		}
	}
	if final.State != "completed" {
		return fmt.Errorf("campaign %s %s: %s", final.ID, final.State, final.Error)
	}
	return nil
}

// waitWithProgress polls the campaign with a stderr progress line.
func waitWithProgress(ctx context.Context, cl *sweepd.Client, id string) (sweepd.CampaignInfo, error) {
	info, err := cl.Wait(ctx, id, 200*time.Millisecond, func(ci sweepd.CampaignInfo) {
		fmt.Fprintf(os.Stderr, "\rpadcsweepd: %s %d/%d jobs (%d running, %d failed)",
			ci.State, ci.Done, ci.Total, ci.Running, ci.Failed)
	})
	fmt.Fprintln(os.Stderr)
	return info, err
}

// download fetches one artifact verbatim — the bytes on disk are exactly
// the bytes the server merged, preserving the byte-identity contract.
func download(ctx context.Context, cl *sweepd.Client, id, format, path string) error {
	data, err := cl.Artifact(ctx, id, format)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	return nil
}

func status(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	server := clientFlags(fs)
	fs.Parse(args)
	cl, err := newClient(*server)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if fs.NArg() > 0 {
		info, err := cl.Info(ctx, fs.Arg(0))
		if err != nil {
			return err
		}
		printInfo(info)
		return nil
	}
	list, err := cl.List(ctx)
	if err != nil {
		return err
	}
	if len(list) == 0 {
		fmt.Println("no campaigns")
		return nil
	}
	for _, info := range list {
		printInfo(info)
	}
	return nil
}

func printInfo(ci sweepd.CampaignInfo) {
	line := fmt.Sprintf("%s  %-10s %-9s shard=%-5s done=%d/%d running=%d failed=%d reused=%d lag=%d",
		ci.ID, ci.Name, ci.State, ci.Shard, ci.Done, ci.Total, ci.Running, ci.Failed, ci.Reused, ci.CheckpointLag)
	if ci.Error != "" {
		line += "  error=" + ci.Error
	}
	fmt.Println(line)
}

func rows(args []string) error {
	fs := flag.NewFlagSet("rows", flag.ExitOnError)
	server := clientFlags(fs)
	offset := fs.Int("offset", 0, "resume the stream after this row sequence number")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("rows: want exactly one campaign id")
	}
	cl, err := newClient(*server)
	if err != nil {
		return err
	}
	return cl.StreamRows(context.Background(), fs.Arg(0), *offset, func(ev sweepd.RowEvent) error {
		switch {
		case ev.Row != nil:
			fmt.Printf("%d\t%s\tcycles=%d\n", ev.Seq, ev.Row.Key, ev.Row.Cycles)
		case ev.Done:
			fmt.Printf("done\t%s\n", ev.State)
		}
		return nil
	})
}

func artifact(args []string) error {
	fs := flag.NewFlagSet("artifact", flag.ExitOnError)
	server := clientFlags(fs)
	format := fs.String("format", "csv", "artifact format: csv or json")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("artifact: want exactly one campaign id")
	}
	if *format != "csv" && *format != "json" {
		return fmt.Errorf("artifact: -format must be csv or json")
	}
	cl, err := newClient(*server)
	if err != nil {
		return err
	}
	if *out != "" {
		return download(context.Background(), cl, fs.Arg(0), *format, *out)
	}
	data, err := cl.Artifact(context.Background(), fs.Arg(0), *format)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}

// telemetryCmd downloads a campaign's per-job flight roll-ups (NDJSON,
// one record per executed job) — the fleet-side replacement for shell
// access to the server's telemetry sidecars.
func telemetryCmd(args []string) error {
	fs := flag.NewFlagSet("telemetry", flag.ExitOnError)
	server := clientFlags(fs)
	partial := fs.Bool("partial", false, "fetch records collected so far on an incomplete campaign")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("telemetry: want exactly one campaign id")
	}
	cl, err := newClient(*server)
	if err != nil {
		return err
	}
	data, err := cl.Telemetry(context.Background(), fs.Arg(0), *partial)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", *out, len(data))
		return nil
	}
	_, err = os.Stdout.Write(data)
	return err
}

func cancel(args []string) error {
	fs := flag.NewFlagSet("cancel", flag.ExitOnError)
	server := clientFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("cancel: want exactly one campaign id")
	}
	cl, err := newClient(*server)
	if err != nil {
		return err
	}
	if err := cl.Cancel(context.Background(), fs.Arg(0)); err != nil {
		return err
	}
	fmt.Printf("campaign %s cancelled\n", fs.Arg(0))
	return nil
}
