// Command padcsim runs the PADC reproduction: individual simulations or
// whole paper experiments.
//
// Usage:
//
//	padcsim -list                             # benchmarks and experiment ids
//	padcsim -exp fig16 [-full]                # regenerate a paper figure/table
//	padcsim -bench swim,art -policy padc      # simulate a workload mix
//	padcsim -exp all [-full]                  # everything (slow with -full)
//
// Telemetry (with -bench): -epoch sets the sampling period, -metrics
// writes the epoch time series as CSV, -trace writes a Chrome
// trace_event JSON (chrome://tracing, Perfetto), -events writes the raw
// event ring as JSONL, and -heatmap writes the bank-state flight
// recorder's per-epoch × per-bank table (CSV, or JSONL when the path
// ends in .jsonl). With both -heatmap and -trace, per-bank counter
// tracks are folded into the Chrome trace.
//
//	padcsim -bench swim,art -policy padc -metrics out.csv -trace out.json -epoch 10000
//	padcsim -bench swim,art -policy padc -heatmap banks.csv
//
// Profiling (with -bench): -profile prints the per-core cycle-accounting
// table (every cycle attributed to retire / demand-miss / mshr-full /
// compute / idle) and the request-lifecycle breakdown, -spans writes the
// sampled lifecycle spans as JSONL, -breakdown writes the per-core
// latency decomposition as CSV, and -http serves Prometheus-format
// metrics at /metrics (plus net/http/pprof) while the simulation runs.
//
//	padcsim -bench swim,art -profile -http :8080 -spans spans.jsonl
//
// Sweeps: -sweep runs a declarative JSON sweep spec (a cartesian grid of
// policy/prefetcher/threshold/workload axes, see EXPERIMENTS.md) on a
// bounded worker pool, -jobs sizes the pool (default GOMAXPROCS; it also
// governs the -exp runners), -verify runs the accounting-invariant checks
// on every job, and -sweep-csv/-sweep-json write the merged artifacts,
// which are byte-identical for any -jobs value.
//
//	padcsim -sweep spec.json -jobs 8 -verify -sweep-csv out.csv
//
// With -sweep-remote the same spec runs on a padcsweepd server instead
// of in-process: the spec is submitted as a campaign, rows stream back
// live, and the artifacts are downloaded verbatim — byte-identical to
// the in-process run:
//
//	padcsim -sweep spec.json -sweep-remote http://127.0.0.1:8080 -sweep-csv out.csv
//
// DRAM management (with -bench): -refresh enables the maintenance engine
// (per-bank REFpb or all-bank REF with the JEDEC postpone/pull-in credit
// window), -page selects the row-buffer policy (open, closed, or the
// adaptive per-bank predictor). -dump-config prints the fully-resolved
// machine — geometry, timing, rule stack, refresh and page policy — as
// JSON and exits without simulating:
//
//	padcsim -bench swim,art -refresh per-bank -page adaptive
//	padcsim -policy padc -refresh all-bank -dump-config
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sort"
	"strings"

	"padc"
	"padc/internal/exp"
	"padc/internal/sweepd"
	"padc/internal/telemetry"
	"padc/internal/telemetry/flight"
	"padc/internal/telemetry/lifecycle"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list benchmarks and experiment ids")
		expID   = flag.String("exp", "", "experiment id (fig1, fig16, tab8, ...) or 'all'")
		full    = flag.Bool("full", false, "paper-scale workload counts (slow)")
		bench   = flag.String("bench", "", "comma-separated benchmark names, one per core")
		policy  = flag.String("policy", "padc", "no-pref|demand-first|equal|prefetch-first|aps|padc|padc-rank, or rules:<list> (e.g. rules:critical,rowhit,urgent,fcfs)")
		pf      = flag.String("prefetcher", "stream", strings.Join(prefetcherNames(), "|"))
		memside = flag.Bool("memside", false, "enable the DRAM-side prefetch path (controller-generated row-hit prefetches, PADC-gated)")
		insts   = flag.Uint64("insts", 0, "instructions per core (0 = default)")
		cores   = flag.Int("cores", 0, "cores to provision (0 = number of benchmarks)")
		verbose = flag.Bool("v", false, "per-core details")

		refreshMode = flag.String("refresh", "off", "DRAM refresh mode: off|per-bank|all-bank")
		pagePolicy  = flag.String("page", "open", "row-buffer management: open|closed|adaptive")
		topoSpec    = flag.String("topology", "", "memory topology: a preset name ("+strings.Join(padc.TopologyNames(), "|")+"), a JSON topology file, or inline JSON")
		kernel      = flag.String("kernel", "events", "simulation kernel: events (cycle-skipping, default) or stepped (cycle-by-cycle reference)")
		dumpConfig  = flag.Bool("dump-config", false, "print the resolved machine configuration as JSON and exit")

		metricsOut = flag.String("metrics", "", "write the epoch metric time series as CSV to this file")
		traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON to this file")
		eventsOut  = flag.String("events", "", "write the raw event ring as JSONL to this file")
		heatmapOut = flag.String("heatmap", "", "write the flight recorder's per-epoch x per-bank heatmap to this file (CSV, or JSONL with a .jsonl extension)")
		epoch      = flag.Uint64("epoch", 10_000, "telemetry sampling period in cycles")

		profile      = flag.Bool("profile", false, "print per-core cycle attribution and lifecycle breakdown tables")
		spansOut     = flag.String("spans", "", "write sampled request-lifecycle spans as JSONL to this file")
		breakdownOut = flag.String("breakdown", "", "write the per-core latency decomposition as CSV to this file")
		httpAddr     = flag.String("http", "", "serve Prometheus metrics at /metrics and net/http/pprof on this address (e.g. :8080)")

		sweepSpec   = flag.String("sweep", "", "run the JSON sweep spec in this file on the worker pool")
		sweepRemote = flag.String("sweep-remote", "", "with -sweep: run the spec on this padcsweepd server instead of in-process")
		jobs        = flag.Int("jobs", 0, "worker-pool size for -sweep and -exp (0 = GOMAXPROCS)")
		verify      = flag.Bool("verify", false, "with -sweep: check accounting invariants on every job")
		sweepCSV    = flag.String("sweep-csv", "", "with -sweep: write the merged jobs as CSV to this file")
		sweepJSON   = flag.String("sweep-json", "", "with -sweep: write the merged sweep as JSON to this file")
	)
	flag.Parse()
	if *jobs > 0 {
		padc.SetJobs(*jobs)
	}

	switch {
	case *list:
		fmt.Println("benchmarks:")
		for _, b := range padc.Benchmarks() {
			fmt.Printf("  %s\n", b)
		}
		fmt.Println("experiments:")
		for _, id := range padc.ExperimentIDs() {
			fmt.Printf("  %s\n", id)
		}
	case *dumpConfig:
		cfg, names, err := buildConfig(*bench, *policy, *pf, *refreshMode, *pagePolicy, *topoSpec, *kernel, *memside, *insts, *cores)
		if err != nil {
			fatal(err)
		}
		if err := writeResolvedConfig(os.Stdout, cfg, names); err != nil {
			fatal(err)
		}
	case *sweepSpec != "":
		if *sweepRemote != "" {
			if err := runSweepRemote(*sweepRemote, *sweepSpec, *jobs, *verify, *sweepCSV, *sweepJSON); err != nil {
				fatal(err)
			}
		} else if err := runSweep(*sweepSpec, *verify, *sweepCSV, *sweepJSON); err != nil {
			fatal(err)
		}
	case *expID == "all":
		for _, id := range padc.ExperimentIDs() {
			out, err := padc.Experiment(id, *full)
			if err != nil {
				fatal(err)
			}
			fmt.Print(out)
		}
	case *expID != "":
		out, err := padc.Experiment(*expID, *full)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case *bench != "":
		cfg, names, err := buildConfig(*bench, *policy, *pf, *refreshMode, *pagePolicy, *topoSpec, *kernel, *memside, *insts, *cores)
		if err != nil {
			fatal(err)
		}
		var tel *telemetry.Telemetry
		if *metricsOut != "" || *traceOut != "" || *eventsOut != "" || *httpAddr != "" {
			tel = padc.NewTelemetry(*epoch)
			cfg.Telemetry = tel
		}
		var tracer *lifecycle.Tracer
		if *profile || *spansOut != "" || *breakdownOut != "" {
			tracer = padc.NewLifecycle(0)
			cfg.Lifecycle = tracer
		}
		var rec *flight.Recorder
		if *heatmapOut != "" {
			rec = padc.NewFlightRecorder(*epoch, 0)
			cfg.Flight = rec
		}
		cfg.Profile = *profile
		if *httpAddr != "" {
			serveHTTP(*httpAddr, tel)
		}
		res, err := padc.Run(cfg, names)
		if err != nil {
			fatal(err)
		}
		report(res, *verbose)
		if rec != nil {
			if err := exportHeatmap(rec, *heatmapOut); err != nil {
				fatal(err)
			}
		}
		if tel != nil {
			if err := exportTelemetry(tel, tracer, rec, *metricsOut, *traceOut, *eventsOut); err != nil {
				fatal(err)
			}
			fmt.Print(exp.TelemetryTable(tel))
		}
		if tracer != nil {
			if err := exportLifecycle(tracer, *spansOut, *breakdownOut); err != nil {
				fatal(err)
			}
		}
		if *profile {
			attribs := make([][]uint64, len(res.Cores))
			benches := make([]string, len(res.Cores))
			for i, c := range res.Cores {
				benches[i] = c.Benchmark
				attribs[i] = c.Attribution
			}
			fmt.Print(exp.ProfileRows(benches, attribs))
			fmt.Print(tracer.BreakdownTable())
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runSweep executes the JSON sweep spec at path on the worker pool,
// prints the merged table plus wall-clock stats, and writes the optional
// CSV/JSON artifacts. A progress line tracks completion on stderr.
func runSweep(path string, verify bool, csvOut, jsonOut string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := padc.ParseSweepSpec(data)
	if err != nil {
		return err
	}
	opts := padc.SweepOptions{
		Verify: verify,
		Progress: func(done, total int, _ padc.SweepJob) {
			fmt.Fprintf(os.Stderr, "\rpadcsim: sweep %d/%d jobs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	}
	res, err := padc.Sweep(spec, opts)
	if err != nil {
		return err
	}
	fmt.Print(padc.RenderSweep(res))
	fmt.Printf("%s\n", res.Stats)
	if err := writeFile(csvOut, func(f *os.File) error { return res.WriteCSV(f) }); err != nil {
		return err
	}
	if err := writeFile(jsonOut, func(f *os.File) error { return res.WriteJSON(f) }); err != nil {
		return err
	}
	if n := res.Failed(); n > 0 {
		return fmt.Errorf("%d of %d sweep jobs failed (see the status column)", n, len(res.Jobs))
	}
	return nil
}

// runSweepRemote runs the sweep spec on a padcsweepd server: submit the
// spec as a campaign, stream the rows back live for the progress line
// and the rendered table, and download the merged artifacts verbatim —
// the on-disk bytes are exactly what the server merged, which the
// service guarantees is byte-identical to the in-process run.
func runSweepRemote(server, path string, jobs int, verify bool, csvOut, jsonOut string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := padc.ParseSweepSpec(data)
	if err != nil {
		return err
	}
	cl, err := sweepd.NewClient(server)
	if err != nil {
		return err
	}
	ctx := context.Background()
	info, err := cl.Submit(ctx, sweepd.SubmitRequest{Spec: data, Workers: jobs, Verify: verify})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "padcsim: campaign %s on %s (%d jobs)\n", info.ID, server, info.Total)

	var rows []padc.SweepJob
	err = cl.StreamRows(ctx, info.ID, 0, func(ev sweepd.RowEvent) error {
		if ev.Row != nil {
			rows = append(rows, *ev.Row)
			fmt.Fprintf(os.Stderr, "\rpadcsim: sweep %d/%d jobs", len(rows), info.Total)
			if len(rows) == info.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	final, err := cl.Wait(ctx, info.ID, 0, nil)
	if err != nil {
		return err
	}
	if final.State != "completed" {
		return fmt.Errorf("campaign %s %s: %s", final.ID, final.State, final.Error)
	}

	res := padc.MergeSweepRows(spec, rows)
	fmt.Print(padc.RenderSweep(res))
	for format, out := range map[string]string{"csv": csvOut, "json": jsonOut} {
		if out == "" {
			continue
		}
		artifact, err := cl.Artifact(ctx, final.ID, format)
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, artifact, 0o644); err != nil {
			return err
		}
	}
	if n := res.Failed(); n > 0 {
		return fmt.Errorf("%d of %d sweep jobs failed (see the status column)", n, len(res.Jobs))
	}
	return nil
}

// buildConfig assembles the machine the simulation flags describe and
// returns it with the benchmark list. With no -bench and no -cores it
// provisions a single core, which is enough for -dump-config.
func buildConfig(bench, policy, pf, refreshMode, page, topo, kernel string, memside bool, insts uint64, cores int) (padc.SystemConfig, []string, error) {
	var names []string
	if bench != "" {
		names = strings.Split(bench, ",")
	}
	n := cores
	if n == 0 {
		n = len(names)
	}
	if n == 0 {
		n = 1
	}
	cfg := padc.DefaultSystem(n)
	if insts > 0 {
		cfg.TargetInsts = insts
	}
	if err := applyPolicy(&cfg, policy); err != nil {
		return cfg, nil, err
	}
	if err := applyPrefetcher(&cfg, pf); err != nil {
		return cfg, nil, err
	}
	cfg.RefreshMode = refreshMode
	cfg.PagePolicy = page
	topo, err := resolveTopologyFlag(topo)
	if err != nil {
		return cfg, nil, err
	}
	cfg.Topology = topo
	cfg.Kernel = kernel
	cfg.MemSide = memside
	return cfg, names, nil
}

// resolveTopologyFlag interprets -topology: inline JSON (starts with "{")
// and preset names pass through to the config; anything naming a readable
// file — or ending in .json — is read and its contents used as the inline
// spec.
func resolveTopologyFlag(s string) (string, error) {
	t := strings.TrimSpace(s)
	if t == "" || strings.HasPrefix(t, "{") {
		return t, nil
	}
	if _, err := os.Stat(t); err == nil || strings.HasSuffix(t, ".json") {
		data, err := os.ReadFile(t)
		if err != nil {
			return "", fmt.Errorf("reading -topology file: %w", err)
		}
		return string(data), nil
	}
	return t, nil
}

// writeResolvedConfig prints the -dump-config JSON: the fully-resolved
// machine plus the workload list the other flags selected.
func writeResolvedConfig(w io.Writer, cfg padc.SystemConfig, workloads []string) error {
	rc, err := cfg.Describe()
	if err != nil {
		return err
	}
	out := struct {
		padc.ResolvedConfig
		Workloads []string `json:"workloads,omitempty"`
	}{rc, workloads}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func applyPolicy(cfg *padc.SystemConfig, s string) error {
	switch s {
	case "no-pref":
		cfg.Prefetcher = padc.NoPrefetcher
	case "demand-first":
		cfg.Policy, cfg.APD = padc.DemandFirst, false
	case "equal":
		cfg.Policy, cfg.APD = padc.DemandPrefEqual, false
	case "prefetch-first":
		cfg.Policy, cfg.APD = padc.PrefetchFirst, false
	case "aps":
		cfg.Policy, cfg.APD = padc.APS, false
	case "padc":
		cfg.Policy, cfg.APD = padc.APS, true
	case "padc-rank":
		cfg.Policy, cfg.APD = padc.APSRank, true
	default:
		// Explicit rule stacks: -policy rules:critical,rowhit,urgent,fcfs
		// schedules with exactly that priority order (APD off, like the
		// other scheduling-only policies).
		if strings.HasPrefix(s, "rules:") {
			cfg.Rules, cfg.APD = s, false
			return nil
		}
		return fmt.Errorf("unknown policy %q", s)
	}
	return nil
}

// prefetcherFlags maps the -prefetcher vocabulary onto the public enum.
var prefetcherFlags = map[string]padc.Prefetcher{
	"none":    padc.NoPrefetcher,
	"stream":  padc.Stream,
	"stride":  padc.Stride,
	"cdc":     padc.CDC,
	"markov":  padc.Markov,
	"dspatch": padc.DSPatch,
}

// prefetcherNames returns the accepted -prefetcher spellings, sorted.
func prefetcherNames() []string {
	names := make([]string, 0, len(prefetcherFlags))
	for k := range prefetcherFlags {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func applyPrefetcher(cfg *padc.SystemConfig, s string) error {
	kind, ok := prefetcherFlags[s]
	if !ok {
		return fmt.Errorf("unknown prefetcher %q (valid: %s)", s, strings.Join(prefetcherNames(), ", "))
	}
	cfg.Prefetcher = kind
	return nil
}

func report(res padc.Result, verbose bool) {
	fmt.Printf("cycles: %d\n", res.Cycles)
	fmt.Printf("bus traffic (lines): demand=%d useful-pref=%d useless-pref=%d total=%d\n",
		res.BusDemand, res.BusUseful, res.BusUseless, res.BusTotal())
	fmt.Printf("row-hit rate: %.1f%%  RBHU: %.1f%%  dropped prefetches: %d\n",
		res.RowHitRate*100, res.RBHU*100, res.Dropped)
	if res.RefreshesIssued > 0 {
		fmt.Printf("refreshes: issued=%d postponed=%d pulled-in=%d forced=%d blocked-cycles=%d\n",
			res.RefreshesIssued, res.RefreshesPostponed, res.RefreshesPulledIn,
			res.RefreshesForced, res.RefreshBlockedCycles)
	}
	for _, d := range res.Domains {
		fmt.Printf("domain %-8s ch=%d link=%d serviced=%d row-hit=%.1f%% bus-busy=%d pref-acc=%.1f%%\n",
			d.Name, d.Channels, d.LinkCycles, d.Serviced, d.RowHitRate*100, d.BusBusyCycles, d.PrefAccuracy*100)
	}
	if ms := res.MemSide; ms != nil {
		fmt.Printf("memside: generated=%d issued=%d serviced=%d used=%d acc=%.1f%% dropped(pressure/stale/apd)=%d/%d/%d gate-closed=%d\n",
			ms.Generated, ms.Issued, ms.Serviced, ms.Used, ms.Accuracy*100,
			ms.DroppedPressure, ms.DroppedStale, ms.Dropped, ms.GateClosed)
	}
	if ds := res.DSPatch; ds != nil {
		fmt.Printf("dspatch: issued=%d covp-triggers=%d accp-triggers=%d cov-acc=%.1f%% acc-acc=%.1f%% headroom=%.2f\n",
			ds.Issued, ds.CovPSelected, ds.AccPSelected, ds.CovAccuracy*100, ds.AccAccuracy*100, ds.Headroom)
	}
	for _, c := range res.Cores {
		fmt.Printf("  %-12s IPC=%.3f MPKI=%.2f SPL=%.1f", c.Benchmark, c.IPC, c.MPKI, c.SPL)
		if verbose {
			fmt.Printf(" ACC=%.1f%% COV=%.1f%% sent=%d dropped=%d",
				c.PrefAccuracy*100, c.PrefCoverage*100, c.PrefSent, c.PrefDropped)
		}
		fmt.Println()
	}
}

// exportTelemetry writes the requested telemetry artifacts. When a
// lifecycle tracer or a flight recorder is active, its spans / per-bank
// counter tracks are interleaved into the Chrome trace alongside the
// event-ring slices.
func exportTelemetry(tel *telemetry.Telemetry, tracer *lifecycle.Tracer, rec *flight.Recorder, metrics, trace, events string) error {
	if err := writeFile(metrics, func(f *os.File) error { return tel.WriteCSV(f) }); err != nil {
		return err
	}
	if err := writeFile(trace, func(f *os.File) error {
		if tracer == nil && rec == nil {
			return tel.WriteChromeTrace(f)
		}
		return tel.WriteChromeTraceWith(f, func(emit func(format string, args ...any)) {
			if tracer != nil {
				tracer.ChromeSlices(emit)
			}
			rec.ChromeCounters(emit)
		})
	}); err != nil {
		return err
	}
	return writeFile(events, func(f *os.File) error { return tel.WriteJSONL(f) })
}

// exportHeatmap writes the flight recorder's epoch × bank table, picking
// the format from the extension: .jsonl streams one epoch object per
// line, anything else is the long-form CSV.
func exportHeatmap(rec *flight.Recorder, path string) error {
	return writeFile(path, func(f *os.File) error {
		if strings.HasSuffix(path, ".jsonl") {
			return rec.WriteJSONL(f)
		}
		return rec.WriteCSV(f)
	})
}

// exportLifecycle writes the requested lifecycle artifacts.
func exportLifecycle(tracer *lifecycle.Tracer, spans, breakdown string) error {
	if err := writeFile(spans, func(f *os.File) error { return tracer.WriteJSONL(f) }); err != nil {
		return err
	}
	return writeFile(breakdown, func(f *os.File) error { return tracer.WriteCSV(f) })
}

func writeFile(path string, fn func(f *os.File) error) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// serveHTTP starts the live observability endpoint: Prometheus-format
// metrics at /metrics plus the net/http/pprof handlers the blank import
// registers on the default mux. The server runs for the life of the
// process; a bind failure is fatal so a typo'd address doesn't silently
// drop the endpoint the user asked for.
func serveHTTP(addr string, tel *telemetry.Telemetry) {
	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		tel.WritePrometheus(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	go http.Serve(ln, nil)
	fmt.Fprintf(os.Stderr, "padcsim: serving /metrics and /debug/pprof on %s\n", ln.Addr())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "padcsim:", err)
	os.Exit(1)
}
