package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"padc"
)

func TestApplyPolicyRejectsUnknown(t *testing.T) {
	cfg := padc.DefaultSystem(1)
	err := applyPolicy(&cfg, "frfcfs-typo")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	if !strings.Contains(err.Error(), "frfcfs-typo") {
		t.Fatalf("error should name the bad value: %v", err)
	}
}

func TestApplyPolicyKnownValues(t *testing.T) {
	for _, s := range []string{"no-pref", "demand-first", "equal", "prefetch-first", "aps", "padc", "padc-rank"} {
		cfg := padc.DefaultSystem(1)
		if err := applyPolicy(&cfg, s); err != nil {
			t.Errorf("policy %q rejected: %v", s, err)
		}
	}
	// The padc spelling must enable dropping; the rigid ones must not.
	cfg := padc.DefaultSystem(1)
	applyPolicy(&cfg, "padc")
	if !cfg.APD {
		t.Error("padc policy should enable APD")
	}
	applyPolicy(&cfg, "demand-first")
	if cfg.APD {
		t.Error("demand-first policy should disable APD")
	}
}

func TestApplyPrefetcherRejectsUnknown(t *testing.T) {
	cfg := padc.DefaultSystem(1)
	err := applyPrefetcher(&cfg, "ghb")
	if err == nil {
		t.Fatal("unknown prefetcher accepted")
	}
	if !strings.Contains(err.Error(), "ghb") {
		t.Fatalf("error should name the bad value: %v", err)
	}
	for _, valid := range prefetcherNames() {
		if !strings.Contains(err.Error(), valid) {
			t.Fatalf("error should list valid name %q: %v", valid, err)
		}
	}
}

func TestApplyPrefetcherKnownValues(t *testing.T) {
	want := map[string]padc.Prefetcher{
		"none": padc.NoPrefetcher, "stream": padc.Stream, "stride": padc.Stride,
		"cdc": padc.CDC, "markov": padc.Markov, "dspatch": padc.DSPatch,
	}
	for s, pf := range want {
		cfg := padc.DefaultSystem(1)
		if err := applyPrefetcher(&cfg, s); err != nil {
			t.Errorf("prefetcher %q rejected: %v", s, err)
		} else if cfg.Prefetcher != pf {
			t.Errorf("prefetcher %q mapped to %v, want %v", s, cfg.Prefetcher, pf)
		}
	}
}

func TestBuildConfigAppliesRefreshAndPage(t *testing.T) {
	cfg, names, err := buildConfig("swim,art", "padc", "stream", "per-bank", "adaptive", "far-tier", "events", true, 5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "swim" || names[1] != "art" {
		t.Fatalf("benchmarks = %v", names)
	}
	if cfg.Cores != 2 {
		t.Fatalf("cores = %d, want 2 (one per benchmark)", cfg.Cores)
	}
	if cfg.RefreshMode != "per-bank" || cfg.PagePolicy != "adaptive" {
		t.Fatalf("refresh/page = %q/%q", cfg.RefreshMode, cfg.PagePolicy)
	}
	if cfg.TargetInsts != 5000 {
		t.Fatalf("insts = %d", cfg.TargetInsts)
	}
	if cfg.Topology != "far-tier" {
		t.Fatalf("topology = %q, want far-tier", cfg.Topology)
	}
	if !cfg.MemSide {
		t.Fatal("memside flag not threaded into the config")
	}

	// No benchmarks and no -cores still yields a describable machine.
	cfg, names, err = buildConfig("", "padc", "stream", "off", "open", "", "", false, 0, 0)
	if err != nil || len(names) != 0 || cfg.Cores != 1 {
		t.Fatalf("flagless config: cores=%d names=%v err=%v", cfg.Cores, names, err)
	}
	if cfg.MemSide {
		t.Fatal("memside must default off")
	}
}

func TestResolveTopologyFlag(t *testing.T) {
	// Preset names and inline JSON pass straight through.
	for _, in := range []string{"", "flat", "far-tier", `{"name":"x"}`} {
		got, err := resolveTopologyFlag(in)
		if err != nil || got != strings.TrimSpace(in) {
			t.Errorf("resolveTopologyFlag(%q) = %q, %v", in, got, err)
		}
	}

	// A path to a JSON file is read and its contents become the spec.
	spec := `{"name":"duo","interleave":"channel","domains":[{"name":"a","channels":1},{"name":"b","channels":1,"link_cycles":99}]}`
	path := filepath.Join(t.TempDir(), "topo.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := resolveTopologyFlag(path)
	if err != nil || got != spec {
		t.Fatalf("file topology not read: %q, %v", got, err)
	}

	// A .json path that doesn't exist is an error, not a preset name.
	if _, err := resolveTopologyFlag(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing .json file accepted")
	}

	// The file contents must actually build a machine end to end.
	cfg, _, err := buildConfig("swim", "padc", "stream", "off", "open", path, "events", false, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := cfg.Describe()
	if err != nil {
		t.Fatal(err)
	}
	if rc.Topology.Name != "duo" || len(rc.Topology.Domains) != 2 ||
		rc.Topology.Domains[1].LinkCycles != 99 {
		t.Fatalf("resolved topology = %+v", rc.Topology)
	}
}

func TestWriteResolvedConfigJSON(t *testing.T) {
	cfg, names, err := buildConfig("swim", "padc", "stream", "all-bank", "closed", "", "stepped", false, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeResolvedConfig(&buf, cfg, names); err != nil {
		t.Fatal(err)
	}
	var got struct {
		padc.ResolvedConfig
		Workloads []string `json:"workloads"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if got.RuleStack == "" || !strings.Contains(got.RuleStack, "rules:") {
		t.Errorf("rule stack not resolved: %q", got.RuleStack)
	}
	if got.DRAM.Refresh.Mode != "all-bank" || got.DRAM.Refresh.TREFI != 31_200 ||
		got.DRAM.Refresh.TRFC != 640 || got.DRAM.Refresh.MaxPostpone != 8 {
		t.Errorf("refresh timing not resolved: %+v", got.DRAM.Refresh)
	}
	if got.DRAM.PagePolicy != "closed" {
		t.Errorf("page policy = %q, want closed", got.DRAM.PagePolicy)
	}
	if got.DRAM.Banks != 8 || got.DRAM.TRP != 60 || got.DRAM.Burst != 12 {
		t.Errorf("geometry/timing not resolved: %+v", got.DRAM)
	}
	if len(got.Workloads) != 1 || got.Workloads[0] != "swim" {
		t.Errorf("workloads = %v", got.Workloads)
	}
}

func TestWriteResolvedConfigRejectsBadModes(t *testing.T) {
	for _, tc := range [][2]string{{"hourly", "open"}, {"off", "ajar"}} {
		cfg, names, err := buildConfig("swim", "padc", "stream", tc[0], tc[1], "", "events", false, 0, 0)
		if err != nil {
			t.Fatal(err) // buildConfig defers vocabulary checks to Describe/Run
		}
		if err := writeResolvedConfig(io.Discard, cfg, names); err == nil {
			t.Errorf("refresh=%q page=%q accepted", tc[0], tc[1])
		}
	}
}
