package main

import (
	"strings"
	"testing"

	"padc"
)

func TestApplyPolicyRejectsUnknown(t *testing.T) {
	cfg := padc.DefaultSystem(1)
	err := applyPolicy(&cfg, "frfcfs-typo")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	if !strings.Contains(err.Error(), "frfcfs-typo") {
		t.Fatalf("error should name the bad value: %v", err)
	}
}

func TestApplyPolicyKnownValues(t *testing.T) {
	for _, s := range []string{"no-pref", "demand-first", "equal", "prefetch-first", "aps", "padc", "padc-rank"} {
		cfg := padc.DefaultSystem(1)
		if err := applyPolicy(&cfg, s); err != nil {
			t.Errorf("policy %q rejected: %v", s, err)
		}
	}
	// The padc spelling must enable dropping; the rigid ones must not.
	cfg := padc.DefaultSystem(1)
	applyPolicy(&cfg, "padc")
	if !cfg.APD {
		t.Error("padc policy should enable APD")
	}
	applyPolicy(&cfg, "demand-first")
	if cfg.APD {
		t.Error("demand-first policy should disable APD")
	}
}

func TestApplyPrefetcherRejectsUnknown(t *testing.T) {
	cfg := padc.DefaultSystem(1)
	err := applyPrefetcher(&cfg, "ghb")
	if err == nil {
		t.Fatal("unknown prefetcher accepted")
	}
	if !strings.Contains(err.Error(), "ghb") {
		t.Fatalf("error should name the bad value: %v", err)
	}
}

func TestApplyPrefetcherKnownValues(t *testing.T) {
	want := map[string]padc.Prefetcher{
		"none": padc.NoPrefetcher, "stream": padc.Stream, "stride": padc.Stride,
		"cdc": padc.CDC, "markov": padc.Markov,
	}
	for s, pf := range want {
		cfg := padc.DefaultSystem(1)
		if err := applyPrefetcher(&cfg, s); err != nil {
			t.Errorf("prefetcher %q rejected: %v", s, err)
		} else if cfg.Prefetcher != pf {
			t.Errorf("prefetcher %q mapped to %v, want %v", s, cfg.Prefetcher, pf)
		}
	}
}
