package padc

import (
	"fmt"
	"strings"

	"padc/internal/exp"
	"padc/internal/runner"
)

// experimentRegistry maps experiment ids (the paper's figure/table
// numbers) to their runners. See DESIGN.md for the per-experiment index.
var experimentRegistry = map[string]func(sc exp.Scale) []*exp.Table{
	"fig1": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig1(sc)} },
	"fig2": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig2()} },
	"fig4": func(sc exp.Scale) []*exp.Table {
		h, tr := exp.Fig4(sc)
		return []*exp.Table{h, tr}
	},
	"fig6":  func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig6(sc, sc.Insts >= 400_000)} },
	"fig7":  func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig7(sc)} },
	"fig8":  func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig8(sc)} },
	"tab5":  func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Table5(sc, sc.Insts >= 400_000)} },
	"tab7":  func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Table7(sc)} },
	"fig9":  func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig9(sc)} },
	"fig10": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig10(sc)} },
	"fig12": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig12(sc)} },
	"fig14": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig14(sc)} },
	"tab8":  func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Table8(sc)} },
	"tab9":  func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Table9("libquantum", sc)} },
	"tab10": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Table9("milc", sc)} },
	"fig16": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig16(sc)} },
	"fig17": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig17(sc)} },
	"fig19": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig19(4, sc)} },
	"fig20": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig19(8, sc)} },
	"fig21": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig21(4, sc)} },
	"fig22": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig21(8, sc)} },
	"fig23": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig23(sc)} },
	"fig24": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig24(sc)} },
	"fig25": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig25(sc)} },
	"fig26": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig26(4, sc)} },
	"fig27": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig26(8, sc)} },
	"fig28": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig28(sc)} },
	"fig29": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig29(sc)} },
	"fig31": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig31(sc)} },
	"fig32": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.Fig32(sc)} },
	"tab1":  func(exp.Scale) []*exp.Table { return []*exp.Table{exp.Table1()} },
	// Ablations beyond the paper: design-choice studies DESIGN.md calls out.
	"abl-drop":    func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.AblationDropThreshold(sc)} },
	"abl-prom":    func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.AblationPromotionThreshold(sc)} },
	"abl-map":     func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.AblationAddressMapping(sc)} },
	"abl-rules":   func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.AblationRuleOrder(sc)} },
	"abl-refresh": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.AblationRefresh(sc)} },
	"abl-topology": func(sc exp.Scale) []*exp.Table {
		return []*exp.Table{exp.AblationTopology(sc)}
	},
	"abl-memside": func(sc exp.Scale) []*exp.Table { return []*exp.Table{exp.AblationMemSide(sc)} },
}

// ExperimentIDs lists every reproducible figure/table id.
func ExperimentIDs() []string { return sortedKeys(experimentRegistry) }

// Experiment regenerates the given paper figure or table and returns it
// rendered as aligned text. full selects the paper-scale workload counts
// (slow); otherwise a quick scale is used.
func Experiment(id string, full bool) (string, error) {
	run, ok := experimentRegistry[id]
	if !ok {
		return "", fmt.Errorf("padc: unknown experiment %q (known: %s)", id, strings.Join(ExperimentIDs(), ", "))
	}
	sc := exp.Quick()
	if full {
		sc = exp.Full()
	}
	var b strings.Builder
	for _, t := range run(sc) {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// SweepSpec re-exports the declarative sweep description the parallel
// sweep engine expands (see internal/runner).
type SweepSpec = runner.Spec

// SweepOptions re-exports the engine's execution options (worker count,
// invariant verification, progress callback).
type SweepOptions = runner.Options

// SweepResult re-exports the merged, deterministic sweep outcome with its
// WriteCSV / WriteJSON exporters and wall-clock Stats.
type SweepResult = runner.SweepResult

// SweepJob re-exports one merged job row of a sweep.
type SweepJob = runner.JobResult

// ParseSweepSpec decodes and validates a JSON sweep spec.
func ParseSweepSpec(data []byte) (SweepSpec, error) { return runner.ParseSpec(data) }

// Sweep expands the spec into its cartesian job grid and runs it on a
// bounded worker pool. The merged result is deterministic: the same spec
// produces byte-identical WriteCSV/WriteJSON output for any worker count.
func Sweep(spec SweepSpec, opts SweepOptions) (*SweepResult, error) {
	return runner.Run(spec, opts)
}

// MergeSweepRows reassembles job rows — collected from a remote row
// stream or from the shards of a distributed campaign — into the same
// key-sorted, deterministic SweepResult an in-process Sweep produces.
func MergeSweepRows(spec SweepSpec, rows []SweepJob) *SweepResult {
	return runner.MergeRows(spec, rows)
}

// RenderSweep renders the merged sweep as an aligned-text table (the same
// renderer the paper experiments use).
func RenderSweep(r *SweepResult) string {
	header, rows := r.TableData()
	t := &exp.Table{Title: "sweep: " + r.Spec.Name, Header: header, Rows: rows}
	return t.String()
}

// SetJobs bounds the process-wide worker pool used by Sweep and by the
// experiment runners; n <= 0 restores the GOMAXPROCS default.
func SetJobs(n int) { runner.SetDefaultWorkers(n) }
