// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, per DESIGN.md's experiment index. Each iteration regenerates
// the experiment at a bounded scale; run the padcsim CLI with -full for
// paper-scale workload counts.
package padc

import (
	"testing"

	"padc/internal/exp"
)

// benchScale keeps a full -bench=. sweep tractable while still exercising
// every experiment end to end.
func benchScale() exp.Scale { return exp.Scale{Insts: 60_000, Mixes2: 2, Mixes4: 2, Mixes8: 2} }

func benchTables(b *testing.B, run func(sc exp.Scale) []*exp.Table) {
	b.Helper()
	var out []*exp.Table
	for i := 0; i < b.N; i++ {
		out = run(benchScale())
	}
	if len(out) == 0 || len(out[0].Rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
}

func one(t *exp.Table) []*exp.Table { return []*exp.Table{t} }

func BenchmarkFig01RigidPolicies(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig1(sc)) })
}

func BenchmarkFig02Concept(b *testing.B) {
	benchTables(b, func(exp.Scale) []*exp.Table { return one(exp.Fig2()) })
}

func BenchmarkFig04MilcBehavior(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table {
		h, tr := exp.Fig4(sc)
		return []*exp.Table{h, tr}
	})
}

func BenchmarkFig06SingleCoreIPC(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig6(sc, false)) })
}

func BenchmarkFig07SPL(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig7(sc)) })
}

func BenchmarkFig08BusTraffic(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig8(sc)) })
}

func BenchmarkTable05Characteristics(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Table5(sc, false)) })
}

func BenchmarkTable07RBHU(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Table7(sc)) })
}

func BenchmarkFig09TwoCore(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig9(sc)) })
}

func BenchmarkFig10CaseStudyFriendly(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig10(sc)) })
}

func BenchmarkFig12CaseStudyUnfriendly(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig12(sc)) })
}

func BenchmarkFig14CaseStudyMixed(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig14(sc)) })
}

func BenchmarkTable08Urgency(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Table8(sc)) })
}

func BenchmarkTable09Identical(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table {
		return []*exp.Table{exp.Table9("libquantum", sc), exp.Table9("milc", sc)}
	})
}

func BenchmarkFig16FourCore(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig16(sc)) })
}

func BenchmarkFig17EightCore(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig17(sc)) })
}

func BenchmarkFig19Ranking(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig19(4, sc)) })
}

func BenchmarkFig20RankingEight(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig19(8, sc)) })
}

func BenchmarkFig21DualController(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig21(4, sc)) })
}

func BenchmarkFig22DualControllerEight(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig21(8, sc)) })
}

func BenchmarkFig23RowBufferSweep(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig23(sc)) })
}

func BenchmarkFig24ClosedRow(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig24(sc)) })
}

func BenchmarkFig25CacheSweep(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig25(sc)) })
}

func BenchmarkFig26SharedCache(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig26(4, sc)) })
}

func BenchmarkFig27SharedCacheEight(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig26(8, sc)) })
}

func BenchmarkFig28OtherPrefetchers(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig28(sc)) })
}

func BenchmarkFig29PrefetchFilters(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig29(sc)) })
}

func BenchmarkFig31Permutation(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig31(sc)) })
}

func BenchmarkFig32Runahead(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.Fig32(sc)) })
}

func BenchmarkTable01HardwareCost(b *testing.B) {
	benchTables(b, func(exp.Scale) []*exp.Table { return one(exp.Table1()) })
}

func BenchmarkAblationDropThreshold(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.AblationDropThreshold(sc)) })
}

func BenchmarkAblationPromotionThreshold(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.AblationPromotionThreshold(sc)) })
}

func BenchmarkAblationAddressMapping(b *testing.B) {
	benchTables(b, func(sc exp.Scale) []*exp.Table { return one(exp.AblationAddressMapping(sc)) })
}

// BenchmarkSimulatorThroughput measures raw simulation speed (cycles per
// second) of the 4-core baseline — the number that matters when scaling
// experiments up. Telemetry is nil here, so this is also the
// disabled-instrumentation path: compare against
// BenchmarkSimulatorThroughputTelemetry for the observability overhead
// (<2% is the budget for the disabled path vs. the pre-telemetry seed).
func BenchmarkSimulatorThroughput(b *testing.B) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := DefaultSystem(4)
		cfg.TargetInsts = 50_000
		res, err := Run(cfg, []string{"swim", "art", "libquantum", "milc"})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkSimulatorThroughputTelemetry is the same run with full
// instrumentation: metric registry, 10K-cycle epoch sampling and the
// event ring all enabled.
func BenchmarkSimulatorThroughputTelemetry(b *testing.B) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := DefaultSystem(4)
		cfg.TargetInsts = 50_000
		cfg.Telemetry = NewTelemetry(10_000)
		res, err := Run(cfg, []string{"swim", "art", "libquantum", "milc"})
		if err != nil {
			b.Fatal(err)
		}
		if len(cfg.Telemetry.SeriesData().Rows) == 0 {
			b.Fatal("telemetry produced no epoch samples")
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkSimulatorThroughputProfiled is the same run with the full
// observability stack: telemetry plus request-lifecycle span tracing and
// cycle-accounting attribution. The delta against the two benchmarks
// above prices the profiler; the delta between the first two prices plain
// telemetry.
func BenchmarkSimulatorThroughputProfiled(b *testing.B) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := DefaultSystem(4)
		cfg.TargetInsts = 50_000
		cfg.Telemetry = NewTelemetry(10_000)
		cfg.Lifecycle = NewLifecycle(0)
		cfg.Profile = true
		res, err := Run(cfg, []string{"swim", "art", "libquantum", "milc"})
		if err != nil {
			b.Fatal(err)
		}
		if cfg.Lifecycle.Recorded() == 0 {
			b.Fatal("lifecycle recorded no spans")
		}
		for _, c := range res.Cores {
			if len(c.Attribution) == 0 {
				b.Fatal("profiling produced no attribution")
			}
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}
