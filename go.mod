module padc

go 1.22
